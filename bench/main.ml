(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation, runs the extra experiments from DESIGN.md, and
   finishes with bechamel micro-benchmarks of the core primitives.

     TABLE1     site characteristics (input, Table 1)
     FIGURE8    the network (input, Figure 8)
     TABLE2     replicated file unavailabilities   (paper Table 2)
     TABLE3     mean duration of unavailable periods (paper Table 3)
     CLAIMS     the qualitative findings of section 4, checked on this run
     SWEEP      E1: access-rate ablation for the optimistic policies
     MESSAGES   E2: per-operation and connection-vector message costs
     VALIDATE   E3: simulator vs exact CTMC / closed forms
     EXTENSIONS E4: strict MCV, weighted voting, JM-DV, available copy,
                    witnesses, and the TDV safety-correction ablation
     CHAOS      fault-injection campaign throughput and the cost of
                    relaxed (Deadline) delivery vs the quiet network
     MC         bounded model-checking throughput on the §3 example
     MICRO      bechamel micro-benchmarks

     PAR        the domain-pool execution layer: a fixed workload at
                    -j 1 and -j N, results asserted identical, wall
                    times and speedup recorded in BENCH_PAR.json

     SHARD      the sharded object space: per-op cost 10^3 -> 10^6
                    keys under the residency cap, and the live
                    group-quorum batch payoff (BENCH_SHARD.json)

   The environment variable DYNVOTE_BENCH_HORIZON (simulated days,
   default 400360 - about 1100 years) scales the main study.  The
   compute-bound sections (TABLE2, SWEEP, REPLICATIONS, MC) fan out over
   a domain pool: -j N on the command line or DYNVOTE_JOBS in the
   environment picks the width (default: the hardware's recommended
   domain count). *)

module Study = Dynvote_sim.Study
module Config = Dynvote_sim.Config
module Table = Dynvote_sim.Table
module Paper = Dynvote_sim.Paper_values
module Site_spec = Dynvote_failures.Site_spec
module Event_gen = Dynvote_failures.Event_gen
module Topology = Dynvote_net.Topology
module Connectivity = Dynvote_net.Connectivity
module Text_table = Dynvote_report.Text_table
module Voting_model = Dynvote_analytic.Voting_model
module Kofn = Dynvote_analytic.Kofn
module Cluster = Dynvote_msgsim.Cluster
module Harness = Dynvote_chaos.Harness
module Checker = Dynvote_mc.Checker
module Explorer = Dynvote_mc.Explorer
module Pool = Dynvote_exec.Pool

(* -j N (or -jN), falling back to DYNVOTE_JOBS, falling back to the
   hardware's recommended domain count. *)
let jobs =
  let rec scan i =
    if i >= Array.length Sys.argv then Pool.default_jobs ()
    else
      let arg = Sys.argv.(i) in
      if arg = "-j" && i + 1 < Array.length Sys.argv then
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some n when n > 0 -> min n Pool.max_jobs
        | _ -> scan (i + 2)
      else if String.length arg > 2 && String.sub arg 0 2 = "-j" then
        match int_of_string_opt (String.sub arg 2 (String.length arg - 2)) with
        | Some n when n > 0 -> min n Pool.max_jobs
        | _ -> scan (i + 1)
      else scan (i + 1)
  in
  scan 1

let section name description =
  Fmt.pr "@.=================== %s ===================@." name;
  Fmt.pr "%s@.@." description

let horizon =
  match Sys.getenv_opt "DYNVOTE_BENCH_HORIZON" with
  | Some v -> float_of_string v
  | None -> Study.default_parameters.Study.horizon

let parameters = { Study.default_parameters with horizon }

(* ------------------------------------------------------------------ *)

let table1 () =
  section "TABLE1" "Site characteristics (simulation input; paper Table 1).";
  Text_table.print (Table.table1 Site_spec.ucsd_sites);
  Fmt.pr "Sites 1, 3 and 5 are down 3 h every 90 days for maintenance (staggered).@."

let figure8 () =
  section "FIGURE8" "The modelled network (paper Figure 8).";
  Fmt.pr "%a@." Topology.pp_ascii Topology.ucsd

(* Shape agreement: fraction of within-configuration policy pairs whose
   order (who is more available) matches the paper's Table 2. *)
let shape_agreement results =
  let measured config kind =
    (List.find
       (fun r -> Config.label r.Study.config = config && r.Study.kind = kind)
       results)
      .Study.unavailability
  in
  let agree = ref 0 and total = ref 0 in
  List.iter
    (fun config ->
      List.iteri
        (fun i ki ->
          List.iteri
            (fun j kj ->
              if j > i then
                match
                  ( Paper.table2_value ~config ~kind:ki,
                    Paper.table2_value ~config ~kind:kj )
                with
                | Some pi, Some pj when Float.abs (pi -. pj) > 1e-6 ->
                    incr total;
                    if pi < pj = (measured config ki < measured config kj) then incr agree
                | _ -> ())
            Paper.kinds)
        Paper.kinds)
    Paper.config_labels;
  (!agree, !total)

let tables23 () =
  section "TABLE2"
    (Printf.sprintf
       "Replicated file unavailabilities, 8 configurations x 6 policies\n\
        (paper Table 2).  Horizon %.0f simulated days, warm-up %.0f days,\n\
        %d batches, one access per day for the optimistic policies."
       parameters.Study.horizon parameters.Study.warmup parameters.Study.batches);
  let t0 = Unix.gettimeofday () in
  let results = Study.run ~parameters ~jobs () in
  Fmt.pr "(simulated %.0f years for 48 policy instances in %.1f s)@.@."
    ((parameters.Study.horizon -. parameters.Study.warmup) /. 365.0)
    (Unix.gettimeofday () -. t0);
  Text_table.print (Table.table2 results);
  Fmt.pr "@.Paper vs measured (ratio = measured / paper):@.";
  Text_table.print (Table.comparison Table.Unavailability results);
  let agree, total = shape_agreement results in
  Fmt.pr "@.Shape agreement with the paper: %d of %d policy-pair orderings match (%.0f%%).@."
    agree total
    (100.0 *. float_of_int agree /. float_of_int total);

  section "TABLE3" "Mean duration of unavailable periods, in days (paper Table 3).";
  Text_table.print (Table.table3 results);
  Fmt.pr "@.Paper vs measured:@.";
  Text_table.print (Table.comparison Table.Outage_duration results);

  Fmt.pr "@.Confidence intervals and outage statistics:@.";
  Text_table.print (Table.intervals results);
  results

let claims results =
  section "CLAIMS" "The qualitative findings of section 4, checked on this run.";
  let u config kind =
    (List.find
       (fun r -> Config.label r.Study.config = config && r.Study.kind = kind)
       results)
      .Study.unavailability
  in
  let check name ok = Fmt.pr "  [%s] %s@." (if ok then "PASS" else "FAIL") name in
  check "DV worse than MCV for three copies (A-D)"
    (List.for_all (fun c -> u c Policy.Dv >= u c Policy.Mcv) [ "A"; "B"; "C"; "D" ]);
  check "DV much better than MCV in E (four copies on one segment)"
    (u "E" Policy.Dv < u "E" Policy.Mcv);
  check "DV collapses in F (a single failure causes a lasting tie)"
    (u "F" Policy.Dv > 10.0 *. u "F" Policy.Mcv);
  check "LDV outperforms MCV and DV in all cases"
    (List.for_all
       (fun c -> u c Policy.Ldv <= u c Policy.Mcv && u c Policy.Ldv <= u c Policy.Dv)
       Paper.config_labels);
  check "ODV comparable to LDV everywhere (within 4x)"
    (List.for_all
       (fun c -> u c Policy.Odv <= 4.0 *. Float.max (u c Policy.Ldv) 1e-7)
       Paper.config_labels);
  let odv_wins =
    List.filter (fun c -> u c Policy.Odv < u c Policy.Ldv) Paper.config_labels
  in
  Fmt.pr
    "  [INFO] configurations where ODV beats LDV on this trace: [%s] (the paper
    \         found three of eight; the crossover is within the simulation noise
    \         of both studies - see the RECOVERY ablation below)@."
    (String.concat "; " odv_wins);
  check "TDV much better when copies share a segment (A, B, E, F, G, H)"
    (List.for_all
       (fun c -> u c Policy.Tdv < u c Policy.Ldv /. 2.0)
       [ "A"; "B"; "E"; "F"; "G"; "H" ]);
  check "TDV = LDV and OTDV = ODV when every copy is alone (C)"
    (u "C" Policy.Tdv = u "C" Policy.Ldv && u "C" Policy.Otdv = u "C" Policy.Odv);
  let e_tdv =
    List.find
      (fun r -> Config.label r.Study.config = "E" && r.Study.kind = Policy.Tdv)
      results
  in
  Fmt.pr
    "  [INFO] configuration E under TDV: longest continuously-available stretch\n\
    \         %.0f days = %.0f years (unavailability %.7f); the paper reports\n\
    \         continuous availability exceeding three hundred years.@."
    e_tdv.Study.longest_up_days
    (e_tdv.Study.longest_up_days /. 365.0)
    e_tdv.Study.unavailability

(* E1: access-rate sweep. *)
let sweep () =
  section "SWEEP"
    "E1: unavailability of the optimistic policies vs file access rate\n\
     (configuration F; LDV as the instantaneous reference).  The paper\n\
     evaluates only one access per day; this ablation shows the whole\n\
     optimism spectrum, including the region where staleness helps.";
  let parameters = { parameters with Study.horizon = Float.min horizon 100_360.0 } in
  let table =
    Text_table.create
      ~aligns:[ Text_table.Right; Text_table.Right; Text_table.Right; Text_table.Right ]
      ~header:[ "Accesses/day"; "ODV"; "OTDV"; "LDV (ref)" ] ()
  in
  List.iter
    (fun (rate, results) ->
      let cell kind =
        match List.find_opt (fun r -> r.Study.kind = kind) results with
        | Some r -> Text_table.cell_float r.Study.unavailability
        | None -> ""
      in
      Text_table.add_row table
        [ Printf.sprintf "%g" rate; cell Policy.Odv; cell Policy.Otdv; cell Policy.Ldv ])
    (Study.sweep_access_rate ~parameters ~config_label:"F" ~jobs ());
  Text_table.print table

(* Recovery-discipline ablation: when does a repaired site reintegrate
   under the optimistic policies?  Figure 3's "repeat until successful"
   loop suggests immediately; folding it into the next access costs less
   traffic.  Both readings are simulated here against LDV. *)
let recovery_ablation () =
  section "RECOVERY"
    "Ablation: optimistic recovery at the next access (default) vs driven
     by the recovering site immediately (Figure 3's retry loop), against
     LDV as the instantaneous reference.";
  let parameters = { parameters with Study.horizon = Float.min horizon 200_360.0 } in
  let at_access = Study.run ~parameters ~kinds:[ Policy.Odv; Policy.Otdv; Policy.Ldv ] () in
  let at_repair =
    Study.run ~parameters ~recovery:`At_repair ~kinds:[ Policy.Odv; Policy.Otdv ] ()
  in
  let cell results config kind =
    match
      List.find_opt
        (fun r -> Config.label r.Study.config = config && r.Study.kind = kind)
        results
    with
    | Some r -> Text_table.cell_float r.Study.unavailability
    | None -> ""
  in
  let table =
    Text_table.create
      ~aligns:
        (Text_table.Left :: List.init 5 (fun _ -> Text_table.Right))
      ~header:
        [ "Config"; "ODV"; "ODV@repair"; "OTDV"; "OTDV@repair"; "LDV (ref)" ] ()
  in
  List.iter
    (fun config ->
      Text_table.add_row table
        [ config;
          cell at_access config Policy.Odv;
          cell at_repair config Policy.Odv;
          cell at_access config Policy.Otdv;
          cell at_repair config Policy.Otdv;
          cell at_access config Policy.Ldv ])
    Paper.config_labels;
  Text_table.print table

(* E2: message costs. *)
let messages () =
  section "MESSAGES"
    "E2: wire-level message cost per operation (identical for MCV and the\n\
     optimistic policies), plus the connection-vector traffic only the\n\
     non-optimistic policies pay.";
  let table =
    Text_table.create
      ~aligns:[ Text_table.Right; Text_table.Right; Text_table.Right ]
      ~header:[ "Copies"; "Msgs/read"; "Msgs/write" ] ()
  in
  List.iter
    (fun n ->
      let universe = Site_set.universe n in
      let cluster = Cluster.create ~universe () in
      let read_total = ref 0 and write_total = ref 0 in
      let reads = ref 0 and writes = ref 0 in
      for i = 0 to 59 do
        let at = i mod n in
        if i mod 3 = 0 then begin
          incr writes;
          write_total :=
            !write_total + (Cluster.write cluster ~at ~content:"x").Cluster.messages
        end
        else begin
          incr reads;
          read_total := !read_total + (Cluster.read cluster ~at).Cluster.messages
        end
      done;
      Text_table.add_row table
        [ string_of_int n;
          Printf.sprintf "%.1f" (float_of_int !read_total /. float_of_int !reads);
          Printf.sprintf "%.1f" (float_of_int !write_total /. float_of_int !writes) ])
    [ 3; 4; 5; 8 ];
  Text_table.print table;
  (* Connection-vector bill over a simulated year of Figure 8 topology
     events. *)
  let connectivity = Connectivity.create Topology.ucsd in
  let generator = Event_gen.create ~seed:11 Site_spec.ucsd_sites in
  let up = ref (Topology.all_sites Topology.ucsd) in
  let events = ref 0 and extra = ref 0 in
  let rec loop () =
    let tr = Event_gen.next generator in
    if tr.Event_gen.time < 365.0 then begin
      up :=
        if tr.Event_gen.now_up then Site_set.add tr.Event_gen.site !up
        else Site_set.remove tr.Event_gen.site !up;
      incr events;
      extra := !extra + Cluster.connection_vector_messages (Connectivity.components connectivity ~up:!up);
      loop ()
    end
  in
  loop ();
  Fmt.pr
    "@.Connection-vector maintenance (DV/LDV/TDV only): %d topology events in a\n\
     simulated year -> %d extra messages on the 8-site network; the optimistic\n\
     policies send none (the paper's efficiency claim).@."
    !events !extra

(* E3: exact-model validation. *)
let validate () =
  section "VALIDATE"
    "E3: the simulator against the exact CTMC (3 identical sites, MTTF 10\n\
     days, exponential repair of mean 1 day, one segment) and against the\n\
     closed-form MCV availability.  Ratios near 1.000 certify the simulator\n\
     against an independent model.";
  let n = 3 in
  let mttf = 10.0 and mttr = 1.0 in
  let specs = Site_spec.uniform ~n ~mttf_days:mttf ~repair_hours:(mttr *. 24.0) in
  let topology = Topology.single_segment n in
  let configs = [ Config.create ~label:"U" ~copies:(Site_set.universe n) () ] in
  let parameters =
    { Study.default_parameters with horizon = Float.min horizon 300_360.0; batches = 10 }
  in
  let results =
    Study.run ~parameters ~configs ~specs ~topology
      ~kinds:[ Policy.Mcv; Policy.Dv; Policy.Ldv; Policy.Tdv ] ()
  in
  let fail_rate = Array.make n (1.0 /. mttf) in
  let repair_rate = Array.make n (1.0 /. mttr) in
  let ordering = Ordering.default n in
  let exact = function
    | Policy.Mcv ->
        1.0
        -. Kofn.mcv_lexicographic_availability
             (Voting_model.site_availability ~fail_rate ~repair_rate)
             ~ordering
    | kind ->
        let flavor = Option.get (Policy.flavor_of_kind kind) in
        Voting_model.unavailability ~flavor ~fail_rate ~repair_rate ~ordering ()
  in
  let table =
    Text_table.create
      ~aligns:[ Text_table.Left; Text_table.Right; Text_table.Right; Text_table.Right ]
      ~header:[ "Policy"; "Simulated"; "Exact"; "Ratio" ] ()
  in
  List.iter
    (fun r ->
      let e = exact r.Study.kind in
      Text_table.add_row table
        [ Policy.kind_name r.Study.kind;
          Text_table.cell_float r.Study.unavailability;
          Text_table.cell_float e;
          Printf.sprintf "%.3f" (r.Study.unavailability /. e) ])
    results;
  Text_table.print table

(* Reliability: exact renewal quantities (mean up / down periods, mean
   time to first unavailability) against the simulator's outage counts. *)
let reliability () =
  section "RELIABILITY"
    "Mean lengths of available/unavailable periods and the file's mean time\n\
     to first unavailability (3 identical sites, MTTF 10 d, repair 1 d, one\n\
     segment): simulated vs exact renewal analysis of the Markov chain.";
  let n = 3 in
  let mttf = 10.0 and mttr = 1.0 in
  let specs = Site_spec.uniform ~n ~mttf_days:mttf ~repair_hours:(mttr *. 24.0) in
  let topology = Topology.single_segment n in
  let configs = [ Config.create ~label:"U" ~copies:(Site_set.universe n) () ] in
  let parameters =
    { Study.default_parameters with horizon = Float.min horizon 300_360.0; batches = 10 }
  in
  let results =
    Study.run ~parameters ~configs ~specs ~topology
      ~kinds:[ Policy.Dv; Policy.Ldv; Policy.Tdv ] ()
  in
  let fail_rate = Array.make n (1.0 /. mttf) in
  let repair_rate = Array.make n (1.0 /. mttr) in
  let ordering = Ordering.default n in
  let table =
    Text_table.create
      ~aligns:(Text_table.Left :: List.init 5 (fun _ -> Text_table.Right))
      ~header:[ "Policy"; "Up sim (d)"; "Up exact"; "Down sim (d)"; "Down exact"; "MTTF (d)" ]
      ()
  in
  List.iter
    (fun r ->
      let flavor = Option.get (Policy.flavor_of_kind r.Study.kind) in
      let exact =
        Voting_model.period_statistics ~flavor ~fail_rate ~repair_rate ~ordering ()
      in
      let mttf_file =
        Voting_model.mean_time_to_unavailability ~flavor ~fail_rate ~repair_rate
          ~ordering ()
      in
      let up_sim =
        r.Study.observed_days *. (1.0 -. r.Study.unavailability)
        /. float_of_int (max r.Study.outages 1)
      in
      Text_table.add_row table
        [ Policy.kind_name r.Study.kind;
          Printf.sprintf "%.2f" up_sim;
          Printf.sprintf "%.2f" exact.Voting_model.mean_up_days;
          Printf.sprintf "%.4f" r.Study.mean_outage_days;
          Printf.sprintf "%.4f" exact.Voting_model.mean_down_days;
          Printf.sprintf "%.1f" mttf_file ])
    results;
  Text_table.print table

(* E4: extensions and ablations. *)
let extensions () =
  section "EXTENSIONS"
    "E4: protocols beyond the paper's six, on the same failure trace -\n\
     strict MCV (no even-split rule), Gifford weighted voting (2 votes for\n\
     site 1), the Jajodia-Mutchler integer protocol, and the TDV/OTDV\n\
     safety-correction ablation (safe_claims; see DESIGN.md).";
  let topology = Topology.ucsd in
  let n_sites = Topology.n_sites topology in
  let segment_of = Topology.segment_of topology in
  let ordering = Ordering.default n_sites in
  let parameters = { parameters with Study.horizon = Float.min horizon 200_360.0 } in
  let names =
    [ "MCV"; "MCV-strict"; "WMCV"; "DV"; "JM-DV"; "WDV"; "TDV"; "TDV-safe"; "OTDV";
      "OTDV-safe" ]
  in
  let drivers_for config =
    let universe = Config.copies config in
    let label = Config.label config in
    let policy ?flavor kind =
      Driver.of_policy (Policy.create ?flavor kind ~universe ~n_sites ~segment_of ~ordering)
    in
    let weights = Array.init n_sites (fun i -> if i = 0 then 2 else 1) in
    [
      ((label, "MCV"), policy Policy.Mcv);
      ((label, "MCV-strict"), Policy_extra.strict_mcv ~universe);
      ((label, "WMCV"), Policy_extra.weighted_mcv ~weights ~universe ~ordering ());
      ((label, "DV"), policy Policy.Dv);
      ((label, "JM-DV"), Policy_extra.jm_dv ~universe ~n_sites);
      ((label, "WDV"), Policy_extra.weighted_dv ~weights ~universe ~n_sites ~ordering ());
      ((label, "TDV"), policy Policy.Tdv);
      ((label, "TDV-safe"), policy ~flavor:Decision.tdv_safe_flavor Policy.Tdv);
      ((label, "OTDV"), policy Policy.Otdv);
      ((label, "OTDV-safe"), policy ~flavor:Decision.tdv_safe_flavor Policy.Otdv);
    ]
  in
  let configs = Config.ucsd_configurations in
  let drivers = List.concat_map drivers_for configs in
  let results = Study.run_drivers ~parameters ~drivers () in
  let table =
    Text_table.create
      ~aligns:(Text_table.Left :: List.map (fun _ -> Text_table.Right) names)
      ~header:("Config" :: names) ()
  in
  List.iter
    (fun config ->
      let label = Config.label config in
      let cells =
        List.map
          (fun name ->
            match List.assoc_opt (label, name) results with
            | Some (s : Study.summary) -> Text_table.cell_float s.Study.unavailability
            | None -> "")
          names
      in
      Text_table.add_row table (label :: cells))
    configs;
  Text_table.print table;
  let jm_equals_dv =
    List.for_all
      (fun config ->
        let label = Config.label config in
        (List.assoc (label, "DV") results : Study.summary).Study.unavailability
        = (List.assoc (label, "JM-DV") results : Study.summary).Study.unavailability)
      configs
  in
  Fmt.pr "@.JM-DV identical to DV on every configuration: %b (expected: true)@." jm_equals_dv;

  (* Witnesses and available copy on the partition-free configuration A. *)
  let a = Option.get (Config.find "A") in
  let copies = Config.copies a in
  let sites = Site_set.to_list copies in
  let two_copies = Site_set.of_list [ List.nth sites 0; List.nth sites 1 ] in
  let witness_site = Site_set.of_list [ List.nth sites 2 ] in
  let ac, ac_driver = Policy_extra.available_copy ~universe:copies in
  let aw, aw_driver =
    Adaptive_witness.make ~initial_copies:two_copies ~witnesses:witness_site
      ~min_copies:2 ~max_copies:2 ~n_sites ~segment_of ~ordering ()
  in
  let drivers =
    [
      ( "LDV, 3 copies",
        Driver.of_policy
          (Policy.create Policy.Ldv ~universe:copies ~n_sites ~segment_of ~ordering) );
      ( "LDV, 2 copies + 1 witness",
        Policy_extra.witness ~data_sites:two_copies ~witnesses:witness_site ~n_sites
          ~segment_of ~ordering () );
      ("LDV, adaptive witness (2..2)", aw_driver);
      ("Available copy", ac_driver);
    ]
  in
  let results = Study.run_drivers ~parameters ~drivers () in
  Fmt.pr "@.Witnesses and available copy on configuration A's sites (1, 2, 4):@.";
  List.iter
    (fun ((name : string), (s : Study.summary)) ->
      Fmt.pr "  %-28s unavailability %.6f, mean outage %s d@." name s.Study.unavailability
        (Text_table.cell_float ~decimals:3 s.Study.mean_outage_days))
    results;
  Fmt.pr
    "  (available-copy mutual-exclusion violations on this run: %d; configuration\n\
    \   A cannot partition, so the protocol is safe here.  The adaptive witness\n\
    \   performed %d promotions and %d demotions while storing only two real\n\
    \   copies at rest.)@."
    (Policy_extra.Available_copy.violations ac)
    (Adaptive_witness.promotions aw) (Adaptive_witness.demotions aw)

(* Cross-seed replications for the contentious cells: is ODV's advantage
   over LDV on configurations E, F, H (the paper's finding) statistically
   resolvable? *)
let replications () =
  section "REPLICATIONS"
    "Five independent failure histories (distinct seeds), pooled per cell\n\
     with Student-t intervals: run-to-run noise for the ODV-vs-LDV\n\
     crossover cells the paper highlights (E, F, H).";
  let parameters = { parameters with Study.horizon = Float.min horizon 200_360.0 } in
  let configs =
    List.filter
      (fun c -> List.mem (Config.label c) [ "E"; "F"; "H" ])
      Config.ucsd_configurations
  in
  let pooled =
    Study.replicate ~parameters ~replications:5 ~configs
      ~kinds:[ Policy.Odv; Policy.Ldv ] ~jobs ()
  in
  let table =
    Text_table.create
      ~aligns:[ Text_table.Left; Text_table.Left; Text_table.Right; Text_table.Right ]
      ~header:[ "Config"; "Policy"; "Unavail (5 seeds)"; "95% +/-" ] ()
  in
  List.iter
    (fun ((config, kind), (r : Study.replicated)) ->
      Text_table.add_row table
        [ Config.label config; Policy.kind_name kind;
          Text_table.cell_float r.Study.mean_unavailability;
          Text_table.cell_float r.Study.half_width_95 ])
    pooled;
  Text_table.print table;
  List.iter
    (fun label ->
      let get kind =
        snd
          (List.find
             (fun ((c, k), _) -> Config.label c = label && k = kind)
             pooled)
      in
      let odv = get Policy.Odv and ldv = get Policy.Ldv in
      let diff = odv.Study.mean_unavailability -. ldv.Study.mean_unavailability in
      let spread = odv.Study.half_width_95 +. ldv.Study.half_width_95 in
      Fmt.pr "  %s: ODV - LDV = %+.6f (+/- %.6f): %s@." label diff spread
        (if Float.abs diff <= spread then "statistically indistinguishable"
         else if diff < 0.0 then "ODV significantly better (the paper's finding)"
         else "LDV significantly better"))
    [ "E"; "F"; "H" ]

(* Chaos-harness throughput and the price of relaxed delivery. *)
let chaos () =
  section "CHAOS"
    "Fault-injection campaign throughput (randomized schedules per second,\n\
     safety oracle attached), and what relaxed [Deadline] delivery costs\n\
     over the paper's quiet network on a fault-free 5-site cluster.";
  let schedules = 500 in
  let table =
    Text_table.create
      ~aligns:[ Text_table.Left; Text_table.Right; Text_table.Right; Text_table.Left ]
      ~header:[ "Policy"; "Schedules/s"; "Ops/s"; "Verdict" ] ()
  in
  List.iter
    (fun (p : Harness.policy) ->
      let t0 = Unix.gettimeofday () in
      let s = Harness.run_many ~policy:p ~seed:2026L ~schedules () in
      let dt = Unix.gettimeofday () -. t0 in
      Text_table.add_row table
        [ p.Harness.name;
          Printf.sprintf "%.0f" (float_of_int schedules /. dt);
          Printf.sprintf "%.0f"
            (float_of_int (s.Harness.granted + s.Harness.denied + s.Harness.aborted) /. dt);
          (if s.Harness.failures = 0 then "OK"
           else if s.Harness.expect_safe then
             Printf.sprintf "%d VIOLATIONS" s.Harness.failures
           else Printf.sprintf "%d violations (expected)" s.Harness.failures) ])
    Harness.policies;
  Text_table.print table;
  (* Deadline vs Quiet on the same operation mix, no faults: the retry
     machinery costs time when nothing goes wrong, while piggybacking the
     data on COMMIT saves the separate data round — this measures both. *)
  let universe = Site_set.universe 5 in
  let time_delivery delivery =
    let cluster = Cluster.create ~universe ?delivery () in
    let iterations = 20_000 in
    let messages = ref 0 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to iterations - 1 do
      let at = i mod 5 in
      let outcome =
        if i mod 3 = 0 then Cluster.write cluster ~at ~content:"x"
        else Cluster.read cluster ~at
      in
      messages := !messages + outcome.Cluster.messages
    done;
    let dt = Unix.gettimeofday () -. t0 in
    ( 1e9 *. dt /. float_of_int iterations,
      float_of_int !messages /. float_of_int iterations )
  in
  let quiet_ns, quiet_msgs = time_delivery None in
  let deadline_ns, deadline_msgs =
    time_delivery (Some (Cluster.Deadline { timeout = 0.25; retries = 2; backoff = 2.0 }))
  in
  Fmt.pr
    "@.Fault-free operation cost (5 copies, 1 write : 2 reads):@.\
    \  quiet network  %8.0f ns/op  %.1f msgs/op@.\
    \  deadline mode  %8.0f ns/op  %.1f msgs/op  (%.0f%% time overhead)@."
    quiet_ns quiet_msgs deadline_ns deadline_msgs
    (100.0 *. (deadline_ns -. quiet_ns) /. quiet_ns)

(* Bounded model checking throughput on the paper's four-copy example:
   distinct states, transition counts with and without partial-order
   reduction (verdicts asserted identical), rates, and the fingerprint
   store's memory footprint against the (string, int) hashtable it
   replaced — measured on real canonical fingerprints, resident and
   with the disk-spill tier engaged.  DYNVOTE_MC_DEPTH picks the bound
   (default 6; the acceptance sweep uses 8, roughly a minute for all
   four policies).  Everything lands in BENCH_MC.json. *)

let mc_verdict_text (report : Checker.report) =
  let r = report.Checker.result in
  match report.Checker.verdict with
  | Checker.Clean { closed } ->
      Printf.sprintf "safe to depth %d%s" r.Explorer.depth
        (if closed then " (closed)" else "")
  | Checker.Counterexample { schedule; replay_matches; _ } ->
      Printf.sprintf "violation in %d steps%s"
        (List.length schedule.Dynvote_chaos.Schedule.steps)
        (if replay_matches then ", replays" else ", REPLAY DIVERGED")
  | Checker.Inconclusive -> "out of budget"

(* The store comparison: feed one stream of real canonical fingerprints
   (random walks over the §3 config, the same strings the explorer
   hands to Striped_seen.claim) to the old representation — a
   (string, int) hashtable keyed by the full canonical string — and to
   the new fingerprint store, resident and spilling.  Sizes by
   Obj.reachable_words over the live structure. *)
let mc_store_bytes () =
  let config = Checker.paper_config () in
  let n_sites = Site_set.cardinal config.Harness.universe in
  let perms = [ Dynvote_mc.Fingerprint.identity ~n_sites ] in
  let target = 20_000 in
  let distinct = Hashtbl.create target in
  let stream = ref [] in
  let buf = Buffer.create 256 in
  let rand = Random.State.make [| 0xd47 |] in
  let bytes_total = ref 0 in
  while Hashtbl.length distinct < target do
    let session = Harness.make_session config in
    for _ = 1 to 12 do
      Harness.apply_step session
        (Dynvote_chaos.Schedule.step_of_int ~n_sites
           (Random.State.int rand 245_760));
      let fp = Dynvote_mc.Fingerprint.canonical ~buf ~perms session in
      stream := fp :: !stream;
      if not (Hashtbl.mem distinct fp) then begin
        Hashtbl.add distinct fp ();
        bytes_total := !bytes_total + String.length fp
      end
    done
  done;
  let stream = List.rev !stream in
  let n = Hashtbl.length distinct in
  let words v = Obj.reachable_words (Obj.repr v) in
  let old_table : (string, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun fp -> Hashtbl.replace old_table fp 1) stream;
  let old_words = words old_table in
  let feed store =
    List.iter
      (fun fp ->
        ignore (Dynvote_mc.Striped_seen.claim store fp ~budget:1 ~ctx:0
                : Dynvote_mc.Striped_seen.verdict))
      stream
  in
  let resident_store =
    Dynvote_mc.Striped_seen.create ~shards:64 ~max_states:(2 * n) ()
  in
  feed resident_store;
  assert (Dynvote_mc.Striped_seen.distinct resident_store = n);
  let resident_words = words resident_store in
  let spill_store =
    Dynvote_mc.Striped_seen.create ~shards:64 ~spill:(n / 16)
      ~max_states:(2 * n) ()
  in
  feed spill_store;
  assert (Dynvote_mc.Striped_seen.distinct spill_store = n);
  let spill_words = words spill_store in
  let spilled = Dynvote_mc.Striped_seen.spilled spill_store in
  Dynvote_mc.Striped_seen.close resident_store;
  Dynvote_mc.Striped_seen.close spill_store;
  let per w = 8.0 *. float_of_int w /. float_of_int n in
  ( n,
    float_of_int !bytes_total /. float_of_int n,
    per old_words, per resident_words, per spill_words, spilled )

let mc () =
  let depth =
    match Sys.getenv_opt "DYNVOTE_MC_DEPTH" with
    | Some v when v <> "" -> int_of_string v
    | _ -> 6
  in
  section "MC"
    (Printf.sprintf
       "Exhaustive bounded search of the message protocols, 4 sites on the\n\
        paper's §3 topology, depth %d (DYNVOTE_MC_DEPTH to change).\n\
        Each policy runs with and without partial-order reduction; the\n\
        verdicts must match." depth);
  let table =
    Text_table.create
      ~aligns:
        [ Text_table.Left; Text_table.Right; Text_table.Right; Text_table.Right;
          Text_table.Right; Text_table.Right; Text_table.Left ]
      ~header:
        [ "Policy"; "States"; "Full trans"; "POR trans"; "Reduction";
          "Trans/s"; "Verdict" ]
      ()
  in
  let policy_rows =
    List.map
      (fun name ->
        let p = Option.get (Harness.policy_of_string name) in
        let timed por =
          let t0 = Unix.gettimeofday () in
          let report =
            Checker.check ~policy:p ~depth ~jobs ~por (Checker.paper_config ())
          in
          (report, Unix.gettimeofday () -. t0)
        in
        let reduced, reduced_s = timed true in
        let full, _ = timed false in
        let rr = reduced.Checker.result and rf = full.Checker.result in
        let verdict = mc_verdict_text reduced in
        (* Same soundness gate as the test suite: a completed bound must
           agree on closure and state count; a violation compares by
           counterexample length (the reduction may pick a different
           equally-short representative). *)
        let summary (report : Checker.report) =
          match report.Checker.verdict with
          | Checker.Clean { closed } ->
              `Safe (closed, report.Checker.result.Explorer.distinct)
          | Checker.Counterexample { schedule; _ } ->
              `Violation
                (List.length schedule.Dynvote_chaos.Schedule.steps)
          | Checker.Inconclusive -> `Out_of_budget
        in
        if summary full <> summary reduced then
          failwith ("MC: POR changed the verdict for " ^ name);
        let reduction =
          float_of_int rf.Explorer.transitions
          /. float_of_int (max 1 rr.Explorer.transitions)
        in
        let rate = float_of_int rr.Explorer.transitions /. reduced_s in
        Text_table.add_row table
          [ name;
            string_of_int rr.Explorer.distinct;
            string_of_int rf.Explorer.transitions;
            string_of_int rr.Explorer.transitions;
            Printf.sprintf "%.2fx" reduction;
            Printf.sprintf "%.0f" rate;
            verdict ];
        let totals = Dynvote_mc.Report.steal_totals rr.Explorer.workers in
        (name, rr, rf.Explorer.transitions, reduction, rate, verdict, totals))
      [ "dv"; "odv"; "tdv"; "tdv-safe" ]
  in
  Text_table.print table;
  if jobs > 1 then begin
    Fmt.pr "@.Stealing frontier (-j%d, reduced runs):@." jobs;
    List.iter
      (fun (name, _, _, _, _, _, (t : Pool.steal_stats)) ->
        Fmt.pr "  %-9s %d tasks, %d steals, %d failed steals, max deque %d@."
          name t.Pool.tasks_executed t.Pool.steals t.Pool.failed_steals
          t.Pool.max_deque_depth)
      policy_rows
  end;
  let sampled, canon_bytes, old_bs, resident_bs, spill_bs, spilled =
    mc_store_bytes ()
  in
  Fmt.pr
    "@.Fingerprint store, %d real canonical states (avg %.0f canonical bytes):@."
    sampled canon_bytes;
  Fmt.pr "  (string,int) hashtable  %8.1f bytes/state@." old_bs;
  Fmt.pr "  fingerprint store       %8.1f bytes/state  (%.1fx smaller)@."
    resident_bs (old_bs /. resident_bs);
  Fmt.pr "  + spill tier            %8.1f bytes/state resident  (%.1fx, %d spilled)@."
    spill_bs (old_bs /. spill_bs) spilled;
  let fl v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
  let oc = open_out "BENCH_MC.json" in
  Printf.fprintf oc
    "{\"schema\":\"dynvote-bench-mc/2\",\"depth\":%d,\"jobs\":%d,\"policies\":{%s},\"store\":{\"sampled_states\":%d,\"canonical_bytes_avg\":%s,\"hashtbl_bytes_per_state\":%s,\"resident_bytes_per_state\":%s,\"spill_resident_bytes_per_state\":%s,\"spilled_states\":%d,\"resident_ratio\":%s,\"spill_ratio\":%s}}\n"
    depth jobs
    (String.concat ","
       (List.map
          (fun (name, rr, full_t, reduction, rate, verdict,
                (t : Pool.steal_stats)) ->
            Printf.sprintf
              "\"%s\":{\"states\":%d,\"transitions_full\":%d,\"transitions_reduced\":%d,\"reduction\":%s,\"trans_per_s\":%s,\"verdict\":\"%s\",\"steal_totals\":{\"tasks_executed\":%d,\"steals\":%d,\"failed_steals\":%d,\"max_deque_depth\":%d}}"
              name rr.Explorer.distinct full_t rr.Explorer.transitions
              (fl reduction) (fl rate) verdict t.Pool.tasks_executed
              t.Pool.steals t.Pool.failed_steals t.Pool.max_deque_depth)
          policy_rows))
    sampled (fl canon_bytes) (fl old_bs) (fl resident_bs) (fl spill_bs) spilled
    (fl (old_bs /. resident_bs))
    (fl (old_bs /. spill_bs));
  close_out oc;
  Fmt.pr "wrote BENCH_MC.json@."

(* ------------------------------------------------------------------ *)
(* PAR: the execution layer itself.  The workload scales with the
   detected core count so per-worker work stays large against dispatch
   overhead (the schema-1 bench ran a fixed tiny workload on which pool
   overhead dominated and the measured "speedup" said nothing about the
   scheduler).  The identity assertions are the portable gate — they
   hold on any machine, including 1-core CI containers where wall-clock
   speedups are meaningless.

   The model-checker workload is deliberately deep-narrow: one policy
   over the FULL action alphabet.  That shape starves root-alphabet
   sharding (at most |alphabet| workers ever busy, the round finishing
   at the speed of the deepest root subtree) and is what the stealing
   frontier exists for.  It runs three ways — -j1, -jN over root shards
   (--steal off) and -jN over the stealing frontier — with the verdict
   asserted identical across all three and the frontier's steal
   counters recorded in BENCH_PAR.json (schema 2). *)

let par () =
  let n = max jobs 4 in
  let cores = Domain.recommended_domain_count () in
  section "PAR"
    (Printf.sprintf
       "Domain-pool execution layer: core-scaled workloads at -j 1 and -j %d\n\
        (%d core%s available).  Per-cell study results must be bit-identical;\n\
        model-checker verdicts must agree across -j1, root shards and the\n\
        stealing frontier." n cores (if cores = 1 then "" else "s"));
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Enough horizon per core that each of the 48 study cells hands every
     worker a meaningful slice; capped so a big box stays a bench, not a
     soak. *)
  let horizon = 20_360.0 *. float_of_int (min cores 16) in
  let study_parameters = { Study.default_parameters with Study.horizon } in
  let study_seq, study_seq_s = time (fun () -> Study.run ~parameters:study_parameters ~jobs:1 ()) in
  let study_par, study_par_s = time (fun () -> Study.run ~parameters:study_parameters ~jobs:n ()) in
  (* [compare] (not [=]) so the nan mean_outage_days cells of
     never-unavailable policies compare equal to themselves. *)
  let study_identical = compare study_seq study_par = 0 in
  Fmt.pr "  study (48 cells, %.0f-day horizon): -j1 %.2f s, -j%d %.2f s  [%s]@."
    study_parameters.Study.horizon study_seq_s n study_par_s
    (if study_identical then "IDENTICAL" else "MISMATCH");
  (* Deep-narrow bounded search: tdv-safe (the largest safe state space)
     over the full alphabet, one bound deeper where the cores can pay
     for it. *)
  let mc_depth = if cores >= 4 then 6 else 5 in
  let mc_policy = "tdv-safe" in
  let verdict_summary (report : Checker.report) =
    (* Exactly the scheduling-independent part of the result: the
       verdict, the bound, and the distinct-state count on Safe outcomes
       (on a violation the table size reflects when the search
       stopped). *)
    let r = report.Checker.result in
    match r.Explorer.outcome with
    | Explorer.Safe { closed } ->
        Printf.sprintf "safe depth=%d closed=%b distinct=%d" r.Explorer.depth closed
          r.Explorer.distinct
    | Explorer.Violation { trace; _ } ->
        Printf.sprintf "violation len=%d replays=%b" (List.length trace)
          (match report.Checker.verdict with
          | Checker.Counterexample { replay_matches; _ } -> replay_matches
          | _ -> false)
    | Explorer.Out_of_budget -> Printf.sprintf "budget depth=%d" r.Explorer.depth
  in
  let p = Option.get (Harness.policy_of_string mc_policy) in
  let run_mc ~jobs ~steal =
    Checker.check ~space:Dynvote_mc.Space.full ~policy:p ~depth:mc_depth ~jobs
      ~steal (Checker.paper_config ())
  in
  let mc_seq, mc_seq_s = time (fun () -> run_mc ~jobs:1 ~steal:true) in
  let mc_shard, mc_shard_s = time (fun () -> run_mc ~jobs:n ~steal:false) in
  let mc_steal, mc_steal_s = time (fun () -> run_mc ~jobs:n ~steal:true) in
  let base = verdict_summary mc_seq in
  let mc_identical =
    verdict_summary mc_shard = base && verdict_summary mc_steal = base
  in
  Fmt.pr
    "  mc (%s, full alphabet, depth %d): -j1 %.2f s, -j%d shards %.2f s,\n\
    \    -j%d stealing %.2f s  [%s]@."
    mc_policy mc_depth mc_seq_s n mc_shard_s n mc_steal_s
    (if mc_identical then "IDENTICAL" else "MISMATCH");
  Fmt.pr "    verdict: %s@." base;
  let totals =
    Dynvote_mc.Report.steal_totals mc_steal.Checker.result.Explorer.workers
  in
  Fmt.pr "    frontier: %d tasks, %d steals, %d failed steals, max deque %d@."
    totals.Pool.tasks_executed totals.Pool.steals totals.Pool.failed_steals
    totals.Pool.max_deque_depth;
  let total_seq = study_seq_s +. mc_seq_s
  and total_par = study_par_s +. mc_steal_s in
  let speedup = total_seq /. total_par in
  Fmt.pr "  total: -j1 %.2f s, -j%d %.2f s, speedup %.2fx on %d core%s@." total_seq n
    total_par speedup cores (if cores = 1 then "" else "s");
  let fl v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
  let oc = open_out "BENCH_PAR.json" in
  Printf.fprintf oc
    "{\"schema\":\"dynvote-bench-par/2\",\"jobs\":%d,\"cores\":%d,\"sections\":{\"study\":{\"horizon_days\":%s,\"j1_wall_s\":%s,\"jn_wall_s\":%s,\"speedup\":%s,\"identical\":%b},\"mc\":{\"policy\":\"%s\",\"space\":\"full\",\"depth\":%d,\"j1_wall_s\":%s,\"shard_wall_s\":%s,\"steal_wall_s\":%s,\"shard_speedup\":%s,\"steal_speedup\":%s,\"identical\":%b,\"verdict\":\"%s\",\"steal_totals\":{\"tasks_executed\":%d,\"steals\":%d,\"failed_steals\":%d,\"max_deque_depth\":%d}}},\"total\":{\"j1_wall_s\":%s,\"jn_wall_s\":%s,\"speedup\":%s}}\n"
    n cores (fl horizon) (fl study_seq_s) (fl study_par_s)
    (fl (study_seq_s /. study_par_s))
    study_identical mc_policy mc_depth (fl mc_seq_s) (fl mc_shard_s)
    (fl mc_steal_s)
    (fl (mc_seq_s /. mc_shard_s))
    (fl (mc_seq_s /. mc_steal_s))
    mc_identical base totals.Pool.tasks_executed totals.Pool.steals
    totals.Pool.failed_steals totals.Pool.max_deque_depth
    (fl total_seq) (fl total_par) (fl speedup);
  close_out oc;
  Fmt.pr "wrote BENCH_PAR.json@.";
  if not (study_identical && mc_identical) then
    failwith "PAR: parallel results diverged from sequential"

(* The boxed array-of-records layout the structure-of-arrays
   Event_queue replaced, kept as the MICRO baseline so the before/after
   ns/op stays measured rather than remembered. *)
module Boxed_queue = struct
  type 'a entry = { time : float; seq : int; payload : 'a }

  type 'a t = { mutable heap : 'a entry array; mutable size : int; mutable next_seq : int }

  let create () = { heap = [||]; size = 0; next_seq = 0 }
  let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let grow t =
    let capacity = Array.length t.heap in
    let heap = Array.make (if capacity = 0 then 16 else capacity * 2) t.heap.(0) in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if precedes t.heap.(i) t.heap.(parent) then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(parent);
        t.heap.(parent) <- tmp;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let left = (2 * i) + 1 in
    if left < t.size then begin
      let right = left + 1 in
      let smallest =
        if right < t.size && precedes t.heap.(right) t.heap.(left) then right else left
      in
      if precedes t.heap.(smallest) t.heap.(i) then begin
        let tmp = t.heap.(i) in
        t.heap.(i) <- t.heap.(smallest);
        t.heap.(smallest) <- tmp;
        sift_down t smallest
      end
    end

  let add t ~time payload =
    let entry = { time; seq = t.next_seq; payload } in
    t.next_seq <- t.next_seq + 1;
    if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
    if t.size = Array.length t.heap then grow t;
    t.heap.(t.size) <- entry;
    t.size <- t.size + 1;
    sift_up t (t.size - 1)

  let pop t =
    if t.size = 0 then None
    else begin
      let top = t.heap.(0) in
      t.size <- t.size - 1;
      if t.size > 0 then begin
        t.heap.(0) <- t.heap.(t.size);
        sift_down t 0
      end;
      Some (top.time, top.payload)
    end
end

(* Bechamel micro-benchmarks of the hot primitives. *)
let micro () =
  section "MICRO" "Bechamel micro-benchmarks of the core primitives (ns per call).";
  let open Bechamel in
  let ordering = Ordering.default 8 in
  let segment_of = Topology.segment_of Topology.ucsd in
  let states =
    let universe = Site_set.of_list [ 0; 1; 3; 5 ] in
    Array.make 8 (Replica.initial universe)
  in
  let reachable = Site_set.of_list [ 0; 1; 5 ] in
  let connectivity = Connectivity.create Topology.ucsd in
  let up = Site_set.remove 3 (Topology.all_sites Topology.ucsd) in
  let rng = Dynvote_prng.Rng.of_seed 99 in
  let queue = Dynvote_des.Event_queue.create () in
  let boxed_queue = Boxed_queue.create () in
  for i = 1 to 1024 do
    Dynvote_des.Event_queue.add queue ~time:(float_of_int (i * 7 mod 1024)) i;
    Boxed_queue.add boxed_queue ~time:(float_of_int (i * 7 mod 1024)) i
  done;
  let refresh_ctx = Operation.make_ctx ordering in
  let tests =
    [
      Test.make ~name:"decision_evaluate_ldv"
        (Staged.stage (fun () ->
             ignore
               (Decision.evaluate Decision.ldv_flavor ~ordering ~segment_of ~states
                  ~reachable ())));
      Test.make ~name:"decision_evaluate_tdv"
        (Staged.stage (fun () ->
             ignore
               (Decision.evaluate Decision.tdv_flavor ~ordering ~segment_of ~states
                  ~reachable ())));
      Test.make ~name:"connectivity_components"
        (Staged.stage (fun () -> ignore (Connectivity.components connectivity ~up)));
      Test.make ~name:"site_set_algebra"
        (Staged.stage (fun () ->
             ignore
               (Site_set.cardinal (Site_set.union reachable (Site_set.inter up reachable)))));
      Test.make ~name:"event_queue_add_pop"
        (Staged.stage (fun () ->
             Dynvote_des.Event_queue.add queue ~time:512.5 0;
             ignore (Dynvote_des.Event_queue.pop queue)));
      Test.make ~name:"event_queue_add_pop_boxed"
        (Staged.stage (fun () ->
             Boxed_queue.add boxed_queue ~time:512.5 0;
             ignore (Boxed_queue.pop boxed_queue)));
      Test.make ~name:"rng_exponential"
        (Staged.stage (fun () -> ignore (Dynvote_prng.Rng.exponential rng ~mean:36.5)));
      Test.make ~name:"refresh_operation"
        (Staged.stage (fun () ->
             let states = Array.make 8 (Replica.initial (Site_set.universe 5)) in
             ignore (Operation.refresh refresh_ctx states ~reachable:(Site_set.universe 5) ())));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~stabilize:false () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"core" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let analyzed = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let ns = match Analyze.OLS.estimates result with Some (t :: _) -> t | _ -> nan in
      rows := (name, ns) :: !rows)
    analyzed;
  let table =
    Text_table.create ~aligns:[ Text_table.Left; Text_table.Right ]
      ~header:[ "Primitive"; "ns/call" ] ()
  in
  List.iter
    (fun (name, ns) -> Text_table.add_row table [ name; Printf.sprintf "%.1f" ns ])
    (List.sort compare !rows);
  Text_table.print table

(* ------------------------------------------------------------------ *)
(* SERVE: the live socket-backed service under closed-loop load,
   durable (per-commit fsync) against buffered (atomic replace only) —
   the price of the paper's stable-storage requirement on this disk.   *)

module Live = Dynvote_live.Cluster
module Loadgen = Dynvote_live.Loadgen
module Hub = Dynvote_obs.Hub
module Batch_means = Dynvote_stats.Batch_means

module Obs_metrics = Dynvote_obs.Metrics

type hist_summary = { hs_n : int; hs_mean : float; hs_max : float }

(* Per-run facts beyond the loadgen result: the readiness backend, the
   exactly-once audit, and the event-loop/pipelining shape (batch sizes,
   rounds in flight, anchor reuse) read back from the hub registry. *)
type serve_extras = {
  x_backend : string;
  x_dup_applies : int;
  x_lock_rounds : int;
  x_gather_reused : int;
  x_batch_frames : hist_summary;
  x_inflight : hist_summary;
  x_commit_batch : hist_summary;
}

(* The shape of one serve configuration; [coordinator] funnels every
   call to one site (where anchoring and pipelining pay off). *)
type serve_shape = {
  sh_clients : int;
  sh_mode : Loadgen.mode;
  sh_pipeline : int;
  sh_max_reuse : int;
  sh_coordinator : int option;
}

let baseline_shape =
  {
    sh_clients = 4;
    sh_mode = `Threads;
    sh_pipeline = 1;
    sh_max_reuse = 0;
    sh_coordinator = None;
  }

let pipelined_shape =
  {
    sh_clients = 32;
    sh_mode = `Mux;
    sh_pipeline = 8;
    sh_max_reuse = 64;
    sh_coordinator = Some 1;
  }

let hist_summary m name =
  let h = Obs_metrics.histogram m name in
  {
    hs_n = Obs_metrics.histogram_count h;
    hs_mean = Obs_metrics.histogram_mean h;
    hs_max = Obs_metrics.histogram_max h;
  }

let serve_run ?(duration = 1.5) ?(shape = baseline_shape) ?(driver = Loadgen.run)
    ~durable ~obs () =
  let dir = Filename.temp_file "dynvote-bench-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let config =
    {
      Dynvote_live.Node.default_config with
      Dynvote_live.Node.gather_timeout = 0.05;
      lock_backoff = 0.02;
      durable;
      pipeline = shape.sh_pipeline;
      max_reuse = shape.sh_max_reuse;
    }
  in
  let cluster = Live.create ~config ~obs ~universe:(Site_set.universe 4) ~dir () in
  let result =
    driver cluster
      {
        Loadgen.default with
        Loadgen.clients = shape.sh_clients;
        duration;
        seed = 11;
        mode = shape.sh_mode;
        sites = Option.map Site_set.singleton shape.sh_coordinator;
      }
  in
  let audit = Live.check cluster in
  let m = (Live.obs cluster).Hub.metrics in
  let counter name = Obs_metrics.counter_value (Obs_metrics.counter m name) in
  let extras =
    {
      x_backend = Live.backend cluster;
      x_dup_applies = audit.Live.dup_applies;
      x_lock_rounds = counter "live.lock.rounds";
      x_gather_reused = counter "live.gather.reused";
      x_batch_frames = hist_summary m "net.batch.frames";
      x_inflight = hist_summary m "live.rounds.inflight";
      x_commit_batch = hist_summary m "live.commit.batch";
    }
  in
  Live.shutdown cluster;
  ( result,
    Dynvote_chaos.Oracle.is_safe audit.Live.oracle && audit.Live.dup_applies = 0,
    extras )

let serve_goodput (r : Loadgen.result) = r.Loadgen.goodput.Batch_means.mean

(* Baseline (sequential coordinator, thread-per-client generator) against
   the event-driven pipelined service (mux generator, one coordinator,
   anchored lock rounds).  The acceptance gate is >= 10x goodput at equal
   safety: audits green and zero duplicate applies on both sides. *)
let serve () =
  section "SERVE"
    "Live service: 4 sites on loopback sockets, 30% writes.  Baseline is \
     the\nsequential coordinator (pipeline 1, thread-per-client); pipelined \
     funnels a\nmux client herd at one coordinator (pipeline 8, anchor reuse \
     64).  Durable\npays two fsyncs per commit per site; buffered keeps the \
     atomic replace but\ntrusts the page cache.";
  let runs =
    List.map
      (fun (name, durable, shape) ->
        let r, safe, extras = serve_run ~duration:2.0 ~shape ~durable ~obs:(Hub.create ()) () in
        Fmt.pr "[%s] audit %s  loop %s@.@[<v>%a@]@." name
          (if safe then "SAFE" else "UNSAFE")
          extras.x_backend Loadgen.pp_result r;
        if shape.sh_pipeline > 1 then
          Fmt.pr
            "pipeline: %d lock rounds for %d granted (%d joined an anchor)  \
             commit batch mean %.1f  frame batch mean %.2f@."
            extras.x_lock_rounds
            (r.Loadgen.reads.Loadgen.granted + r.Loadgen.writes.Loadgen.granted)
            extras.x_gather_reused extras.x_commit_batch.hs_mean
            extras.x_batch_frames.hs_mean;
        Fmt.pr "@.";
        (name, shape, r, safe, extras))
      [
        ("durable", true, baseline_shape);
        ("buffered", false, baseline_shape);
        ("pipelined-durable", true, pipelined_shape);
        ("pipelined-buffered", false, pipelined_shape);
      ]
  in
  let find name =
    let _, _, r, safe, _ =
      List.find (fun (n, _, _, _, _) -> n = name) runs
    in
    (r, safe)
  in
  let speedup base pipelined =
    let b, b_safe = find base and p, p_safe = find pipelined in
    let ratio =
      if serve_goodput b > 0.0 then serve_goodput p /. serve_goodput b else nan
    in
    (ratio, b_safe && p_safe)
  in
  let durable_speedup, durable_safe = speedup "durable" "pipelined-durable" in
  let buffered_speedup, buffered_safe = speedup "buffered" "pipelined-buffered" in
  let gate = buffered_speedup >= 10.0 && buffered_safe in
  Fmt.pr
    "speedup: durable %.1fx (%s), buffered %.1fx (%s)@.gate: %s - pipelined \
     buffered >= 10x baseline at equal safety@.@."
    durable_speedup
    (if durable_safe then "safe" else "UNSAFE")
    buffered_speedup
    (if buffered_safe then "safe" else "UNSAFE")
    (if gate then "PASS" else "FAIL");
  (runs, (durable_speedup, buffered_speedup, gate))

(* One sweep step's client herd in a separate process.  RLIMIT_NOFILE
   is per-process, and without CAP_SYS_RESOURCE the hard cap cannot be
   raised — so when both ends of ten thousand loopback sockets cannot
   share one descriptor table, the herd's end moves out: the child
   re-executes this binary with a hidden flag, drives
   [Loadgen.run_at] against the parent's switchboard port, and ships
   the marshalled result back over a pipe. *)
let mux_child_flag = "--mux-child"

let mux_child_config ~clients ~duration ~seed =
  {
    Loadgen.default with
    Loadgen.clients;
    duration;
    seed;
    mode = `Mux;
    sites = Option.map Site_set.singleton pipelined_shape.sh_coordinator;
  }

let mux_child_main () =
  match Sys.argv with
  | [| _; flag; port; clients; duration; seed |] when flag = mux_child_flag ->
      let config =
        mux_child_config ~clients:(int_of_string clients)
          ~duration:(float_of_string duration) ~seed:(int_of_string seed)
      in
      let result =
        Loadgen.run_at ~port:(int_of_string port)
          ~universe:(Site_set.universe 4) config
      in
      set_binary_mode_out stdout true;
      Marshal.to_channel stdout result [];
      exit 0
  | _ -> ()

let run_mux_in_child cluster (config : Loadgen.config) =
  let rd, wr = Unix.pipe () in
  let argv =
    [|
      Sys.executable_name;
      mux_child_flag;
      string_of_int (Live.port cluster);
      string_of_int config.Loadgen.clients;
      Printf.sprintf "%.17g" config.Loadgen.duration;
      string_of_int config.Loadgen.seed;
    |]
  in
  let pid = Unix.create_process Sys.executable_name argv Unix.stdin wr Unix.stderr in
  Unix.close wr;
  let ic = Unix.in_channel_of_descr rd in
  set_binary_mode_in ic true;
  let result =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        (Marshal.from_channel ic : Loadgen.result))
  in
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> failwith "mux herd child exited abnormally");
  result

(* The goodput/latency knee: the same pipelined-buffered service under a
   widening mux client herd.  Ten thousand clients are ten thousand
   sockets on each side of the broker, so the fd limit is raised first;
   a step whose two socket ends cannot share the descriptor table runs
   its herd in a child process (each process has its own limit), and a
   step that cannot fit even then is dropped loudly, never silently. *)
let serve_sweep () =
  section "SERVE-SWEEP"
    "Client scaling, 10 -> 10k: the pipelined-buffered configuration under \
     a\ngrowing mux herd.  Goodput saturates at the coordinator's capacity; \
     the\nlatency knee is where queueing for the pipeline begins.";
  let steps = [ 10; 32; 100; 320; 1000; 3200; 10000 ] in
  let limit = Dynvote_live.Evloop.raise_fd_limit (2 * 10000 + 4096) in
  let fits_in_process c = (2 * c) + 512 <= limit in
  let fits_with_child c = c + 512 <= limit in
  let rows =
    List.filter_map
      (fun clients ->
        let shape = { pipelined_shape with sh_clients = clients } in
        let driver =
          if fits_in_process clients then Some Loadgen.run
          else if fits_with_child clients then begin
            Fmt.pr
              "%d clients: both socket ends exceed the fd limit (%d); running \
               the herd in a child process@."
              clients limit;
            Some run_mux_in_child
          end
          else begin
            Fmt.pr "skipping %d clients: fd limit %d is too low even split \
                    across two processes@."
              clients limit;
            None
          end
        in
        (* The measurement window opens before the herd connects, and a
           ten-thousand-client handshake wave takes several seconds on
           its own — scale the window so the biggest herds still get a
           few seconds of steady state inside it. *)
        let duration = Float.max 2.5 (float_of_int clients /. 800.) in
        Option.map
          (fun driver ->
            let r, safe, _ =
              serve_run ~duration ~shape ~driver ~durable:false
                ~obs:(Hub.create ()) ()
            in
            (clients, r, safe))
          driver)
      steps
  in
  let table =
    Text_table.create
      ~aligns:
        [ Text_table.Right; Text_table.Right; Text_table.Right;
          Text_table.Right; Text_table.Right; Text_table.Right; Text_table.Left ]
      ~header:
        [ "clients"; "goodput"; "p50 ms"; "p95 ms"; "p99 ms"; "late"; "audit" ]
      ()
  in
  List.iter
    (fun (clients, (r : Loadgen.result), safe) ->
      let ms v = if Float.is_nan v then "-" else Printf.sprintf "%.1f" (v *. 1e3) in
      let p q =
        (* reads and writes see the same queue; report the slower side *)
        Float.max
          (match q with
          | `P50 -> r.Loadgen.reads.Loadgen.p50
          | `P95 -> r.Loadgen.reads.Loadgen.p95
          | `P99 -> r.Loadgen.reads.Loadgen.p99)
          (match q with
          | `P50 -> r.Loadgen.writes.Loadgen.p50
          | `P95 -> r.Loadgen.writes.Loadgen.p95
          | `P99 -> r.Loadgen.writes.Loadgen.p99)
      in
      Text_table.add_row table
        [
          string_of_int clients;
          Printf.sprintf "%.0f" (serve_goodput r);
          ms (p `P50);
          ms (p `P95);
          ms (p `P99);
          string_of_int r.Loadgen.late;
          (if safe then "SAFE" else "UNSAFE");
        ])
    rows;
  Text_table.print table;
  Fmt.pr "@.";
  rows

(* ------------------------------------------------------------------ *)
(* OBS: what the observability layer costs.  The same buffered run with
   the hub live (counters + histograms + trace ring on every frame and
   operation) and with the compiled-in no-op hub, goodput against
   goodput.  The acceptance budget is 5%, but a point-estimate
   comparison is meaningless when the batch-means intervals are wider
   than the budget — so the run length doubles until both half-widths
   are under ~10% of their means (capped), and the gate is CI overlap:
   the overhead is undetectable when the live and no-op intervals
   intersect.                                                          *)

let obs_bench () =
  section "OBS"
    "Instrumentation overhead: the buffered SERVE workload with the \
     metrics+trace\nhub live vs. the compiled-in no-op hub.  The run is \
     lengthened until the\ngoodput CIs resolve; the gate is CI overlap.";
  let goodput (r : Loadgen.result) = r.Loadgen.goodput.Batch_means.mean in
  let half_width (r : Loadgen.result) = r.Loadgen.goodput.Batch_means.half_width in
  let rel_hw r =
    let g = goodput r in
    if g <= 0.0 then infinity else half_width r /. g
  in
  let target = 0.10 and max_duration = 12.0 in
  let rec measure duration =
    let live_r, live_safe, _ = serve_run ~duration ~durable:false ~obs:(Hub.create ()) () in
    let noop_r, noop_safe, _ = serve_run ~duration ~durable:false ~obs:Hub.noop () in
    let live = (live_r, live_safe) and noop = (noop_r, noop_safe) in
    let worst = Float.max (rel_hw live_r) (rel_hw noop_r) in
    if worst > target && duration *. 2.0 <= max_duration then begin
      Fmt.pr "  (%.1f s runs leave a +/-%.0f%% goodput CI - above the %.0f%% \
              target; doubling)@."
        duration (100.0 *. worst) (100.0 *. target);
      measure (duration *. 2.0)
    end
    else (live, noop, duration)
  in
  let (live_r, live_safe), (noop_r, noop_safe), duration = measure 3.0 in
  let overhead_pct =
    let g_noop = goodput noop_r in
    if g_noop <= 0.0 then nan
    else (g_noop -. goodput live_r) /. g_noop *. 100.0
  in
  let ci_overlap =
    Float.abs (goodput noop_r -. goodput live_r)
    <= half_width noop_r +. half_width live_r
  in
  let table = Text_table.create ~header:[ "hub"; "goodput ops/s"; "95% CI"; "audit" ] () in
  List.iter
    (fun (name, (r : Loadgen.result), safe) ->
      Text_table.add_row table
        [
          name;
          Printf.sprintf "%.1f" (goodput r);
          Printf.sprintf "+/- %.1f (%.0f%%)" (half_width r) (100.0 *. rel_hw r);
          (if safe then "SAFE" else "UNSAFE");
        ])
    [ ("live", live_r, live_safe); ("noop", noop_r, noop_safe) ];
  Text_table.print table;
  Fmt.pr
    "instrumentation overhead: %.1f%% of no-op goodput over %.1f s runs \
     (budget 5%%)@.gate: %s - the live and no-op goodput CIs %s@."
    overhead_pct duration
    (if ci_overlap || overhead_pct <= 5.0 then "PASS" else "FAIL")
    (if ci_overlap then "overlap (overhead undetectable at this precision)"
     else "do not overlap");
  ((live_r, live_safe), (noop_r, noop_safe), overhead_pct, ci_overlap, duration)

(* BENCH_SERVE.json: the machine-readable perf trajectory of the live
   service — one record per configuration, plus the instrumentation
   overhead, so regressions show up as a diff.                         *)

let write_bench_serve ~path
    (serve_results, (durable_speedup, buffered_speedup, speedup_gate)) sweep
    ((live_r, live_safe), (noop_r, noop_safe), overhead_pct, ci_overlap, obs_duration) =
  let b = Buffer.create 4096 in
  let fl v =
    if Float.is_finite v then Printf.sprintf "%.6g" v else "null"
  in
  let op (o : Loadgen.op_stats) =
    Printf.sprintf
      "{\"issued\":%d,\"granted\":%d,\"denied\":%d,\"aborted\":%d,\"degraded\":%d,\"retried\":%d,\"dup_acks\":%d,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
      o.Loadgen.issued o.Loadgen.granted o.Loadgen.denied o.Loadgen.aborted
      o.Loadgen.degraded o.Loadgen.retried o.Loadgen.dup_acks
      (fl o.Loadgen.p50) (fl o.Loadgen.p95) (fl o.Loadgen.p99)
  in
  let result_fields (r : Loadgen.result) safe =
    Printf.sprintf
      "\"goodput\":%s,\"half_width\":%s,\"batches\":%d,\"wall\":%s,\"late\":%d,\"safe\":%b,\"reads\":%s,\"writes\":%s"
      (fl r.Loadgen.goodput.Batch_means.mean)
      (fl r.Loadgen.goodput.Batch_means.half_width)
      r.Loadgen.goodput.Batch_means.batches
      (fl r.Loadgen.wall) r.Loadgen.late safe (op r.Loadgen.reads)
      (op r.Loadgen.writes)
  in
  let shape_fields s =
    Printf.sprintf
      "\"clients\":%d,\"mode\":\"%s\",\"pipeline\":%d,\"max_reuse\":%d,\"coordinator\":%s"
      s.sh_clients
      (match s.sh_mode with `Threads -> "threads" | `Mux -> "mux")
      s.sh_pipeline s.sh_max_reuse
      (match s.sh_coordinator with None -> "null" | Some c -> string_of_int c)
  in
  let hist h =
    Printf.sprintf "{\"n\":%d,\"mean\":%s,\"max\":%s}" h.hs_n (fl h.hs_mean)
      (fl h.hs_max)
  in
  let extras_fields x =
    Printf.sprintf
      "\"dup_applies\":%d,\"lock_rounds\":%d,\"gather_reused\":%d,\"batch_frames\":%s,\"rounds_inflight\":%s,\"commit_batch\":%s"
      x.x_dup_applies x.x_lock_rounds x.x_gather_reused
      (hist x.x_batch_frames) (hist x.x_inflight) (hist x.x_commit_batch)
  in
  let loop_backend =
    match serve_results with
    | (_, _, _, _, x) :: _ -> x.x_backend
    | [] -> "unknown"
  in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"dynvote-bench-serve/4\",\"loop_backend\":\"%s\",\"runs\":{"
       loop_backend);
  List.iteri
    (fun i (name, shape, r, safe, x) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":{%s,%s,%s}" name (shape_fields shape)
           (result_fields r safe) (extras_fields x)))
    serve_results;
  List.iter
    (fun (name, r, safe) ->
      Buffer.add_string b
        (Printf.sprintf ",\"%s\":{%s,%s}" name (shape_fields baseline_shape)
           (result_fields r safe)))
    [ ("obs-live", live_r, live_safe); ("obs-noop", noop_r, noop_safe) ];
  Buffer.add_string b
    (Printf.sprintf
       "},\"speedup\":{\"durable\":%s,\"buffered\":%s,\"gate\":\"%s\",\"floor\":10.0},\"sweep\":["
       (fl durable_speedup) (fl buffered_speedup)
       (if speedup_gate then "pass" else "fail"));
  List.iteri
    (fun i (clients, (r : Loadgen.result), safe) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"clients\":%d,%s}" clients (result_fields r safe)))
    sweep;
  Buffer.add_string b
    (Printf.sprintf
       "],\"obs_overhead_pct\":%s,\"obs_ci_overlap\":%b,\"obs_duration_s\":%s,\"obs_gate\":\"%s\"}"
       (fl overhead_pct) ci_overlap (fl obs_duration)
       (if ci_overlap || overhead_pct <= 5.0 then "pass" else "fail"));
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* CRASH: what surviving a disk costs.  A slice of the crash-point
   recovery matrix (restart-to-verdict times per cell), then goodput
   with one of four sites fenced after a storage fault — clients retry
   across sites under the same request number, so the run also counts
   dedup acknowledgements and fenced-site rejections.                  *)

module Crash_matrix = Dynvote_live.Crash_matrix
module Faultfs = Dynvote_faultfs.Faultfs
module Storage = Dynvote_chaos.Fault_plan.Storage

let crash_serve_run ?(duration = 1.5) ~fenced () =
  let dir = Filename.temp_file "dynvote-bench-crash" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let config =
    {
      Dynvote_live.Node.default_config with
      Dynvote_live.Node.gather_timeout = 0.05;
      lock_backoff = 0.02;
      durable = false;
    }
  in
  let ff = Faultfs.create ~seed:3 () in
  let vfs_of site =
    if fenced && site = 0 then Faultfs.vfs ff else Vfs.real
  in
  let cluster =
    Live.create ~config ~obs:(Hub.create ()) ~vfs_of
      ~universe:(Site_set.universe 4) ~dir ()
  in
  (* Site 0's very next data write fails: the first commit that touches
     it fences it for the whole run. *)
  if fenced then
    Faultfs.arm_next ff
      { Storage.fault = Storage.Eio; file = Storage.Data;
        op = Storage.Write; nth = 1 };
  let result =
    Loadgen.run cluster
      { Loadgen.default with Loadgen.clients = 4; duration; seed = 11;
        retries = 2 }
  in
  let audit = Live.check cluster in
  let fenced_sites =
    Site_set.filter (fun s -> Live.degraded cluster s <> None)
      (Live.universe cluster)
  in
  Live.shutdown cluster;
  ( result,
    Dynvote_chaos.Oracle.is_safe audit.Live.oracle
    && audit.Live.dup_applies = 0,
    Site_set.cardinal fenced_sites )

let crash_bench () =
  section "CRASH"
    "Crash-point recovery matrix (one point per file class x {eio, \
     fsync-lie, crash}),\nthen degraded-mode goodput: the same closed-loop \
     load with site 0 fenced by a\ndisk fault, clients retrying across \
     sites under the same request number.";
  let dir = Filename.temp_file "dynvote-bench-crashmat" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let points =
    List.filter
      (fun p ->
        List.mem (Crash_matrix.point_name p)
          [ "ensemble.rename"; "data.fsync"; "oplog.write" ])
      Crash_matrix.points
  in
  let faults = [ Storage.Eio; Storage.Fsync_lie; Storage.Crash ] in
  let cells = Crash_matrix.run ~jobs ~seed:1 ~faults ~points ~dir () in
  Fmt.pr "@[<v>%a@]@.@." Crash_matrix.pp_table cells;
  let recoveries = List.map (fun c -> c.Crash_matrix.c_recovery) cells in
  let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l) in
  let fenced_cells =
    List.length
      (List.filter
         (fun c ->
           match c.Crash_matrix.c_outcome with
           | Crash_matrix.Fenced _ -> true
           | _ -> false)
         cells)
  in
  Fmt.pr
    "restart-to-verdict: min %.0f ms, mean %.0f ms, max %.0f ms over %d \
     cells (%d fenced)@.@."
    (1000.0 *. List.fold_left Float.min infinity recoveries)
    (1000.0 *. mean recoveries)
    (1000.0 *. List.fold_left Float.max 0.0 recoveries)
    (List.length cells) fenced_cells;
  let (healthy_r, healthy_safe, _) = crash_serve_run ~fenced:false () in
  let (degraded_r, degraded_safe, fenced_sites) = crash_serve_run ~fenced:true () in
  let goodput (r : Loadgen.result) = r.Loadgen.goodput.Dynvote_stats.Batch_means.mean in
  let table =
    Text_table.create
      ~header:[ "run"; "goodput ops/s"; "retries"; "dup acks"; "fenced replies"; "audit" ]
      ()
  in
  List.iter
    (fun (name, (r : Loadgen.result), safe) ->
      Text_table.add_row table
        [
          name;
          Printf.sprintf "%.1f" (goodput r);
          string_of_int (r.Loadgen.reads.Loadgen.retried + r.Loadgen.writes.Loadgen.retried);
          string_of_int (r.Loadgen.reads.Loadgen.dup_acks + r.Loadgen.writes.Loadgen.dup_acks);
          string_of_int (r.Loadgen.reads.Loadgen.degraded + r.Loadgen.writes.Loadgen.degraded);
          (if safe then "SAFE" else "UNSAFE");
        ])
    [ ("healthy", healthy_r, healthy_safe);
      ("one site fenced", degraded_r, degraded_safe) ];
  Text_table.print table;
  let g_h = goodput healthy_r and g_d = goodput degraded_r in
  if g_h > 0.0 then
    Fmt.pr "degraded-mode goodput: %.0f%% of healthy (%d site(s) fenced)@."
      (100.0 *. g_d /. g_h) fenced_sites;
  (cells, (healthy_r, healthy_safe), (degraded_r, degraded_safe, fenced_sites))

let write_bench_crash ~path
    (cells, (healthy_r, healthy_safe), (degraded_r, degraded_safe, fenced_sites)) =
  let b = Buffer.create 1024 in
  let fl v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
  Buffer.add_string b "{\"schema\":\"dynvote-bench-crash/1\",\"cells\":[";
  List.iteri
    (fun i (c : Crash_matrix.cell) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"point\":\"%s\",\"fault\":\"%s\",\"outcome\":\"%c\",\"recovery_s\":%s,\"injected\":%d}"
           (Crash_matrix.point_name c.Crash_matrix.c_point)
           (Storage.fault_name c.Crash_matrix.c_fault)
           (Crash_matrix.outcome_letter c.Crash_matrix.c_outcome)
           (fl c.Crash_matrix.c_recovery) c.Crash_matrix.c_injected))
    cells;
  let emit_run name (r : Loadgen.result) safe extra =
    let ops (o : Loadgen.op_stats) =
      Printf.sprintf
        "{\"issued\":%d,\"granted\":%d,\"denied\":%d,\"aborted\":%d,\"degraded\":%d,\"retried\":%d,\"dup_acks\":%d,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
        o.Loadgen.issued o.Loadgen.granted o.Loadgen.denied o.Loadgen.aborted
        o.Loadgen.degraded o.Loadgen.retried o.Loadgen.dup_acks
        (fl o.Loadgen.p50) (fl o.Loadgen.p95) (fl o.Loadgen.p99)
    in
    Buffer.add_string b
      (Printf.sprintf
         "\"%s\":{\"goodput\":%s,\"half_width\":%s,\"safe\":%b%s,\"reads\":%s,\"writes\":%s}"
         name
         (fl r.Loadgen.goodput.Dynvote_stats.Batch_means.mean)
         (fl r.Loadgen.goodput.Dynvote_stats.Batch_means.half_width)
         safe extra
         (ops r.Loadgen.reads) (ops r.Loadgen.writes))
  in
  Buffer.add_string b "],\"runs\":{";
  emit_run "healthy" healthy_r healthy_safe "";
  Buffer.add_char b ',';
  emit_run "degraded" degraded_r degraded_safe
    (Printf.sprintf ",\"fenced_sites\":%d" fenced_sites);
  Buffer.add_string b "}}";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* SHARD: the sharded object space at scale.  Per-operation cost of the
   storage spine plus the LRU residency layer as the key space grows
   10^3 -> 10^6 (the million-object claim: cost is bounded by the
   residency cap, not the key count), then the live group-quorum
   payoff — keys per lock round under a skewed mux herd.              *)

module Shard_store = Dynvote_shard.Shard_store
module Shard_map = Dynvote_shard.Shard_map
module Zipf = Dynvote_shard.Zipf

type shard_tier = {
  t_keys : int;
  t_populate_s : float;  (** wall time to commit every key once *)
  t_ns_per_op : float;  (** skewed get/update mix through the LRU layer *)
  t_materialized : int;
  t_evicted : int;
}

let shard_resident_cap = 4096
let shard_tier_ops = 200_000

let shard_tier ~keys =
  let dir = Filename.temp_file "dynvote-bench-shard" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let universe = Site_set.universe 4 in
  let store, _info =
    Shard_store.open_store ~durable:false ~dir ~site:0 ~shards:64 ()
  in
  let key = Printf.sprintf "key-%07d" in
  let t0 = Unix.gettimeofday () in
  for k = 0 to keys - 1 do
    Shard_store.commit store ~key:(key k) ~rid:0
      {
        Shard_store.op_no = 2;
        version = 2;
        partition = universe;
        data_version = 2;
        value = Some "seed";
      }
  done;
  let populate_s = Unix.gettimeofday () -. t0 in
  let map =
    Shard_map.create ~store ~resident:shard_resident_cap ~universe ()
  in
  let zipf = Zipf.create ~n:keys ~s:1.1 in
  let rng = Dynvote_prng.Rng.of_seed 42 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to shard_tier_ops - 1 do
    let k = key (Zipf.sample zipf (Dynvote_prng.Rng.float rng)) in
    let e = Shard_map.find map k in
    Shard_map.pin e;
    if i mod 3 = 0 then begin
      let r = Shard_map.replica e in
      Shard_map.set_replica e
        (Replica.with_commit r ~op_no:(Replica.op_no r + 1)
           ~version:(Replica.version r + 1) ~partition:universe);
      Shard_map.set_data_version e (Replica.version (Shard_map.replica e));
      Shard_map.set_value e (Some "update");
      Shard_store.commit store ~key:k ~rid:0 (Shard_map.state_of e)
    end
    else ignore (Shard_map.value e);
    Shard_map.unpin e
  done;
  let ns_per_op =
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int shard_tier_ops
  in
  let tier =
    {
      t_keys = keys;
      t_populate_s = populate_s;
      t_ns_per_op = ns_per_op;
      t_materialized = Shard_map.materializations map;
      t_evicted = Shard_map.evictions map;
    }
  in
  Shard_store.close store;
  tier

(* The live side: a sharded pipelined cluster under a skewed mux herd
   funnelled at one coordinator, so scheduler bursts carry many keys
   and the group path locks them in one wire round. *)
let shard_live_run () =
  let dir = Filename.temp_file "dynvote-bench-shardlive" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let config =
    {
      Dynvote_live.Node.default_config with
      Dynvote_live.Node.gather_timeout = 0.05;
      lock_backoff = 0.02;
      durable = false;
      pipeline = 8;
      max_reuse = 64;
      shards = 64;
      resident = shard_resident_cap;
    }
  in
  let cluster =
    Live.create ~config ~obs:(Hub.create ()) ~universe:(Site_set.universe 4)
      ~dir ()
  in
  let result =
    Loadgen.run cluster
      {
        Loadgen.default with
        Loadgen.clients = 32;
        duration = 2.0;
        seed = 11;
        keys = 512;
        zipf = 1.1;
        mode = `Mux;
        sites = Some (Site_set.singleton 1);
      }
  in
  let audit = Live.check cluster in
  let m = (Live.obs cluster).Hub.metrics in
  let batch = hist_summary m "live.shard.group.batch" in
  Live.shutdown cluster;
  let safe =
    Dynvote_chaos.Oracle.is_safe audit.Live.oracle
    && audit.Live.kviolations = [] && audit.Live.dup_applies = 0
  in
  (result, safe, audit.Live.keys, batch)

let shard_bench () =
  section "SHARD"
    "The sharded object space: per-operation cost of the spine + LRU\n\
     residency layer as the key space grows 1k -> 1M (Zipf 1.1 mix, one\n\
     update per two reads), then the live group-quorum payoff under a\n\
     skewed mux herd.  The gate: the million-key per-op cost stays within\n\
     2x of the thousand-key cost — residency, not key count, bounds it.";
  let tiers =
    List.map (fun keys -> shard_tier ~keys) [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let table =
    Text_table.create
      ~aligns:
        [ Text_table.Right; Text_table.Right; Text_table.Right;
          Text_table.Right; Text_table.Right ]
      ~header:[ "keys"; "populate s"; "ns/op"; "materialized"; "evicted" ]
      ()
  in
  List.iter
    (fun t ->
      Text_table.add_row table
        [
          string_of_int t.t_keys;
          Printf.sprintf "%.2f" t.t_populate_s;
          Printf.sprintf "%.0f" t.t_ns_per_op;
          string_of_int t.t_materialized;
          string_of_int t.t_evicted;
        ])
    tiers;
  Text_table.print table;
  let cost keys =
    (List.find (fun t -> t.t_keys = keys) tiers).t_ns_per_op
  in
  let ratio = cost 1_000_000 /. cost 1_000 in
  let gate = ratio <= 2.0 in
  Fmt.pr
    "@.per-op cost at 1M keys: %.2fx the 1k-key cost (floor: a key space\n\
     1000x larger may cost at most 2x per op)@.gate: %s@.@."
    ratio
    (if gate then "PASS" else "FAIL");
  let live_r, live_safe, live_keys, batch = shard_live_run () in
  Fmt.pr "[group quorums] audit %s  %d keys audited@.@[<v>%a@]@."
    (if live_safe then "SAFE" else "UNSAFE")
    live_keys Loadgen.pp_result live_r;
  Fmt.pr
    "group path: %d lock rounds, %.2f keys per round (max %.0f) — the\n\
     batching the per-key protocol buys back@."
    batch.hs_n batch.hs_mean batch.hs_max;
  (tiers, (ratio, gate), (live_r, live_safe, live_keys, batch))

let write_bench_shard ~path
    (tiers, (ratio, gate), ((live_r : Loadgen.result), live_safe, live_keys, batch)) =
  let b = Buffer.create 1024 in
  let fl v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"dynvote-bench-shard/1\",\"resident_cap\":%d,\"ops_per_tier\":%d,\"tiers\":["
       shard_resident_cap shard_tier_ops);
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"keys\":%d,\"populate_s\":%s,\"ns_per_op\":%s,\"materialized\":%d,\"evicted\":%d}"
           t.t_keys (fl t.t_populate_s) (fl t.t_ns_per_op) t.t_materialized
           t.t_evicted))
    tiers;
  Buffer.add_string b
    (Printf.sprintf
       "],\"gate\":{\"ratio_1m_over_1k\":%s,\"ceiling\":2.0,\"verdict\":\"%s\"},"
       (fl ratio)
       (if gate then "pass" else "fail"));
  Buffer.add_string b
    (Printf.sprintf
       "\"live\":{\"clients\":32,\"keys\":512,\"zipf\":1.1,\"goodput\":%s,\"half_width\":%s,\"safe\":%b,\"keys_audited\":%d,\"hotset_distinct\":%d,\"hotset_top_share\":%s,\"group_batch\":{\"n\":%d,\"mean\":%s,\"max\":%s}}}"
       (fl live_r.Loadgen.goodput.Batch_means.mean)
       (fl live_r.Loadgen.goodput.Batch_means.half_width)
       live_safe live_keys live_r.Loadgen.hotset.Loadgen.distinct
       (fl live_r.Loadgen.hotset.Loadgen.top_share)
       batch.hs_n (fl batch.hs_mean) (fl batch.hs_max));
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "wrote %s@." path

(* DYNVOTE_BENCH_SECTIONS: a comma-separated allow-list of section
   names (paper, chaos, mc, par, serve, crash, shard, micro); unset or
   empty runs everything.  Refreshing one BENCH_*.json artifact no
   longer costs a full study rerun. *)
let section_wanted =
  match Sys.getenv_opt "DYNVOTE_BENCH_SECTIONS" with
  | None | Some "" -> fun _ -> true
  | Some spec ->
      let names = String.split_on_char ',' spec |> List.map String.trim in
      fun name -> List.mem name names

let () =
  (* A child herd re-exec sees the flag before anything prints. *)
  mux_child_main ();
  Fmt.pr "dynvote benchmark harness - 'Efficient Dynamic Voting Algorithms' (ICDE 1988)@.";
  Fmt.pr "jobs: %d (-j N or DYNVOTE_JOBS to change; hardware recommends %d)@." jobs
    (Pool.recommended ());
  if section_wanted "paper" then begin
    table1 ();
    figure8 ();
    let results = tables23 () in
    claims results;
    sweep ();
    recovery_ablation ();
    messages ();
    validate ();
    reliability ();
    extensions ();
    replications ()
  end;
  if section_wanted "chaos" then chaos ();
  if section_wanted "mc" then mc ();
  if section_wanted "par" then par ();
  if section_wanted "serve" then begin
    let serve_results = serve () in
    let sweep_results = serve_sweep () in
    let obs_results = obs_bench () in
    write_bench_serve ~path:"BENCH_SERVE.json" serve_results sweep_results
      obs_results
  end;
  if section_wanted "crash" then begin
    let crash_results = crash_bench () in
    write_bench_crash ~path:"BENCH_CRASH.json" crash_results
  end;
  if section_wanted "shard" then begin
    let shard_results = shard_bench () in
    write_bench_shard ~path:"BENCH_SHARD.json" shard_results
  end;
  if section_wanted "micro" then micro ();
  Fmt.pr "@.done.@."
