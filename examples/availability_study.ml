(* A miniature availability study: configuration B (copies at sites 1, 2
   and 6 of the Figure 8 network, with gateway site 4 as the single
   partition point), all six policies, on a 30 000-day simulated horizon.

   This is the paper's Table 2 machinery scoped to one row, with
   confidence intervals and outage statistics — a template for studying
   your own placements and policies.

   Run with:  dune exec examples/availability_study.exe *)

module Study = Dynvote_sim.Study
module Config = Dynvote_sim.Config
module Table = Dynvote_sim.Table
module Text_table = Dynvote_report.Text_table

let () =
  let config =
    match Config.find "B" with Some c -> c | None -> assert false
  in
  Fmt.pr "Configuration %a@." Config.pp config;
  Fmt.pr "Topology:@.%a@.@." Dynvote_net.Topology.pp_ascii Dynvote_net.Topology.ucsd;

  let parameters =
    { Study.default_parameters with horizon = 30_360.0; batches = 10; seed = 2024 }
  in
  Fmt.pr "Simulating %.0f days (%.0f-day warm-up, %d batches)...@.@."
    parameters.Study.horizon parameters.Study.warmup parameters.Study.batches;

  let results = Study.run ~parameters ~configs:[ config ] () in
  Text_table.print (Table.intervals results);

  Fmt.pr "@.Unavailability, highest to lowest:@.";
  results
  |> List.sort (fun a b -> compare b.Study.unavailability a.Study.unavailability)
  |> List.iter (fun r ->
         Fmt.pr "  %-5s %.6f  (mean outage %s days)@."
           (Policy.kind_name r.Study.kind)
           r.Study.unavailability
           (Text_table.cell_float ~decimals:3 r.Study.mean_outage_days));

  (* The qualitative findings the paper reports for three-copy
     configurations with a partition point. *)
  let find kind = List.find (fun r -> r.Study.kind = kind) results in
  assert ((find Policy.Ldv).Study.unavailability <= (find Policy.Dv).Study.unavailability);
  assert ((find Policy.Tdv).Study.unavailability <= (find Policy.Ldv).Study.unavailability);
  Fmt.pr "@.Findings hold: LDV beats DV; TDV beats LDV (sites 1 and 2 share@.";
  Fmt.pr "segment alpha, so topological voting can claim votes there).@."
