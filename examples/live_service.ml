(* The live service, end to end: a three-plus-one-site replicated KV
   store where every site is a real server thread behind a loopback
   socket, every client operation is a genuine request/reply exchange
   running the paper's coordinator protocol, and every fault is injected
   live into the connection fabric.

   The walkthrough mirrors the paper's story: a write replicates
   everywhere, a partition strands the minority (which is denied, not
   wrong), healing plus RECOVER brings it back, and at the end the
   per-node on-disk operation logs are replayed through the safety
   oracle.

   Run with:  dune exec examples/live_service.exe *)

module Live = Dynvote_live.Cluster
module Wire = Dynvote_live.Wire

let show label (reply : Live.reply) =
  match reply.Live.status with
  | Wire.Granted -> (
      match reply.Live.value with
      | Some v -> Fmt.pr "%-28s granted, value %S@." label v
      | None -> Fmt.pr "%-28s granted@." label)
  | Wire.Denied -> Fmt.pr "%-28s denied (%s)@." label reply.Live.info
  | Wire.Aborted -> Fmt.pr "%-28s aborted (%s)@." label reply.Live.info
  | Wire.Degraded -> Fmt.pr "%-28s degraded (%s)@." label reply.Live.info

let () =
  let dir = Filename.temp_file "dynvote-live-example" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let universe = Site_set.universe 4 in
  let cluster = Live.create ~universe ~dir () in
  Fmt.pr "four sites serving on loopback port %d, state under %s@.@."
    (Live.port cluster) dir;
  let c = Live.client cluster in

  show "put color=blue at site 0" (Live.put c ~at:0 ~key:"color" ~value:"blue");
  show "get color at site 3" (Live.get c ~at:3 ~key:"color");

  Fmt.pr "@.partitioning {0,1} | {2,3}...@.";
  Live.partition cluster [ Site_set.of_list [ 0; 1 ]; Site_set.of_list [ 2; 3 ] ];
  show "put color=red at site 3" (Live.put c ~at:3 ~key:"color" ~value:"red");
  show "put color=green at site 0" (Live.put c ~at:0 ~key:"color" ~value:"green");

  Fmt.pr "@.healing the partition...@.";
  Live.heal cluster;
  show "recover site 3" (Live.recover_site c 3);
  show "get color at site 3" (Live.get c ~at:3 ~key:"color");

  Fmt.pr "@.killing site 2 and writing while it is down...@.";
  Live.kill cluster 2;
  show "put color=teal at site 0" (Live.put c ~at:0 ~key:"color" ~value:"teal");
  Live.restart cluster 2;
  show "recover site 2" (Live.recover_site c 2);
  show "get color at site 2" (Live.get c ~at:2 ~key:"color");

  let audit = Live.check cluster in
  let violations =
    List.length (Dynvote_chaos.Oracle.violations audit.Live.oracle)
  in
  Fmt.pr "@.audit: %d log records replayed, %d violations@." audit.Live.records
    violations;
  Live.shutdown cluster;
  if violations > 0 then exit 1
