(* A replicated key-value store managed by dynamic voting.

   Five copies; we write user records, kill sites, split the network, and
   show that the majority partition keeps serving while the minority is
   refused — then heal and watch recovery reintegrate every copy.

   Run with:  dune exec examples/replicated_store.exe *)

module Kv = Dynvote_store.Replicated_kv

let universe = Site_set.of_list [ 0; 1; 2; 3; 4 ]

let show_result ~label = function
  | Ok (Some v) -> Fmt.pr "  %-28s -> %s@." label v
  | Ok None -> Fmt.pr "  %-28s -> (unset)@." label
  | Error e -> Fmt.pr "  %-28s -> DENIED (%a)@." label Kv.pp_error e

let put kv ~at key value =
  match Kv.put kv ~at key value with
  | Ok () -> Fmt.pr "  put %S=%S at site %d      -> ok@." key value at
  | Error e -> Fmt.pr "  put %S=%S at site %d      -> DENIED (%a)@." key value at Kv.pp_error e

let () =
  Fmt.pr "Replicated key-value store over dynamic voting (5 copies)@.@.";
  let kv = Kv.create ~universe () in

  Fmt.pr "1. Normal operation:@.";
  put kv ~at:0 "user:42" "ada";
  put kv ~at:3 "user:43" "grace";
  show_result ~label:"get user:42 at site 4" (Kv.get kv ~at:4 "user:42");

  Fmt.pr "@.2. Two sites die; the other three still form a majority:@.";
  Kv.fail kv 3;
  Kv.fail kv 4;
  put kv ~at:0 "user:42" "ada.lovelace";
  show_result ~label:"get user:42 at site 1" (Kv.get kv ~at:1 "user:42");

  Fmt.pr "@.3. The survivors split 2 | 1 — the quorum had shrunk to three@.";
  Fmt.pr "   copies, so the pair {0, 1} is still a majority of it:@.";
  Kv.partition kv
    [ Site_set.of_list [ 0; 1 ]; Site_set.of_list [ 2; 3; 4 ] ];
  put kv ~at:0 "user:42" "countess";
  show_result ~label:"get user:42 at site 2 (minority)" (Kv.get kv ~at:2 "user:42");

  Fmt.pr "@.4. Heal and recover everyone:@.";
  Kv.heal kv;
  List.iter
    (fun site ->
      let rejoined = Kv.recover kv site in
      Fmt.pr "  site %d recovers: rejoined %d keys@." site rejoined)
    [ 3; 4 ];
  show_result ~label:"get user:42 at site 4" (Kv.get kv ~at:4 "user:42");
  show_result ~label:"get user:43 at site 3" (Kv.get kv ~at:3 "user:43");

  Fmt.pr "@.5. Consistency audit:@.";
  (match Kv.check_consistency kv with
  | [] -> Fmt.pr "  no violations: every newest-version copy agrees with the oracle@."
  | vs -> Fmt.pr "  VIOLATIONS: %d@." (List.length vs));
  assert (Kv.check_consistency kv = []);
  assert (Kv.get kv ~at:4 "user:42" = Ok (Some "countess"));

  Fmt.pr "@.stats: %d reads, %d writes granted, %d requests denied@."
    (Kv.granted_reads kv) (Kv.granted_writes kv) (Kv.denied kv)
