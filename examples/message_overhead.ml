(* Message overhead: the paper's efficiency claim, measured.

   "The advantage of the algorithms proposed is that they [have] much the
   same message traffic overhead as majority consensus voting" — because
   optimistic dynamic voting exchanges state only at access time, while
   the non-optimistic variants additionally maintain (an approximation of)
   the connection vector: a state exchange within every component at every
   topology change.

   We run identical operation workloads through the wire-level protocol
   engine and compare per-operation message counts, then bill the
   connection-vector maintenance that DV/LDV/TDV would add on top.

   Run with:  dune exec examples/message_overhead.exe *)

module Cluster = Dynvote_msgsim.Cluster
module Transport = Dynvote_msgsim.Transport
module Text_table = Dynvote_report.Text_table

let run_workload ~n_copies =
  let universe = Site_set.universe n_copies in
  let cluster = Cluster.create ~universe () in
  let reads = ref 0 and read_msgs = ref 0 in
  let writes = ref 0 and write_msgs = ref 0 in
  for i = 0 to 99 do
    let at = i mod n_copies in
    if i mod 3 = 0 then begin
      let o = Cluster.write cluster ~at ~content:(Printf.sprintf "v%d" i) in
      incr writes;
      write_msgs := !write_msgs + o.Cluster.messages
    end
    else begin
      let o = Cluster.read cluster ~at in
      incr reads;
      read_msgs := !read_msgs + o.Cluster.messages
    end
  done;
  ( float_of_int !read_msgs /. float_of_int !reads,
    float_of_int !write_msgs /. float_of_int !writes,
    Transport.bytes_sent (Cluster.transport cluster) )

let () =
  Fmt.pr "Per-operation message cost of the quorum protocol (wire-level)@.@.";
  let table =
    Text_table.create
      ~aligns:[ Text_table.Right; Text_table.Right; Text_table.Right; Text_table.Right ]
      ~header:[ "Copies"; "Msgs/read"; "Msgs/write"; "Bytes total" ] ()
  in
  List.iter
    (fun n ->
      let per_read, per_write, bytes = run_workload ~n_copies:n in
      Text_table.add_row table
        [ string_of_int n; Printf.sprintf "%.1f" per_read; Printf.sprintf "%.1f" per_write;
          string_of_int bytes ])
    [ 3; 5; 7 ];
  Text_table.print table;

  Fmt.pr "@.This cost is identical for MCV and for optimistic dynamic voting:@.";
  Fmt.pr "both probe all copies and commit to the up-to-date ones.  The@.";
  Fmt.pr "non-optimistic variants add the connection-vector maintenance:@.@.";

  (* Bill the connection vector over a simulated year of the Figure 8
     network's topology events. *)
  let specs = Dynvote_failures.Site_spec.ucsd_sites in
  let topology = Dynvote_net.Topology.ucsd in
  let connectivity = Dynvote_net.Connectivity.create topology in
  let generator = Dynvote_failures.Event_gen.create ~seed:7 specs in
  let up = ref (Dynvote_net.Topology.all_sites topology) in
  let events = ref 0 and messages = ref 0 in
  let horizon = 365.0 in
  let rec loop () =
    let tr = Dynvote_failures.Event_gen.next generator in
    if tr.Dynvote_failures.Event_gen.time < horizon then begin
      up :=
        if tr.Dynvote_failures.Event_gen.now_up then
          Site_set.add tr.Dynvote_failures.Event_gen.site !up
        else Site_set.remove tr.Dynvote_failures.Event_gen.site !up;
      incr events;
      messages :=
        !messages
        + Cluster.connection_vector_messages
            (Dynvote_net.Connectivity.components connectivity ~up:!up);
      loop ()
    end
  in
  loop ();
  Fmt.pr "  one simulated year of the 8-site network: %d topology events,@." !events;
  Fmt.pr "  costing %d extra state-exchange messages for DV/LDV/TDV —@." !messages;
  Fmt.pr "  traffic the optimistic algorithms never send.@."
