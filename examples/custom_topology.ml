(* Bring your own network: an availability study on a topology that is not
   in the paper.

   The scenario: a company with two buildings.  Building 1 has a backbone
   Ethernet (segment "bb") and a lab segment behind gateway g1; building 2
   hangs off the backbone behind gateway g2.  We place three copies of a
   replicated configuration store — one on the backbone, one in the lab,
   one in building 2 — define our own failure characteristics, and ask
   which consistency policy to run.

   Run with:  dune exec examples/custom_topology.exe *)

module Topology = Dynvote_net.Topology
module Study = Dynvote_sim.Study
module Config = Dynvote_sim.Config
module Site_spec = Dynvote_failures.Site_spec
module Text_table = Dynvote_report.Text_table

(* Sites: 0 = fileserver (backbone), 1 = g1 (backbone, gateway to lab),
   2 = labbox (lab), 3 = g2 (backbone, gateway to bldg2), 4 = remote
   (building 2). *)
let topology =
  Topology.create
    ~site_names:[| "fileserver"; "g1"; "labbox"; "g2"; "remote" |]
    ~segment_names:[| "bb"; "lab"; "b2" |]
    ~n_segments:3
    ~home_segment:[| 0; 0; 1; 0; 2 |]
    ~bridges:
      [ { Topology.gateway = 1; segment_a = 0; segment_b = 1 };
        { Topology.gateway = 3; segment_a = 0; segment_b = 2 } ]
    ()

(* Our own failure data: a solid file server, flaky gateways, a lab
   machine that reboots a lot, and a remote box nobody visits for days. *)
let specs =
  [|
    Site_spec.create ~name:"fileserver" ~mttf_days:120.0 ~hardware_fraction:0.2
      ~restart_minutes:10.0 ~repair_constant_hours:2.0 ~repair_exp_hours:6.0 ();
    Site_spec.create ~name:"g1" ~mttf_days:60.0 ~hardware_fraction:0.5
      ~restart_minutes:15.0 ~repair_constant_hours:4.0 ~repair_exp_hours:12.0 ();
    Site_spec.create ~name:"labbox" ~mttf_days:7.0 ~hardware_fraction:0.05
      ~restart_minutes:5.0 ~repair_constant_hours:24.0 ~repair_exp_hours:24.0 ();
    Site_spec.create ~name:"g2" ~mttf_days:45.0 ~hardware_fraction:0.5
      ~restart_minutes:15.0 ~repair_constant_hours:4.0 ~repair_exp_hours:12.0 ();
    Site_spec.create ~name:"remote" ~mttf_days:30.0 ~hardware_fraction:0.3
      ~restart_minutes:20.0 ~repair_constant_hours:48.0 ~repair_exp_hours:48.0 ();
  |]

let placement =
  Config.create ~label:"store"
    ~copies:(Site_set.of_list [ 0; 2; 4 ])
    ~description:"fileserver + labbox + remote" ()

let () =
  Fmt.pr "A custom three-segment network:@.@.%a@.@." Topology.pp_ascii topology;
  Fmt.pr "Copies at fileserver (backbone), labbox (lab), remote (building 2).@.";
  Fmt.pr "Partition points: %a@.@."
    (Site_set.pp_names (Topology.site_names topology))
    (Dynvote_net.Partition_enum.partition_points topology
       ~among:(Config.copies placement));

  let parameters =
    { Study.default_parameters with horizon = 100_360.0; batches = 10; seed = 7 }
  in
  let results =
    Study.run ~parameters ~configs:[ placement ] ~specs ~topology ()
  in
  let table =
    Text_table.create
      ~aligns:[ Text_table.Left; Text_table.Right; Text_table.Right; Text_table.Right ]
      ~header:[ "Policy"; "Unavailability"; "Outages"; "Mean outage (d)" ] ()
  in
  List.iter
    (fun r ->
      Text_table.add_row table
        [ Policy.kind_name r.Study.kind;
          Text_table.cell_float r.Study.unavailability;
          string_of_int r.Study.outages;
          Text_table.cell_float ~decimals:3 r.Study.mean_outage_days ])
    results;
  Text_table.print table;

  let find kind = List.find (fun r -> r.Study.kind = kind) results in
  Fmt.pr
    "@.With every copy on its own segment, topological voting cannot claim@.\
     votes: TDV = LDV exactly (%.6f = %.6f).  The dynamic policies beat@.\
     static voting because the flaky labbox keeps dropping out of the@.\
     quorum instead of dragging it down.@."
    (find Policy.Tdv).Study.unavailability
    (find Policy.Ldv).Study.unavailability;
  assert (
    (find Policy.Tdv).Study.unavailability = (find Policy.Ldv).Study.unavailability)
