(* Reliability analysis without simulation: exact Markov models of the
   voting policies, rendered as curves.

   For three identical sites (MTTF 10 days, mean repair 1 day, one
   segment) we compute, per policy: steady-state unavailability, mean time
   to first unavailability, and the full reliability function R(t) — the
   probability of surviving t days without a single denial — then plot the
   curves side by side.

   Run with:  dune exec examples/reliability_curves.exe *)

module Voting_model = Dynvote_analytic.Voting_model
module Ascii_plot = Dynvote_report.Ascii_plot

let fail_rate = Array.make 3 (1.0 /. 10.0)
let repair_rate = Array.make 3 1.0
let ordering = Ordering.default 3

let flavors =
  [ ("DV", Decision.dv_flavor); ("LDV", Decision.ldv_flavor);
    ("TDV", Decision.tdv_flavor) ]

let () =
  Fmt.pr "Exact reliability analysis: 3 copies, MTTF 10 d, repair 1 d.@.@.";
  List.iter
    (fun (name, flavor) ->
      let unavailability =
        Voting_model.unavailability ~flavor ~fail_rate ~repair_rate ~ordering ()
      in
      let mttf =
        Voting_model.mean_time_to_unavailability ~flavor ~fail_rate ~repair_rate
          ~ordering ()
      in
      let p = Voting_model.period_statistics ~flavor ~fail_rate ~repair_rate ~ordering () in
      Fmt.pr
        "  %-4s unavailability %.6f; first denial after %.1f days on average;@.\
        \       mean available period %.1f d, mean outage %.3f d@."
        name unavailability mttf p.Voting_model.mean_up_days
        p.Voting_model.mean_down_days)
    flavors;

  let times = List.init 30 (fun i -> float_of_int (i + 1) *. 10.0) in
  let series =
    List.map
      (fun (name, flavor) ->
        {
          Ascii_plot.label = name;
          points =
            List.map
              (fun t ->
                ( t,
                  Float.max 1e-6
                    (Voting_model.survival ~flavor ~fail_rate ~repair_rate ~ordering ~t ())
                ))
              times;
        })
      flavors
  in
  Fmt.pr "@.R(t) = P(no unavailability before day t), log scale:@.@.";
  Ascii_plot.print ~width:66 ~height:18 ~scale:Ascii_plot.Log10 series;
  Fmt.pr
    "@.Reading: after 300 days, DV has almost certainly stalled at least@.\
     once, LDV retains a few permille, while topological voting still@.\
     survives with probability %.2f — the protocol design is worth two@.\
     orders of magnitude of reliability on the same hardware.@."
    (Voting_model.survival ~flavor:Decision.tdv_flavor ~fail_rate ~repair_rate ~ordering
       ~t:300.0 ())
