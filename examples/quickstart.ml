(* Quickstart: the paper's §2 walkthrough, narrated.

   Three copies of a replicated file live at sites A, B and C.  We perform
   writes, fail sites, partition the network, and watch the partition sets
   (the dynamic quorums) adjust — ending with the lexicographic tie-break
   that keeps the file available when {A} and {C} split.

   Run with:  dune exec examples/quickstart.exe *)

let step title scenario =
  Fmt.pr "== %s ==@." title;
  Fmt.pr "%a" Scenario.pp_table scenario;
  Fmt.pr "file available: %b@.@." (Scenario.is_available scenario)

let expect_state scenario name ~op_no ~version =
  let r = Scenario.state scenario name in
  if Replica.op_no r <> op_no || Replica.version r <> version then
    Fmt.failwith "drift from the paper: %s has o=%d v=%d, expected o=%d v=%d" name
      (Replica.op_no r) (Replica.version r) op_no version

let () =
  Fmt.pr "Dynamic voting — the paper's Section 2 example@.@.";
  let s = Scenario.create ~names:[| "A"; "B"; "C" |] () in
  step "initial state (o = v = 1, P = {A, B, C})" s;

  ignore (Scenario.writes s 7);
  step "after seven writes" s;
  expect_state s "A" ~op_no:8 ~version:8;

  Scenario.fail s "B";
  step "site B fails (no state changes — information moves at access time)" s;

  ignore (Scenario.writes s 3);
  step "three more writes: the quorum shrank to {A, C}" s;
  expect_state s "A" ~op_no:11 ~version:11;
  expect_state s "B" ~op_no:8 ~version:8;

  Scenario.partition s [ [ "A"; "B" ]; [ "C" ] ];
  step "the A-C link fails: one copy of the previous quorum on each side" s;

  Fmt.pr "The tie is broken lexicographically (A > B > C): site A, holding@.";
  Fmt.pr "the maximum element of {A, C}, becomes the majority partition;@.";
  Fmt.pr "site C is denied.@.@.";

  ignore (Scenario.writes s 4);
  step "four more writes, all granted to A alone" s;
  expect_state s "A" ~op_no:15 ~version:15;
  expect_state s "C" ~op_no:11 ~version:11;

  Scenario.heal s;
  ignore (Scenario.read s);
  step "the network heals; the next access re-merges the reachable copies" s;

  Fmt.pr "Narrated log:@.";
  List.iter (Fmt.pr "  - %s@.") (Scenario.log s);
  Fmt.pr "@.quickstart: all states matched the paper.@."
