(* Topological Dynamic Voting — the paper's §3 example.

   Four copies: A and B share the unsegmented carrier-sense network alpha,
   C sits alone behind gateway X, D alone behind gateway Y.  When A fails,
   plain lexicographic voting must stop (A is the maximum element of the
   quorum {A, B}); topological voting lets B carry A's vote, because two
   sites on one segment can never be separated by a partition — no answer
   from A means A is down, not away.

   Run with:  dune exec examples/topological.exe *)

let segment_of site = match site with 0 | 1 -> 0 | 2 -> 1 | _ -> 2

let build flavor =
  let s = Scenario.create ~flavor ~segment_of ~names:[| "A"; "B"; "C"; "D" |] () in
  (* Reconstruct the paper's state through protocol history: o,v = 15 at
     A and B with P = {A, B}; C left at 11; D left at 8. *)
  ignore (Scenario.writes s 7);
  Scenario.fail s "D";
  ignore (Scenario.writes s 3);
  Scenario.fail s "C";
  ignore (Scenario.writes s 4);
  s

let () =
  Fmt.pr "Topological Dynamic Voting — the paper's Section 3 example@.@.";
  Fmt.pr "Topology: alpha = {A, B}, gamma = {C}, delta = {D};@.";
  Fmt.pr "gateways X (alpha-gamma) and Y (alpha-delta) are the only@.";
  Fmt.pr "possible partition points.@.@.";

  let ldv = build Decision.ldv_flavor in
  Fmt.pr "State (as printed in the paper):@.%a@." Scenario.pp_table ldv;

  Fmt.pr "-- Under Lexicographic Dynamic Voting --@.";
  Scenario.fail ldv "A";
  Fmt.pr "site A fails; B alone holds half of {A, B} without the maximum:@.";
  Fmt.pr "file available: %b  (the file is lost until A repairs)@.@."
    (Scenario.is_available ldv);
  assert (not (Scenario.is_available ldv));

  Fmt.pr "-- Under Topological Dynamic Voting --@.";
  let tdv = build Decision.tdv_flavor in
  Scenario.fail tdv "A";
  Fmt.pr "site A fails; B knows A sits on its own segment alpha: if alpha@.";
  Fmt.pr "were down B would be down too, so A must be dead and cannot be@.";
  Fmt.pr "serving a rival quorum.  B carries A's vote:@.";
  Fmt.pr "file available: %b@.@." (Scenario.is_available tdv);
  assert (Scenario.is_available tdv);

  (match Scenario.write tdv with
  | Some component ->
      Fmt.pr "a write is granted in %a@."
        (Site_set.pp_names [| "A"; "B"; "C"; "D" |])
        component
  | None -> failwith "TDV write should have been granted");
  Fmt.pr "%a@." Scenario.pp_table tdv;

  Fmt.pr "-- The safety price --@.";
  Fmt.pr "The paper's figures let ANY live site claim dead segment-mates.@.";
  Fmt.pr "This library also provides Decision.tdv_safe_flavor, which only@.";
  Fmt.pr "lets continuously-up sites sponsor claims (see DESIGN.md for the@.";
  Fmt.pr "split-brain history the safe variant prevents).@.@.";

  let safe = build Decision.tdv_safe_flavor in
  Scenario.fail safe "A";
  Fmt.pr "safe variant, same history: file available: %b (B stayed up, so@."
    (Scenario.is_available safe);
  Fmt.pr "it is a valid sponsor — the safe rule only bites after restarts).@.";
  assert (Scenario.is_available safe);
  Fmt.pr "@.topological: all assertions passed.@."
