(* Command-line front-end: regenerate the paper's tables, inspect the
   topology, trace scenarios, sweep parameters. *)

module Policy = Dynvote.Policy
module Site_set = Dynvote.Site_set
module Ordering = Dynvote.Ordering
module Decision = Dynvote.Decision
module Topology = Dynvote_net.Topology
module Config = Dynvote_sim.Config
module Study = Dynvote_sim.Study
module Table = Dynvote_sim.Table
module Site_spec = Dynvote_failures.Site_spec
module Event_gen = Dynvote_failures.Event_gen
module Timeline = Dynvote_sim.Timeline
module Text_table = Dynvote_report.Text_table
module Csv = Dynvote_report.Csv
module Voting_model = Dynvote_analytic.Voting_model
module Kofn = Dynvote_analytic.Kofn
module Harness = Dynvote_chaos.Harness
module Pool = Dynvote_exec.Pool

open Cmdliner

(* Shared options. *)

let seed =
  let doc = "Random seed for the failure trace." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let horizon =
  let doc = "Total simulated days (including the 360-day warm-up)." in
  Arg.(value & opt float 400_360.0 & info [ "horizon" ] ~docv:"DAYS" ~doc)

let batches =
  let doc = "Number of batches for the batch-means confidence intervals." in
  Arg.(value & opt int 20 & info [ "batches" ] ~docv:"N" ~doc)

let access_interval =
  let doc = "Days between file accesses for the optimistic policies." in
  Arg.(value & opt float 1.0 & info [ "access-interval" ] ~docv:"DAYS" ~doc)

let quiet =
  let doc = "Suppress progress output." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the compute-bound paths (per-configuration study \
     fan-out, model-checker root shards).  0 means the DYNVOTE_JOBS \
     environment variable, falling back to the hardware's recommended \
     domain count.  Results are independent of $(docv)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs n = if n > 0 then min n Pool.max_jobs else Pool.default_jobs ()

let parameters seed horizon batches access_interval =
  { Study.default_parameters with seed; horizon; batches; access_interval }

let progress quiet =
  if quiet then None
  else
    Some
      (fun ~completed ~total ->
        Printf.eprintf "\rsimulated %.0f / %.0f days (%.0f%%)%!" completed total
          (100.0 *. completed /. total);
        if completed >= total then prerr_newline ())

let run_study ~params ~quiet ~jobs ?kinds ?configs () =
  let results =
    Study.run ~parameters:params ?kinds ?configs ?progress:(progress quiet)
      ~jobs:(resolve_jobs jobs) ()
  in
  if not quiet then prerr_newline ();
  results

(* Subcommand: table1. *)

let table1_cmd =
  let run () =
    Text_table.print (Table.table1 Site_spec.ucsd_sites);
    print_endline "Note: sites 1, 3 and 5 are down 3 hours every 90 days for maintenance."
  in
  Cmd.v (Cmd.info "table1" ~doc:"Print the site characteristics (paper Table 1).")
    Term.(const run $ const ())

(* Subcommand: topology. *)

let topology_cmd =
  let run () =
    Fmt.pr "%a@." Topology.pp_ascii Topology.ucsd;
    Fmt.pr "@.%a@." Topology.pp Topology.ucsd
  in
  Cmd.v (Cmd.info "topology" ~doc:"Show the Figure 8 network.") Term.(const run $ const ())

(* Subcommands: table2 / table3. *)

let make_tables_cmd name doc which =
  let run seed horizon batches access_interval quiet jobs compare csv =
    let params = parameters seed horizon batches access_interval in
    let results = run_study ~params ~quiet ~jobs () in
    (match which with
    | `Two -> Text_table.print (Table.table2 results)
    | `Three -> Text_table.print (Table.table3 results));
    if compare then begin
      print_endline "\nPaper vs measured:";
      let kind =
        match which with `Two -> Table.Unavailability | `Three -> Table.Outage_duration
      in
      Text_table.print (Table.comparison kind results)
    end;
    match csv with
    | None -> ()
    | Some path ->
        let rows =
          List.map
            (fun r ->
              [ Config.label r.Study.config;
                Policy.kind_name r.Study.kind;
                Printf.sprintf "%.8f" r.Study.unavailability;
                Printf.sprintf "%.8f" r.Study.interval.Dynvote_stats.Batch_means.half_width;
                Printf.sprintf "%.6f" r.Study.mean_outage_days;
                string_of_int r.Study.outages;
                Printf.sprintf "%.2f" r.Study.longest_up_days ])
            results
        in
        Csv.write ~path
          ~header:
            [ "config"; "policy"; "unavailability"; "ci95_half_width";
              "mean_outage_days"; "outages"; "longest_up_days" ]
          rows;
        Printf.eprintf "wrote %s\n" path
  in
  let compare =
    Arg.(value & flag & info [ "compare" ] ~doc:"Also print paper-vs-measured ratios.")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Also write the full results as CSV.")
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ seed $ horizon $ batches $ access_interval $ quiet $ jobs_arg
      $ compare $ csv)

let table2_cmd =
  make_tables_cmd "table2" "Reproduce the unavailability study (paper Table 2)." `Two

let table3_cmd =
  make_tables_cmd "table3" "Reproduce the outage-duration study (paper Table 3)." `Three

(* Subcommand: simulate (one configuration, chosen policies, full detail). *)

let simulate_cmd =
  let config_arg =
    let doc = "Configuration label (A-H)." in
    Arg.(value & opt string "A" & info [ "config" ] ~docv:"LABEL" ~doc)
  in
  let kinds_arg =
    let doc = "Comma-separated policies (MCV,DV,LDV,ODV,TDV,OTDV)." in
    Arg.(value & opt string "MCV,DV,LDV,ODV,TDV,OTDV" & info [ "policies" ] ~docv:"LIST" ~doc)
  in
  let run seed horizon batches access_interval quiet jobs config_label kinds_text =
    let params = parameters seed horizon batches access_interval in
    let config =
      match Config.find config_label with
      | Some c -> c
      | None -> Fmt.failwith "unknown configuration %S (expected A-H)" config_label
    in
    let kinds =
      String.split_on_char ',' kinds_text
      |> List.map (fun name ->
             match Policy.kind_of_string (String.trim name) with
             | Some k -> k
             | None -> Fmt.failwith "unknown policy %S" name)
    in
    let results = run_study ~params ~quiet ~jobs ~kinds ~configs:[ config ] () in
    Text_table.print (Table.intervals results)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate one configuration in detail.")
    Term.(
      const run $ seed $ horizon $ batches $ access_interval $ quiet $ jobs_arg
      $ config_arg $ kinds_arg)

(* Subcommand: sweep (access-rate ablation). *)

let sweep_cmd =
  let config_arg =
    let doc = "Configuration label (A-H)." in
    Arg.(value & opt string "F" & info [ "config" ] ~docv:"LABEL" ~doc)
  in
  let run seed horizon batches quiet jobs config_label =
    let params = { Study.default_parameters with seed; horizon; batches } in
    let table =
      Text_table.create
        ~aligns:[ Text_table.Right; Text_table.Right; Text_table.Right; Text_table.Right ]
        ~header:[ "Accesses/day"; "ODV"; "OTDV"; "LDV (ref)" ] ()
    in
    let sweep_data =
      Study.sweep_access_rate ~parameters:params ~config_label
        ~jobs:(resolve_jobs jobs) ()
    in
    List.iter
      (fun (rate, results) ->
        let cell kind =
          match List.find_opt (fun r -> r.Study.kind = kind) results with
          | Some r -> Text_table.cell_float r.Study.unavailability
          | None -> ""
        in
        Text_table.add_row table
          [ Printf.sprintf "%g" rate; cell Policy.Odv; cell Policy.Otdv; cell Policy.Ldv ])
      sweep_data;
    ignore quiet;
    Text_table.print table;
    (* The same data as a curve (log-log view of the optimism effect). *)
    let series kind label =
      {
        Dynvote_report.Ascii_plot.label;
        points =
          List.filter_map
            (fun (rate, results) ->
              List.find_opt (fun r -> r.Study.kind = kind) results
              |> Option.map (fun r -> (rate, Float.max r.Study.unavailability 1e-7)))
            sweep_data;
      }
    in
    Fmt.pr "@.Unavailability vs access rate (log y):@.";
    Dynvote_report.Ascii_plot.print ~scale:Dynvote_report.Ascii_plot.Log10
      [ series Policy.Odv "ODV"; series Policy.Ldv "LDV" ]
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep the access rate for the optimistic policies (ablation).")
    Term.(const run $ seed $ horizon $ batches $ quiet $ jobs_arg $ config_arg)

(* Subcommand: partitions. *)

let partitions_cmd =
  let config_arg =
    Arg.(value & opt string "C" & info [ "config" ] ~docv:"LABEL" ~doc:"Configuration label (A-H).")
  in
  let run config_label =
    let config =
      match Config.find config_label with
      | Some c -> c
      | None -> Fmt.failwith "unknown configuration %S (expected A-H)" config_label
    in
    let names = Topology.site_names Topology.ucsd in
    let copies = Config.copies config in
    Fmt.pr "Configuration %a@.@." Config.pp config;
    Fmt.pr "Partition points (gateways whose lone failure splits the copies): %a@.@."
      (Site_set.pp_names names)
      (Dynvote_net.Partition_enum.partition_points Topology.ucsd ~among:copies);
    Fmt.pr "All partitions achievable through gateway failures:@.";
    List.iter
      (fun groups ->
        Fmt.pr "  %s@."
          (String.concat " | "
             (List.map (fun g -> Fmt.str "%a" (Site_set.pp_names names) g) groups)))
      (Dynvote_net.Partition_enum.gateway_partitions Topology.ucsd ~among:copies)
  in
  Cmd.v
    (Cmd.info "partitions"
       ~doc:"Enumerate the partitions a configuration's copies can suffer.")
    Term.(const run $ config_arg)

(* Subcommand: timeline. *)

let timeline_cmd =
  let config_arg =
    Arg.(value & opt string "F" & info [ "config" ] ~docv:"LABEL" ~doc:"Configuration label (A-H).")
  in
  let start_arg =
    Arg.(value & opt float 360.0 & info [ "start" ] ~docv:"DAY" ~doc:"Window start (days).")
  in
  let days_arg =
    Arg.(value & opt float 1500.0 & info [ "days" ] ~docv:"N" ~doc:"Window length (days).")
  in
  let columns_arg =
    Arg.(value & opt int 72 & info [ "columns" ] ~docv:"N" ~doc:"Strip width in cells.")
  in
  let run seed config_label start days columns =
    let config =
      match Config.find config_label with
      | Some c -> c
      | None -> Fmt.failwith "unknown configuration %S (expected A-H)" config_label
    in
    let parameters = { Study.default_parameters with seed } in
    let timeline = Timeline.collect ~parameters ~config ~start ~duration:days () in
    Fmt.pr "Configuration %a@.@." Config.pp config;
    Fmt.pr "%a" (Timeline.pp ~columns) timeline
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"Render each policy's availability over a window of the failure trace.")
    Term.(const run $ seed $ config_arg $ start_arg $ days_arg $ columns_arg)

(* Subcommand: trace. *)

let trace_cmd =
  let days_arg =
    Arg.(value & opt float 120.0 & info [ "days" ] ~docv:"N" ~doc:"How many days to print.")
  in
  let run seed days =
    let generator = Event_gen.create ~seed Site_spec.ucsd_sites in
    let names = Topology.site_names Topology.ucsd in
    let rec loop () =
      let tr = Event_gen.next generator in
      if tr.Event_gen.time < days then begin
        Fmt.pr "%10.4f  %-8s %-4s %a@." tr.Event_gen.time
          names.(tr.Event_gen.site)
          (if tr.Event_gen.now_up then "UP" else "DOWN")
          Event_gen.pp_cause tr.Event_gen.cause;
        loop ()
      end
    in
    loop ()
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the site failure/repair/maintenance event stream.")
    Term.(const run $ seed $ days_arg)

(* Subcommand: reliability (exact CTMC analysis, no simulation). *)

let reliability_cmd =
  let copies_arg =
    Arg.(value & opt int 3 & info [ "copies" ] ~docv:"N" ~doc:"Number of identical copies (<= 10).")
  in
  let mttf_arg =
    Arg.(value & opt float 10.0 & info [ "mttf" ] ~docv:"DAYS" ~doc:"Per-site mean time to fail.")
  in
  let mttr_arg =
    Arg.(value & opt float 1.0 & info [ "mttr" ] ~docv:"DAYS" ~doc:"Per-site mean repair time.")
  in
  let run copies mttf mttr =
    if copies < 1 || copies > 10 then Fmt.failwith "copies must be within 1..10";
    let fail_rate = Array.make copies (1.0 /. mttf) in
    let repair_rate = Array.make copies (1.0 /. mttr) in
    let ordering = Ordering.default copies in
    let table =
      Text_table.create
        ~aligns:[ Text_table.Left; Text_table.Right; Text_table.Right; Text_table.Right;
                  Text_table.Right; Text_table.Right; Text_table.Right ]
        ~header:
          [ "Policy"; "Unavail"; "Mean up (d)"; "Mean down (d)"; "MTTF (d)"; "R(30d)";
            "R(365d)" ]
        ()
    in
    let add ?access_rate name flavor =
      let p =
        Voting_model.period_statistics ~flavor ?access_rate ~fail_rate ~repair_rate
          ~ordering ()
      in
      let mttf_file =
        Voting_model.mean_time_to_unavailability ~flavor ?access_rate ~fail_rate
          ~repair_rate ~ordering ()
      in
      let r t =
        Voting_model.survival ~flavor ?access_rate ~fail_rate ~repair_rate ~ordering ~t ()
      in
      Text_table.add_row table
        [ name;
          Text_table.cell_float (1.0 -. p.Voting_model.availability);
          Printf.sprintf "%.2f" p.Voting_model.mean_up_days;
          Printf.sprintf "%.4f" p.Voting_model.mean_down_days;
          Printf.sprintf "%.1f" mttf_file;
          Printf.sprintf "%.4f" (r 30.0);
          Printf.sprintf "%.4f" (r 365.0) ]
    in
    add "DV" Decision.dv_flavor;
    add "LDV" Decision.ldv_flavor;
    add "TDV (paper)" Decision.tdv_flavor;
    add "TDV (safe)" Decision.tdv_safe_flavor;
    add ~access_rate:1.0 "ODV (Poisson 1/day)" Decision.ldv_flavor;
    add ~access_rate:1.0 "OTDV (Poisson 1/day)" Decision.tdv_flavor;
    Fmt.pr "Exact Markov analysis: %d identical copies on one segment,@." copies;
    Fmt.pr "MTTF %g days, exponential repair of mean %g days.@.@." mttf mttr;
    Text_table.print table;
    (* Closed-form cross-check for static majority voting. *)
    let a = mttf /. (mttf +. mttr) in
    Fmt.pr "@.(static MCV closed form: unavailability %.6f)@."
      (1.0 -. Kofn.mcv_lexicographic_availability (Array.make copies a) ~ordering)
  in
  Cmd.v
    (Cmd.info "reliability"
       ~doc:"Exact Markov analysis of availability and reliability (no simulation).")
    Term.(const run $ copies_arg $ mttf_arg $ mttr_arg)

(* Subcommand: chaos (adversarial fault injection + safety oracle). *)

let chaos_cmd =
  let schedules_arg =
    Arg.(value & opt int 1000
         & info [ "schedules" ] ~docv:"K" ~doc:"Randomized fault schedules per policy.")
  in
  let policy_arg =
    let doc =
      "Policy to attack (dv, ldv, odv, tdv, otdv, tdv-safe, otdv-safe, or 'all'). \
       MCV is stateless at the message level and is not driven by the chaos engine."
    in
    Arg.(value & opt string "all" & info [ "policy" ] ~docv:"P" ~doc)
  in
  let unsafe_commits_arg =
    Arg.(value & flag
         & info [ "unsafe-commits" ]
             ~doc:"Drop the paper's atomic-update assumption: expose COMMIT messages \
                   to faults and strike coordinators mid-commit.  The oracle then \
                   reports the resulting divergences for every policy.")
  in
  let run seed schedules policy_text unsafe_commits verbose =
    let policies =
      if String.lowercase_ascii policy_text = "all" then Harness.policies
      else
        match Harness.policy_of_string policy_text with
        | Some p -> [ p ]
        | None ->
            Fmt.epr "dynvote: unknown policy %S (try --policy all)@." policy_text;
            exit 2
    in
    let exit_code = ref 0 in
    List.iter
      (fun (p : Harness.policy) ->
        let p = if unsafe_commits then { p with Harness.expect_safe = false } else p in
        let config =
          let c = Harness.default_config ~flavor:p.Harness.flavor () in
          if unsafe_commits then
            { c with Harness.crash_point = `Mid_commit; expose_commits = true }
          else c
        in
        let summary =
          Harness.run_many ~config ~policy:p ~seed:(Int64.of_int seed) ~schedules ()
        in
        Fmt.pr "%a@." Harness.pp_summary summary;
        if verbose && summary.Harness.failures > 0 then
          Fmt.pr "@[<v>%a@]@." Harness.pp_failure summary;
        if not (Harness.verdict_ok summary) then exit_code := 1)
      policies;
    if !exit_code <> 0 then exit !exit_code
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose" ] ~doc:"Print the first failing schedule and its violations.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Attack the message-level protocols with seeded fault schedules (loss, \
          duplication, delay, link flaps, crashes, torn stable records) and check the \
          safety oracle.  Deterministic for a fixed seed; exits non-zero if a policy \
          expected to be safe shows a violation.")
    Term.(const run $ seed $ schedules_arg $ policy_arg $ unsafe_commits_arg $ verbose)

(* Subcommand: mc (bounded model checking of the message protocols). *)

let mc_cmd =
  let module Checker = Dynvote_mc.Checker in
  let module Space = Dynvote_mc.Space in
  let module Report = Dynvote_mc.Report in
  let policy_arg =
    let doc =
      "Policy to check (dv, ldv, odv, tdv, otdv, tdv-safe, otdv-safe, or 'all' \
       for the distinct decision flavors: dv, odv, tdv, tdv-safe)."
    in
    Arg.(value & opt string "all" & info [ "policy" ] ~docv:"P" ~doc)
  in
  let sites_arg =
    Arg.(value & opt int 4
         & info [ "sites" ] ~docv:"N"
             ~doc:"Number of copies.  The default 4 reproduces the paper's §3 \
                   four-copy example (segments 0,0,1,2).")
  in
  let segments_arg =
    Arg.(value & opt (some string) None
         & info [ "segments" ] ~docv:"S0,S1,..."
             ~doc:"Comma-separated segment id per site.  Defaults to the §3 \
                   example for 4 sites, two sites per segment otherwise.")
  in
  let depth_arg =
    Arg.(value & opt int 8
         & info [ "depth" ] ~docv:"D" ~doc:"Iterative-deepening search bound.")
  in
  let max_states_arg =
    Arg.(value & opt int 1_000_000
         & info [ "max-states" ] ~docv:"K" ~doc:"Seen-state table budget.")
  in
  let symmetry_arg =
    let parse = Arg.enum [ ("auto", None); ("on", Some true); ("off", Some false) ] in
    Arg.(value & opt parse None
         & info [ "symmetry" ] ~docv:"auto|on|off"
             ~doc:"Within-segment site-relabeling reduction.  'auto' (default) \
                   enables it exactly for flavors without the lexicographic \
                   tie-break, where relabeling is a sound symmetry.")
  in
  let full_arg =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:"Use the full action alphabet: READ operations and zeroed-record \
                   restarts in addition to the default writes, crashes, clean \
                   restarts, recoveries and partitions.  Roughly doubles the \
                   branching factor; reachable depth drops accordingly.")
  in
  let por_arg =
    let parse = Arg.enum [ ("on", true); ("off", false) ] in
    Arg.(value & opt parse true
         & info [ "por" ] ~docv:"on|off"
             ~doc:"Partial-order reduction over commuting fault actions (default \
                   on).  Sound: verdicts, counterexample lengths and \
                   distinct-state counts are identical either way; only the \
                   transition count changes.")
  in
  let steal_arg =
    let parse = Arg.enum [ ("on", true); ("off", false) ] in
    Arg.(value & opt parse true
         & info [ "steal" ] ~docv:"on|off"
             ~doc:"Work-stealing parallel frontier (default on; only matters \
                   with -j > 1).  'off' falls back to static root-alphabet \
                   sharding.  Verdicts, counterexample lengths and \
                   distinct-state counts are identical either way; only wall \
                   time and the traversal statistics move.")
  in
  let verbose_arg =
    Arg.(value & flag
         & info [ "verbose"; "v" ]
             ~doc:"Report each completed deepening iteration, and the \
                   work-stealing frontier's per-worker counters, on stderr.")
  in
  let run policy_text sites segments_text depth max_states symmetry por steal full
      verbose jobs =
    if sites < 2 || sites > 16 then begin
      Fmt.epr "dynvote: mc needs 2..16 sites@.";
      exit 2
    end;
    let policies =
      if String.lowercase_ascii policy_text = "all" then
        List.filter
          (fun (p : Harness.policy) ->
            List.mem p.Harness.name [ "dv"; "odv"; "tdv"; "tdv-safe" ])
          Harness.policies
      else
        match Harness.policy_of_string policy_text with
        | Some p -> [ p ]
        | None ->
            Fmt.epr "dynvote: unknown policy %S (try --policy all)@." policy_text;
            exit 2
    in
    let segment_of =
      match segments_text with
      | None -> if sites = 4 then Checker.paper_segment_of else fun site -> site / 2
      | Some text ->
          let segs =
            try List.map int_of_string (String.split_on_char ',' text)
            with Failure _ ->
              Fmt.epr "dynvote: --segments expects integers, e.g. 0,0,1,2@.";
              exit 2
          in
          if List.length segs <> sites then begin
            Fmt.epr "dynvote: --segments needs one id per site (%d)@." sites;
            exit 2
          end;
          let table = Array.of_list segs in
          fun site -> table.(site)
    in
    let universe = Site_set.universe sites in
    let config = Checker.make_config ~universe ~segment_of () in
    let space = if full then Space.full else Space.default in
    let segments_doc =
      String.concat ","
        (List.map (fun s -> string_of_int (segment_of s)) (Site_set.to_list universe))
    in
    Fmt.pr "mc: %d sites (segments %s), depth %d, max %d states%s@." sites
      segments_doc depth max_states
      (if full then ", full alphabet" else "");
    let progress =
      if verbose then
        Some
          (fun ~depth ~distinct ~transitions ->
            Fmt.epr "  depth %d: %d states, %d transitions@." depth distinct
              transitions)
      else None
    in
    let exit_code = ref 0 in
    List.iter
      (fun (p : Harness.policy) ->
        let t0 = Sys.time () in
        let report =
          Checker.check ~space ?symmetry ~por ~max_states ?progress ~steal
            ~jobs:(resolve_jobs jobs) ~policy:p ~depth config
        in
        let elapsed = Sys.time () -. t0 in
        Fmt.pr "@[<v>%a@,  %a@]@." Report.pp report Report.pp_expectation report;
        Fmt.epr "  (%s: %.1f s, %d transitions)@." p.Harness.name elapsed
          report.Checker.result.Dynvote_mc.Explorer.transitions;
        let workers = report.Checker.result.Dynvote_mc.Explorer.workers in
        if verbose && Array.length workers > 0 then
          Fmt.epr "%a" Report.pp_workers workers;
        if not (Checker.verdict_ok report) then exit_code := 1)
      policies;
    if !exit_code <> 0 then exit !exit_code
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Exhaustively check the message-level protocols by bounded explicit-state \
          search: iterative-deepening DFS over client operations, crashes, restarts \
          (clean or corrupted), recoveries and partitions, with the safety oracle \
          checked at every state.  Counterexamples are minimum-length Schedule \
          traces, re-validated by replay through the chaos harness.  Deterministic; \
          exits non-zero if a policy expected safe has a violation (or a replay \
          diverges).")
    Term.(const run $ policy_arg $ sites_arg $ segments_arg $ depth_arg
          $ max_states_arg $ symmetry_arg $ por_arg $ steal_arg $ full_arg
          $ verbose_arg $ jobs_arg)

(* Subcommands: serve / loadgen (the live socket-backed service). *)

module Live = Dynvote_live.Cluster
module Loadgen = Dynvote_live.Loadgen
module Live_node = Dynvote_live.Node
module Crash_matrix = Dynvote_live.Crash_matrix
module Oracle = Dynvote_chaos.Oracle
module Storage_fault = Dynvote_chaos.Fault_plan.Storage
module Faultfs = Dynvote_faultfs.Faultfs
module Obs_metrics = Dynvote_obs.Metrics
module Obs_trace = Dynvote_obs.Trace
module Obs_hub = Dynvote_obs.Hub

let live_sites =
  let doc = "Number of replica sites (one server thread each)." in
  Arg.(value & opt int 4 & info [ "sites" ] ~docv:"N" ~doc)

let live_policy =
  let doc = "Voting policy (dv, ldv, odv, tdv, otdv, tdv-safe, otdv-safe)." in
  Arg.(value & opt string "ldv" & info [ "policy" ] ~docv:"P" ~doc)

let live_buffered =
  let doc =
    "Skip the per-commit fsyncs (atomic replace only).  Faster, but a power cut \
     can lose the stable record the paper's protocol depends on."
  in
  Arg.(value & flag & info [ "buffered" ] ~doc)

let live_pipeline =
  let doc =
    "Client operations a coordinator admits concurrently, as \
     effect-suspended fibers behind a ticket turnstile.  1 (the default) \
     is the fully sequential coordinator."
  in
  Arg.(value & opt int 1 & info [ "pipeline" ] ~docv:"N" ~doc)

let live_max_reuse =
  let doc =
    "Operations that may join an anchored lock round and decide against \
     its cached gather before a fresh round is forced.  0 (the default) \
     disables anchoring: every operation runs its own lock round."
  in
  Arg.(value & opt int 0 & info [ "max-reuse" ] ~docv:"N" ~doc)

let live_shards =
  let doc =
    "Turn on the sharded object space: every key is an independently-voted \
     (o, v, P) object, persisted across $(docv) per-site append logs and \
     coordinated by group-quorum rounds that cover every key of a scheduler \
     burst in one wire exchange.  0 (the default) is the classic \
     single-object engine."
  in
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"N" ~doc)

let live_resident =
  let doc =
    "Keys materialized in volatile memory at once (the shard map's LRU \
     capacity); only meaningful with --shards."
  in
  Arg.(value & opt int 4096 & info [ "resident" ] ~docv:"N" ~doc)

let live_flavor text =
  match Harness.policy_of_string text with
  | Some p -> p.Harness.flavor
  | None ->
      Fmt.epr "dynvote: unknown policy %S@." text;
      exit 2

(* Loopback tuning: the library default (0.2 s rounds) is patience for a
   real network; here every peer is micro-seconds away and snappy rounds
   keep lock contention cheap. *)
let live_config ?(pipeline = 1) ?(max_reuse = 0) ?(shards = 0) ?(resident = 4096)
    ~buffered () =
  {
    Live_node.default_config with
    Live_node.gather_timeout = 0.05;
    lock_backoff = 0.02;
    durable = not buffered;
    pipeline;
    max_reuse;
    shards;
    resident;
  }

let fresh_temp_dir () =
  let base = Filename.temp_file "dynvote-live" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let pp_audit ppf (audit : Live.audit) =
  let violations = Oracle.violations audit.Live.oracle in
  Fmt.pf ppf "audit: %d log records, %d commits, %d reads checked@,"
    audit.Live.records
    (Oracle.commits_seen audit.Live.oracle)
    (Oracle.reads_checked audit.Live.oracle);
  if not (Site_set.is_empty audit.Live.torn) then
    Fmt.pf ppf "torn log tails at sites %a (mid-append kill)@," Site_set.pp
      audit.Live.torn;
  if audit.Live.corrupt > 0 then
    Fmt.pf ppf "mid-log corrupt records: %d (damage no crash explains)@,"
      audit.Live.corrupt;
  if audit.Live.dup_applies > 0 then
    Fmt.pf ppf "requests applied more than once: %d (exactly-once violated)@,"
      audit.Live.dup_applies;
  if audit.Live.keys > 0 then
    Fmt.pf ppf "sharded object space: %d keys audited, each via its own oracle@,"
      audit.Live.keys;
  List.iter
    (fun (key, v) -> Fmt.pf ppf "key %S: %a@," key Oracle.pp_violation v)
    audit.Live.kviolations;
  match (violations, audit.Live.kviolations) with
  | [], [] ->
      if audit.Live.dup_applies = 0 then Fmt.pf ppf "audit: SAFE (0 violations)"
      else Fmt.pf ppf "audit: UNSAFE (duplicate applies)"
  | vs, kvs ->
      List.iter (fun v -> Fmt.pf ppf "%a@," Oracle.pp_violation v) vs;
      Fmt.pf ppf "audit: UNSAFE (%d violations)" (List.length vs + List.length kvs)

(* The serve console: one command per line, usable both from a script
   and interactively.  Groups are comma-separated sites split by '/'. *)

let parse_groups text =
  text
  |> String.split_on_char '/'
  |> List.map (fun g ->
         g
         |> String.split_on_char ','
         |> List.filter_map (fun s ->
                match String.trim s with "" -> None | s -> Some (int_of_string s))
         |> Site_set.of_list)

let pp_reply ppf (r : Live.reply) =
  match r.Live.status with
  | Dynvote_live.Wire.Granted -> (
      match r.Live.value with
      | Some v -> Fmt.pf ppf "granted %S" v
      | None ->
          if r.Live.info = "" then Fmt.string ppf "granted"
          else Fmt.pf ppf "granted (%s)" r.Live.info)
  | Dynvote_live.Wire.Denied -> Fmt.pf ppf "denied (%s)" r.Live.info
  | Dynvote_live.Wire.Aborted -> Fmt.pf ppf "aborted (%s)" r.Live.info
  | Dynvote_live.Wire.Degraded -> Fmt.pf ppf "degraded (%s)" r.Live.info

(* "SITE:FAULT[@nth][:file]", e.g. "0:fsync-lie:data" — the part after
   the first colon is a Fault_plan.Storage trigger spec. *)
let parse_fault_spec text =
  match String.index_opt text ':' with
  | None -> Error "expected SITE:FAULT[@nth][:file], e.g. 0:fsync-lie:data"
  | Some i -> (
      match int_of_string_opt (String.sub text 0 i) with
      | None -> Error (Printf.sprintf "bad site %S" (String.sub text 0 i))
      | Some site -> (
          let spec = String.sub text (i + 1) (String.length text - i - 1) in
          match Storage_fault.trigger_of_string spec with
          | Error reason -> Error reason
          | Ok trigger -> Ok (site, trigger)))

let serve_command cluster ~faultfs_of client line =
  let fail reason = Fmt.pr "error: %s@." reason in
  let dispatch () =
    match
      line |> String.split_on_char ' ' |> List.filter (fun s -> s <> "")
    with
    | [] -> `Ok
    | cmd :: _ when cmd.[0] = '#' -> `Ok
    | [ "put"; site; key; value ] ->
        Fmt.pr "%a@." pp_reply
          (Live.put client ~at:(int_of_string site) ~key ~value);
        `Ok
    | [ "get"; site; key ] ->
        Fmt.pr "%a@." pp_reply (Live.get client ~at:(int_of_string site) ~key);
        `Ok
    | [ "recover"; site ] ->
        Fmt.pr "%a@." pp_reply (Live.recover_site client (int_of_string site));
        `Ok
    | [ "partition"; groups ] -> (
        match Live.partition cluster (parse_groups groups) with
        | () -> Fmt.pr "partitioned %s@." groups
        | exception Invalid_argument reason -> fail reason);
        `Ok
    | [ "heal" ] ->
        Live.heal cluster;
        Fmt.pr "healed@.";
        `Ok
    | [ "kill"; site ] ->
        Live.kill cluster (int_of_string site);
        Fmt.pr "killed %s@." site;
        `Ok
    | [ "restart"; site ] ->
        Live.restart cluster (int_of_string site);
        Fmt.pr "restarted %s@." site;
        `Ok
    | [ "fault"; spec ] ->
        (match parse_fault_spec spec with
        | Error reason -> fail reason
        | Ok (site, trigger) ->
            if not (Site_set.mem site (Live.universe cluster)) then
              fail (Printf.sprintf "no such site %d" site)
            else if not (Site_set.mem site (Live.up_sites cluster)) then
              fail
                (Printf.sprintf "site %d is down — restart it before arming"
                   site)
            else begin
              (* Relative arming: "the next matching operation", however
                 many the site has already done. *)
              Faultfs.arm_next (faultfs_of site) trigger;
              Fmt.pr "armed %a at site %d@." Storage_fault.pp_trigger trigger
                site
            end);
        `Ok
    | [ "crash-sim"; site ] ->
        (* A power cut, not just a process kill: un-fsynced bytes and
           volatile renames are rolled back before any restart. *)
        let site_no = int_of_string site in
        if Site_set.mem site_no (Live.up_sites cluster) then
          fail (Printf.sprintf "site %d is up — kill it first" site_no)
        else begin
          Faultfs.simulate_crash (faultfs_of site_no);
          Fmt.pr "simulated power cut at site %s@." site
        end;
        `Ok
    | [ "degraded" ] ->
        Site_set.iter
          (fun site ->
            match Live.degraded cluster site with
            | Some reason -> Fmt.pr "site %d: degraded (%s)@." site reason
            | None -> ())
          (Live.up_sites cluster);
        Fmt.pr "up: %a@." Site_set.pp (Live.up_sites cluster);
        `Ok
    | [ "status" ] ->
        Fmt.pr "up: %a@." Site_set.pp (Live.up_sites cluster);
        `Ok
    | [ "check" ] ->
        Fmt.pr "@[<v>%a@]@." pp_audit (Live.check cluster);
        `Ok
    | [ "stats" ] ->
        let hub = Live.obs cluster in
        Fmt.pr "%a" Obs_metrics.pp_snapshot
          (Obs_metrics.snapshot hub.Obs_hub.metrics);
        let entries = Obs_trace.recent ~n:12 hub.Obs_hub.trace in
        Fmt.pr "trace: %d recorded, %d dropped, last %d:@."
          (Obs_trace.recorded hub.Obs_hub.trace)
          (Obs_trace.dropped hub.Obs_hub.trace)
          (List.length entries);
        List.iter (fun e -> Fmt.pr "  %a@." Obs_trace.pp_entry e) entries;
        `Ok
    | [ "sleep"; seconds ] ->
        Thread.delay (float_of_string seconds);
        `Ok
    | _ ->
        fail
          (Printf.sprintf
             "unknown command %S (put/get/recover/partition/heal/kill/restart/\
              fault/crash-sim/degraded/status/check/stats/sleep)"
             line);
        `Ok
  in
  (* A malformed operand (non-numeric site, bad sleep time) must not tear
     down the whole console: scripts keep going past a bad line. *)
  match dispatch () with
  | `Ok -> ()
  | exception Failure _ -> fail (Printf.sprintf "malformed command %S" line)
  | exception Invalid_argument reason ->
      fail (Printf.sprintf "%s (in %S)" reason line)

let serve_cmd =
  let dir_arg =
    let doc =
      "State directory (one subdirectory per site; reused across runs, so a \
       stopped cluster resumes from its stable records)."
    in
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let script_arg =
    let doc = "Run commands from $(docv) instead of stdin; lines are echoed." in
    Arg.(value & opt (some file) None & info [ "script" ] ~docv:"FILE" ~doc)
  in
  let fault_arg =
    let doc =
      "Arm a storage-fault trigger at boot: SITE:FAULT[@nth][:file], e.g. \
       0:fsync-lie:data or 2:eio\\@2:oplog.  Repeatable.  Faults are eio, \
       enospc, short-write, fsync-fail, fsync-lie, rename-loss, read-eio, \
       crash; files are ensemble, data, oplog.  The console's fault command \
       arms more at runtime."
    in
    Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"SPEC" ~doc)
  in
  let run sites policy_text buffered pipeline max_reuse shards resident seed dir
      script fault_specs =
    let dir = match dir with Some d -> d | None -> fresh_temp_dir () in
    let universe = Site_set.universe sites in
    (* Every site's storage runs through its own fault-injection
       filesystem (pass-through until a trigger is armed), so the
       console can arm faults or simulate power cuts at any moment. *)
    let instances = Hashtbl.create 8 in
    let faultfs_of site =
      match Hashtbl.find_opt instances site with
      | Some ff -> ff
      | None ->
          let ff = Faultfs.create ~seed:(seed + site) () in
          Hashtbl.add instances site ff;
          ff
    in
    let boot_triggers =
      List.map
        (fun spec ->
          match parse_fault_spec spec with
          | Ok st -> st
          | Error reason ->
              Fmt.epr "bad --fault %S: %s@." spec reason;
              exit 2)
        fault_specs
    in
    let cluster =
      Live.create ~flavor:(live_flavor policy_text)
        ~config:(live_config ~pipeline ~max_reuse ~shards ~resident ~buffered ())
        ~vfs_of:(fun site -> Faultfs.vfs (faultfs_of site))
        ~universe ~dir ()
    in
    (* Arm after boot: triggers mean "the nth matching operation of the
       workload", not of the boot sequence. *)
    List.iter
      (fun (site, trigger) -> Faultfs.arm_next (faultfs_of site) trigger)
      boot_triggers;
    Fmt.pr "serving %d sites from %s (port %d)@." sites dir (Live.port cluster);
    let client = Live.client cluster in
    (match script with
    | Some path ->
        let ic = open_in path in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then Fmt.pr "> %s@." (String.trim line);
             serve_command cluster ~faultfs_of client line
           done
         with End_of_file -> close_in ic)
    | None -> (
        try
          while true do
            Fmt.epr "dynvote> %!";
            serve_command cluster ~faultfs_of client (input_line stdin)
          done
        with End_of_file -> ()));
    Live.shutdown cluster;
    Fmt.pr "stopped@."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a live replicated KV cluster: one server thread per site behind \
          real sockets, a console for client operations (put/get/recover), \
          fault injection (partition/heal/kill/restart, plus storage faults \
          via --fault and the fault/crash-sim commands), and an on-demand \
          safety audit that replays every node's on-disk operation log \
          through the oracle.")
    Term.(const run $ live_sites $ live_policy $ live_buffered $ live_pipeline
          $ live_max_reuse $ live_shards $ live_resident $ seed $ dir_arg
          $ script_arg $ fault_arg)

let loadgen_cmd =
  let clients_arg =
    Arg.(value & opt int 4
         & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client workers.")
  in
  let duration_arg =
    Arg.(value & opt float 5.0
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Length of the run.")
  in
  let write_ratio_arg =
    Arg.(value & opt float 0.3
         & info [ "write-ratio" ] ~docv:"R" ~doc:"Fraction of operations that are puts.")
  in
  let keys_arg =
    Arg.(value & opt (some int) None
         & info [ "keys" ] ~docv:"K" ~doc:"Key-space size (default 16).")
  in
  let zipf_arg =
    let doc =
      "Zipf key-popularity exponent: rank k is drawn with probability \
       proportional to 1/(k+1)^s.  Requires an explicit --keys (a skewed \
       draw over an unstated key space is almost never what you meant).  \
       Default: uniform."
    in
    Arg.(value & opt (some float) None & info [ "zipf" ] ~docv:"S" ~doc)
  in
  let value_bytes_arg =
    Arg.(value & opt int 64
         & info [ "value-bytes" ] ~docv:"B" ~doc:"Payload bytes per put.")
  in
  let rate_arg =
    let doc =
      "Open-loop target rate (ops/s, Poisson arrivals; latency measured from \
       the intended start).  Default: closed loop."
    in
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"OPS" ~doc)
  in
  let no_check_arg =
    Arg.(value & flag
         & info [ "no-check" ] ~doc:"Skip the end-of-run safety audit.")
  in
  let retries_arg =
    let doc =
      "Retry an aborted or degraded-site call at up to $(docv) other sites, \
       under the same request number (exactly-once via the sites' dedup \
       tables)."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let mux_arg =
    let doc =
      "Multiplex every client onto one thread through a readiness loop of \
       nonblocking connections (closed loop only, no cross-site retries).  \
       Thousands of clients are thousands of descriptors, not threads."
    in
    Arg.(value & flag & info [ "mux" ] ~doc)
  in
  let site_arg =
    let doc =
      "Coordinate every call at site $(docv) (default: spread uniformly \
       over all sites).  A single coordinator is where lock anchoring and \
       pipelining pay off — rival coordinators at other sites contend for \
       the same global locks."
    in
    Arg.(value & opt (some int) None & info [ "site" ] ~docv:"S" ~doc)
  in
  let net_stats_arg =
    Arg.(value & flag
         & info [ "net-stats" ]
             ~doc:
               "Also print the event-loop and pipelining counters (wakeups, \
                batch sizes, rounds in flight, anchor reuse).")
  in
  let run sites policy_text buffered pipeline max_reuse shards resident seed
      clients duration write_ratio keys zipf value_bytes rate retries mux site
      net_stats no_check =
    let zipf =
      match (zipf, keys) with
      | Some _, None ->
          Fmt.epr
            "dynvote: --zipf needs an explicit --keys (the skew is over the \
             key space; say how big it is)@.";
          exit 2
      | Some s, Some _ -> s
      | None, _ -> 0.0
    in
    let keys = Option.value ~default:16 keys in
    let dir = fresh_temp_dir () in
    let universe = Site_set.universe sites in
    let cluster =
      Live.create ~flavor:(live_flavor policy_text)
        ~config:(live_config ~pipeline ~max_reuse ~shards ~resident ~buffered ())
        ~universe ~dir ()
    in
    let target_sites =
      match site with
      | None -> None
      | Some s ->
          if not (Site_set.mem s universe) then begin
            Fmt.epr "dynvote: --site %d is not in the universe@." s;
            exit 2
          end;
          Some (Site_set.singleton s)
    in
    let config =
      { Loadgen.clients; duration; write_ratio; keys; zipf; value_bytes; rate;
        seed; sites = target_sites; retries;
        mode = (if mux then `Mux else `Threads) }
    in
    let result = Loadgen.run cluster config in
    Fmt.pr "%a@." Loadgen.pp_result result;
    (* The same latencies, read back from the hub's log-scaled registry
       histograms (bucketed, vs. the exact sorted-sample numbers above). *)
    let m = (Live.obs cluster).Obs_hub.metrics in
    let pp_q ppf (h, q) =
      let v = Obs_metrics.quantile h q in
      if Float.is_nan v then Fmt.string ppf "-"
      else Fmt.pf ppf "%.2f ms" (v *. 1e3)
    in
    List.iter
      (fun (label, name) ->
        let h = Obs_metrics.histogram m name in
        Fmt.pr "hist %-6s n=%d  p50 %a  p95 %a  p99 %a@." label
          (Obs_metrics.histogram_count h)
          pp_q (h, 0.50) pp_q (h, 0.95) pp_q (h, 0.99))
      [ ("reads", "loadgen.read.seconds"); ("writes", "loadgen.write.seconds") ];
    if net_stats then begin
      Fmt.pr "loop %s: %d wakeups@." (Live.backend cluster)
        (Obs_metrics.counter_value
           (Obs_metrics.counter m "net.loop.wakeups"));
      List.iter
        (fun (label, name) ->
          let h = Obs_metrics.histogram m name in
          Fmt.pr "hist %-16s n=%-7d mean %.2f  max %.0f@." label
            (Obs_metrics.histogram_count h)
            (Obs_metrics.histogram_mean h)
            (Obs_metrics.histogram_max h))
        [ ("batch.frames", "net.batch.frames");
          ("rounds.inflight", "live.rounds.inflight");
          ("commit.batch", "live.commit.batch") ];
      List.iter
        (fun name ->
          Fmt.pr "ctr  %-20s %d@." name
            (Obs_metrics.counter_value (Obs_metrics.counter m name)))
        [ "live.lock.rounds"; "live.gather.reused"; "live.commit.waves";
          "live.op.granted" ]
    end;
    let ok =
      no_check
      ||
      let audit = Live.check cluster in
      Fmt.pr "@[<v>%a@]@." pp_audit audit;
      Oracle.is_safe audit.Live.oracle
      && audit.Live.dup_applies = 0
      && audit.Live.kviolations = []
    in
    Live.shutdown cluster;
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Boot a live cluster in a temporary directory and drive it with \
          concurrent client workers (closed loop, or open loop with --rate).  \
          Reports goodput with a batch-means 95% confidence interval, exact \
          latency percentiles (plus the registry's log-scaled histograms), \
          and the end-of-run safety audit.")
    Term.(const run $ live_sites $ live_policy $ live_buffered $ live_pipeline
          $ live_max_reuse $ live_shards $ live_resident $ seed $ clients_arg
          $ duration_arg $ write_ratio_arg $ keys_arg $ zipf_arg
          $ value_bytes_arg $ rate_arg $ retries_arg $ mux_arg $ site_arg
          $ net_stats_arg $ no_check_arg)

let stats_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the snapshot as machine-readable JSON.")
  in
  let duration_arg =
    Arg.(value & opt float 1.0
         & info [ "duration" ] ~docv:"SECONDS" ~doc:"Length of the warm-up workload.")
  in
  let trace_arg =
    Arg.(value & opt int 12
         & info [ "trace" ] ~docv:"N" ~doc:"Trace events to dump (text mode).")
  in
  let run sites policy_text buffered shards resident seed duration json trace_n
      =
    let dir = fresh_temp_dir () in
    let universe = Site_set.universe sites in
    let cluster =
      Live.create ~flavor:(live_flavor policy_text)
        ~config:(live_config ~shards ~resident ~buffered ())
        ~universe ~dir ()
    in
    let config = { Loadgen.default with Loadgen.clients = 2; duration; seed } in
    ignore (Loadgen.run cluster config : Loadgen.result);
    let hub = Live.obs cluster in
    let snap = Obs_metrics.snapshot hub.Obs_hub.metrics in
    let entries = Obs_trace.recent ~n:trace_n hub.Obs_hub.trace in
    let recorded = Obs_trace.recorded hub.Obs_hub.trace in
    let dropped = Obs_trace.dropped hub.Obs_hub.trace in
    Live.shutdown cluster;
    if json then print_endline (Obs_metrics.snapshot_to_json snap)
    else begin
      Fmt.pr "%a" Obs_metrics.pp_snapshot snap;
      Fmt.pr "trace: %d recorded, %d dropped, last %d:@." recorded dropped
        (List.length entries);
      List.iter (fun e -> Fmt.pr "  %a@." Obs_trace.pp_entry e) entries
    end
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Boot a live cluster, drive it briefly, and dump the observability \
          snapshot: every counter and log-scaled latency histogram in the \
          metrics registry (text or --json) plus the tail of the structured \
          trace ring.  The same instruments a long-running serve session \
          exposes through its console's stats command.")
    Term.(const run $ live_sites $ live_policy $ live_buffered $ live_shards
          $ live_resident $ seed $ duration_arg $ json_arg $ trace_arg)

let crashmat_cmd =
  let full_arg =
    let doc =
      "Run the full cross product (every persist point x every fault class). \
       Default: a representative slice, unless DYNVOTE_CRASH_SOAK=1."
    in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let points_arg =
    let doc =
      "Comma-separated persist points (e.g. data.fsync,oplog.write); default \
       depends on --full."
    in
    Arg.(value & opt (some string) None & info [ "points" ] ~docv:"LIST" ~doc)
  in
  let faults_arg =
    let doc =
      "Comma-separated fault classes (e.g. fsync-lie,crash); default depends \
       on --full."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"LIST" ~doc)
  in
  let dir_arg =
    let doc = "Keep cell state under $(docv) (default: a temp directory)." in
    Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let split_list text = String.split_on_char ',' text |> List.map String.trim in
  let run seed jobs full points_text faults_text dir =
    let soak =
      full || (match Sys.getenv_opt "DYNVOTE_CRASH_SOAK" with
              | Some ("" | "0") | None -> false
              | Some _ -> true)
    in
    let all_points = Crash_matrix.points @ Crash_matrix.compaction_points in
    let points =
      match points_text with
      | Some text ->
          List.map
            (fun name ->
              match
                List.find_opt
                  (fun p -> Crash_matrix.point_name p = name)
                  all_points
              with
              | Some p -> p
              | None ->
                  Fmt.epr "unknown persist point %S (have: %s)@." name
                    (String.concat ", "
                       (List.map Crash_matrix.point_name all_points));
                  exit 2)
            (split_list text)
      | None ->
          if soak then all_points
          else
            (* One point per file: the slice still exercises the replace
               discipline of both blobs, the append path, and the keyed
               store's compaction rewrite. *)
            List.filter
              (fun p ->
                List.mem (Crash_matrix.point_name p)
                  [ "ensemble.rename"; "data.fsync"; "oplog.write";
                    "shard.rename" ])
              all_points
    in
    let faults =
      match faults_text with
      | Some text ->
          List.map
            (fun name ->
              match Storage_fault.fault_of_name name with
              | Some f -> f
              | None ->
                  Fmt.epr "unknown fault %S (have: %s)@." name
                    (String.concat ", "
                       (List.map Storage_fault.fault_name
                          Storage_fault.all_faults));
                  exit 2)
            (split_list text)
      | None ->
          if soak then Storage_fault.all_faults
          else [ Storage_fault.Eio; Storage_fault.Fsync_lie; Storage_fault.Crash ]
    in
    let dir = match dir with Some d -> d | None -> fresh_temp_dir () in
    let cells =
      Crash_matrix.run ~jobs:(resolve_jobs jobs) ~seed ~faults ~points ~dir ()
    in
    Fmt.pr "%a@." Crash_matrix.pp_table cells;
    if List.exists (fun c -> not (Crash_matrix.ok c.Crash_matrix.c_outcome)) cells
    then exit 1
  in
  Cmd.v
    (Cmd.info "crashmat"
       ~doc:
         "The crash-point recovery matrix: for every persist point of the \
          commit path crossed with every storage fault class, boot a small \
          live cluster, strike a victim site at exactly that point, simulate \
          a power cut, restart, and grade recovery.  Every cell must end \
          Recovered or explicitly Fenced; Unavailable or Corrupt cells fail \
          the run (exit 1).")
    Term.(const run $ seed $ jobs_arg $ full_arg $ points_arg $ faults_arg
          $ dir_arg)

let main_cmd =
  let doc = "Dynamic voting algorithms for replicated data (Paris & Long, ICDE 1988)." in
  Cmd.group (Cmd.info "dynvote" ~version:"1.0.0" ~doc)
    [ table1_cmd; table2_cmd; table3_cmd; topology_cmd; simulate_cmd; sweep_cmd;
      partitions_cmd; timeline_cmd; trace_cmd; reliability_cmd; chaos_cmd; mc_cmd;
      serve_cmd; loadgen_cmd; stats_cmd; crashmat_cmd ]

let () = exit (Cmd.eval main_cmd)
