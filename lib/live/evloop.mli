(** Readiness multiplexer: epoll on Linux, poll(2) everywhere else.

    One instance per loop thread.  Register descriptors with an
    interest set, then {!wait} for edges.  There is no [select] and no
    FD_SETSIZE anywhere in this module: descriptor numbers above 1024
    are first-class, which is what lets the service hold thousands of
    concurrent connections.

    The backend is chosen automatically ([`Auto]: epoll when the
    platform has it) and can be forced for testing with the
    [DYNVOTE_EVLOOP] environment variable ([epoll] or [poll]). *)

type t

type backend = [ `Epoll | `Poll | `Auto ]

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
  error : bool;  (** error/hangup: the fd needs attention regardless of interest *)
}

val create : ?backend:backend -> unit -> t
(** [`Auto] (the default) honours [DYNVOTE_EVLOOP] if set, otherwise
    picks epoll when available and poll otherwise. *)

val backend_name : t -> string
(** ["epoll"] or ["poll"] — recorded in bench output. *)

val add : t -> Unix.file_descr -> read:bool -> write:bool -> unit
val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit

val remove : t -> Unix.file_descr -> unit
(** Swallows errors for descriptors already closed: crash injection may
    close sockets behind the loop's back. *)

val wait : t -> timeout:float -> event list
(** Block up to [timeout] seconds (negative means forever) for
    readiness.  Returns [] on timeout.  EINTR is retried internally
    with the remaining time, so callers never see it. *)

val close : t -> unit

val raise_fd_limit : int -> int
(** Best-effort [setrlimit(RLIMIT_NOFILE)] raise to at least the given
    target (raising the hard limit too needs [CAP_SYS_RESOURCE]; without
    it, the existing hard cap is the ceiling).  Returns the resulting
    soft limit — callers sizing a many-thousand-connection run should
    check it rather than assume.  Never lowers the limit. *)

val wait_fd :
  Unix.file_descr -> read:bool -> write:bool -> timeout:float -> event option
(** One-shot readiness on a single descriptor — the drop-in replacement
    for every [Unix.select] in blocking helpers ([Wire.recv],
    [Wire.send]).  Uses poll(2) directly: no registration state, works
    above FD_SETSIZE.  [None] on timeout; EINTR retried internally. *)
