(* Readiness multiplexer over the C stubs in evloop_stubs.c.

   Both backends keep an interest table on the OCaml side: poll needs
   it to build its pollfd array every call, and epoll uses it to make
   [remove] and [modify] resilient to descriptors that crash injection
   closed behind our back. *)

external has_epoll : unit -> bool = "dynvote_has_epoll"
external epoll_create : unit -> int = "dynvote_epoll_create"

external epoll_ctl : int -> int -> int -> int -> unit = "dynvote_epoll_ctl"
(* op: 0 = add, 1 = mod, 2 = del; bits: 1 = read, 2 = write *)

external epoll_wait : int -> int -> int -> int array = "dynvote_epoll_wait"
(* returns [fd0; bits0; fd1; bits1; ...] *)

external raw_poll : int array -> int -> int array = "dynvote_poll"

external raise_fd_limit : int -> int = "dynvote_raise_fd_limit"
(* input [fd0; interest0; ...], output one revents-bits cell per fd *)

external fd_of_int : int -> Unix.file_descr = "%identity"
external int_of_fd : Unix.file_descr -> int = "%identity"

type backend = [ `Epoll | `Poll | `Auto ]

type t = {
  kind : [ `Epoll of int | `Poll ];
  interest : (int, int) Hashtbl.t;
  mutable is_closed : bool;
}

type event = {
  fd : Unix.file_descr;
  readable : bool;
  writable : bool;
  error : bool;
}

let bits ~read ~write = (if read then 1 else 0) lor (if write then 2 else 0)

let event_of ~fd ~revents =
  {
    fd = fd_of_int fd;
    readable = revents land 1 <> 0;
    writable = revents land 2 <> 0;
    error = revents land 4 <> 0;
  }

let resolve_backend = function
  | `Epoll -> `Epoll
  | `Poll -> `Poll
  | `Auto -> (
      match Sys.getenv_opt "DYNVOTE_EVLOOP" with
      | Some "poll" -> `Poll
      | Some "epoll" -> `Epoll
      | _ -> if has_epoll () then `Epoll else `Poll)

let create ?(backend = `Auto) () =
  let kind =
    match resolve_backend backend with
    | `Epoll -> `Epoll (epoll_create ())
    | `Poll -> `Poll
  in
  { kind; interest = Hashtbl.create 64; is_closed = false }

let backend_name t = match t.kind with `Epoll _ -> "epoll" | `Poll -> "poll"

let add t fd ~read ~write =
  let fd = int_of_fd fd in
  let b = bits ~read ~write in
  Hashtbl.replace t.interest fd b;
  match t.kind with `Epoll ep -> epoll_ctl ep 0 fd b | `Poll -> ()

let modify t fd ~read ~write =
  let fd = int_of_fd fd in
  let b = bits ~read ~write in
  Hashtbl.replace t.interest fd b;
  match t.kind with `Epoll ep -> epoll_ctl ep 1 fd b | `Poll -> ()

let remove t fd =
  let fd = int_of_fd fd in
  Hashtbl.remove t.interest fd;
  match t.kind with
  | `Epoll ep -> ( try epoll_ctl ep 2 fd 0 with Unix.Unix_error _ -> ())
  | `Poll -> ()

let ms_of_timeout timeout =
  if timeout < 0. then -1 else int_of_float (ceil (timeout *. 1000.))

(* EINTR is retried with the time that remains, measured on the
   monotonic clock, so a signal storm cannot stretch a deadline. *)
let rec with_eintr_retry ~timeout f =
  let start = Dynvote_obs.Clock.now () in
  match f (ms_of_timeout timeout) with
  | result -> result
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      let timeout =
        if timeout < 0. then timeout
        else Float.max 0. (timeout -. (Dynvote_obs.Clock.now () -. start))
      in
      with_eintr_retry ~timeout f

let wait t ~timeout =
  if t.is_closed then []
  else
    match t.kind with
    | `Epoll ep ->
        let n = Hashtbl.length t.interest in
        let raw = with_eintr_retry ~timeout (epoll_wait ep (max n 1)) in
        let events = ref [] in
        for i = (Array.length raw / 2) - 1 downto 0 do
          events :=
            event_of ~fd:raw.(2 * i) ~revents:raw.((2 * i) + 1) :: !events
        done;
        !events
    | `Poll ->
        let n = Hashtbl.length t.interest in
        let pairs = Array.make (2 * n) 0 in
        let fds = Array.make (max n 1) 0 in
        let i = ref 0 in
        Hashtbl.iter
          (fun fd b ->
            fds.(!i) <- fd;
            pairs.(2 * !i) <- fd;
            pairs.((2 * !i) + 1) <- b;
            incr i)
          t.interest;
        let revents = with_eintr_retry ~timeout (raw_poll pairs) in
        let events = ref [] in
        for j = Array.length revents - 1 downto 0 do
          if revents.(j) <> 0 then
            events := event_of ~fd:fds.(j) ~revents:revents.(j) :: !events
        done;
        !events

let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    Hashtbl.reset t.interest;
    match t.kind with
    | `Epoll ep -> (
        try Unix.close (fd_of_int ep) with Unix.Unix_error _ -> ())
    | `Poll -> ()
  end

let wait_fd fd ~read ~write ~timeout =
  let fd = int_of_fd fd in
  let pairs = [| fd; bits ~read ~write |] in
  let revents = with_eintr_retry ~timeout (raw_poll pairs) in
  if Array.length revents = 0 || revents.(0) = 0 then None
  else Some (event_of ~fd ~revents:revents.(0))
