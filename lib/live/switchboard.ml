(* The in-process network fabric, event-driven.  One broker thread runs
   an Evloop (epoll on Linux, poll elsewhere) over every registered
   connection and routes frames subject to the current topology; the
   control API (partition / heal / crash) mutates that topology under a
   mutex and pokes the broker through a self-pipe so changes take effect
   immediately, even while the broker is blocked in the wait.

   Routing never blocks: a frame is staged on the destination's bounded
   outbound queue (Evconn) and flushed once per wakeup, so frames that
   arrive together leave in one write — the batching that makes the
   quorum chatter cheap.  A destination whose queue overflows is severed
   (crash semantics): a slow consumer never OOMs the broker and never
   silently loses frames while appearing alive, and fast peers are
   unaffected because every queue is per-connection.

   Fault semantics are chosen to match what a real LAN does:
   - a partition silently eats frames crossing the cut;
   - a crash closes the victim's socket (the node thread dies on EOF);
   - nothing is ever reordered or duplicated on a surviving path (TCP). *)

module Metrics = Dynvote_obs.Metrics
module Trace = Dynvote_obs.Trace
module Hub = Dynvote_obs.Hub

type endpoint = {
  id : int;
  conn : Evconn.t;
  mutable writing : bool; (* write interest currently registered *)
  mutable partial_since : float option; (* incomplete inbound frame age *)
}

type pending = {
  pconn : Evconn.t;
  born : float;
  mutable pwriting : bool;
}

type source = Endpoint of endpoint | Pending of pending

type stats = { routed : int; dropped_partition : int; dropped_down : int }

type t = {
  listen : Unix.file_descr;
  port : int;
  universe : Site_set.t;
  segment_of : Site_set.site -> int;
  obs : Hub.t;
  clock : Dynvote_obs.Clock.t;
  stall_timeout : float option;
  net_sent : Metrics.counter;
  net_delivered : Metrics.counter;
  net_rejected : Metrics.counter;
  net_dropped : Metrics.counter;
  loop_wakeups : Metrics.counter;
  batch_frames : Metrics.histogram;
  mutex : Mutex.t;
  loop : Evloop.t;
  by_fd : (int, source) Hashtbl.t; (* broker thread only *)
  mutable endpoints : endpoint list;
  mutable pendings : pending list;
  mutable up : Site_set.t;
  mutable groups : Site_set.t list option;
  mutable kill_queue : Site_set.site list;
  mutable next_client : int;
  mutable running : bool;
  mutable routed : int;
  mutable dropped_partition : int;
  mutable dropped_down : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable broker : Thread.t option;
}

external int_of_fd : Unix.file_descr -> int = "%identity"

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

(* Both endpoints up and on the same side of the cut.  Clients are
   treated as co-located with whatever site they address (the paper's
   user-at-a-site model), so only the site's liveness matters to them. *)
let connected_locked t a b =
  let site_ok s = (not (Wire.is_site s)) || Site_set.mem s t.up in
  site_ok a && site_ok b
  &&
  if Wire.is_site a && Wire.is_site b then
    match t.groups with
    | None -> true
    | Some groups ->
        List.exists (fun g -> Site_set.mem a g && Site_set.mem b g) groups
  else true

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Everything below runs on the broker thread (the only thread that
   touches the evloop and the fd table); the mutex only guards the
   topology and the endpoint lists that the control API reads. *)

let unregister_fd t conn =
  match Evconn.fd conn with
  | None -> ()
  | Some fd ->
      Hashtbl.remove t.by_fd (int_of_fd fd);
      Evloop.remove t.loop fd;
      Evconn.close conn

let drop_endpoint t ep =
  locked t (fun () ->
      t.endpoints <- List.filter (fun e -> e != ep) t.endpoints;
      if Wire.is_site ep.id then t.up <- Site_set.remove ep.id t.up);
  unregister_fd t ep.conn

let drop_pending t p =
  locked t (fun () -> t.pendings <- List.filter (fun q -> q != p) t.pendings);
  unregister_fd t p.pconn

let drop_frame t (env : Wire.envelope) reason =
  Metrics.incr t.net_dropped;
  Hub.event t.obs
    (Trace.Frame_dropped
       {
         src = env.Wire.src;
         dst = env.Wire.dst;
         reason = reason ^ " " ^ Wire.kind_name env.Wire.payload;
       })

(* Keep the loop's write interest in sync with the queue state. *)
let update_write_interest t ep =
  let want = Evconn.want_write ep.conn in
  if want <> ep.writing then begin
    ep.writing <- want;
    match Evconn.fd ep.conn with
    | None -> ()
    | Some fd -> ( try Evloop.modify t.loop fd ~read:true ~write:want
                   with Unix.Unix_error _ -> ())
  end

let flush_endpoint t ep =
  if Evconn.want_write ep.conn then begin
    let batch = Evconn.queued_frames ep.conn in
    match Evconn.flush ep.conn with
    | `Idle ->
        if batch > 0 then Metrics.observe t.batch_frames (float_of_int batch);
        update_write_interest t ep
    | `Blocked -> update_write_interest t ep
    | `Closed ->
        locked t (fun () -> t.dropped_down <- t.dropped_down + 1);
        drop_endpoint t ep
  end
  else update_write_interest t ep

let route t ep (env : Wire.envelope) =
  let deliver =
    locked t (fun () ->
        (* The registered id is authoritative; a frame cannot spoof its
           source. *)
        let env = { env with Wire.src = ep.id } in
        if not (connected_locked t ep.id env.Wire.dst) then begin
          if Wire.is_site ep.id && Wire.is_site env.Wire.dst then begin
            t.dropped_partition <- t.dropped_partition + 1;
            drop_frame t env "partition:"
          end
          else begin
            t.dropped_down <- t.dropped_down + 1;
            drop_frame t env "down:"
          end;
          None
        end
        else
          match List.find_opt (fun e -> e.id = env.Wire.dst) t.endpoints with
          | None ->
              t.dropped_down <- t.dropped_down + 1;
              drop_frame t env "unregistered:";
              None
          | Some target -> Some (env, target))
  in
  match deliver with
  | None -> ()
  | Some (env, target) -> (
      match Evconn.enqueue target.conn env with
      | `Ok ->
          locked t (fun () -> t.routed <- t.routed + 1);
          Metrics.incr t.net_delivered;
          Hub.event t.obs
            (Trace.Frame_recv
               {
                 src = env.Wire.src;
                 dst = env.Wire.dst;
                 kind = Wire.kind_name env.Wire.payload;
               })
      | `Overflow ->
          (* The backpressure contract: a consumer that cannot drain its
             queue is indistinguishable from a dead one, and killing the
             connection is the only reaction that neither loses frames on
             a live path nor grows without bound. *)
          locked t (fun () -> t.dropped_down <- t.dropped_down + 1);
          drop_frame t env "backpressure:";
          Hub.event t.obs
            (Trace.Note
               (Printf.sprintf "backpressure severed endpoint %d" target.id));
          drop_endpoint t target)

let send_direct t ep env =
  match Evconn.enqueue ep.conn env with
  | `Ok -> flush_endpoint t ep
  | `Overflow -> drop_endpoint t ep

let register t p (env : Wire.envelope) =
  locked t (fun () -> t.pendings <- List.filter (fun q -> q != p) t.pendings);
  match env.Wire.payload with
  | Wire.Hello_site { site }
    when Site_set.mem site t.universe && not (locked t (fun () -> Site_set.mem site t.up)) ->
      (* A stale registration for this site (a crashed node whose socket
         we have not reaped yet) is replaced. *)
      List.iter
        (fun e -> if e.id = site then drop_endpoint t e)
        (locked t (fun () -> List.filter (fun e -> e.id = site) t.endpoints));
      let ep = { id = site; conn = p.pconn; writing = p.pwriting; partial_since = None } in
      locked t (fun () ->
          t.endpoints <- ep :: t.endpoints;
          t.up <- Site_set.add site t.up);
      (match Evconn.fd p.pconn with
      | Some fd -> Hashtbl.replace t.by_fd (int_of_fd fd) (Endpoint ep)
      | None -> ());
      send_direct t ep
        { Wire.src = Wire.broker_id; dst = site; payload = Wire.Welcome { id = site } }
  | Wire.Hello_client ->
      let id = locked t (fun () ->
          let id = t.next_client in
          t.next_client <- id + 1;
          id)
      in
      let ep = { id; conn = p.pconn; writing = p.pwriting; partial_since = None } in
      locked t (fun () -> t.endpoints <- ep :: t.endpoints);
      (match Evconn.fd p.pconn with
      | Some fd -> Hashtbl.replace t.by_fd (int_of_fd fd) (Endpoint ep)
      | None -> ());
      send_direct t ep
        { Wire.src = Wire.broker_id; dst = id; payload = Wire.Welcome { id } }
  | _ -> unregister_fd t p.pconn

let process_kills t =
  let victims =
    locked t (fun () ->
        let sites = t.kill_queue in
        t.kill_queue <- [];
        List.concat_map
          (fun site -> List.filter (fun e -> e.id = site) t.endpoints)
          sites)
  in
  List.iter (fun ep -> drop_endpoint t ep) victims

let handle_frames t source frames =
  List.iter
    (fun frame ->
      match (frame, source) with
      | Error reason, Endpoint ep ->
          (* A corrupt frame means the stream is unframed garbage; the
             connection cannot be trusted any further. *)
          Metrics.incr t.net_rejected;
          Hub.event t.obs (Trace.Frame_rejected { src = ep.id; reason });
          drop_endpoint t ep
      | Error reason, Pending p ->
          Metrics.incr t.net_rejected;
          Hub.event t.obs (Trace.Frame_rejected { src = -1; reason });
          drop_pending t p
      | Ok env, Endpoint ep ->
          Metrics.incr t.net_sent;
          Hub.event t.obs
            (Trace.Frame_sent
               {
                 src = ep.id;
                 dst = env.Wire.dst;
                 kind = Wire.kind_name env.Wire.payload;
               });
          route t ep env
      | Ok env, Pending p -> register t p env)
    frames

let still_open t source =
  match source with
  | Endpoint ep -> locked t (fun () -> List.memq ep t.endpoints)
  | Pending p -> locked t (fun () -> List.memq p t.pendings)

let handle_readable t source =
  let conn = match source with Endpoint ep -> ep.conn | Pending p -> p.pconn in
  let frames, status = Evconn.on_readable conn in
  handle_frames t source frames;
  (match source with
  | Endpoint ep ->
      ep.partial_since <-
        (if Evconn.buffered_in conn > 0 then
           match ep.partial_since with
           | Some _ as s -> s
           | None -> Some (t.clock ())
         else None)
  | Pending _ -> ());
  match status with
  | `Open -> ()
  | `Eof ->
      if still_open t source then (
        match source with
        | Endpoint ep -> drop_endpoint t ep
        | Pending p -> drop_pending t p)

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen with
    | fd, _ ->
        (* Tiny request/reply frames: Nagle would serialize every
           exchange into 40 ms delayed-ACK stalls. *)
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        let p = { pconn = Evconn.of_fd fd; born = t.clock (); pwriting = false } in
        locked t (fun () -> t.pendings <- p :: t.pendings);
        Hashtbl.replace t.by_fd (int_of_fd fd) (Pending p);
        Evloop.add t.loop fd ~read:true ~write:false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done

(* A peer that opened a frame and stopped feeding it — or connected and
   never said Hello — is reaped on the injected clock, not by any
   blocking read: the loop itself is the timeout mechanism. *)
let reap_stalled t =
  match t.stall_timeout with
  | None -> ()
  | Some limit ->
      let now = t.clock () in
      let stale_eps =
        locked t (fun () ->
            List.filter
              (fun ep ->
                match ep.partial_since with
                | Some since -> now -. since > limit
                | None -> false)
              t.endpoints)
      in
      List.iter
        (fun ep ->
          Hub.event t.obs
            (Trace.Note (Printf.sprintf "reaped stalled endpoint %d" ep.id));
          drop_endpoint t ep)
        stale_eps;
      let stale_pendings =
        locked t (fun () ->
            List.filter (fun p -> now -. p.born > limit) t.pendings)
      in
      List.iter
        (fun p ->
          Hub.event t.obs (Trace.Note "reaped stalled pre-hello connection");
          drop_pending t p)
        stale_pendings

let fd_alive fd =
  match Unix.fstat fd with
  | _ -> true
  | exception Unix.Unix_error _ -> false

(* EBADF from the wait means some registered fd is already closed — a
   crash raced the routing table, or a descriptor leaked shut elsewhere.
   Probe every fd we own and evict the dead ones. *)
let reap_dead_fds t =
  let eps = locked t (fun () -> t.endpoints) in
  List.iter
    (fun ep ->
      let dead =
        match Evconn.fd ep.conn with None -> true | Some fd -> not (fd_alive fd)
      in
      if dead then begin
        Hub.event t.obs
          (Trace.Note (Printf.sprintf "reaped dead fd of endpoint %d" ep.id));
        drop_endpoint t ep
      end)
    eps;
  let ps = locked t (fun () -> t.pendings) in
  List.iter
    (fun p ->
      let dead =
        match Evconn.fd p.pconn with None -> true | Some fd -> not (fd_alive fd)
      in
      if dead then drop_pending t p)
    ps;
  (* Losing the listener or the self-pipe is unrecoverable: stop rather
     than wait on garbage. *)
  if not (fd_alive t.listen && fd_alive t.wake_r) then
    locked t (fun () -> t.running <- false)

let flush_all t =
  let eps = locked t (fun () -> t.endpoints) in
  List.iter (fun ep -> flush_endpoint t ep) eps

let broker_loop t =
  Evloop.add t.loop t.listen ~read:true ~write:false;
  Evloop.add t.loop t.wake_r ~read:true ~write:false;
  let listen_n = int_of_fd t.listen and wake_n = int_of_fd t.wake_r in
  while locked t (fun () -> t.running) do
    (* With a stall timeout the loop must wake to consult the injected
       clock even when the fabric is silent. *)
    let timeout = match t.stall_timeout with None -> -1.0 | Some _ -> 0.05 in
    (match Evloop.wait t.loop ~timeout with
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        reap_dead_fds t;
        process_kills t
    | events ->
        Metrics.incr t.loop_wakeups;
        List.iter
          (fun (ev : Evloop.event) ->
            let n = int_of_fd ev.Evloop.fd in
            if n = wake_n then begin
              (try ignore (Unix.read t.wake_r (Bytes.create 16) 0 16)
               with _ -> ());
              process_kills t
            end
            else if n = listen_n then accept_loop t
            else
              match Hashtbl.find_opt t.by_fd n with
              | None -> Evloop.remove t.loop ev.Evloop.fd
              | Some source ->
                  if ev.Evloop.readable || ev.Evloop.error then
                    handle_readable t source;
                  if ev.Evloop.writable && still_open t source then (
                    match source with
                    | Endpoint ep -> flush_endpoint t ep
                    | Pending p ->
                        (match Evconn.flush p.pconn with
                        | `Closed -> drop_pending t p
                        | `Idle | `Blocked -> ())))
          events);
    reap_stalled t;
    (* One flush pass per wakeup: everything staged for a destination
       during this batch of events leaves in a single write. *)
    flush_all t
  done;
  (* Shutdown: close everything we own. *)
  let eps, ps =
    locked t (fun () ->
        let eps = t.endpoints and ps = t.pendings in
        t.endpoints <- [];
        t.pendings <- [];
        (eps, ps))
  in
  List.iter (fun ep -> unregister_fd t ep.conn) eps;
  List.iter (fun p -> unregister_fd t p.pconn) ps;
  Evloop.close t.loop;
  close_quietly t.listen;
  close_quietly t.wake_r;
  close_quietly t.wake_w

let create ?(obs = Hub.noop) ?(first_client = Wire.first_client_id)
    ?(clock = Dynvote_obs.Clock.now) ?stall_timeout ?backend ~universe
    ~segment_of () =
  (* A routed frame to a just-crashed socket must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen Unix.SO_REUSEADDR true;
  Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen 1024;
  Unix.set_nonblock listen;
  let port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  let t =
    {
      listen;
      port;
      universe;
      segment_of;
      obs;
      clock;
      stall_timeout;
      net_sent = Metrics.counter obs.Hub.metrics "net.frames.sent";
      net_delivered = Metrics.counter obs.Hub.metrics "net.frames.delivered";
      net_rejected = Metrics.counter obs.Hub.metrics "net.frames.rejected";
      net_dropped = Metrics.counter obs.Hub.metrics "net.frames.dropped";
      loop_wakeups = Metrics.counter obs.Hub.metrics "net.loop.wakeups";
      batch_frames = Metrics.histogram obs.Hub.metrics "net.batch.frames";
      mutex = Mutex.create ();
      loop = Evloop.create ?backend ();
      by_fd = Hashtbl.create 64;
      endpoints = [];
      pendings = [];
      up = Site_set.empty;
      groups = None;
      kill_queue = [];
      next_client = first_client;
      running = true;
      routed = 0;
      dropped_partition = 0;
      dropped_down = 0;
      wake_r;
      wake_w;
      broker = None;
    }
  in
  t.broker <- Some (Thread.create broker_loop t);
  t

let port t = t.port
let backend t = Evloop.backend_name t.loop

let partition t groups =
  let covered = List.fold_left Site_set.union Site_set.empty groups in
  if not (Site_set.equal covered t.universe) then
    invalid_arg "Switchboard.partition: groups must cover the universe";
  let total = List.fold_left (fun acc g -> acc + Site_set.cardinal g) 0 groups in
  if total <> Site_set.cardinal t.universe then
    invalid_arg "Switchboard.partition: groups overlap";
  (* Segments are physically unsplittable (carrier-sense wire / token
     ring): every pair of same-segment sites must land in one group. *)
  Site_set.iter
    (fun a ->
      Site_set.iter
        (fun b ->
          if a < b && t.segment_of a = t.segment_of b then
            let together =
              List.exists (fun g -> Site_set.mem a g && Site_set.mem b g) groups
            in
            if not together then
              invalid_arg
                (Printf.sprintf
                   "Switchboard.partition: sites %d and %d share a segment and \
                    cannot be separated"
                   a b))
        t.universe)
    t.universe;
  locked t (fun () -> t.groups <- Some groups);
  Hub.event t.obs
    (Trace.Partition
       { groups = Fmt.str "%a" (Fmt.list ~sep:Fmt.sp Site_set.pp) groups });
  wake t

let heal t =
  locked t (fun () -> t.groups <- None);
  Hub.event t.obs Trace.Heal;
  wake t

let crash t site =
  locked t (fun () ->
      t.up <- Site_set.remove site t.up;
      t.kill_queue <- site :: t.kill_queue);
  Hub.event t.obs (Trace.Crash { site });
  wake t

let up_sites t = locked t (fun () -> t.up)
let is_up t site = locked t (fun () -> Site_set.mem site t.up)
let groups t = locked t (fun () -> t.groups)

let stats t =
  locked t (fun () ->
      {
        routed = t.routed;
        dropped_partition = t.dropped_partition;
        dropped_down = t.dropped_down;
      })

let shutdown t =
  locked t (fun () -> t.running <- false);
  wake t;
  match t.broker with None -> () | Some thread -> Thread.join thread
