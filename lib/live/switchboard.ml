(* The in-process network fabric.  One broker thread selects over every
   registered connection and routes frames subject to the current
   topology; the control API (partition / heal / crash) mutates that
   topology under a mutex and pokes the broker through a self-pipe so
   changes take effect immediately, even while the broker is blocked in
   select.

   Fault semantics are chosen to match what a real LAN does:
   - a partition silently eats frames crossing the cut;
   - a crash closes the victim's socket (the node thread dies on EOF);
   - nothing is ever reordered or duplicated on a surviving path (TCP). *)

module Metrics = Dynvote_obs.Metrics
module Trace = Dynvote_obs.Trace
module Hub = Dynvote_obs.Hub

type endpoint = { id : int; conn : Wire.conn }

type stats = { routed : int; dropped_partition : int; dropped_down : int }

type t = {
  listen : Unix.file_descr;
  port : int;
  universe : Site_set.t;
  segment_of : Site_set.site -> int;
  obs : Hub.t;
  net_sent : Metrics.counter;
  net_delivered : Metrics.counter;
  net_rejected : Metrics.counter;
  net_dropped : Metrics.counter;
  mutex : Mutex.t;
  mutable endpoints : endpoint list;
  mutable pending : Wire.conn list; (* accepted, awaiting Hello *)
  mutable up : Site_set.t;
  mutable groups : Site_set.t list option;
  mutable kill_queue : Site_set.site list;
  mutable next_client : int;
  mutable running : bool;
  mutable routed : int;
  mutable dropped_partition : int;
  mutable dropped_down : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable broker : Thread.t option;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let wake t = try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1) with _ -> ()

(* Both endpoints up and on the same side of the cut.  Clients are
   treated as co-located with whatever site they address (the paper's
   user-at-a-site model), so only the site's liveness matters to them. *)
let connected_locked t a b =
  let site_ok s = (not (Wire.is_site s)) || Site_set.mem s t.up in
  site_ok a && site_ok b
  &&
  if Wire.is_site a && Wire.is_site b then
    match t.groups with
    | None -> true
    | Some groups ->
        List.exists (fun g -> Site_set.mem a g && Site_set.mem b g) groups
  else true

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let drop_endpoint t ep =
  t.endpoints <- List.filter (fun e -> e != ep) t.endpoints;
  if Wire.is_site ep.id then t.up <- Site_set.remove ep.id t.up;
  close_quietly (Wire.fd ep.conn)

let drop_frame t (env : Wire.envelope) reason =
  Metrics.incr t.net_dropped;
  Hub.event t.obs
    (Trace.Frame_dropped
       {
         src = env.Wire.src;
         dst = env.Wire.dst;
         reason = reason ^ " " ^ Wire.kind_name env.Wire.payload;
       })

let route t ep (env : Wire.envelope) =
  locked t (fun () ->
      (* The registered id is authoritative; a frame cannot spoof its
         source. *)
      let env = { env with Wire.src = ep.id } in
      if not (connected_locked t ep.id env.Wire.dst) then
        if Wire.is_site ep.id && Wire.is_site env.Wire.dst then begin
          t.dropped_partition <- t.dropped_partition + 1;
          drop_frame t env "partition:"
        end
        else begin
          t.dropped_down <- t.dropped_down + 1;
          drop_frame t env "down:"
        end
      else
        match List.find_opt (fun e -> e.id = env.Wire.dst) t.endpoints with
        | None ->
            t.dropped_down <- t.dropped_down + 1;
            drop_frame t env "unregistered:"
        | Some target -> (
            match Wire.send target.conn env with
            | () ->
                t.routed <- t.routed + 1;
                Metrics.incr t.net_delivered;
                Hub.event t.obs
                  (Trace.Frame_recv
                     {
                       src = env.Wire.src;
                       dst = env.Wire.dst;
                       kind = Wire.kind_name env.Wire.payload;
                     })
            | exception Unix.Unix_error _ ->
                t.dropped_down <- t.dropped_down + 1;
                drop_frame t env "peer-gone:";
                drop_endpoint t target))

let register t conn (env : Wire.envelope) =
  locked t (fun () ->
      t.pending <- List.filter (fun c -> c != conn) t.pending;
      match env.Wire.payload with
      | Wire.Hello_site { site }
        when Site_set.mem site t.universe && not (Site_set.mem site t.up) ->
          (* A stale registration for this site (a crashed node whose
             socket we have not reaped yet) is replaced. *)
          List.iter
            (fun e -> if e.id = site then drop_endpoint t e)
            (List.filter (fun e -> e.id = site) t.endpoints);
          t.endpoints <- { id = site; conn } :: t.endpoints;
          t.up <- Site_set.add site t.up;
          (try Wire.send conn { Wire.src = Wire.broker_id; dst = site; payload = Wire.Welcome { id = site } }
           with Unix.Unix_error _ -> ())
      | Wire.Hello_client ->
          let id = t.next_client in
          t.next_client <- id + 1;
          t.endpoints <- { id; conn } :: t.endpoints;
          (try Wire.send conn { Wire.src = Wire.broker_id; dst = id; payload = Wire.Welcome { id } }
           with Unix.Unix_error _ -> ())
      | _ -> close_quietly (Wire.fd conn))

let process_kills t =
  locked t (fun () ->
      List.iter
        (fun site ->
          List.iter
            (fun e -> if e.id = site then drop_endpoint t e)
            (List.filter (fun e -> e.id = site) t.endpoints))
        t.kill_queue;
      t.kill_queue <- [])

let drain_frames t source conn =
  let continue = ref true in
  while !continue do
    match Wire.next_frame conn with
    | None -> continue := false
    | Some (Error reason) ->
        (* A corrupt frame means the stream is unframed garbage; the
           connection cannot be trusted any further. *)
        Metrics.incr t.net_rejected;
        (match source with
        | `Endpoint ep ->
            Hub.event t.obs (Trace.Frame_rejected { src = ep.id; reason });
            locked t (fun () -> drop_endpoint t ep)
        | `Pending _ ->
            Hub.event t.obs (Trace.Frame_rejected { src = -1; reason });
            locked t (fun () -> t.pending <- List.filter (fun c -> c != conn) t.pending);
            close_quietly (Wire.fd conn));
        continue := false
    | Some (Ok env) -> (
        match source with
        | `Endpoint ep ->
            Metrics.incr t.net_sent;
            Hub.event t.obs
              (Trace.Frame_sent
                 {
                   src = ep.id;
                   dst = env.Wire.dst;
                   kind = Wire.kind_name env.Wire.payload;
                 });
            route t ep env
        | `Pending _ ->
            register t conn env;
            continue := false)
  done

let fd_alive fd =
  match Unix.fstat fd with
  | _ -> true
  | exception Unix.Unix_error _ -> false

(* EBADF from select means some registered fd is already closed — a
   crash raced the routing table, or a descriptor leaked shut elsewhere.
   Retrying the select verbatim (the old EINTR treatment) spins forever;
   instead, probe every fd we own and evict the dead ones. *)
let reap_dead_fds t =
  locked t (fun () ->
      List.iter
        (fun ep ->
          if not (fd_alive (Wire.fd ep.conn)) then begin
            Hub.event t.obs
              (Trace.Note (Printf.sprintf "reaped dead fd of endpoint %d" ep.id));
            drop_endpoint t ep
          end)
        t.endpoints;
      List.iter
        (fun c -> if not (fd_alive (Wire.fd c)) then close_quietly (Wire.fd c))
        t.pending;
      t.pending <- List.filter (fun c -> fd_alive (Wire.fd c)) t.pending;
      (* Losing the listener or the self-pipe is unrecoverable: stop
         rather than select on garbage. *)
      if not (fd_alive t.listen && fd_alive t.wake_r) then t.running <- false)

let broker_loop t =
  while locked t (fun () -> t.running) do
    let conns =
      locked t (fun () ->
          List.map (fun ep -> `Endpoint ep) t.endpoints
          @ List.map (fun c -> `Pending c) t.pending)
    in
    let fd_of = function `Endpoint ep -> Wire.fd ep.conn | `Pending c -> Wire.fd c in
    let fds = t.listen :: t.wake_r :: List.map fd_of conns in
    match Unix.select fds [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> process_kills t
    | exception Unix.Unix_error (Unix.EBADF, _, _) ->
        reap_dead_fds t;
        process_kills t
    | ready, _, _ ->
        if List.mem t.wake_r ready then begin
          (try ignore (Unix.read t.wake_r (Bytes.create 16) 0 16) with _ -> ());
          process_kills t
        end;
        if List.mem t.listen ready then begin
          match Unix.accept t.listen with
          | fd, _ ->
              (* Tiny request/reply frames: Nagle would serialize every
                 exchange into 40 ms delayed-ACK stalls. *)
              (try Unix.setsockopt fd Unix.TCP_NODELAY true
               with Unix.Unix_error _ -> ());
              locked t (fun () -> t.pending <- Wire.conn fd :: t.pending)
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun source ->
            let conn = match source with `Endpoint ep -> ep.conn | `Pending c -> c in
            if List.mem (fd_of source) ready then
              match Wire.read_once conn with
              | `Closed -> (
                  match source with
                  | `Endpoint ep -> locked t (fun () -> drop_endpoint t ep)
                  | `Pending _ ->
                      locked t (fun () ->
                          t.pending <- List.filter (fun c -> c != conn) t.pending);
                      close_quietly (Wire.fd conn))
              | `Data -> drain_frames t source conn
              | exception Unix.Unix_error _ -> (
                  match source with
                  | `Endpoint ep -> locked t (fun () -> drop_endpoint t ep)
                  | `Pending _ -> ()))
          conns
  done;
  (* Shutdown: close everything we own. *)
  locked t (fun () ->
      List.iter (fun ep -> close_quietly (Wire.fd ep.conn)) t.endpoints;
      List.iter (fun c -> close_quietly (Wire.fd c)) t.pending;
      t.endpoints <- [];
      t.pending <- []);
  close_quietly t.listen;
  close_quietly t.wake_r;
  close_quietly t.wake_w

let create ?(obs = Hub.noop) ?(first_client = Wire.first_client_id) ~universe
    ~segment_of () =
  (* A routed frame to a just-crashed socket must not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen Unix.SO_REUSEADDR true;
  Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen 64;
  let port =
    match Unix.getsockname listen with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> assert false
  in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      listen;
      port;
      universe;
      segment_of;
      obs;
      net_sent = Metrics.counter obs.Hub.metrics "net.frames.sent";
      net_delivered = Metrics.counter obs.Hub.metrics "net.frames.delivered";
      net_rejected = Metrics.counter obs.Hub.metrics "net.frames.rejected";
      net_dropped = Metrics.counter obs.Hub.metrics "net.frames.dropped";
      mutex = Mutex.create ();
      endpoints = [];
      pending = [];
      up = Site_set.empty;
      groups = None;
      kill_queue = [];
      next_client = first_client;
      running = true;
      routed = 0;
      dropped_partition = 0;
      dropped_down = 0;
      wake_r;
      wake_w;
      broker = None;
    }
  in
  t.broker <- Some (Thread.create broker_loop t);
  t

let port t = t.port

let partition t groups =
  let covered = List.fold_left Site_set.union Site_set.empty groups in
  if not (Site_set.equal covered t.universe) then
    invalid_arg "Switchboard.partition: groups must cover the universe";
  let total = List.fold_left (fun acc g -> acc + Site_set.cardinal g) 0 groups in
  if total <> Site_set.cardinal t.universe then
    invalid_arg "Switchboard.partition: groups overlap";
  (* Segments are physically unsplittable (carrier-sense wire / token
     ring): every pair of same-segment sites must land in one group. *)
  Site_set.iter
    (fun a ->
      Site_set.iter
        (fun b ->
          if a < b && t.segment_of a = t.segment_of b then
            let together =
              List.exists (fun g -> Site_set.mem a g && Site_set.mem b g) groups
            in
            if not together then
              invalid_arg
                (Printf.sprintf
                   "Switchboard.partition: sites %d and %d share a segment and \
                    cannot be separated"
                   a b))
        t.universe)
    t.universe;
  locked t (fun () -> t.groups <- Some groups);
  Hub.event t.obs
    (Trace.Partition
       { groups = Fmt.str "%a" (Fmt.list ~sep:Fmt.sp Site_set.pp) groups });
  wake t

let heal t =
  locked t (fun () -> t.groups <- None);
  Hub.event t.obs Trace.Heal;
  wake t

let crash t site =
  locked t (fun () ->
      t.up <- Site_set.remove site t.up;
      t.kill_queue <- site :: t.kill_queue);
  Hub.event t.obs (Trace.Crash { site });
  wake t

let up_sites t = locked t (fun () -> t.up)
let is_up t site = locked t (fun () -> Site_set.mem site t.up)
let groups t = locked t (fun () -> t.groups)

let stats t =
  locked t (fun () ->
      {
        routed = t.routed;
        dropped_partition = t.dropped_partition;
        dropped_down = t.dropped_down;
      })

let shutdown t =
  locked t (fun () -> t.running <- false);
  wake t;
  match t.broker with None -> () | Some thread -> Thread.join thread
