(** The virtual socket: the seam between the event loop and the bytes.

    Everything above this interface — frame reassembly, outbound
    batching, backpressure, the readiness loops of the switchboard and
    the nodes — is written against [t], never against [Unix.read] and
    [Unix.write] directly.  {!of_fd} wraps a real socket (switched to
    non-blocking mode); {!Fake} builds a deterministic in-memory
    endpoint whose read results, write acceptance and error injections
    are scripted, so every readiness edge case — a frame split at any
    byte boundary, EAGAIN on write, EINTR mid-call, a spurious wakeup
    that reads nothing, a slow consumer that stops accepting bytes — is
    unit-testable without sockets, threads or timing. *)

type read_result =
  | Read of int  (** [> 0] bytes landed in the buffer *)
  | Read_eof  (** orderly close from the peer *)
  | Read_block  (** EAGAIN/EWOULDBLOCK: nothing buffered, try after readiness *)
  | Read_intr  (** EINTR: retry immediately *)

type write_result =
  | Wrote of int  (** [>= 0] bytes accepted (short writes allowed) *)
  | Write_block  (** EAGAIN: kernel buffer full, wait for writability *)
  | Write_intr  (** EINTR: retry immediately *)
  | Write_closed  (** EPIPE/ECONNRESET: the peer is gone *)

type t = {
  read : Bytes.t -> int -> int -> read_result;
  write : Bytes.t -> int -> int -> write_result;
  close : unit -> unit;  (** idempotent *)
  fd : Unix.file_descr option;
      (** the descriptor to register with an event loop; [None] for
          fakes, which are driven directly *)
}

val of_fd : Unix.file_descr -> t
(** Wrap a real descriptor, switching it to non-blocking mode.  [read]
    maps [EAGAIN]/[EWOULDBLOCK] to {!Read_block}, [EINTR] to
    {!Read_intr}, and connection-reset errors to {!Read_eof}; [write]
    maps the same families to their write results.  [close] swallows
    [EBADF] (crash injection may have closed the socket first). *)

(** Deterministic in-memory endpoint for tests.

    The read side replays a script of steps; the write side accepts at
    most the granted credit, modelling a peer (or kernel buffer) that
    drains slowly.  Everything is synchronous and single-threaded. *)
module Fake : sig
  type step =
    | Chunk of string  (** deliver these bytes (possibly split further by [read_cap]) *)
    | Again  (** one EAGAIN — a spurious wakeup *)
    | Intr  (** one EINTR *)
    | Eof  (** orderly close; later reads keep returning EOF *)

  type fake

  val create :
    ?script:step list ->
    ?read_cap:int ->
    ?write_credit:int ->
    ?write_script:step list ->
    unit ->
    fake
  (** [read_cap] (default unbounded) caps bytes returned per [read]
      call, so one [Chunk] can span many reads.  [write_credit]
      (default unbounded) is the initial number of bytes the sink
      accepts; when exhausted, writes return {!Write_block} until
      {!grant} adds more.  [write_script] injects [Again]/[Intr]/[Eof]
      ahead of acceptances ([Eof] makes the sink closed: writes return
      {!Write_closed}; [Chunk] is ignored on the write side). *)

  val vio : fake -> t

  val feed : fake -> step list -> unit
  (** Append steps to the read script (e.g. more bytes arriving). *)

  val grant : fake -> int -> unit
  (** Add write credit: the slow consumer drained some bytes. *)

  val written : fake -> string
  (** Everything the sink accepted so far, in order. *)

  val reads : fake -> int
  (** Number of [read] calls made (spurious wakeups included). *)

  val writes : fake -> int
  (** Number of [write] calls made (blocked attempts included). *)

  val closed : fake -> bool
end
