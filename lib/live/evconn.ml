(* Framed non-blocking connection: Wire.Decoder on the way in, a
   bounded coalescing byte queue on the way out.

   The outbound queue is one growable byte region with head/tail
   offsets.  Frames are appended at [tail]; [flush] writes from [head].
   Because consecutive frames are contiguous, one write call carries as
   many whole frames as the kernel will take — the writev effect
   without scatter/gather. *)

type t = {
  vio : Vio.t;
  dec : Wire.Decoder.t;
  scratch : Bytes.t;
  max_queue : int;
  mutable out : Bytes.t;
  mutable head : int;
  mutable tail : int;
  mutable staged_frames : int;  (* frames between head and tail *)
  mutable n_frames_out : int;
  mutable n_write_calls : int;
  mutable poisoned : bool;  (* overflowed or peer gone *)
  mutable is_closed : bool;
}

let create ?(max_queue = 4 * 1024 * 1024) vio =
  {
    vio;
    dec = Wire.Decoder.create ();
    scratch = Bytes.create 65536;
    max_queue;
    out = Bytes.create 4096;
    head = 0;
    tail = 0;
    staged_frames = 0;
    n_frames_out = 0;
    n_write_calls = 0;
    poisoned = false;
    is_closed = false;
  }

let of_fd ?max_queue fd = create ?max_queue (Vio.of_fd fd)
let fd t = t.vio.Vio.fd
let pending_bytes t = t.tail - t.head
let buffered_in t = Wire.Decoder.buffered t.dec
let queued_frames t = t.staged_frames
let want_write t = (not t.poisoned) && t.tail > t.head
let frames_out t = t.n_frames_out
let write_calls t = t.n_write_calls
let is_closed t = t.is_closed

let close t =
  if not t.is_closed then begin
    t.is_closed <- true;
    t.poisoned <- true;
    t.vio.Vio.close ()
  end

let make_room t extra =
  (* Reclaim the flushed prefix first; grow only if that is not enough. *)
  if t.head > 0 then begin
    Bytes.blit t.out t.head t.out 0 (t.tail - t.head);
    t.tail <- t.tail - t.head;
    t.head <- 0
  end;
  if t.tail + extra > Bytes.length t.out then begin
    let grown = Bytes.create (max (2 * Bytes.length t.out) (t.tail + extra)) in
    Bytes.blit t.out 0 grown 0 t.tail;
    t.out <- grown
  end

let enqueue t env =
  if t.poisoned then `Overflow
  else begin
    let frame = Wire.encode env in
    let len = String.length frame in
    if pending_bytes t + len > t.max_queue then begin
      (* The bound is the backpressure contract: beyond it the peer is a
         slow consumer and the connection dies rather than the process
         OOMing or the frame silently vanishing. *)
      t.poisoned <- true;
      `Overflow
    end
    else begin
      make_room t len;
      Bytes.blit_string frame 0 t.out t.tail len;
      t.tail <- t.tail + len;
      t.staged_frames <- t.staged_frames + 1;
      `Ok
    end
  end

let rec flush t =
  if t.poisoned then `Closed
  else if t.head >= t.tail then begin
    t.head <- 0;
    t.tail <- 0;
    `Idle
  end
  else
    match t.vio.Vio.write t.out t.head (t.tail - t.head) with
    | Vio.Wrote n ->
        t.n_write_calls <- t.n_write_calls + 1;
        t.head <- t.head + n;
        if t.head >= t.tail then begin
          t.n_frames_out <- t.n_frames_out + t.staged_frames;
          t.staged_frames <- 0;
          t.head <- 0;
          t.tail <- 0;
          `Idle
        end
        else if n = 0 then `Blocked
        else flush t
    | Vio.Write_block -> `Blocked
    | Vio.Write_intr -> flush t
    | Vio.Write_closed ->
        t.poisoned <- true;
        `Closed

(* Per-call read budget: a firehose peer cannot starve the rest of the
   loop; a level-triggered wait re-signals whatever is left. *)
let read_budget = 4

let on_readable t =
  let frames = ref [] in
  let drain () =
    let continue = ref true in
    while !continue do
      match Wire.Decoder.next t.dec with
      | None -> continue := false
      | Some f -> frames := f :: !frames
    done
  in
  let rec read_loop budget =
    if budget = 0 then `Open
    else
      match t.vio.Vio.read t.scratch 0 (Bytes.length t.scratch) with
      | Vio.Read 0 -> `Open (* spurious: nothing delivered *)
      | Vio.Read n ->
          Wire.Decoder.feed t.dec t.scratch 0 n;
          drain ();
          read_loop (budget - 1)
      | Vio.Read_block -> `Open
      | Vio.Read_intr -> read_loop budget
      | Vio.Read_eof -> `Eof
  in
  let status = read_loop read_budget in
  (List.rev !frames, status)
