(* Worker threads hammer the cluster through ordinary clients; every
   completed call is recorded locally (no shared state on the hot path
   beyond the cluster's metrics registry) and the per-worker journals are
   merged once the run ends.  Percentiles are exact — the journals are
   sorted, not binned — and goodput gets a batch-means interval in the
   style of the paper's §4 methodology.

   All timing reads the monotonic {!Dynvote_obs.Clock}: latencies and
   goodput windows must not be corruptible by a wall-clock step. *)

module Welford = Dynvote_stats.Welford
module Batch_means = Dynvote_stats.Batch_means
module Rng = Dynvote_prng.Rng
module Splitmix64 = Dynvote_prng.Splitmix64
module Clock = Dynvote_obs.Clock
module Metrics = Dynvote_obs.Metrics
module Hub = Dynvote_obs.Hub
module Zipf = Dynvote_shard.Zipf

type mode = [ `Threads | `Mux ]

type config = {
  clients : int;
  duration : float;
  write_ratio : float;
  keys : int;
  zipf : float;
  value_bytes : int;
  rate : float option;
  seed : int;
  sites : Site_set.t option;
  retries : int;
  mode : mode;
}

let default =
  {
    clients = 4;
    duration = 5.0;
    write_ratio = 0.3;
    keys = 16;
    zipf = 0.0;
    value_bytes = 64;
    rate = None;
    seed = 1;
    sites = None;
    retries = 0;
    mode = `Threads;
  }

(* One key sampler shared by every worker: {!Zipf.sample} is pure, and
   each worker feeds it its own RNG stream.  [zipf = 0] through the
   sampler is exactly the uniform draw, but skipping it keeps the
   default hot path allocation-identical to before. *)
let key_sampler config =
  let n = max 1 config.keys in
  if config.zipf > 0.0 then
    let z = Zipf.create ~n ~s:config.zipf in
    fun rng -> Zipf.sample z (Rng.float rng)
  else fun rng -> Rng.int rng n

type op_stats = {
  issued : int;
  granted : int;
  denied : int;
  aborted : int;
  degraded : int;
  retried : int;
  dup_acks : int;
  latency : Welford.t;
  p50 : float;
  p95 : float;
  p99 : float;
}

type hotset = {
  distinct : int;  (** distinct keys at least one call touched *)
  top_share : float;
      (** fraction of all calls that went to the hottest 1% of the key
          space (at least one key); [nan] when nothing completed *)
}

type result = {
  wall : float;
  reads : op_stats;
  writes : op_stats;
  goodput : Batch_means.interval;
  late : int;
  hotset : hotset;
}

(* One completed call: kind, status, completion time, latency, how many
   sites it was retried at, and whether the grant was a dedup ack (the
   write had already committed under an earlier attempt). *)
type sample = {
  s_write : bool;
  s_status : Wire.status;
  s_finish : float;
  s_latency : float;
  s_retries : int;
  s_dup : bool;
  s_key : int;  (* key index drawn, for the hot-set report *)
}

(* The old scheme ([seed * 65599 + index]) made (seed, index) collide
   whenever seed' = seed - k and index' = index + 65599 k: workers of
   different runs replayed each other's streams.  Splitmix64's split
   gives every worker a statistically independent stream, and distinct
   (seed, index) pairs distinct streams. *)
let worker_seeds ~seed ~n =
  let master = Splitmix64.create (Int64.of_int seed) in
  Array.init n (fun _ -> Splitmix64.next_int64 (Splitmix64.split master))

type instruments = {
  i_read_h : Metrics.histogram;
  i_write_h : Metrics.histogram;
  i_issued : Metrics.counter;
  i_granted : Metrics.counter;
  i_retries : Metrics.counter;
  i_dup_acks : Metrics.counter;
  i_fenced : Metrics.counter;
}

let dup_info ~status ~info =
  status = Wire.Granted
  && String.length info >= 9
  && String.sub info 0 9 = "duplicate"

let is_dup_ack (reply : Cluster.reply) =
  dup_info ~status:reply.Cluster.status ~info:reply.Cluster.info

let worker cluster config ~seed64 ~index ~t_start ~t_end ~ins ~sample_key journal
    =
  let rng = Rng.create ~seed:seed64 () in
  let client = Cluster.client cluster in
  let targets =
    match config.sites with
    | Some sites -> Array.of_list (Site_set.to_list sites)
    | None -> Array.of_list (Site_set.to_list (Cluster.universe cluster))
  in
  let payload = String.make (max 1 config.value_bytes) 'x' in
  (* Open loop: Poisson arrivals at rate/clients per worker; latency is
     measured from the intended start, never from the actual one. *)
  let interarrival =
    match config.rate with
    | None -> None
    | Some rate -> Some (float_of_int config.clients /. Float.max rate 1e-9)
  in
  let intended = ref t_start in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    let start =
      match interarrival with
      | None -> Clock.now ()
      | Some mean ->
          intended := !intended +. Rng.exponential rng ~mean;
          let now = Clock.now () in
          if !intended > now then Thread.delay (!intended -. now);
          !intended
    in
    if start >= t_end then continue := false
    else begin
      incr n;
      Metrics.incr ins.i_issued;
      let at = targets.(Rng.int rng (Array.length targets)) in
      let ki = sample_key rng in
      let key = Printf.sprintf "k%d" ki in
      let is_write = Rng.float rng < config.write_ratio in
      let reply =
        if is_write then
          Cluster.put ~retries:config.retries client ~at ~key
            ~value:(Printf.sprintf "%d.%d:%s" index !n payload)
        else Cluster.get ~retries:config.retries client ~at ~key
      in
      let finish = Clock.now () in
      let latency = finish -. start in
      Metrics.observe (if is_write then ins.i_write_h else ins.i_read_h) latency;
      if reply.Cluster.status = Wire.Granted then Metrics.incr ins.i_granted;
      if reply.Cluster.status = Wire.Degraded then Metrics.incr ins.i_fenced;
      Metrics.add ins.i_retries reply.Cluster.retries;
      let dup = is_dup_ack reply in
      if dup then Metrics.incr ins.i_dup_acks;
      journal :=
        {
          s_write = is_write;
          s_status = reply.Cluster.status;
          s_finish = finish;
          s_latency = latency;
          s_retries = reply.Cluster.retries;
          s_dup = dup;
          s_key = ki;
        }
        :: !journal
    end
  done

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1 |> max 0))

let stats_of samples =
  let latency = Welford.create () in
  let granted = ref 0 and denied = ref 0 and aborted = ref 0 in
  let degraded = ref 0 and retried = ref 0 and dup_acks = ref 0 in
  List.iter
    (fun s ->
      Welford.add latency s.s_latency;
      retried := !retried + s.s_retries;
      if s.s_dup then incr dup_acks;
      match s.s_status with
      | Wire.Granted -> incr granted
      | Wire.Denied -> incr denied
      | Wire.Aborted -> incr aborted
      | Wire.Degraded -> incr degraded)
    samples;
  let sorted = Array.of_list (List.map (fun s -> s.s_latency) samples) in
  Array.sort compare sorted;
  {
    issued = List.length samples;
    granted = !granted;
    denied = !denied;
    aborted = !aborted;
    degraded = !degraded;
    retried = !retried;
    dup_acks = !dup_acks;
    latency;
    p50 = percentile sorted 0.50;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

(* --- multiplexed mode ---------------------------------------------------

   One thread drives every client through an {!Evloop}: each client is a
   nonblocking socket with an {!Evconn} framing layer and a single
   outstanding operation (closed loop).  Ten thousand clients are ten
   thousand descriptors, not ten thousand threads — this is the shape
   that finds the goodput/latency knee of the event-driven service.
   Cross-site retries need the blocking client's site-hopping logic, so
   the mux mode runs with [retries = 0] semantics regardless. *)

type mux_client = {
  mc_index : int;
  mc_fd : Unix.file_descr;
  mc_conn : Evconn.t;
  mc_rng : Rng.t;
  mutable mc_id : int;  (* endpoint id; 0 until Welcome *)
  mutable mc_req : int;
  mutable mc_outstanding : (float * bool * int) option;
      (* start, is_write, key index *)
  mutable mc_writing : bool;  (* current write-interest registration *)
  mutable mc_done : bool;
  mc_journal : sample list ref;
}

let run_mux ~port ~universe config ~ins ~sample_key ~t_start:_ ~t_end =
  if config.rate <> None then
    invalid_arg "Loadgen.run: open-loop arrivals need mode = `Threads";
  let targets =
    match config.sites with
    | Some sites -> Array.of_list (Site_set.to_list sites)
    | None -> Array.of_list (Site_set.to_list universe)
  in
  let payload = String.make (max 1 config.value_bytes) 'x' in
  let seeds = worker_seeds ~seed:config.seed ~n:config.clients in
  let loop = Evloop.create () in
  let by_fd : (Unix.file_descr, mux_client) Hashtbl.t =
    Hashtbl.create (2 * config.clients)
  in
  let clients =
    Array.init config.clients (fun index ->
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try
           Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
           Unix.setsockopt sock Unix.TCP_NODELAY true
         with e ->
           (try Unix.close sock with Unix.Unix_error _ -> ());
           raise e);
        let conn = Evconn.of_fd sock in
        let c =
          {
            mc_index = index;
            mc_fd = sock;
            mc_conn = conn;
            mc_rng = Rng.create ~seed:seeds.(index) ();
            mc_id = 0;
            mc_req = 0;
            mc_outstanding = None;
            mc_writing = false;
            mc_done = false;
            mc_journal = ref [];
          }
        in
        Hashtbl.replace by_fd sock c;
        Evloop.add loop sock ~read:true ~write:false;
        ignore
          (Evconn.enqueue conn
             { Wire.src = 0; dst = Wire.broker_id; payload = Wire.Hello_client }
            : [ `Ok | `Overflow ]);
        c)
  in
  let live = ref (Array.length clients) in
  let finish_client c =
    if not c.mc_done then begin
      c.mc_done <- true;
      decr live;
      Evloop.remove loop c.mc_fd;
      Hashtbl.remove by_fd c.mc_fd;
      Evconn.close c.mc_conn
    end
  in
  let record c ~status ~is_write ~start ~key ~dup =
    let finish = Clock.now () in
    let latency = finish -. start in
    Metrics.observe (if is_write then ins.i_write_h else ins.i_read_h) latency;
    if status = Wire.Granted then Metrics.incr ins.i_granted;
    if status = Wire.Degraded then Metrics.incr ins.i_fenced;
    if dup then Metrics.incr ins.i_dup_acks;
    c.mc_journal :=
      {
        s_write = is_write;
        s_status = status;
        s_finish = finish;
        s_latency = latency;
        s_retries = 0;
        s_dup = dup;
        s_key = key;
      }
      :: !(c.mc_journal)
  in
  let sync_write c =
    match Evconn.flush c.mc_conn with
    | `Closed -> finish_client c
    | `Idle | `Blocked ->
        let want = Evconn.want_write c.mc_conn in
        if want <> c.mc_writing then begin
          c.mc_writing <- want;
          Evloop.modify loop c.mc_fd ~read:true ~write:want
        end
  in
  let issue c =
    let now = Clock.now () in
    if now >= t_end then finish_client c
    else begin
      Metrics.incr ins.i_issued;
      c.mc_req <- c.mc_req + 1;
      let at = targets.(Rng.int c.mc_rng (Array.length targets)) in
      let ki = sample_key c.mc_rng in
      let key = Printf.sprintf "k%d" ki in
      let is_write = Rng.float c.mc_rng < config.write_ratio in
      let frame =
        if is_write then
          Wire.Client_put
            {
              req = c.mc_req;
              key;
              value = Printf.sprintf "%d.%d:%s" c.mc_index c.mc_req payload;
            }
        else Wire.Client_get { req = c.mc_req; key }
      in
      c.mc_outstanding <- Some (now, is_write, ki);
      match Evconn.enqueue c.mc_conn { Wire.src = c.mc_id; dst = at; payload = frame }
      with
      | `Overflow -> finish_client c
      | `Ok -> sync_write c
    end
  in
  let on_frame c (env : Wire.envelope) =
    if not c.mc_done then
      match env.Wire.payload with
      | Wire.Welcome { id } ->
          c.mc_id <- id;
          issue c
      | Wire.Client_reply { req; status; value = _; info } when req = c.mc_req
        -> (
          match c.mc_outstanding with
          | Some (start, is_write, key) ->
              c.mc_outstanding <- None;
              record c ~status ~is_write ~start ~key ~dup:(dup_info ~status ~info);
              issue c
          | None -> ())
      | _ -> ()  (* a stale reply from an abandoned request number *)
  in
  let on_readable c =
    let frames, state = Evconn.on_readable c.mc_conn in
    List.iter
      (function Ok env -> on_frame c env | Error _ -> finish_client c)
      frames;
    if state = `Eof then finish_client c
  in
  Array.iter sync_write clients;
  (* A reply in flight at the cutoff still deserves its sample; an
     unanswered one is charged below as an abort.  The grace bound keeps
     a dead cluster from hanging the generator. *)
  let hard_end = t_end +. 5.0 in
  while !live > 0 && Clock.now () < hard_end do
    let now = Clock.now () in
    let timeout = Float.min 0.05 (Float.max 0.001 (hard_end -. now)) in
    let events = Evloop.wait loop ~timeout in
    List.iter
      (fun (ev : Evloop.event) ->
        match Hashtbl.find_opt by_fd ev.Evloop.fd with
        | None -> ()
        | Some c ->
            if ev.Evloop.error then finish_client c
            else begin
              if ev.Evloop.writable && not c.mc_done then sync_write c;
              if ev.Evloop.readable && not c.mc_done then on_readable c
            end)
      events;
    if Clock.now () >= t_end then
      Array.iter
        (fun c ->
          if (not c.mc_done) && c.mc_outstanding = None then finish_client c)
        clients
  done;
  Array.iter
    (fun c ->
      if not c.mc_done then begin
        (match c.mc_outstanding with
        | Some (start, is_write, key) ->
            record c ~status:Wire.Aborted ~is_write ~start ~key ~dup:false
        | None -> ());
        finish_client c
      end)
    clients;
  Evloop.close loop;
  Array.map (fun c -> c.mc_journal) clients

let validate config =
  if config.clients < 1 then invalid_arg "Loadgen.run: need at least one client";
  if config.duration <= 0.0 then invalid_arg "Loadgen.run: non-positive duration";
  if (not (Float.is_finite config.zipf)) || config.zipf < 0.0 then
    invalid_arg "Loadgen.run: zipf exponent must be finite and >= 0"

let instruments (hub : Hub.t) =
  {
    i_read_h = Metrics.histogram hub.Hub.metrics "loadgen.read.seconds";
    i_write_h = Metrics.histogram hub.Hub.metrics "loadgen.write.seconds";
    i_issued = Metrics.counter hub.Hub.metrics "loadgen.ops.issued";
    i_granted = Metrics.counter hub.Hub.metrics "loadgen.ops.granted";
    i_retries = Metrics.counter hub.Hub.metrics "loadgen.ops.retries";
    i_dup_acks = Metrics.counter hub.Hub.metrics "loadgen.ops.dup_acks";
    i_fenced = Metrics.counter hub.Hub.metrics "loadgen.ops.fenced";
  }

(* Hot-set coverage: how much of the key space the run actually visited
   and how concentrated the traffic was — the witness that a [--zipf]
   workload skewed and a uniform one spread. *)
let hotset_of config samples =
  let counts = Hashtbl.create 256 in
  let total = ref 0 in
  List.iter
    (fun s ->
      incr total;
      Hashtbl.replace counts s.s_key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts s.s_key)))
    samples;
  if !total = 0 then { distinct = 0; top_share = nan }
  else begin
    let freqs = Hashtbl.fold (fun _ n acc -> n :: acc) counts [] in
    let sorted = List.sort (fun a b -> compare b a) freqs in
    let top_n = max 1 (max 1 config.keys / 100) in
    let rec take n acc = function
      | f :: rest when n > 0 -> take (n - 1) (acc + f) rest
      | _ -> acc
    in
    {
      distinct = Hashtbl.length counts;
      top_share = float_of_int (take top_n 0 sorted) /. float_of_int !total;
    }
  end

let summarise config ~t_start ~t_end ~wall journals =
  let all = Array.fold_left (fun acc j -> List.rev_append !j acc) [] journals in
  let reads, writes = List.partition (fun s -> not s.s_write) all in
  (* Goodput: granted completions bucketed into ten fixed windows that
     tile exactly [t_start, t_end).  Calls issued before the cutoff but
     completed after it (closed-loop stragglers) must neither stretch
     the last window nor vanish silently: they are excluded from the
     batch means and reported as [late]. *)
  let batches = 10 in
  let batch_length = config.duration /. float_of_int batches in
  let bm = Batch_means.create ~batch_length in
  let granted_finishes =
    List.filter_map
      (fun s -> if s.s_status = Wire.Granted then Some s.s_finish else None)
      all
  in
  let late = List.length (List.filter (fun f -> f >= t_end) granted_finishes) in
  for b = 0 to batches - 1 do
    let lo = t_start +. (float_of_int b *. batch_length) in
    let hi = if b = batches - 1 then t_end else lo +. batch_length in
    let count =
      List.length (List.filter (fun f -> f >= lo && f < hi) granted_finishes)
    in
    Batch_means.add_batch bm (float_of_int count /. batch_length)
  done;
  {
    wall;
    reads = stats_of reads;
    writes = stats_of writes;
    goodput = Batch_means.interval bm;
    late;
    hotset = hotset_of config all;
  }

let run cluster config =
  validate config;
  let ins = instruments (Cluster.obs cluster) in
  let sample_key = key_sampler config in
  let t_start = Clock.now () in
  let t_end = t_start +. config.duration in
  let journals =
    match config.mode with
    | `Mux ->
        run_mux ~port:(Cluster.port cluster)
          ~universe:(Cluster.universe cluster) config ~ins ~sample_key ~t_start
          ~t_end
    | `Threads ->
        let seeds = worker_seeds ~seed:config.seed ~n:config.clients in
        let journals = Array.init config.clients (fun _ -> ref []) in
        let threads =
          Array.mapi
            (fun index journal ->
              Thread.create
                (fun () ->
                  worker cluster config ~seed64:seeds.(index) ~index ~t_start
                    ~t_end ~ins ~sample_key journal)
                ())
            journals
        in
        Array.iter Thread.join threads;
        journals
  in
  let wall = Clock.now () -. t_start in
  summarise config ~t_start ~t_end ~wall journals

let run_at ?(obs = Hub.noop) ~port ~universe config =
  validate config;
  (match config.mode with
  | `Mux -> ()
  | `Threads ->
      invalid_arg "Loadgen.run_at: thread workers need a Cluster.t; use run");
  let ins = instruments obs in
  let sample_key = key_sampler config in
  let t_start = Clock.now () in
  let t_end = t_start +. config.duration in
  let journals = run_mux ~port ~universe config ~ins ~sample_key ~t_start ~t_end in
  let wall = Clock.now () -. t_start in
  summarise config ~t_start ~t_end ~wall journals

let pp_ms ppf seconds =
  if Float.is_nan seconds then Fmt.string ppf "-"
  else Fmt.pf ppf "%.2f ms" (seconds *. 1e3)

let pp_op_stats ppf (name, s) =
  Fmt.pf ppf "%-6s %5d issued  %5d granted  %4d denied  %4d aborted@," name
    s.issued s.granted s.denied s.aborted;
  if s.degraded > 0 || s.retried > 0 || s.dup_acks > 0 then
    Fmt.pf ppf "       %d fenced  %d retries  %d duplicate acks@," s.degraded
      s.retried s.dup_acks;
  if s.issued > 0 then
    Fmt.pf ppf "       mean %a  p50 %a  p95 %a  p99 %a@,"
      pp_ms (Welford.mean s.latency) pp_ms s.p50 pp_ms s.p95 pp_ms s.p99

let pp_result ppf r =
  Fmt.pf ppf "@[<v>";
  pp_op_stats ppf ("reads", r.reads);
  pp_op_stats ppf ("writes", r.writes);
  if r.late > 0 then
    Fmt.pf ppf "late    %d granted after the cutoff (excluded from goodput)@,"
      r.late;
  if r.hotset.distinct > 0 then
    Fmt.pf ppf "keys    %d distinct touched  top-1%%-of-keyspace share %.2f@,"
      r.hotset.distinct r.hotset.top_share;
  let i = r.goodput in
  Fmt.pf ppf "goodput %.1f ops/s  +/- %.1f (95%% CI, %d batches)  over %.2f s@]"
    i.Batch_means.mean i.Batch_means.half_width i.Batch_means.batches r.wall
