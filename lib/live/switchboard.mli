(** The in-process network: one broker thread owning every inter-node
    connection, so partitions, heals and crashes can be injected into a
    *live* cluster of real sockets.

    Every node and client dials the switchboard's TCP listener and
    registers with a [Hello]; from then on the broker routes its frames.
    The broker is segment-topology-aware in the paper's sense: sites on
    one carrier-sense segment can never be separated, so {!partition}
    rejects any grouping that splits a segment — the injectable faults
    are exactly the gateway failures of Figure 8.  A frame whose
    endpoints are in different groups (or whose destination site is
    down) is silently dropped, which is what a partition looks like to
    the protocol.

    {!crash} severs a site's connection: its node thread observes EOF /
    EPIPE on its next socket operation and dies with all volatile state,
    exactly like a killed process; only its on-disk files survive. *)

type t

val create :
  ?obs:Dynvote_obs.Hub.t ->
  ?first_client:int ->
  ?clock:Dynvote_obs.Clock.t ->
  ?stall_timeout:float ->
  ?backend:Evloop.backend ->
  universe:Site_set.t ->
  segment_of:(Site_set.site -> int) ->
  unit ->
  t
(** Bind a loopback listener on an ephemeral port and start the broker
    thread — an {!Evloop} readiness loop (epoll on Linux, poll
    elsewhere; [backend] forces one), so connection count is bounded by
    descriptors, not FD_SETSIZE.  All sites start connected and no site
    is considered up until its node registers.  [first_client] (default
    {!Wire.first_client_id}) is the first client endpoint id to hand
    out — a cluster resuming over persisted state passes one past the
    highest id its dedup tables have seen, because a recycled id would
    make a fresh client's first writes look like replays of the previous
    incarnation's.  [stall_timeout] (default: never) reaps, on the
    injected [clock], any connection holding a frame open without
    feeding it (slow loris) or connected without completing a Hello —
    the loop is the timeout mechanism; no read ever blocks.  [obs]
    (default {!Dynvote_obs.Hub.noop}) gets a [net.frames.*] counter and
    a trace event for every frame sent into the fabric, delivered to
    its destination, dropped by the topology, or rejected by its
    checksum, plus the partition/heal/crash injections, a
    [net.loop.wakeups] counter and a [net.batch.frames] histogram of
    frames coalesced per flush. *)

val port : t -> int

val backend : t -> string
(** ["epoll"] or ["poll"] — recorded in bench output. *)

val partition : t -> Site_set.t list -> unit
(** Install a partition.  @raise Invalid_argument when the groups do not
    cover the universe, overlap, or separate two sites that share a
    network segment (segments are unsplittable; only gateways fail). *)

val heal : t -> unit

val crash : t -> Site_set.site -> unit
(** Sever the site's connection and mark it down.  Idempotent. *)

val up_sites : t -> Site_set.t
(** Sites with a live registered connection. *)

val is_up : t -> Site_set.site -> bool

val groups : t -> Site_set.t list option

type stats = {
  routed : int;  (** frames delivered *)
  dropped_partition : int;  (** frames eaten by a partition *)
  dropped_down : int;  (** frames to a dead or unregistered endpoint *)
}

val stats : t -> stats

val shutdown : t -> unit
(** Close every connection and stop the broker thread. *)
