(** Per-site stable storage of the live service.

    Each node owns one directory holding three artifacts:

    - [ensemble.dvt] — the (o, v, P) consistency ensemble, in the
      {!Dynvote.Codec} record format, replaced durably on every commit;
    - [data.dvl] — the key-value store (version number + entries + the
      applied-request table used for exactly-once retries), replaced
      durably on every commit through the same write-fsync-rename
      discipline;
    - [oplog.dvl] — an append-only log of every commit this node applied
      and every client-visible outcome it coordinated, framed and
      checksummed per record; the merged logs of all nodes replay through
      the chaos {!Dynvote_chaos.Oracle}.

    A node killed at any instant restarts from these three files.  Every
    byte flows through a {!Dynvote.Vfs} ([Vfs.real] by default), so the
    fault-injection filesystem can strike any single operation. *)

val site_dir : dir:string -> Site_set.site -> string
val ensure_site_dir : dir:string -> Site_set.site -> string
val ensemble_path : dir:string -> Site_set.site -> string
val data_path : dir:string -> Site_set.site -> string
val oplog_path : dir:string -> Site_set.site -> string

(** {2 Data blobs} *)

val encode_entries : (string * string) list -> string
(** Canonical (key-sorted, length-framed) serialization of the store
    entries — the "content" string the safety oracle compares; injective,
    so distinct stores never collide. *)

val save_data :
  ?vfs:Vfs.t ->
  ?fsync:bool ->
  ?rids:(int * int) list ->
  path:string ->
  version:int ->
  (string * string) list ->
  unit
(** Durable atomic replace ({!Dynvote.Codec.write_file_atomic}); [?fsync]
    is forwarded there.  [rids] is the applied-request table — (client,
    highest applied request) pairs — stored inside the blob so dedup
    memory is exactly as durable as the data it guards. *)

val load_data_result :
  ?vfs:Vfs.t ->
  path:string ->
  unit ->
  (int * (string * string) list * (int * int) list, string) result
(** Total load: corruption and I/O failures as [Error].  Blobs written
    before the request table existed load with an empty table. *)

(** {2 Operation log} *)

type record =
  | Log_commit of {
      seq : int;
      op_no : int;
      version : int;
      partition : Site_set.t;
      rid : int;  (** request id the commit applied, 0 if none *)
    }
      (** this node applied a commit (site is implied by whose log it is) *)
  | Log_intent of { seq : int; content : string }
      (** a write coordinator is about to distribute COMMITs installing
          [content]; an intent with no later outcome marks a coordinator
          killed mid-wave *)
  | Log_outcome of {
      seq : int;
      kind : [ `Read | `Write | `Recover ];
      granted : bool;
      content : string option;
          (** the store serialization the operation served (granted reads)
              or installed (granted writes) *)
      rid : int;  (** request id the outcome answered, 0 if none *)
    }
  | Log_kcommit of {
      seq : int;
      key : string;
      op_no : int;
      version : int;
      partition : Site_set.t;
      rid : int;
    }
      (** per-key commit of the sharded object space; the key names the
          independently-voted object the ensemble belongs to.  The value
          bytes live in the shard logs — this record is the audit
          journal's view of the consistency event *)
  | Log_kintent of { seq : int; key : string; content : string }
  | Log_koutcome of {
      seq : int;
      key : string;
      kind : [ `Read | `Write | `Recover ];
      granted : bool;
      content : string option;
      rid : int;
    }

val seq_of : record -> int

type log
(** An open append channel over a {!Dynvote.Vfs}. *)

val open_log : ?vfs:Vfs.t -> path:string -> unit -> log
val log_path : log -> string

val append : log -> record -> unit
(** Framed, checksummed, written through in full (no userland
    buffering).  Appends are not fsynced; a power cut may truncate the
    unsynced suffix, which replay tolerates as a torn tail. *)

val close_log : log -> unit

type scan = {
  records : record list;  (** intact records, in file order *)
  torn : bool;  (** a damaged tail was dropped — what an honest crash leaves *)
  corrupt : int;
      (** checksum-failing records {e followed by intact ones} — a hole in
          the middle of the history that no crash can explain; recovery
          must not trust a site whose log shows these *)
  valid_prefix : int;
      (** byte length of the damage-free prefix (every record before the
          first bad frame).  A booting node cuts a purely-torn log back to
          this point before appending: appending past a partial frame
          would leave the new records unreadable and look like mid-log
          corruption on the next scan *)
}

val scan_log : ?vfs:Vfs.t -> path:string -> unit -> scan
(** Parse the whole log, resynchronizing past complete-but-corrupt frames
    (their length prefix is trusted when plausible).  A missing file is
    an empty scan. *)

val read_log : path:string -> record list * bool
(** [scan_log] collapsed to (records, any damage seen) — the shape the
    audit replay consumes. *)
