(** Per-site stable storage of the live service.

    Each node owns one directory holding three artifacts:

    - [ensemble.dvt] — the (o, v, P) consistency ensemble, in the
      {!Dynvote.Codec} record format, replaced durably on every commit;
    - [data.dvl] — the key-value store (version number + entries),
      replaced durably on every commit through the same
      write-fsync-rename discipline;
    - [oplog.dvl] — an append-only log of every commit this node applied
      and every client-visible outcome it coordinated, framed and
      checksummed per record; the merged logs of all nodes replay through
      the chaos {!Dynvote_chaos.Oracle}.

    A node killed at any instant restarts from these three files. *)

val site_dir : dir:string -> Site_set.site -> string
val ensure_site_dir : dir:string -> Site_set.site -> string
val ensemble_path : dir:string -> Site_set.site -> string
val data_path : dir:string -> Site_set.site -> string
val oplog_path : dir:string -> Site_set.site -> string

(** {2 Data blobs} *)

val encode_entries : (string * string) list -> string
(** Canonical (key-sorted, length-framed) serialization of the store
    entries — the "content" string the safety oracle compares; injective,
    so distinct stores never collide. *)

val save_data :
  ?fsync:bool -> path:string -> version:int -> (string * string) list -> unit
(** Durable atomic replace ({!Dynvote.Codec.write_file_atomic}); [?fsync]
    is forwarded there. *)

val load_data_result : path:string -> (int * (string * string) list, string) result
(** Total load: corruption and I/O failures as [Error]. *)

(** {2 Operation log} *)

type record =
  | Log_commit of { seq : int; op_no : int; version : int; partition : Site_set.t }
      (** this node applied a commit (site is implied by whose log it is) *)
  | Log_intent of { seq : int; content : string }
      (** a write coordinator is about to distribute COMMITs installing
          [content]; an intent with no later outcome marks a coordinator
          killed mid-wave *)
  | Log_outcome of {
      seq : int;
      kind : [ `Read | `Write | `Recover ];
      granted : bool;
      content : string option;
          (** the store serialization the operation served (granted reads)
              or installed (granted writes) *)
    }

val seq_of : record -> int

val append : out_channel -> record -> unit
(** Framed, checksummed, flushed. *)

val read_log : path:string -> record list * bool
(** All intact records in order, plus whether a torn tail was dropped — a
    node killed mid-append leaves a partial final frame, which replay
    tolerates.  A missing file is ([], false). *)
