(** A framed connection for readiness loops: a {!Vio.t} endpoint plus a
    {!Wire.Decoder} on the read side and a bounded, coalescing outbound
    queue on the write side.

    Writes never block: {!enqueue} stages the encoded frame; {!flush}
    pushes as much staged output as the transport accepts in one
    writev-style burst, so frames queued while the peer was busy leave
    in a single syscall.  The queue is bounded in bytes — the
    backpressure contract is that {!enqueue} on a full queue returns
    [`Overflow] and the caller severs the connection (crash semantics):
    frames to a live peer are never silently dropped, because a
    participant that missed a commit but keeps answering gathers would
    fork the data it claims to hold. *)

type t

val create : ?max_queue:int -> Vio.t -> t
(** [max_queue] (default 4 MiB) bounds staged outbound bytes. *)

val of_fd : ?max_queue:int -> Unix.file_descr -> t
(** [create] over [Vio.of_fd] — switches the descriptor non-blocking. *)

val fd : t -> Unix.file_descr option

(** {2 Writing} *)

val enqueue : t -> Wire.envelope -> [ `Ok | `Overflow ]
(** Stage a frame.  [`Overflow] when it would exceed the queue bound —
    the connection is then poisoned (later flushes report [`Closed]). *)

val flush : t -> [ `Idle | `Blocked | `Closed ]
(** Write staged bytes until drained ([`Idle]), the transport blocks
    ([`Blocked]: keep write interest and retry on writability), or the
    peer is gone ([`Closed]).  EINTR is retried internally. *)

val want_write : t -> bool
(** Staged bytes remain — the loop should watch for writability. *)

val pending_bytes : t -> int
val queued_frames : t -> int
(** Frames staged and not yet fully flushed (batch-size metric). *)

(** {2 Reading} *)

val on_readable : t -> (Wire.envelope, string) result list * [ `Open | `Eof ]
(** Drain the transport (bounded per call, for loop fairness — a
    level-triggered loop re-signals leftover bytes) and return every
    complete frame, in order.  A decode [Error] means the stream is
    garbage; the caller severs.  [`Eof] may still carry final frames. *)

val buffered_in : t -> int
(** Bytes of an incomplete frame awaiting completion — non-zero for a
    while means a stalled (slow-loris) peer the loop should reap. *)

(** {2 Lifecycle and counters} *)

val close : t -> unit
val is_closed : t -> bool

val frames_out : t -> int
(** Frames fully flushed to the transport. *)

val write_calls : t -> int
(** Transport write calls that moved bytes ([frames_out]/[write_calls]
    is the realised batching ratio). *)
