(** The crash-point recovery matrix: for every stable-storage operation
    a commit performs (the {e persist points}) crossed with every
    {!Dynvote_chaos.Fault_plan.Storage.fault} class, run a small live
    cluster, strike a victim site at exactly that point, power-cut it
    (via {!Dynvote_faultfs.Faultfs.simulate_crash}), restart it, and
    grade the result.

    The contract under test: a storage fault may cost the victim its
    service ({!Fenced}) or some recovery time ({!Recovered}), but never
    the cluster's availability ({!Unavailable}) and never silently
    corrupted history ({!Corrupt}) — every cell must end green or
    explicitly fenced. *)

module Storage = Dynvote_chaos.Fault_plan.Storage

type point = { p_file : Storage.file_class; p_op : Storage.op }
(** One stable-storage operation of the commit path. *)

val points : point list
(** The nine persist points: {write, fsync, rename, fsync-dir} of the
    ensemble's and the data blob's atomic replace, plus the oplog
    append. *)

val compaction_points : point list
(** The keyed store's compaction rewrite — the same four atomic-replace
    operations, on the shard file class.  Not in {!points}: compaction
    fires at a record-count threshold the cluster cells never reach, so
    these cells run against a bare store ({!run_compaction_cell}). *)

val compaction_faults : Storage.fault list
(** The fault classes a store-level compaction cell can meaningfully
    grade: everything except [Fsync_lie] (undetectable without a peer
    to refetch from — the cluster matrix covers it) and [Read_eio]
    (reads happen only at boot). *)

val point_name : point -> string
(** ["ensemble.fsync"], ["oplog.write"], ... *)

type outcome =
  | Recovered  (** the victim serves writes again after restart + RECOVER *)
  | Fenced of string
      (** the victim explicitly refuses service (degraded or denied) —
          safe, and visible to clients *)
  | Unavailable of string  (** the healthy majority stopped serving *)
  | Corrupt of string
      (** the post-run audit found an oracle violation, a double-applied
          request, or mid-log damage the victim kept serving through *)

val outcome_letter : outcome -> char
(** [R]/[F]/[U]/[C]. *)

val ok : outcome -> bool
(** [Recovered] and [Fenced] are healthy; the other two fail the cell. *)

type cell = {
  c_point : point;
  c_fault : Storage.fault;
  c_outcome : outcome;
  c_recovery : float;  (** seconds from restart to the victim's verdict *)
  c_injected : int;  (** triggers that actually fired (0 = never reached) *)
}

val run_cell : dir:string -> seed:int -> point -> Storage.fault -> cell
(** One hermetic cell under [dir]: boot a 4-site cluster (fault-injecting
    filesystem on site 0), write a healthy baseline, arm the trigger,
    drive the struck write through the victim (with same-request retries
    to healthy sites), kill the victim, simulate the power cut, restart,
    RECOVER, and probe both the victim and a healthy site; then audit the
    cell directory through the chaos oracle. *)

val run_compaction_cell : dir:string -> seed:int -> point -> Storage.fault -> cell
(** One hermetic compaction cell under [dir]: drive a single-shard
    store ([durable:false]) to its compaction threshold with the
    pre-threshold history explicitly fsynced, arm the fault on the
    rewrite's own [nth] shard-class operation, follow with the durable
    rids-sidecar replace (whose directory fsync promotes any pending
    rename — the sequence that turns an unsynced compaction rename into
    a durably empty log), power-cut, and regrade from a clean offline
    scan.  Healthy cells recover the last fsynced record or the struck
    one; anything older, damaged, or vanished is {!Corrupt}. *)

val run :
  ?jobs:int ->
  ?seed:int ->
  ?faults:Storage.fault list ->
  ?points:point list ->
  dir:string ->
  unit ->
  cell list
(** The cross product, fanned out over a {!Dynvote_exec.Pool} ([jobs]
    defaults to [DYNVOTE_JOBS] / the hardware).  Cells get distinct
    derived seeds; the result order is deterministic (point-major). *)

val pp_table : Format.formatter -> cell list -> unit
(** The letter table (rows: points; columns: faults), one FAIL line per
    unhealthy cell, and a PASS/FAIL verdict — deliberately free of
    timings and counts so expected output can be pinned. *)
