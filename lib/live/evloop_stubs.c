/* Readiness primitives for the live service's event loops.

   Two backends behind one OCaml interface: epoll where the platform
   has it (Linux), poll(2) everywhere else.  Both are exposed, so the
   poll path is testable on Linux too (DYNVOTE_EVLOOP=poll).  select(2)
   appears nowhere: its FD_SETSIZE limit (1024) is exactly the
   connection cap this layer removes.

   Encoding shared with the OCaml side (evloop.ml):
     interest / revents bits: 1 = readable, 2 = writable, 4 = error/hup
     epoll_ctl ops:           0 = add,      1 = modify,   2 = delete
   File descriptors are the runtime's plain ints on Unix. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>
#include <caml/unixsupport.h>

#include <errno.h>
#include <string.h>
#include <sys/resource.h>

#ifdef __linux__
#define DYNVOTE_HAS_EPOLL 1
#include <sys/epoll.h>
#else
#define DYNVOTE_HAS_EPOLL 0
#endif

#ifndef _WIN32
#include <poll.h>
#endif

CAMLprim value dynvote_has_epoll(value unit)
{
  (void) unit;
  return Val_bool(DYNVOTE_HAS_EPOLL);
}

#if DYNVOTE_HAS_EPOLL

static uint32_t epoll_events_of_bits(int bits)
{
  uint32_t ev = 0;
  if (bits & 1) ev |= EPOLLIN;
  if (bits & 2) ev |= EPOLLOUT;
  return ev;
}

CAMLprim value dynvote_epoll_create(value unit)
{
  int fd;
  (void) unit;
  fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) caml_uerror("epoll_create1", Nothing);
  return Val_int(fd);
}

CAMLprim value dynvote_epoll_ctl(value vepfd, value vop, value vfd, value vbits)
{
  struct epoll_event ev;
  int op;
  memset(&ev, 0, sizeof ev);
  ev.events = epoll_events_of_bits(Int_val(vbits));
  ev.data.fd = Int_val(vfd);
  switch (Int_val(vop)) {
  case 0: op = EPOLL_CTL_ADD; break;
  case 1: op = EPOLL_CTL_MOD; break;
  default: op = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(vepfd), op, Int_val(vfd), &ev) == -1)
    caml_uerror("epoll_ctl", Nothing);
  return Val_unit;
}

/* Returns a fresh int array [fd0; bits0; fd1; bits1; ...].  EINTR is
   surfaced as a Unix_error for the OCaml loop to retry with a
   recomputed timeout. */
CAMLprim value dynvote_epoll_wait(value vepfd, value vmax, value vtimeout_ms)
{
  CAMLparam3(vepfd, vmax, vtimeout_ms);
  CAMLlocal1(result);
  enum { CAP = 512 };
  struct epoll_event evs[CAP];
  int max = Int_val(vmax);
  int n, i;
  if (max < 1) max = 1;
  if (max > CAP) max = CAP;
  caml_release_runtime_system();
  n = epoll_wait(Int_val(vepfd), evs, max, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();
  if (n == -1) caml_uerror("epoll_wait", Nothing);
  result = caml_alloc(2 * n, 0);
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLPRI)) bits |= 1;
    if (evs[i].events & EPOLLOUT) bits |= 2;
    if (evs[i].events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP)) bits |= 4;
    Store_field(result, 2 * i, Val_int(evs[i].data.fd));
    Store_field(result, 2 * i + 1, Val_int(bits));
  }
  CAMLreturn(result);
}

#else /* !DYNVOTE_HAS_EPOLL */

CAMLprim value dynvote_epoll_create(value unit)
{
  (void) unit;
  caml_unix_error(ENOSYS, "epoll_create1", Nothing);
  return Val_unit;
}

CAMLprim value dynvote_epoll_ctl(value vepfd, value vop, value vfd, value vbits)
{
  (void) vepfd; (void) vop; (void) vfd; (void) vbits;
  caml_unix_error(ENOSYS, "epoll_ctl", Nothing);
  return Val_unit;
}

CAMLprim value dynvote_epoll_wait(value vepfd, value vmax, value vtimeout_ms)
{
  (void) vepfd; (void) vmax; (void) vtimeout_ms;
  caml_unix_error(ENOSYS, "epoll_wait", Nothing);
  return Val_unit;
}

#endif

/* Best-effort RLIMIT_NOFILE raise: holding ten thousand connections
   needs more descriptors than the usual default soft limit.  Raising
   the hard limit too needs CAP_SYS_RESOURCE; when that fails, settle
   for the existing hard cap.  Returns the resulting soft limit. */
CAMLprim value dynvote_raise_fd_limit(value vtarget)
{
  struct rlimit rl;
  rlim_t target = (rlim_t) Long_val(vtarget);
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
    caml_uerror("getrlimit", Nothing);
  if (target > rl.rlim_cur) {
    struct rlimit want = rl;
    want.rlim_cur = target;
    if (want.rlim_max != RLIM_INFINITY && target > want.rlim_max)
      want.rlim_max = target;
    if (setrlimit(RLIMIT_NOFILE, &want) != 0) {
      want = rl;
      want.rlim_cur = rl.rlim_max;
      (void) setrlimit(RLIMIT_NOFILE, &want);
    }
    if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
      caml_uerror("getrlimit", Nothing);
  }
  if (rl.rlim_cur == RLIM_INFINITY || rl.rlim_cur > (rlim_t) Max_long)
    return Val_long(Max_long);
  return Val_long((long) rl.rlim_cur);
}

/* poll(2) over [fd0; interest0; fd1; interest1; ...]; returns a fresh
   int array of revents bits, one per registered descriptor, in the
   same order.  Works for any fd number — no FD_SETSIZE anywhere. */
CAMLprim value dynvote_poll(value vpairs, value vtimeout_ms)
{
  CAMLparam2(vpairs, vtimeout_ms);
  CAMLlocal1(result);
  long len = Wosize_val(vpairs);
  long nfds = len / 2;
  struct pollfd *fds;
  long i;
  int rc;
  fds = caml_stat_alloc(sizeof(struct pollfd) * (nfds ? nfds : 1));
  for (i = 0; i < nfds; i++) {
    int bits = Int_val(Field(vpairs, 2 * i + 1));
    fds[i].fd = Int_val(Field(vpairs, 2 * i));
    fds[i].events = 0;
    if (bits & 1) fds[i].events |= POLLIN;
    if (bits & 2) fds[i].events |= POLLOUT;
    fds[i].revents = 0;
  }
  caml_release_runtime_system();
  rc = poll(fds, (nfds_t) nfds, Int_val(vtimeout_ms));
  caml_acquire_runtime_system();
  if (rc == -1) {
    int err = errno;
    caml_stat_free(fds);
    caml_unix_error(err, "poll", Nothing);
  }
  result = caml_alloc(nfds ? nfds : 0, 0);
  for (i = 0; i < nfds; i++) {
    int bits = 0;
    if (fds[i].revents & (POLLIN | POLLPRI)) bits |= 1;
    if (fds[i].revents & POLLOUT) bits |= 2;
    if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) bits |= 4;
    Store_field(result, i, Val_int(bits));
  }
  caml_stat_free(fds);
  CAMLreturn(result);
}
