(** The live service's wire protocol: length-prefixed, versioned,
    checksummed binary frames over real sockets, in the style of
    {!Dynvote.Codec}.

    Every frame is [length (u32) | magic "DVW1" | adler32 | src | dst |
    payload]; the checksum covers everything after itself, so a truncated
    or bit-flipped frame is detected rather than trusted — {!decode} is
    total and returns the corruption reason.  Replica ensembles travel in
    their {!Dynvote.Codec} stable-storage encoding, so the bytes a
    {!State_reply} carries are exactly the bytes a node persists. *)

(** {2 Endpoints} *)

val broker_id : int
(** Address of the switchboard itself ([Hello]/[Welcome] exchanges). *)

val first_client_id : int
(** Client endpoint ids are assigned from here up; everything below is a
    site id. *)

val is_site : int -> bool

(** {2 Messages} *)

type status =
  | Granted
  | Denied
  | Aborted
  | Degraded
      (** the site's storage has failed; it is read-only and refuses to
          coordinate — retry elsewhere *)

type payload =
  | Hello_site of { site : Site_set.site }
      (** a node registering its socket with the switchboard *)
  | Hello_client  (** a client asking the switchboard for an endpoint id *)
  | Welcome of { id : int }
  | State_request of { round : int }
  | State_reply of { round : int; fresh : bool; replica : Replica.t }
      (** [fresh] is the replier's own claim: continuously up since the
          last commit it applied (gates topological vote claiming) *)
  | Lock_request of { op : int }
  | Lock_reply of { op : int; granted : bool }
  | Unlock of { op : int }
  | Data_request of { round : int }
  | Data_reply of {
      round : int;
      version : int;
      entries : (string * string) list;
      rids : (int * int) list;
          (** the applied-request table travels with the data it guards *)
    }
      (** full store snapshot, for recovery / stale-coordinator fetch *)
  | Commit of {
      op_no : int;
      version : int;
      partition : Site_set.t;
      put : (string * string) option;
          (** a write's key/value rides inside COMMIT so data and ensemble
              install atomically *)
      rid : int;
          (** request id the commit applies (0 = none), recorded in every
              participant's applied-request table for retry dedup *)
    }
  | Client_put of { req : int; key : string; value : string }
  | Client_get of { req : int; key : string }
  | Client_recover of { req : int }
  | Client_reply of { req : int; status : status; value : string option; info : string }
  | Abstain of { round : int }
      (** a fenced or amnesiac site answering a state or lock gather:
          alive but taking no part — lets the coordinator stop waiting
          immediately instead of paying the full gather timeout, while
          still being excluded from votes and new partitions exactly as
          if it were silent.  For lock gathers, [round] carries the op
          number. *)
  | KLock_request of { op : int; keys : string list }
      (** Keyed (sharded object space) frames, this tag and below: each
          key is an independently-voted object; a group-quorum round
          names every key it covers so one wire exchange locks, gathers
          and decides a whole scheduler burst of per-key operations.
          Single-key deployments never emit these tags, keeping their
          byte streams identical to the unsharded protocol.

          A [KLock_request] is one lock round for the whole group,
          answered with the existing [Lock_reply] / [Abstain]. *)
  | KUnlock of { op : int; keys : string list }
  | KState_request of { round : int; keys : string list }
  | KState_reply of {
      round : int;
      fresh : bool;
      states : (string * Replica.t) list;
          (** one ensemble per requested key; a key the replier never
              committed reports the paper's initial state *)
    }
  | KCommit of {
      key : string;
      op_no : int;
      version : int;
      partition : Site_set.t;
      value : string option;
          (** [None]: consistency-only (read) commit — the value is
              unchanged *)
      rid : int;
    }
  | KData_request of { round : int; key : string }
  | KData_reply of {
      round : int;
      key : string;
      version : int;
      value : string option;
      rids : (int * int) list;
          (** the applied-request table travels with the data it guards,
              exactly as in the unsharded [Data_reply] *)
    }

type envelope = { src : int; dst : int; payload : payload }

val kind_name : payload -> string
val pp : Format.formatter -> envelope -> unit

(** {2 Codec} *)

val encode : envelope -> string
(** The full frame, length prefix included. *)

val decode : string -> (envelope, string) result
(** Total inverse of {!encode}: wrong length, bad magic, checksum
    mismatch, unknown tag, out-of-range fields and trailing garbage all
    come back as [Error]. *)

val max_frame : int
(** Upper bound on the body length a reader will accept. *)

(** {2 Incremental decoding}

    Frame reassembly detached from any socket: the event loop (and the
    deterministic fake-socket tests) feed whatever byte runs the
    transport produced — split at arbitrary boundaries — and pull out
    complete frames.  [conn] below is this decoder plus a descriptor. *)
module Decoder : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> int -> unit
  (** Append [len] bytes at [off] to the reassembly buffer. *)

  val feed_string : t -> string -> unit

  val next : t -> (envelope, string) result option
  (** A complete buffered frame, if any ([None] = need more bytes).
      Call repeatedly after each [feed] — one feed can complete many
      frames. *)

  val buffered : t -> int
  (** Bytes currently awaiting frame completion. *)
end

(** {2 Buffered connections}

    One reader/writer per socket end; [recv] interleaves buffered frame
    parsing with deadline-bounded reads, which is what lets a coordinator
    keep serving peer requests while it waits for its own replies. *)

type conn

val conn : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr

val send : conn -> envelope -> unit
(** @raise Unix.Unix_error when the peer is gone (crash semantics). *)

val recv :
  ?clock:(unit -> float) ->
  ?deadline:float ->
  conn ->
  (envelope, [ `Timeout | `Closed | `Corrupt of string ]) result
(** Next frame.  [deadline] is an absolute reading of [clock], which
    defaults to the monotonic {!Dynvote_obs.Clock.now} — wall-clock
    steps can never stretch or collapse a wait.  An omitted deadline
    blocks until a frame or EOF. *)

val read_once : conn -> [ `Data | `Closed ]
(** One [read(2)] into the buffer (for select-driven loops). *)

val next_frame : conn -> (envelope, string) result option
(** A complete buffered frame, if any ([None] = need more bytes). *)
