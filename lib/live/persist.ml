(* Per-site stable storage: ensemble (Codec record), data blob, and the
   append-only operation log.  All three share the codec's durability
   discipline — the data blob is replaced atomically with fsync, and log
   records are framed and checksummed so a torn tail is detected and
   dropped rather than trusted.  Every byte flows through a {!Vfs}, so
   the fault-injection layer can strike any single storage operation. *)

let site_dir ~dir site = Filename.concat dir (Printf.sprintf "site-%d" site)

let ensure_site_dir ~dir site =
  let path = site_dir ~dir site in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  path

let ensemble_path ~dir site = Filename.concat (site_dir ~dir site) "ensemble.dvt"
let data_path ~dir site = Filename.concat (site_dir ~dir site) "data.dvl"
let oplog_path ~dir site = Filename.concat (site_dir ~dir site) "oplog.dvl"

(* --- data blobs ---------------------------------------------------- *)

let data_magic = "DVD1"

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let add_u16 b v = Buffer.add_uint16_le b v
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_entries b entries =
  let entries = List.sort (fun (a, _) (c, _) -> String.compare a c) entries in
  add_u32 b (List.length entries);
  List.iter
    (fun (k, v) ->
      if String.length k > 0xffff then invalid_arg "Persist: key longer than 65535 bytes";
      add_u16 b (String.length k);
      Buffer.add_string b k;
      add_u32 b (String.length v);
      Buffer.add_string b v)
    entries

let encode_entries entries =
  let b = Buffer.create 256 in
  add_entries b entries;
  Buffer.contents b

(* The applied-request table rides inside the blob: a site's dedup
   memory must be exactly as durable as the data it guards, and a
   wholesale data fetch must install both or neither. *)
let add_rids b rids =
  let rids = List.sort compare rids in
  add_u32 b (List.length rids);
  List.iter
    (fun (client, req) ->
      add_u32 b client;
      add_u64 b req)
    rids

let save_data ?vfs ?(fsync = true) ?(rids = []) ~path ~version entries =
  let b = Buffer.create 256 in
  Buffer.add_string b data_magic;
  add_u32 b 0 (* checksum slot *);
  add_u64 b version;
  add_entries b entries;
  add_rids b rids;
  let body = Buffer.to_bytes b in
  Bytes.set_int32_le body 4 (Codec.checksum body ~off:8 ~len:(Bytes.length body - 8));
  Codec.write_file_atomic ?vfs ~fsync ~path (Bytes.to_string body)

exception Bad of string

type cursor = { data : Bytes.t; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.data then raise (Bad "record truncated")

let u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v = Bytes.get_uint16_le c.data c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.data c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let u64 c =
  need c 8;
  let v = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Bad "field out of range");
  Int64.to_int v

let str c len =
  need c len;
  let s = Bytes.sub_string c.data c.pos len in
  c.pos <- c.pos + len;
  s

let read_entries c =
  let n = u32 c in
  if n > Bytes.length c.data then raise (Bad "entry count out of range");
  List.init n (fun _ ->
      let k = str c (u16 c) in
      (k, str c (u32 c)))

(* Blobs written before the request table existed simply end after the
   entries; they decode with an empty table. *)
let read_rids c =
  if c.pos = Bytes.length c.data then []
  else begin
    let n = u32 c in
    if n > Bytes.length c.data then raise (Bad "rid count out of range");
    List.init n (fun _ ->
        let client = u32 c in
        (client, u64 c))
  end

let load_data_result ?vfs ~path () =
  match Codec.read_file_result ?vfs ~path () with
  | Error reason -> Error reason
  | Ok data -> (
      try
        let body = Bytes.of_string data in
        if Bytes.length body < 16 then raise (Bad "data file too short");
        if Bytes.sub_string body 0 4 <> data_magic then raise (Bad "bad magic");
        let stored = Bytes.get_int32_le body 4 in
        let computed = Codec.checksum body ~off:8 ~len:(Bytes.length body - 8) in
        if not (Int32.equal stored computed) then raise (Bad "checksum mismatch");
        let c = { data = body; pos = 8 } in
        let version = u64 c in
        let entries = read_entries c in
        let rids = read_rids c in
        if c.pos <> Bytes.length body then raise (Bad "trailing garbage");
        Ok (version, entries, rids)
      with Bad reason -> Error reason)

(* --- operation log -------------------------------------------------- *)

let log_magic = "DVO1"
let max_record = 16 * 1024 * 1024

type record =
  | Log_commit of {
      seq : int;
      op_no : int;
      version : int;
      partition : Site_set.t;
      rid : int;
    }
  | Log_intent of { seq : int; content : string }
  | Log_outcome of {
      seq : int;
      kind : [ `Read | `Write | `Recover ];
      granted : bool;
      content : string option;
      rid : int;
    }
  | Log_kcommit of {
      seq : int;
      key : string;
      op_no : int;
      version : int;
      partition : Site_set.t;
      rid : int;
    }
  | Log_kintent of { seq : int; key : string; content : string }
  | Log_koutcome of {
      seq : int;
      key : string;
      kind : [ `Read | `Write | `Recover ];
      granted : bool;
      content : string option;
      rid : int;
    }

let seq_of = function
  | Log_commit { seq; _ }
  | Log_intent { seq; _ }
  | Log_outcome { seq; _ }
  | Log_kcommit { seq; _ }
  | Log_kintent { seq; _ }
  | Log_koutcome { seq; _ } ->
      seq

let kind_code = function `Read -> 0 | `Write -> 1 | `Recover -> 2

let add_log_key b k =
  if String.length k > 0xffff then invalid_arg "Persist: key longer than 65535 bytes";
  add_u16 b (String.length k);
  Buffer.add_string b k

let encode_record record =
  let b = Buffer.create 64 in
  Buffer.add_string b log_magic;
  add_u32 b 0 (* checksum slot *);
  (match record with
  | Log_commit { seq; op_no; version; partition; rid } ->
      add_u8 b 0;
      add_u64 b seq;
      add_u64 b op_no;
      add_u64 b version;
      add_u64 b (Site_set.to_int partition);
      add_u64 b rid
  | Log_intent { seq; content } ->
      add_u8 b 1;
      add_u64 b seq;
      add_u32 b (String.length content);
      Buffer.add_string b content
  | Log_outcome { seq; kind; granted; content; rid } ->
      add_u8 b 2;
      add_u64 b seq;
      add_u8 b (kind_code kind);
      add_u8 b (if granted then 1 else 0);
      (match content with
      | None -> add_u8 b 0
      | Some content ->
          add_u8 b 1;
          add_u32 b (String.length content);
          Buffer.add_string b content);
      add_u64 b rid
  | Log_kcommit { seq; key; op_no; version; partition; rid } ->
      add_u8 b 3;
      add_u64 b seq;
      add_log_key b key;
      add_u64 b op_no;
      add_u64 b version;
      add_u64 b (Site_set.to_int partition);
      add_u64 b rid
  | Log_kintent { seq; key; content } ->
      add_u8 b 4;
      add_u64 b seq;
      add_log_key b key;
      add_u32 b (String.length content);
      Buffer.add_string b content
  | Log_koutcome { seq; key; kind; granted; content; rid } ->
      add_u8 b 5;
      add_u64 b seq;
      add_log_key b key;
      add_u8 b (kind_code kind);
      add_u8 b (if granted then 1 else 0);
      (match content with
      | None -> add_u8 b 0
      | Some content ->
          add_u8 b 1;
          add_u32 b (String.length content);
          Buffer.add_string b content);
      add_u64 b rid);
  let body = Buffer.to_bytes b in
  Bytes.set_int32_le body 4 (Codec.checksum body ~off:8 ~len:(Bytes.length body - 8));
  let frame = Bytes.create (4 + Bytes.length body) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length body));
  Bytes.blit body 0 frame 4 (Bytes.length body);
  Bytes.to_string frame

(* An open append channel over the vfs: each record is written through
   in full (straight to the OS, no userland buffering), so a process
   kill leaves at worst one partial frame at the tail.  Like the old
   out_channel discipline, appends are not fsynced — a power cut may
   truncate the unsynced suffix, which replay tolerates as a torn
   tail. *)
type log = { file : Vfs.file; path : string }

let open_log ?(vfs = Vfs.real) ~path () = { file = vfs.Vfs.append path; path }

let append log record =
  let frame = Bytes.unsafe_of_string (encode_record record) in
  let len = Bytes.length frame in
  let written = ref 0 in
  while !written < len do
    written := !written + log.file.Vfs.write frame !written (len - !written)
  done

let log_path log = log.path
let close_log log = log.file.Vfs.close ()

(* A trailing rid field is optional on commit and outcome records:
   records written before it existed decode with rid 0 (no request
   id). *)
let optional_rid c = if c.pos = Bytes.length c.data then 0 else u64 c

let decode_record body =
  let c = { data = body; pos = 0 } in
  if str c 4 <> log_magic then raise (Bad "bad magic");
  let stored = Bytes.get_int32_le body 4 in
  c.pos <- 8;
  let computed = Codec.checksum body ~off:8 ~len:(Bytes.length body - 8) in
  if not (Int32.equal stored computed) then raise (Bad "checksum mismatch");
  let record =
    match u8 c with
    | 0 ->
        let seq = u64 c in
        let op_no = u64 c in
        let version = u64 c in
        let mask = u64 c in
        let rid = optional_rid c in
        Log_commit { seq; op_no; version; partition = Site_set.of_int_unsafe mask; rid }
    | 1 ->
        let seq = u64 c in
        Log_intent { seq; content = str c (u32 c) }
    | 2 ->
        let seq = u64 c in
        let kind =
          match u8 c with
          | 0 -> `Read
          | 1 -> `Write
          | 2 -> `Recover
          | _ -> raise (Bad "bad kind")
        in
        let granted = match u8 c with 0 -> false | 1 -> true | _ -> raise (Bad "bad flag") in
        let content =
          match u8 c with
          | 0 -> None
          | 1 -> Some (str c (u32 c))
          | _ -> raise (Bad "bad content flag")
        in
        let rid = optional_rid c in
        Log_outcome { seq; kind; granted; content; rid }
    | 3 ->
        let seq = u64 c in
        let key = str c (u16 c) in
        let op_no = u64 c in
        let version = u64 c in
        let mask = u64 c in
        let rid = u64 c in
        Log_kcommit
          { seq; key; op_no; version; partition = Site_set.of_int_unsafe mask; rid }
    | 4 ->
        let seq = u64 c in
        let key = str c (u16 c) in
        Log_kintent { seq; key; content = str c (u32 c) }
    | 5 ->
        let seq = u64 c in
        let key = str c (u16 c) in
        let kind =
          match u8 c with
          | 0 -> `Read
          | 1 -> `Write
          | 2 -> `Recover
          | _ -> raise (Bad "bad kind")
        in
        let granted = match u8 c with 0 -> false | 1 -> true | _ -> raise (Bad "bad flag") in
        let content =
          match u8 c with
          | 0 -> None
          | 1 -> Some (str c (u32 c))
          | _ -> raise (Bad "bad content flag")
        in
        let rid = u64 c in
        Log_koutcome { seq; key; kind; granted; content; rid }
    | _ -> raise (Bad "unknown record tag")
  in
  if c.pos <> Bytes.length body then raise (Bad "trailing garbage");
  record

type scan = { records : record list; torn : bool; corrupt : int; valid_prefix : int }

(* A killed node leaves at worst one partial frame at the tail — that is
   the only corruption an honest crash can produce, and replay tolerates
   it as [torn].  A checksum-failing record *followed by intact ones* is
   a different animal entirely: the tail proves the log kept growing
   past the damage, so bytes were altered in place (bit rot, a lying
   disk) and the history has a hole.  Those records are counted in
   [corrupt] so recovery can refuse to trust the site instead of
   silently replaying around the gap.

   Frames whose length prefix is intact are skipped and scanning
   resumes at the next frame; an implausible length ends the scan (we
   cannot resynchronize without trusting damaged bytes). *)
let scan_log ?vfs ~path () =
  match Codec.read_file_result ?vfs ~path () with
  | Error _ -> { records = []; torn = false; corrupt = 0; valid_prefix = 0 }
  | Ok data ->
      let raw = Bytes.of_string data in
      let total = Bytes.length raw in
      (* Good records and bad-frame markers, in file order. *)
      let items = ref [] in
      let pos = ref 0 in
      let ragged_tail = ref false in
      (* Byte length of the damage-free prefix: everything before the
         first bad frame (or the structural end of the scan).  A booting
         node may cut a purely-torn log back to this point before
         appending over it — appending *past* a partial frame would make
         the new records unreadable, indistinguishable from mid-log
         corruption on the next scan. *)
      let damaged = ref false in
      let valid_prefix = ref 0 in
      (try
         while !pos < total do
           if !pos + 4 > total then raise Exit;
           let len = Int32.to_int (Bytes.get_int32_le raw !pos) land 0xFFFFFFFF in
           if len <= 0 || len > max_record || !pos + 4 + len > total then raise Exit;
           (match decode_record (Bytes.sub raw (!pos + 4) len) with
           | record ->
               items := `Good record :: !items;
               if not !damaged then valid_prefix := !pos + 4 + len
           | exception Bad _ ->
               items := `Bad :: !items;
               damaged := true);
           pos := !pos + 4 + len
         done
       with Exit -> ragged_tail := true);
      (* Bad frames at the very end are the torn tail; bad frames with
         an intact record after them are mid-log corruption. *)
      let rec split_tail = function
        | `Bad :: rest -> ragged_tail := true; split_tail rest
        | items -> items
      in
      let interior = split_tail !items in
      let records, corrupt =
        List.fold_left
          (fun (records, corrupt) item ->
            match item with
            | `Good r -> (r :: records, corrupt)
            | `Bad -> (records, corrupt + 1))
          ([], 0) interior
      in
      { records; torn = !ragged_tail; corrupt; valid_prefix = !valid_prefix }

let read_log ~path =
  let scan = scan_log ~path () in
  (scan.records, scan.torn || scan.corrupt > 0)
