(* Per-site stable storage: ensemble (Codec record), data blob, and the
   append-only operation log.  All three share the codec's durability
   discipline — the data blob is replaced atomically with fsync, and log
   records are framed and checksummed so a torn tail is detected and
   dropped rather than trusted. *)

let site_dir ~dir site = Filename.concat dir (Printf.sprintf "site-%d" site)

let ensure_site_dir ~dir site =
  let path = site_dir ~dir site in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  path

let ensemble_path ~dir site = Filename.concat (site_dir ~dir site) "ensemble.dvt"
let data_path ~dir site = Filename.concat (site_dir ~dir site) "data.dvl"
let oplog_path ~dir site = Filename.concat (site_dir ~dir site) "oplog.dvl"

(* --- data blobs ---------------------------------------------------- *)

let data_magic = "DVD1"

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let add_u16 b v = Buffer.add_uint16_le b v
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)

let add_entries b entries =
  let entries = List.sort (fun (a, _) (c, _) -> String.compare a c) entries in
  add_u32 b (List.length entries);
  List.iter
    (fun (k, v) ->
      if String.length k > 0xffff then invalid_arg "Persist: key longer than 65535 bytes";
      add_u16 b (String.length k);
      Buffer.add_string b k;
      add_u32 b (String.length v);
      Buffer.add_string b v)
    entries

let encode_entries entries =
  let b = Buffer.create 256 in
  add_entries b entries;
  Buffer.contents b

let save_data ?(fsync = true) ~path ~version entries =
  let b = Buffer.create 256 in
  Buffer.add_string b data_magic;
  add_u32 b 0 (* checksum slot *);
  add_u64 b version;
  add_entries b entries;
  let body = Buffer.to_bytes b in
  Bytes.set_int32_le body 4 (Codec.checksum body ~off:8 ~len:(Bytes.length body - 8));
  Codec.write_file_atomic ~fsync ~path (Bytes.to_string body)

exception Bad of string

type cursor = { data : Bytes.t; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.data then raise (Bad "record truncated")

let u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v = Bytes.get_uint16_le c.data c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.data c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let u64 c =
  need c 8;
  let v = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Bad "field out of range");
  Int64.to_int v

let str c len =
  need c len;
  let s = Bytes.sub_string c.data c.pos len in
  c.pos <- c.pos + len;
  s

let read_entries c =
  let n = u32 c in
  if n > Bytes.length c.data then raise (Bad "entry count out of range");
  List.init n (fun _ ->
      let k = str c (u16 c) in
      (k, str c (u32 c)))

let load_data_result ~path =
  match Codec.read_file_result ~path with
  | Error reason -> Error reason
  | Ok data -> (
      try
        let body = Bytes.of_string data in
        if Bytes.length body < 16 then raise (Bad "data file too short");
        if Bytes.sub_string body 0 4 <> data_magic then raise (Bad "bad magic");
        let stored = Bytes.get_int32_le body 4 in
        let computed = Codec.checksum body ~off:8 ~len:(Bytes.length body - 8) in
        if not (Int32.equal stored computed) then raise (Bad "checksum mismatch");
        let c = { data = body; pos = 8 } in
        let version = u64 c in
        let entries = read_entries c in
        if c.pos <> Bytes.length body then raise (Bad "trailing garbage");
        Ok (version, entries)
      with Bad reason -> Error reason)

(* --- operation log -------------------------------------------------- *)

let log_magic = "DVO1"

type record =
  | Log_commit of { seq : int; op_no : int; version : int; partition : Site_set.t }
  | Log_intent of { seq : int; content : string }
  | Log_outcome of {
      seq : int;
      kind : [ `Read | `Write | `Recover ];
      granted : bool;
      content : string option;
    }

let seq_of = function
  | Log_commit { seq; _ } | Log_intent { seq; _ } | Log_outcome { seq; _ } -> seq

let kind_code = function `Read -> 0 | `Write -> 1 | `Recover -> 2

let encode_record record =
  let b = Buffer.create 64 in
  Buffer.add_string b log_magic;
  add_u32 b 0 (* checksum slot *);
  (match record with
  | Log_commit { seq; op_no; version; partition } ->
      add_u8 b 0;
      add_u64 b seq;
      add_u64 b op_no;
      add_u64 b version;
      add_u64 b (Site_set.to_int partition)
  | Log_intent { seq; content } ->
      add_u8 b 1;
      add_u64 b seq;
      add_u32 b (String.length content);
      Buffer.add_string b content
  | Log_outcome { seq; kind; granted; content } ->
      add_u8 b 2;
      add_u64 b seq;
      add_u8 b (kind_code kind);
      add_u8 b (if granted then 1 else 0);
      (match content with
      | None -> add_u8 b 0
      | Some content ->
          add_u8 b 1;
          add_u32 b (String.length content);
          Buffer.add_string b content));
  let body = Buffer.to_bytes b in
  Bytes.set_int32_le body 4 (Codec.checksum body ~off:8 ~len:(Bytes.length body - 8));
  let frame = Bytes.create (4 + Bytes.length body) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length body));
  Bytes.blit body 0 frame 4 (Bytes.length body);
  Bytes.to_string frame

let append oc record =
  output_string oc (encode_record record);
  flush oc

let decode_record body =
  let c = { data = body; pos = 0 } in
  if str c 4 <> log_magic then raise (Bad "bad magic");
  let stored = Bytes.get_int32_le body 4 in
  c.pos <- 8;
  let computed = Codec.checksum body ~off:8 ~len:(Bytes.length body - 8) in
  if not (Int32.equal stored computed) then raise (Bad "checksum mismatch");
  let record =
    match u8 c with
    | 0 ->
        let seq = u64 c in
        let op_no = u64 c in
        let version = u64 c in
        let mask = u64 c in
        Log_commit { seq; op_no; version; partition = Site_set.of_int_unsafe mask }
    | 1 ->
        let seq = u64 c in
        Log_intent { seq; content = str c (u32 c) }
    | 2 ->
        let seq = u64 c in
        let kind =
          match u8 c with
          | 0 -> `Read
          | 1 -> `Write
          | 2 -> `Recover
          | _ -> raise (Bad "bad kind")
        in
        let granted = match u8 c with 0 -> false | 1 -> true | _ -> raise (Bad "bad flag") in
        let content =
          match u8 c with
          | 0 -> None
          | 1 -> Some (str c (u32 c))
          | _ -> raise (Bad "bad content flag")
        in
        Log_outcome { seq; kind; granted; content }
    | _ -> raise (Bad "unknown record tag")
  in
  if c.pos <> Bytes.length body then raise (Bad "trailing garbage");
  record

(* A killed node leaves at worst one partial frame at the tail; anything
   after the first bad record is dropped and flagged, never trusted. *)
let read_log ~path =
  match Codec.read_file_result ~path with
  | Error _ -> ([], false)
  | Ok data ->
      let raw = Bytes.of_string data in
      let total = Bytes.length raw in
      let records = ref [] in
      let pos = ref 0 in
      let truncated = ref false in
      (try
         while !pos < total do
           if !pos + 4 > total then raise Exit;
           let len = Int32.to_int (Bytes.get_int32_le raw !pos) land 0xFFFFFFFF in
           if len <= 0 || !pos + 4 + len > total then raise Exit;
           (match decode_record (Bytes.sub raw (!pos + 4) len) with
           | record -> records := record :: !records
           | exception Bad _ -> raise Exit);
           pos := !pos + 4 + len
         done
       with Exit -> truncated := true);
      (List.rev !records, !truncated)
