(* The virtual socket seam.  Real sockets are switched to non-blocking
   mode and their errno families folded into small variant types; fakes
   replay a deterministic script.  Nothing above this layer may touch
   Unix.read/Unix.write directly. *)

type read_result =
  | Read of int
  | Read_eof
  | Read_block
  | Read_intr

type write_result =
  | Wrote of int
  | Write_block
  | Write_intr
  | Write_closed

type t = {
  read : Bytes.t -> int -> int -> read_result;
  write : Bytes.t -> int -> int -> write_result;
  close : unit -> unit;
  fd : Unix.file_descr option;
}

let of_fd fd =
  Unix.set_nonblock fd;
  let closed = ref false in
  let read buf off len =
    match Unix.read fd buf off len with
    | 0 -> Read_eof
    | n -> Read n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Read_block
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Read_intr
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
        Read_eof
  in
  let write buf off len =
    match Unix.write fd buf off len with
    | n -> Wrote n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Write_block
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> Write_intr
    | exception
        Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
        Write_closed
  in
  let close () =
    if not !closed then begin
      closed := true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  { read; write; close; fd = Some fd }

module Fake = struct
  type step = Chunk of string | Again | Intr | Eof

  type fake = {
    mutable script : step list;
    mutable partial : string option; (* remainder of a part-delivered chunk *)
    read_cap : int;
    mutable credit : int;
    mutable write_script : step list;
    sink : Buffer.t;
    mutable sink_closed : bool;
    mutable n_reads : int;
    mutable n_writes : int;
    mutable is_closed : bool;
    mutable at_eof : bool;
  }

  let create ?(script = []) ?(read_cap = max_int) ?(write_credit = max_int)
      ?(write_script = []) () =
    {
      script;
      partial = None;
      read_cap;
      credit = write_credit;
      write_script;
      sink = Buffer.create 256;
      sink_closed = false;
      n_reads = 0;
      n_writes = 0;
      is_closed = false;
      at_eof = false;
    }

  let feed f steps = f.script <- f.script @ steps
  let grant f n = f.credit <- (if f.credit = max_int then max_int else f.credit + n)
  let written f = Buffer.contents f.sink
  let reads f = f.n_reads
  let writes f = f.n_writes
  let closed f = f.is_closed

  let deliver f buf off len bytes =
    let take = min (min len f.read_cap) (String.length bytes) in
    Bytes.blit_string bytes 0 buf off take;
    let rest = String.length bytes - take in
    f.partial <-
      (if rest > 0 then Some (String.sub bytes take rest) else None);
    Read take

  let read f buf off len =
    f.n_reads <- f.n_reads + 1;
    if f.at_eof then Read_eof
    else if len = 0 then Read 0
    else
      match f.partial with
      | Some bytes -> deliver f buf off len bytes
      | None -> (
          match f.script with
          | [] -> Read_block
          | Again :: rest ->
              f.script <- rest;
              Read_block
          | Intr :: rest ->
              f.script <- rest;
              Read_intr
          | Eof :: rest ->
              f.script <- rest;
              f.at_eof <- true;
              Read_eof
          | Chunk "" :: rest ->
              f.script <- rest;
              (* an empty chunk is a spurious wakeup too *)
              Read_block
          | Chunk bytes :: rest ->
              f.script <- rest;
              deliver f buf off len bytes)

  let write f buf off len =
    f.n_writes <- f.n_writes + 1;
    if f.sink_closed then Write_closed
    else
      match f.write_script with
      | Again :: rest ->
          f.write_script <- rest;
          Write_block
      | Intr :: rest ->
          f.write_script <- rest;
          Write_intr
      | Eof :: rest ->
          f.write_script <- rest;
          f.sink_closed <- true;
          Write_closed
      | Chunk _ :: rest ->
          f.write_script <- rest;
          Wrote 0
      | [] ->
          if f.credit <= 0 then Write_block
          else begin
            let take = min len f.credit in
            Buffer.add_subbytes f.sink buf off take;
            if f.credit <> max_int then f.credit <- f.credit - take;
            Wrote take
          end

  let vio f =
    {
      read = read f;
      write = write f;
      close = (fun () -> f.is_closed <- true);
      fd = None;
    }
end
