(* Wire protocol of the live replication service.

   Frames are self-delimiting and self-checking:

       len:u32 | magic "DVW1" | adler32:u32 | src:u16 | dst:u16 | tag:u8 | fields

   The checksum covers everything after itself.  Integers are
   little-endian fixed width; keys carry u16 lengths, values u32.  The
   consistency ensemble inside State_reply reuses the Codec stable-storage
   encoding byte for byte, so the protocol state that crosses the wire is
   the same record that sits on disk. *)

let magic = "DVW1"
let max_frame = 16 * 1024 * 1024
let broker_id = 0xFFFF
let first_client_id = 64
let is_site id = id >= 0 && id < Site_set.max_sites

type status = Granted | Denied | Aborted | Degraded

type payload =
  | Hello_site of { site : Site_set.site }
  | Hello_client
  | Welcome of { id : int }
  | State_request of { round : int }
  | State_reply of { round : int; fresh : bool; replica : Replica.t }
  | Lock_request of { op : int }
  | Lock_reply of { op : int; granted : bool }
  | Unlock of { op : int }
  | Data_request of { round : int }
  | Data_reply of {
      round : int;
      version : int;
      entries : (string * string) list;
      rids : (int * int) list;
    }
  | Commit of {
      op_no : int;
      version : int;
      partition : Site_set.t;
      put : (string * string) option;
      rid : int;
    }
  | Client_put of { req : int; key : string; value : string }
  | Client_get of { req : int; key : string }
  | Client_recover of { req : int }
  | Client_reply of { req : int; status : status; value : string option; info : string }
  | Abstain of { round : int }
      (* a fenced or amnesiac site answering a state or lock gather:
         alive but taking no part, so the coordinator can stop waiting
         without counting it as a vote (for locks, [round] is the op) *)
  (* Keyed (sharded object space) frames.  One group-quorum round names
     every key it covers, so a single wire exchange locks, gathers and
     commits an entire scheduler burst of per-key operations. *)
  | KLock_request of { op : int; keys : string list }
  | KUnlock of { op : int; keys : string list }
  | KState_request of { round : int; keys : string list }
  | KState_reply of {
      round : int;
      fresh : bool;
      states : (string * Replica.t) list;
    }
  | KCommit of {
      key : string;
      op_no : int;
      version : int;
      partition : Site_set.t;
      value : string option;  (* [None]: consistency-only (read) commit *)
      rid : int;
    }
  | KData_request of { round : int; key : string }
  | KData_reply of {
      round : int;
      key : string;
      version : int;
      value : string option;
      rids : (int * int) list;
    }

type envelope = { src : int; dst : int; payload : payload }

let kind_name = function
  | Hello_site _ -> "hello-site"
  | Hello_client -> "hello-client"
  | Welcome _ -> "welcome"
  | State_request _ -> "state-request"
  | State_reply _ -> "state-reply"
  | Lock_request _ -> "lock-request"
  | Lock_reply _ -> "lock-reply"
  | Unlock _ -> "unlock"
  | Data_request _ -> "data-request"
  | Data_reply _ -> "data-reply"
  | Commit _ -> "commit"
  | Client_put _ -> "client-put"
  | Client_get _ -> "client-get"
  | Client_recover _ -> "client-recover"
  | Client_reply _ -> "client-reply"
  | Abstain _ -> "abstain"
  | KLock_request _ -> "klock-request"
  | KUnlock _ -> "kunlock"
  | KState_request _ -> "kstate-request"
  | KState_reply _ -> "kstate-reply"
  | KCommit _ -> "kcommit"
  | KData_request _ -> "kdata-request"
  | KData_reply _ -> "kdata-reply"

let pp ppf e = Fmt.pf ppf "%d->%d %s" e.src e.dst (kind_name e.payload)

(* --- encoding ----------------------------------------------------- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let add_u16 b v = Buffer.add_uint16_le b v
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)
let add_bool b v = add_u8 b (if v then 1 else 0)

let add_key b k =
  if String.length k > 0xffff then invalid_arg "Wire: key longer than 65535 bytes";
  add_u16 b (String.length k);
  Buffer.add_string b k

let add_value b v =
  add_u32 b (String.length v);
  Buffer.add_string b v

let add_status b = function
  | Granted -> add_u8 b 0
  | Denied -> add_u8 b 1
  | Aborted -> add_u8 b 2
  | Degraded -> add_u8 b 3

let tag_of = function
  | Hello_site _ -> 0
  | Hello_client -> 1
  | Welcome _ -> 2
  | State_request _ -> 3
  | State_reply _ -> 4
  | Lock_request _ -> 5
  | Lock_reply _ -> 6
  | Unlock _ -> 7
  | Data_request _ -> 8
  | Data_reply _ -> 9
  | Commit _ -> 10
  | Client_put _ -> 11
  | Client_get _ -> 12
  | Client_recover _ -> 13
  | Client_reply _ -> 14
  | Abstain _ -> 15
  | KLock_request _ -> 16
  | KUnlock _ -> 17
  | KState_request _ -> 18
  | KState_reply _ -> 19
  | KCommit _ -> 20
  | KData_request _ -> 21
  | KData_reply _ -> 22

let add_keys b keys =
  add_u16 b (List.length keys);
  List.iter (add_key b) keys

let encode_payload b = function
  | Hello_site { site } -> add_u16 b site
  | Hello_client -> ()
  | Welcome { id } -> add_u16 b id
  | State_request { round } -> add_u32 b round
  | State_reply { round; fresh; replica } ->
      add_u32 b round;
      add_bool b fresh;
      Buffer.add_string b (Codec.encode_replica replica)
  | Lock_request { op } -> add_u32 b op
  | Lock_reply { op; granted } ->
      add_u32 b op;
      add_bool b granted
  | Unlock { op } -> add_u32 b op
  | Data_request { round } -> add_u32 b round
  | Data_reply { round; version; entries; rids } ->
      add_u32 b round;
      add_u64 b version;
      add_u32 b (List.length entries);
      List.iter
        (fun (k, v) ->
          add_key b k;
          add_value b v)
        entries;
      add_u32 b (List.length rids);
      List.iter
        (fun (client, req) ->
          add_u32 b client;
          add_u64 b req)
        rids
  | Commit { op_no; version; partition; put; rid } ->
      add_u64 b op_no;
      add_u64 b version;
      add_u64 b (Site_set.to_int partition);
      (match put with
      | None -> add_u8 b 0
      | Some (k, v) ->
          add_u8 b 1;
          add_key b k;
          add_value b v);
      add_u64 b rid
  | Client_put { req; key; value } ->
      add_u32 b req;
      add_key b key;
      add_value b value
  | Client_get { req; key } ->
      add_u32 b req;
      add_key b key
  | Client_recover { req } -> add_u32 b req
  | Client_reply { req; status; value; info } ->
      add_u32 b req;
      add_status b status;
      (match value with
      | None -> add_u8 b 0
      | Some v ->
          add_u8 b 1;
          add_value b v);
      add_key b info
  | Abstain { round } -> add_u32 b round
  | KLock_request { op; keys } ->
      add_u32 b op;
      add_keys b keys
  | KUnlock { op; keys } ->
      add_u32 b op;
      add_keys b keys
  | KState_request { round; keys } ->
      add_u32 b round;
      add_keys b keys
  | KState_reply { round; fresh; states } ->
      add_u32 b round;
      add_bool b fresh;
      add_u16 b (List.length states);
      List.iter
        (fun (k, replica) ->
          add_key b k;
          Buffer.add_string b (Codec.encode_replica replica))
        states
  | KCommit { key; op_no; version; partition; value; rid } ->
      add_key b key;
      add_u64 b op_no;
      add_u64 b version;
      add_u64 b (Site_set.to_int partition);
      (match value with
      | None -> add_u8 b 0
      | Some v ->
          add_u8 b 1;
          add_value b v);
      add_u64 b rid
  | KData_request { round; key } ->
      add_u32 b round;
      add_key b key
  | KData_reply { round; key; version; value; rids } ->
      add_u32 b round;
      add_key b key;
      add_u64 b version;
      (match value with
      | None -> add_u8 b 0
      | Some v ->
          add_u8 b 1;
          add_value b v);
      add_u32 b (List.length rids);
      List.iter
        (fun (client, req) ->
          add_u32 b client;
          add_u64 b req)
        rids

let encode e =
  let body = Buffer.create 64 in
  Buffer.add_string body magic;
  add_u32 body 0 (* checksum slot *);
  add_u16 body e.src;
  add_u16 body e.dst;
  add_u8 body (tag_of e.payload);
  encode_payload body e.payload;
  let body = Buffer.to_bytes body in
  Bytes.set_int32_le body 4 (Codec.checksum body ~off:8 ~len:(Bytes.length body - 8));
  let frame = Bytes.create (4 + Bytes.length body) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length body));
  Bytes.blit body 0 frame 4 (Bytes.length body);
  Bytes.to_string frame

(* --- decoding ----------------------------------------------------- *)

exception Bad of string

(* A cursor over the body bytes; every read is bounds-checked so a
   malformed length field turns into [Error], never an exception from
   Bytes. *)
type cursor = { data : Bytes.t; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.data then raise (Bad "frame truncated")

let u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v = Bytes.get_uint16_le c.data c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.data c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let u64 c =
  need c 8;
  let v = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Bad "field out of range");
  Int64.to_int v

let bool_field c =
  match u8 c with 0 -> false | 1 -> true | _ -> raise (Bad "bad boolean")

let str c len =
  need c len;
  let s = Bytes.sub_string c.data c.pos len in
  c.pos <- c.pos + len;
  s

let key c = str c (u16 c)
let value c = str c (u32 c)

let keys_field c =
  let n = u16 c in
  List.init n (fun _ -> key c)

let status_field c =
  match u8 c with
  | 0 -> Granted
  | 1 -> Denied
  | 2 -> Aborted
  | 3 -> Degraded
  | _ -> raise (Bad "bad status")

let replica_field c =
  let data = str c Codec.encoded_size in
  match Codec.decode_result data with
  | Ok replica -> replica
  | Error reason -> raise (Bad ("bad replica: " ^ reason))

let site_set_field c =
  let mask = u64 c in
  if mask land lnot (Site_set.to_int (Site_set.universe Site_set.max_sites)) <> 0 then
    raise (Bad "partition mask has illegal bits");
  Site_set.of_int_unsafe mask

let decode_payload c tag =
  match tag with
  | 0 -> Hello_site { site = u16 c }
  | 1 -> Hello_client
  | 2 -> Welcome { id = u16 c }
  | 3 -> State_request { round = u32 c }
  | 4 ->
      let round = u32 c in
      let fresh = bool_field c in
      State_reply { round; fresh; replica = replica_field c }
  | 5 -> Lock_request { op = u32 c }
  | 6 ->
      let op = u32 c in
      Lock_reply { op; granted = bool_field c }
  | 7 -> Unlock { op = u32 c }
  | 8 -> Data_request { round = u32 c }
  | 9 ->
      let round = u32 c in
      let version = u64 c in
      let n = u32 c in
      if n > max_frame then raise (Bad "entry count out of range");
      let entries = List.init n (fun _ -> let k = key c in (k, value c)) in
      let nr = u32 c in
      if nr > max_frame then raise (Bad "rid count out of range");
      let rids = List.init nr (fun _ -> let client = u32 c in (client, u64 c)) in
      Data_reply { round; version; entries; rids }
  | 10 ->
      let op_no = u64 c in
      let version = u64 c in
      let partition = site_set_field c in
      let put =
        match u8 c with
        | 0 -> None
        | 1 -> let k = key c in Some (k, value c)
        | _ -> raise (Bad "bad put flag")
      in
      let rid = u64 c in
      Commit { op_no; version; partition; put; rid }
  | 11 ->
      let req = u32 c in
      let k = key c in
      Client_put { req; key = k; value = value c }
  | 12 ->
      let req = u32 c in
      Client_get { req; key = key c }
  | 13 -> Client_recover { req = u32 c }
  | 14 ->
      let req = u32 c in
      let status = status_field c in
      let v =
        match u8 c with
        | 0 -> None
        | 1 -> Some (value c)
        | _ -> raise (Bad "bad value flag")
      in
      Client_reply { req; status; value = v; info = key c }
  | 15 -> Abstain { round = u32 c }
  | 16 ->
      let op = u32 c in
      KLock_request { op; keys = keys_field c }
  | 17 ->
      let op = u32 c in
      KUnlock { op; keys = keys_field c }
  | 18 ->
      let round = u32 c in
      KState_request { round; keys = keys_field c }
  | 19 ->
      let round = u32 c in
      let fresh = bool_field c in
      let n = u16 c in
      let states =
        List.init n (fun _ ->
            let k = key c in
            (k, replica_field c))
      in
      KState_reply { round; fresh; states }
  | 20 ->
      let k = key c in
      let op_no = u64 c in
      let version = u64 c in
      let partition = site_set_field c in
      let value =
        match u8 c with
        | 0 -> None
        | 1 -> Some (value c)
        | _ -> raise (Bad "bad value flag")
      in
      let rid = u64 c in
      KCommit { key = k; op_no; version; partition; value; rid }
  | 21 ->
      let round = u32 c in
      KData_request { round; key = key c }
  | 22 ->
      let round = u32 c in
      let k = key c in
      let version = u64 c in
      let value =
        match u8 c with
        | 0 -> None
        | 1 -> Some (value c)
        | _ -> raise (Bad "bad value flag")
      in
      let nr = u32 c in
      if nr > max_frame then raise (Bad "rid count out of range");
      let rids = List.init nr (fun _ -> let client = u32 c in (client, u64 c)) in
      KData_reply { round; key = k; version; value; rids }
  | _ -> raise (Bad "unknown tag")

let decode_body body =
  try
    if Bytes.length body < 13 then raise (Bad "frame too short");
    if Bytes.sub_string body 0 4 <> magic then raise (Bad "bad magic");
    let stored = Bytes.get_int32_le body 4 in
    let computed = Codec.checksum body ~off:8 ~len:(Bytes.length body - 8) in
    if not (Int32.equal stored computed) then raise (Bad "checksum mismatch");
    let c = { data = body; pos = 8 } in
    let src = u16 c in
    let dst = u16 c in
    let tag = u8 c in
    let payload = decode_payload c tag in
    if c.pos <> Bytes.length body then raise (Bad "trailing garbage");
    Ok { src; dst; payload }
  with Bad reason -> Error reason

let decode frame =
  if String.length frame < 4 then Error "missing length prefix"
  else
    let len = Int32.to_int (String.get_int32_le frame 0) land 0xFFFFFFFF in
    if len > max_frame then Error "frame length out of range"
    else if String.length frame - 4 <> len then Error "length prefix mismatch"
    else decode_body (Bytes.of_string (String.sub frame 4 len))

(* --- incremental decoder ------------------------------------------ *)

(* Frame reassembly with no socket attached: bytes go in at whatever
   boundaries the transport produced them, complete frames come out.
   This is the piece the event loop (and the deterministic fake-socket
   tests) drive directly. *)
module Decoder = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }
  let buffered d = d.len

  let ensure_capacity d extra =
    if d.len + extra > Bytes.length d.buf then begin
      let grown = Bytes.create (max (2 * Bytes.length d.buf) (d.len + extra)) in
      Bytes.blit d.buf 0 grown 0 d.len;
      d.buf <- grown
    end

  let feed d bytes off len =
    ensure_capacity d len;
    Bytes.blit bytes off d.buf d.len len;
    d.len <- d.len + len

  let feed_string d s = feed d (Bytes.unsafe_of_string s) 0 (String.length s)

  let next d =
    if d.len < 4 then None
    else
      let body_len = Int32.to_int (Bytes.get_int32_le d.buf 0) land 0xFFFFFFFF in
      if body_len > max_frame then Some (Error "frame length out of range")
      else if d.len < 4 + body_len then None
      else begin
        let body = Bytes.sub d.buf 4 body_len in
        let rest = d.len - 4 - body_len in
        Bytes.blit d.buf (4 + body_len) d.buf 0 rest;
        d.len <- rest;
        Some (decode_body body)
      end
end

(* --- buffered connections ----------------------------------------- *)

type conn = {
  sock : Unix.file_descr;
  dec : Decoder.t;
  scratch : Bytes.t;
}

let conn sock = { sock; dec = Decoder.create (); scratch = Bytes.create 4096 }
let fd c = c.sock

(* Blocking-style send that also survives non-blocking descriptors:
   EAGAIN waits for writability through poll (never select — client
   descriptor numbers can exceed FD_SETSIZE), EINTR retries. *)
let send c e =
  let frame = Bytes.unsafe_of_string (encode e) in
  let total = Bytes.length frame in
  let written = ref 0 in
  while !written < total do
    match Unix.write c.sock frame !written (total - !written) with
    | n -> written := !written + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ignore (Evloop.wait_fd c.sock ~read:false ~write:true ~timeout:(-1.0))
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let read_once c =
  match Unix.read c.sock c.scratch 0 (Bytes.length c.scratch) with
  | 0 -> `Closed
  | n ->
      Decoder.feed c.dec c.scratch 0 n;
      `Data
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _) ->
      `Closed

let next_frame c = Decoder.next c.dec

(* [deadline] is an absolute reading of [clock] — the injected monotonic
   clock by default, never the steppable wall clock. *)
let rec recv ?(clock = Dynvote_obs.Clock.now) ?deadline c =
  match next_frame c with
  | Some (Ok e) -> Ok e
  | Some (Error reason) -> Error (`Corrupt reason)
  | None -> (
      let timeout =
        match deadline with None -> -1.0 (* block *) | Some d -> d -. clock ()
      in
      if deadline <> None && timeout <= 0.0 then Error `Timeout
      else
        match Evloop.wait_fd c.sock ~read:true ~write:false ~timeout with
        | None -> Error `Timeout
        | Some _ -> (
            match read_once c with
            | `Closed -> Error `Closed
            | `Data -> recv ~clock ?deadline c
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              ->
                (* spurious wakeup on a non-blocking socket *)
                recv ~clock ?deadline c
            | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                recv ~clock ?deadline c))
