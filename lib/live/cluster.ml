(* Wiring a real cluster out of the pieces: switchboard + node threads +
   client connections, plus the two things only an orchestrator can own —
   the global sequence stamp that orders log records across nodes, and
   the end-of-run audit that merges those logs and replays them through
   the safety oracle. *)

module Oracle = Dynvote_chaos.Oracle
module Trace = Dynvote_obs.Trace
module Hub = Dynvote_obs.Hub

type t = {
  universe : Site_set.t;
  dir : string;
  flavor : Decision.flavor;
  segment_of : Site_set.site -> int;
  config : Node.config;
  client_timeout : float;
  hub : Hub.t;
  sw : Switchboard.t;
  nodes : (Site_set.site, Node.t) Hashtbl.t;
  threads : (Site_set.site, Thread.t) Hashtbl.t;
  next_seq : unit -> int;
}

let universe t = t.universe
let dir t = t.dir
let obs t = t.hub
let port t = Switchboard.port t.sw
let up_sites t = Switchboard.up_sites t.sw

let spawn t site ~was_restarted =
  let node =
    Node.boot ~site ~universe:t.universe ~flavor:t.flavor
      ~segment_of:t.segment_of ~config:t.config ~obs:t.hub ~dir:t.dir
      ~next_seq:t.next_seq ~port:(Switchboard.port t.sw) ~was_restarted
  in
  Hashtbl.replace t.nodes site node;
  Hashtbl.replace t.threads site (Thread.create Node.serve node)

let create ?(flavor = Decision.ldv_flavor) ?(segment_of = fun s -> s)
    ?(config = Node.default_config) ?(client_timeout = 10.0)
    ?(obs = Hub.create ()) ~universe ~dir () =
  let sw = Switchboard.create ~obs ~universe ~segment_of () in
  (* Resuming over old logs: the global stamp must keep growing, or the
     merged replay would interleave the incarnations. *)
  let seq0 =
    Site_set.fold
      (fun site acc ->
        let records, _ = Persist.read_log ~path:(Persist.oplog_path ~dir site) in
        List.fold_left (fun acc r -> max acc (Persist.seq_of r)) acc records)
      universe 0
  in
  let seq = ref seq0 in
  let seq_mutex = Mutex.create () in
  let next_seq () =
    Mutex.lock seq_mutex;
    incr seq;
    let v = !seq in
    Mutex.unlock seq_mutex;
    v
  in
  let t =
    {
      universe;
      dir;
      flavor;
      segment_of;
      config;
      client_timeout;
      hub = obs;
      sw;
      nodes = Hashtbl.create 8;
      threads = Hashtbl.create 8;
      next_seq;
    }
  in
  Site_set.iter
    (fun site ->
      ignore (Persist.ensure_site_dir ~dir site : string);
      let epath = Persist.ensemble_path ~dir site in
      let existed = Sys.file_exists epath in
      if not existed then begin
        (* The paper's initial state: every copy current, one partition. *)
        Codec.save_replica ~path:epath (Replica.initial universe);
        Persist.save_data ~path:(Persist.data_path ~dir site) ~version:1 []
      end;
      spawn t site ~was_restarted:existed)
    universe;
  t

(* --- fault injection ------------------------------------------------ *)

let partition t groups = Switchboard.partition t.sw groups
let heal t = Switchboard.heal t.sw

let join_thread t site =
  match Hashtbl.find_opt t.threads site with
  | Some thread ->
      Thread.join thread;
      Hashtbl.remove t.threads site
  | None -> ()

let kill t site =
  Switchboard.crash t.sw site;
  join_thread t site;
  Hashtbl.remove t.nodes site

let restart t site =
  (* The struck thread (if any) exits on its closed socket; reap it so
     two incarnations never share an oplog channel. *)
  Switchboard.crash t.sw site;
  join_thread t site;
  Hub.event t.hub (Trace.Restart { site });
  spawn t site ~was_restarted:true

let kill_async t site = Switchboard.crash t.sw site

let set_commit_hook t site hook =
  match Hashtbl.find_opt t.nodes site with
  | None -> invalid_arg "Cluster.set_commit_hook: site not running"
  | Some node -> Node.set_commit_hook node hook

let strike_after t site n =
  set_commit_hook t site
    (Some (fun ~sent ~total:_ -> if sent = n then raise Node.Killed))

(* --- clients -------------------------------------------------------- *)

type client = { t : t; conn : Wire.conn; id : int; mutable req : int }

type reply = { status : Wire.status; value : string option; info : string }

let client t =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port t));
     Unix.setsockopt sock Unix.TCP_NODELAY true
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let conn = Wire.conn sock in
  Wire.send conn { Wire.src = 0; dst = Wire.broker_id; payload = Wire.Hello_client };
  match
    Wire.recv ~clock:t.config.Node.clock
      ~deadline:(t.config.Node.clock () +. 5.0)
      conn
  with
  | Ok { Wire.payload = Wire.Welcome { id }; _ } -> { t; conn; id; req = 0 }
  | _ ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      failwith "live client: switchboard handshake failed"

let call client ~at payload_of_req =
  if not (Site_set.mem at client.t.universe) then
    { status = Wire.Denied; value = None; info = "no such site" }
  else if not (Switchboard.is_up client.t.sw at) then
    { status = Wire.Denied; value = None; info = "site down" }
  else begin
    client.req <- client.req + 1;
    let req = client.req in
    match
      Wire.send client.conn
        { Wire.src = client.id; dst = at; payload = payload_of_req req }
    with
    | exception Unix.Unix_error _ ->
        { status = Wire.Aborted; value = None; info = "connection lost" }
    | () ->
        let clock = client.t.config.Node.clock in
        let deadline = clock () +. client.t.client_timeout in
        let rec wait () =
          match Wire.recv ~clock ~deadline client.conn with
          | Error `Timeout ->
              (* The site may be mid-commit for all we know. *)
              { status = Wire.Aborted; value = None; info = "timeout: no reply" }
          | Error (`Closed | `Corrupt _) ->
              { status = Wire.Aborted; value = None; info = "connection lost" }
          | Ok { Wire.payload = Wire.Client_reply { req = r; status; value; info }; _ }
            when r = req ->
              { status; value; info }
          | Ok _ -> wait () (* a stale reply from a timed-out operation *)
        in
        wait ()
  end

let put client ~at ~key ~value =
  call client ~at (fun req -> Wire.Client_put { req; key; value })

let get client ~at ~key = call client ~at (fun req -> Wire.Client_get { req; key })

let recover_site client site =
  call client ~at:site (fun req -> Wire.Client_recover { req })

(* --- audit ---------------------------------------------------------- *)

type audit = { oracle : Oracle.t; torn : Site_set.t; records : int }

let check_dir ~universe ~dir =
  let torn = ref Site_set.empty in
  let tagged = ref [] in
  Site_set.iter
    (fun site ->
      let records, was_torn =
        Persist.read_log ~path:(Persist.oplog_path ~dir site)
      in
      if was_torn then torn := Site_set.add site !torn;
      List.iter (fun r -> tagged := (site, r) :: !tagged) records)
    universe;
  let ordered =
    List.sort
      (fun (_, a) (_, b) -> compare (Persist.seq_of a) (Persist.seq_of b))
      !tagged
  in
  let events =
    List.filter_map
      (fun (site, record) ->
        match record with
        | Persist.Log_commit { op_no; version; partition; _ } ->
            Some
              (Oracle.Replay_commit
                 { site; replica = Replica.make ~op_no ~version ~partition })
        | Persist.Log_intent { content; _ } -> Some (Oracle.Replay_intent { content })
        | Persist.Log_outcome { kind = `Write; granted; content = Some content; _ } ->
            Some (Oracle.Replay_write { granted; content })
        | Persist.Log_outcome { kind = `Write; content = None; _ }
        | Persist.Log_outcome { kind = `Recover; _ } ->
            None
        | Persist.Log_outcome { kind = `Read; granted; content; _ } ->
            Some (Oracle.Replay_read { at = site; granted; content }))
      ordered
  in
  (* Final on-disk stores feed the content-fork scan; an unreadable blob
     belongs to a mid-replace kill and is simply absent. *)
  let final =
    Site_set.fold
      (fun site acc ->
        match Persist.load_data_result ~path:(Persist.data_path ~dir site) with
        | Ok (version, entries) -> (site, version, Persist.encode_entries entries) :: acc
        | Error _ -> acc)
      universe []
  in
  let oracle =
    Oracle.replay ~initial_content:(Persist.encode_entries []) ~final events
  in
  { oracle; torn = !torn; records = List.length ordered }

(* COMMIT waves are fire-and-forget, so a client can hold a granted
   reply while the last participants are still applying.  Pinging each
   up site with a Data_request and waiting for its reply drains the
   race: per-connection FIFO means every commit the broker routed
   before our ping is applied — and persisted, synchronously — before
   the node answers us. *)
let quiesce t =
  match client t with
  | exception _ -> ()
  | c ->
      Site_set.iter
        (fun site ->
          match
            Wire.send c.conn
              { Wire.src = c.id; dst = site; payload = Wire.Data_request { round = 0 } }
          with
          | exception Unix.Unix_error _ -> ()
          | () ->
              let clock = t.config.Node.clock in
              let deadline = clock () +. 1.0 in
              let rec wait () =
                match Wire.recv ~clock ~deadline c.conn with
                | Ok { Wire.payload = Wire.Data_reply _; src; _ } when src = site ->
                    ()
                | Ok _ -> wait ()
                | Error _ -> ()
              in
              wait ())
        (up_sites t);
      (try Unix.close (Wire.fd c.conn) with Unix.Unix_error _ -> ())

let check t =
  quiesce t;
  check_dir ~universe:t.universe ~dir:t.dir

let shutdown t =
  Switchboard.shutdown t.sw;
  Site_set.iter (fun site -> join_thread t site) t.universe;
  Hashtbl.reset t.nodes
