(* Wiring a real cluster out of the pieces: switchboard + node threads +
   client connections, plus the two things only an orchestrator can own —
   the global sequence stamp that orders log records across nodes, and
   the end-of-run audit that merges those logs and replays them through
   the safety oracle. *)

(* The audit evaluates the shared executable invariant spec directly:
   Dynvote_chaos.Oracle is the same module re-exported, but going to the
   source keeps the "one spec, three checkers" dependency explicit. *)
module Oracle = Dynvote_invariant.Spec
module Trace = Dynvote_obs.Trace
module Hub = Dynvote_obs.Hub
module Shard_store = Dynvote_shard.Shard_store

type t = {
  universe : Site_set.t;
  dir : string;
  flavor : Decision.flavor;
  segment_of : Site_set.site -> int;
  config : Node.config;
  client_timeout : float;
  hub : Hub.t;
  sw : Switchboard.t;
  vfs_of : Site_set.site -> Vfs.t;
  nodes : (Site_set.site, Node.t) Hashtbl.t;
  threads : (Site_set.site, Thread.t) Hashtbl.t;
  next_seq : unit -> int;
}

let universe t = t.universe
let dir t = t.dir
let obs t = t.hub
let port t = Switchboard.port t.sw
let backend t = Switchboard.backend t.sw
let up_sites t = Switchboard.up_sites t.sw

let degraded t site =
  match Hashtbl.find_opt t.nodes site with
  | None -> None
  | Some node -> Node.degraded node

let spawn t site ~was_restarted =
  let node =
    Node.boot ~site ~universe:t.universe ~flavor:t.flavor
      ~segment_of:t.segment_of ~config:t.config ~obs:t.hub ~dir:t.dir
      ~vfs:(t.vfs_of site) ~next_seq:t.next_seq ~port:(Switchboard.port t.sw)
      ~was_restarted ()
  in
  Hashtbl.replace t.nodes site node;
  Hashtbl.replace t.threads site (Thread.create Node.serve node)

let create ?(flavor = Decision.ldv_flavor) ?(segment_of = fun s -> s)
    ?(config = Node.default_config) ?(client_timeout = 10.0)
    ?(obs = Hub.create ()) ?(vfs_of = fun _ -> Vfs.real) ~universe ~dir () =
  (* Resuming over old logs: the global stamp must keep growing, or the
     merged replay would interleave the incarnations.  Client endpoint
     ids must not be recycled either — the persisted dedup tables are
     keyed by them, so a fresh client under a reused id would see its
     first writes acknowledged as duplicates of the previous
     incarnation's. *)
  let seq0, client0 =
    Site_set.fold
      (fun site (seq, client) ->
        let records, _ = Persist.read_log ~path:(Persist.oplog_path ~dir site) in
        let seq, client =
          List.fold_left
            (fun (seq, client) r ->
              let rid =
                match r with
                | Persist.Log_commit { rid; _ }
                | Persist.Log_outcome { rid; _ }
                | Persist.Log_kcommit { rid; _ }
                | Persist.Log_koutcome { rid; _ } ->
                    rid
                | Persist.Log_intent _ | Persist.Log_kintent _ -> 0
              in
              (max seq (Persist.seq_of r), max client (rid lsr 32)))
            (seq, client) records
        in
        let client =
          match
            Persist.load_data_result ~path:(Persist.data_path ~dir site) ()
          with
          | Ok (_, _, rids) ->
              List.fold_left (fun acc (c, _) -> max acc c) client rids
          | Error _ -> client
        in
        (seq, client))
      universe
      (0, Wire.first_client_id - 1)
  in
  let sw =
    Switchboard.create ~obs ~first_client:(client0 + 1) ~universe ~segment_of ()
  in
  let seq = ref seq0 in
  let seq_mutex = Mutex.create () in
  let next_seq () =
    Mutex.lock seq_mutex;
    incr seq;
    let v = !seq in
    Mutex.unlock seq_mutex;
    v
  in
  let t =
    {
      universe;
      dir;
      flavor;
      segment_of;
      config;
      client_timeout;
      hub = obs;
      sw;
      vfs_of;
      nodes = Hashtbl.create 8;
      threads = Hashtbl.create 8;
      next_seq;
    }
  in
  Site_set.iter
    (fun site ->
      ignore (Persist.ensure_site_dir ~dir site : string);
      let epath = Persist.ensemble_path ~dir site in
      let existed = Sys.file_exists epath in
      if not existed then begin
        (* The paper's initial state: every copy current, one partition. *)
        Codec.save_replica ~path:epath (Replica.initial universe);
        Persist.save_data ~path:(Persist.data_path ~dir site) ~version:1 []
      end;
      spawn t site ~was_restarted:existed)
    universe;
  t

(* --- fault injection ------------------------------------------------ *)

let partition t groups = Switchboard.partition t.sw groups
let heal t = Switchboard.heal t.sw

let join_thread t site =
  match Hashtbl.find_opt t.threads site with
  | Some thread ->
      Thread.join thread;
      Hashtbl.remove t.threads site
  | None -> ()

let kill t site =
  Switchboard.crash t.sw site;
  join_thread t site;
  Hashtbl.remove t.nodes site

let restart t site =
  (* The struck thread (if any) exits on its closed socket; reap it so
     two incarnations never share an oplog channel. *)
  Switchboard.crash t.sw site;
  join_thread t site;
  Hub.event t.hub (Trace.Restart { site });
  spawn t site ~was_restarted:true

let kill_async t site = Switchboard.crash t.sw site

let set_commit_hook t site hook =
  match Hashtbl.find_opt t.nodes site with
  | None -> invalid_arg "Cluster.set_commit_hook: site not running"
  | Some node -> Node.set_commit_hook node hook

let strike_after t site n =
  set_commit_hook t site
    (Some (fun ~sent ~total:_ -> if sent = n then raise Node.Killed))

(* --- clients -------------------------------------------------------- *)

type client = { t : t; conn : Wire.conn; id : int; mutable req : int }

type reply = {
  status : Wire.status;
  value : string option;
  info : string;
  retries : int;
}

let client t =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port t));
     Unix.setsockopt sock Unix.TCP_NODELAY true
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let conn = Wire.conn sock in
  Wire.send conn { Wire.src = 0; dst = Wire.broker_id; payload = Wire.Hello_client };
  match
    Wire.recv ~clock:t.config.Node.clock
      ~deadline:(t.config.Node.clock () +. 5.0)
      conn
  with
  | Ok { Wire.payload = Wire.Welcome { id }; _ } -> { t; conn; id; req = 0 }
  | _ ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      failwith "live client: switchboard handshake failed"

(* One exchange with one site, under an already-chosen request number.
   The number does NOT advance here: a retry of the same request reuses
   it, which is what lets the sites deduplicate. *)
let call_once client ~at ~req payload_of_req =
  if not (Site_set.mem at client.t.universe) then
    { status = Wire.Denied; value = None; info = "no such site"; retries = 0 }
  else if not (Switchboard.is_up client.t.sw at) then
    { status = Wire.Denied; value = None; info = "site down"; retries = 0 }
  else begin
    match
      Wire.send client.conn
        { Wire.src = client.id; dst = at; payload = payload_of_req req }
    with
    | exception Unix.Unix_error _ ->
        { status = Wire.Aborted; value = None; info = "connection lost"; retries = 0 }
    | () ->
        let clock = client.t.config.Node.clock in
        let deadline = clock () +. client.t.client_timeout in
        let rec wait () =
          match Wire.recv ~clock ~deadline client.conn with
          | Error `Timeout ->
              (* The site may be mid-commit for all we know. *)
              { status = Wire.Aborted; value = None; info = "timeout: no reply"; retries = 0 }
          | Error (`Closed | `Corrupt _) ->
              { status = Wire.Aborted; value = None; info = "connection lost"; retries = 0 }
          | Ok { Wire.payload = Wire.Client_reply { req = r; status; value; info }; _ }
            when r = req ->
              { status; value; info; retries = 0 }
          | Ok _ -> wait () (* a stale reply from a timed-out operation *)
        in
        wait ()
  end

(* An aborted or degraded-site exchange is ambiguous — the operation may
   or may not have committed — so the retry reuses the same request
   number at the next up site, and the dedup table makes the ambiguity
   harmless: re-coordinating an already-committed write acknowledges it
   without applying it again. *)
let call ?(retries = 0) client ~at payload_of_req =
  client.req <- client.req + 1;
  let req = client.req in
  let next_site exclude =
    let candidates = Site_set.remove exclude (up_sites client.t) in
    if Site_set.is_empty candidates then None
    else Some (Site_set.min_elt candidates)
  in
  let rec attempt ~at n =
    let reply = call_once client ~at ~req payload_of_req in
    match reply.status with
    | Wire.Granted | Wire.Denied -> { reply with retries = n }
    | Wire.Aborted | Wire.Degraded ->
        if n >= retries then { reply with retries = n }
        else (
          match next_site at with
          | None -> { reply with retries = n }
          | Some at -> attempt ~at (n + 1))
  in
  attempt ~at 0

let put ?retries client ~at ~key ~value =
  call ?retries client ~at (fun req -> Wire.Client_put { req; key; value })

let get ?retries client ~at ~key =
  call ?retries client ~at (fun req -> Wire.Client_get { req; key })

let recover_site client site =
  call client ~at:site (fun req -> Wire.Client_recover { req })

(* --- audit ---------------------------------------------------------- *)

type audit = {
  oracle : Oracle.t;
  torn : Site_set.t;
  corrupt : int;
  dup_applies : int;
  records : int;
  keys : int;
  kviolations : (string * Oracle.violation) list;
}

(* Exactly-once accounting over the merged logs, both engines at once:
   the request-id space is global (client lsl 32 lor req), so one table
   serves.  A request id is double-applied when the history shows it
   committing under two distinct logical commits — distinct op numbers
   for the single-object engine, distinct (key, op_no) pairs for the
   sharded one (the same logical commit fanning out to many sites shares
   its identity, so that is not a duplicate) — or when two granted write
   outcomes both claim to have installed content for it. *)
let count_dup_applies tagged =
  let commit_ops = Hashtbl.create 16 in
  let applied_outcomes = Hashtbl.create 16 in
  let note_commit rid ident =
    let ops = Option.value ~default:[] (Hashtbl.find_opt commit_ops rid) in
    if not (List.mem ident ops) then Hashtbl.replace commit_ops rid (ident :: ops)
  in
  let note_outcome rid =
    Hashtbl.replace applied_outcomes rid
      (1 + Option.value ~default:0 (Hashtbl.find_opt applied_outcomes rid))
  in
  List.iter
    (fun (_site, record) ->
      match record with
      | Persist.Log_commit { op_no; rid; _ } when rid <> 0 ->
          note_commit rid (None, op_no)
      | Persist.Log_kcommit { key; op_no; rid; _ } when rid <> 0 ->
          note_commit rid (Some key, op_no)
      | Persist.Log_outcome { kind = `Write; granted = true; content = Some _; rid; _ }
      | Persist.Log_koutcome
          { kind = `Write; granted = true; content = Some _; rid; _ }
        when rid <> 0 ->
          note_outcome rid
      | _ -> ())
    tagged;
  let dups = Hashtbl.create 8 in
  Hashtbl.iter
    (fun rid ops -> if List.length ops >= 2 then Hashtbl.replace dups rid ())
    commit_ops;
  Hashtbl.iter
    (fun rid n -> if n >= 2 then Hashtbl.replace dups rid ())
    applied_outcomes;
  Hashtbl.length dups

let check_dir ~universe ~dir =
  let torn = ref Site_set.empty in
  let corrupt = ref 0 in
  let tagged = ref [] in
  Site_set.iter
    (fun site ->
      let scan = Persist.scan_log ~path:(Persist.oplog_path ~dir site) () in
      if scan.Persist.torn then torn := Site_set.add site !torn;
      corrupt := !corrupt + scan.Persist.corrupt;
      List.iter (fun r -> tagged := (site, r) :: !tagged) scan.Persist.records)
    universe;
  let ordered =
    List.sort
      (fun (_, a) (_, b) -> compare (Persist.seq_of a) (Persist.seq_of b))
      !tagged
  in
  let events =
    List.filter_map
      (fun (site, record) ->
        match record with
        | Persist.Log_commit { op_no; version; partition; _ } ->
            Some
              (Oracle.Replay_commit
                 { site; replica = Replica.make ~op_no ~version ~partition })
        | Persist.Log_intent { content; _ } -> Some (Oracle.Replay_intent { content })
        | Persist.Log_outcome { kind = `Write; granted; content = Some content; _ } ->
            Some (Oracle.Replay_write { granted; content })
        | Persist.Log_outcome { kind = `Write; content = None; _ }
        | Persist.Log_outcome { kind = `Recover; _ } ->
            None
        | Persist.Log_outcome { kind = `Read; granted; content; _ } ->
            Some (Oracle.Replay_read { at = site; granted; content })
        | Persist.Log_kcommit _ | Persist.Log_kintent _ | Persist.Log_koutcome _
          ->
            (* keyed records replay through their per-key oracles below *)
            None)
      ordered
  in
  (* Final on-disk stores feed the content-fork scan; an unreadable blob
     belongs to a mid-replace kill and is simply absent. *)
  let final =
    Site_set.fold
      (fun site acc ->
        match Persist.load_data_result ~path:(Persist.data_path ~dir site) () with
        | Ok (version, entries, _) ->
            (site, version, Persist.encode_entries entries) :: acc
        | Error _ -> acc)
      universe []
  in
  let oracle =
    Oracle.replay ~initial_content:(Persist.encode_entries []) ~final events
  in
  (* The sharded object space: every key is its own register, so every
     key gets its own oracle — its commits, intents and outcomes in
     global stamp order, its final per-site states from the shard logs.
     A run that never touched the sharded engine audits zero keys. *)
  let kevents = Hashtbl.create 64 in
  let korder = ref [] in
  let kadd key ev =
    match Hashtbl.find_opt kevents key with
    | Some evs -> Hashtbl.replace kevents key (ev :: evs)
    | None ->
        korder := key :: !korder;
        Hashtbl.replace kevents key [ ev ]
  in
  List.iter
    (fun (site, record) ->
      match record with
      | Persist.Log_kcommit { key; op_no; version; partition; _ } ->
          kadd key
            (Oracle.Replay_commit
               { site; replica = Replica.make ~op_no ~version ~partition })
      | Persist.Log_kintent { key; content; _ } ->
          kadd key (Oracle.Replay_intent { content })
      | Persist.Log_koutcome
          { key; kind = `Write; granted; content = Some content; _ } ->
          kadd key (Oracle.Replay_write { granted; content })
      | Persist.Log_koutcome { key; kind = `Read; granted; content; _ } ->
          kadd key (Oracle.Replay_read { at = site; granted; content })
      | _ -> ())
    ordered;
  let kfinal = Hashtbl.create 64 in
  Site_set.iter
    (fun site ->
      List.iter
        (fun (key, st) ->
          let entry =
            ( site,
              st.Shard_store.data_version,
              Node.encode_kvalue st.Shard_store.value )
          in
          match Hashtbl.find_opt kfinal key with
          | Some fs -> Hashtbl.replace kfinal key (entry :: fs)
          | None ->
              if not (Hashtbl.mem kevents key) then korder := key :: !korder;
              Hashtbl.replace kfinal key [ entry ])
        (Shard_store.read_states ~dir ~site))
    universe;
  let kviolations =
    List.concat_map
      (fun key ->
        let events =
          List.rev (Option.value ~default:[] (Hashtbl.find_opt kevents key))
        in
        let final = Option.value ~default:[] (Hashtbl.find_opt kfinal key) in
        let o = Oracle.replay ~initial_content:"" ~final events in
        List.map (fun v -> (key, v)) (Oracle.violations o))
      (List.rev !korder)
  in
  {
    oracle;
    torn = !torn;
    corrupt = !corrupt;
    dup_applies = count_dup_applies ordered;
    records = List.length ordered;
    keys = List.length !korder;
    kviolations;
  }

(* COMMIT waves are fire-and-forget, so a client can hold a granted
   reply while the last participants are still applying.  Pinging each
   up site with a Data_request and waiting for its reply drains the
   race: per-connection FIFO means every commit the broker routed
   before our ping is applied — and persisted, synchronously — before
   the node answers us. *)
let quiesce t =
  match client t with
  | exception _ -> ()
  | c ->
      Site_set.iter
        (fun site ->
          match
            Wire.send c.conn
              { Wire.src = c.id; dst = site; payload = Wire.Data_request { round = 0 } }
          with
          | exception Unix.Unix_error _ -> ()
          | () ->
              let clock = t.config.Node.clock in
              let deadline = clock () +. 1.0 in
              let rec wait () =
                match Wire.recv ~clock ~deadline c.conn with
                | Ok { Wire.payload = Wire.Data_reply _; src; _ } when src = site ->
                    ()
                | Ok _ -> wait ()
                | Error _ -> ()
              in
              wait ())
        (up_sites t);
      (try Unix.close (Wire.fd c.conn) with Unix.Unix_error _ -> ())

let check t =
  quiesce t;
  check_dir ~universe:t.universe ~dir:t.dir

let shutdown t =
  Switchboard.shutdown t.sw;
  Site_set.iter (fun site -> join_thread t site) t.universe;
  Hashtbl.reset t.nodes
