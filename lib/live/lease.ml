(* The volatile lock with its self-release lease, factored out of the
   node so the expiry arithmetic is testable against a hand-cranked
   clock.  [now] always comes from the caller's injected clock: the
   whole point is that a wall-clock step must not be able to reach this
   arithmetic. *)

type t = { mutable holder : (int * float) option }

let create () = { holder = None }

let try_acquire t ~now ~lease ~op =
  match t.holder with
  | Some (holder, _) when holder = op ->
      (* Re-acquisition by the holder refreshes the lease. *)
      t.holder <- Some (op, now +. lease);
      true
  | Some (_, expiry) when now < expiry -> false
  | _ ->
      (* Free, or an abandoned lock whose lease ran out. *)
      t.holder <- Some (op, now +. lease);
      true

let release t ~op =
  match t.holder with
  | Some (holder, _) when holder = op -> t.holder <- None
  | _ -> ()

let holder t ~now =
  match t.holder with
  | Some (holder, expiry) when now < expiry -> Some holder
  | _ -> None
