(** Load generator for the live service: concurrent client workers
    driving a read/write mix against real sockets, reporting goodput
    with a batch-means 95% confidence interval and exact latency
    percentiles.

    Two arrival models: {e closed loop} (each worker issues its next
    operation the moment the previous reply lands — measures capacity)
    and {e open loop} (operations are scheduled by a Poisson process at a
    target rate; latency is measured from the {e intended} start, so
    queueing delay is charged to the service rather than hidden —
    coordinated omission accounted for). *)

type mode = [ `Threads | `Mux ]
(** [`Threads]: one blocking worker thread per client (the original
    model — supports open-loop arrivals and cross-site retries).
    [`Mux]: every client multiplexed onto one thread through an
    {!Evloop} of nonblocking {!Evconn} connections, each a closed loop
    with a single outstanding operation — ten thousand clients are ten
    thousand descriptors, not threads.  Mux is closed-loop only
    ([rate] must be [None]) and never retries cross-site. *)

type config = {
  clients : int;  (** concurrent clients, one connection each *)
  duration : float;  (** seconds of load *)
  write_ratio : float;  (** fraction of operations that are puts *)
  keys : int;  (** key space size *)
  zipf : float;
      (** key-popularity skew: [0.0] (the default) draws keys uniformly;
          [s > 0] draws rank [k] with probability proportional to
          [1 / (k+1)^s] ({!Dynvote_shard.Zipf}), the classic hot-set
          workload for the sharded object space *)
  value_bytes : int;  (** payload size per put *)
  rate : float option;
      (** [Some r]: open loop at [r] ops/s total; [None]: closed loop *)
  seed : int;  (** deterministic worker randomness (see {!worker_seeds}) *)
  sites : Site_set.t option;
      (** coordinate at these sites (uniform); default: the universe *)
  retries : int;
      (** forwarded to {!Cluster.put}/{!Cluster.get}: how many times an
          aborted or degraded-site call moves to another up site under
          the same request number (exactly-once via the sites' dedup
          tables).  Ignored by [`Mux]. *)
  mode : mode;
}

val default : config
(** 4 clients, 5 s, 30% writes, 16 keys (uniform, [zipf = 0]), 64-byte
    values, closed loop, no retries, [`Threads]. *)

type op_stats = {
  issued : int;
  granted : int;
  denied : int;
  aborted : int;
  degraded : int;  (** calls whose final reply came from a fenced site *)
  retried : int;  (** total cross-site retries performed *)
  dup_acks : int;
      (** granted writes acknowledged by dedup rather than a fresh
          commit — a retry whose first attempt had already landed *)
  latency : Dynvote_stats.Welford.t;  (** seconds, every completed call *)
  p50 : float;
  p95 : float;
  p99 : float;  (** exact (sorted-sample) percentiles, seconds *)
}

type hotset = {
  distinct : int;  (** distinct keys at least one call touched *)
  top_share : float;
      (** fraction of all completed calls that went to the hottest 1% of
          the key space (at least one key); [nan] when nothing
          completed.  Near [0.01 x keys / distinct] for a uniform draw,
          far above it under [zipf] skew *)
}

type result = {
  wall : float;  (** measured duration (monotonic clock) *)
  reads : op_stats;
  writes : op_stats;
  goodput : Dynvote_stats.Batch_means.interval;
      (** granted ops/s over ten batches tiling exactly
          [[t_start, t_start + duration)], Student-t 95% *)
  late : int;
      (** granted calls that completed after the cutoff (closed-loop
          stragglers) — excluded from the goodput windows, never
          silently dropped *)
  hotset : hotset;  (** per-key coverage of the run *)
}

val run : Cluster.t -> config -> result
(** Blocks for [config.duration]; the cluster keeps running afterwards.
    Worker latencies also feed the cluster hub's registry as the
    [loadgen.read.seconds] / [loadgen.write.seconds] histograms and the
    [loadgen.ops.*] counters (issued, granted, retries, dup_acks,
    fenced). *)

val run_at :
  ?obs:Dynvote_obs.Hub.t ->
  port:int ->
  universe:Site_set.t ->
  config ->
  result
(** {!run} against a bare switchboard port — no [Cluster.t] in hand, so
    the generator can live in a {e different process} from the service
    (each process then has its own descriptor budget, which is what a
    ten-thousand-connection herd needs under a hard [RLIMIT_NOFILE]).
    Only [`Mux] mode: thread workers route retries through cluster
    clients and stay in-process.  [obs] (default
    {!Dynvote_obs.Hub.noop}) receives the [loadgen.*] instruments. *)

val worker_seeds : seed:int -> n:int -> int64 array
(** The per-worker RNG seeds a run with [config.seed = seed] and
    [clients = n] uses: splitmix64-split streams, so distinct
    [(seed, index)] pairs never share a stream (the old
    [seed * 65599 + index] derivation collided). *)

val percentile : float array -> float -> float
(** [percentile sorted p]: the exact [p]-quantile of an ascending-sorted
    sample array (nearest-rank); [nan] on the empty array. *)

val pp_result : Format.formatter -> result -> unit
(** The human report ([dynvote loadgen] output). *)
