(** The volatile per-site lock with its self-release lease.

    A coordinator that dies mid-operation can never send [Unlock]; the
    lease is what frees its locks.  The arithmetic lives here, behind an
    explicit [now] parameter, so it can only ever see the injected
    monotonic clock ({!Dynvote_obs.Clock}) — and so tests can step a
    manual clock backwards and forwards and assert a lease still expires
    exactly once. *)

type t

val create : unit -> t
(** Unheld. *)

val try_acquire : t -> now:float -> lease:float -> op:int -> bool
(** Acquire for [op], renewing to [now + lease].  Succeeds when the lock
    is free, already held by [op] (refreshing the lease), or held under
    an expired lease. *)

val release : t -> op:int -> unit
(** Release if held by [op]; anyone else's lock is left alone. *)

val holder : t -> now:float -> int option
(** Who holds an unexpired lease at [now], if anyone. *)
