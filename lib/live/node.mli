(** One live site: a server thread behind a real socket, holding the
    (o, v, P) ensemble, the key-value data, and the volatile lock, all
    persisted through {!Persist} so a kill-and-restart recovers from
    disk.

    The node serves the peer protocol (state / lock / data / commit) and
    coordinates client operations itself, running the paper's protocol as
    genuine request/reply exchanges: volatile lock round, broadcast
    gather, majority-partition decision, verified data fetch, then the
    COMMIT wave (or an ABORT that releases the locks).  While a
    coordinator waits for its own replies it keeps serving incoming peer
    requests on the same connection, so concurrent coordinators never
    deadlock. *)

type config = {
  gather_timeout : float;  (** seconds to wait per gather round *)
  retries : int;  (** re-ask silent sites this many times *)
  backoff : float;  (** patience multiplier per retry, >= 1 *)
  lock_lease : float;
      (** seconds before an abandoned volatile lock self-releases (a
          coordinator that died mid-operation cannot unlock) *)
  lock_retries : int;  (** lock-round attempts before reporting busy *)
  lock_backoff : float;  (** seconds between lock-round attempts *)
  durable : bool;
      (** fsync ensemble and data on every commit ([true], the paper's
          stable-storage requirement); [false] keeps the atomic replace
          but skips the fsyncs — for throughput experiments only *)
  clock : unit -> float;
      (** every deadline, lease and backoff reads this clock; defaults to
          the monotonic {!Dynvote_obs.Clock.now} so wall-clock steps
          cannot expire (or immortalize) leases.  Injectable for tests. *)
  pipeline : int;
      (** client operations admitted concurrently (as effect-suspended
          fibers; a ticket turnstile keeps their protocol sections in
          admission order).  [1] — the default — is the fully sequential
          coordinator, frame-for-frame identical to earlier behaviour *)
  max_reuse : int;
      (** operations that may join an anchored lock round and decide
          against its cached gather before a fresh round is forced (the
          anchor also rotates at 0.4 x [lock_lease] regardless).  [0] —
          the default — disables anchoring: every operation runs its own
          lock round and gather *)
  shards : int;
      (** [> 0] turns on the sharded object space: every key is an
          independently-voted (o, v, P) object, persisted across this
          many per-site append logs, coordinated by group-quorum rounds
          that cover every key of a scheduler burst in one wire
          exchange.  [0] — the default — is the classic single-object
          engine, byte-identical on the wire *)
  resident : int;
      (** bound on keys materialized in volatile memory at once (the
          shard map's LRU capacity); evicted keys re-materialize from
          the shard logs on next touch *)
}

val default_config : config
(** 0.2 s gather rounds, 1 retry, backoff 2.0, 2 s lock lease, durable,
    monotonic clock, no pipelining ([pipeline = 1], [max_reuse = 0]),
    unsharded ([shards = 0], [resident = 4096]). *)

type t

exception Killed
(** Raised inside the node thread by a crash hook: the thread unwinds
    instantly, losing all volatile state — the deterministic stand-in for
    "the process died at this exact instant". *)

val boot :
  site:Site_set.site ->
  universe:Site_set.t ->
  flavor:Decision.flavor ->
  segment_of:(Site_set.site -> int) ->
  config:config ->
  obs:Dynvote_obs.Hub.t ->
  dir:string ->
  ?vfs:Vfs.t ->
  next_seq:(unit -> int) ->
  port:int ->
  was_restarted:bool ->
  unit ->
  t
(** Load the ensemble and data from [dir] (a corrupt or missing record —
    or an ensemble/data version mismatch, the residue of a persist that
    died between the two replaces — leaves the node {e amnesiac}: silent
    to state requests, refusing to coordinate until a RECOVER succeeds),
    connect to the switchboard on [port], and register.  A mid-log
    corrupt oplog — checksum-failing records with intact ones after them,
    damage no crash explains — boots the node straight into degraded
    mode.  [vfs] (default {!Dynvote.Vfs.real}) carries every
    stable-storage byte, so a fault-injecting filesystem can strike any
    single operation.  [was_restarted] clears the freshness claim until
    the node applies its next commit.  [obs] receives the node's
    counters, latency histogram and trace events (pass
    {!Dynvote_obs.Hub.noop} to compile them all down to a branch). *)

val serve : t -> unit
(** The node thread body: handle frames until the connection dies. *)

val encode_kvalue : string option -> string
(** The per-key oracle content encoding of the sharded object space:
    [""] for a never-written key, ["=" ^ v] for value [v] — injective,
    so the audit's content-fork scan never confuses "no value" with an
    empty write. *)

val site : t -> Site_set.site
val is_amnesiac : t -> bool

val degraded : t -> string option
(** [Some reason] when a storage failure has fenced this site read-only:
    silent to state and lock requests, refusing commits, answering every
    client request with {!Wire.Degraded}.  Cleared only by rebooting the
    site. *)

val set_commit_hook : t -> (sent:int -> total:int -> unit) option -> unit
(** Fired after each COMMIT send of a wave this node coordinates
    ([sent] of [total]); the hook may raise {!Killed} to strike the
    coordinator mid-commit. *)
