(** Orchestration of a live cluster: the switchboard, one server thread
    per site, client connections, fault injection, and the end-of-run
    safety audit that replays every node's on-disk operation log through
    the chaos {!Dynvote_chaos.Oracle}.

    All state lives under one directory ([dir/site-<k>/...]); {!create}
    seeds initial ensembles for sites that have none and reuses whatever
    a previous incarnation left behind, so a whole cluster can be
    stopped and resumed. *)

type t

val create :
  ?flavor:Decision.flavor ->
  ?segment_of:(Site_set.site -> int) ->
  ?config:Node.config ->
  ?client_timeout:float ->
  ?obs:Dynvote_obs.Hub.t ->
  ?vfs_of:(Site_set.site -> Vfs.t) ->
  universe:Site_set.t ->
  dir:string ->
  unit ->
  t
(** Start the switchboard and boot one node thread per site.  A site
    whose ensemble file already exists restarts from it (and is not
    fresh until its next commit); otherwise it is seeded with the
    paper's initial state (o = v = 1, P = universe, empty store at
    data version 1).  [client_timeout] (default 10 s) bounds every
    client call.

    [segment_of] defaults to point-to-point links (each site its own
    segment), so any partition is physically possible.  A coarser map
    declares shared-medium segments: the switchboard then refuses to
    split same-segment sites, and TDV tie-breaks see the co-location.

    [obs] defaults to a fresh live {!Dynvote_obs.Hub} shared by the
    switchboard and every node (including restarted ones); pass
    {!Dynvote_obs.Hub.noop} to run uninstrumented.

    [vfs_of] (default: {!Dynvote.Vfs.real} everywhere) picks the
    filesystem each site's stable storage goes through — a
    fault-injecting vfs on one site turns that site into the victim of a
    storage-fault experiment.  Restarted incarnations ask [vfs_of]
    again, so a closure over a mutable ref can repair the disk between
    incarnations. *)

val universe : t -> Site_set.t
val dir : t -> string

val obs : t -> Dynvote_obs.Hub.t
(** The hub all components of this cluster report into — where
    [dynvote stats] and the load generator read their numbers. *)

val port : t -> int

val backend : t -> string
(** The switchboard's readiness backend (["epoll"] or ["poll"]) —
    recorded in bench output. *)


val up_sites : t -> Site_set.t

val degraded : t -> Site_set.site -> string option
(** [Some reason] when the site's running node has fenced itself
    read-only after a storage failure; [None] for healthy or dead
    sites. *)

(** {2 Fault injection} *)

val partition : t -> Site_set.t list -> unit
(** Forwarded to {!Switchboard.partition} (segment-aware validation). *)

val heal : t -> unit

val kill : t -> Site_set.site -> unit
(** Sever the node's socket and join its thread: a process kill.  All
    volatile state (locks, amnesia-free store cache) dies; the three
    files survive. *)

val restart : t -> Site_set.site -> unit
(** Boot a fresh node thread for a killed site from its on-disk state.
    The node claims no freshness until it applies a commit; a corrupt
    record leaves it amnesiac until a RECOVER succeeds. *)

val kill_async : t -> Site_set.site -> unit
(** {!kill} without joining the victim's thread — safe to call from a
    commit hook running {e inside} another node's thread.  {!restart}
    reaps the thread. *)

val set_commit_hook :
  t -> Site_set.site -> (sent:int -> total:int -> unit) option -> unit
(** Install a fault-injection hook on the site's node: it fires after
    each COMMIT send of a wave that node coordinates.  Raising
    {!Node.Killed} from it strikes the coordinator itself; calling
    {!kill_async} strikes a participant mid-wave. *)

val strike_after : t -> Site_set.site -> int -> unit
(** Arm the deterministic mid-commit killer: the next COMMIT wave this
    site coordinates raises {!Node.Killed} after its [n]-th send, so
    only a prefix of the recipients hears the commit.  The thread dies
    exactly as under {!kill}; pair with {!restart}. *)

(** {2 Clients} *)

type client

val client : t -> client
(** Open a client connection through the switchboard.  A client is
    single-threaded: one outstanding operation at a time. *)

type reply = {
  status : Wire.status;
  value : string option;
  info : string;
  retries : int;  (** how many times the call moved to another site *)
}

val put :
  ?retries:int -> client -> at:Site_set.site -> key:string -> value:string -> reply
(** [retries] (default 0) bounds how many times an [Aborted] or
    [Degraded] reply is retried at another up site — {e with the same
    request number}, so a write whose first coordinator died mid-commit
    is deduplicated rather than applied twice.  [Granted] and [Denied]
    are definitive and never retried. *)

val get : ?retries:int -> client -> at:Site_set.site -> key:string -> reply

val recover_site : client -> Site_set.site -> reply
(** Ask a (restarted) site to run the paper's RECOVER protocol. *)

(** {2 Audit}

    The merged per-node logs, ordered by the global sequence stamp,
    replayed through the safety oracle; final on-disk stores feed the
    content-fork scan. *)

type audit = {
  oracle : Dynvote_chaos.Oracle.t;
  torn : Site_set.t;  (** sites whose log ended in a torn record *)
  corrupt : int;
      (** checksum-failing records found {e mid-log} (intact records
          after them) across all sites — damage an honest crash cannot
          produce *)
  dup_applies : int;
      (** request ids the merged history shows committing more than once
          — an exactly-once violation; counted across both the
          single-object and the sharded engine (the request-id space is
          global) *)
  records : int;
  keys : int;
      (** distinct keys of the sharded object space seen in the merged
          logs or the shard-log finals; [0] for a purely single-object
          run *)
  kviolations : (string * Dynvote_chaos.Oracle.violation) list;
      (** per-key oracle violations: every key replays through its own
          oracle (each key is an independent register), with its final
          per-site (data_version, content) states read offline from the
          shard logs *)
}

val check : t -> audit
(** Read every [oplog.dvl] and the final data blobs from disk.  Run only
    while the cluster is quiescent (no client operation in flight). *)

val check_dir : universe:Site_set.t -> dir:string -> audit
(** The same audit against a directory with no cluster running — what
    [dynvote loadgen --check] uses after the service stopped. *)

(** {2 Shutdown} *)

val shutdown : t -> unit
(** Close every connection, stop the broker, join all node threads. *)
