(* The crash-point recovery matrix: one small live cluster per cell,
   crashing a victim site at every persist point under every storage
   fault class and grading what recovery produces.  A cell is healthy
   when the victim either returns to full service (Recovered) or fences
   itself read-only and says so (Fenced); it fails when the majority
   stops serving (Unavailable) or — the one outcome the whole exercise
   exists to rule out — the audit finds damage nobody admitted to
   (Corrupt).

   Each cell is hermetic: its own directory, its own switchboard port,
   its own seeded fault-injection filesystem on the victim.  Cells are
   independent, so the sweep fans out over a domain pool; everything a
   cell prints into the table is deterministic (letters, not timings). *)

module Storage = Dynvote_chaos.Fault_plan.Storage
module Faultfs = Dynvote_faultfs.Faultfs
module Oracle = Dynvote_invariant.Spec
module Pool = Dynvote_exec.Pool
module Hub = Dynvote_obs.Hub
module Clock = Dynvote_obs.Clock
module Shard_store = Dynvote_shard.Shard_store

type point = { p_file : Storage.file_class; p_op : Storage.op }

(* Every stable-storage operation a commit performs: the atomic replace
   of the ensemble and of the data blob (write, fsync, rename, directory
   fsync — Codec.write_file_atomic's four steps) and the oplog append.
   Creates are excluded: a failed open of the temp file is
   indistinguishable from a failed first write, and reads only happen at
   boot (where every fault class already lands via the restart leg). *)
let replace_ops = [ Storage.Write; Storage.Fsync; Storage.Rename; Storage.Fsync_dir ]

let points =
  let replace file = List.map (fun op -> { p_file = file; p_op = op }) replace_ops in
  replace Storage.Ensemble
  @ replace Storage.Data
  @ [ { p_file = Storage.Oplog; p_op = Storage.Write } ]

(* The keyed store's compaction rewrite is a persist point too — one the
   cluster cells above never reach, because it fires at a record-count
   threshold of the store's own choosing. *)
let compaction_points =
  List.map (fun op -> { p_file = Storage.Shard; p_op = op }) replace_ops

let point_name p =
  Printf.sprintf "%s.%s" (Storage.file_name p.p_file) (Storage.op_name p.p_op)

type outcome =
  | Recovered  (** the victim serves writes again after restart + RECOVER *)
  | Fenced of string  (** the victim refuses service and says why *)
  | Unavailable of string  (** the healthy majority stopped serving *)
  | Corrupt of string  (** the audit found damage nobody admitted to *)

let outcome_letter = function
  | Recovered -> 'R'
  | Fenced _ -> 'F'
  | Unavailable _ -> 'U'
  | Corrupt _ -> 'C'

let ok = function
  | Recovered | Fenced _ -> true
  | Unavailable _ | Corrupt _ -> false

type cell = {
  c_point : point;
  c_fault : Storage.fault;
  c_outcome : outcome;
  c_recovery : float;  (** seconds from restart to the victim's verdict *)
  c_injected : int;  (** triggers that actually fired (0 = never reached) *)
}

let universe = Site_set.of_list [ 0; 1; 2; 3 ]
let victim = 0

(* Tight timeouts: a cell that loses a site must conclude in tenths of a
   second, not the default multi-second patience. *)
let cell_config =
  {
    Node.default_config with
    Node.gather_timeout = 0.05;
    retries = 1;
    backoff = 1.5;
    lock_lease = 1.0;
    lock_retries = 8;
    lock_backoff = 0.02;
  }

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let run_cell ~dir ~seed point fault =
  let cell_dir =
    Filename.concat dir
      (Printf.sprintf "%s-%s" (point_name point) (Storage.fault_name fault))
  in
  mkdir_p cell_dir;
  let ff = Faultfs.create ~seed () in
  let vfs_of site = if site = victim then Faultfs.vfs ff else Vfs.real in
  let cluster =
    Cluster.create ~config:cell_config ~client_timeout:1.5 ~obs:Hub.noop
      ~vfs_of ~universe ~dir:cell_dir ()
  in
  let client = Cluster.client cluster in
  (* A healthy baseline write, so every site holds post-initial data and
     the armed trigger cannot land on setup traffic. *)
  ignore (Cluster.put client ~at:1 ~key:"base" ~value:"baseline" : Cluster.reply);
  Faultfs.arm_next ff { Storage.fault; file = point.p_file; op = point.p_op; nth = 1 };
  (* The struck write: coordinated at the victim so its own persist path
     runs through every point; retries hop to healthy sites under the
     same request number, so a committed-then-lost ack dedups. *)
  ignore (Cluster.put ~retries:3 client ~at:victim ~key:"k1" ~value:"struck"
          : Cluster.reply);
  ignore (Cluster.put client ~at:1 ~key:"k2" ~value:"witness" : Cluster.reply);
  (* Power cut: kill the victim, then force its files back to what was
     genuinely durable (un-fsynced bytes gone, lying fsyncs exposed,
     volatile renames undone, log tail torn at a seeded-random cut). *)
  Cluster.kill cluster victim;
  Faultfs.simulate_crash ff;
  let t0 = Clock.now () in
  Cluster.restart cluster victim;
  ignore (Cluster.recover_site client victim : Cluster.reply);
  let verdict = Cluster.put client ~at:victim ~key:"k3" ~value:"after" in
  let recovery = Clock.now () -. t0 in
  let healthy = Cluster.put client ~at:1 ~key:"k4" ~value:"healthy" in
  let fenced_reason = Cluster.degraded cluster victim in
  Cluster.shutdown cluster;
  let audit = Cluster.check_dir ~universe ~dir:cell_dir in
  let outcome =
    if not (Oracle.is_safe audit.Cluster.oracle) then
      Corrupt
        (Printf.sprintf "oracle: %d violation(s)"
           (List.length (Oracle.violations audit.Cluster.oracle)))
    else if audit.Cluster.dup_applies > 0 then
      Corrupt
        (Printf.sprintf "%d request(s) applied more than once"
           audit.Cluster.dup_applies)
    else if audit.Cluster.corrupt > 0 && verdict.Cluster.status = Wire.Granted
    then
      (* Mid-log corruption with the victim still acking writes: the
         damage went unnoticed — exactly the silent failure the fence
         exists to prevent. *)
      Corrupt
        (Printf.sprintf "%d mid-log corrupt record(s) but the site kept serving"
           audit.Cluster.corrupt)
    else if healthy.Cluster.status <> Wire.Granted then
      Unavailable
        (Printf.sprintf "healthy site stopped serving: %s" healthy.Cluster.info)
    else
      match verdict.Cluster.status with
      | Wire.Granted -> Recovered
      | Wire.Degraded ->
          Fenced (Option.value ~default:verdict.Cluster.info fenced_reason)
      | Wire.Denied -> Fenced ("denied: " ^ verdict.Cluster.info)
      | Wire.Aborted ->
          Unavailable ("victim kept aborting: " ^ verdict.Cluster.info)
  in
  {
    c_point = point;
    c_fault = fault;
    c_outcome = outcome;
    c_recovery = recovery;
    c_injected = Faultfs.injected_total ff;
  }

(* A compaction cell needs no cluster: it drives one store to its
   compaction threshold with the fault armed on the rewrite itself, cuts
   the power, and regrades from a clean offline scan.  The store is
   opened [durable:false] — the mode in which the rewrite's own
   discipline is all that stands between a mid-flight fault and the
   durably-empty-log window — with the history explicitly fsynced before
   the strike, so everything up to the threshold is durable and any
   post-crash state older than that (or damaged) is corruption.

   [Fsync_lie] is deliberately not in a store-level sweep: a lying
   fsync makes the compacted bytes silently volatile, and with no peer
   to refetch from a single store cannot detect the resulting empty
   log.  The cluster-level matrix covers that class — recovery refetches
   from the healthy majority. *)
let compaction_faults =
  [ Storage.Eio; Storage.Enospc; Storage.Short_write; Storage.Fsync_fail;
    Storage.Rename_loss; Storage.Crash ]

let run_compaction_cell ~dir ~seed point fault =
  let cell_dir =
    Filename.concat dir
      (Printf.sprintf "%s-%s" (point_name point) (Storage.fault_name fault))
  in
  mkdir_p cell_dir;
  let ff = Faultfs.create ~seed () in
  let store, _ =
    Shard_store.open_store ~vfs:(Faultfs.vfs ff) ~durable:false ~dir:cell_dir
      ~site:0 ~shards:1 ()
  in
  let state v =
    {
      Shard_store.op_no = v;
      version = v;
      partition = Site_set.of_list [ 0 ];
      data_version = v;
      value = Some (Printf.sprintf "v%d" v);
    }
  in
  (* One record short of the compaction threshold, all made durable. *)
  for v = 1 to 1023 do
    Shard_store.commit store ~key:"k" ~rid:v (state v)
  done;
  Shard_store.fsync store;
  (* The 1024th commit appends (shard write #1 since arming) and then
     crosses the threshold: the rewrite's temp write, fsync, rename and
     directory fsync are the next shard-class operations. *)
  let nth = match point.p_op with Storage.Write -> 2 | _ -> 1 in
  Faultfs.arm_next ff { Storage.fault; file = point.p_file; op = point.p_op; nth };
  let died =
    match Shard_store.commit store ~key:"k" ~rid:1024 (state 1024) with
    | () -> false
    | exception Vfs.Fault _ -> false (* surfaced error; the process lives *)
    | exception Vfs.Crash_point _ -> true
  in
  (* The promoter: a later durable sidecar replace fsyncs the same
     directory, making any pending rename durable — the sequence that
     turns an unsynced compaction rename into a durably empty log. *)
  if not died then
    (try Shard_store.save_rids ~fsync:true store []
     with Vfs.Fault _ | Vfs.Crash_point _ -> ());
  Shard_store.close store;
  Faultfs.simulate_crash ff;
  let t0 = Clock.now () in
  let rescan, info = Shard_store.open_store ~dir:cell_dir ~site:0 ~shards:1 () in
  let recovered = Shard_store.lookup rescan "k" in
  Shard_store.close rescan;
  let recovery = Clock.now () -. t0 in
  let outcome =
    if info.Shard_store.corrupt > 0 then
      Corrupt (Printf.sprintf "%d mid-log corrupt record(s)" info.Shard_store.corrupt)
    else
      match recovered with
      | Some st when st.Shard_store.value = Some "v1024" -> Recovered
      | Some st when st.Shard_store.value = Some "v1023" ->
          Recovered (* the struck record was volatile; fsynced history intact *)
      | Some st ->
          Corrupt
            (Printf.sprintf "fsynced history lost: recovered %s"
               (Option.value ~default:"<none>" st.Shard_store.value))
      | None -> Corrupt "key vanished: shard log durably empty"
  in
  {
    c_point = point;
    c_fault = fault;
    c_outcome = outcome;
    c_recovery = recovery;
    c_injected = Faultfs.injected_total ff;
  }

let run ?jobs ?(seed = 1) ?(faults = Storage.all_faults)
    ?(points = points) ~dir () =
  let cells =
    List.concat_map (fun p -> List.map (fun f -> (p, f)) faults) points
    (* Shard cells grade only their meaningful fault classes (see
       [compaction_faults]); dropped combinations render as '-'. *)
    |> List.filter (fun (p, f) ->
           p.p_file <> Storage.Shard || List.mem f compaction_faults)
  in
  (* Per-cell seeds differ so torn-tail cuts are not correlated across
     cells; they stay a pure function of (seed, point, fault) position. *)
  let numbered = List.mapi (fun i pf -> (i, pf)) cells in
  Pool.with_pool ?jobs (fun pool ->
      Pool.map_list pool
        (fun (i, (p, f)) ->
          let seed = seed + (997 * i) in
          if p.p_file = Storage.Shard then run_compaction_cell ~dir ~seed p f
          else run_cell ~dir ~seed p f)
        numbered)

(* The letter table: rows are persist points, columns fault classes.
   Deterministic by construction — no timings, no counts — so the cram
   test can pin it byte-for-byte. *)
let pp_table ppf cells =
  let faults =
    List.sort_uniq compare (List.map (fun c -> c.c_fault) cells)
  in
  let row_points =
    List.filter
      (fun p -> List.exists (fun c -> c.c_point = p) cells)
      (points @ compaction_points)
  in
  let width = 12 in
  let row label columns =
    let b = Buffer.create 80 in
    Buffer.add_string b (Printf.sprintf "%-20s" label);
    List.iter (fun c -> Buffer.add_string b (Printf.sprintf "%-*s" width c)) columns;
    (* No trailing blanks: expected-output tests pin these lines. *)
    let s = Buffer.contents b in
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    Fmt.pf ppf "%s@," (String.sub s 0 !n)
  in
  Fmt.pf ppf "@[<v>";
  row "persist point" (List.map Storage.fault_name faults);
  List.iter
    (fun p ->
      row (point_name p)
        (List.map
           (fun f ->
             match
               List.find_opt (fun c -> c.c_point = p && c.c_fault = f) cells
             with
             | Some c -> String.make 1 (outcome_letter c.c_outcome)
             | None -> "-")
           faults))
    row_points;
  let bad = List.filter (fun c -> not (ok c.c_outcome)) cells in
  List.iter
    (fun c ->
      let detail =
        match c.c_outcome with
        | Corrupt d | Unavailable d | Fenced d -> d
        | Recovered -> ""
      in
      Fmt.pf ppf "FAIL %s x %s: %s@," (point_name c.c_point)
        (Storage.fault_name c.c_fault) detail)
    bad;
  Fmt.pf ppf
    "%d cells: R recovered, F fenced (explicit, safe), U unavailable, C corrupt@,"
    (List.length cells);
  Fmt.pf ppf "%s@]"
    (if bad = [] then "matrix: PASS (every cell recovered or fenced)"
     else Printf.sprintf "matrix: FAIL (%d cell(s) unavailable or corrupt)"
            (List.length bad))
