(* One live site.  The node is a single thread, but inside it client
   operations run as effect-suspended fibers under a small scheduler: an
   operation that would block on the network performs [Await_frame] and
   parks; the scheduler keeps reading the switchboard connection, serving
   peer requests, resuming whichever fiber the arriving frame belongs to,
   and admitting up to [config.pipeline] client operations concurrently.
   A ticket turnstile serializes the gather -> decide -> commit -> outcome
   critical sections, so pipelining changes scheduling, never the order
   of effects.  With the defaults (pipeline = 1, max_reuse = 0) the node
   is frame-for-frame identical to a fully sequential coordinator.

   Two fast paths pay for the machinery:

   - Lock anchoring: the first operation's lock round becomes an
     {e anchor} that later pipelined operations join without any lock
     traffic; the anchor rotates (fresh round under a new op id) after
     [max_reuse] joins or 0.4 x the lock lease, keeping well inside the
     lease at every peer.
   - Gather reuse: the anchor caches its gather; joined operations decide
     against the cached view, which is kept current by our own commit
     waves and invalidated by any inbound commit, a denial, a fetch
     failure, or rotation.

   Persistence mirrors the msgsim node but through real files: the
   ensemble goes through {!Dynvote.Codec}'s atomic save on every applied
   commit, the data blob rides with it, and the append-only operation log
   records commits, write intents and client-visible outcomes for the
   {!Dynvote_chaos.Oracle} replay.  Ordering rule: an outcome record
   takes its global sequence number *before* the turnstile advances and
   the locks are released, so no later operation that could have observed
   this one's effects can be stamped earlier.  Inbound commit frames are
   coalesced — a run of consecutive commits is applied volatile-first and
   persisted once — which is crash-equivalent to applying the prefix that
   reached disk.

   Storage failures never kill the thread and never produce a lie: a
   persist that faults mid-way rolls the volatile state back and fences
   the site into degraded (read-only) mode — silent to gathers, refusing
   commits and client coordination — because a site that cannot persist
   must not vote or ack.  Only a restart against repaired storage
   un-fences it. *)

module SMap = Map.Make (String)
module IMap = Map.Make (Int)
module Metrics = Dynvote_obs.Metrics
module Trace = Dynvote_obs.Trace
module Hub = Dynvote_obs.Hub
module Shard_store = Dynvote_shard.Shard_store
module Shard_map = Dynvote_shard.Shard_map

type config = {
  gather_timeout : float;
  retries : int;
  backoff : float;
  lock_lease : float;
  lock_retries : int;
  lock_backoff : float;
  durable : bool;
  clock : unit -> float;
  pipeline : int;
  max_reuse : int;
  shards : int;
      (* > 0 switches the node to the sharded object space: every key an
         independently-voted (o, v, P) object in [shards] per-site
         append logs, group-quorum rounds over the keyed wire frames.
         0 — the default — is the single-object engine, frame-identical
         to the unsharded protocol. *)
  resident : int;  (* LRU residency cap of the per-key object map *)
}

let default_config =
  {
    gather_timeout = 0.2;
    retries = 1;
    backoff = 2.0;
    lock_lease = 2.0;
    lock_retries = 8;
    lock_backoff = 0.05;
    durable = true;
    clock = Dynvote_obs.Clock.now;
    pipeline = 1;
    max_reuse = 0;
    shards = 0;
    resident = 4096;
  }

(* --- request ids ----------------------------------------------------

   A client request is globally identified by (client endpoint id,
   per-client request number), packed into one integer.  Each site
   remembers, per client, the highest request number it has applied a
   write for; a retried request at or below that mark has already
   committed and is acknowledged without re-applying.  The table is
   persisted inside the data blob and travels with every data fetch, so
   dedup memory is exactly as durable — and exactly as distributed — as
   the data it guards. *)

let make_rid ~client ~req = (client lsl 32) lor (req land 0xFFFFFFFF)
let rid_client rid = rid lsr 32
let rid_req rid = rid land 0xFFFFFFFF

let rid_seen rids rid =
  match IMap.find_opt (rid_client rid) rids with
  | Some seen -> rid_req rid <= seen
  | None -> false

let rid_add rids rid =
  IMap.update (rid_client rid)
    (function None -> Some (rid_req rid) | Some seen -> Some (max seen (rid_req rid)))
    rids

let rid_list rids = IMap.bindings rids

let rids_of_list pairs =
  List.fold_left
    (fun m (client, req) ->
      IMap.update client
        (function None -> Some req | Some seen -> Some (max seen req))
        m)
    IMap.empty pairs

(* Instrument handles resolved once at boot; every update after that is
   an atomic increment (or nothing, under the noop hub). *)
type counters = {
  c_granted : Metrics.counter;
  c_denied : Metrics.counter;
  c_aborted : Metrics.counter;
  c_lock_rounds : Metrics.counter;
  c_lock_denied : Metrics.counter;
  c_gathers : Metrics.counter;
  c_gather_reused : Metrics.counter;
  c_fetches : Metrics.counter;
  c_fetch_failures : Metrics.counter;
  c_commit_waves : Metrics.counter;
  c_commits_applied : Metrics.counter;
  c_storage_faults : Metrics.counter;
  c_degraded_entered : Metrics.counter;
  c_degraded_refused : Metrics.counter;
  c_dedup_hits : Metrics.counter;
  c_oplog_corrupt : Metrics.counter;
  h_op : Metrics.histogram;
  h_inflight : Metrics.histogram;
  h_commit_batch : Metrics.histogram;
}

let make_counters (hub : Hub.t) =
  let m = hub.Hub.metrics in
  {
    c_granted = Metrics.counter m "live.op.granted";
    c_denied = Metrics.counter m "live.op.denied";
    c_aborted = Metrics.counter m "live.op.aborted";
    c_lock_rounds = Metrics.counter m "live.lock.rounds";
    c_lock_denied = Metrics.counter m "live.lock.denied";
    c_gathers = Metrics.counter m "live.gather.rounds";
    c_gather_reused = Metrics.counter m "live.gather.reused";
    c_fetches = Metrics.counter m "live.fetch.attempts";
    c_fetch_failures = Metrics.counter m "live.fetch.failures";
    c_commit_waves = Metrics.counter m "live.commit.waves";
    c_commits_applied = Metrics.counter m "live.commit.applied";
    c_storage_faults = Metrics.counter m "live.storage.faults";
    c_degraded_entered = Metrics.counter m "live.degraded.entered";
    c_degraded_refused = Metrics.counter m "live.degraded.refused";
    c_dedup_hits = Metrics.counter m "live.dedup.hits";
    c_oplog_corrupt = Metrics.counter m "live.oplog.corrupt";
    h_op = Metrics.histogram m "live.node.op.seconds";
    h_inflight = Metrics.histogram m "live.rounds.inflight";
    h_commit_batch = Metrics.histogram m "live.commit.batch";
  }

(* Shard instruments exist only in sharded mode, so unsharded snapshots
   stay byte-identical to what they always printed. *)
type kcounters = {
  g_resident : Metrics.gauge;  (* live entries in the object map *)
  g_keys : Metrics.gauge;  (* distinct keys ever committed here *)
  c_materialized : Metrics.counter;
  c_evicted : Metrics.counter;
  h_group : Metrics.histogram;  (* keys per group-quorum round *)
}

let make_kcounters (hub : Hub.t) =
  let m = hub.Hub.metrics in
  {
    g_resident = Metrics.gauge m "live.shard.resident";
    g_keys = Metrics.gauge m "live.shard.keys";
    c_materialized = Metrics.counter m "live.shard.materialized";
    c_evicted = Metrics.counter m "live.shard.evicted";
    h_group = Metrics.histogram m "live.shard.group.batch";
  }

exception Killed

(* The switchboard severed our socket (crash) or went away entirely. *)
exception Dead

(* --- operation fibers -----------------------------------------------

   A coordinating operation suspends wherever the old code re-entered a
   blocking receive loop.  [Await_frame] parks the fiber until a frame
   satisfies [match_reply] (resumed with [Some _]) or [deadline] passes
   (resumed with [None]); [wake_on_unlock] additionally resumes it — with
   [None], as if timed out — when a rival's [Unlock] lands, so lock
   backoff ends the moment the contended lock frees.  [Await_turn] parks
   the fiber until the turnstile serves its ticket. *)

type _ Effect.t +=
  | Await_frame : {
      deadline : float;
      match_reply : Wire.envelope -> 'a option;
      wake_on_unlock : bool;
    }
      -> 'a option Effect.t
  | Await_turn : int -> unit Effect.t

type fwaiter =
  | FW : {
      deadline : float;
      match_reply : Wire.envelope -> 'a option;
      wake_on_unlock : bool;
      k : ('a option, unit) Effect.Deep.continuation;
    }
      -> fwaiter

type twaiter = TW of int * (unit, unit) Effect.Deep.continuation

type t = {
  site : Site_set.site;
  universe : Site_set.t;
  n_sites : int;
  ctx : Operation.ctx;
  config : config;
  dir : string;
  vfs : Vfs.t;
  next_seq : unit -> int;
  conn : Wire.conn;
  oplog : Persist.log;
  mutable replica : Replica.t;
  mutable data_version : int;
  mutable store : string SMap.t;
  mutable rids : int IMap.t; (* client -> highest applied write req *)
  mutable amnesiac : bool;
  mutable fresh : bool;
  mutable degraded : string option; (* Some reason = fenced read-only *)
  (* Volatile lock; its lease is what frees a lock abandoned by a
     coordinator that died mid-operation. *)
  lock : Lease.t;
  obs : Hub.t;
  ctrs : counters;
  mutable round : int;
  mutable op_counter : int;
  mutable commit_hook : (sent:int -> total:int -> unit) option;
  (* Client requests arriving while [inflight] is at the pipeline bound
     are parked here and admitted as operations complete. *)
  pending_clients : Wire.envelope Queue.t;
  (* Scheduler state: parked fibers, the admission count, the ticket
     turnstile, the lock anchor with its cached gather, and the inbound
     commit-coalescing buffer. *)
  mutable fwaiters : fwaiter list;
  mutable twaiters : twaiter list;
  mutable unlock_pulse : bool;
  mutable inflight : int;
  mutable ticket_next : int;
  mutable ticket_serving : int;
  mutable anchor : int option;
  mutable anchor_since : float;
  mutable reuse_count : int;
  mutable gcache : (Site_set.t * Replica.t array * Site_set.t) option;
  commit_batch :
    (int * int * Site_set.t * (string * string) option * int) Queue.t;
  (* Outbound staging: in pipelined mode frames accumulate here and leave
     in one write per scheduler burst, so a peer receives a whole burst's
     commits in one wakeup and coalesces their persists.  In the serial
     default every frame is written immediately — byte-for-byte the old
     behaviour, which the crash tests' deterministic strike points rely
     on. *)
  out : Buffer.t;
  staged : bool;
  (* The data blob (entries + request table) on disk matches the volatile
     store when false: a persist covering only read commits can skip the
     blob rewrite, because reads advance the ensemble but never the
     data. *)
  mutable data_dirty : bool;
  (* --- sharded object space (config.shards > 0) --- *)
  kstore : Shard_store.t option;
  kmap : Shard_map.t option;
  (* One volatile lease per locked key; entries leave the table when
     released, so the table size tracks held locks, not the key space. *)
  klocks : (string, Lease.t) Hashtbl.t;
  (* The group anchor: one lock round covering every key of a scheduler
     burst.  Later operations on those keys join it (local lease refresh
     only) until rotation, exactly like the single-object anchor. *)
  mutable kanchor : (int * string list) option;
  (* Per-key cached gather filled by the anchor's group state round. *)
  kgcache : (string, Site_set.t * Replica.t array * Site_set.t) Hashtbl.t;
  kcommit_batch :
    (string * int * int * Site_set.t * string option * int) Queue.t;
  (* Keys of admitted-but-unfinished keyed operations, counted so the
     next group lock round can cover them in the same wire exchange. *)
  inflight_keys : (string, int) Hashtbl.t;
  kctrs : kcounters option;
}

let sharded t = t.config.shards > 0

let site t = t.site
let is_amnesiac t = t.amnesiac
let degraded t = t.degraded
let set_commit_hook t hook = t.commit_hook <- hook

let degrade t reason =
  if t.degraded = None then begin
    t.degraded <- Some reason;
    Metrics.incr t.ctrs.c_degraded_entered;
    Hub.event t.obs (Trace.Degraded { site = t.site; reason })
  end

(* Run one stable-storage action, converting its failure modes: an
   injected crash point dies like the process it models, every other
   fault comes back as [Error] for the caller to fence on. *)
let storage t f =
  try Ok (f ()) with
  | Vfs.Crash_point _ -> raise Killed
  | Vfs.Fault { op; path; reason } ->
      Metrics.incr t.ctrs.c_storage_faults;
      Hub.event t.obs (Trace.Storage_fault { site = t.site; op; path });
      Error reason
  | Sys_error reason ->
      Metrics.incr t.ctrs.c_storage_faults;
      Hub.event t.obs (Trace.Storage_fault { site = t.site; op = "io"; path = "" });
      Error reason

let boot ~site ~universe ~flavor ~segment_of ~config ~obs ~dir ?(vfs = Vfs.real)
    ~next_seq ~port ~was_restarted () =
  ignore (Persist.ensure_site_dir ~dir site : string);
  let n_sites = Site_set.max_elt universe + 1 in
  let ctx = Operation.make_ctx ~flavor ~segment_of (Ordering.default n_sites) in
  let ctrs = make_counters obs in
  (* A corrupt or missing record on either file leaves the node amnesiac:
     it holds no ensemble it could safely vote with.  So does a version
     mismatch between the two — the residue of a persist that died
     between the ensemble replace and the data replace; neither file is
     corrupt, but together they are not a state this site ever held. *)
  let replica, data_version, store, rids, amnesiac =
    match Codec.load_result ~vfs ~path:(Persist.ensemble_path ~dir site) () with
    | Error _ -> (Replica.initial universe, 0, SMap.empty, IMap.empty, true)
    | Ok replica -> (
        match Persist.load_data_result ~vfs ~path:(Persist.data_path ~dir site) () with
        | Error _ -> (replica, 0, SMap.empty, IMap.empty, true)
        | Ok (version, _, _) when version <> Replica.version replica ->
            (replica, 0, SMap.empty, IMap.empty, true)
        | Ok (version, entries, rids) ->
            ( replica,
              version,
              List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty entries,
              rids_of_list rids,
              false ))
  in
  (* Sharded object space: the per-key state lives in the shard logs,
     not the single ensemble/data pair.  A missing shards directory on a
     *restart* is wiped storage — the per-key lazy-initial rule would
     let this site claim (1, 1, all) for keys whose history it lost, so
     it boots amnesiac.  A first boot with no directory is genuinely
     fresh (it never voted on anything) and initial is the truth. *)
  let kstore, kmap, kctrs, kamnesiac, kcorrupt =
    if config.shards = 0 then (None, None, None, false, 0)
    else begin
      let kamnesiac =
        was_restarted && not (Sys.file_exists (Shard_store.shards_dir ~dir ~site))
      in
      let store, scan =
        Shard_store.open_store ~vfs ~durable:config.durable ~dir ~site
          ~shards:config.shards ()
      in
      let kctrs = make_kcounters obs in
      let map =
        Shard_map.create
          ~on_materialize:(fun () -> Metrics.incr kctrs.c_materialized)
          ~on_evict:(fun () -> Metrics.incr kctrs.c_evicted)
          ~store ~resident:config.resident ~universe ()
      in
      Metrics.set_gauge kctrs.g_keys (float_of_int (Shard_store.key_count store));
      ( Some store,
        Some map,
        Some kctrs,
        kamnesiac,
        scan.Shard_store.corrupt )
    end
  in
  (* The keyed applied-request table recovered from the shard logs joins
     the (empty, in sharded mode) blob table: one global dedup memory
     per site, whichever engine is running. *)
  let krids =
    match kstore with
    | Some store -> rids_of_list (Shard_store.rid_list store)
    | None -> IMap.empty
  in
  (* A checksum-failing record in the *middle* of the log — intact
     records after it — is damage no crash explains; the history has a
     hole and this site must not present itself as a witness.  The same
     verdict applies to mid-log damage in any shard log. *)
  let oplog_scan = Persist.scan_log ~vfs ~path:(Persist.oplog_path ~dir site) () in
  let degraded =
    if oplog_scan.Persist.corrupt > 0 then begin
      Metrics.add ctrs.c_oplog_corrupt oplog_scan.Persist.corrupt;
      Some
        (Printf.sprintf "oplog corrupt mid-log (%d record%s)"
           oplog_scan.Persist.corrupt
           (if oplog_scan.Persist.corrupt = 1 then "" else "s"))
    end
    else if kcorrupt > 0 then begin
      Metrics.add ctrs.c_oplog_corrupt kcorrupt;
      Some
        (Printf.sprintf "shard log corrupt mid-log (%d record%s)" kcorrupt
           (if kcorrupt = 1 then "" else "s"))
    end
    else None
  in
  (* A purely torn tail (honest crash damage, nothing mid-log) is cut
     off before reopening for append: new records written after a
     partial frame would be unreadable, and the next scan would call
     them mid-log corruption.  A corrupt log is left untouched — it is
     evidence, and this node is fencing itself anyway. *)
  if oplog_scan.Persist.torn && oplog_scan.Persist.corrupt = 0 then
    vfs.Vfs.truncate
      (Persist.oplog_path ~dir site)
      oplog_scan.Persist.valid_prefix;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.setsockopt sock Unix.TCP_NODELAY true
   with e -> (try Unix.close sock with Unix.Unix_error _ -> ()); raise e);
  let conn = Wire.conn sock in
  Wire.send conn { Wire.src = site; dst = Wire.broker_id; payload = Wire.Hello_site { site } };
  (match Wire.recv ~clock:config.clock ~deadline:(config.clock () +. 5.0) conn with
  | Ok { Wire.payload = Wire.Welcome _; _ } -> ()
  | _ ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      failwith (Printf.sprintf "live node %d: switchboard handshake failed" site));
  let oplog = Persist.open_log ~vfs ~path:(Persist.oplog_path ~dir site) () in
  let t =
    {
      site;
      universe;
      n_sites;
      ctx;
      config;
      dir;
      vfs;
      next_seq;
      conn;
      oplog;
      replica;
      data_version;
      store;
      rids = IMap.union (fun _ a b -> Some (max a b)) rids krids;
      amnesiac = (if config.shards > 0 then kamnesiac else amnesiac);
      fresh =
        (not was_restarted)
        && not (if config.shards > 0 then kamnesiac else amnesiac);
      degraded = None;
      lock = Lease.create ();
      obs;
      ctrs;
      round = 0;
      op_counter = 0;
      commit_hook = None;
      pending_clients = Queue.create ();
      fwaiters = [];
      twaiters = [];
      unlock_pulse = false;
      inflight = 0;
      ticket_next = 0;
      ticket_serving = 0;
      anchor = None;
      anchor_since = neg_infinity;
      reuse_count = 0;
      gcache = None;
      commit_batch = Queue.create ();
      out = Buffer.create 4096;
      staged = config.pipeline > 1 || config.max_reuse > 0;
      data_dirty = true;
      kstore;
      kmap;
      klocks = Hashtbl.create 64;
      kanchor = None;
      kgcache = Hashtbl.create 256;
      kcommit_batch = Queue.create ();
      inflight_keys = Hashtbl.create 64;
      kctrs;
    }
  in
  (match degraded with Some reason -> degrade t reason | None -> ());
  t

let send_to t dst payload =
  let env = { Wire.src = t.site; dst; payload } in
  if t.staged then Buffer.add_string t.out (Wire.encode env)
  else try Wire.send t.conn env with Unix.Unix_error _ -> raise Dead

(* Push every staged frame in one write.  The broker side never blocks
   (its connections are nonblocking queues), so a blocking write here
   always drains. *)
let flush_out t =
  if Buffer.length t.out > 0 then begin
    let bytes = Buffer.to_bytes t.out in
    Buffer.clear t.out;
    let fd = Wire.fd t.conn in
    let len = Bytes.length bytes in
    let written = ref 0 in
    try
      while !written < len do
        match Unix.write fd bytes !written (len - !written) with
        | 0 -> raise Dead
        | n -> written := !written + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done
    with Unix.Unix_error _ -> raise Dead
  end

let persist t =
  let fsync = t.config.durable in
  Codec.write_file_atomic ~vfs:t.vfs ~fsync
    ~path:(Persist.ensemble_path ~dir:t.dir t.site)
    (Codec.encode_replica t.replica);
  if t.data_dirty then begin
    Persist.save_data ~vfs:t.vfs ~fsync ~rids:(rid_list t.rids)
      ~path:(Persist.data_path ~dir:t.dir t.site)
      ~version:t.data_version (SMap.bindings t.store);
    t.data_dirty <- false
  end

(* Log or fence: a record that cannot reach the oplog leaves a hole in
   the history this site would later present — better to stop presenting
   it. *)
let log t record =
  match storage t (fun () -> Persist.append t.oplog record) with
  | Ok () -> ()
  | Error reason -> degrade t ("oplog append failed: " ^ reason)

let blob t = Persist.encode_entries (SMap.bindings t.store)

(* Monotone install, as in the paper's COMMIT: stale or duplicated
   commits can never regress the ensemble.  The ensemble (and any
   piggybacked write) hits disk before the log claims it was applied, so
   a crash between the two under-reports a commit rather than inventing
   one.  A persist that faults rolls the volatile state back to match
   the disk and fences the site: acking a commit we could not persist
   would make our next vote a lie. *)
let apply_commit t ~op_no ~version ~partition ~put ~rid =
  if t.degraded <> None then Metrics.incr t.ctrs.c_degraded_refused
  else if op_no > Replica.op_no t.replica then begin
    let rollback =
      (t.replica, t.data_version, t.store, t.rids, t.amnesiac, t.fresh)
    in
    t.replica <- Replica.with_commit t.replica ~op_no ~version ~partition;
    (match put with
    | Some (key, value) ->
        t.store <- SMap.add key value t.store;
        t.data_version <- version;
        if rid <> 0 then t.rids <- rid_add t.rids rid;
        t.data_dirty <- true
    | None -> ());
    t.amnesiac <- false;
    t.fresh <- true;
    match storage t (fun () -> persist t) with
    | Ok () ->
        Metrics.incr t.ctrs.c_commits_applied;
        log t (Persist.Log_commit { seq = t.next_seq (); op_no; version; partition; rid })
    | Error reason ->
        let replica, data_version, store, rids, amnesiac, fresh = rollback in
        t.replica <- replica;
        t.data_version <- data_version;
        t.store <- store;
        t.rids <- rids;
        t.amnesiac <- amnesiac;
        t.fresh <- fresh;
        t.data_dirty <- true;
        degrade t ("persist failed: " ^ reason)
  end

(* Apply a coalesced run of inbound commits: every applicable commit
   installs volatile-first, then ONE persist covers the batch, then each
   applied commit logs in arrival order.  Crash-equivalent to the
   one-persist-per-commit discipline — a crash before the persist
   under-reports the whole run, never part of a record.  Any inbound
   commit means a rival coordinated while we were unlocked, so the
   anchor's cached gather (if any) is stale: drop it. *)
let flush_commits t =
  if not (Queue.is_empty t.commit_batch) then begin
    let rollback =
      (t.replica, t.data_version, t.store, t.rids, t.amnesiac, t.fresh)
    in
    let applied = ref [] in
    while not (Queue.is_empty t.commit_batch) do
      let op_no, version, partition, put, rid = Queue.pop t.commit_batch in
      if t.degraded <> None then Metrics.incr t.ctrs.c_degraded_refused
      else if op_no > Replica.op_no t.replica then begin
        t.replica <- Replica.with_commit t.replica ~op_no ~version ~partition;
        (match put with
        | Some (key, value) ->
            t.store <- SMap.add key value t.store;
            t.data_version <- version;
            if rid <> 0 then t.rids <- rid_add t.rids rid;
            t.data_dirty <- true
        | None -> ());
        t.amnesiac <- false;
        t.fresh <- true;
        applied := (op_no, version, partition, rid) :: !applied
      end
    done;
    t.gcache <- None;
    match !applied with
    | [] -> ()
    | applied -> (
        let applied = List.rev applied in
        match storage t (fun () -> persist t) with
        | Ok () ->
            Metrics.observe t.ctrs.h_commit_batch
              (float_of_int (List.length applied));
            List.iter
              (fun (op_no, version, partition, rid) ->
                Metrics.incr t.ctrs.c_commits_applied;
                log t
                  (Persist.Log_commit
                     { seq = t.next_seq (); op_no; version; partition; rid }))
              applied
        | Error reason ->
            let replica, data_version, store, rids, amnesiac, fresh = rollback in
            t.replica <- replica;
            t.data_version <- data_version;
            t.store <- store;
            t.rids <- rids;
            t.amnesiac <- amnesiac;
            t.fresh <- fresh;
            t.data_dirty <- true;
            degrade t ("persist failed: " ^ reason))
  end

let try_lock t op =
  Lease.try_acquire t.lock ~now:(t.config.clock ()) ~lease:t.config.lock_lease
    ~op

let release_lock t op = Lease.release t.lock ~op

(* --- sharded object space -------------------------------------------

   Every key is an independently-voted (o, v, P) object.  The volatile
   state of the working set lives in the bounded {!Shard_map}; commits
   write through to the per-shard append logs; the wire protocol runs
   group-quorum rounds that cover every key of a scheduler burst in one
   exchange. *)

let kmap_exn t = match t.kmap with Some m -> m | None -> assert false
let kstore_exn t = match t.kstore with Some s -> s | None -> assert false

(* Per-key oracle content: injective over (never written | written v). *)
let encode_kvalue = function None -> "" | Some v -> "=" ^ v

let klock t key =
  match Hashtbl.find_opt t.klocks key with
  | Some l -> l
  | None ->
      let l = Lease.create () in
      Hashtbl.add t.klocks key l;
      l

let try_klock t key op =
  Lease.try_acquire (klock t key) ~now:(t.config.clock ())
    ~lease:t.config.lock_lease ~op

let release_klock t key op =
  match Hashtbl.find_opt t.klocks key with
  | None -> ()
  | Some l ->
      Lease.release l ~op;
      (* Freed keys leave the table: it sizes with held locks, not with
         the key space. *)
      if Lease.holder l ~now:(t.config.clock ()) = None then
        Hashtbl.remove t.klocks key

let refresh_kgauges t =
  match (t.kctrs, t.kmap, t.kstore) with
  | Some k, Some map, Some store ->
      Metrics.set_gauge k.g_resident (float_of_int (Shard_map.resident map));
      Metrics.set_gauge k.g_keys (float_of_int (Shard_store.key_count store))
  | _ -> ()

(* Keyed analogue of {!flush_commits}: every applicable commit installs
   volatile-first into its entry, then all their records append in one
   sweep with ONE fsync, then each logs in arrival order.  A fault rolls
   the volatile entries back and fences; records that already reached
   disk stay — disk ahead of volatile is forward progress, and the
   monotone install re-derives it on restart.  Entries are pinned for
   the duration so a later materialization in the same batch cannot
   evict one we hold a rollback reference to. *)
let flush_kcommits t =
  if not (Queue.is_empty t.kcommit_batch) then begin
    let map = kmap_exn t and store = kstore_exn t in
    let rollback = ref [] in
    let rollback_rids = t.rids and rollback_fresh = t.fresh in
    let pinned = ref [] in
    let applied = ref [] in
    while not (Queue.is_empty t.kcommit_batch) do
      let key, op_no, version, partition, value, rid = Queue.pop t.kcommit_batch in
      if t.degraded <> None then Metrics.incr t.ctrs.c_degraded_refused
      else begin
        let e = Shard_map.find map key in
        if op_no > Replica.op_no (Shard_map.replica e) then begin
          Shard_map.pin e;
          pinned := e :: !pinned;
          rollback :=
            (e, Shard_map.replica e, Shard_map.data_version e, Shard_map.value e)
            :: !rollback;
          Shard_map.set_replica e
            (Replica.with_commit (Shard_map.replica e) ~op_no ~version ~partition);
          (match value with
          | Some v ->
              Shard_map.set_value e (Some v);
              Shard_map.set_data_version e version;
              if rid <> 0 then t.rids <- rid_add t.rids rid
          | None -> ());
          t.fresh <- true;
          applied :=
            (key, op_no, version, partition, rid, Shard_map.state_of e)
            :: !applied
        end
      end
    done;
    (match List.rev !applied with
    | [] -> ()
    | applied -> (
        match
          storage t (fun () ->
              List.iter
                (fun (key, _, _, _, rid, st) ->
                  Shard_store.commit store ~key ~rid st)
                applied;
              if t.config.durable then Shard_store.fsync store)
        with
        | Ok () ->
            Metrics.observe t.ctrs.h_commit_batch
              (float_of_int (List.length applied));
            List.iter
              (fun (key, op_no, version, partition, rid, _) ->
                Metrics.incr t.ctrs.c_commits_applied;
                log t
                  (Persist.Log_kcommit
                     { seq = t.next_seq (); key; op_no; version; partition; rid }))
              applied
        | Error reason ->
            (* [rollback] is latest-first, so an entry committed twice in
               this batch ends restored to its oldest prior state. *)
            List.iter
              (fun (e, replica, data_version, value) ->
                Shard_map.set_replica e replica;
                Shard_map.set_data_version e data_version;
                Shard_map.set_value e value)
              !rollback;
            t.rids <- rollback_rids;
            t.fresh <- rollback_fresh;
            degrade t ("shard persist failed: " ^ reason)));
    List.iter Shard_map.unpin !pinned;
    refresh_kgauges t
  end

(* Direct keyed apply (own share of a commit wave, or a stray inbound
   delivery): a one-element batch through the same discipline. *)
let apply_kcommit t ~key ~op_no ~version ~partition ~value ~rid =
  Queue.add (key, op_no, version, partition, value, rid) t.kcommit_batch;
  flush_kcommits t

(* Serve one frame of the peer protocol.

   A degraded site answers nothing that could count as a vote: state
   requests and lock requests go unanswered (to the coordinator it looks
   down, so new partitions form without it), commits are refused.  Data
   requests are still served — they are read-only, and the fetcher
   verifies the version before installing. *)
let serve_protocol t (env : Wire.envelope) =
  match env.Wire.payload with
  | Wire.State_request { round } ->
      (* An amnesiac site must not vote: a guessed ensemble could be
         counted.  It (and a fenced site) abstains explicitly, so the
         coordinator excludes it without waiting out the gather. *)
      if t.amnesiac || t.degraded <> None then
        send_to t env.Wire.src (Wire.Abstain { round })
      else
        send_to t env.Wire.src
          (Wire.State_reply { round; fresh = t.fresh; replica = t.replica })
  | Wire.Lock_request { op } ->
      if t.degraded = None then
        send_to t env.Wire.src (Wire.Lock_reply { op; granted = try_lock t op })
      else send_to t env.Wire.src (Wire.Abstain { round = op })
  | Wire.Unlock { op } ->
      release_lock t op;
      (* A rival freed its locks: fibers backing off a denied lock round
         should retry now rather than sleep out their deadline. *)
      t.unlock_pulse <- true
  | Wire.Data_request { round } ->
      send_to t env.Wire.src
        (Wire.Data_reply
           {
             round;
             version = t.data_version;
             entries = SMap.bindings t.store;
             rids = rid_list t.rids;
           })
  | Wire.Commit { op_no; version; partition; put; rid } ->
      (* Normally intercepted and coalesced by the scheduler; kept as the
         direct path for any stray delivery. *)
      apply_commit t ~op_no ~version ~partition ~put ~rid
  | Wire.KLock_request { op; keys } ->
      (* All-or-nothing over the whole group, like the single lock: any
         key already held by a rival refuses the round and releases what
         this round acquired, so rival groups cannot deadlock. *)
      if t.degraded <> None || t.kmap = None then
        send_to t env.Wire.src (Wire.Abstain { round = op })
      else begin
        let acquired = ref [] in
        let ok =
          List.for_all
            (fun key ->
              if try_klock t key op then begin
                acquired := key :: !acquired;
                true
              end
              else false)
            keys
        in
        if not ok then List.iter (fun key -> release_klock t key op) !acquired;
        send_to t env.Wire.src (Wire.Lock_reply { op; granted = ok })
      end
  | Wire.KUnlock { op; keys } ->
      List.iter (fun key -> release_klock t key op) keys;
      t.unlock_pulse <- true
  | Wire.KState_request { round; keys } -> (
      match t.kmap with
      | Some map when t.degraded = None && not t.amnesiac ->
          (* A key this site never committed reports the paper's initial
             state — the lazy-materialization rule, sound because a
             non-amnesiac site that had seen the key would have it in
             its shard logs. *)
          let states =
            List.map
              (fun key -> (key, Shard_map.replica (Shard_map.find map key)))
              keys
          in
          send_to t env.Wire.src
            (Wire.KState_reply { round; fresh = t.fresh; states })
      | _ -> send_to t env.Wire.src (Wire.Abstain { round }))
  | Wire.KCommit { key; op_no; version; partition; value; rid } ->
      (* Normally intercepted and coalesced by the scheduler; kept as the
         direct path for any stray delivery. *)
      if t.kmap <> None then
        apply_kcommit t ~key ~op_no ~version ~partition ~value ~rid
  | Wire.KData_request { round; key } -> (
      match t.kmap with
      | Some map ->
          let entry = Shard_map.find map key in
          send_to t env.Wire.src
            (Wire.KData_reply
               {
                 round;
                 key;
                 version = Shard_map.data_version entry;
                 value = Shard_map.value entry;
                 rids = rid_list t.rids;
               })
      | None -> ())
  | Wire.Client_put _ | Wire.Client_get _ | Wire.Client_recover _ ->
      Queue.add env t.pending_clients
  | Wire.Hello_site _ | Wire.Hello_client | Wire.Welcome _ | Wire.State_reply _
  | Wire.Lock_reply _ | Wire.Data_reply _ | Wire.Client_reply _ | Wire.Abstain _
  | Wire.KState_reply _ | Wire.KData_reply _ ->
      (* Stray replies of a finished or abandoned exchange. *)
      ()

(* Park this fiber until [deadline] for a frame satisfying [match_reply];
   the scheduler keeps the connection drained meanwhile. *)
let await _t ~deadline ~match_reply =
  Effect.perform (Await_frame { deadline; match_reply; wake_on_unlock = false })

let peers t = Site_set.remove t.site t.universe

(* The volatile lock round: all-or-nothing over the peers that answer.
   Silent peers are simply unreachable — they hold no lock and take no
   part in the gather either.  Any refusal releases everything acquired
   (and our own), so two rivals cannot deadlock; they just retry. *)
let lock_round t op =
  Metrics.incr t.ctrs.c_lock_rounds;
  Hub.event t.obs (Trace.Lock_round_start { site = t.site; op });
  if not (try_lock t op) then begin
    Metrics.incr t.ctrs.c_lock_denied;
    Hub.event t.obs (Trace.Lock_denied { site = t.site; op });
    `Denied
  end
  else begin
    Site_set.iter (fun dst -> send_to t dst (Wire.Lock_request { op })) (peers t);
    let replies = Hashtbl.create 8 in
    let abstained = Hashtbl.create 4 in
    let deadline = t.config.clock () +. t.config.gather_timeout in
    let want = Site_set.cardinal (peers t) in
    let rec collect () =
      if Hashtbl.length replies + Hashtbl.length abstained < want then
        match
          await t ~deadline ~match_reply:(fun env ->
              match env.Wire.payload with
              | Wire.Lock_reply { op = o; granted } when o = op ->
                  Some (env.Wire.src, `Vote granted)
              | Wire.Abstain { round } when round = op ->
                  (* A fenced site holds no lock and casts no vote; its
                     answer only stops the wait. *)
                  Some (env.Wire.src, `Abstain)
              | _ -> None)
        with
        | Some (src, `Vote granted) ->
            Hashtbl.replace replies src granted;
            collect ()
        | Some (src, `Abstain) ->
            Hashtbl.replace abstained src ();
            collect ()
        | None -> ()
    in
    collect ();
    let all_granted = Hashtbl.fold (fun _ granted acc -> acc && granted) replies true in
    if all_granted then `Granted
    else begin
      Site_set.iter (fun dst -> send_to t dst (Wire.Unlock { op })) (peers t);
      release_lock t op;
      Metrics.incr t.ctrs.c_lock_denied;
      Hub.event t.obs (Trace.Lock_denied { site = t.site; op });
      `Denied
    end
  end

let unlock_all t op =
  Site_set.iter (fun dst -> send_to t dst (Wire.Unlock { op })) (peers t);
  release_lock t op

(* START: broadcast a state request and gather replies under the bounded
   retry/backoff discipline of the msgsim Deadline model.  Freshness is
   distributed here: each reply carries the replier's own claim.  Returns
   (reachable, states, fresh). *)
let gather t =
  t.round <- t.round + 1;
  let round = t.round in
  let replies = Hashtbl.create 8 in
  let abstained = Hashtbl.create 4 in
  let missing () =
    Site_set.filter
      (fun s ->
        (s <> t.site)
        && (not (Hashtbl.mem replies s))
        && not (Hashtbl.mem abstained s))
      t.universe
  in
  let rec attempt n patience =
    let absent = missing () in
    if not (Site_set.is_empty absent) then begin
      Site_set.iter (fun dst -> send_to t dst (Wire.State_request { round })) absent;
      let deadline = t.config.clock () +. patience in
      let rec collect () =
        if not (Site_set.is_empty (missing ())) then
          match
            await t ~deadline ~match_reply:(fun env ->
                match env.Wire.payload with
                | Wire.State_reply { round = r; fresh; replica } when r = round ->
                    Some (env.Wire.src, `State (fresh, replica))
                | Wire.Abstain { round = r } when r = round ->
                    (* Fenced or amnesiac: counts as reached-but-voteless,
                       exactly like silence, minus the timeout. *)
                    Some (env.Wire.src, `Abstain)
                | _ -> None)
          with
          | Some (src, `State (fresh, replica)) ->
              Hashtbl.replace replies src (fresh, replica);
              collect ()
          | Some (src, `Abstain) ->
              Hashtbl.replace abstained src ();
              collect ()
          | None -> ()
      in
      collect ();
      if n < t.config.retries then attempt (n + 1) (patience *. t.config.backoff)
    end
  in
  attempt 0 t.config.gather_timeout;
  let states = Array.make t.n_sites t.replica in
  let self = if t.amnesiac then Site_set.empty else Site_set.singleton t.site in
  let self_fresh = if t.fresh && not t.amnesiac then self else Site_set.empty in
  let reachable, fresh =
    Hashtbl.fold
      (fun src (fresh, replica) (reach, fr) ->
        states.(src) <- replica;
        (Site_set.add src reach, if fresh then Site_set.add src fr else fr))
      replies (self, self_fresh)
  in
  Metrics.incr t.ctrs.c_gathers;
  Hub.event t.obs
    (Trace.Gather
       {
         site = t.site;
         round;
         reachable = Site_set.cardinal reachable;
         fresh = Site_set.cardinal fresh;
       });
  (reachable, states, fresh)

(* Verified data fetch: ask the up-to-date sites in turn until a snapshot
   of at least [want_version] lands.  The install is wholesale — local
   data may be the residue of an uncommitted write (or amnesiac garbage)
   whatever its version number says — and brings the applied-request
   table with it. *)
let fetch_data t ~sources ~want_version =
  let sources = Site_set.to_list sources in
  let n_sources = List.length sources in
  let attempts = max t.config.retries (n_sources - 1) in
  let rec attempt n patience =
    if n > attempts then false
    else begin
      let src = List.nth sources (n mod n_sources) in
      t.round <- t.round + 1;
      let round = t.round in
      Metrics.incr t.ctrs.c_fetches;
      send_to t src (Wire.Data_request { round });
      let deadline = t.config.clock () +. patience in
      match
        await t ~deadline ~match_reply:(fun env ->
            match env.Wire.payload with
            | Wire.Data_reply { round = r; version; entries; rids } when r = round ->
                Some (version, entries, rids)
            | _ -> None)
      with
      | Some (version, entries, rids) when version >= want_version ->
          t.store <-
            List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty entries;
          t.data_version <- version;
          t.rids <- rids_of_list rids;
          t.data_dirty <- true;
          Hub.event t.obs (Trace.Data_fetch { site = t.site; source = src; ok = true });
          true
      | Some _ | None ->
          Metrics.incr t.ctrs.c_fetch_failures;
          Hub.event t.obs
            (Trace.Data_fetch { site = t.site; source = src; ok = false });
          attempt (n + 1) (patience *. t.config.backoff)
    end
  in
  attempt 0 t.config.gather_timeout

(* The COMMIT wave.  The coordinator applies its own share through the
   same monotone install as everyone else; the hook between sends is the
   crash point — {!Killed} unwinds the whole thread, leaving the prefix
   of recipients that already heard the commit, held locks to expire by
   lease, and no outcome record: exactly a coordinator dead mid-wave. *)
let commit_wave t ~recipients ~op_no ~version ~partition ~put ~rid =
  let total = Site_set.cardinal recipients in
  Metrics.incr t.ctrs.c_commit_waves;
  Hub.event t.obs
    (Trace.Commit_wave { site = t.site; op_no; recipients = total });
  let sent = ref 0 in
  Site_set.iter
    (fun dst ->
      if dst = t.site then apply_commit t ~op_no ~version ~partition ~put ~rid
      else send_to t dst (Wire.Commit { op_no; version; partition; put; rid });
      incr sent;
      match t.commit_hook with
      | Some hook ->
          (* The strike point models "died between two sends": frames
             already sent must genuinely be on the wire when it fires. *)
          flush_out t;
          hook ~sent:!sent ~total
      | None -> ())
    recipients

let reply_client t ~client ~req status value info =
  (match status with
  | Wire.Granted -> Metrics.incr t.ctrs.c_granted
  | Wire.Denied -> Metrics.incr t.ctrs.c_denied
  | Wire.Aborted -> Metrics.incr t.ctrs.c_aborted
  | Wire.Degraded -> Metrics.incr t.ctrs.c_degraded_refused);
  send_to t client (Wire.Client_reply { req; status; value; info })

let denial_text denial = Fmt.str "%a" Decision.pp_denial denial

(* --- ticket turnstile -----------------------------------------------

   Pipelined operations run their protocol sections in strict admission
   order: each takes a ticket on admission and may not gather, commit or
   log its outcome until the turnstile serves it.  The turn passes only
   AFTER the outcome record has taken its global sequence number — the
   audit's ordering rule — with an idempotent flag so the Fun.protect
   backstop cannot double-advance. *)

let take_turn t =
  let ticket = t.ticket_next in
  t.ticket_next <- ticket + 1;
  if t.ticket_serving <> ticket then Effect.perform (Await_turn ticket)

let pass_turn t passed =
  if not !passed then begin
    passed := true;
    t.ticket_serving <- t.ticket_serving + 1
  end

(* --- lock anchor ----------------------------------------------------- *)

let release_anchor t =
  match t.anchor with
  | Some a ->
      unlock_all t a;
      t.anchor <- None;
      t.gcache <- None
  | None -> ()

(* Hold the anchor between operations only while reuse is enabled and
   more work is already queued; with the defaults this releases exactly
   where the sequential coordinator called [unlock_all].  ([inflight]
   still counts the calling fiber, so [<= 1] means "no one behind me".) *)
let maybe_release t =
  if
    t.config.max_reuse = 0
    || (t.inflight <= 1 && Queue.is_empty t.pending_clients)
    || t.degraded <> None
  then release_anchor t

(* Our own commit wave advances the cached gather in place of a fresh
   one: every recipient now holds the committed ensemble and is fresh. *)
let note_commit t ~recipients ~op_no ~version ~partition =
  match t.gcache with
  | Some (reachable, states, fresh) ->
      Site_set.iter
        (fun s ->
          states.(s) <- Replica.with_commit states.(s) ~op_no ~version ~partition)
        recipients;
      t.gcache <- Some (reachable, states, Site_set.union fresh recipients)
  | None -> ()

(* --- group quorum rounds ---------------------------------------------

   One lock round and one state round cover every key a scheduler burst
   touches: the group is the current key plus the keys of every admitted
   and every queued client operation.  Operations behind the acquirer
   then join the anchor — a local lease refresh, zero wire traffic — and
   decide against the cached per-key gather. *)

let group_cap = 128

let build_group t key =
  let seen = Hashtbl.create 16 in
  let count = ref 0 in
  let group = ref [] in
  let add k =
    if !count < group_cap && not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      incr count;
      group := k :: !group
    end
  in
  add key;
  Hashtbl.iter (fun k n -> if n > 0 then add k) t.inflight_keys;
  Queue.iter
    (fun env ->
      match env.Wire.payload with
      | Wire.Client_put { key = k; _ } | Wire.Client_get { key = k; _ } -> add k
      | _ -> ())
    t.pending_clients;
  List.rev !group

(* Group lock round: local leases for every key, then one KLock_request
   broadcast.  All-or-nothing exactly like {!lock_round}. *)
let klock_round t op keys =
  Metrics.incr t.ctrs.c_lock_rounds;
  Hub.event t.obs (Trace.Lock_round_start { site = t.site; op });
  let acquired = ref [] in
  let self_ok =
    List.for_all
      (fun key ->
        if try_klock t key op then begin
          acquired := key :: !acquired;
          true
        end
        else false)
      keys
  in
  if not self_ok then begin
    List.iter (fun key -> release_klock t key op) !acquired;
    Metrics.incr t.ctrs.c_lock_denied;
    Hub.event t.obs (Trace.Lock_denied { site = t.site; op });
    `Denied
  end
  else begin
    Site_set.iter
      (fun dst -> send_to t dst (Wire.KLock_request { op; keys }))
      (peers t);
    let replies = Hashtbl.create 8 in
    let abstained = Hashtbl.create 4 in
    let deadline = t.config.clock () +. t.config.gather_timeout in
    let want = Site_set.cardinal (peers t) in
    let rec collect () =
      if Hashtbl.length replies + Hashtbl.length abstained < want then
        match
          await t ~deadline ~match_reply:(fun env ->
              match env.Wire.payload with
              | Wire.Lock_reply { op = o; granted } when o = op ->
                  Some (env.Wire.src, `Vote granted)
              | Wire.Abstain { round } when round = op ->
                  Some (env.Wire.src, `Abstain)
              | _ -> None)
        with
        | Some (src, `Vote granted) ->
            Hashtbl.replace replies src granted;
            collect ()
        | Some (src, `Abstain) ->
            Hashtbl.replace abstained src ();
            collect ()
        | None -> ()
    in
    collect ();
    let all_granted =
      Hashtbl.fold (fun _ granted acc -> acc && granted) replies true
    in
    if all_granted then `Granted
    else begin
      Site_set.iter
        (fun dst -> send_to t dst (Wire.KUnlock { op; keys }))
        (peers t);
      List.iter (fun key -> release_klock t key op) keys;
      Metrics.incr t.ctrs.c_lock_denied;
      Hub.event t.obs (Trace.Lock_denied { site = t.site; op });
      `Denied
    end
  end

(* Group gather: one KState_request names every key; each replier
   answers with its ensemble for all of them (initial for keys it never
   committed).  Fills the per-key gather cache the joined operations
   decide against. *)
let kgather t keys =
  t.round <- t.round + 1;
  let round = t.round in
  let map = kmap_exn t in
  let replies = Hashtbl.create 8 in
  let abstained = Hashtbl.create 4 in
  let missing () =
    Site_set.filter
      (fun s ->
        (s <> t.site)
        && (not (Hashtbl.mem replies s))
        && not (Hashtbl.mem abstained s))
      t.universe
  in
  let rec attempt n patience =
    let absent = missing () in
    if not (Site_set.is_empty absent) then begin
      Site_set.iter
        (fun dst -> send_to t dst (Wire.KState_request { round; keys }))
        absent;
      let deadline = t.config.clock () +. patience in
      let rec collect () =
        if not (Site_set.is_empty (missing ())) then
          match
            await t ~deadline ~match_reply:(fun env ->
                match env.Wire.payload with
                | Wire.KState_reply { round = r; fresh; states } when r = round ->
                    Some (env.Wire.src, `State (fresh, states))
                | Wire.Abstain { round = r } when r = round ->
                    Some (env.Wire.src, `Abstain)
                | _ -> None)
          with
          | Some (src, `State (fresh, states)) ->
              Hashtbl.replace replies src (fresh, states);
              collect ()
          | Some (src, `Abstain) ->
              Hashtbl.replace abstained src ();
              collect ()
          | None -> ()
      in
      collect ();
      if n < t.config.retries then attempt (n + 1) (patience *. t.config.backoff)
    end
  in
  attempt 0 t.config.gather_timeout;
  let self = if t.amnesiac then Site_set.empty else Site_set.singleton t.site in
  let self_fresh = if t.fresh && not t.amnesiac then self else Site_set.empty in
  let reachable, fresh =
    Hashtbl.fold
      (fun src (fresh_claim, _) (reach, fr) ->
        (Site_set.add src reach, if fresh_claim then Site_set.add src fr else fr))
      replies (self, self_fresh)
  in
  List.iter
    (fun key ->
      let states =
        Array.make t.n_sites (Shard_map.replica (Shard_map.find map key))
      in
      Hashtbl.iter
        (fun src (_, kstates) ->
          match List.assoc_opt key kstates with
          | Some replica -> states.(src) <- replica
          | None -> ())
        replies;
      Hashtbl.replace t.kgcache key (reachable, states, fresh))
    keys;
  Metrics.incr t.ctrs.c_gathers;
  Hub.event t.obs
    (Trace.Gather
       {
         site = t.site;
         round;
         reachable = Site_set.cardinal reachable;
         fresh = Site_set.cardinal fresh;
       })

(* Per-key verified fetch.  The imported applied-request table is made
   durable immediately (the rids sidecar): committing a read after the
   merge and then crashing must not forget which writes were already
   applied, or a client retry would re-apply one. *)
let kfetch t ~key ~entry ~sources ~want_version =
  let store = kstore_exn t in
  let sources = Site_set.to_list sources in
  let n_sources = List.length sources in
  let attempts = max t.config.retries (n_sources - 1) in
  let rec attempt n patience =
    if n > attempts then false
    else begin
      let src = List.nth sources (n mod n_sources) in
      t.round <- t.round + 1;
      let round = t.round in
      Metrics.incr t.ctrs.c_fetches;
      send_to t src (Wire.KData_request { round; key });
      let deadline = t.config.clock () +. patience in
      match
        await t ~deadline ~match_reply:(fun env ->
            match env.Wire.payload with
            | Wire.KData_reply { round = r; key = k; version; value; rids }
              when r = round && k = key ->
                Some (version, value, rids)
            | _ -> None)
      with
      | Some (version, value, rids) when version >= want_version -> (
          Shard_map.set_value entry value;
          Shard_map.set_data_version entry version;
          t.rids <-
            List.fold_left
              (fun m (client, req) ->
                IMap.update client
                  (function None -> Some req | Some seen -> Some (max seen req))
                  m)
              t.rids rids;
          match
            storage t (fun () ->
                Shard_store.save_rids ~fsync:t.config.durable store rids)
          with
          | Ok () ->
              Hub.event t.obs
                (Trace.Data_fetch { site = t.site; source = src; ok = true });
              true
          | Error reason ->
              degrade t ("rid sidecar persist failed: " ^ reason);
              false)
      | Some _ | None ->
          Metrics.incr t.ctrs.c_fetch_failures;
          Hub.event t.obs
            (Trace.Data_fetch { site = t.site; source = src; ok = false });
          attempt (n + 1) (patience *. t.config.backoff)
    end
  in
  attempt 0 t.config.gather_timeout

let kcommit_wave t ~recipients ~key ~op_no ~version ~partition ~value ~rid =
  let total = Site_set.cardinal recipients in
  Metrics.incr t.ctrs.c_commit_waves;
  Hub.event t.obs
    (Trace.Commit_wave { site = t.site; op_no; recipients = total });
  let sent = ref 0 in
  Site_set.iter
    (fun dst ->
      if dst = t.site then
        apply_kcommit t ~key ~op_no ~version ~partition ~value ~rid
      else
        send_to t dst (Wire.KCommit { key; op_no; version; partition; value; rid });
      incr sent;
      match t.commit_hook with
      | Some hook ->
          flush_out t;
          hook ~sent:!sent ~total
      | None -> ())
    recipients

let note_kcommit t ~key ~recipients ~op_no ~version ~partition =
  match Hashtbl.find_opt t.kgcache key with
  | Some (reachable, states, fresh) ->
      Site_set.iter
        (fun s ->
          states.(s) <- Replica.with_commit states.(s) ~op_no ~version ~partition)
        recipients;
      Hashtbl.replace t.kgcache key
        (reachable, states, Site_set.union fresh recipients)
  | None -> ()

let release_kanchor t =
  match t.kanchor with
  | Some (a, keys) ->
      Site_set.iter
        (fun dst -> send_to t dst (Wire.KUnlock { op = a; keys }))
        (peers t);
      List.iter (fun key -> release_klock t key a) keys;
      t.kanchor <- None;
      Hashtbl.reset t.kgcache
  | None -> ()

let maybe_release_k t =
  if
    t.config.max_reuse = 0
    || (t.inflight <= 1 && Queue.is_empty t.pending_clients)
    || t.degraded <> None
  then release_kanchor t

(* One client operation, coordinated at this node: lock round (with
   bounded retry on rivalry) or anchor join, gather (or cached view),
   decide, fetch if stale, COMMIT wave, outcome record, unlock, reply —
   the paper's protocol as genuine request/reply exchanges, running as a
   suspendable fiber. *)
let client_op t ~client ~req kind =
  let kind_tag =
    match kind with `Read _ -> `Read | `Write _ -> `Write | `Recover -> `Recover
  in
  let rid = match kind_tag with `Write -> make_rid ~client ~req | _ -> 0 in
  match t.degraded with
  | Some reason ->
      (* Fenced: serve nothing that could ack or mutate.  A get still
         reports the local value — visibly marked Degraded so the client
         retries at a live site. *)
      let value =
        match kind with `Read key -> SMap.find_opt key t.store | _ -> None
      in
      reply_client t ~client ~req Wire.Degraded value ("degraded: " ^ reason)
  | None ->
  if t.amnesiac && kind_tag <> `Recover then
    reply_client t ~client ~req Wire.Denied None
      "amnesiac: stable record lost, RECOVER first"
  else begin
    t.op_counter <- t.op_counter + 1;
    let op = (t.site lsl 24) lor (t.op_counter land 0xFFFFFF) in
    let passed = ref false in
    take_turn t;
    Fun.protect ~finally:(fun () -> pass_turn t passed) @@ fun () ->
    (* Site-dependent backoff skew breaks retry symmetry between rivals. *)
    let skew = 1.0 +. (0.13 *. float_of_int (t.site mod 7)) in
    let acquire_fresh () =
      let rec acquire i =
        match lock_round t op with
        | `Granted -> true
        | `Denied when i < t.config.lock_retries ->
            (* Back off without going deaf: the scheduler keeps serving
               protocol frames, and a rival's Unlock ends the sleep. *)
            let deadline =
              t.config.clock ()
              +. (t.config.lock_backoff *. float_of_int (i + 1) *. skew)
            in
            ignore
              (Effect.perform
                 (Await_frame
                    {
                      deadline;
                      match_reply = (fun _ -> (None : unit option));
                      wake_on_unlock = true;
                    })
                : unit option);
            acquire (i + 1)
        | `Denied -> false
      in
      if acquire 0 then begin
        t.anchor <- Some op;
        t.anchor_since <- t.config.clock ();
        t.reuse_count <- 0;
        t.gcache <- None;
        true
      end
      else false
    in
    (* Rotate the anchor before any peer's lease could lapse under it:
       after [max_reuse] joins, at 0.4 x the lease's age, and always for
       RECOVER (membership changes deserve a fresh round). *)
    let rotation_due () =
      t.reuse_count >= t.config.max_reuse
      || t.config.clock () -. t.anchor_since > 0.4 *. t.config.lock_lease
      || kind_tag = `Recover
    in
    let locked =
      match t.anchor with
      | Some a when (not (rotation_due ())) && try_lock t a ->
          (* Join the anchor: the locks are already held cluster-wide
             under [a]; refreshing our own lease is the only touch.  (A
             failed refresh means the lease lapsed and a rival took the
             local lock — the anchor is gone.) *)
          t.reuse_count <- t.reuse_count + 1;
          true
      | Some a ->
          unlock_all t a;
          t.anchor <- None;
          t.gcache <- None;
          acquire_fresh ()
      | None -> acquire_fresh ()
    in
    if not locked then
      reply_client t ~client ~req Wire.Denied None
        "busy: rival operation holds the locks"
    else begin
      let decide () =
        match t.gcache with
        | Some (reachable, states, fresh) when kind_tag <> `Recover ->
            Metrics.incr t.ctrs.c_gather_reused;
            (reachable, states, fresh, true)
        | _ ->
            let reachable, states, fresh = gather t in
            if t.config.max_reuse > 0 && kind_tag <> `Recover then
              t.gcache <- Some (reachable, states, fresh);
            (reachable, states, fresh, false)
      in
      let rec evaluate_round retried =
        let reachable, states, fresh, cached = decide () in
        match Operation.evaluate t.ctx states ~fresh ~reachable () with
        | Decision.Denied _ when cached && not retried ->
            (* The cached view denied us; it may merely be stale.  One
               fresh gather settles it. *)
            t.gcache <- None;
            evaluate_round true
        | decision -> (decision, states)
      in
      match evaluate_round false with
      | Decision.Denied denial, _ ->
          (match kind_tag with
          | `Write ->
              log t
                (Persist.Log_outcome
                   { seq = t.next_seq (); kind = `Write; granted = false; content = None; rid })
          | `Read ->
              log t
                (Persist.Log_outcome
                   { seq = t.next_seq (); kind = `Read; granted = false; content = None; rid })
          | `Recover -> ());
          pass_turn t passed;
          maybe_release t;
          reply_client t ~client ~req Wire.Denied None (denial_text denial)
      | Decision.Granted g, states ->
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          let in_s = Site_set.mem t.site g.Decision.s in
          let abort info =
            log t
              (Persist.Log_outcome
                 {
                   seq = t.next_seq ();
                   kind = kind_tag;
                   granted = false;
                   content = None;
                   rid;
                 });
            pass_turn t passed;
            t.gcache <- None;
            maybe_release t;
            reply_client t ~client ~req Wire.Aborted None info
          in
          (* A coordinator inside the majority partition can still hold
             stale data — the residue of a persist that died between the
             ensemble and data replaces on an earlier incarnation.  Trust
             the version number, not the membership. *)
          let must_fetch = (not in_s) || t.data_version < v in
          let guard_degraded () =
            (* The operation's own apply (or log) may have fenced us
               mid-flight; the reply must say so rather than ack. *)
            match t.degraded with
            | Some reason ->
                pass_turn t passed;
                release_anchor t;
                reply_client t ~client ~req Wire.Degraded None ("degraded: " ^ reason);
                true
            | None -> false
          in
          (match kind with
          | `Read key ->
              if must_fetch && not (fetch_data t ~sources:g.Decision.s ~want_version:v)
              then abort "verified data fetch failed"
              else begin
                commit_wave t ~recipients:g.Decision.s ~op_no:(o + 1) ~version:v
                  ~partition:g.Decision.s ~put:None ~rid:0;
                note_commit t ~recipients:g.Decision.s ~op_no:(o + 1) ~version:v
                  ~partition:g.Decision.s;
                if not (guard_degraded ()) then begin
                  let value = SMap.find_opt key t.store in
                  log t
                    (Persist.Log_outcome
                       {
                         seq = t.next_seq ();
                         kind = `Read;
                         granted = true;
                         content = Some (blob t);
                         rid = 0;
                       });
                  pass_turn t passed;
                  maybe_release t;
                  reply_client t ~client ~req Wire.Granted value ""
                end
              end
          | `Write (key, value) ->
              if must_fetch && not (fetch_data t ~sources:g.Decision.s ~want_version:v)
              then abort "verified data fetch failed"
              else if rid_seen t.rids rid then begin
                (* The retried request already committed (here or fetched
                   from the partition's table): acknowledge, do not
                   re-apply. *)
                Metrics.incr t.ctrs.c_dedup_hits;
                log t
                  (Persist.Log_outcome
                     {
                       seq = t.next_seq ();
                       kind = `Write;
                       granted = true;
                       content = None;
                       rid;
                     });
                pass_turn t passed;
                maybe_release t;
                reply_client t ~client ~req Wire.Granted None
                  "duplicate: write already committed"
              end
              else begin
                (* The intent records the post-write content before the
                   first COMMIT can escape; a coordinator dead mid-wave
                   leaves intent-without-outcome = maybe-committed. *)
                let new_blob =
                  Persist.encode_entries (SMap.bindings (SMap.add key value t.store))
                in
                log t (Persist.Log_intent { seq = t.next_seq (); content = new_blob });
                commit_wave t ~recipients:g.Decision.s ~op_no:(o + 1)
                  ~version:(v + 1) ~partition:g.Decision.s ~put:(Some (key, value))
                  ~rid;
                note_commit t ~recipients:g.Decision.s ~op_no:(o + 1)
                  ~version:(v + 1) ~partition:g.Decision.s;
                if not (guard_degraded ()) then begin
                  log t
                    (Persist.Log_outcome
                       {
                         seq = t.next_seq ();
                         kind = `Write;
                         granted = true;
                         content = Some new_blob;
                         rid;
                       });
                  pass_turn t passed;
                  maybe_release t;
                  reply_client t ~client ~req Wire.Granted None ""
                end
              end
          | `Recover ->
              let must_fetch =
                t.amnesiac || Replica.version t.replica < v || t.data_version < v
              in
              if must_fetch && not (fetch_data t ~sources:g.Decision.s ~want_version:v)
              then abort "verified data fetch failed"
              else begin
                let recipients = Site_set.add t.site g.Decision.s in
                commit_wave t ~recipients ~op_no:(o + 1) ~version:v
                  ~partition:recipients ~put:None ~rid:0;
                if not (guard_degraded ()) then begin
                  log t
                    (Persist.Log_outcome
                       {
                         seq = t.next_seq ();
                         kind = `Recover;
                         granted = true;
                         content = None;
                         rid = 0;
                       });
                  pass_turn t passed;
                  maybe_release t;
                  reply_client t ~client ~req Wire.Granted None ""
                end
              end)
    end
  end

(* A keyed client operation over the sharded object space.  Same shape
   as {!client_op} — turnstile ticket, anchor join or fresh acquisition,
   cached-gather decide with one retry, verified fetch, commit wave —
   but the quorum rounds are group rounds: acquiring the anchor locks
   and gathers every key the current burst touches, and operations
   behind it join with zero wire traffic. *)
let client_kop t ~client ~req ~key kind =
  let kind_tag = match kind with `Read -> `Read | `Write _ -> `Write in
  let rid = match kind_tag with `Write -> make_rid ~client ~req | _ -> 0 in
  match t.degraded with
  | Some reason ->
      let value =
        match (kind_tag, t.kmap) with
        | `Read, Some map -> Shard_map.value (Shard_map.find map key)
        | _ -> None
      in
      reply_client t ~client ~req Wire.Degraded value ("degraded: " ^ reason)
  | None ->
  if t.amnesiac then
    reply_client t ~client ~req Wire.Denied None
      "amnesiac: shard storage lost, rejoin via a surviving partition"
  else begin
    let map = kmap_exn t in
    t.op_counter <- t.op_counter + 1;
    let op = (t.site lsl 24) lor (t.op_counter land 0xFFFFFF) in
    let passed = ref false in
    take_turn t;
    Fun.protect ~finally:(fun () -> pass_turn t passed) @@ fun () ->
    let entry = Shard_map.find map key in
    Shard_map.pin entry;
    Fun.protect
      ~finally:(fun () ->
        Shard_map.unpin entry;
        refresh_kgauges t)
    @@ fun () ->
    let skew = 1.0 +. (0.13 *. float_of_int (t.site mod 7)) in
    let acquire_fresh () =
      let keys = build_group t key in
      let rec acquire i =
        match klock_round t op keys with
        | `Granted -> true
        | `Denied when i < t.config.lock_retries ->
            let deadline =
              t.config.clock ()
              +. (t.config.lock_backoff *. float_of_int (i + 1) *. skew)
            in
            ignore
              (Effect.perform
                 (Await_frame
                    {
                      deadline;
                      match_reply = (fun _ -> (None : unit option));
                      wake_on_unlock = true;
                    })
                : unit option);
            acquire (i + 1)
        | `Denied -> false
      in
      if acquire 0 then begin
        t.kanchor <- Some (op, keys);
        t.anchor_since <- t.config.clock ();
        t.reuse_count <- 0;
        Hashtbl.reset t.kgcache;
        (match t.kctrs with
        | Some k -> Metrics.observe k.h_group (float_of_int (List.length keys))
        | None -> ());
        kgather t keys;
        true
      end
      else false
    in
    let rotation_due () =
      t.reuse_count >= t.config.max_reuse
      || t.config.clock () -. t.anchor_since > 0.4 *. t.config.lock_lease
    in
    let locked =
      match t.kanchor with
      | Some (a, akeys)
        when List.mem key akeys && (not (rotation_due ())) && try_klock t key a ->
          (* Join the group anchor: the whole group's locks are already
             held cluster-wide under [a] and the gather cache covers this
             key — refreshing our own key's lease is the only touch. *)
          t.reuse_count <- t.reuse_count + 1;
          true
      | Some _ ->
          release_kanchor t;
          acquire_fresh ()
      | None -> acquire_fresh ()
    in
    if not locked then
      reply_client t ~client ~req Wire.Denied None
        "busy: rival operation holds the locks"
    else begin
      let decide () =
        match Hashtbl.find_opt t.kgcache key with
        | Some (reachable, states, fresh) ->
            Metrics.incr t.ctrs.c_gather_reused;
            (reachable, states, fresh, true)
        | None ->
            kgather t [ key ];
            let reachable, states, fresh = Hashtbl.find t.kgcache key in
            (reachable, states, fresh, false)
      in
      let rec evaluate_round retried =
        let reachable, states, fresh, cached = decide () in
        match Operation.evaluate t.ctx states ~fresh ~reachable () with
        | Decision.Denied _ when cached && not retried ->
            Hashtbl.remove t.kgcache key;
            evaluate_round true
        | decision -> (decision, states)
      in
      match evaluate_round false with
      | Decision.Denied denial, _ ->
          log t
            (Persist.Log_koutcome
               {
                 seq = t.next_seq ();
                 key;
                 kind = kind_tag;
                 granted = false;
                 content = None;
                 rid;
               });
          pass_turn t passed;
          maybe_release_k t;
          reply_client t ~client ~req Wire.Denied None (denial_text denial)
      | Decision.Granted g, states ->
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          let in_s = Site_set.mem t.site g.Decision.s in
          let abort info =
            log t
              (Persist.Log_koutcome
                 {
                   seq = t.next_seq ();
                   key;
                   kind = kind_tag;
                   granted = false;
                   content = None;
                   rid;
                 });
            pass_turn t passed;
            Hashtbl.remove t.kgcache key;
            maybe_release_k t;
            reply_client t ~client ~req Wire.Aborted None info
          in
          let must_fetch = (not in_s) || Shard_map.data_version entry < v in
          let guard_degraded () =
            match t.degraded with
            | Some reason ->
                pass_turn t passed;
                release_kanchor t;
                reply_client t ~client ~req Wire.Degraded None ("degraded: " ^ reason);
                true
            | None -> false
          in
          (match kind with
          | `Read ->
              if
                must_fetch
                && not (kfetch t ~key ~entry ~sources:g.Decision.s ~want_version:v)
              then abort "verified data fetch failed"
              else begin
                kcommit_wave t ~recipients:g.Decision.s ~key ~op_no:(o + 1)
                  ~version:v ~partition:g.Decision.s ~value:None ~rid:0;
                note_kcommit t ~key ~recipients:g.Decision.s ~op_no:(o + 1)
                  ~version:v ~partition:g.Decision.s;
                if not (guard_degraded ()) then begin
                  let value = Shard_map.value entry in
                  log t
                    (Persist.Log_koutcome
                       {
                         seq = t.next_seq ();
                         key;
                         kind = `Read;
                         granted = true;
                         content = Some (encode_kvalue value);
                         rid = 0;
                       });
                  pass_turn t passed;
                  maybe_release_k t;
                  reply_client t ~client ~req Wire.Granted value ""
                end
              end
          | `Write vb ->
              if
                must_fetch
                && not (kfetch t ~key ~entry ~sources:g.Decision.s ~want_version:v)
              then abort "verified data fetch failed"
              else if rid_seen t.rids rid then begin
                Metrics.incr t.ctrs.c_dedup_hits;
                log t
                  (Persist.Log_koutcome
                     {
                       seq = t.next_seq ();
                       key;
                       kind = `Write;
                       granted = true;
                       content = None;
                       rid;
                     });
                pass_turn t passed;
                maybe_release_k t;
                reply_client t ~client ~req Wire.Granted None
                  "duplicate: write already committed"
              end
              else begin
                log t
                  (Persist.Log_kintent
                     {
                       seq = t.next_seq ();
                       key;
                       content = encode_kvalue (Some vb);
                     });
                kcommit_wave t ~recipients:g.Decision.s ~key ~op_no:(o + 1)
                  ~version:(v + 1) ~partition:g.Decision.s ~value:(Some vb) ~rid;
                note_kcommit t ~key ~recipients:g.Decision.s ~op_no:(o + 1)
                  ~version:(v + 1) ~partition:g.Decision.s;
                if not (guard_degraded ()) then begin
                  log t
                    (Persist.Log_koutcome
                       {
                         seq = t.next_seq ();
                         key;
                         kind = `Write;
                         granted = true;
                         content = Some (encode_kvalue (Some vb));
                         rid;
                       });
                  pass_turn t passed;
                  maybe_release_k t;
                  reply_client t ~client ~req Wire.Granted None ""
                end
              end)
    end
  end

(* The in-flight key set feeds {!build_group}: a fresh group anchor
   covers every key with an admitted operation. *)
let with_inflight_key t key f =
  let n = Option.value ~default:0 (Hashtbl.find_opt t.inflight_keys key) in
  Hashtbl.replace t.inflight_keys key (n + 1);
  Fun.protect
    ~finally:(fun () ->
      match Hashtbl.find_opt t.inflight_keys key with
      | Some 1 | None -> Hashtbl.remove t.inflight_keys key
      | Some n -> Hashtbl.replace t.inflight_keys key (n - 1))
    f

(* Coordination time as seen by this node, crash-exits included. *)
let timed_op t f =
  let began = t.config.clock () in
  Fun.protect
    ~finally:(fun () -> Metrics.observe t.ctrs.h_op (t.config.clock () -. began))
    f

(* --- the fiber scheduler --------------------------------------------- *)

(* Start a client operation as a fiber.  It runs until its first
   suspension (or completion) right here; the effect handler only files
   continuations — all resumption happens in the scheduler loop. *)
let spawn_op t (env : Wire.envelope) =
  let client = env.Wire.src in
  let run ~req body =
    t.inflight <- t.inflight + 1;
    let opid = make_rid ~client ~req in
    Hub.event t.obs
      (Trace.Round_start { site = t.site; op = opid; in_flight = t.inflight });
    Metrics.observe t.ctrs.h_inflight (float_of_int t.inflight);
    let finish () =
      Hub.event t.obs
        (Trace.Round_end { site = t.site; op = opid; in_flight = t.inflight });
      t.inflight <- t.inflight - 1
    in
    Effect.Deep.match_with
      (fun () -> Fun.protect ~finally:finish (fun () -> timed_op t body))
      ()
      {
        Effect.Deep.retc = (fun () -> ());
        exnc = (fun e -> raise e);
        effc =
          (fun (type b) (eff : b Effect.t) ->
            match eff with
            | Await_frame { deadline; match_reply; wake_on_unlock } ->
                Some
                  (fun (k : (b, unit) Effect.Deep.continuation) ->
                    t.fwaiters <-
                      t.fwaiters @ [ FW { deadline; match_reply; wake_on_unlock; k } ])
            | Await_turn ticket ->
                Some
                  (fun (k : (b, unit) Effect.Deep.continuation) ->
                    t.twaiters <- t.twaiters @ [ TW (ticket, k) ])
            | _ -> None);
      }
  in
  match env.Wire.payload with
  | Wire.Client_get { req; key } when sharded t ->
      run ~req (fun () ->
          with_inflight_key t key (fun () ->
              client_kop t ~client ~req ~key `Read))
  | Wire.Client_put { req; key; value } when sharded t ->
      run ~req (fun () ->
          with_inflight_key t key (fun () ->
              client_kop t ~client ~req ~key (`Write value)))
  | Wire.Client_recover { req } when sharded t ->
      (* Per-key membership never shrinks below the universe here: a
         rebooted site either kept its shards (it just rejoins) or lost
         them (amnesiac, and split-brain forbids vouching it back in). *)
      run ~req (fun () ->
          reply_client t ~client ~req Wire.Denied None
            "recover: unsupported for the sharded object space")
  | Wire.Client_get { req; key } ->
      run ~req (fun () -> client_op t ~client ~req (`Read key))
  | Wire.Client_put { req; key; value } ->
      run ~req (fun () -> client_op t ~client ~req (`Write (key, value)))
  | Wire.Client_recover { req } ->
      run ~req (fun () -> client_op t ~client ~req `Recover)
  | _ -> serve_protocol t env

(* Resume every fiber whose ticket the turnstile now serves.  Each resume
   runs the fiber to its next suspension and may advance the turnstile
   again, so scan from scratch until quiescent. *)
let rec run_turns t =
  let rec find acc = function
    | [] -> None
    | TW (ticket, k) :: rest when ticket = t.ticket_serving ->
        t.twaiters <- List.rev_append acc rest;
        Some k
    | tw :: rest -> find (tw :: acc) rest
  in
  match find [] t.twaiters with
  | Some k ->
      Effect.Deep.continue k ();
      run_turns t
  | None -> ()

(* Offer a frame to the parked fibers, oldest first; the first taker is
   resumed with its match.  The waiter is unhooked before the resume, so
   a fiber re-suspending inside [continue] files a fresh waiter. *)
let try_deliver t env =
  let rec scan acc = function
    | [] -> false
    | FW w :: rest -> (
        match w.match_reply env with
        | Some _ as hit ->
            t.fwaiters <- List.rev_append acc rest;
            Effect.Deep.continue w.k hit;
            true
        | None -> scan (FW w :: acc) rest)
  in
  scan [] t.fwaiters

(* Resume (with None = timed out) every fiber whose deadline has passed. *)
let rec expire_due t now =
  let rec find acc = function
    | [] -> None
    | FW w :: rest when w.deadline <= now ->
        t.fwaiters <- List.rev_append acc rest;
        Some (fun () -> Effect.Deep.continue w.k None)
    | fw :: rest -> find (fw :: acc) rest
  in
  match find [] t.fwaiters with
  | Some resume ->
      resume ();
      run_turns t;
      expire_due t now
  | None -> ()

(* A rival's Unlock: end every lock-backoff sleep now. *)
let wake_unlockers t =
  let wake, keep = List.partition (fun (FW w) -> w.wake_on_unlock) t.fwaiters in
  t.fwaiters <- keep;
  List.iter (fun (FW w) -> Effect.Deep.continue w.k None) wake;
  if wake <> [] then run_turns t

let next_deadline t =
  List.fold_left
    (fun acc (FW w) ->
      match acc with None -> Some w.deadline | Some d -> Some (min d w.deadline))
    None t.fwaiters

(* One inbound frame.  Commits are deferred into the coalescing buffer;
   everything else flushes that buffer first (observable FIFO: a state or
   data request must see every commit that preceded it on the wire), then
   goes to a parked fiber, a new operation slot, or the peer protocol. *)
let handle_frame t (env : Wire.envelope) =
  (match env.Wire.payload with
  | Wire.Commit { op_no; version; partition; put; rid } ->
      Queue.add (op_no, version, partition, put, rid) t.commit_batch
  | Wire.KCommit { key; op_no; version; partition; value; rid } ->
      (* Invalidate the group gather cache at enqueue time — the same
         instant the legacy path invalidates at flush, since fibers only
         resume after the flush.  Self-applies go through {!flush_kcommits}
         directly and must NOT reset the cache: the anchor's joined
         operations decide against it. *)
      Hashtbl.reset t.kgcache;
      Queue.add (key, op_no, version, partition, value, rid) t.kcommit_batch
  | _ ->
      flush_commits t;
      flush_kcommits t;
      if try_deliver t env then run_turns t
      else begin
        match env.Wire.payload with
        | Wire.Client_put _ | Wire.Client_get _ | Wire.Client_recover _ ->
            if t.inflight < t.config.pipeline then begin
              spawn_op t env;
              run_turns t
            end
            else Queue.add env t.pending_clients
        | _ -> serve_protocol t env
      end);
  if t.unlock_pulse then begin
    t.unlock_pulse <- false;
    wake_unlockers t
  end

let admit_pending t =
  while
    t.inflight < t.config.pipeline && not (Queue.is_empty t.pending_clients)
  do
    flush_commits t;
    flush_kcommits t;
    spawn_op t (Queue.pop t.pending_clients);
    run_turns t
  done

(* The node thread body: a readiness-style loop over one connection.
   Each iteration serves the turnstile, admits parked clients up to the
   pipeline bound, drains every frame already buffered (so a burst of
   commits coalesces into one persist), then sleeps until the next fiber
   deadline — or blocks outright when nothing is parked. *)
let serve t =
  (try
     while true do
       run_turns t;
       admit_pending t;
       let rec drain () =
         match
           Wire.recv ~clock:t.config.clock ~deadline:(t.config.clock ()) t.conn
         with
         | Ok env ->
             handle_frame t env;
             run_turns t;
             drain ()
         | Error `Timeout -> ()
         | Error (`Closed | `Corrupt _) -> raise Dead
       in
       drain ();
       flush_commits t;
       flush_kcommits t;
       admit_pending t;
       (* Everything this burst produced — replies, commit waves, protocol
          frames — leaves in one write before the loop sleeps, so a fiber
          waiting on a peer's answer always has its question on the wire. *)
       flush_out t;
       (match next_deadline t with
       | None -> (
           match Wire.recv t.conn with
           | Ok env -> handle_frame t env
           | Error `Timeout -> ()
           | Error (`Closed | `Corrupt _) -> raise Dead)
       | Some deadline -> (
           match Wire.recv ~clock:t.config.clock ~deadline t.conn with
           | Ok env -> handle_frame t env
           | Error `Timeout -> expire_due t (t.config.clock ())
           | Error (`Closed | `Corrupt _) -> raise Dead))
     done
   with Dead | Killed | Unix.Unix_error _ -> ());
  (* Volatile state dies with the thread; only the files survive. *)
  (try Persist.close_log t.oplog with Sys_error _ -> ());
  (match t.kstore with
  | Some store -> ( try Shard_store.close store with Sys_error _ -> ())
  | None -> ());
  try Unix.close (Wire.fd t.conn) with Unix.Unix_error _ -> ()
