(* One live site.  The thread body is a single dispatch loop over the
   node's switchboard connection; coordination re-enters that loop with a
   deadline, so a coordinator waiting for its own replies keeps answering
   peer requests on the same socket — two rival coordinators always make
   progress.

   Persistence mirrors the msgsim node but through real files: the
   ensemble goes through {!Dynvote.Codec}'s atomic save on every applied
   commit, the data blob rides with it, and the append-only operation log
   records commits, write intents and client-visible outcomes for the
   {!Dynvote_chaos.Oracle} replay.  Ordering rule: an outcome record
   takes its global sequence number *before* the locks are released, so
   no later operation that could have observed this one's effects can be
   stamped earlier.

   Storage failures never kill the thread and never produce a lie: a
   persist that faults mid-way rolls the volatile state back and fences
   the site into degraded (read-only) mode — silent to gathers, refusing
   commits and client coordination — because a site that cannot persist
   must not vote or ack.  Only a restart against repaired storage
   un-fences it. *)

module SMap = Map.Make (String)
module IMap = Map.Make (Int)
module Metrics = Dynvote_obs.Metrics
module Trace = Dynvote_obs.Trace
module Hub = Dynvote_obs.Hub

type config = {
  gather_timeout : float;
  retries : int;
  backoff : float;
  lock_lease : float;
  lock_retries : int;
  lock_backoff : float;
  durable : bool;
  clock : unit -> float;
}

let default_config =
  {
    gather_timeout = 0.2;
    retries = 1;
    backoff = 2.0;
    lock_lease = 2.0;
    lock_retries = 8;
    lock_backoff = 0.05;
    durable = true;
    clock = Dynvote_obs.Clock.now;
  }

(* --- request ids ----------------------------------------------------

   A client request is globally identified by (client endpoint id,
   per-client request number), packed into one integer.  Each site
   remembers, per client, the highest request number it has applied a
   write for; a retried request at or below that mark has already
   committed and is acknowledged without re-applying.  The table is
   persisted inside the data blob and travels with every data fetch, so
   dedup memory is exactly as durable — and exactly as distributed — as
   the data it guards. *)

let make_rid ~client ~req = (client lsl 32) lor (req land 0xFFFFFFFF)
let rid_client rid = rid lsr 32
let rid_req rid = rid land 0xFFFFFFFF

let rid_seen rids rid =
  match IMap.find_opt (rid_client rid) rids with
  | Some seen -> rid_req rid <= seen
  | None -> false

let rid_add rids rid =
  IMap.update (rid_client rid)
    (function None -> Some (rid_req rid) | Some seen -> Some (max seen (rid_req rid)))
    rids

let rid_list rids = IMap.bindings rids

let rids_of_list pairs =
  List.fold_left
    (fun m (client, req) ->
      IMap.update client
        (function None -> Some req | Some seen -> Some (max seen req))
        m)
    IMap.empty pairs

(* Instrument handles resolved once at boot; every update after that is
   an atomic increment (or nothing, under the noop hub). *)
type counters = {
  c_granted : Metrics.counter;
  c_denied : Metrics.counter;
  c_aborted : Metrics.counter;
  c_lock_rounds : Metrics.counter;
  c_lock_denied : Metrics.counter;
  c_gathers : Metrics.counter;
  c_fetches : Metrics.counter;
  c_fetch_failures : Metrics.counter;
  c_commit_waves : Metrics.counter;
  c_commits_applied : Metrics.counter;
  c_storage_faults : Metrics.counter;
  c_degraded_entered : Metrics.counter;
  c_degraded_refused : Metrics.counter;
  c_dedup_hits : Metrics.counter;
  c_oplog_corrupt : Metrics.counter;
  h_op : Metrics.histogram;
}

let make_counters (hub : Hub.t) =
  let m = hub.Hub.metrics in
  {
    c_granted = Metrics.counter m "live.op.granted";
    c_denied = Metrics.counter m "live.op.denied";
    c_aborted = Metrics.counter m "live.op.aborted";
    c_lock_rounds = Metrics.counter m "live.lock.rounds";
    c_lock_denied = Metrics.counter m "live.lock.denied";
    c_gathers = Metrics.counter m "live.gather.rounds";
    c_fetches = Metrics.counter m "live.fetch.attempts";
    c_fetch_failures = Metrics.counter m "live.fetch.failures";
    c_commit_waves = Metrics.counter m "live.commit.waves";
    c_commits_applied = Metrics.counter m "live.commit.applied";
    c_storage_faults = Metrics.counter m "live.storage.faults";
    c_degraded_entered = Metrics.counter m "live.degraded.entered";
    c_degraded_refused = Metrics.counter m "live.degraded.refused";
    c_dedup_hits = Metrics.counter m "live.dedup.hits";
    c_oplog_corrupt = Metrics.counter m "live.oplog.corrupt";
    h_op = Metrics.histogram m "live.node.op.seconds";
  }

exception Killed

(* The switchboard severed our socket (crash) or went away entirely. *)
exception Dead

type t = {
  site : Site_set.site;
  universe : Site_set.t;
  n_sites : int;
  ctx : Operation.ctx;
  config : config;
  dir : string;
  vfs : Vfs.t;
  next_seq : unit -> int;
  conn : Wire.conn;
  oplog : Persist.log;
  mutable replica : Replica.t;
  mutable data_version : int;
  mutable store : string SMap.t;
  mutable rids : int IMap.t; (* client -> highest applied write req *)
  mutable amnesiac : bool;
  mutable fresh : bool;
  mutable degraded : string option; (* Some reason = fenced read-only *)
  (* Volatile lock; its lease is what frees a lock abandoned by a
     coordinator that died mid-operation. *)
  lock : Lease.t;
  obs : Hub.t;
  ctrs : counters;
  mutable round : int;
  mutable op_counter : int;
  mutable commit_hook : (sent:int -> total:int -> unit) option;
  (* Client requests arriving while this node is itself coordinating are
     parked here and served after the current operation finishes. *)
  pending_clients : Wire.envelope Queue.t;
}

let site t = t.site
let is_amnesiac t = t.amnesiac
let degraded t = t.degraded
let set_commit_hook t hook = t.commit_hook <- hook

let degrade t reason =
  if t.degraded = None then begin
    t.degraded <- Some reason;
    Metrics.incr t.ctrs.c_degraded_entered;
    Hub.event t.obs (Trace.Degraded { site = t.site; reason })
  end

(* Run one stable-storage action, converting its failure modes: an
   injected crash point dies like the process it models, every other
   fault comes back as [Error] for the caller to fence on. *)
let storage t f =
  try Ok (f ()) with
  | Vfs.Crash_point _ -> raise Killed
  | Vfs.Fault { op; path; reason } ->
      Metrics.incr t.ctrs.c_storage_faults;
      Hub.event t.obs (Trace.Storage_fault { site = t.site; op; path });
      Error reason
  | Sys_error reason ->
      Metrics.incr t.ctrs.c_storage_faults;
      Hub.event t.obs (Trace.Storage_fault { site = t.site; op = "io"; path = "" });
      Error reason

let boot ~site ~universe ~flavor ~segment_of ~config ~obs ~dir ?(vfs = Vfs.real)
    ~next_seq ~port ~was_restarted () =
  ignore (Persist.ensure_site_dir ~dir site : string);
  let n_sites = Site_set.max_elt universe + 1 in
  let ctx = Operation.make_ctx ~flavor ~segment_of (Ordering.default n_sites) in
  let ctrs = make_counters obs in
  (* A corrupt or missing record on either file leaves the node amnesiac:
     it holds no ensemble it could safely vote with.  So does a version
     mismatch between the two — the residue of a persist that died
     between the ensemble replace and the data replace; neither file is
     corrupt, but together they are not a state this site ever held. *)
  let replica, data_version, store, rids, amnesiac =
    match Codec.load_result ~vfs ~path:(Persist.ensemble_path ~dir site) () with
    | Error _ -> (Replica.initial universe, 0, SMap.empty, IMap.empty, true)
    | Ok replica -> (
        match Persist.load_data_result ~vfs ~path:(Persist.data_path ~dir site) () with
        | Error _ -> (replica, 0, SMap.empty, IMap.empty, true)
        | Ok (version, _, _) when version <> Replica.version replica ->
            (replica, 0, SMap.empty, IMap.empty, true)
        | Ok (version, entries, rids) ->
            ( replica,
              version,
              List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty entries,
              rids_of_list rids,
              false ))
  in
  (* A checksum-failing record in the *middle* of the log — intact
     records after it — is damage no crash explains; the history has a
     hole and this site must not present itself as a witness. *)
  let oplog_scan = Persist.scan_log ~vfs ~path:(Persist.oplog_path ~dir site) () in
  let degraded =
    if oplog_scan.Persist.corrupt > 0 then begin
      Metrics.add ctrs.c_oplog_corrupt oplog_scan.Persist.corrupt;
      Some
        (Printf.sprintf "oplog corrupt mid-log (%d record%s)"
           oplog_scan.Persist.corrupt
           (if oplog_scan.Persist.corrupt = 1 then "" else "s"))
    end
    else None
  in
  (* A purely torn tail (honest crash damage, nothing mid-log) is cut
     off before reopening for append: new records written after a
     partial frame would be unreadable, and the next scan would call
     them mid-log corruption.  A corrupt log is left untouched — it is
     evidence, and this node is fencing itself anyway. *)
  if oplog_scan.Persist.torn && oplog_scan.Persist.corrupt = 0 then
    vfs.Vfs.truncate
      (Persist.oplog_path ~dir site)
      oplog_scan.Persist.valid_prefix;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.setsockopt sock Unix.TCP_NODELAY true
   with e -> (try Unix.close sock with Unix.Unix_error _ -> ()); raise e);
  let conn = Wire.conn sock in
  Wire.send conn { Wire.src = site; dst = Wire.broker_id; payload = Wire.Hello_site { site } };
  (match Wire.recv ~clock:config.clock ~deadline:(config.clock () +. 5.0) conn with
  | Ok { Wire.payload = Wire.Welcome _; _ } -> ()
  | _ ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      failwith (Printf.sprintf "live node %d: switchboard handshake failed" site));
  let oplog = Persist.open_log ~vfs ~path:(Persist.oplog_path ~dir site) () in
  let t =
    {
      site;
      universe;
      n_sites;
      ctx;
      config;
      dir;
      vfs;
      next_seq;
      conn;
      oplog;
      replica;
      data_version;
      store;
      rids;
      amnesiac;
      fresh = (not was_restarted) && not amnesiac;
      degraded = None;
      lock = Lease.create ();
      obs;
      ctrs;
      round = 0;
      op_counter = 0;
      commit_hook = None;
      pending_clients = Queue.create ();
    }
  in
  (match degraded with Some reason -> degrade t reason | None -> ());
  t

let send_to t dst payload =
  try Wire.send t.conn { Wire.src = t.site; dst; payload }
  with Unix.Unix_error _ -> raise Dead

let persist t =
  let fsync = t.config.durable in
  Codec.write_file_atomic ~vfs:t.vfs ~fsync
    ~path:(Persist.ensemble_path ~dir:t.dir t.site)
    (Codec.encode_replica t.replica);
  Persist.save_data ~vfs:t.vfs ~fsync ~rids:(rid_list t.rids)
    ~path:(Persist.data_path ~dir:t.dir t.site)
    ~version:t.data_version (SMap.bindings t.store)

(* Log or fence: a record that cannot reach the oplog leaves a hole in
   the history this site would later present — better to stop presenting
   it. *)
let log t record =
  match storage t (fun () -> Persist.append t.oplog record) with
  | Ok () -> ()
  | Error reason -> degrade t ("oplog append failed: " ^ reason)

let blob t = Persist.encode_entries (SMap.bindings t.store)

(* Monotone install, as in the paper's COMMIT: stale or duplicated
   commits can never regress the ensemble.  The ensemble (and any
   piggybacked write) hits disk before the log claims it was applied, so
   a crash between the two under-reports a commit rather than inventing
   one.  A persist that faults rolls the volatile state back to match
   the disk and fences the site: acking a commit we could not persist
   would make our next vote a lie. *)
let apply_commit t ~op_no ~version ~partition ~put ~rid =
  if t.degraded <> None then Metrics.incr t.ctrs.c_degraded_refused
  else if op_no > Replica.op_no t.replica then begin
    let rollback =
      (t.replica, t.data_version, t.store, t.rids, t.amnesiac, t.fresh)
    in
    t.replica <- Replica.with_commit t.replica ~op_no ~version ~partition;
    (match put with
    | Some (key, value) ->
        t.store <- SMap.add key value t.store;
        t.data_version <- version;
        if rid <> 0 then t.rids <- rid_add t.rids rid
    | None -> ());
    t.amnesiac <- false;
    t.fresh <- true;
    match storage t (fun () -> persist t) with
    | Ok () ->
        Metrics.incr t.ctrs.c_commits_applied;
        log t (Persist.Log_commit { seq = t.next_seq (); op_no; version; partition; rid })
    | Error reason ->
        let replica, data_version, store, rids, amnesiac, fresh = rollback in
        t.replica <- replica;
        t.data_version <- data_version;
        t.store <- store;
        t.rids <- rids;
        t.amnesiac <- amnesiac;
        t.fresh <- fresh;
        degrade t ("persist failed: " ^ reason)
  end

let try_lock t op =
  Lease.try_acquire t.lock ~now:(t.config.clock ()) ~lease:t.config.lock_lease
    ~op

let release_lock t op = Lease.release t.lock ~op

(* Serve one frame of the peer protocol.  Client requests are parked; a
   coordinator calls this from inside its own wait loops, which is what
   keeps concurrent coordinators deadlock-free.

   A degraded site answers nothing that could count as a vote: state
   requests and lock requests go unanswered (to the coordinator it looks
   down, so new partitions form without it), commits are refused.  Data
   requests are still served — they are read-only, and the fetcher
   verifies the version before installing. *)
let serve_protocol t (env : Wire.envelope) =
  match env.Wire.payload with
  | Wire.State_request { round } ->
      (* An amnesiac site must not vote: a guessed ensemble could be
         counted.  It (and a fenced site) abstains explicitly, so the
         coordinator excludes it without waiting out the gather. *)
      if t.amnesiac || t.degraded <> None then
        send_to t env.Wire.src (Wire.Abstain { round })
      else
        send_to t env.Wire.src
          (Wire.State_reply { round; fresh = t.fresh; replica = t.replica })
  | Wire.Lock_request { op } ->
      if t.degraded = None then
        send_to t env.Wire.src (Wire.Lock_reply { op; granted = try_lock t op })
      else send_to t env.Wire.src (Wire.Abstain { round = op })
  | Wire.Unlock { op } -> release_lock t op
  | Wire.Data_request { round } ->
      send_to t env.Wire.src
        (Wire.Data_reply
           {
             round;
             version = t.data_version;
             entries = SMap.bindings t.store;
             rids = rid_list t.rids;
           })
  | Wire.Commit { op_no; version; partition; put; rid } ->
      apply_commit t ~op_no ~version ~partition ~put ~rid
  | Wire.Client_put _ | Wire.Client_get _ | Wire.Client_recover _ ->
      Queue.add env t.pending_clients
  | Wire.Hello_site _ | Wire.Hello_client | Wire.Welcome _ | Wire.State_reply _
  | Wire.Lock_reply _ | Wire.Data_reply _ | Wire.Client_reply _ | Wire.Abstain _ ->
      (* Stray replies of a finished or abandoned exchange. *)
      ()

(* Wait until [deadline] for a frame satisfying [match_reply], serving
   everything else that arrives in the meantime. *)
let await t ~deadline ~match_reply =
  let rec wait () =
    match Wire.recv ~clock:t.config.clock ~deadline t.conn with
    | Error `Timeout -> None
    | Error (`Closed | `Corrupt _) -> raise Dead
    | Ok env -> (
        match match_reply env with
        | Some _ as hit -> hit
        | None ->
            serve_protocol t env;
            wait ())
  in
  wait ()

let peers t = Site_set.remove t.site t.universe

(* The volatile lock round: all-or-nothing over the peers that answer.
   Silent peers are simply unreachable — they hold no lock and take no
   part in the gather either.  Any refusal releases everything acquired
   (and our own), so two rivals cannot deadlock; they just retry. *)
let lock_round t op =
  Metrics.incr t.ctrs.c_lock_rounds;
  Hub.event t.obs (Trace.Lock_round_start { site = t.site; op });
  if not (try_lock t op) then begin
    Metrics.incr t.ctrs.c_lock_denied;
    Hub.event t.obs (Trace.Lock_denied { site = t.site; op });
    `Denied
  end
  else begin
    Site_set.iter (fun dst -> send_to t dst (Wire.Lock_request { op })) (peers t);
    let replies = Hashtbl.create 8 in
    let abstained = Hashtbl.create 4 in
    let deadline = t.config.clock () +. t.config.gather_timeout in
    let want = Site_set.cardinal (peers t) in
    let rec collect () =
      if Hashtbl.length replies + Hashtbl.length abstained < want then
        match
          await t ~deadline ~match_reply:(fun env ->
              match env.Wire.payload with
              | Wire.Lock_reply { op = o; granted } when o = op ->
                  Some (env.Wire.src, `Vote granted)
              | Wire.Abstain { round } when round = op ->
                  (* A fenced site holds no lock and casts no vote; its
                     answer only stops the wait. *)
                  Some (env.Wire.src, `Abstain)
              | _ -> None)
        with
        | Some (src, `Vote granted) ->
            Hashtbl.replace replies src granted;
            collect ()
        | Some (src, `Abstain) ->
            Hashtbl.replace abstained src ();
            collect ()
        | None -> ()
    in
    collect ();
    let all_granted = Hashtbl.fold (fun _ granted acc -> acc && granted) replies true in
    if all_granted then `Granted
    else begin
      Site_set.iter (fun dst -> send_to t dst (Wire.Unlock { op })) (peers t);
      release_lock t op;
      Metrics.incr t.ctrs.c_lock_denied;
      Hub.event t.obs (Trace.Lock_denied { site = t.site; op });
      `Denied
    end
  end

let unlock_all t op =
  Site_set.iter (fun dst -> send_to t dst (Wire.Unlock { op })) (peers t);
  release_lock t op

(* START: broadcast a state request and gather replies under the bounded
   retry/backoff discipline of the msgsim Deadline model.  Freshness is
   distributed here: each reply carries the replier's own claim.  Returns
   (reachable, states, fresh). *)
let gather t =
  t.round <- t.round + 1;
  let round = t.round in
  let replies = Hashtbl.create 8 in
  let abstained = Hashtbl.create 4 in
  let missing () =
    Site_set.filter
      (fun s ->
        (s <> t.site)
        && (not (Hashtbl.mem replies s))
        && not (Hashtbl.mem abstained s))
      t.universe
  in
  let rec attempt n patience =
    let absent = missing () in
    if not (Site_set.is_empty absent) then begin
      Site_set.iter (fun dst -> send_to t dst (Wire.State_request { round })) absent;
      let deadline = t.config.clock () +. patience in
      let rec collect () =
        if not (Site_set.is_empty (missing ())) then
          match
            await t ~deadline ~match_reply:(fun env ->
                match env.Wire.payload with
                | Wire.State_reply { round = r; fresh; replica } when r = round ->
                    Some (env.Wire.src, `State (fresh, replica))
                | Wire.Abstain { round = r } when r = round ->
                    (* Fenced or amnesiac: counts as reached-but-voteless,
                       exactly like silence, minus the timeout. *)
                    Some (env.Wire.src, `Abstain)
                | _ -> None)
          with
          | Some (src, `State (fresh, replica)) ->
              Hashtbl.replace replies src (fresh, replica);
              collect ()
          | Some (src, `Abstain) ->
              Hashtbl.replace abstained src ();
              collect ()
          | None -> ()
      in
      collect ();
      if n < t.config.retries then attempt (n + 1) (patience *. t.config.backoff)
    end
  in
  attempt 0 t.config.gather_timeout;
  let states = Array.make t.n_sites t.replica in
  let self = if t.amnesiac then Site_set.empty else Site_set.singleton t.site in
  let self_fresh = if t.fresh && not t.amnesiac then self else Site_set.empty in
  let reachable, fresh =
    Hashtbl.fold
      (fun src (fresh, replica) (reach, fr) ->
        states.(src) <- replica;
        (Site_set.add src reach, if fresh then Site_set.add src fr else fr))
      replies (self, self_fresh)
  in
  Metrics.incr t.ctrs.c_gathers;
  Hub.event t.obs
    (Trace.Gather
       {
         site = t.site;
         round;
         reachable = Site_set.cardinal reachable;
         fresh = Site_set.cardinal fresh;
       });
  (reachable, states, fresh)

(* Verified data fetch: ask the up-to-date sites in turn until a snapshot
   of at least [want_version] lands.  The install is wholesale — local
   data may be the residue of an uncommitted write (or amnesiac garbage)
   whatever its version number says — and brings the applied-request
   table with it. *)
let fetch_data t ~sources ~want_version =
  let sources = Site_set.to_list sources in
  let n_sources = List.length sources in
  let attempts = max t.config.retries (n_sources - 1) in
  let rec attempt n patience =
    if n > attempts then false
    else begin
      let src = List.nth sources (n mod n_sources) in
      t.round <- t.round + 1;
      let round = t.round in
      Metrics.incr t.ctrs.c_fetches;
      send_to t src (Wire.Data_request { round });
      let deadline = t.config.clock () +. patience in
      match
        await t ~deadline ~match_reply:(fun env ->
            match env.Wire.payload with
            | Wire.Data_reply { round = r; version; entries; rids } when r = round ->
                Some (version, entries, rids)
            | _ -> None)
      with
      | Some (version, entries, rids) when version >= want_version ->
          t.store <-
            List.fold_left (fun m (k, v) -> SMap.add k v m) SMap.empty entries;
          t.data_version <- version;
          t.rids <- rids_of_list rids;
          Hub.event t.obs (Trace.Data_fetch { site = t.site; source = src; ok = true });
          true
      | Some _ | None ->
          Metrics.incr t.ctrs.c_fetch_failures;
          Hub.event t.obs
            (Trace.Data_fetch { site = t.site; source = src; ok = false });
          attempt (n + 1) (patience *. t.config.backoff)
    end
  in
  attempt 0 t.config.gather_timeout

(* The COMMIT wave.  The coordinator applies its own share through the
   same monotone install as everyone else; the hook between sends is the
   crash point — {!Killed} unwinds the whole thread, leaving the prefix
   of recipients that already heard the commit, held locks to expire by
   lease, and no outcome record: exactly a coordinator dead mid-wave. *)
let commit_wave t ~recipients ~op_no ~version ~partition ~put ~rid =
  let total = Site_set.cardinal recipients in
  Metrics.incr t.ctrs.c_commit_waves;
  Hub.event t.obs
    (Trace.Commit_wave { site = t.site; op_no; recipients = total });
  let sent = ref 0 in
  Site_set.iter
    (fun dst ->
      if dst = t.site then apply_commit t ~op_no ~version ~partition ~put ~rid
      else send_to t dst (Wire.Commit { op_no; version; partition; put; rid });
      incr sent;
      match t.commit_hook with
      | Some hook -> hook ~sent:!sent ~total
      | None -> ())
    recipients

let reply_client t ~client ~req status value info =
  (match status with
  | Wire.Granted -> Metrics.incr t.ctrs.c_granted
  | Wire.Denied -> Metrics.incr t.ctrs.c_denied
  | Wire.Aborted -> Metrics.incr t.ctrs.c_aborted
  | Wire.Degraded -> Metrics.incr t.ctrs.c_degraded_refused);
  try Wire.send t.conn
        { Wire.src = t.site; dst = client; payload = Wire.Client_reply { req; status; value; info } }
  with Unix.Unix_error _ -> raise Dead

let denial_text denial = Fmt.str "%a" Decision.pp_denial denial

(* One client operation, coordinated at this node: lock round (with
   bounded retry on rivalry), gather, decide, fetch if stale, COMMIT
   wave, outcome record, unlock, reply — the paper's protocol as genuine
   request/reply exchanges. *)
let client_op t ~client ~req kind =
  let kind_tag =
    match kind with `Read _ -> `Read | `Write _ -> `Write | `Recover -> `Recover
  in
  let rid = match kind_tag with `Write -> make_rid ~client ~req | _ -> 0 in
  match t.degraded with
  | Some reason ->
      (* Fenced: serve nothing that could ack or mutate.  A get still
         reports the local value — visibly marked Degraded so the client
         retries at a live site. *)
      let value =
        match kind with `Read key -> SMap.find_opt key t.store | _ -> None
      in
      reply_client t ~client ~req Wire.Degraded value ("degraded: " ^ reason)
  | None ->
  if t.amnesiac && kind_tag <> `Recover then
    reply_client t ~client ~req Wire.Denied None
      "amnesiac: stable record lost, RECOVER first"
  else begin
    t.op_counter <- t.op_counter + 1;
    let op = (t.site lsl 24) lor (t.op_counter land 0xFFFFFF) in
    (* Site-dependent backoff skew breaks retry symmetry between rivals. *)
    let skew = 1.0 +. (0.13 *. float_of_int (t.site mod 7)) in
    let rec acquire i =
      match lock_round t op with
      | `Granted -> true
      | `Denied when i < t.config.lock_retries ->
          (* Back off without going deaf: keep serving protocol frames so
             rivals' lock rounds converge instead of timing out on us. *)
          let deadline =
            t.config.clock ()
            +. (t.config.lock_backoff *. float_of_int (i + 1) *. skew)
          in
          ignore
            (await t ~deadline ~match_reply:(fun _ -> (None : unit option))
              : unit option);
          acquire (i + 1)
      | `Denied -> false
    in
    if not (acquire 0) then
      reply_client t ~client ~req Wire.Denied None "busy: rival operation holds the locks"
    else begin
      let reachable, states, fresh = gather t in
      match Operation.evaluate t.ctx states ~fresh ~reachable () with
      | Decision.Denied denial ->
          (match kind_tag with
          | `Write ->
              log t
                (Persist.Log_outcome
                   { seq = t.next_seq (); kind = `Write; granted = false; content = None; rid })
          | `Read ->
              log t
                (Persist.Log_outcome
                   { seq = t.next_seq (); kind = `Read; granted = false; content = None; rid })
          | `Recover -> ());
          unlock_all t op;
          reply_client t ~client ~req Wire.Denied None (denial_text denial)
      | Decision.Granted g ->
          let m = g.Decision.m in
          let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
          let in_s = Site_set.mem t.site g.Decision.s in
          let abort info =
            log t
              (Persist.Log_outcome
                 {
                   seq = t.next_seq ();
                   kind = kind_tag;
                   granted = false;
                   content = None;
                   rid;
                 });
            unlock_all t op;
            reply_client t ~client ~req Wire.Aborted None info
          in
          (* A coordinator inside the majority partition can still hold
             stale data — the residue of a persist that died between the
             ensemble and data replaces on an earlier incarnation.  Trust
             the version number, not the membership. *)
          let must_fetch = (not in_s) || t.data_version < v in
          let guard_degraded () =
            (* The operation's own apply (or log) may have fenced us
               mid-flight; the reply must say so rather than ack. *)
            match t.degraded with
            | Some reason ->
                unlock_all t op;
                reply_client t ~client ~req Wire.Degraded None ("degraded: " ^ reason);
                true
            | None -> false
          in
          (match kind with
          | `Read key ->
              if must_fetch && not (fetch_data t ~sources:g.Decision.s ~want_version:v)
              then abort "verified data fetch failed"
              else begin
                commit_wave t ~recipients:g.Decision.s ~op_no:(o + 1) ~version:v
                  ~partition:g.Decision.s ~put:None ~rid:0;
                if not (guard_degraded ()) then begin
                  let value = SMap.find_opt key t.store in
                  log t
                    (Persist.Log_outcome
                       {
                         seq = t.next_seq ();
                         kind = `Read;
                         granted = true;
                         content = Some (blob t);
                         rid = 0;
                       });
                  unlock_all t op;
                  reply_client t ~client ~req Wire.Granted value ""
                end
              end
          | `Write (key, value) ->
              if must_fetch && not (fetch_data t ~sources:g.Decision.s ~want_version:v)
              then abort "verified data fetch failed"
              else if rid_seen t.rids rid then begin
                (* The retried request already committed (here or fetched
                   from the partition's table): acknowledge, do not
                   re-apply. *)
                Metrics.incr t.ctrs.c_dedup_hits;
                log t
                  (Persist.Log_outcome
                     {
                       seq = t.next_seq ();
                       kind = `Write;
                       granted = true;
                       content = None;
                       rid;
                     });
                unlock_all t op;
                reply_client t ~client ~req Wire.Granted None
                  "duplicate: write already committed"
              end
              else begin
                (* The intent records the post-write content before the
                   first COMMIT can escape; a coordinator dead mid-wave
                   leaves intent-without-outcome = maybe-committed. *)
                let new_blob =
                  Persist.encode_entries (SMap.bindings (SMap.add key value t.store))
                in
                log t (Persist.Log_intent { seq = t.next_seq (); content = new_blob });
                commit_wave t ~recipients:g.Decision.s ~op_no:(o + 1)
                  ~version:(v + 1) ~partition:g.Decision.s ~put:(Some (key, value))
                  ~rid;
                if not (guard_degraded ()) then begin
                  log t
                    (Persist.Log_outcome
                       {
                         seq = t.next_seq ();
                         kind = `Write;
                         granted = true;
                         content = Some new_blob;
                         rid;
                       });
                  unlock_all t op;
                  reply_client t ~client ~req Wire.Granted None ""
                end
              end
          | `Recover ->
              let must_fetch =
                t.amnesiac || Replica.version t.replica < v || t.data_version < v
              in
              if must_fetch && not (fetch_data t ~sources:g.Decision.s ~want_version:v)
              then abort "verified data fetch failed"
              else begin
                let recipients = Site_set.add t.site g.Decision.s in
                commit_wave t ~recipients ~op_no:(o + 1) ~version:v
                  ~partition:recipients ~put:None ~rid:0;
                if not (guard_degraded ()) then begin
                  log t
                    (Persist.Log_outcome
                       {
                         seq = t.next_seq ();
                         kind = `Recover;
                         granted = true;
                         content = None;
                         rid = 0;
                       });
                  unlock_all t op;
                  reply_client t ~client ~req Wire.Granted None ""
                end
              end)
    end
  end

(* Coordination time as seen by this node, crash-exits included. *)
let timed_op t f =
  let began = t.config.clock () in
  Fun.protect
    ~finally:(fun () -> Metrics.observe t.ctrs.h_op (t.config.clock () -. began))
    f

let dispatch t (env : Wire.envelope) =
  match env.Wire.payload with
  | Wire.Client_get { req; key } ->
      timed_op t (fun () -> client_op t ~client:env.Wire.src ~req (`Read key))
  | Wire.Client_put { req; key; value } ->
      timed_op t (fun () ->
          client_op t ~client:env.Wire.src ~req (`Write (key, value)))
  | Wire.Client_recover { req } ->
      timed_op t (fun () -> client_op t ~client:env.Wire.src ~req `Recover)
  | _ -> serve_protocol t env

let serve t =
  (try
     while true do
       (match Wire.recv t.conn with
       | Error (`Closed | `Corrupt _) -> raise Dead
       | Error `Timeout -> ()
       | Ok env -> dispatch t env);
       (* Client requests parked while we were coordinating. *)
       while not (Queue.is_empty t.pending_clients) do
         dispatch t (Queue.pop t.pending_clients)
       done
     done
   with Dead | Killed | Unix.Unix_error _ -> ());
  (* Volatile state dies with the thread; only the files survive. *)
  (try Persist.close_log t.oplog with Sys_error _ -> ());
  try Unix.close (Wire.fd t.conn) with Unix.Unix_error _ -> ()
