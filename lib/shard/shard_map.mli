(** Bounded-residency view of the per-key object space.

    The {!Shard_store} spine remembers every key as a packed blob; this
    layer materializes the working set into live entries — a decoded
    {!Replica.t} plus the data version and value bytes — and keeps at
    most [resident] of them, evicting in LRU order.  A key touched for
    the first time anywhere in the system materializes to the paper's
    initial state (o = v = 1, partition = all sites): lazily, so a
    million-key object space costs nothing until keys are actually
    touched.

    Entries are {e pinned} while an operation (which may park its fiber
    awaiting frames) holds a reference: eviction skips pinned entries,
    so a parked coordinator can never race a re-materialization of the
    same key into a second, divergent object. *)

type t
type entry

val create :
  ?on_materialize:(unit -> unit) ->
  ?on_evict:(unit -> unit) ->
  store:Shard_store.t ->
  resident:int ->
  universe:Site_set.t ->
  unit ->
  t
(** [resident] is the residency cap (at least 1); the hooks fire on
    every materialization / eviction (metrics, not veto). *)

val find : t -> string -> entry
(** The key's live entry: resident (moved to most-recently-used), or
    materialized from the store's spine, or — for a key this site never
    committed — the initial state.  May evict the least-recently-used
    unpinned entries to stay under the cap. *)

val pin : entry -> unit
val unpin : entry -> unit

val key : entry -> string
val replica : entry -> Replica.t
val set_replica : entry -> Replica.t -> unit

val data_version : entry -> int
(** Version at which {!value} was last installed; trails the replica's
    version when the ensemble advanced without a data fetch. *)

val set_data_version : entry -> int -> unit
val value : entry -> string option
val set_value : entry -> string option -> unit

val state_of : entry -> Shard_store.state
(** The entry's current state as a store record — what a commit appends. *)

val resident : t -> int
val materializations : t -> int
val evictions : t -> int
