(** Zipf-distributed key sampling for multi-object workloads.

    A sampler over ranks [0, n); rank [k] is drawn with probability
    proportional to [1 / (k + 1) ** s].  [s = 0] degenerates to the
    uniform distribution; larger [s] concentrates mass on the low ranks
    (the "hot keys" of real traffic).

    The sampler is a precomputed cumulative table: {!create} is O(n)
    once, {!sample} is O(log n), allocation-free, and pure — the caller
    supplies the uniform variate, so one frozen sampler can be shared by
    any number of worker threads without a lock. *)

type t

val create : n:int -> s:float -> t
(** @raise Invalid_argument when [n < 1] or [s < 0] or [s] is not
    finite. *)

val n : t -> int
val s : t -> float

val sample : t -> float -> int
(** [sample t u] maps a uniform variate [u] in [\[0, 1)] to a rank in
    [\[0, n)].  Monotone in [u], so equal variates give equal ranks —
    seeded runs are reproducible across workers and platforms. *)

val mass : t -> int -> float
(** [mass t k] is the probability of rank [k] — the expected
    rank-frequency curve that tests (and hot-set audits) compare
    measured histograms against. *)
