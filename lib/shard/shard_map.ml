(* Intrusive doubly-linked LRU over a hashtable.  [head] is the
   most-recently-used entry, [tail] the eviction candidate.  Entries
   carry their own links, so touch / unlink are O(1) with no auxiliary
   allocation per access. *)

type entry = {
  ekey : string;
  mutable replica : Replica.t;
  mutable data_version : int;
  mutable value : string option;
  mutable pins : int;
  mutable prev : entry option;  (* toward head / more recent *)
  mutable next : entry option;  (* toward tail / less recent *)
}

type t = {
  store : Shard_store.t;
  cap : int;
  universe : Site_set.t;
  table : (string, entry) Hashtbl.t;
  mutable head : entry option;
  mutable tail : entry option;
  on_materialize : unit -> unit;
  on_evict : unit -> unit;
  mutable materializations : int;
  mutable evictions : int;
}

let create ?(on_materialize = ignore) ?(on_evict = ignore) ~store ~resident
    ~universe () =
  if resident < 1 then invalid_arg "Shard_map.create: resident cap must be >= 1";
  {
    store;
    cap = resident;
    universe;
    table = Hashtbl.create (min resident 4096);
    head = None;
    tail = None;
    on_materialize;
    on_evict;
    materializations = 0;
    evictions = 0;
  }

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let touch t e =
  match t.head with
  | Some h when h == e -> ()
  | _ ->
      unlink t e;
      push_front t e

(* Walk from the tail dropping unpinned entries until under the cap.
   Every pinned entry belongs to an in-flight operation, so a fully
   pinned map legitimately overshoots — the overshoot is bounded by the
   operation concurrency, not the key space. *)
let enforce_cap t =
  let cursor = ref t.tail in
  let scanning = ref true in
  while Hashtbl.length t.table > t.cap && !scanning do
    match !cursor with
    | None -> scanning := false
    | Some e ->
        cursor := e.prev;
        if e.pins = 0 then begin
          unlink t e;
          Hashtbl.remove t.table e.ekey;
          t.evictions <- t.evictions + 1;
          t.on_evict ()
        end
  done

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
      touch t e;
      e
  | None ->
      let e =
        match Shard_store.lookup t.store key with
        | Some st ->
            {
              ekey = key;
              replica =
                Replica.make ~op_no:st.Shard_store.op_no
                  ~version:st.Shard_store.version
                  ~partition:st.Shard_store.partition;
              data_version = st.Shard_store.data_version;
              value = st.Shard_store.value;
              pins = 0;
              prev = None;
              next = None;
            }
        | None ->
            {
              ekey = key;
              replica = Replica.initial t.universe;
              data_version = 1;
              value = None;
              pins = 0;
              prev = None;
              next = None;
            }
      in
      Hashtbl.replace t.table key e;
      push_front t e;
      t.materializations <- t.materializations + 1;
      t.on_materialize ();
      enforce_cap t;
      e

let pin e = e.pins <- e.pins + 1

let unpin e =
  if e.pins <= 0 then invalid_arg "Shard_map.unpin: entry is not pinned";
  e.pins <- e.pins - 1

let key e = e.ekey
let replica e = e.replica
let set_replica e r = e.replica <- r
let data_version e = e.data_version
let set_data_version e v = e.data_version <- v
let value e = e.value
let set_value e v = e.value <- v

let state_of e =
  {
    Shard_store.op_no = Replica.op_no e.replica;
    version = Replica.version e.replica;
    partition = Replica.partition e.replica;
    data_version = e.data_version;
    value = e.value;
  }

let resident t = Hashtbl.length t.table
let materializations t = t.materializations
let evictions t = t.evictions
