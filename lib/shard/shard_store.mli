(** Log-structured per-key persistence for the sharded object space.

    One site's million keys live in a fixed set of append-only shard
    logs ([shards/shard-<i>.dvl] under the site directory); a key's
    shard is a stable hash of its bytes.  Each committed record carries
    the key's full consistency state — operation number, ensemble
    version, partition, data version — plus the value bytes when they
    changed and the request id that produced them, all framed and
    checksummed in the oplog's style, so a torn tail is detected and
    dropped rather than trusted.

    In memory the store keeps a {e spine}: one packed (undecoded) blob
    per key holding the latest state.  Decoding is the resident layer's
    job ({!Shard_map}); the spine itself is what bounds recovery — a
    boot folds every shard log once and is done.

    When a shard log holds many times more records than live keys it is
    {e compacted}: rewritten atomically with only the latest record per
    key, prefixed by a summary of the per-client applied-request table
    so exactly-once memory survives the dropped history. *)

type state = {
  op_no : int;
  version : int;  (** ensemble version *)
  partition : Site_set.t;
  data_version : int;
      (** version at which [value] was last installed; trails [version]
          at a site whose ensemble advanced without a data fetch *)
  value : string option;  (** [None]: never written *)
}

type scan_info = {
  keys : int;  (** distinct keys recovered into the spine *)
  torn_shards : int;
      (** shard logs that ended in a partial frame (honest crash
          damage); their tails were truncated before reopening *)
  corrupt : int;
      (** checksum-failing records found {e mid-log} across all shards —
          damage no crash explains; the caller should fence *)
  rids : (int * int) list;
      (** the recovered per-client applied-request table: the max
          request number folded over every record's rid, every
          compaction summary, and the rid sidecar file *)
}

type t

val open_store :
  ?vfs:Vfs.t -> ?durable:bool -> dir:string -> site:Site_set.site ->
  shards:int -> unit -> t * scan_info
(** Scan (or create) the site's shard logs under
    [dir/site-<site>/shards].  [durable] (default [true]) makes
    {!save_rids} fsync by default.  Compaction rewrites always fsync —
    they replace the only copy of the key history, and an unsynced
    rename promoted by any later directory fsync would leave the log
    durably empty.  @raise Invalid_argument when [shards < 1]. *)

val shard_count : t -> int
val key_count : t -> int  (** spine size: distinct keys ever committed *)

val lookup : t -> string -> state option
(** Decode the spine's latest record for a key; [None] if the key was
    never committed at this site. *)

val commit : t -> key:string -> rid:int -> state -> unit
(** Append the record to the key's shard log (write-through, not
    fsynced — see {!fsync}) and update the spine.  Value bytes equal to
    the spine's current value are encoded as "unchanged" so read
    commits stay small.  May trigger a compaction of that shard.
    Raises {!Vfs.Fault} / {!Vfs.Crash_point} like any storage write. *)

val fsync : t -> unit
(** Fsync every shard log appended to since the last call — one batch
    of commits, one fsync sweep. *)

val save_rids : ?fsync:bool -> t -> (int * int) list -> unit
(** Merge [(client, req)] pairs into the store's applied-request table
    and persist the merged table to the [rids.dvr] sidecar (atomic
    replace).  Called when a data fetch imports another site's table:
    rids learned any other way already ride inside commit records. *)

val rid_list : t -> (int * int) list

val iter : t -> (string -> state -> unit) -> unit
(** Every key's latest state, decoded from the spine (unspecified
    order). *)

val compactions : t -> int
val log_records : t -> int
(** Records appended across all shards since open (compaction resets a
    shard's count to its live keys). *)

val close : t -> unit

val shards_dir : dir:string -> site:Site_set.site -> string

val read_states : dir:string -> site:Site_set.site -> (string * state) list
(** Offline replay of a site's shard logs (no store open, real
    filesystem): the audit's view of the final per-key states.  Torn
    tails are tolerated; mid-log corrupt records are skipped. *)
