(* Zipf(s) over n ranks via an explicit cumulative table.  Weights are
   1/(k+1)^s; the table stores the running sum so sampling is one
   binary search for the first cumulative weight exceeding u * total.
   Everything is computed once at [create]; [sample] never allocates
   and never mutates, so a single sampler is safely shared across
   worker threads. *)

type t = { n : int; s : float; cum : float array; total : float }

let create ~n ~s =
  if n < 1 then invalid_arg "Zipf.create: need at least one rank";
  if not (Float.is_finite s) || s < 0.0 then
    invalid_arg "Zipf.create: exponent must be finite and non-negative";
  let cum = Array.make n 0.0 in
  let running = ref 0.0 in
  for k = 0 to n - 1 do
    running := !running +. (1.0 /. Float.pow (float_of_int (k + 1)) s);
    cum.(k) <- !running
  done;
  { n; s; cum; total = !running }

let n t = t.n
let s t = t.s

let sample t u =
  let u = if u < 0.0 then 0.0 else if u >= 1.0 then Float.pred 1.0 else u in
  let target = u *. t.total in
  (* First rank whose cumulative weight exceeds [target] — and in-range
     for EVERY float, proved by the loop invariant 0 <= lo <= hi <= n-1:
     it holds at entry (n >= 1 by [create]); inside the loop lo < hi
     puts mid = (lo+hi)/2 in [lo, hi-1], so both hi := mid and
     lo := mid+1 preserve it while strictly shrinking hi - lo.  The
     loop therefore terminates with lo = hi in [0, n-1] independent of
     [target]'s value.  The degenerate targets all land safely: a NaN u
     passes both clamp comparisons unchanged and every cum comparison
     is false, walking lo up to n-1; and even though u < 1, the product
     u *. t.total can round UP to exactly t.total = cum.(n-1) (u one
     ulp below 1 multiplies to within half an ulp of total), in which
     case no entry exceeds the target and the search again returns
     n-1 rather than probing past the table. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) > target then hi := mid else lo := mid + 1
  done;
  !lo

let mass t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.mass: rank out of range";
  let below = if k = 0 then 0.0 else t.cum.(k - 1) in
  (t.cum.(k) -. below) /. t.total
