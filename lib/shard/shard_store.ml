(* Append-only shard logs + an in-memory spine of packed latest
   records.  The framing mirrors the oplog ("len | magic | crc | body"),
   so the torn-tail / mid-log-corruption forensics carry over: a partial
   frame at the end of a shard is honest crash damage and is cut off
   before reopening for append; a bad record with intact ones after it
   is bit rot and is surfaced in [scan_info.corrupt] for the node to
   fence on.

   Record types inside the frame:

     0  keyed state: key | op_no | version | partition | data_version |
        value(unchanged / set) | rid
     1  rid summary: the per-client applied-request table a compaction
        snapshots at the head of the rewritten log, so dropping
        superseded records never drops exactly-once memory. *)

let magic = "DVS1"
let max_record = 16 * 1024 * 1024

type state = {
  op_no : int;
  version : int;
  partition : Site_set.t;
  data_version : int;
  value : string option;
}

type scan_info = {
  keys : int;
  torn_shards : int;
  corrupt : int;
  rids : (int * int) list;
}

(* --- stable key -> shard hash (FNV-1a, independent of Hashtbl.hash) --- *)

let shard_of_key ~shards key =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    key;
  (Int64.to_int !h land max_int) mod shards

(* --- spine packing ---------------------------------------------------

   One packed string per key: four u64 fields then a value tag (1 =
   absent, 2 = present, value bytes to the end).  Undecoded residency is
   the point — a million keys are a million small strings, and decoding
   (allocation of the state record and Site_set) happens only for the
   LRU-resident working set in {!Shard_map}. *)

let pack st =
  let vlen = match st.value with None -> 0 | Some v -> String.length v in
  let b = Bytes.create (33 + vlen) in
  Bytes.set_int64_le b 0 (Int64.of_int st.op_no);
  Bytes.set_int64_le b 8 (Int64.of_int st.version);
  Bytes.set_int64_le b 16 (Int64.of_int (Site_set.to_int st.partition));
  Bytes.set_int64_le b 24 (Int64.of_int st.data_version);
  (match st.value with
  | None -> Bytes.set b 32 '\001'
  | Some v ->
      Bytes.set b 32 '\002';
      Bytes.blit_string v 0 b 33 vlen);
  Bytes.unsafe_to_string b

let unpack packed =
  let b = Bytes.unsafe_of_string packed in
  {
    op_no = Int64.to_int (Bytes.get_int64_le b 0);
    version = Int64.to_int (Bytes.get_int64_le b 8);
    partition = Site_set.of_int_unsafe (Int64.to_int (Bytes.get_int64_le b 16));
    data_version = Int64.to_int (Bytes.get_int64_le b 24);
    value =
      (match Bytes.get b 32 with
      | '\001' -> None
      | _ -> Some (String.sub packed 33 (String.length packed - 33)));
  }

(* --- record framing -------------------------------------------------- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))
let add_u16 b v = Buffer.add_uint16_le b v
let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_u64 b v = Buffer.add_int64_le b (Int64.of_int v)

type value_enc = Unchanged | Set of string option

let frame_of body_fill =
  let b = Buffer.create 96 in
  Buffer.add_string b magic;
  add_u32 b 0 (* checksum slot *);
  body_fill b;
  let body = Buffer.to_bytes b in
  Bytes.set_int32_le body 4 (Codec.checksum body ~off:8 ~len:(Bytes.length body - 8));
  let frame = Bytes.create (4 + Bytes.length body) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length body));
  Bytes.blit body 0 frame 4 (Bytes.length body);
  Bytes.to_string frame

let encode_state_record ~key ~rid ~value_enc st =
  frame_of (fun b ->
      add_u8 b 0;
      if String.length key > 0xffff then
        invalid_arg "Shard_store: key longer than 65535 bytes";
      add_u16 b (String.length key);
      Buffer.add_string b key;
      add_u64 b st.op_no;
      add_u64 b st.version;
      add_u64 b (Site_set.to_int st.partition);
      add_u64 b st.data_version;
      (match value_enc with
      | Unchanged -> add_u8 b 0
      | Set None -> add_u8 b 1
      | Set (Some v) ->
          add_u8 b 2;
          add_u32 b (String.length v);
          Buffer.add_string b v);
      add_u64 b rid)

let encode_rid_record pairs =
  frame_of (fun b ->
      add_u8 b 1;
      add_u32 b (List.length pairs);
      List.iter
        (fun (client, req) ->
          add_u32 b client;
          add_u64 b req)
        pairs)

exception Bad of string

type cursor = { data : Bytes.t; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.data then raise (Bad "record truncated")

let u8 c =
  need c 1;
  let v = Char.code (Bytes.get c.data c.pos) in
  c.pos <- c.pos + 1;
  v

let u16 c =
  need c 2;
  let v = Bytes.get_uint16_le c.data c.pos in
  c.pos <- c.pos + 2;
  v

let u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_le c.data c.pos) land 0xFFFFFFFF in
  c.pos <- c.pos + 4;
  v

let u64 c =
  need c 8;
  let v = Bytes.get_int64_le c.data c.pos in
  c.pos <- c.pos + 8;
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    raise (Bad "field out of range");
  Int64.to_int v

let str c len =
  need c len;
  let s = Bytes.sub_string c.data c.pos len in
  c.pos <- c.pos + len;
  s

type record =
  | R_state of { key : string; rid : int; value_enc : value_enc; st : state }
      (* [st.value] is a placeholder when [value_enc = Unchanged]; the
         scan resolves it against the previous spine entry *)
  | R_rids of (int * int) list

let decode_record body =
  let c = { data = body; pos = 0 } in
  if str c 4 <> magic then raise (Bad "bad magic");
  let stored = Bytes.get_int32_le body 4 in
  c.pos <- 8;
  let computed = Codec.checksum body ~off:8 ~len:(Bytes.length body - 8) in
  if not (Int32.equal stored computed) then raise (Bad "checksum mismatch");
  let record =
    match u8 c with
    | 0 ->
        let key = str c (u16 c) in
        let op_no = u64 c in
        let version = u64 c in
        let partition = Site_set.of_int_unsafe (u64 c) in
        let data_version = u64 c in
        let value_enc =
          match u8 c with
          | 0 -> Unchanged
          | 1 -> Set None
          | 2 -> Set (Some (str c (u32 c)))
          | _ -> raise (Bad "bad value tag")
        in
        let rid = u64 c in
        R_state
          {
            key;
            rid;
            value_enc;
            st = { op_no; version; partition; data_version; value = None };
          }
    | 1 ->
        let n = u32 c in
        if n > max_record then raise (Bad "rid count out of range");
        R_rids (List.init n (fun _ -> let client = u32 c in (client, u64 c)))
    | _ -> raise (Bad "unknown record type")
  in
  if c.pos <> Bytes.length body then raise (Bad "trailing garbage");
  record

(* --- the store ------------------------------------------------------- *)

type shard = {
  path : string;
  mutable file : Vfs.file option;
  mutable records : int;  (* frames in the log *)
  mutable live : int;  (* distinct keys mapping here *)
  mutable dirty : bool;  (* appended to since the last fsync *)
}

type t = {
  vfs : Vfs.t;
  durable : bool;
  sdir : string;
  rids_path : string;
  shards : shard array;
  spine : (string, string) Hashtbl.t;  (* key -> packed latest state *)
  rids : (int, int) Hashtbl.t;  (* client -> max applied req *)
  mutable compactions : int;
}

let shards_dir ~dir ~site =
  Filename.concat
    (Filename.concat dir (Printf.sprintf "site-%d" site))
    "shards"

let shard_path sdir i = Filename.concat sdir (Printf.sprintf "shard-%d.dvl" i)

let note_rid rids rid =
  if rid <> 0 then begin
    let client = rid lsr 32 and req = rid land 0xFFFFFFFF in
    match Hashtbl.find_opt rids client with
    | Some seen when seen >= req -> ()
    | _ -> Hashtbl.replace rids client req
  end

let merge_rid_pairs rids pairs =
  List.iter
    (fun (client, req) ->
      match Hashtbl.find_opt rids client with
      | Some seen when seen >= req -> ()
      | _ -> Hashtbl.replace rids client req)
    pairs

(* Fold one shard log into the spine, resolving "unchanged" values
   against the previous record for the key.  Same resync discipline as
   the oplog scan: intact length prefixes let us skip a damaged frame,
   an implausible length ends the scan (torn tail). *)
let scan_shard_file ~read spine rids path =
  match read path with
  | exception Sys_error _ -> (false, 0, 0)
  | data ->
      let raw = Bytes.of_string data in
      let total = Bytes.length raw in
      let pos = ref 0 in
      let torn = ref false in
      let bad = ref 0 in
      let applied = ref 0 in
      let damaged_at = ref [] in
      (try
         while !pos < total do
           if !pos + 4 > total then raise Exit;
           let len = Int32.to_int (Bytes.get_int32_le raw !pos) land 0xFFFFFFFF in
           if len <= 0 || len > max_record || !pos + 4 + len > total then
             raise Exit;
           (match decode_record (Bytes.sub raw (!pos + 4) len) with
           | R_state { key; rid; value_enc; st } ->
               incr applied;
               note_rid rids rid;
               let value =
                 match value_enc with
                 | Set v -> v
                 | Unchanged -> (
                     match Hashtbl.find_opt spine key with
                     | Some packed -> (unpack packed).value
                     | None -> None)
               in
               Hashtbl.replace spine key (pack { st with value })
           | R_rids pairs -> merge_rid_pairs rids pairs
           | exception Bad _ -> damaged_at := !pos :: !damaged_at);
           pos := !pos + 4 + len
         done
       with Exit -> torn := true);
      (* Damage followed only by more damage (or nothing) is the torn
         tail; damage with an intact record after it is mid-log. *)
      (match !damaged_at with
      | [] -> ()
      | last_bad :: earlier ->
          torn := true;
          bad := List.length earlier;
          ignore (last_bad : int));
      (!torn, !bad, !applied)

(* The scan above treats every damaged frame except the last as mid-log
   corruption.  That over-counts one case — several trailing partial
   frames — which a single append cannot produce anyway; honest crashes
   tear at most one frame. *)

let decode_rids_file data =
  try
    let b = Bytes.of_string data in
    if Bytes.length b < 12 then raise (Bad "rid file too short");
    if Bytes.sub_string b 0 4 <> magic then raise (Bad "bad magic");
    let stored = Bytes.get_int32_le b 4 in
    let computed = Codec.checksum b ~off:8 ~len:(Bytes.length b - 8) in
    if not (Int32.equal stored computed) then raise (Bad "checksum mismatch");
    let c = { data = b; pos = 8 } in
    let n = u32 c in
    if n > max_record then raise (Bad "rid count out of range");
    let pairs = List.init n (fun _ -> let client = u32 c in (client, u64 c)) in
    if c.pos <> Bytes.length b then raise (Bad "trailing garbage");
    Some pairs
  with Bad _ -> None

let encode_rids_file pairs =
  let b = Buffer.create 64 in
  Buffer.add_string b magic;
  add_u32 b 0;
  add_u32 b (List.length pairs);
  List.iter
    (fun (client, req) ->
      add_u32 b client;
      add_u64 b req)
    pairs;
  let body = Buffer.to_bytes b in
  Bytes.set_int32_le body 4 (Codec.checksum body ~off:8 ~len:(Bytes.length body - 8));
  Bytes.to_string body

let mkdir_p path =
  let rec go path =
    if not (Sys.file_exists path) then begin
      go (Filename.dirname path);
      try Sys.mkdir path 0o755 with Sys_error _ -> ()
    end
  in
  go path

let rid_list t =
  List.sort compare (Hashtbl.fold (fun c r acc -> (c, r) :: acc) t.rids [])

let open_store ?(vfs = Vfs.real) ?(durable = true) ~dir ~site ~shards () =
  if shards < 1 then invalid_arg "Shard_store.open_store: need at least one shard";
  let sdir = shards_dir ~dir ~site in
  mkdir_p sdir;
  let spine = Hashtbl.create 1024 in
  let rids = Hashtbl.create 16 in
  let torn_shards = ref 0 in
  let corrupt = ref 0 in
  let shard_arr =
    Array.init shards (fun i ->
        let path = shard_path sdir i in
        let torn, bad, applied = scan_shard_file ~read:vfs.Vfs.read spine rids path in
        if torn then begin
          incr torn_shards;
          (* Cut the partial frame off before appending over it — a new
             record after a torn one would read as mid-log corruption on
             the next scan.  Only when nothing mid-log is damaged: a
             corrupt log is evidence and is left untouched. *)
          if bad = 0 then begin
            (* Re-derive the valid prefix length: sum of intact frames. *)
            match vfs.Vfs.read path with
            | exception Sys_error _ -> ()
            | data ->
                let raw = Bytes.of_string data in
                let total = Bytes.length raw in
                let pos = ref 0 in
                (try
                   while !pos < total do
                     if !pos + 4 > total then raise Exit;
                     let len =
                       Int32.to_int (Bytes.get_int32_le raw !pos) land 0xFFFFFFFF
                     in
                     if len <= 0 || len > max_record || !pos + 4 + len > total
                     then raise Exit;
                     (match decode_record (Bytes.sub raw (!pos + 4) len) with
                     | (_ : record) -> ()
                     | exception Bad _ -> raise Exit);
                     pos := !pos + 4 + len
                   done
                 with Exit -> ());
                vfs.Vfs.truncate path !pos
          end
        end;
        corrupt := !corrupt + bad;
        { path; file = None; records = applied; live = 0; dirty = false })
  in
  (* Live counts per shard, for the compaction trigger. *)
  Hashtbl.iter
    (fun key _ ->
      let s = shard_arr.(shard_of_key ~shards key) in
      s.live <- s.live + 1)
    spine;
  (* The sidecar table (fetch-imported rids) merges over the log fold. *)
  (match vfs.Vfs.read (Filename.concat sdir "rids.dvr") with
  | exception Sys_error _ -> ()
  | data -> (
      match decode_rids_file data with
      | Some pairs -> merge_rid_pairs rids pairs
      | None -> ()));
  let t =
    {
      vfs;
      durable;
      sdir;
      rids_path = Filename.concat sdir "rids.dvr";
      shards = shard_arr;
      spine;
      rids;
      compactions = 0;
    }
  in
  ( t,
    {
      keys = Hashtbl.length spine;
      torn_shards = !torn_shards;
      corrupt = !corrupt;
      rids = rid_list t;
    } )

let shard_count t = Array.length t.shards
let key_count t = Hashtbl.length t.spine

let lookup t key =
  match Hashtbl.find_opt t.spine key with
  | None -> None
  | Some packed -> Some (unpack packed)

let file_of t shard =
  match shard.file with
  | Some f -> f
  | None ->
      let f = t.vfs.Vfs.append shard.path in
      shard.file <- Some f;
      f

let append_frame t shard frame =
  let file = file_of t shard in
  let bytes = Bytes.unsafe_of_string frame in
  let len = Bytes.length bytes in
  let written = ref 0 in
  while !written < len do
    written := !written + file.Vfs.write bytes !written (len - !written)
  done;
  shard.records <- shard.records + 1;
  shard.dirty <- true

(* Rewrite one shard with just the latest record per key, headed by the
   applied-request table so exactly-once memory survives the dropped
   history.  Atomic replace: a crash leaves the old log or the new one,
   both valid.

   The rewrite always runs the full durability discipline (data fsync
   before the rename, directory fsync after), even for stores opened
   [durable:false]: the rename replaces the only copy of the key
   history, and a rename whose source was never fsynced can be promoted
   by ANY later fsync of the same directory — the rids sidecar's atomic
   replace is one — leaving the shard log durably empty after a power
   cut.  Unsynced appends losing their tail is the non-durable
   trade-off; compaction silently discarding fsynced history is not. *)
let compact t i =
  let shard = t.shards.(i) in
  (match shard.file with
  | Some f ->
      f.Vfs.close ();
      shard.file <- None
  | None -> ());
  let b = Buffer.create 4096 in
  Buffer.add_string b (encode_rid_record (rid_list t));
  let live = ref 0 in
  Hashtbl.iter
    (fun key packed ->
      if shard_of_key ~shards:(Array.length t.shards) key = i then begin
        incr live;
        let st = unpack packed in
        Buffer.add_string b
          (encode_state_record ~key ~rid:0 ~value_enc:(Set st.value) st)
      end)
    t.spine;
  Codec.write_file_atomic ~vfs:t.vfs ~fsync:true ~path:shard.path
    (Buffer.contents b);
  shard.records <- !live + 1;
  shard.live <- !live;
  shard.dirty <- false;
  t.compactions <- t.compactions + 1

let compaction_due shard =
  shard.records >= 1024 && shard.records > 4 * max 1 shard.live

let commit t ~key ~rid st =
  let i = shard_of_key ~shards:(Array.length t.shards) key in
  let shard = t.shards.(i) in
  let prior = Hashtbl.find_opt t.spine key in
  let value_enc =
    match prior with
    | Some packed when (unpack packed).value = st.value -> Unchanged
    | _ -> Set st.value
  in
  append_frame t shard (encode_state_record ~key ~rid ~value_enc st);
  note_rid t.rids rid;
  Hashtbl.replace t.spine key (pack st);
  if prior = None then shard.live <- shard.live + 1;
  if compaction_due shard then compact t i

let fsync t =
  Array.iter
    (fun shard ->
      if shard.dirty then begin
        (match shard.file with Some f -> f.Vfs.fsync () | None -> ());
        shard.dirty <- false
      end)
    t.shards

let save_rids ?fsync t pairs =
  merge_rid_pairs t.rids pairs;
  let fsync = Option.value fsync ~default:t.durable in
  Codec.write_file_atomic ~vfs:t.vfs ~fsync ~path:t.rids_path
    (encode_rids_file (rid_list t))

let iter t f = Hashtbl.iter (fun key packed -> f key (unpack packed)) t.spine

let compactions t = t.compactions
let log_records t = Array.fold_left (fun acc s -> acc + s.records) 0 t.shards

let close t =
  Array.iter
    (fun shard ->
      match shard.file with
      | Some f ->
          (try f.Vfs.close () with Sys_error _ | Vfs.Fault _ -> ());
          shard.file <- None
      | None -> ())
    t.shards

let read_states ~dir ~site =
  let sdir = shards_dir ~dir ~site in
  let spine = Hashtbl.create 256 in
  let rids = Hashtbl.create 16 in
  (match Sys.readdir sdir with
  | exception Sys_error _ -> ()
  | names ->
      let shard_files =
        names |> Array.to_list
        |> List.filter (fun n ->
               String.length n > 6
               && String.sub n 0 6 = "shard-"
               && Filename.check_suffix n ".dvl")
        |> List.sort compare
      in
      List.iter
        (fun name ->
          ignore
            (scan_shard_file ~read:Vfs.real.Vfs.read spine rids
               (Filename.concat sdir name)
              : bool * int * int))
        shard_files);
  Hashtbl.fold (fun key packed acc -> (key, unpack packed) :: acc) spine []
