(* The safety oracle: the executable invariant spec
   (Dynvote_invariant.Spec), adapted to a live msgsim cluster.

   All invariant logic — generation agreement, monotonicity, the
   register model, the content-fork scan, replay, snapshots and the
   fingerprint serialization — lives in the spec module; this adapter
   only wires a cluster's commit-witness hook and client-visible
   outcomes into it, and derives the per-site holder triples the fork
   scan consumes.  The model checker and the live audit evaluate the
   same spec module through their own adapters — one spec, three
   checkers. *)

module Cluster = Dynvote_msgsim.Cluster
module Node = Dynvote_msgsim.Node

include Dynvote_invariant.Spec

let attach t cluster = Cluster.set_commit_witness cluster (witness t)

let note_write t ~content (outcome : Cluster.outcome) =
  write_flags t ~granted:outcome.Cluster.granted ~aborted:outcome.Cluster.aborted
    ~content

let note_read t ~at (outcome : Cluster.outcome) =
  read_flags t ~at ~granted:outcome.Cluster.granted ~content:outcome.Cluster.content

let check_step t cluster =
  let holders =
    Site_set.fold
      (fun site acc ->
        let node = Cluster.node cluster site in
        (site, Node.data_version node, Node.content node) :: acc)
      (Cluster.universe cluster) []
  in
  check_states t holders

let final_check = check_step
