(* The safety oracle: watches every commit any node applies, plus the
   client-visible outcomes, and reports violations of the protocols'
   safety contract.

   Three invariants are checked online from the commit-witness stream:

   - Generation agreement: at most one component may be granted per
     generation, so every commit carrying operation number [o] must carry
     the same (version, partition) everywhere.  Two different ensembles
     for one generation is the split-brain signature.

   - Per-site monotonicity: the operation numbers a site applies must be
     strictly increasing (the nodes promise this; the oracle re-verifies
     it independently).

   - Version monotonicity along the witness stream per site: a commit may
     never lower a site's version number.

   One-copy equivalence is checked against a Jepsen-style register model:
   a granted read must return the latest cleanly committed write, or the
   content of a later write whose coordinator died mid-operation (a
   "maybe committed" write — the client was told it aborted, but its
   effects may have partially escaped).  Finally, [final_check] scans the
   end state for content forks: two sites agreeing on a committed version
   number while holding different bytes. *)

module Cluster = Dynvote_msgsim.Cluster
module Node = Dynvote_msgsim.Node

type violation =
  | Generation_conflict of {
      op_no : int;
      site_a : Site_set.site;
      version_a : int;
      partition_a : Site_set.t;
      site_b : Site_set.site;
      version_b : int;
      partition_b : Site_set.t;
    }
  | Non_monotone_op of { site : Site_set.site; before : int; after : int }
  | Version_regression of { site : Site_set.site; before : int; after : int }
  | Stale_read of { at : Site_set.site; got : string; wanted : string list }
  | Content_fork of {
      version : int;
      site_a : Site_set.site;
      content_a : string;
      site_b : Site_set.site;
      content_b : string;
    }

type t = {
  mutable violations : violation list; (* newest first *)
  mutable committed : string;          (* latest cleanly committed content *)
  mutable maybe : string list;         (* contents of aborted writes since *)
  generations : (int, int * Site_set.t * Site_set.site) Hashtbl.t;
      (* op_no -> first witnessed (version, partition, site) *)
  committed_versions : (int, unit) Hashtbl.t;
  last_op : (Site_set.site, int) Hashtbl.t;
  last_version : (Site_set.site, int) Hashtbl.t;
  mutable commits_seen : int;
  mutable reads_checked : int;
}

let create ~initial_content =
  {
    violations = [];
    committed = initial_content;
    maybe = [];
    generations = Hashtbl.create 64;
    committed_versions = Hashtbl.create 64;
    last_op = Hashtbl.create 8;
    last_version = Hashtbl.create 8;
    commits_seen = 0;
    reads_checked = 0;
  }

let flag t violation = t.violations <- violation :: t.violations

let witness t site replica =
  t.commits_seen <- t.commits_seen + 1;
  let op_no = Replica.op_no replica in
  let version = Replica.version replica in
  let partition = Replica.partition replica in
  Hashtbl.replace t.committed_versions version ();
  (match Hashtbl.find_opt t.generations op_no with
  | None -> Hashtbl.add t.generations op_no (version, partition, site)
  | Some (version_a, partition_a, site_a) ->
      if version_a <> version || not (Site_set.equal partition_a partition) then
        flag t
          (Generation_conflict
             {
               op_no;
               site_a;
               version_a;
               partition_a;
               site_b = site;
               version_b = version;
               partition_b = partition;
             }));
  (match Hashtbl.find_opt t.last_op site with
  | Some before when before >= op_no ->
      flag t (Non_monotone_op { site; before; after = op_no })
  | _ -> ());
  Hashtbl.replace t.last_op site op_no;
  (match Hashtbl.find_opt t.last_version site with
  | Some before when before > version ->
      flag t (Version_regression { site; before; after = version })
  | _ -> ());
  Hashtbl.replace t.last_version site version

let attach t cluster = Cluster.set_commit_witness cluster (witness t)

(* Client-visible outcomes feed the register model.  A write that aborted
   after its decision may or may not have escaped; its content joins the
   maybe set until the next clean write supersedes it. *)
let note_write t ~content (outcome : Cluster.outcome) =
  if outcome.Cluster.granted then begin
    t.committed <- content;
    t.maybe <- []
  end
  else if outcome.Cluster.aborted then t.maybe <- content :: t.maybe

let note_read t ~at (outcome : Cluster.outcome) =
  if outcome.Cluster.granted then begin
    t.reads_checked <- t.reads_checked + 1;
    match outcome.Cluster.content with
    | None -> ()
    | Some got ->
        if got <> t.committed && not (List.mem got t.maybe) then
          flag t (Stale_read { at; got; wanted = t.committed :: t.maybe })
  end

(* End-of-run scan: among versions some commit actually carried, equal
   version numbers must mean equal bytes.  (Residue of an aborted write
   sits at a version no commit ever used and is skipped — the client was
   told that write failed.) *)
let final_check t cluster =
  let sites = Site_set.to_list (Cluster.universe cluster) in
  List.iter
    (fun site_a ->
      List.iter
        (fun site_b ->
          if site_a < site_b then begin
            let a = Cluster.node cluster site_a and b = Cluster.node cluster site_b in
            let version = Node.data_version a in
            if
              version = Node.data_version b
              && Hashtbl.mem t.committed_versions version
              && Node.content a <> Node.content b
            then
              flag t
                (Content_fork
                   {
                     version;
                     site_a;
                     content_a = Node.content a;
                     site_b;
                     content_b = Node.content b;
                   })
          end)
        sites)
    sites

let violations t = List.rev t.violations
let is_safe t = t.violations = []
let commits_seen t = t.commits_seen
let reads_checked t = t.reads_checked

let pp_violation ppf = function
  | Generation_conflict g ->
      Fmt.pf ppf
        "generation %d committed twice: site %d saw (v%d, %a) but site %d saw (v%d, %a)"
        g.op_no g.site_a g.version_a Site_set.pp g.partition_a g.site_b g.version_b
        Site_set.pp g.partition_b
  | Non_monotone_op { site; before; after } ->
      Fmt.pf ppf "site %d applied operation %d after %d" site after before
  | Version_regression { site; before; after } ->
      Fmt.pf ppf "site %d regressed from version %d to %d" site before after
  | Stale_read { at; got; wanted } ->
      Fmt.pf ppf "read at site %d returned %S, legal: %a" at got
        Fmt.(list ~sep:comma (quote string))
        wanted
  | Content_fork { version; site_a; content_a; site_b; content_b } ->
      Fmt.pf ppf "version %d forked: site %d holds %S, site %d holds %S" version
        site_a content_a site_b content_b
