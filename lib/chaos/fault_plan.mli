(** Seeded, composable fault plans for the message transport.

    Builds a {!Dynvote_msgsim.Transport.plan} from a declarative
    configuration and a splitmix64 stream: per-link Bernoulli loss,
    duplication, bounded random delay (reordering) and scheduled link
    outage windows, applied in that fixed order.  The same seed replays
    the same faults against the same message sequence. *)

type flap = {
  site_a : Site_set.site;
  site_b : Site_set.site;
  from_t : float;  (** window start (simulated seconds, inclusive) *)
  till : float;    (** window end (exclusive) *)
}
(** A scheduled outage of one link, in both directions. *)

type config = {
  loss : float;          (** per-message Bernoulli loss probability *)
  duplicate : float;     (** probability of injecting an extra copy *)
  delay : float;         (** probability of extra latency *)
  delay_bound : float;   (** extra latency is uniform in [0, bound) *)
  flaps : flap list;     (** scheduled link outage windows *)
  atomic_commits : bool;
      (** exempt COMMIT messages from every fault.  The paper's model
          makes update operations atomic; a partially delivered COMMIT
          breaks that assumption and lets a later quorum re-issue an
          already-used generation number.  [true] honours the model (the
          safe flavors must then show zero violations); [false]
          reproduces the hole for the oracle to catch. *)
}

val silent : config
(** No faults, atomic commits — the identity plan. *)

val make :
  rng:Dynvote_prng.Splitmix64.t ->
  ?reliable:(Site_set.site -> Site_set.site -> bool) ->
  config ->
  Dynvote_msgsim.Transport.plan
(** [make ~rng config] draws every probabilistic choice from [rng].
    [reliable a b] (default: never) marks links that cannot lose or flap
    — same-segment pairs under the topological flavors, whose model
    reads same-segment silence as site death.  Duplication and delay
    still apply to reliable links.
    @raise Invalid_argument on out-of-range probabilities or negative
    bounds. *)

val pp_config : Format.formatter -> config -> unit
