(** Seeded, composable fault plans for the message transport.

    Builds a {!Dynvote_msgsim.Transport.plan} from a declarative
    configuration and a splitmix64 stream: per-link Bernoulli loss,
    duplication, bounded random delay (reordering) and scheduled link
    outage windows, applied in that fixed order.  The same seed replays
    the same faults against the same message sequence. *)

type flap = {
  site_a : Site_set.site;
  site_b : Site_set.site;
  from_t : float;  (** window start (simulated seconds, inclusive) *)
  till : float;    (** window end (exclusive) *)
}
(** A scheduled outage of one link, in both directions. *)

type config = {
  loss : float;          (** per-message Bernoulli loss probability *)
  duplicate : float;     (** probability of injecting an extra copy *)
  delay : float;         (** probability of extra latency *)
  delay_bound : float;   (** extra latency is uniform in [0, bound) *)
  flaps : flap list;     (** scheduled link outage windows *)
  atomic_commits : bool;
      (** exempt COMMIT messages from every fault.  The paper's model
          makes update operations atomic; a partially delivered COMMIT
          breaks that assumption and lets a later quorum re-issue an
          already-used generation number.  [true] honours the model (the
          safe flavors must then show zero violations); [false]
          reproduces the hole for the oracle to catch. *)
}

val silent : config
(** No faults, atomic commits — the identity plan. *)

val make :
  rng:Dynvote_prng.Splitmix64.t ->
  ?reliable:(Site_set.site -> Site_set.site -> bool) ->
  config ->
  Dynvote_msgsim.Transport.plan
(** [make ~rng config] draws every probabilistic choice from [rng].
    [reliable a b] (default: never) marks links that cannot lose or flap
    — same-segment pairs under the topological flavors, whose model
    reads same-segment silence as site death.  Duplication and delay
    still apply to reliable links.
    @raise Invalid_argument on out-of-range probabilities or negative
    bounds. *)

val pp_config : Format.formatter -> config -> unit

(** {2 Storage faults}

    The disk-side fault vocabulary, shared by the fault-injecting
    filesystem ([Dynvote_faultfs]), the crash-point recovery matrix, and
    the CLI's [--fault] flags.  Unlike the probabilistic message plan, a
    storage trigger is deterministic — "the [nth] operation of this
    class on this file fails this way" — so every matrix cell replays
    identically. *)

module Storage : sig
  type fault =
    | Eio  (** write fails outright *)
    | Enospc  (** write fails: device full *)
    | Short_write
        (** write lands partially, then the device dies (every further
            write on the file fails) *)
    | Fsync_fail  (** fsync raises; nothing is promised durable *)
    | Fsync_lie
        (** fsync returns success but flushes nothing — the silent
            failure mode of consumer disks and some fsync bugs *)
    | Rename_loss
        (** the directory fsync after a rename is dropped: the name
            switch is not durable and a crash undoes it *)
    | Read_eio  (** read fails (surfaces as [Sys_error]) *)
    | Crash  (** the process dies at this exact operation *)

  type file_class = Ensemble | Data | Oplog | Shard | Any_file
  (** [Shard]: the sharded object space's per-key logs
      ([shard-<i>.dvl], their temp files, and the [rids.dvr]
      sidecar). *)

  type op = Create | Write | Fsync | Rename | Fsync_dir | Read

  type trigger = { fault : fault; file : file_class; op : op; nth : int }
  (** Strike the [nth] (1-based) [op] on a file of class [file] with
      [fault].  A trigger fires at most once. *)

  val all_faults : fault list
  val fault_name : fault -> string
  val fault_of_name : string -> fault option

  val default_op : fault -> op
  (** The operation class each fault naturally strikes. *)

  val file_name : file_class -> string
  val file_of_name : string -> file_class option
  val op_name : op -> string

  val trigger : ?file:file_class -> ?nth:int -> fault -> trigger
  (** A trigger at the fault's {!default_op}. *)

  val trigger_of_string : string -> (trigger, string) result
  (** Parse ["<fault>[@nth][:file]"] — e.g. ["fsync-fail@2:data"],
      ["eio:oplog"], ["crash"].  The operation is the fault's default. *)

  val pp_trigger : Format.formatter -> trigger -> unit
end
