(* Randomized fault schedules.

   A schedule is a list of steps (operations, crash/restart events,
   stable-storage corruption, partition changes) plus a fault-plan
   configuration for the transport.  Steps decode deterministically from
   plain integers, which keeps two properties for free: a splitmix64
   stream of integers is a reproducible schedule generator, and qcheck
   can shrink a failing schedule by shrinking its integer encoding —
   the minimal counterexample falls out of the standard list shrinker. *)

module Splitmix64 = Dynvote_prng.Splitmix64

type corruption = Truncate | Bit_flip | Zero

type step =
  | Write of Site_set.site
  | Read of Site_set.site
  | Crash of Site_set.site
  | Crash_coordinator of Site_set.site
      (* a write whose coordinator is killed at the configured crash
         point (after the decision, or mid-commit in unsafe mode) *)
  | Restart of Site_set.site * corruption option
      (* restart without recovery; an optional torn/corrupted stable
         record is discovered at reload *)
  | Recover of Site_set.site
  | Partition of int (* bitmask over the universe's sites, rank order *)
  | Heal

type t = { steps : step list; faults : Fault_plan.config }

let corruption_name = function
  | Truncate -> "truncate"
  | Bit_flip -> "bit-flip"
  | Zero -> "zero"

let pp_step ppf = function
  | Write site -> Fmt.pf ppf "write@%d" site
  | Read site -> Fmt.pf ppf "read@%d" site
  | Crash site -> Fmt.pf ppf "crash %d" site
  | Crash_coordinator site -> Fmt.pf ppf "write@%d+crash" site
  | Restart (site, None) -> Fmt.pf ppf "restart %d" site
  | Restart (site, Some c) -> Fmt.pf ppf "restart %d (%s)" site (corruption_name c)
  | Recover site -> Fmt.pf ppf "recover %d" site
  | Partition mask -> Fmt.pf ppf "partition %#x" mask
  | Heal -> Fmt.pf ppf "heal"

let pp ppf t =
  Fmt.pf ppf "[%a] %a" Fmt.(list ~sep:semi pp_step) t.steps Fault_plan.pp_config t.faults

(* Every non-negative integer decodes to a step; operations dominate the
   distribution so schedules do real work between the faults. *)
let step_of_int ~n_sites code =
  let code = abs code in
  let site = code mod n_sites in
  let detail = code / (n_sites * 12) in
  match code / n_sites mod 12 with
  | 0 | 1 | 2 -> Write site
  | 3 | 4 | 5 -> Read site
  | 6 -> Crash site
  | 7 -> Recover site
  | 8 ->
      let corruption =
        match detail mod 4 with
        | 0 -> None
        | 1 -> Some Truncate
        | 2 -> Some Bit_flip
        | _ -> Some Zero
      in
      Restart (site, corruption)
  | 9 ->
      let mask = detail mod (1 lsl n_sites) in
      if mask = 0 || mask = (1 lsl n_sites) - 1 then Heal else Partition mask
  | 10 -> Heal
  | _ -> Crash_coordinator site

let of_ints ~n_sites ?(faults = Fault_plan.silent) codes =
  { steps = List.map (step_of_int ~n_sites) codes; faults }

(* Seeded generation: a burst of integers decoded as above, plus a fault
   configuration drawn from the same stream.  [intensity] scales every
   fault probability; 0 is a fault-free schedule. *)
let random_faults ~rng ~horizon ~n_sites ~intensity =
  let scaled bound = Splitmix64.next_float rng *. bound *. intensity in
  let flap () =
    let site_a = Splitmix64.next_int rng n_sites in
    let site_b = (site_a + 1 + Splitmix64.next_int rng (n_sites - 1)) mod n_sites in
    let from_t = Splitmix64.next_float rng *. horizon in
    { Fault_plan.site_a; site_b; from_t; till = from_t +. Splitmix64.next_float rng }
  in
  let n_flaps =
    if intensity = 0.0 then 0 else Splitmix64.next_int rng 3
  in
  {
    Fault_plan.loss = scaled 0.15;
    duplicate = scaled 0.15;
    delay = scaled 0.3;
    delay_bound = 0.05;
    flaps = List.init n_flaps (fun _ -> flap ());
    atomic_commits = true;
  }

let random ~rng ~n_sites ?(intensity = 1.0) ~length () =
  let codes = List.init length (fun _ -> Splitmix64.next_int rng (n_sites * 12 * 4096)) in
  (* Each operation drains at most (1 + retries) timeouts; a generous
     per-step horizon keeps flap windows inside the run. *)
  let horizon = float_of_int length *. 2.0 in
  let faults = random_faults ~rng ~horizon ~n_sites ~intensity in
  of_ints ~n_sites ~faults codes
