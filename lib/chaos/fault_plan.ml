(* Seeded, composable fault plans over the message transport.

   A plan is consulted once per send; this module builds one from a
   declarative configuration and a splitmix64 stream, so the same seed
   always injects the same faults at the same messages.  Faults compose
   in a fixed order: scheduled link flaps first (an outage window beats
   everything), then Bernoulli loss, then duplication, then bounded
   random delay.

   The [atomic_commits] switch exempts COMMIT messages from every fault.
   The paper's protocols assume update operations are atomic: a COMMIT
   that reaches only part of its recipient set (loss, flap, or a delay
   that outlives the operation) leaves two groups believing different
   pasts, and a later quorum drawn entirely from the group that missed
   the commit re-issues the same generation number with different
   contents — the exact hole the atomic-action assumption closes.  With
   [atomic_commits = true] (the default) the harness honours that model
   and the safe flavors must show zero violations; switching it off
   reproduces the hole on demand, and the oracle duly reports it. *)

module Transport = Dynvote_msgsim.Transport
module Message = Dynvote_msgsim.Message
module Splitmix64 = Dynvote_prng.Splitmix64

type flap = {
  site_a : Site_set.site;
  site_b : Site_set.site;
  from_t : float;
  till : float;
}

type config = {
  loss : float;            (* per-message Bernoulli loss probability *)
  duplicate : float;       (* probability of injecting an extra copy *)
  delay : float;           (* probability of extra latency *)
  delay_bound : float;     (* extra latency is uniform in [0, bound) *)
  flaps : flap list;       (* scheduled link outage windows *)
  atomic_commits : bool;   (* exempt COMMITs (the paper's atomic updates) *)
}

let silent =
  {
    loss = 0.0;
    duplicate = 0.0;
    delay = 0.0;
    delay_bound = 0.0;
    flaps = [];
    atomic_commits = true;
  }

let validate config =
  let prob name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Fault_plan: %s must be a probability" name)
  in
  prob "loss" config.loss;
  prob "duplicate" config.duplicate;
  prob "delay" config.delay;
  if config.delay_bound < 0.0 then invalid_arg "Fault_plan: negative delay bound";
  List.iter
    (fun { from_t; till; _ } ->
      if till < from_t then invalid_arg "Fault_plan: flap window ends before it starts")
    config.flaps

let flapped config ~now message =
  let a = message.Message.src and b = message.Message.dst in
  List.exists
    (fun flap ->
      ((flap.site_a = a && flap.site_b = b) || (flap.site_a = b && flap.site_b = a))
      && now >= flap.from_t && now < flap.till)
    config.flaps

let make ~rng ?(reliable = fun _ _ -> false) config =
  validate config;
  fun ~now message ->
    (* [reliable] links (same-LAN pairs under the topological flavors)
       never lose or flap: the segment model reads same-segment silence
       as death, so a lossy intra-segment link would break its premise.
       Duplication and bounded delay keep applying — they are harmless
       to that reading. *)
    let lossy = not (reliable message.Message.src message.Message.dst) in
    match message.Message.payload with
    | Message.Commit _ when config.atomic_commits -> Transport.Pass
    | _ ->
        if lossy && flapped config ~now message then Transport.Drop_it Transport.Flap
        else if lossy && config.loss > 0.0 && Splitmix64.next_float rng < config.loss
        then Transport.Drop_it Transport.Loss
        else begin
          let copies =
            if config.duplicate > 0.0 && Splitmix64.next_float rng < config.duplicate
            then [ 0.0; 0.0 ]
            else [ 0.0 ]
          in
          let delay_one d =
            if config.delay > 0.0 && Splitmix64.next_float rng < config.delay then
              d +. (Splitmix64.next_float rng *. config.delay_bound)
            else d
          in
          match List.map delay_one copies with
          | [ 0.0 ] -> Transport.Pass
          | copies -> Transport.Deliver_copies copies
        end

let pp_config ppf config =
  Fmt.pf ppf "loss=%.3f dup=%.3f delay=%.3f/%.3fs flaps=%d commits=%s"
    config.loss config.duplicate config.delay config.delay_bound
    (List.length config.flaps)
    (if config.atomic_commits then "atomic" else "faulty")
