(* Seeded, composable fault plans over the message transport.

   A plan is consulted once per send; this module builds one from a
   declarative configuration and a splitmix64 stream, so the same seed
   always injects the same faults at the same messages.  Faults compose
   in a fixed order: scheduled link flaps first (an outage window beats
   everything), then Bernoulli loss, then duplication, then bounded
   random delay.

   The [atomic_commits] switch exempts COMMIT messages from every fault.
   The paper's protocols assume update operations are atomic: a COMMIT
   that reaches only part of its recipient set (loss, flap, or a delay
   that outlives the operation) leaves two groups believing different
   pasts, and a later quorum drawn entirely from the group that missed
   the commit re-issues the same generation number with different
   contents — the exact hole the atomic-action assumption closes.  With
   [atomic_commits = true] (the default) the harness honours that model
   and the safe flavors must show zero violations; switching it off
   reproduces the hole on demand, and the oracle duly reports it. *)

module Transport = Dynvote_msgsim.Transport
module Message = Dynvote_msgsim.Message
module Splitmix64 = Dynvote_prng.Splitmix64

type flap = {
  site_a : Site_set.site;
  site_b : Site_set.site;
  from_t : float;
  till : float;
}

type config = {
  loss : float;            (* per-message Bernoulli loss probability *)
  duplicate : float;       (* probability of injecting an extra copy *)
  delay : float;           (* probability of extra latency *)
  delay_bound : float;     (* extra latency is uniform in [0, bound) *)
  flaps : flap list;       (* scheduled link outage windows *)
  atomic_commits : bool;   (* exempt COMMITs (the paper's atomic updates) *)
}

let silent =
  {
    loss = 0.0;
    duplicate = 0.0;
    delay = 0.0;
    delay_bound = 0.0;
    flaps = [];
    atomic_commits = true;
  }

let validate config =
  let prob name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Fault_plan: %s must be a probability" name)
  in
  prob "loss" config.loss;
  prob "duplicate" config.duplicate;
  prob "delay" config.delay;
  if config.delay_bound < 0.0 then invalid_arg "Fault_plan: negative delay bound";
  List.iter
    (fun { from_t; till; _ } ->
      if till < from_t then invalid_arg "Fault_plan: flap window ends before it starts")
    config.flaps

let flapped config ~now message =
  let a = message.Message.src and b = message.Message.dst in
  List.exists
    (fun flap ->
      ((flap.site_a = a && flap.site_b = b) || (flap.site_a = b && flap.site_b = a))
      && now >= flap.from_t && now < flap.till)
    config.flaps

let make ~rng ?(reliable = fun _ _ -> false) config =
  validate config;
  fun ~now message ->
    (* [reliable] links (same-LAN pairs under the topological flavors)
       never lose or flap: the segment model reads same-segment silence
       as death, so a lossy intra-segment link would break its premise.
       Duplication and bounded delay keep applying — they are harmless
       to that reading. *)
    let lossy = not (reliable message.Message.src message.Message.dst) in
    match message.Message.payload with
    | Message.Commit _ when config.atomic_commits -> Transport.Pass
    | _ ->
        if lossy && flapped config ~now message then Transport.Drop_it Transport.Flap
        else if lossy && config.loss > 0.0 && Splitmix64.next_float rng < config.loss
        then Transport.Drop_it Transport.Loss
        else begin
          let copies =
            if config.duplicate > 0.0 && Splitmix64.next_float rng < config.duplicate
            then [ 0.0; 0.0 ]
            else [ 0.0 ]
          in
          let delay_one d =
            if config.delay > 0.0 && Splitmix64.next_float rng < config.delay then
              d +. (Splitmix64.next_float rng *. config.delay_bound)
            else d
          in
          match List.map delay_one copies with
          | [ 0.0 ] -> Transport.Pass
          | copies -> Transport.Deliver_copies copies
        end

let pp_config ppf config =
  Fmt.pf ppf "loss=%.3f dup=%.3f delay=%.3f/%.3fs flaps=%d commits=%s"
    config.loss config.duplicate config.delay config.delay_bound
    (List.length config.flaps)
    (if config.atomic_commits then "atomic" else "faulty")

(* --- storage fault vocabulary --------------------------------------- *)

(* The disk-side counterpart of the message plan above: one shared
   vocabulary naming what can go wrong beneath the persistence layer, so
   the fault-injecting filesystem (lib/faultfs), the crash-point matrix,
   and the CLI flags all speak the same language.  A trigger is
   deterministic, not probabilistic: "the [nth] operation of this class
   on this file fails this way" — which is what makes every matrix cell
   reproducible. *)

module Storage = struct
  type fault =
    | Eio            (* write fails outright *)
    | Enospc         (* write fails: device full *)
    | Short_write    (* write lands partially, then the device dies *)
    | Fsync_fail     (* fsync raises; nothing promised durable *)
    | Fsync_lie      (* fsync "succeeds" but flushes nothing *)
    | Rename_loss    (* the directory fsync is dropped: the rename is
                        not durable and a crash undoes it *)
    | Read_eio       (* read fails (surfaces as [Sys_error]) *)
    | Crash          (* the process dies at this exact operation *)

  type file_class = Ensemble | Data | Oplog | Shard | Any_file

  type op = Create | Write | Fsync | Rename | Fsync_dir | Read

  type trigger = { fault : fault; file : file_class; op : op; nth : int }

  let all_faults =
    [ Eio; Enospc; Short_write; Fsync_fail; Fsync_lie; Rename_loss; Read_eio; Crash ]

  let fault_name = function
    | Eio -> "eio"
    | Enospc -> "enospc"
    | Short_write -> "short-write"
    | Fsync_fail -> "fsync-fail"
    | Fsync_lie -> "fsync-lie"
    | Rename_loss -> "rename-loss"
    | Read_eio -> "read-eio"
    | Crash -> "crash"

  let fault_of_name name =
    List.find_opt (fun f -> fault_name f = name) all_faults

  (* The operation class each fault naturally strikes; [Crash] defaults
     to the write but the matrix places it at every operation
     explicitly. *)
  let default_op = function
    | Eio | Enospc | Short_write | Crash -> Write
    | Fsync_fail | Fsync_lie -> Fsync
    | Rename_loss -> Fsync_dir
    | Read_eio -> Read

  let file_name = function
    | Ensemble -> "ensemble"
    | Data -> "data"
    | Oplog -> "oplog"
    | Shard -> "shard"
    | Any_file -> "any"

  let file_of_name = function
    | "ensemble" -> Some Ensemble
    | "data" -> Some Data
    | "oplog" -> Some Oplog
    | "shard" -> Some Shard
    | "any" -> Some Any_file
    | _ -> None

  let op_name = function
    | Create -> "create"
    | Write -> "write"
    | Fsync -> "fsync"
    | Rename -> "rename"
    | Fsync_dir -> "fsync-dir"
    | Read -> "read"

  let trigger ?(file = Any_file) ?(nth = 1) fault =
    { fault; file; op = default_op fault; nth }

  (* "<fault>[@nth][:file]", e.g. "fsync-fail@2:data".  The operation is
     the fault's default; programmatic triggers can place any fault at
     any operation. *)
  let trigger_of_string text =
    let fault_part, file =
      match String.index_opt text ':' with
      | None -> (text, Ok Any_file)
      | Some i ->
          let name = String.sub text (i + 1) (String.length text - i - 1) in
          ( String.sub text 0 i,
            match file_of_name name with
            | Some f -> Ok f
            | None -> Error (Printf.sprintf "unknown file class %S" name) )
    in
    let name_part, nth =
      match String.index_opt fault_part '@' with
      | None -> (fault_part, Ok 1)
      | Some i -> (
          let digits =
            String.sub fault_part (i + 1) (String.length fault_part - i - 1)
          in
          ( String.sub fault_part 0 i,
            match int_of_string_opt digits with
            | Some n when n >= 1 -> Ok n
            | Some _ | None ->
                Error (Printf.sprintf "bad occurrence count %S" digits) ))
    in
    match (fault_of_name name_part, nth, file) with
    | _, Error reason, _ | _, _, Error reason -> Error reason
    | None, _, _ ->
        Error
          (Printf.sprintf "unknown fault %S (one of %s)" name_part
             (String.concat ", " (List.map fault_name all_faults)))
    | Some fault, Ok nth, Ok file -> Ok { fault; file; op = default_op fault; nth }

  let pp_trigger ppf { fault; file; op; nth } =
    Fmt.pf ppf "%s@@%d:%s/%s" (fault_name fault) nth (file_name file) (op_name op)
end
