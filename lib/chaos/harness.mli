(** The chaos harness: run seeded fault schedules against the
    message-level protocol engine with the safety {!Oracle} attached.

    Every schedule gets a fresh cluster under relaxed ([Deadline])
    delivery, a seeded {!Fault_plan} on the transport, coordinator
    crashes via the cluster's chaos hooks, and stable-record corruption
    on restarts.  Results are fully determined by the seed. *)

type config = {
  flavor : Decision.flavor;
  universe : Site_set.t;
  segment_of : Site_set.site -> int;
  delivery : Dynvote_msgsim.Cluster.delivery;
  initial_content : string;
  crash_point : [ `After_decide | `Mid_commit ];
      (** where {!Schedule.Crash_coordinator} strikes.  [`After_decide]
          aborts before anything is distributed — safe under every
          flavor.  [`Mid_commit] tears the commit wave in half, outside
          the paper's atomic-update model; the oracle flags the resulting
          generation conflicts. *)
  expose_commits : bool;
      (** force [atomic_commits = false] on every fault plan: COMMITs
          suffer loss/flap/delay like any other message — the second half
          of dropping the atomic-update assumption. *)
}

val default_config : ?flavor:Decision.flavor -> unit -> config
(** Five sites in segments [{0,1} {2,3} {4}], deadline delivery
    (timeout 0.25 s, 2 retries, backoff 2.0), [`After_decide] crashes.
    [flavor] defaults to LDV. *)

type result = {
  violations : Oracle.violation list;
  granted : int;
  denied : int;
  aborted : int;
  commits : int;    (** commit applications witnessed by the oracle *)
  corrupted : int;  (** stable records mangled before a restart *)
  op_log : (Schedule.step * bool * string option) list;
      (** executed operations in order: step, granted, read content —
          the basis of delivery-equivalence comparisons *)
}

val run :
  ?rng:Dynvote_prng.Splitmix64.t ->
  config ->
  Schedule.t ->
  result * Dynvote_msgsim.Transport.stats

val run_ints :
  ?rng:Dynvote_prng.Splitmix64.t ->
  ?faults:Fault_plan.config ->
  config ->
  int list ->
  result
(** Decode integers as a {!Schedule} and run it — the entry point qcheck
    properties shrink through. *)

(** {2 Step-at-a-time execution}

    A {e session} is one live schedule execution.  {!run} is a session
    driven start to finish; the model checker drives one step by step,
    branching with {!checkpoint}/{!rollback}.  Both paths execute the
    same transition code, so a counterexample found by exhaustive search
    replays verbatim under {!run} (and vice versa). *)

type session

val make_session :
  ?rng:Dynvote_prng.Splitmix64.t -> ?faults:Fault_plan.config -> config -> session
(** A fresh cluster with the fault plan installed ([faults] defaults to
    {!Fault_plan.silent}) and the oracle attached. *)

val cluster : session -> Dynvote_msgsim.Cluster.t
val oracle : session -> Oracle.t

val apply_step : session -> Schedule.step -> unit
(** Execute one schedule step exactly as {!run} would: inapplicable steps
    (writing at a down site, restarting an up one, …) are no-ops. *)

val session_result : session -> result
(** The tallies so far.  Does not run the oracle's final check — call
    {!Oracle.final_check} (or {!Oracle.check_step} per step) yourself. *)

type checkpoint
(** Everything {!apply_step} mutates, except the rng stream — it is only
    consumed by [Bit_flip] corruption, which branching explorers exclude
    from their action alphabet precisely to stay rng-free. *)

val checkpoint : session -> checkpoint

val rollback : session -> checkpoint -> unit
(** Rewind the session; replaying the same steps after a rollback is
    bit-identical to the first execution. *)

type policy = { name : string; flavor : Decision.flavor; expect_safe : bool }

val policies : policy list
(** The message-driven policies: dv, ldv, odv, tdv, otdv (as published —
    expected unsafe), tdv-safe, otdv-safe.  MCV is stateless and has no
    message-level protocol rounds to attack, so it is not listed. *)

val policy_of_string : string -> policy option

type summary = {
  policy : string;
  expect_safe : bool;
  schedules : int;
  steps : int;
  granted : int;
  denied : int;
  aborted : int;
  commits : int;
  corrupted : int;
  sent : int;
  delivered : int;
  dropped_partition : int;
  dropped_fault : int;
  duplicated : int;
  delayed : int;
  flapped : int;
  failure : (int * Schedule.t * Oracle.violation list) option;
      (** first failing schedule: index, schedule, its violations *)
  failures : int;  (** schedules with at least one violation *)
}

val run_many :
  ?config:config -> policy:policy -> seed:int64 -> schedules:int -> unit -> summary
(** Run [schedules] randomized schedules (lengths, intensities, faults
    and steps all drawn from [seed]) and aggregate.  Deterministic: the
    same seed yields an identical summary. *)

val verdict_ok : summary -> bool
(** No violations, or the policy was expected unsafe. *)

val pp_summary : Format.formatter -> summary -> unit
(** The one-line verdict. *)

val pp_failure : Format.formatter -> summary -> unit
(** Details of the first failing schedule, if any. *)
