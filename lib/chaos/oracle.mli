(** The safety oracle of the chaos harness: the executable invariant
    spec ({!Dynvote_invariant.Spec}) adapted to a msgsim cluster.

    Every invariant — generation agreement, per-site monotonicity,
    one-copy register reads, no content forks — is stated once, in the
    spec module; this interface re-exports it (types are shared, so an
    [Oracle.t] {e is} a [Spec.t]) and adds the cluster hooks: the
    commit-witness installation, outcome feeds, and the per-step fork
    scan over a live cluster's nodes. *)

include module type of Dynvote_invariant.Spec
  with type t = Dynvote_invariant.Spec.t
   and type snapshot = Dynvote_invariant.Spec.snapshot
   and type violation = Dynvote_invariant.Spec.violation
   and type replay_event = Dynvote_invariant.Spec.replay_event

val attach : t -> Dynvote_msgsim.Cluster.t -> unit
(** Install the commit witness on every node of the cluster. *)

val note_write : t -> content:string -> Dynvote_msgsim.Cluster.outcome -> unit
(** Feed a write's outcome to the register model. *)

val note_read : t -> at:Site_set.site -> Dynvote_msgsim.Cluster.outcome -> unit
(** Check a granted read against the register model. *)

val check_step : t -> Dynvote_msgsim.Cluster.t -> unit
(** Scan the current cluster state for content forks at committed
    versions.  Safe to call after every schedule step — each fork is
    flagged once, at the first state exhibiting it, and not re-reported
    by later calls. *)

val final_check : t -> Dynvote_msgsim.Cluster.t -> unit
(** Alias of {!check_step}, kept for the end-of-run call site. *)
