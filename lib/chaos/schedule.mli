(** Randomized fault schedules for the chaos harness.

    A schedule is a step list (operations, crashes, restarts with
    optional stable-record corruption, partition changes) plus a
    transport fault configuration.  Steps decode deterministically from
    integers: a seeded integer stream is a reproducible generator, and
    qcheck shrinks failing schedules through their integer encoding. *)

type corruption =
  | Truncate  (** torn write: record cut in half *)
  | Bit_flip  (** bit rot: one flipped bit *)
  | Zero      (** record lost entirely *)

type step =
  | Write of Site_set.site
  | Read of Site_set.site
  | Crash of Site_set.site
  | Crash_coordinator of Site_set.site
      (** a write whose coordinator is killed at the harness's configured
          crash point *)
  | Restart of Site_set.site * corruption option
      (** restart without recovery; the corruption, if any, is applied to
          the stable record and discovered at reload *)
  | Recover of Site_set.site
  | Partition of int
      (** bitmask over the universe's sites in rank order; bit set =
          first group *)
  | Heal

type t = { steps : step list; faults : Fault_plan.config }

val step_of_int : n_sites:int -> int -> step
(** Total: every integer is some step; operations dominate. *)

val of_ints : n_sites:int -> ?faults:Fault_plan.config -> int list -> t
(** [faults] defaults to {!Fault_plan.silent}. *)

val random :
  rng:Dynvote_prng.Splitmix64.t ->
  n_sites:int ->
  ?intensity:float ->
  length:int ->
  unit ->
  t
(** Draw a [length]-step schedule and a fault configuration from [rng].
    [intensity] scales the fault probabilities (default 1.0; 0.0 is
    fault-free).  Generated configurations keep commits atomic. *)

val corruption_name : corruption -> string
val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> t -> unit
