(* The chaos harness: execute fault schedules against the message-level
   protocol engine with the safety oracle attached, and aggregate what
   the adversary managed to do.

   Each schedule gets its own cluster (relaxed [Deadline] delivery — the
   paper's quiet-network model has nothing to be chaotic about), its own
   seeded fault plan on the transport, and its own oracle.  Crash steps
   use the cluster's chaos hooks to kill coordinators at the configured
   crash point; restart steps optionally mangle the stable record first,
   so the codec's recovery path is exercised end to end. *)

module Cluster = Dynvote_msgsim.Cluster
module Node = Dynvote_msgsim.Node
module Transport = Dynvote_msgsim.Transport
module Splitmix64 = Dynvote_prng.Splitmix64

type config = {
  flavor : Decision.flavor;
  universe : Site_set.t;
  segment_of : Site_set.site -> int;
  delivery : Cluster.delivery;
  initial_content : string;
  crash_point : [ `After_decide | `Mid_commit ];
      (* where Crash_coordinator steps strike.  [`After_decide] aborts
         before anything is distributed and is safe under every flavor;
         [`Mid_commit] tears the commit wave in half — outside the
         paper's atomic-update model, and duly flagged by the oracle. *)
  expose_commits : bool;
      (* force [atomic_commits = false] on every fault plan, subjecting
         COMMITs to loss/flap/delay like any other message — the second
         half of dropping the atomic-update assumption. *)
}

let default_config ?(flavor = Decision.ldv_flavor) () =
  {
    flavor;
    universe = Site_set.of_list [ 0; 1; 2; 3; 4 ];
    segment_of = (fun site -> site / 2);
    delivery = Cluster.Deadline { timeout = 0.25; retries = 2; backoff = 2.0 };
    initial_content = "g0";
    crash_point = `After_decide;
    expose_commits = false;
  }

type result = {
  violations : Oracle.violation list;
  granted : int;
  denied : int;
  aborted : int;
  commits : int;
  corrupted : int;          (* stable records mangled before a restart *)
  op_log : (Schedule.step * bool * string option) list;
      (* executed operations in order: step, granted, read content *)
}

let corrupt_record ~rng node corruption =
  let record = Node.stable_record node in
  let mangled =
    match corruption with
    | Schedule.Zero -> ""
    | Schedule.Truncate -> String.sub record 0 (String.length record / 2)
    | Schedule.Bit_flip ->
        if String.length record = 0 then ""
        else begin
          let bytes = Bytes.of_string record in
          let i = Splitmix64.next_int rng (Bytes.length bytes) in
          let bit = Splitmix64.next_int rng 8 in
          Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl bit)));
          Bytes.to_string bytes
        end
  in
  Node.set_stable_record node mangled

let run ?(rng = Splitmix64.create 0x51D1CEL) config (schedule : Schedule.t) =
  let cluster =
    Cluster.create ~flavor:config.flavor ~segment_of:config.segment_of
      ~initial_content:config.initial_content ~delivery:config.delivery
      ~universe:config.universe ()
  in
  let transport = Cluster.transport cluster in
  (* Topological flavors read same-segment silence as site death: their
     network model (LAN segments joined by gateways) permits neither
     lossy intra-segment links nor partitions that cut a segment in two.
     Chaos must honour that model to make a fair safety claim, so for
     those flavors intra-segment links are reliable and partition masks
     select whole segments. *)
  let topological = config.flavor.Decision.topological in
  let reliable a b = topological && config.segment_of a = config.segment_of b in
  let faults =
    if config.expose_commits then { schedule.faults with Fault_plan.atomic_commits = false }
    else schedule.faults
  in
  Transport.set_plan transport (Fault_plan.make ~rng:(Splitmix64.split rng) ~reliable faults);
  let oracle = Oracle.create ~initial_content:config.initial_content in
  Oracle.attach oracle cluster;
  let granted = ref 0 and denied = ref 0 and aborted = ref 0 and corrupted = ref 0 in
  let op_log = ref [] in
  let writes = ref 0 in
  let note step (outcome : Cluster.outcome) =
    if outcome.Cluster.granted then incr granted
    else if outcome.Cluster.aborted then incr aborted
    else incr denied;
    op_log := (step, outcome.Cluster.granted, outcome.Cluster.content) :: !op_log
  in
  let up site = Site_set.mem site (Cluster.up_sites cluster) in
  let can_coordinate site = up site && not (Node.is_amnesiac (Cluster.node cluster site)) in
  let ranked = Site_set.to_list config.universe in
  let do_write step site ~with_crash =
    incr writes;
    let content = Printf.sprintf "w%d" !writes in
    if with_crash then begin
      let armed = ref true in
      Cluster.set_chaos_hook cluster (fun event ->
          match (event, config.crash_point) with
          | Cluster.After_decide { coordinator; granted = true }, `After_decide
            when !armed && coordinator = site ->
              armed := false;
              Cluster.crash cluster site
          | Cluster.After_commit_send { coordinator; sent; total; _ }, `Mid_commit
            when !armed && coordinator = site && sent >= max 1 (total / 2) ->
              armed := false;
              Cluster.crash cluster site
          | _ -> ())
    end;
    let finish () = if with_crash then Cluster.clear_chaos_hook cluster in
    let outcome = Fun.protect ~finally:finish (fun () -> Cluster.write cluster ~at:site ~content) in
    Oracle.note_write oracle ~content outcome;
    note step outcome
  in
  List.iter
    (fun step ->
      match step with
      | Schedule.Write site -> if can_coordinate site then do_write step site ~with_crash:false
      | Schedule.Crash_coordinator site ->
          if can_coordinate site then do_write step site ~with_crash:true
      | Schedule.Read site ->
          if can_coordinate site then begin
            let outcome = Cluster.read cluster ~at:site in
            Oracle.note_read oracle ~at:site outcome;
            note step outcome
          end
      | Schedule.Crash site -> if up site then Cluster.crash cluster site
      | Schedule.Restart (site, corruption) ->
          if not (up site) then begin
            (match corruption with
            | Some c ->
                incr corrupted;
                corrupt_record ~rng (Cluster.node cluster site) c
            | None -> ());
            Cluster.restart_silently cluster site
          end
      | Schedule.Recover site -> note step (Cluster.recover cluster ~site)
      | Schedule.Partition mask ->
          let selected i site =
            if topological then mask land (1 lsl (config.segment_of site)) <> 0
            else mask land (1 lsl i) <> 0
          in
          let group_a = Site_set.of_list (List.filteri selected ranked) in
          let group_b = Site_set.diff config.universe group_a in
          if Site_set.is_empty group_a || Site_set.is_empty group_b then
            Cluster.heal cluster
          else Cluster.partition cluster [ group_a; group_b ]
      | Schedule.Heal -> Cluster.heal cluster)
    schedule.steps;
  Oracle.final_check oracle cluster;
  let stats = Transport.stats transport in
  ( {
      violations = Oracle.violations oracle;
      granted = !granted;
      denied = !denied;
      aborted = !aborted;
      commits = Oracle.commits_seen oracle;
      corrupted = !corrupted;
      op_log = List.rev !op_log;
    },
    stats )

(* Integer-encoded entry point: what the qcheck properties shrink. *)
let run_ints ?rng ?(faults = Fault_plan.silent) config codes =
  let n_sites = Site_set.cardinal config.universe in
  fst (run ?rng config (Schedule.of_ints ~n_sites ~faults codes))

(* --- Policies --- *)

type policy = { name : string; flavor : Decision.flavor; expect_safe : bool }

(* The message engine drives the dynamic policies; MCV is stateless (no
   (o, v, P) protocol rounds) and has nothing for the chaos harness to
   attack, so it is not listed.  TDV/OTDV appear twice: as published
   (expected unsafe — the stale-claim hole) and with the freshness
   correction. *)
let policies =
  [
    { name = "dv"; flavor = Decision.dv_flavor; expect_safe = true };
    { name = "ldv"; flavor = Decision.ldv_flavor; expect_safe = true };
    { name = "odv"; flavor = Decision.ldv_flavor; expect_safe = true };
    { name = "tdv"; flavor = Decision.tdv_flavor; expect_safe = false };
    { name = "otdv"; flavor = Decision.tdv_flavor; expect_safe = false };
    { name = "tdv-safe"; flavor = Decision.tdv_safe_flavor; expect_safe = true };
    { name = "otdv-safe"; flavor = Decision.tdv_safe_flavor; expect_safe = true };
  ]

let policy_of_string name =
  List.find_opt (fun p -> p.name = String.lowercase_ascii name) policies

(* --- Campaigns --- *)

type summary = {
  policy : string;
  expect_safe : bool;
  schedules : int;
  steps : int;
  granted : int;
  denied : int;
  aborted : int;
  commits : int;
  corrupted : int;
  sent : int;
  delivered : int;
  dropped_partition : int;
  dropped_fault : int;
  duplicated : int;
  delayed : int;
  flapped : int;
  failure : (int * Schedule.t * Oracle.violation list) option;
      (* first failing schedule: index, schedule, its violations *)
  failures : int; (* schedules with at least one violation *)
}

let run_many ?config ~policy ~seed ~schedules () =
  let config =
    match config with Some c -> c | None -> default_config ~flavor:policy.flavor ()
  in
  let n_sites = Site_set.cardinal config.universe in
  let master = Splitmix64.create seed in
  let acc =
    ref
      {
        policy = policy.name;
        expect_safe = policy.expect_safe;
        schedules = 0;
        steps = 0;
        granted = 0;
        denied = 0;
        aborted = 0;
        commits = 0;
        corrupted = 0;
        sent = 0;
        delivered = 0;
        dropped_partition = 0;
        dropped_fault = 0;
        duplicated = 0;
        delayed = 0;
        flapped = 0;
        failure = None;
        failures = 0;
      }
  in
  for index = 0 to schedules - 1 do
    let rng = Splitmix64.split master in
    let length = 12 + Splitmix64.next_int rng 24 in
    let intensity = Splitmix64.next_float rng in
    let schedule = Schedule.random ~rng ~n_sites ~intensity ~length () in
    let result, stats = run ~rng config schedule in
    let s = !acc in
    acc :=
      {
        s with
        schedules = s.schedules + 1;
        steps = s.steps + List.length schedule.steps;
        granted = s.granted + result.granted;
        denied = s.denied + result.denied;
        aborted = s.aborted + result.aborted;
        commits = s.commits + result.commits;
        corrupted = s.corrupted + result.corrupted;
        sent = s.sent + stats.Transport.sent;
        delivered = s.delivered + stats.Transport.delivered;
        dropped_partition = s.dropped_partition + stats.Transport.dropped_partition;
        dropped_fault = s.dropped_fault + stats.Transport.dropped_fault;
        duplicated = s.duplicated + stats.Transport.duplicated;
        delayed = s.delayed + stats.Transport.delayed;
        flapped = s.flapped + stats.Transport.flapped;
        failures = (s.failures + if result.violations = [] then 0 else 1);
        failure =
          (match s.failure with
          | Some _ as f -> f
          | None ->
              if result.violations = [] then None
              else Some (index, schedule, result.violations));
      }
  done;
  !acc

let verdict_ok summary = summary.failures = 0 || not summary.expect_safe

let pp_summary ppf s =
  Fmt.pf ppf
    "%-9s %5d schedules %6d ops (%d granted / %d denied / %d aborted) %7d msgs \
     (lost=%d flapped=%d dup=%d delayed=%d partition=%d) %d corrupt records | %s"
    s.policy s.schedules
    (s.granted + s.denied + s.aborted)
    s.granted s.denied s.aborted s.sent
    (s.dropped_fault - s.flapped)
    s.flapped s.duplicated s.delayed s.dropped_partition s.corrupted
    (if s.failures = 0 then "safety: OK"
     else if s.expect_safe then Printf.sprintf "safety: %d VIOLATIONS" s.failures
     else Printf.sprintf "safety: %d violations (expected unsafe)" s.failures)

let pp_failure ppf s =
  match s.failure with
  | None -> ()
  | Some (index, schedule, violations) ->
      Fmt.pf ppf "first failing schedule #%d: %a@,%a" index Schedule.pp schedule
        Fmt.(list ~sep:cut Oracle.pp_violation)
        violations
