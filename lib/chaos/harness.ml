(* The chaos harness: execute fault schedules against the message-level
   protocol engine with the safety oracle attached, and aggregate what
   the adversary managed to do.

   Each schedule gets its own cluster (relaxed [Deadline] delivery — the
   paper's quiet-network model has nothing to be chaotic about), its own
   seeded fault plan on the transport, and its own oracle.  Crash steps
   use the cluster's chaos hooks to kill coordinators at the configured
   crash point; restart steps optionally mangle the stable record first,
   so the codec's recovery path is exercised end to end. *)

module Cluster = Dynvote_msgsim.Cluster
module Node = Dynvote_msgsim.Node
module Transport = Dynvote_msgsim.Transport
module Splitmix64 = Dynvote_prng.Splitmix64

type config = {
  flavor : Decision.flavor;
  universe : Site_set.t;
  segment_of : Site_set.site -> int;
  delivery : Cluster.delivery;
  initial_content : string;
  crash_point : [ `After_decide | `Mid_commit ];
      (* where Crash_coordinator steps strike.  [`After_decide] aborts
         before anything is distributed and is safe under every flavor;
         [`Mid_commit] tears the commit wave in half — outside the
         paper's atomic-update model, and duly flagged by the oracle. *)
  expose_commits : bool;
      (* force [atomic_commits = false] on every fault plan, subjecting
         COMMITs to loss/flap/delay like any other message — the second
         half of dropping the atomic-update assumption. *)
}

let default_config ?(flavor = Decision.ldv_flavor) () =
  {
    flavor;
    universe = Site_set.of_list [ 0; 1; 2; 3; 4 ];
    segment_of = (fun site -> site / 2);
    delivery = Cluster.Deadline { timeout = 0.25; retries = 2; backoff = 2.0 };
    initial_content = "g0";
    crash_point = `After_decide;
    expose_commits = false;
  }

type result = {
  violations : Oracle.violation list;
  granted : int;
  denied : int;
  aborted : int;
  commits : int;
  corrupted : int;          (* stable records mangled before a restart *)
  op_log : (Schedule.step * bool * string option) list;
      (* executed operations in order: step, granted, read content *)
}

let corrupt_record ~rng node corruption =
  let record = Node.stable_record node in
  let mangled =
    match corruption with
    | Schedule.Zero -> ""
    | Schedule.Truncate -> String.sub record 0 (String.length record / 2)
    | Schedule.Bit_flip ->
        if String.length record = 0 then ""
        else begin
          let bytes = Bytes.of_string record in
          let i = Splitmix64.next_int rng (Bytes.length bytes) in
          let bit = Splitmix64.next_int rng 8 in
          Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl bit)));
          Bytes.to_string bytes
        end
  in
  Node.set_stable_record node mangled

(* A session is one live schedule execution: the cluster, its oracle and
   the running tallies, with steps applied one at a time.  [run] below is
   a session driven start to finish; the model checker drives a session
   step by step, branching via checkpoint/rollback — both execute the
   exact same transition code, which is what makes counterexamples
   portable between the two. *)
type session = {
  s_config : config;
  cluster : Cluster.t;
  oracle : Oracle.t;
  rng : Splitmix64.t;
  topological : bool;
  ranked : Site_set.site list;
  mutable s_granted : int;
  mutable s_denied : int;
  mutable s_aborted : int;
  mutable s_corrupted : int;
  mutable writes : int;
  mutable log : (Schedule.step * bool * string option) list; (* newest first *)
}

let make_session ?(rng = Splitmix64.create 0x51D1CEL) ?(faults = Fault_plan.silent)
    config =
  let cluster =
    Cluster.create ~flavor:config.flavor ~segment_of:config.segment_of
      ~initial_content:config.initial_content ~delivery:config.delivery
      ~universe:config.universe ()
  in
  (* Topological flavors read same-segment silence as site death: their
     network model (LAN segments joined by gateways) permits neither
     lossy intra-segment links nor partitions that cut a segment in two.
     Chaos must honour that model to make a fair safety claim, so for
     those flavors intra-segment links are reliable and partition masks
     select whole segments. *)
  let topological = config.flavor.Decision.topological in
  let reliable a b = topological && config.segment_of a = config.segment_of b in
  let faults =
    if config.expose_commits then { faults with Fault_plan.atomic_commits = false }
    else faults
  in
  Transport.set_plan (Cluster.transport cluster)
    (Fault_plan.make ~rng:(Splitmix64.split rng) ~reliable faults);
  let oracle = Oracle.create ~initial_content:config.initial_content in
  Oracle.attach oracle cluster;
  {
    s_config = config;
    cluster;
    oracle;
    rng;
    topological;
    ranked = Site_set.to_list config.universe;
    s_granted = 0;
    s_denied = 0;
    s_aborted = 0;
    s_corrupted = 0;
    writes = 0;
    log = [];
  }

let cluster s = s.cluster
let oracle s = s.oracle

let note s step (outcome : Cluster.outcome) =
  if outcome.Cluster.granted then s.s_granted <- s.s_granted + 1
  else if outcome.Cluster.aborted then s.s_aborted <- s.s_aborted + 1
  else s.s_denied <- s.s_denied + 1;
  s.log <- (step, outcome.Cluster.granted, outcome.Cluster.content) :: s.log

(* Write contents are "w<n>"; a model-checking session applies millions
   of write transitions and rolls the counter back constantly, so the
   strings are interned rather than formatted each time. *)
let write_content =
  let cache = Hashtbl.create 64 in
  fun n ->
    match Hashtbl.find_opt cache n with
    | Some content -> content
    | None ->
        let content = Printf.sprintf "w%d" n in
        Hashtbl.add cache n content;
        content

let do_write s step site ~with_crash =
  s.writes <- s.writes + 1;
  let content = write_content s.writes in
  if with_crash then begin
    let armed = ref true in
    Cluster.set_chaos_hook s.cluster (fun event ->
        match (event, s.s_config.crash_point) with
        | Cluster.After_decide { coordinator; granted = true }, `After_decide
          when !armed && coordinator = site ->
            armed := false;
            Cluster.crash s.cluster site
        | Cluster.After_commit_send { coordinator; sent; total; _ }, `Mid_commit
          when !armed && coordinator = site && sent >= max 1 (total / 2) ->
            armed := false;
            Cluster.crash s.cluster site
        | _ -> ())
  end;
  let finish () = if with_crash then Cluster.clear_chaos_hook s.cluster in
  let outcome =
    Fun.protect ~finally:finish (fun () -> Cluster.write s.cluster ~at:site ~content)
  in
  Oracle.note_write s.oracle ~content outcome;
  note s step outcome

let apply_step s step =
  let up site = Site_set.mem site (Cluster.up_sites s.cluster) in
  let can_coordinate site =
    up site && not (Node.is_amnesiac (Cluster.node s.cluster site))
  in
  match step with
  | Schedule.Write site -> if can_coordinate site then do_write s step site ~with_crash:false
  | Schedule.Crash_coordinator site ->
      if can_coordinate site then do_write s step site ~with_crash:true
  | Schedule.Read site ->
      if can_coordinate site then begin
        let outcome = Cluster.read s.cluster ~at:site in
        Oracle.note_read s.oracle ~at:site outcome;
        note s step outcome
      end
  | Schedule.Crash site -> if up site then Cluster.crash s.cluster site
  | Schedule.Restart (site, corruption) ->
      if not (up site) then begin
        (match corruption with
        | Some c ->
            s.s_corrupted <- s.s_corrupted + 1;
            corrupt_record ~rng:s.rng (Cluster.node s.cluster site) c
        | None -> ());
        Cluster.restart_silently s.cluster site
      end
  | Schedule.Recover site -> note s step (Cluster.recover s.cluster ~site)
  | Schedule.Partition mask ->
      let selected i site =
        if s.topological then mask land (1 lsl (s.s_config.segment_of site)) <> 0
        else mask land (1 lsl i) <> 0
      in
      let group_a = Site_set.of_list (List.filteri selected s.ranked) in
      let group_b = Site_set.diff s.s_config.universe group_a in
      if Site_set.is_empty group_a || Site_set.is_empty group_b then
        Cluster.heal s.cluster
      else Cluster.partition s.cluster [ group_a; group_b ]
  | Schedule.Heal -> Cluster.heal s.cluster

let session_result s =
  {
    violations = Oracle.violations s.oracle;
    granted = s.s_granted;
    denied = s.s_denied;
    aborted = s.s_aborted;
    commits = Oracle.commits_seen s.oracle;
    corrupted = s.s_corrupted;
    op_log = List.rev s.log;
  }

(* Checkpoints snapshot everything [apply_step] mutates except the rng
   stream (only consumed by [Bit_flip] corruption, which an explorer's
   action alphabet excludes precisely so its branches stay rng-free). *)
type checkpoint = {
  ck_cluster : Cluster.snapshot;
  ck_oracle : Oracle.snapshot;
  ck_granted : int;
  ck_denied : int;
  ck_aborted : int;
  ck_corrupted : int;
  ck_writes : int;
  ck_log : (Schedule.step * bool * string option) list;
}

let checkpoint s =
  {
    ck_cluster = Cluster.snapshot s.cluster;
    ck_oracle = Oracle.snapshot s.oracle;
    ck_granted = s.s_granted;
    ck_denied = s.s_denied;
    ck_aborted = s.s_aborted;
    ck_corrupted = s.s_corrupted;
    ck_writes = s.writes;
    ck_log = s.log;
  }

let rollback s ck =
  Cluster.restore s.cluster ck.ck_cluster;
  Oracle.restore s.oracle ck.ck_oracle;
  s.s_granted <- ck.ck_granted;
  s.s_denied <- ck.ck_denied;
  s.s_aborted <- ck.ck_aborted;
  s.s_corrupted <- ck.ck_corrupted;
  s.writes <- ck.ck_writes;
  s.log <- ck.ck_log

let run ?rng config (schedule : Schedule.t) =
  let s = make_session ?rng ~faults:schedule.faults config in
  List.iter (apply_step s) schedule.steps;
  Oracle.final_check s.oracle s.cluster;
  (session_result s, Transport.stats (Cluster.transport s.cluster))

(* Integer-encoded entry point: what the qcheck properties shrink. *)
let run_ints ?rng ?(faults = Fault_plan.silent) config codes =
  let n_sites = Site_set.cardinal config.universe in
  fst (run ?rng config (Schedule.of_ints ~n_sites ~faults codes))

(* --- Policies --- *)

type policy = { name : string; flavor : Decision.flavor; expect_safe : bool }

(* The message engine drives the dynamic policies; MCV is stateless (no
   (o, v, P) protocol rounds) and has nothing for the chaos harness to
   attack, so it is not listed.  TDV/OTDV appear twice: as published
   (expected unsafe — the stale-claim hole) and with the freshness
   correction. *)
let policies =
  [
    { name = "dv"; flavor = Decision.dv_flavor; expect_safe = true };
    { name = "ldv"; flavor = Decision.ldv_flavor; expect_safe = true };
    { name = "odv"; flavor = Decision.ldv_flavor; expect_safe = true };
    { name = "tdv"; flavor = Decision.tdv_flavor; expect_safe = false };
    { name = "otdv"; flavor = Decision.tdv_flavor; expect_safe = false };
    { name = "tdv-safe"; flavor = Decision.tdv_safe_flavor; expect_safe = true };
    { name = "otdv-safe"; flavor = Decision.tdv_safe_flavor; expect_safe = true };
  ]

let policy_of_string name =
  List.find_opt (fun p -> p.name = String.lowercase_ascii name) policies

(* --- Campaigns --- *)

type summary = {
  policy : string;
  expect_safe : bool;
  schedules : int;
  steps : int;
  granted : int;
  denied : int;
  aborted : int;
  commits : int;
  corrupted : int;
  sent : int;
  delivered : int;
  dropped_partition : int;
  dropped_fault : int;
  duplicated : int;
  delayed : int;
  flapped : int;
  failure : (int * Schedule.t * Oracle.violation list) option;
      (* first failing schedule: index, schedule, its violations *)
  failures : int; (* schedules with at least one violation *)
}

let run_many ?config ~policy ~seed ~schedules () =
  let config =
    match config with Some c -> c | None -> default_config ~flavor:policy.flavor ()
  in
  let n_sites = Site_set.cardinal config.universe in
  let master = Splitmix64.create seed in
  let acc =
    ref
      {
        policy = policy.name;
        expect_safe = policy.expect_safe;
        schedules = 0;
        steps = 0;
        granted = 0;
        denied = 0;
        aborted = 0;
        commits = 0;
        corrupted = 0;
        sent = 0;
        delivered = 0;
        dropped_partition = 0;
        dropped_fault = 0;
        duplicated = 0;
        delayed = 0;
        flapped = 0;
        failure = None;
        failures = 0;
      }
  in
  for index = 0 to schedules - 1 do
    let rng = Splitmix64.split master in
    let length = 12 + Splitmix64.next_int rng 24 in
    let intensity = Splitmix64.next_float rng in
    let schedule = Schedule.random ~rng ~n_sites ~intensity ~length () in
    let result, stats = run ~rng config schedule in
    let s = !acc in
    acc :=
      {
        s with
        schedules = s.schedules + 1;
        steps = s.steps + List.length schedule.steps;
        granted = s.granted + result.granted;
        denied = s.denied + result.denied;
        aborted = s.aborted + result.aborted;
        commits = s.commits + result.commits;
        corrupted = s.corrupted + result.corrupted;
        sent = s.sent + stats.Transport.sent;
        delivered = s.delivered + stats.Transport.delivered;
        dropped_partition = s.dropped_partition + stats.Transport.dropped_partition;
        dropped_fault = s.dropped_fault + stats.Transport.dropped_fault;
        duplicated = s.duplicated + stats.Transport.duplicated;
        delayed = s.delayed + stats.Transport.delayed;
        flapped = s.flapped + stats.Transport.flapped;
        failures = (s.failures + if result.violations = [] then 0 else 1);
        failure =
          (match s.failure with
          | Some _ as f -> f
          | None ->
              if result.violations = [] then None
              else Some (index, schedule, result.violations));
      }
  done;
  !acc

let verdict_ok summary = summary.failures = 0 || not summary.expect_safe

let pp_summary ppf s =
  Fmt.pf ppf
    "%-9s %5d schedules %6d ops (%d granted / %d denied / %d aborted) %7d msgs \
     (lost=%d flapped=%d dup=%d delayed=%d partition=%d) %d corrupt records | %s"
    s.policy s.schedules
    (s.granted + s.denied + s.aborted)
    s.granted s.denied s.aborted s.sent
    (s.dropped_fault - s.flapped)
    s.flapped s.duplicated s.delayed s.dropped_partition s.corrupted
    (if s.failures = 0 then "safety: OK"
     else if s.expect_safe then Printf.sprintf "safety: %d VIOLATIONS" s.failures
     else Printf.sprintf "safety: %d violations (expected unsafe)" s.failures)

let pp_failure ppf s =
  match s.failure with
  | None -> ()
  | Some (index, schedule, violations) ->
      Fmt.pf ppf "first failing schedule #%d: %a@,%a" index Schedule.pp schedule
        Fmt.(list ~sep:cut Oracle.pp_violation)
        violations
