(** Bounded event-trace recorder.

    Keeps the most recent entries in a ring buffer (default 4096); pass
    [~capacity:0] for an unbounded trace.  Used by the CLI [trace]
    subcommand and by golden tests over scripted scenarios. *)

type t

type entry = { time : float; label : string }

val create : ?capacity:int -> unit -> t

val record : t -> time:float -> string -> unit

val recordf : t -> time:float -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** printf-style {!record}. *)

val recorded : t -> int
(** Total entries ever recorded (including evicted ones). *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val iter : t -> (float -> string -> unit) -> unit

val pp : Format.formatter -> t -> unit

val clear : t -> unit
