(* Bounded trace recorder.  The availability simulator can run for millions
   of simulated days, so traces keep only the most recent [capacity]
   entries (a ring buffer) unless configured as unbounded. *)

type entry = { time : float; label : string }

type t = {
  capacity : int; (* 0 means unbounded *)
  mutable ring : entry array;
  mutable size : int;
  mutable head : int; (* next write position when bounded *)
  mutable unbounded : entry list; (* newest first when capacity = 0 *)
  mutable recorded : int;
}

let dummy = { time = nan; label = "" }

let create ?(capacity = 4096) () =
  if capacity < 0 then invalid_arg "Trace.create: negative capacity";
  { capacity; ring = (if capacity = 0 then [||] else Array.make capacity dummy);
    size = 0; head = 0; unbounded = []; recorded = 0 }

let record t ~time label =
  let entry = { time; label } in
  t.recorded <- t.recorded + 1;
  if t.capacity = 0 then t.unbounded <- entry :: t.unbounded
  else begin
    t.ring.(t.head) <- entry;
    t.head <- (t.head + 1) mod t.capacity;
    if t.size < t.capacity then t.size <- t.size + 1
  end

let recordf t ~time fmt = Format.kasprintf (fun label -> record t ~time label) fmt

let recorded t = t.recorded

let entries t =
  if t.capacity = 0 then List.rev t.unbounded
  else begin
    let out = ref [] in
    for i = t.size - 1 downto 0 do
      let idx = (t.head - 1 - i + (2 * t.capacity)) mod t.capacity in
      out := t.ring.(idx) :: !out
    done;
    List.rev !out
  end

let iter t f = List.iter (fun e -> f e.time e.label) (entries t)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  iter t (fun time label -> Fmt.pf ppf "%12.4f  %s@," time label);
  Fmt.pf ppf "@]"

let clear t =
  t.size <- 0;
  t.head <- 0;
  t.unbounded <- [];
  t.recorded <- 0
