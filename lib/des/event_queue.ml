(* Priority queue of timestamped events, implemented as a growable binary
   min-heap.  Ties in time are broken by insertion sequence number, making
   the simulation fully deterministic: two events scheduled for the same
   instant fire in the order they were scheduled. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* heap.(0) unused slots beyond size *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let precedes a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let capacity = Array.length t.heap in
  let new_capacity = if capacity = 0 then 16 else capacity * 2 in
  let dummy = t.heap.(0) in
  let heap = Array.make new_capacity dummy in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 in
  if left < t.size then begin
    let right = left + 1 in
    let smallest =
      if right < t.size && precedes t.heap.(right) t.heap.(left) then right else left
    in
    if precedes t.heap.(smallest) t.heap.(i) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(smallest);
      t.heap.(smallest) <- tmp;
      sift_down t smallest
    end
  end

let add t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: time is NaN";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry;
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some (t.heap.(0).time, t.heap.(0).payload)

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Event_queue.pop_exn: empty queue"

let clear t =
  t.size <- 0;
  t.heap <- [||]

let to_sorted_list t =
  (* Non-destructive: copies the heap and drains the copy. *)
  let copy = { heap = Array.sub t.heap 0 (max 1 (Array.length t.heap)); size = t.size;
               next_seq = t.next_seq } in
  let rec drain acc =
    match pop copy with
    | None -> List.rev acc
    | Some (time, payload) -> drain ((time, payload) :: acc)
  in
  if t.size = 0 then [] else drain []
