(* Priority queue of timestamped events, implemented as a growable binary
   min-heap.  Ties in time are broken by insertion sequence number, making
   the simulation fully deterministic: two events scheduled for the same
   instant fire in the order they were scheduled.

   The heap is a structure of arrays rather than an array of
   [{time; seq; payload}] records: the times live in a flat [float array]
   (unboxed in OCaml), so the hot comparison path of every sift touches
   contiguous raw floats instead of chasing a pointer per element, and
   inserting allocates nothing beyond the occasional capacity doubling.
   Moving an element means three stores instead of one pointer store, so
   the sifts shift entries into a hole and write the carried element
   exactly once at its final position, rather than swapping at every
   level. *)

type 'a t = {
  mutable times : float array; (* unboxed float array; slots >= size unused *)
  mutable seqs : int array;
  mutable payloads : 'a array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { times = [||]; seqs = [||]; payloads = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let grow t =
  let capacity = Array.length t.times in
  let new_capacity = if capacity = 0 then 16 else capacity * 2 in
  let times = Array.make new_capacity 0.0 in
  Array.blit t.times 0 times 0 t.size;
  t.times <- times;
  let seqs = Array.make new_capacity 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  t.seqs <- seqs;
  let payloads = Array.make new_capacity t.payloads.(0) in
  Array.blit t.payloads 0 payloads 0 t.size;
  t.payloads <- payloads

(* Shift ancestors down into the hole at [i] until [(time, seq)] fits,
   then store the carried element there. *)
let sift_up t i time seq payload =
  let hole = ref i in
  let continue = ref true in
  while !continue && !hole > 0 do
    let parent = (!hole - 1) / 2 in
    if time < t.times.(parent) || (time = t.times.(parent) && seq < t.seqs.(parent))
    then begin
      t.times.(!hole) <- t.times.(parent);
      t.seqs.(!hole) <- t.seqs.(parent);
      t.payloads.(!hole) <- t.payloads.(parent);
      hole := parent
    end
    else continue := false
  done;
  t.times.(!hole) <- time;
  t.seqs.(!hole) <- seq;
  t.payloads.(!hole) <- payload

(* Shift the smaller child up into the hole at [i] until [(time, seq)]
   fits, then store the carried element there. *)
let sift_down t i time seq payload =
  let hole = ref i in
  let continue = ref true in
  while !continue do
    let left = (2 * !hole) + 1 in
    if left >= t.size then continue := false
    else begin
      let right = left + 1 in
      let smallest =
        if
          right < t.size
          && (t.times.(right) < t.times.(left)
             || (t.times.(right) = t.times.(left) && t.seqs.(right) < t.seqs.(left)))
        then right
        else left
      in
      if
        t.times.(smallest) < time
        || (t.times.(smallest) = time && t.seqs.(smallest) < seq)
      then begin
        t.times.(!hole) <- t.times.(smallest);
        t.seqs.(!hole) <- t.seqs.(smallest);
        t.payloads.(!hole) <- t.payloads.(smallest);
        hole := smallest
      end
      else continue := false
    end
  done;
  t.times.(!hole) <- time;
  t.seqs.(!hole) <- seq;
  t.payloads.(!hole) <- payload

let add t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.add: time is NaN";
  if t.size = 0 && Array.length t.times = 0 then begin
    t.times <- Array.make 16 0.0;
    t.seqs <- Array.make 16 0;
    t.payloads <- Array.make 16 payload
  end;
  if t.size = Array.length t.times then grow t;
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1) time seq payload

let peek t = if t.size = 0 then None else Some (t.times.(0), t.payloads.(0))

let peek_time t = if t.size = 0 then None else Some t.times.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let time = t.times.(0) in
    let payload = t.payloads.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then
      sift_down t 0 t.times.(t.size) t.seqs.(t.size) t.payloads.(t.size);
    Some (time, payload)
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Event_queue.pop_exn: empty queue"

let clear t =
  t.size <- 0;
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||]

let to_sorted_list t =
  (* Non-destructive: copies the heap and drains the copy. *)
  if t.size = 0 then []
  else begin
    let copy =
      {
        times = Array.copy t.times;
        seqs = Array.copy t.seqs;
        payloads = Array.copy t.payloads;
        size = t.size;
        next_seq = t.next_seq;
      }
    in
    let rec drain acc =
      match pop copy with
      | None -> List.rev acc
      | Some (time, payload) -> drain ((time, payload) :: acc)
    in
    drain []
  end
