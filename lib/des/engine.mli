(** Discrete-event simulation engine.

    Event-scheduling world view: handlers pop timestamped payloads in
    chronological order and may schedule further events.  Deterministic for
    a fixed input (FIFO tie-break on equal times, see {!Event_queue}). *)

type 'a t

exception Stop
(** Raise from a handler to end {!run} early. *)

val create : unit -> 'a t

val now : 'a t -> float
(** Current simulation time. *)

val events_handled : 'a t -> int
val pending : 'a t -> int

val schedule : 'a t -> at:float -> 'a -> unit
(** @raise Invalid_argument when [at] precedes the current time. *)

val schedule_after : 'a t -> delay:float -> 'a -> unit
(** @raise Invalid_argument on negative delay. *)

val stop : 'a t -> unit
(** Convenience: raises {!Stop}. *)

val run : 'a t -> until:float -> handler:('a t -> float -> 'a -> unit) -> unit
(** Process events up to and including time [until]; afterwards the clock
    rests at [until] (or at the last event if it raised {!Stop}). *)

val step : 'a t -> handler:('a t -> float -> 'a -> unit) -> float option
(** Process exactly one event; returns its time. *)

val reset : 'a t -> unit
