(** Deterministic event priority queue.

    A binary min-heap on event time; simultaneous events fire in scheduling
    order (FIFO tie-break), so simulations are reproducible. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:float -> 'a -> unit
(** Schedule a payload.  @raise Invalid_argument on NaN time. *)

val peek : 'a t -> (float * 'a) option
val peek_time : 'a t -> float option

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val pop_exn : 'a t -> float * 'a
(** @raise Invalid_argument when empty. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> (float * 'a) list
(** Chronological snapshot; does not modify the queue. *)
