(* A small discrete-event simulation engine: a clock plus an event queue of
   thunk-producing payloads.  Handlers receive the engine so they can
   schedule follow-up events (the standard event-scheduling world view).
   Time never moves backwards; scheduling in the past is a programming
   error and raises. *)

type 'a t = {
  queue : 'a Event_queue.t;
  mutable now : float;
  mutable handled : int;
  mutable running : bool;
}

exception Stop

let create () = { queue = Event_queue.create (); now = 0.0; handled = 0; running = false }

let now t = t.now

let events_handled t = t.handled

let pending t = Event_queue.length t.queue

let schedule t ~at payload =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Engine.schedule: time %g is before current time %g" at t.now);
  Event_queue.add t.queue ~time:at payload

let schedule_after t ~delay payload =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.now +. delay) payload

let stop _t = raise Stop

(* Run until [until] (inclusive of events at exactly [until]) or until the
   queue drains.  The handler may raise [Stop] to end early.  On normal
   completion the clock is advanced to [until] so callers can account for
   the trailing interval with no events. *)
let run t ~until ~handler =
  if t.running then invalid_arg "Engine.run: engine is already running";
  t.running <- true;
  let finish () = t.running <- false in
  (try
     let continue = ref true in
     while !continue do
       match Event_queue.peek_time t.queue with
       | None -> continue := false
       | Some time when time > until -> continue := false
       | Some _ ->
           let time, payload = Event_queue.pop_exn t.queue in
           t.now <- time;
           t.handled <- t.handled + 1;
           handler t time payload
     done;
     if t.now < until then t.now <- until
   with
  | Stop -> finish ()
  | e ->
      finish ();
      raise e);
  finish ()

(* Step a single event; [None] when the queue is empty. *)
let step t ~handler =
  match Event_queue.pop t.queue with
  | None -> None
  | Some (time, payload) ->
      t.now <- time;
      t.handled <- t.handled + 1;
      handler t time payload;
      Some time

let reset t =
  Event_queue.clear t.queue;
  t.now <- 0.0;
  t.handled <- 0;
  t.running <- false
