(** Deterministic rendering of {!Checker.report}s (timing is the
    caller's business, keeping this output cram-stable). *)

val pp_trace : Format.formatter -> Dynvote_chaos.Schedule.step list -> unit

val pp : Format.formatter -> Checker.report -> unit
(** One verdict block: the summary line, plus schedule / violations /
    replay confirmation for counterexamples. *)

val pp_expectation : Format.formatter -> Checker.report -> unit
(** The verdict measured against the policy's [expect_safe] flag. *)

val pp_workers : Format.formatter -> Dynvote_exec.Pool.steal_stats array -> unit
(** One line per work-stealing worker: tasks executed, steals, failed
    steals, deque high-water.  Scheduling-dependent — keep it off
    cram-pinned stdout (the CLI prints it on stderr under [-v]). *)

val steal_totals :
  Dynvote_exec.Pool.steal_stats array -> Dynvote_exec.Pool.steal_stats
(** The componentwise sum ({!Dynvote_exec.Pool.add_steal_stats}) over
    all workers. *)
