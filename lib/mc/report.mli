(** Deterministic rendering of {!Checker.report}s (timing is the
    caller's business, keeping this output cram-stable). *)

val pp_trace : Format.formatter -> Dynvote_chaos.Schedule.step list -> unit

val pp : Format.formatter -> Checker.report -> unit
(** One verdict block: the summary line, plus schedule / violations /
    replay confirmation for counterexamples. *)

val pp_expectation : Format.formatter -> Checker.report -> unit
(** The verdict measured against the policy's [expect_safe] flag. *)
