(** The explorer's action alphabet: which {!Dynvote_chaos.Schedule.step}s
    to branch on at a given cluster state.

    Actions are one client operation, crash, restart or topology change
    each — the granularity at which the cluster's coordinator rounds are
    atomic, and the encoding the chaos harness replays verbatim.
    Message-level nondeterminism enters through the coordinator crash
    points, not through individual deliveries. *)

type t = {
  reads : bool;  (** branch on READ operations (they commit (o+1, v, S)) *)
  coordinator_crashes : bool;
      (** writes whose coordinator dies at the harness crash point *)
  recoveries : bool;  (** RECOVER at down or amnesiac sites *)
  partitions : bool;  (** two-way cuts and heals *)
  corruptions : Dynvote_chaos.Schedule.corruption option list;
      (** stable-record fates branched per restart.  [Bit_flip] draws on
          the rng and would break rollback determinism — excluded. *)
}

val default : t
(** The depth-oriented alphabet: writes, coordinator crashes, crashes,
    clean restarts, recoveries and topology changes.  Reads and record
    corruption are off — they roughly double the branching factor while
    every known violation (including the published TDV hole) is reachable
    without them. *)

val full : t
(** [default] plus reads and zeroed-record restarts ([Truncate] is
    behaviorally identical to [Zero] — both fail the checksum). *)

val amnesia_free : t -> bool
(** No corrupting restarts: every site's operation number is monotone
    along every path, which licenses the fingerprint's generation-table
    GC ({!Fingerprint.of_session}). *)

val partition_masks : config:Dynvote_chaos.Harness.config -> int list
(** Distinct proper two-way splits in the harness's mask encoding:
    rank-indexed bits, or segment bits under a topological flavor (whose
    network model cannot cut a segment in two).  Complement duplicates
    are halved by always setting the lowest-ranked bit. *)

val enabled :
  t ->
  config:Dynvote_chaos.Harness.config ->
  cluster:Dynvote_msgsim.Cluster.t ->
  Dynvote_chaos.Schedule.step list
(** The enabled actions at the cluster's current state, in a fixed
    deterministic order (operations, crashes, restarts, recoveries,
    topology changes). *)
