(** Canonical state fingerprints for the explorer's seen set.

    A fingerprint serializes the full product state of a chaos
    {!Dynvote_chaos.Harness.session}: every site's ensemble, data and
    stable-record status, the cluster's topology bookkeeping, and the
    safety oracle's memory.  Write contents are canonicalized by
    first-occurrence renaming, so states differing only in content
    labels ("w3" vs "w5") collapse. *)

val identity : n_sites:int -> int array
(** The identity site permutation. *)

val segment_perms :
  universe:Site_set.t -> segment_of:(Site_set.site -> int) -> int array list
(** Every permutation of the universe's sites that maps each segment onto
    itself; the identity comes first.  Relabeling by such a permutation
    is a transition-relation symmetry only for flavors without the
    lexicographic tie-break — the caller is responsible for that check. *)

val of_session :
  ?perm:int array -> ?gc:bool -> Dynvote_chaos.Harness.session -> string
(** Serialize under a site relabeling ([perm] defaults to the identity).
    Only valid between steps (quiet network).  [gc] (default false) drops
    oracle generation entries below the minimum operation number any site
    still carries — sound exactly when the explored alphabet has no
    amnesiac restarts, which is what keeps per-site operation numbers
    monotone (see {!Space.amnesia_free}). *)

val canonical :
  ?buf:Buffer.t ->
  ?gc:bool ->
  perms:int array list ->
  Dynvote_chaos.Harness.session ->
  string
(** The minimum of {!of_session} over [perms] — the symmetry-reduced
    canonical form.  [perms] must include the identity to be sound.
    [buf] is scratch space the caller may reuse across calls. *)
