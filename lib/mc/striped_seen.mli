(** The explorer's seen-state store: lock-striped, open-addressing,
    hash-compacted, optionally disk-spilled.

    States are stored as 62-bit hashes of their canonical fingerprint
    strings (hash compaction à la Murphi/TLC — the collision probability
    at n states is about n²/2⁶³) in power-of-two linear-probe int
    arrays, one pair of arrays per mutex-guarded shard: 16 bytes per
    state, no boxing, no key strings.  Each entry carries the
    iterative-deepening budget packed with the {!Por} context it was
    expanded under; {!claim} applies the context-tagged transposition
    rule that keeps partial-order reduction sound under state caching.

    The distinct-state count is one atomic counter moved only by a
    successful admission CAS, which makes the [max_states] budget a
    global property and keeps [distinct t = length t] invariant (a state
    bounced by the budget is never counted).

    With spilling enabled ([spill], or the [DYNVOTE_MC_SPILL] total
    resident threshold in the environment), shards merge their resident
    entries into a single sorted on-disk run when full and shrink back,
    so distinct-state capacity grows past RAM; lookups fall back to a
    binary search of the run.  Spilling never changes what [claim]
    answers. *)

type t

val create : ?shards:int -> ?spill:int -> max_states:int -> unit -> t
(** [shards] (default 64, rounded up to a power of two) is the stripe
    count; [max_states] bounds the number of distinct fingerprints ever
    admitted.  [spill] (default: [DYNVOTE_MC_SPILL] from the
    environment, unset/0 = disabled) is the total resident-entry
    threshold across shards above which shards spill to disk. *)

type verdict =
  | Expand of { filter : int; covered : int }
      (** explore: successors filtered by {!Por.allowed} with context
          [filter] (the caller's own) when [covered = 0]; when a stored
          budget-covering entry had a conflicting context, [covered] is
          that context and only the difference
          {!Por.filter_uncovered}[ ~ctx:filter ~covered] needs
          expanding *)
  | Prune  (** already explored with at least this budget under a
               covering context *)
  | Budget  (** admitting this state would exceed [max_states] *)

val claim : t -> string -> budget:int -> ctx:int -> verdict
(** Atomically apply the context-tagged transposition rule for a state
    entered by the action of {!Por.rank} [ctx] with [budget] remaining
    depth: prune when the stored budget is at least [budget] {e and} the
    stored context covers ours (0, or equal); on a budget-covered
    context conflict, expand only the stored context's sleep difference;
    otherwise record the strongest true statement and expand in full.
    A fresh state is admitted only while fewer than [max_states]
    distinct states have been. *)

val distinct : t -> int
(** Distinct states admitted (the atomic counter). *)

val length : t -> int
(** Distinct states stored, resident plus spilled (sums the shards'
    admission tallies; call from one domain at quiescence).  Always
    equal to {!distinct} — the report path asserts it. *)

val spilled : t -> int
(** Entries currently in on-disk runs (0 when spilling is off). *)

val resident : t -> int
(** Entries currently in the in-memory probe tables. *)

val close : t -> unit
(** Close and drop any spill runs (their files are already unlinked). *)
