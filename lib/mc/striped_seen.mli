(** Lock-striped seen-state table for the parallel explorer.

    A sharded [fingerprint -> remaining-depth budget] map: each shard is
    a [Hashtbl] behind its own mutex, selected by the fingerprint's
    hash, so concurrent claims on different states rarely contend.  The
    distinct-state count is kept in one atomic counter bumped only on
    first insertion, which makes the [max_states] budget a {e global}
    property (exactly as in the sequential explorer) rather than a
    per-worker one. *)

type t

val create : ?shards:int -> max_states:int -> unit -> t
(** [shards] (default 64, rounded up to a power of two) is the stripe
    count; [max_states] bounds the number of distinct fingerprints ever
    admitted. *)

type verdict =
  | Expand  (** first visit, or a revisit with a larger budget: recurse *)
  | Prune  (** already expanded with at least this budget *)
  | Budget  (** admitting this state would exceed [max_states] *)

val claim : t -> string -> budget:int -> verdict
(** Atomically apply the iterative-deepening transposition rule: prune
    when the stored budget is at least [budget], otherwise record
    [budget] and expand.  A fresh state is admitted only while fewer
    than [max_states] distinct states have been; the stored budget is
    monotone per state, so [Expand]/[Prune] decisions are
    order-insensitive at quiescence. *)

val length : t -> int
(** Exact number of distinct states stored (sums the shard sizes; call
    it from one domain at quiescence). *)
