(* Bounded explicit-state exploration: iterative-deepening DFS over the
   enabled actions, with a seen-state table and the safety oracle checked
   at every state.

   One chaos session carries the whole search; branching rewinds it with
   {!Dynvote_chaos.Harness.checkpoint}/[rollback], so every explored path
   executes the exact code a chaos replay would.  The seen table maps a
   canonical fingerprint to the largest remaining-depth budget it was
   expanded with, tagged by the {!Por} context the expansion was filtered
   under: a revisit with no more budget under a covering context is
   pruned, anything else is re-expanded (the transposition rule that
   keeps iterative deepening — and partial-order reduction under state
   caching — sound; see {!Striped_seen.claim}).

   Partial-order reduction (on by default, [?por]) explores commuting
   fault actions in sorted order only: every pruned interleaving is a
   permutation of an explored one with identical length, end state and
   violation observations (the commutation proof lives in {!Por}).  The
   set of distinct states within a completed bound is unchanged —
   reduction removes transitions, not states — so Safe verdicts report
   identical state counts with the reduction on or off, and iterative
   deepening still finds a minimum-length counterexample first.

   Iterative deepening guarantees the first counterexample found is one
   of minimum length.  When an iteration completes without ever hitting
   the depth cutoff, the entire reachable space (under the configured
   alphabet) has been exhausted and deeper iterations are skipped — the
   search is [closed].

   With [jobs > 1] each deepening iteration is parallelized in the
   spirit of Stern & Dill's parallel Murphi: the root action alphabet is
   sharded over a {!Dynvote_exec.Pool}, every worker drives its own
   freshly built session (cluster and oracle are mutable and never
   shared), and deduplication goes through one lock-striped
   {!Striped_seen} fingerprint store so the [distinct]/[max_states]
   accounting stays global.  The set of distinct states within a bound —
   and with it every Safe/Out_of_budget verdict — is independent of
   worker interleaving, so verdicts match the sequential search; only
   the traversal statistics ([visited], [transitions]) and the choice
   among equally short counterexamples may differ.  The sequential path
   runs through the same store (one shard, uncontended), so the spill
   tier and the admission accounting are exercised identically at every
   job count. *)

module Cluster = Dynvote_msgsim.Cluster
module Harness = Dynvote_chaos.Harness
module Oracle = Dynvote_chaos.Oracle
module Schedule = Dynvote_chaos.Schedule
module Pool = Dynvote_exec.Pool

type outcome =
  | Safe of { closed : bool }
  | Violation of { trace : Schedule.step list; violations : Oracle.violation list }
  | Out_of_budget

type result = {
  outcome : outcome;
  depth : int;
  visited : int;
  distinct : int;
  transitions : int;
  peak_seen : int;
  spilled : int;
  workers : Pool.steal_stats array;
}

exception Found of Schedule.step list * Oracle.violation list
exception Budget

(* Symmetry defaults off for tie-break flavors: site relabeling commutes
   with the transition relation only without the lexicographic tie-break
   (site identity is load-bearing in the ordering). *)
let resolve_symmetry ?symmetry (config : Harness.config) =
  match symmetry with
  | Some s -> s
  | None -> not config.Harness.flavor.Decision.tie_break

let perms_for ~symmetry (config : Harness.config) =
  if symmetry then
    Fingerprint.segment_perms ~universe:config.Harness.universe
      ~segment_of:config.Harness.segment_of
  else [ Fingerprint.identity ~n_sites:(Site_set.max_elt config.Harness.universe + 1) ]

(* The report path's accounting invariant: every admitted state was
   counted exactly once, and nothing the budget bounced was. *)
let checked_distinct seen =
  let distinct = Striped_seen.distinct seen in
  assert (Striped_seen.length seen = distinct);
  distinct

let sequential_search ~space ~symmetry ~por ~max_states ?progress
    ~(config : Harness.config) ~depth () =
  let perms = perms_for ~symmetry config in
  let session = Harness.make_session config in
  let cluster = Harness.cluster session in
  let oracle = Harness.oracle session in
  let buf = Buffer.create 256 in
  let gc = Space.amnesia_free space in
  let fingerprint () = Fingerprint.canonical ~buf ~gc ~perms session in
  let visited = ref 0 in
  let transitions = ref 0 in
  let peak_seen = ref 0 in
  let distinct = ref 0 in
  let spilled = ref 0 in
  let cutoff = ref false in
  let root = Harness.checkpoint session in
  let search_to bound =
    let seen = Striped_seen.create ~shards:1 ~max_states () in
    cutoff := false;
    ignore (Striped_seen.claim seen (fingerprint ()) ~budget:bound ~ctx:0);
    incr visited;
    (* [ctx] filters this state's successors: the {!Por.rank} of the
       action the state was entered by, or 0 at the root and with the
       reduction off.  A nonzero [covered] narrows the expansion to the
       sleep difference against an already-recorded context. *)
    let rec dfs remaining trace ctx covered =
      if remaining = 0 then cutoff := true
      else begin
        let ck = Harness.checkpoint session in
        let steps = Space.enabled space ~config ~cluster in
        let steps =
          if not por then steps
          else if covered = 0 then Por.filter ~ctx steps
          else Por.filter_uncovered ~ctx ~covered steps
        in
        List.iter
          (fun step ->
            incr transitions;
            Harness.apply_step session step;
            Oracle.check_step oracle cluster;
            if not (Oracle.is_safe oracle) then
              raise (Found (List.rev (step :: trace), Oracle.violations oracle));
            let fp = fingerprint () in
            let budget = remaining - 1 in
            let step_ctx = if por then Por.rank step else 0 in
            (match Striped_seen.claim seen fp ~budget ~ctx:step_ctx with
            | Striped_seen.Prune -> ()
            | Striped_seen.Budget -> raise Budget
            | Striped_seen.Expand { filter; covered } ->
                incr visited;
                dfs budget (step :: trace) filter covered);
            Harness.rollback session ck)
          steps
      end
    in
    let outcome =
      try
        dfs bound [] 0 0;
        `Exhausted
      with
      | Found (trace, violations) -> `Found (trace, violations)
      | Budget -> `Budget
    in
    distinct := checked_distinct seen;
    peak_seen := max !peak_seen !distinct;
    spilled := max !spilled (Striped_seen.spilled seen);
    Striped_seen.close seen;
    (match progress with
    | Some f -> f ~depth:bound ~distinct:!distinct ~transitions:!transitions
    | None -> ());
    outcome
  in
  let result outcome depth =
    {
      outcome;
      depth;
      visited = !visited;
      distinct = !distinct;
      transitions = !transitions;
      peak_seen = !peak_seen;
      spilled = !spilled;
      workers = [||];
    }
  in
  let rec iterate bound =
    Harness.rollback session root;
    match search_to bound with
    | `Found (trace, violations) ->
        result (Violation { trace; violations }) (List.length trace)
    | `Budget -> result Out_of_budget (bound - 1)
    | `Exhausted ->
        if not !cutoff then result (Safe { closed = true }) bound
        else if bound >= depth then result (Safe { closed = false }) bound
        else iterate (bound + 1)
  in
  (* The initial state could in principle already violate (it never does
     for a sane config, but the oracle decides that, not us). *)
  Oracle.check_step oracle cluster;
  if not (Oracle.is_safe oracle) then
    result (Violation { trace = []; violations = Oracle.violations oracle }) 0
  else if depth <= 0 then result (Safe { closed = false }) 0
  else iterate 1

(* ------------------------------------------------------------------ *)
(* The parallel search. *)

exception Stop_worker

type worker_tally = {
  w_visited : int;
  w_transitions : int;
  w_cutoff : bool;
  w_budget : bool;
  w_violation : (int * Schedule.step list * Oracle.violation list) option;
      (* root-action index, trace, violations *)
}

(* One worker's share of a single deepening iteration: pull root-action
   indices from [next_root], run the same DFS as the sequential search
   below each, dedup through the shared striped store.  The session,
   oracle, fingerprint buffer and checkpoints are all worker-private —
   only [seen], [next_root] and [stop] are shared. *)
let bound_worker ~space ~gc ~perms ~por ~(config : Harness.config)
    ~(roots : Schedule.step array) ~seen ~next_root ~(stop : bool Atomic.t) ~bound () =
  let session = Harness.make_session config in
  let cluster = Harness.cluster session in
  let oracle = Harness.oracle session in
  let buf = Buffer.create 256 in
  let fingerprint () = Fingerprint.canonical ~buf ~gc ~perms session in
  let visited = ref 0 in
  let transitions = ref 0 in
  let cutoff = ref false in
  let budget_hit = ref false in
  let violation = ref None in
  let root_ck = Harness.checkpoint session in
  let found root_idx trace =
    violation := Some (root_idx, trace, Oracle.violations oracle);
    Atomic.set stop true;
    raise_notrace Stop_worker
  in
  let claim root_idx fp ~budget ~ctx recurse =
    match Striped_seen.claim seen fp ~budget ~ctx with
    | Striped_seen.Prune -> ()
    | Striped_seen.Budget ->
        budget_hit := true;
        Atomic.set stop true;
        raise_notrace Stop_worker
    | Striped_seen.Expand { filter; covered } ->
        incr visited;
        recurse root_idx budget filter covered
  in
  let rec dfs root_idx remaining trace ctx covered =
    if remaining = 0 then cutoff := true
    else begin
      let ck = Harness.checkpoint session in
      let steps = Space.enabled space ~config ~cluster in
      let steps =
        if not por then steps
        else if covered = 0 then Por.filter ~ctx steps
        else Por.filter_uncovered ~ctx ~covered steps
      in
      List.iter
        (fun step ->
          if Atomic.get stop then raise_notrace Stop_worker;
          incr transitions;
          Harness.apply_step session step;
          Oracle.check_step oracle cluster;
          if not (Oracle.is_safe oracle) then
            found root_idx (List.rev (step :: trace));
          claim root_idx (fingerprint ()) ~budget:(remaining - 1)
            ~ctx:(if por then Por.rank step else 0)
            (fun root_idx budget filter covered ->
              dfs root_idx budget (step :: trace) filter covered);
          Harness.rollback session ck)
        steps
    end
  in
  (try
     let rec next () =
       let idx = Atomic.fetch_and_add next_root 1 in
       if idx < Array.length roots && not (Atomic.get stop) then begin
         let step = roots.(idx) in
         incr transitions;
         Harness.apply_step session step;
         Oracle.check_step oracle cluster;
         if not (Oracle.is_safe oracle) then found idx [ step ];
         claim idx (fingerprint ()) ~budget:(bound - 1)
           ~ctx:(if por then Por.rank step else 0)
           (fun root_idx budget filter covered ->
             dfs root_idx budget [ step ] filter covered);
         Harness.rollback session root_ck;
         next ()
       end
     in
     next ()
   with Stop_worker -> ());
  {
    w_visited = !visited;
    w_transitions = !transitions;
    w_cutoff = !cutoff;
    w_budget = !budget_hit;
    w_violation = !violation;
  }

let parallel_search ~jobs ~space ~symmetry ~por ~max_states ?progress
    ~(config : Harness.config) ~depth () =
  let perms = perms_for ~symmetry config in
  let gc = Space.amnesia_free space in
  (* The caller keeps a session of its own for the initial-state check,
     the root fingerprint and the root alphabet (constant across
     iterations — the root state never changes). *)
  let session = Harness.make_session config in
  let cluster = Harness.cluster session in
  let oracle = Harness.oracle session in
  let buf = Buffer.create 256 in
  let root_fp () = Fingerprint.canonical ~buf ~gc ~perms session in
  let visited = ref 0 in
  let transitions = ref 0 in
  let peak_seen = ref 0 in
  let distinct = ref 0 in
  let spilled = ref 0 in
  let result outcome depth =
    {
      outcome;
      depth;
      visited = !visited;
      distinct = !distinct;
      transitions = !transitions;
      peak_seen = !peak_seen;
      spilled = !spilled;
      workers = [||];
    }
  in
  Oracle.check_step oracle cluster;
  if not (Oracle.is_safe oracle) then
    result (Violation { trace = []; violations = Oracle.violations oracle }) 0
  else if depth <= 0 then result (Safe { closed = false }) 0
  else begin
    let roots = Array.of_list (Space.enabled space ~config ~cluster) in
    Pool.with_pool ~jobs (fun pool ->
        let search_to bound =
          let seen = Striped_seen.create ~max_states () in
          ignore (Striped_seen.claim seen (root_fp ()) ~budget:bound ~ctx:0);
          incr visited;
          let next_root = Atomic.make 0 in
          let stop = Atomic.make false in
          let tallies =
            Pool.map_array pool
              (fun _worker ->
                bound_worker ~space ~gc ~perms ~por ~config ~roots ~seen ~next_root
                  ~stop ~bound ())
              (Array.init (Pool.jobs pool) Fun.id)
          in
          Array.iter
            (fun t ->
              visited := !visited + t.w_visited;
              transitions := !transitions + t.w_transitions)
            tallies;
          distinct := checked_distinct seen;
          peak_seen := max !peak_seen !distinct;
          spilled := max !spilled (Striped_seen.spilled seen);
          Striped_seen.close seen;
          (match progress with
          | Some f -> f ~depth:bound ~distinct:!distinct ~transitions:!transitions
          | None -> ());
          (* Merge in worker-index order; among counterexamples the
             lowest root-action index wins, mirroring the sequential
             DFS's left-to-right root scan.  A violation outranks the
             state budget (it is the more informative verdict). *)
          let violation =
            Array.fold_left
              (fun best t ->
                match (best, t.w_violation) with
                | None, v -> v
                | v, None -> v
                | Some (i, _, _), Some (j, _, _) when j < i -> t.w_violation
                | best, _ -> best)
              None tallies
          in
          match violation with
          | Some (_, trace, violations) -> `Found (trace, violations)
          | None ->
              if Array.exists (fun t -> t.w_budget) tallies then `Budget
              else if Array.exists (fun t -> t.w_cutoff) tallies then `Cutoff
              else `Closed
        in
        let rec iterate bound =
          match search_to bound with
          | `Found (trace, violations) ->
              result (Violation { trace; violations }) (List.length trace)
          | `Budget -> result Out_of_budget (bound - 1)
          | `Closed -> result (Safe { closed = true }) bound
          | `Cutoff ->
              if bound >= depth then result (Safe { closed = false }) bound
              else iterate (bound + 1)
        in
        iterate 1)
  end

(* ------------------------------------------------------------------ *)
(* The work-stealing search.

   Root-alphabet sharding above serializes on deep narrow prefixes: once
   a worker owns a root action, the whole subtree below it is that
   worker's.  Here the frontier is fully distributed instead — {e every}
   expanded state's successors become stealable tasks over
   {!Pool.run_stealing}'s Chase–Lev deques.

   A task is a state to expand, carried as its checkpointed prefix: the
   reversed step trace from the root (tail-shared with its siblings, so
   pushing a child is O(1)), the remaining iterative-deepening budget,
   and the {!Por} sleep-set context ([filter]/[covered]) the expansion
   was admitted under by {!Striped_seen.claim} — the context travels
   with the task, so the reduction stays sound no matter which worker
   executes it.  To execute a task a worker repositions its private
   session: it keeps the path of (step, checkpoint) pairs it is
   currently standing on, rolls back to the deepest common ancestor
   with the task's prefix and replays only the suffix (applying each
   step through the same [apply_step]/[check_step] pair as the first
   execution, so cluster {e and} oracle state are bit-identical to a
   fresh rebuild).  A local LIFO pop is the child of the state just
   expanded — the common ancestor is the whole prefix and the replay is
   one step; a steal pays a rollback to a shallow ancestor (usually the
   root) plus a replay of the stolen prefix, which is exactly the
   Stern & Dill recipe with the frontier made global.

   The lock-striped {!Striped_seen} store (and its spill tier) remains
   the only shared structure; everything determinism-critical — the
   Safe/Out_of_budget/Violation verdict, the closed flag, trace
   lengths, [distinct] on completed bounds, the [max_states] budget —
   flows through its claim rule exactly as in the sharded search, so
   verdicts are independent of the scheduler.  Only [visited],
   [transitions], the steal statistics and the choice among equally
   short counterexamples vary with the interleaving. *)

type task = {
  t_trace : Schedule.step list;  (* reversed: deepest step first *)
  t_budget : int;  (* remaining depth below this state *)
  t_filter : int;  (* Por context filtering this state's successors *)
  t_covered : int;  (* nonzero: expand only the sleep difference *)
}

type wstate = {
  ws_session : Harness.session;
  ws_cluster : Cluster.t;
  ws_oracle : Oracle.t;
  ws_fingerprint : unit -> string;
  ws_root_ck : Harness.checkpoint;
  (* The path the session is standing on, root-first; each checkpoint is
     the state after applying its step. *)
  mutable ws_path : (Schedule.step * Harness.checkpoint) list;
  mutable ws_visited : int;
  mutable ws_transitions : int;
  mutable ws_cutoff : bool;
  mutable ws_budget_hit : bool;
  mutable ws_violation : (Schedule.step list * Oracle.violation list) option;
}

let make_wstate ~gc ~perms ~(config : Harness.config) () =
  let session = Harness.make_session config in
  let buf = Buffer.create 256 in
  {
    ws_session = session;
    ws_cluster = Harness.cluster session;
    ws_oracle = Harness.oracle session;
    ws_fingerprint = (fun () -> Fingerprint.canonical ~buf ~gc ~perms session);
    ws_root_ck = Harness.checkpoint session;
    ws_path = [];
    ws_visited = 0;
    ws_transitions = 0;
    ws_cutoff = false;
    ws_budget_hit = false;
    ws_violation = None;
  }

(* Move the worker's session to the state reached by [target] (the
   root-first step prefix): roll back to the deepest common ancestor of
   the current path, then replay the suffix.  Returns the checkpoint of
   the target state. *)
let position st (target : Schedule.step list) =
  let rec split kept path target =
    match (path, target) with
    | (s, ck) :: path', step :: target' when s = step ->
        split ((s, ck) :: kept) path' target'
    | _ -> (kept, target)
  in
  let kept_rev, suffix = split [] st.ws_path target in
  let base_ck =
    match kept_rev with [] -> st.ws_root_ck | (_, ck) :: _ -> ck
  in
  Harness.rollback st.ws_session base_ck;
  let path = ref kept_rev and ck = ref base_ck in
  List.iter
    (fun step ->
      Harness.apply_step st.ws_session step;
      Oracle.check_step st.ws_oracle st.ws_cluster;
      ck := Harness.checkpoint st.ws_session;
      path := (step, !ck) :: !path)
    suffix;
  st.ws_path <- List.rev !path;
  !ck

(* Expand one task: enumerate the (reduction-filtered) enabled steps,
   apply each, run the oracle, claim the successor, and push every
   Expand verdict as a stealable child task. *)
let execute_task ~space ~por ~(config : Harness.config) ~seen
    ~(stop : bool Atomic.t) st ~push task =
  if not (Atomic.get stop) then begin
    let ck = position st (List.rev task.t_trace) in
    if task.t_budget = 0 then st.ws_cutoff <- true
    else begin
      let steps = Space.enabled space ~config ~cluster:st.ws_cluster in
      let steps =
        if not por then steps
        else if task.t_covered = 0 then Por.filter ~ctx:task.t_filter steps
        else Por.filter_uncovered ~ctx:task.t_filter ~covered:task.t_covered steps
      in
      List.iter
        (fun step ->
          if not (Atomic.get stop) then begin
            st.ws_transitions <- st.ws_transitions + 1;
            Harness.apply_step st.ws_session step;
            Oracle.check_step st.ws_oracle st.ws_cluster;
            if not (Oracle.is_safe st.ws_oracle) then begin
              st.ws_violation <-
                Some
                  (List.rev (step :: task.t_trace), Oracle.violations st.ws_oracle);
              Atomic.set stop true
            end
            else begin
              let budget = task.t_budget - 1 in
              let ctx = if por then Por.rank step else 0 in
              match Striped_seen.claim seen (st.ws_fingerprint ()) ~budget ~ctx with
              | Striped_seen.Prune -> ()
              | Striped_seen.Budget ->
                  st.ws_budget_hit <- true;
                  Atomic.set stop true
              | Striped_seen.Expand { filter; covered } ->
                  st.ws_visited <- st.ws_visited + 1;
                  push
                    {
                      t_trace = step :: task.t_trace;
                      t_budget = budget;
                      t_filter = filter;
                      t_covered = covered;
                    }
            end;
            Harness.rollback st.ws_session ck
          end)
        steps
    end
  end

let stealing_search ~jobs ~space ~symmetry ~por ~max_states ?progress
    ~(config : Harness.config) ~depth () =
  let perms = perms_for ~symmetry config in
  let gc = Space.amnesia_free space in
  (* The caller's own session serves the initial-state check and the
     root fingerprint (the root state never changes across bounds). *)
  let session = Harness.make_session config in
  let cluster = Harness.cluster session in
  let oracle = Harness.oracle session in
  let buf = Buffer.create 256 in
  let root_fp () = Fingerprint.canonical ~buf ~gc ~perms session in
  let visited = ref 0 in
  let transitions = ref 0 in
  let peak_seen = ref 0 in
  let distinct = ref 0 in
  let spilled = ref 0 in
  let worker_stats = ref [||] in
  let result outcome depth =
    {
      outcome;
      depth;
      visited = !visited;
      distinct = !distinct;
      transitions = !transitions;
      peak_seen = !peak_seen;
      spilled = !spilled;
      workers = !worker_stats;
    }
  in
  Oracle.check_step oracle cluster;
  if not (Oracle.is_safe oracle) then
    result (Violation { trace = []; violations = Oracle.violations oracle }) 0
  else if depth <= 0 then result (Safe { closed = false }) 0
  else
    Pool.with_pool ~jobs (fun pool ->
        let merge_stats stats =
          if Array.length !worker_stats = 0 then worker_stats := stats
          else
            worker_stats :=
              Array.map2 Pool.add_steal_stats !worker_stats stats
        in
        let search_to bound =
          let seen = Striped_seen.create ~max_states () in
          ignore (Striped_seen.claim seen (root_fp ()) ~budget:bound ~ctx:0);
          incr visited;
          let stop = Atomic.make false in
          let states = Array.make (Pool.jobs pool) None in
          let init w =
            let st = make_wstate ~gc ~perms ~config () in
            states.(w) <- Some st;
            st
          in
          let run st ~push task =
            execute_task ~space ~por ~config ~seen ~stop st ~push task
          in
          let root_task =
            { t_trace = []; t_budget = bound; t_filter = 0; t_covered = 0 }
          in
          let stats =
            Pool.run_stealing pool ~seed:bound ~roots:[| root_task |] ~init ~run ()
          in
          merge_stats stats;
          let tallies =
            Array.to_list states |> List.filter_map Fun.id
          in
          List.iter
            (fun st ->
              visited := !visited + st.ws_visited;
              transitions := !transitions + st.ws_transitions)
            tallies;
          distinct := checked_distinct seen;
          peak_seen := max !peak_seen !distinct;
          spilled := max !spilled (Striped_seen.spilled seen);
          Striped_seen.close seen;
          (match progress with
          | Some f -> f ~depth:bound ~distinct:!distinct ~transitions:!transitions
          | None -> ());
          (* Merge in worker-index order; a violation outranks the state
             budget (the more informative verdict).  Among workers'
             equally short counterexamples the lowest worker index wins —
             which one that is depends on the schedule, exactly like the
             root-sharded search's choice depends on the shard map. *)
          let violation =
            List.fold_left
              (fun best st ->
                match (best, st.ws_violation) with
                | None, v -> v
                | v, _ -> v)
              None tallies
          in
          match violation with
          | Some (trace, violations) -> `Found (trace, violations)
          | None ->
              if List.exists (fun st -> st.ws_budget_hit) tallies then `Budget
              else if List.exists (fun st -> st.ws_cutoff) tallies then `Cutoff
              else `Closed
        in
        let rec iterate bound =
          match search_to bound with
          | `Found (trace, violations) ->
              result (Violation { trace; violations }) (List.length trace)
          | `Budget -> result Out_of_budget (bound - 1)
          | `Closed -> result (Safe { closed = true }) bound
          | `Cutoff ->
              if bound >= depth then result (Safe { closed = false }) bound
              else iterate (bound + 1)
        in
        iterate 1)

let search ?(space = Space.default) ?symmetry ?(por = true) ?(max_states = 1_000_000)
    ?progress ?(jobs = 1) ?(steal = true) ~(config : Harness.config) ~depth () =
  let symmetry = resolve_symmetry ?symmetry config in
  if jobs <= 1 || Pool.in_worker () then
    sequential_search ~space ~symmetry ~por ~max_states ?progress ~config ~depth ()
  else if steal then
    stealing_search ~jobs ~space ~symmetry ~por ~max_states ?progress ~config ~depth ()
  else
    parallel_search ~jobs ~space ~symmetry ~por ~max_states ?progress ~config ~depth ()
