(* Bounded explicit-state exploration: iterative-deepening DFS over the
   enabled actions, with a seen-state table and the safety oracle checked
   at every state.

   One chaos session carries the whole search; branching rewinds it with
   {!Dynvote_chaos.Harness.checkpoint}/[rollback], so every explored path
   executes the exact code a chaos replay would.  The seen table maps a
   canonical fingerprint to the largest remaining-depth budget it was
   expanded with: a revisit with no more budget is pruned, a revisit with
   more budget is re-expanded (the standard transposition rule that keeps
   iterative deepening sound).

   Iterative deepening guarantees the first counterexample found is one
   of minimum length.  When an iteration completes without ever hitting
   the depth cutoff, the entire reachable space (under the configured
   alphabet) has been exhausted and deeper iterations are skipped — the
   search is [closed]. *)

module Cluster = Dynvote_msgsim.Cluster
module Harness = Dynvote_chaos.Harness
module Oracle = Dynvote_chaos.Oracle
module Schedule = Dynvote_chaos.Schedule

type outcome =
  | Safe of { closed : bool }
  | Violation of { trace : Schedule.step list; violations : Oracle.violation list }
  | Out_of_budget

type result = {
  outcome : outcome;
  depth : int;
  visited : int;
  distinct : int;
  transitions : int;
  peak_seen : int;
}

exception Found of Schedule.step list * Oracle.violation list
exception Budget

let search ?(space = Space.default) ?symmetry ?(max_states = 1_000_000) ?progress
    ~(config : Harness.config) ~depth () =
  (* Site relabeling commutes with the transition relation only without
     the lexicographic tie-break (site identity is load-bearing in the
     ordering), so symmetry reduction defaults off for tie-break
     flavors. *)
  let symmetry =
    match symmetry with
    | Some s -> s
    | None -> not config.Harness.flavor.Decision.tie_break
  in
  let perms =
    if symmetry then
      Fingerprint.segment_perms ~universe:config.Harness.universe
        ~segment_of:config.Harness.segment_of
    else [ Fingerprint.identity ~n_sites:(Site_set.max_elt config.Harness.universe + 1) ]
  in
  let session = Harness.make_session config in
  let cluster = Harness.cluster session in
  let oracle = Harness.oracle session in
  let buf = Buffer.create 256 in
  let gc = Space.amnesia_free space in
  let fingerprint () = Fingerprint.canonical ~buf ~gc ~perms session in
  let visited = ref 0 in
  let transitions = ref 0 in
  let peak_seen = ref 0 in
  let distinct = ref 0 in
  let cutoff = ref false in
  let root = Harness.checkpoint session in
  let search_to bound =
    let seen = Hashtbl.create 4096 in
    cutoff := false;
    Hashtbl.replace seen (fingerprint ()) bound;
    incr visited;
    let rec dfs remaining trace =
      if remaining = 0 then cutoff := true
      else begin
        let ck = Harness.checkpoint session in
        List.iter
          (fun step ->
            incr transitions;
            Harness.apply_step session step;
            Oracle.check_step oracle cluster;
            if not (Oracle.is_safe oracle) then
              raise (Found (List.rev (step :: trace), Oracle.violations oracle));
            let fp = fingerprint () in
            let budget = remaining - 1 in
            (match Hashtbl.find_opt seen fp with
            | Some prior when prior >= budget -> ()
            | _ ->
                if Hashtbl.length seen >= max_states then raise Budget;
                Hashtbl.replace seen fp budget;
                incr visited;
                dfs budget (step :: trace));
            Harness.rollback session ck)
          (Space.enabled space ~config ~cluster)
      end
    in
    let outcome =
      try
        dfs bound [];
        `Exhausted
      with
      | Found (trace, violations) -> `Found (trace, violations)
      | Budget -> `Budget
    in
    distinct := Hashtbl.length seen;
    peak_seen := max !peak_seen !distinct;
    (match progress with
    | Some f -> f ~depth:bound ~distinct:!distinct ~transitions:!transitions
    | None -> ());
    outcome
  in
  let result outcome depth =
    {
      outcome;
      depth;
      visited = !visited;
      distinct = !distinct;
      transitions = !transitions;
      peak_seen = !peak_seen;
    }
  in
  let rec iterate bound =
    Harness.rollback session root;
    match search_to bound with
    | `Found (trace, violations) ->
        result (Violation { trace; violations }) (List.length trace)
    | `Budget -> result Out_of_budget (bound - 1)
    | `Exhausted ->
        if not !cutoff then result (Safe { closed = true }) bound
        else if bound >= depth then result (Safe { closed = false }) bound
        else iterate (bound + 1)
  in
  (* The initial state could in principle already violate (it never does
     for a sane config, but the oracle decides that, not us). *)
  Oracle.check_step oracle cluster;
  if not (Oracle.is_safe oracle) then
    result (Violation { trace = []; violations = Oracle.violations oracle }) 0
  else if depth <= 0 then result (Safe { closed = false }) 0
  else iterate 1
