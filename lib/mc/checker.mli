(** Policy-level model checking: run the {!Explorer} for one policy and
    cross-validate any counterexample by replaying it through
    {!Dynvote_chaos.Harness.run}. *)

val paper_segment_of : Site_set.site -> int
(** The paper's §3 four-copy topology: sites 0 and 1 (A, B) share a
    segment; 2 (C) and 3 (D) are alone on theirs. *)

val make_config :
  ?flavor:Decision.flavor ->
  ?delivery:Dynvote_msgsim.Cluster.delivery ->
  universe:Site_set.t ->
  segment_of:(Site_set.site -> int) ->
  unit ->
  Dynvote_chaos.Harness.config
(** A harness config for exhaustive checking: [Quiet] delivery (the
    paper's model — and no timeout events to simulate), [`After_decide]
    coordinator crashes, atomic commits. *)

val paper_config : ?flavor:Decision.flavor -> unit -> Dynvote_chaos.Harness.config
(** {!make_config} on the §3 four-copy example. *)

type verdict =
  | Clean of { closed : bool }  (** no violation within the bound *)
  | Counterexample of {
      schedule : Dynvote_chaos.Schedule.t;
      violations : Dynvote_chaos.Oracle.violation list;
      replay : Dynvote_chaos.Oracle.violation list;
          (** what {!Dynvote_chaos.Harness.run} reports on the same
              schedule *)
      replay_matches : bool;  (** [replay = violations] *)
    }
  | Inconclusive  (** the state budget ran out first *)

type report = {
  policy : Dynvote_chaos.Harness.policy;
  depth : int;  (** the requested bound *)
  result : Explorer.result;
  verdict : verdict;
}

val check :
  ?space:Space.t ->
  ?symmetry:bool ->
  ?por:bool ->
  ?max_states:int ->
  ?progress:(depth:int -> distinct:int -> transitions:int -> unit) ->
  ?jobs:int ->
  ?steal:bool ->
  policy:Dynvote_chaos.Harness.policy ->
  depth:int ->
  Dynvote_chaos.Harness.config ->
  report
(** Explore [config] (its flavor replaced by the policy's) to [depth].
    [jobs] and [steal] are passed to {!Explorer.search}; verdicts are
    independent of both. *)

val verdict_ok : report -> bool
(** Acceptable result: clean or inconclusive, or a counterexample that
    both replays identically in the chaos harness and hits a policy
    expected to be unsafe. *)
