(* Partial-order reduction over commuting fault actions.

   The explorer's alphabet splits into {e protocol} actions (Write, Read,
   Crash_coordinator, Recover — full coordinator rounds that send
   messages, move replicas and feed the oracle) and {e fault} actions
   (Crash, Restart, Partition, Heal — pure environment changes).  Fault
   actions fall into commuting classes, so exploring every interleaving
   of a fault burst multiplies the state space by the burst's
   permutation count without reaching any new state.  The reduction
   explores only the rank-sorted interleavings: after arriving by fault
   action [p], a fault action [c] that is independent of [p] and ranks
   below it is skipped — the skipped path is a permutation of an
   explored one.

   Commutation is proved from the transition code's footprints
   (lib/msgsim/cluster.ml, lib/chaos/harness.ml):

   - [Crash s]   = up := up \ {s}; fresh := fresh \ {s};
                   clear_lock(node s)                    (Cluster.fail)
   - [Restart (s, c)] = mangle stable(node s) per c (Zero/Truncate are
                   deterministic functions of the record; Bit_flip is
                   excluded from the alphabet); up := up U {s};
                   reload node s's replica/amnesia flag from its stable
                   record; clear node s's volatile collector/lock/fetch
                   state                  (Harness.apply_step, Cluster.
                   restart_silently, Node.reload_from_stable)
   - [Partition m] = groups := decode m   (a constant of the mask)
   - [Heal]        = groups := None

   Footprints: a per-site action on [s] reads and writes only
   {up(s), fresh(s), node s}; Partition/Heal read and write only
   {groups}.  Two fault actions are {e independent} iff their footprints
   are disjoint: per-site actions on different sites, and any per-site
   action vs any net action.  Partition and Heal share {groups} and are
   dependent; same-site Crash/Restart share the site and are dependent.
   Independent fault actions therefore commute {e exactly} as state
   transformers (each is a function of its own footprint only).

   Enabledness: the guard of [Crash s] is s in up, of [Restart s] is
   s not in up (Space emits them only so, and Harness.apply_step
   re-checks); Partition has no guard and Heal's (groups <> None) reads
   only {groups}.  Every guard reads only the action's own footprint, so
   an independent action can neither enable nor disable it — condition
   C1 of an ample set, here in both directions.

   Violations: no fault action mutates the oracle (they send no
   messages, apply no commits, produce no client outcome), and none
   changes any node's (data_version, content) — Node.reload_from_stable
   restores the {e ensemble} only.  Hence the (holders, oracle)
   observation the per-state safety check consumes is {e constant across
   a fault burst}: permuting the burst changes no observation, and a
   violation flagged mid-burst was already flaggable at the burst's
   first state.  Swapping an adjacent independent out-of-order pair
   therefore preserves the path's length, its end state, and the
   violation status of every observation along it.

   Soundness of exploring only sorted interleavings: any path is
   transformed into a locally-sorted one by bubble swaps of adjacent
   independent out-of-order fault pairs — each swap removes exactly one
   rank inversion, so the process terminates, and by the above each swap
   is behavior-preserving.  The interaction with the seen table (a
   sorted path's prefix may hit a cached state that was previously
   expanded under a {e different} incoming-action filter) is handled by
   the context tag stored next to each fingerprint's budget: see
   {!Striped_seen.claim}.  The whole argument is additionally gated
   empirically — the mc test suite asserts reduced and full exploration
   produce identical verdicts, counterexample lengths and distinct-state
   counts at small depth for every policy, at -j1 and -j4. *)

module Schedule = Dynvote_chaos.Schedule

(* The rank is a total order on fault actions that encodes the action
   injectively: bits 16+ carry the class, the low bits the site (or
   corruption-tagged site, or partition mask).  Protocol actions rank 0,
   which [allowed] and the seen table treat as "no filtering".  16 sites
   and 16-bit partition masks fit with room to spare; ranks stay below
   [max_ctx]. *)
let max_ctx = 0x5_0000

let corruption_index = function
  | None -> 0
  | Some Schedule.Truncate -> 1
  | Some Schedule.Bit_flip -> 2
  | Some Schedule.Zero -> 3

let rank = function
  | Schedule.Crash site -> 0x1_0000 lor site
  | Schedule.Restart (site, c) -> 0x2_0000 lor ((site lsl 2) lor corruption_index c)
  | Schedule.Partition mask -> 0x3_0000 lor mask
  | Schedule.Heal -> 0x4_0000
  | Schedule.Write _ | Schedule.Read _ | Schedule.Crash_coordinator _
  | Schedule.Recover _ -> 0

(* Independence, decoded from the ranks (which carry the full action).
   Both non-zero, not both net (Partition/Heal overwrite the same
   [groups] field), not the same site when both are per-site. *)
let indep ra rb =
  let class_a = ra lsr 16 and class_b = rb lsr 16 in
  let site_of r = match r lsr 16 with
    | 1 -> r land 0xffff
    | _ -> (r land 0xffff) lsr 2
  in
  ra <> 0 && rb <> 0
  && not (class_a >= 3 && class_b >= 3)
  && (class_a >= 3 || class_b >= 3 || site_of ra <> site_of rb)

(* Is [step] explored from a state entered by the action ranked [ctx]?
   Skipped exactly when it is a fault action, independent of the
   incoming action, and ranks strictly below it: the path taking [step]
   first is a permutation of an explored sorted one.  [ctx] = 0 (root
   state, protocol predecessor, or a seen-table context conflict) means
   no filtering. *)
let allowed ~ctx step =
  let r = rank step in
  r = 0 || ctx = 0 || r > ctx || not (indep r ctx)

let filter ~ctx steps =
  if ctx = 0 then steps else List.filter (allowed ~ctx) steps

(* Difference expansion for a cached-state context conflict
   ({!Striped_seen.claim}): the steps allowed under [ctx] that an
   already-recorded expansion under [covered] slept.  Protocol actions
   (rank 0) are allowed under every context, so the difference contains
   only fault actions — the re-exploration a conflict costs is a handful
   of environment steps, not the state's whole fan-out. *)
let filter_uncovered ~ctx ~covered steps =
  List.filter (fun s -> allowed ~ctx s && not (allowed ~ctx:covered s)) steps
