(* The action alphabet: which Schedule steps the explorer branches on at
   a given state.

   Every emitted step is {e enabled} — it changes state when applied by
   {!Dynvote_chaos.Harness.apply_step} (crashing a down site, restarting
   an up one and similar no-ops are skipped at the source; a redundant
   partition still gets emitted and is pruned by the seen set, which is
   cheaper than computing redundancy here).

   The alphabet is deliberately coarser than single message deliveries:
   the cluster's coordinators run their broadcast-gather-decide-commit
   rounds synchronously, so one client operation is one atomic transition
   — exactly a {!Dynvote_chaos.Schedule.step}, which is what makes every
   counterexample replay verbatim in the chaos harness.  Message-level
   nondeterminism enters through the dedicated crash points
   ([Crash_coordinator]) instead.

   Restart corruption variants default to [None] (clean record) and
   [Zero] (record lost): [Truncate] behaves identically to [Zero] (both
   fail the codec checksum, leaving the site amnesiac) and [Bit_flip]
   draws on the rng, which would break checkpoint/rollback determinism.

   Partition masks mirror the harness's decoding.  For topological
   flavors only whole-segment cuts are generated (their network model
   cannot partition a segment); either way the group containing the
   lowest-ranked site/segment carries the set bit, halving the
   complement-duplicate masks. *)

module Cluster = Dynvote_msgsim.Cluster
module Harness = Dynvote_chaos.Harness
module Schedule = Dynvote_chaos.Schedule

type t = {
  reads : bool;
  coordinator_crashes : bool;
  recoveries : bool;
  partitions : bool;
  corruptions : Schedule.corruption option list;
}

(* The default alphabet trades breadth for reachable-depth: reads run the
   same voting round as writes (committing (o+1, v, S) instead of
   (o+1, v+1, S)) and record corruption only widens amnesia windows that
   clean crash/restart interleavings already open, so both roughly double
   the branching factor without enabling qualitatively new histories.
   Every known protocol violation — including the published TDV hole —
   is reachable without them; [full] turns them back on for exhaustive
   sweeps. *)
let default =
  {
    reads = false;
    coordinator_crashes = true;
    recoveries = true;
    partitions = true;
    corruptions = [ None ];
  }

let full =
  {
    default with
    reads = true;
    corruptions = [ None; Some Schedule.Zero ];
  }

let amnesia_free t = List.for_all (fun c -> c = None) t.corruptions

(* Proper two-way splits as harness-compatible masks: bits index the
   ranked site list (plain flavors) or segment ids (topological). *)
let partition_masks ~(config : Harness.config) =
  let ranked = Site_set.to_list config.Harness.universe in
  if config.Harness.flavor.Decision.topological then begin
    let segments =
      List.sort_uniq compare (List.map config.Harness.segment_of ranked)
    in
    match segments with
    | [] | [ _ ] -> []
    | first :: rest ->
        (* Subsets of the remaining segments joined to the first one;
           excluding the all-segments subset leaves the proper splits. *)
        let rec subsets = function
          | [] -> [ [] ]
          | seg :: rest ->
              let without = subsets rest in
              without @ List.map (fun s -> seg :: s) without
        in
        List.filter_map
          (fun subset ->
            if List.length subset = List.length rest then None
            else
              Some
                (List.fold_left
                   (fun mask seg -> mask lor (1 lsl seg))
                   (1 lsl first) subset))
          (subsets rest)
        |> List.sort compare
  end
  else begin
    let n = List.length ranked in
    if n < 2 then []
    else
      (* Masks over rank indices with bit 0 set, excluding the full set:
         2^(n-1) - 1 distinct proper splits. *)
      let rec loop mask acc =
        if mask >= (1 lsl n) - 1 then List.rev acc
        else loop (mask + 2) (mask :: acc)
      in
      loop 1 []
  end

let enabled t ~(config : Harness.config) ~cluster =
  let universe = Cluster.universe cluster in
  let up = Cluster.up_sites cluster in
  let amnesiac = Cluster.amnesiac_sites cluster in
  let can_coordinate site =
    Site_set.mem site up && not (Site_set.mem site amnesiac)
  in
  let acc = ref [] in
  let emit step = acc := step :: !acc in
  Site_set.iter
    (fun site -> if can_coordinate site then emit (Schedule.Write site))
    universe;
  if t.reads then
    Site_set.iter
      (fun site -> if can_coordinate site then emit (Schedule.Read site))
      universe;
  if t.coordinator_crashes then
    Site_set.iter
      (fun site -> if can_coordinate site then emit (Schedule.Crash_coordinator site))
      universe;
  Site_set.iter (fun site -> emit (Schedule.Crash site)) up;
  Site_set.iter
    (fun site ->
      if not (Site_set.mem site up) then
        List.iter (fun c -> emit (Schedule.Restart (site, c))) t.corruptions)
    universe;
  if t.recoveries then
    Site_set.iter
      (fun site ->
        if (not (Site_set.mem site up)) || Site_set.mem site amnesiac then
          emit (Schedule.Recover site))
      universe;
  if t.partitions then begin
    List.iter (fun mask -> emit (Schedule.Partition mask)) (partition_masks ~config);
    match Cluster.groups cluster with
    | Some _ -> emit Schedule.Heal
    | None -> ()
  end;
  List.rev !acc
