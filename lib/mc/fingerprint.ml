(* Canonical state fingerprints for the explorer's seen set.

   A fingerprint serializes everything that determines a session's future
   behavior: every site's ensemble (o, v, P), data version and content,
   amnesia and stable-record status; the cluster's up/fresh sets and
   declared partition groups; and the safety oracle's memory (its
   register model and monotonicity watermarks are part of the product
   state — two cluster states are only interchangeable if the oracle can
   still detect the same future violations from both).

   Content strings are canonicalized by first-occurrence renaming: the
   literal bytes "w3" vs "w5" record how many write steps a path
   attempted, not anything the protocol can branch on, so states that
   differ only in those labels collapse.  (Violation reports quote the
   literal strings, but a violating state terminates the search — it is
   never fingerprinted for re-expansion.)

   An optional site permutation relabels sites before serialization; the
   canonical form under a symmetry group is the minimum serialization
   over its permutations.  Relabeling is only sound when the transition
   relation commutes with it — which the lexicographic tie-break breaks,
   so callers restrict symmetry to tie-break-free flavors and to
   permutations within a segment (preserving [segment_of]). *)

module Cluster = Dynvote_msgsim.Cluster
module Node = Dynvote_msgsim.Node
module Harness = Dynvote_chaos.Harness
module Spec = Dynvote_invariant.Spec

let identity ~n_sites = Array.init n_sites Fun.id

(* All permutations of the universe that map every segment onto itself,
   identity included (it is the identity of the group, hence always
   first).  Sites outside the universe map to themselves. *)
let segment_perms ~universe ~segment_of =
  let n_sites = Site_set.max_elt universe + 1 in
  let by_segment = Hashtbl.create 4 in
  Site_set.iter
    (fun site ->
      let seg = segment_of site in
      Hashtbl.replace by_segment seg (site :: (Option.value ~default:[] (Hashtbl.find_opt by_segment seg))))
    universe;
  let rec permutations = function
    | [] -> [ [] ]
    | items ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) items in
            List.map (fun p -> x :: p) (permutations rest))
          items
  in
  (* One (members, images) choice per segment; the cartesian product of
     per-segment permutations is the full symmetry group. *)
  let groups =
    List.sort compare
      (Hashtbl.fold (fun _ members acc -> List.sort compare members :: acc) by_segment [])
  in
  let assignments =
    List.fold_left
      (fun acc members ->
        let perms = permutations members in
        List.concat_map
          (fun assignment ->
            List.map (fun images -> List.combine members images :: assignment) perms)
          acc)
      [ [] ] groups
  in
  let arrays =
    List.map
      (fun assignment ->
        let perm = identity ~n_sites in
        List.iter (List.iter (fun (site, image) -> perm.(site) <- image)) assignment;
        perm)
      assignments
  in
  (* Deterministic order with the identity first. *)
  let id = identity ~n_sites in
  id :: List.filter (fun p -> p <> id) (List.sort compare arrays)

let serialize ~buf ~perm ~gc session =
  let cluster = Harness.cluster session in
  let oracle = Harness.oracle session in
  let universe = Cluster.universe cluster in
  let map_site site = perm.(site) in
  let map_set set =
    Site_set.fold (fun site acc -> Site_set.add perm.(site) acc) set Site_set.empty
  in
  Buffer.clear buf;
  let add_int = Fingerprint_buf.add_int buf in
  (* Counter rebasing.  Operation and version numbers are only ever
     compared for order and equality (within their own domain — versions
     also against data versions) and advance by increments, so subtracting
     each domain's per-state minimum preserves behavior exactly while
     collapsing states that differ by a uniformly committed prefix — the
     rebasing is what lets the reachable space close instead of growing
     with history length.  Amnesiac sites' decodable stable records can
     resurface as replicas, so their counters join the minima. *)
  let o_base = ref max_int and v_base = ref max_int in
  Site_set.iter
    (fun site ->
      let node = Cluster.node cluster site in
      let replica = Node.replica node in
      o_base := min !o_base (Replica.op_no replica);
      v_base := min !v_base (min (Replica.version replica) (Node.data_version node));
      if Node.is_amnesiac node then
        match Codec.decode_result (Node.stable_record node) with
        | Ok r ->
            o_base := min !o_base (Replica.op_no r);
            v_base := min !v_base (Replica.version r)
        | Error _ -> ())
    universe;
  let map_op o = o - !o_base and map_version v = v - !v_base in
  let renames = Hashtbl.create 8 in
  let rename content =
    match Hashtbl.find_opt renames content with
    | Some id -> id
    | None ->
        let id = Hashtbl.length renames in
        Hashtbl.add renames content id;
        id
  in
  let serialize_site site =
    let node = Cluster.node cluster site in
    let replica = Node.replica node in
    add_int (map_op (Replica.op_no replica));
    add_int (map_version (Replica.version replica));
    add_int (Site_set.to_int (map_set (Replica.partition replica)));
    add_int (map_version (Node.data_version node));
    (* The live content of the oracle's committed-versions set: membership
       of the versions sites currently hold.  A version nobody holds can
       only be re-acquired through a fresh commit, which re-inserts it —
       so these bits replace serializing the (monotonically growing) set
       itself. *)
    add_int (if Spec.mem_committed_version oracle (Node.data_version node) then 1 else 0);
    add_int (rename (Node.content node));
    (* Stable-record status.  Steps keep record and ensemble in sync for
       every non-amnesiac site (commits rewrite the record; a clean
       reload restores the ensemble from it; corruption is applied only
       immediately before the reload that discovers it), so the record
       carries extra information only on the amnesiac path — where it
       either still decodes to some stale ensemble or is mangled. *)
    if not (Node.is_amnesiac node) then add_int 0
    else
      match Codec.decode_result (Node.stable_record node) with
      | Ok r ->
          add_int 1;
          add_int (map_op (Replica.op_no r));
          add_int (map_version (Replica.version r));
          add_int (Site_set.to_int (map_set (Replica.partition r)))
      | Error _ -> add_int 2
  in
  let is_identity =
    let ok = ref true in
    Array.iteri (fun i v -> if i <> v then ok := false) perm;
    !ok
  in
  (if is_identity then
     (* Ascending site order is already canonical under the identity. *)
     Site_set.iter serialize_site universe
   else begin
     (* Serialize in ascending canonical-id order; the ids themselves are
        the sorted universe under any in-group permutation, hence carry no
        information and are omitted — keeping the identity and permuted
        shapes byte-compatible (the min over the group must compare
        like with like). *)
     let canonical_order =
       List.sort compare (List.map (fun s -> (perm.(s), s)) (Site_set.to_list universe))
     in
     List.iter (fun (_canonical_site, site) -> serialize_site site) canonical_order
   end);
  add_int (Site_set.to_int (map_set (Cluster.up_sites cluster)));
  add_int (Site_set.to_int (map_set (Cluster.fresh_sites cluster)));
  (match Cluster.groups cluster with
  | None -> add_int (-1)
  | Some groups ->
      add_int (List.length groups);
      List.iter add_int
        (List.sort compare (List.map (fun g -> Site_set.to_int (map_set g)) groups)));
  (* Generation-table GC floor: a future commit's operation number always
     exceeds its coordinator's, and without amnesiac restarts in the
     alphabet no site's operation number ever decreases (clean restarts
     reload a record kept in sync with the replica), so the floor is
     monotone along every path and entries below it stay inert forever.
     Recovery re-witnesses an {e adopted} ensemble at a peer's own
     operation number — hence strictly-below, not at-or-below.  With
     amnesia in the alphabet the floor can drop (a corrupted site revives
     an arbitrarily stale ensemble), so the caller must disable GC. *)
  let min_live_op =
    if not gc then 0
    else
      Site_set.fold
        (fun site floor ->
          min floor (Replica.op_no (Node.replica (Cluster.node cluster site))))
        universe max_int
  in
  Spec.fingerprint_memory oracle ~buf ~rename ~map_site ~map_set ~map_op
    ~map_version ~min_live_op

let of_session ?perm ?(gc = false) session =
  let buf = Buffer.create 256 in
  let perm =
    match perm with
    | Some p -> p
    | None ->
        let universe = Cluster.universe (Harness.cluster session) in
        identity ~n_sites:(Site_set.max_elt universe + 1)
  in
  serialize ~buf ~perm ~gc session;
  Buffer.contents buf

let canonical ?buf ?(gc = false) ~perms session =
  let buf = match buf with Some b -> b | None -> Buffer.create 256 in
  match perms with
  | [] -> of_session ~gc session
  | [ perm ] ->
      serialize ~buf ~perm ~gc session;
      Buffer.contents buf
  | first :: rest ->
      serialize ~buf ~perm:first ~gc session;
      List.fold_left
        (fun best perm ->
          serialize ~buf ~perm ~gc session;
          let fp = Buffer.contents buf in
          if fp < best then fp else best)
        (Buffer.contents buf) rest
