(** Bounded explicit-state search: iterative-deepening DFS over the
    {!Space} alphabet, pruned by a seen-state store of canonical
    {!Fingerprint} hashes, with the safety oracle checked at every
    state and commuting fault actions reduced by {!Por}. *)

type outcome =
  | Safe of { closed : bool }
      (** no reachable violation within the bound; [closed] means the
          entire reachable space (under the alphabet) was exhausted
          before the bound, so no depth would ever find one *)
  | Violation of {
      trace : Dynvote_chaos.Schedule.step list;
      violations : Dynvote_chaos.Oracle.violation list;
    }
      (** a minimum-length path to an unsafe state (iterative deepening
          finds shortest counterexamples first) *)
  | Out_of_budget  (** the seen store hit [max_states] *)

type result = {
  outcome : outcome;
  depth : int;
      (** bound fully exhausted (or closed at); for a violation, the
          trace length; for out-of-budget, the last completed bound *)
  visited : int;  (** states stored, cumulative over all iterations *)
  distinct : int;  (** seen-store size of the final iteration *)
  transitions : int;  (** actions applied, cumulative *)
  peak_seen : int;  (** largest seen-store size — the memory high-water *)
  spilled : int;
      (** peak entries in the store's on-disk spill tier (0 unless
          [DYNVOTE_MC_SPILL] enables spilling; see {!Striped_seen}) *)
  workers : Dynvote_exec.Pool.steal_stats array;
      (** per-worker frontier statistics (tasks executed, steals, failed
          steals, deque high-water), summed over the deepening
          iterations; empty unless the work-stealing search ran
          ([jobs > 1] with [steal]) *)
}

val search :
  ?space:Space.t ->
  ?symmetry:bool ->
  ?por:bool ->
  ?max_states:int ->
  ?progress:(depth:int -> distinct:int -> transitions:int -> unit) ->
  ?jobs:int ->
  ?steal:bool ->
  config:Dynvote_chaos.Harness.config ->
  depth:int ->
  unit ->
  result
(** Explore from the initial state of a fresh session of [config].
    [symmetry] (within-segment site relabeling in the fingerprint)
    defaults to on exactly when the flavor has no lexicographic
    tie-break — relabeling does not commute with the site ordering.
    [por] (default on) explores commuting fault actions in sorted order
    only; it changes no verdict, no counterexample length and no
    distinct-state count on a completed bound — only [transitions] and
    the choice among equally short counterexamples (see {!Por}).
    [max_states] (default 1_000_000) bounds the seen store.  [progress]
    is called after each completed deepening iteration.

    [jobs] (default 1) parallelizes each deepening iteration over a
    {!Dynvote_exec.Pool}: each worker drives its own private session
    (cluster and oracle are mutable, never shared) and deduplicates
    through one lock-striped fingerprint store, so [distinct] and the
    [max_states] budget stay global.  With [steal] (the default) the
    frontier is fully distributed: every expanded state's successors
    become stealable tasks on Chase–Lev deques, each carrying its
    checkpointed step prefix and {!Por} sleep context — local pops
    replay one step, steals reposition by rollback-to-ancestor plus
    prefix replay.  [steal:false] falls back to static root-alphabet
    sharding (one worker per root action — deep narrow prefixes then
    serialize on one worker).  Either way the verdict —
    [Safe]/[Violation]/[Out_of_budget], the [closed] flag, the trace
    length, and [distinct] on a [Safe] outcome — is independent of
    [jobs] and [steal]; [visited], [transitions], [peak_seen],
    [distinct] on a [Violation] (the store size when the search
    stopped), [workers] and the choice among equally short
    counterexamples may differ from the sequential search.  At
    [jobs = 1] (and inside a pool worker) the sequential search runs
    through the same store code, one uncontended shard, byte-identical
    to every release since the parallel layer landed (the cram tests
    pin it). *)
