(** Partial-order reduction over commuting fault actions.

    Crash / Restart / Partition / Heal are pure environment changes
    with per-site (or net-wide) footprints: independent ones commute
    exactly, never touch the oracle or any node's data, and cannot
    enable or disable each other.  The explorer therefore only follows
    fault actions in non-decreasing [rank] order across independent
    pairs — every skipped interleaving is a permutation of an explored
    one with identical length, end state and violation observations
    (the commutation proof lives in por.ml; the mc test suite gates it
    empirically against full exploration). *)

val max_ctx : int
(** Exclusive upper bound on every [rank] — contexts fit the seen
    table's packed metadata. *)

val rank : Dynvote_chaos.Schedule.step -> int
(** Injective total order on fault actions; 0 for protocol actions
    (Write, Read, Crash_coordinator, Recover), which never filter. *)

val indep : int -> int -> bool
(** Independence of two actions given their ranks: both fault actions,
    footprints disjoint (different sites; not both Partition/Heal). *)

val allowed : ctx:int -> Dynvote_chaos.Schedule.step -> bool
(** Explore [step] from a state entered by the action ranked [ctx]?
    [ctx = 0] means no filtering. *)

val filter :
  ctx:int -> Dynvote_chaos.Schedule.step list -> Dynvote_chaos.Schedule.step list
(** [List.filter (allowed ~ctx)], skipping the copy when [ctx = 0]. *)

val filter_uncovered :
  ctx:int ->
  covered:int ->
  Dynvote_chaos.Schedule.step list ->
  Dynvote_chaos.Schedule.step list
(** The steps allowed under [ctx] but not under [covered] (nonzero):
    the fault actions a recorded expansion slept that ours must wake —
    the difference re-expansion of {!Striped_seen.claim}'s context
    conflicts. *)
