(* Rendering for the CLI and bench: deterministic (no timing on this
   path — wall-clock rates are the caller's business). *)

module Harness = Dynvote_chaos.Harness
module Oracle = Dynvote_chaos.Oracle
module Schedule = Dynvote_chaos.Schedule

let pp_trace ppf steps =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any "; ") Schedule.pp_step) steps

let pp ppf (r : Checker.report) =
  let name = r.Checker.policy.Harness.name in
  let res = r.Checker.result in
  let stats ppf () =
    Fmt.pf ppf "%d states, %d transitions" res.Explorer.distinct
      res.Explorer.transitions
  in
  match r.Checker.verdict with
  | Checker.Clean { closed } ->
      if closed then
        Fmt.pf ppf "%-9s safe: state space closed at depth %d (%a)" name
          res.Explorer.depth stats ()
      else
        Fmt.pf ppf "%-9s safe to depth %d (%a)" name res.Explorer.depth stats ()
  | Checker.Inconclusive ->
      Fmt.pf ppf "%-9s inconclusive: state budget exhausted after depth %d (%a)"
        name res.Explorer.depth stats ()
  | Checker.Counterexample { schedule; violations; replay_matches; _ } ->
      Fmt.pf ppf "%-9s VIOLATION in %d steps (%a)@,  schedule: %a@,%a@,  chaos replay: %s"
        name
        (List.length schedule.Schedule.steps)
        stats () pp_trace schedule.Schedule.steps
        Fmt.(list ~sep:cut (fun ppf v -> Fmt.pf ppf "  %a" Oracle.pp_violation v))
        violations
        (if replay_matches then "reproduces the same violation"
         else "DIVERGES from the explorer")

(* The work-stealing frontier's per-worker counters, one line per
   worker.  Scheduling-dependent (tasks, steals and deque depths vary
   with the interleaving), so callers keep this off the cram-pinned
   stdout — the CLI prints it on stderr under -v. *)
let pp_workers ppf (workers : Dynvote_exec.Pool.steal_stats array) =
  Array.iteri
    (fun i (w : Dynvote_exec.Pool.steal_stats) ->
      Fmt.pf ppf "  worker %d: %d tasks, %d steals, %d failed steals, max deque %d@."
        i w.Dynvote_exec.Pool.tasks_executed w.Dynvote_exec.Pool.steals
        w.Dynvote_exec.Pool.failed_steals w.Dynvote_exec.Pool.max_deque_depth)
    workers

let steal_totals (workers : Dynvote_exec.Pool.steal_stats array) =
  Array.fold_left Dynvote_exec.Pool.add_steal_stats
    Dynvote_exec.Pool.zero_steal_stats workers

let pp_expectation ppf (r : Checker.report) =
  let expected = r.Checker.policy.Harness.expect_safe in
  match r.Checker.verdict with
  | Checker.Clean _ ->
      if expected then Fmt.pf ppf "expected safe: OK"
      else Fmt.pf ppf "expected unsafe: no violation within this bound"
  | Checker.Inconclusive -> Fmt.pf ppf "no verdict"
  | Checker.Counterexample { replay_matches; _ } ->
      if not replay_matches then Fmt.pf ppf "REPLAY MISMATCH"
      else if expected then Fmt.pf ppf "UNEXPECTED: policy was expected safe"
      else Fmt.pf ppf "expected unsafe: hole confirmed"
