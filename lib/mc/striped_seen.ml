(* In the spirit of Stern & Dill's parallel Murphi: the only shared
   structure of the parallel search is the fingerprint table, and it
   only needs per-state atomicity — a mutex per shard gives that
   without serializing unrelated states.  [Hashtbl.hash] mixes the whole
   fingerprint string, so shard selection is uniform. *)

type shard = { mutex : Mutex.t; table : (string, int) Hashtbl.t }

type t = {
  shards : shard array;
  mask : int;
  count : int Atomic.t; (* distinct states admitted, for the global budget *)
  max_states : int;
}

type verdict = Expand | Prune | Budget

let create ?(shards = 64) ~max_states () =
  let n =
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    pow2 1
  in
  {
    shards =
      Array.init n (fun _ -> { mutex = Mutex.create (); table = Hashtbl.create 256 });
    mask = n - 1;
    count = Atomic.make 0;
    max_states;
  }

let claim t fp ~budget =
  let shard = t.shards.(Hashtbl.hash fp land t.mask) in
  Mutex.lock shard.mutex;
  let verdict =
    match Hashtbl.find_opt shard.table fp with
    | Some prior when prior >= budget -> Prune
    | Some _ ->
        Hashtbl.replace shard.table fp budget;
        Expand
    | None ->
        (* fetch_and_add makes the admission decision atomic across
           shards: exactly [max_states] fresh states ever get in. *)
        if Atomic.fetch_and_add t.count 1 >= t.max_states then Budget
        else begin
          Hashtbl.replace shard.table fp budget;
          Expand
        end
  in
  Mutex.unlock shard.mutex;
  verdict

let length t =
  Array.fold_left (fun acc shard -> acc + Hashtbl.length shard.table) 0 t.shards
