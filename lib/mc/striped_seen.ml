(* The seen-state store: lock-striped, open-addressing, hash-compacted,
   optionally disk-spilled.

   In the spirit of Stern & Dill's parallel Murphi, the only shared
   structure of the parallel search is this table, and it only needs
   per-state atomicity — a mutex per shard gives that without
   serializing unrelated states.

   Hash compaction: a state is stored as a 62-bit hash of its canonical
   fingerprint string, not the string itself.  Two distinct states
   colliding makes the search believe one was already explored — a
   soundness-for-capacity trade every hash-compacted checker (Murphi,
   TLC) makes: at n distinct states the collision probability is about
   n^2 / 2^63 (~5e-8 at a million states), far below the chance of any
   competing systematic error, and the cross-validating chaos replay
   would catch a collision-suppressed counterexample's absence at the
   published depths.  The payoff is a fixed 16 bytes per state (two
   unboxed int-array slots) instead of a boxed key string plus hashtable
   spine.

   Each shard is a pair of power-of-two int arrays ([fps]/[meta], linear
   probing, grown at 7/8 load) under its own mutex; fingerprint 0 is
   remapped so 0 can mark empty slots.  The metadata word packs the
   iterative-deepening remaining-depth budget with the partial-order
   reduction context ({!Por.rank} of the action the state was entered
   by): see [claim] for the transposition rule both feed.

   The spill tier bounds resident memory: when a shard's resident count
   reaches its threshold, the resident entries are sorted and merged
   into the shard's single on-disk run (an LSM with one level), and the
   arrays shrink back to their seed size.  Lookups probe the resident
   table first, then binary-search the run; an entry that needs updating
   is re-inserted resident, shadowing the run copy until the next merge
   deduplicates.  Run files are unlinked the moment they are opened, so
   they vanish with the process.  Spilling changes where an entry lives,
   never what [claim] answers — verdicts and traversal statistics are
   identical with the tier on or off, which the cram gate pins. *)

type shard = {
  mutex : Mutex.t;
  mutable fps : int array;  (* 0 = empty slot *)
  mutable meta : int array; (* budget lsl ctx_bits lor ctx *)
  mutable resident : int;
  mutable admitted : int;   (* distinct states first seen in this shard *)
  mutable run_fd : Unix.file_descr option; (* sorted (fp, meta) pairs *)
  mutable run_len : int;
}

type t = {
  shards : shard array;
  shard_shift : int;
  count : int Atomic.t; (* distinct states admitted, for the global budget *)
  max_states : int;
  spill_at : int; (* per-shard resident threshold; 0 = spilling disabled *)
}

type verdict = Expand of { filter : int; covered : int } | Prune | Budget

(* Packed metadata: one (budget, context) statement is 31 bits —
   Por.max_ctx < 2^19, and search budgets clamp to 12 bits (a weaker
   recorded statement is never a wrong prune, and a deepening bound past
   4095 is computationally unreachable anyway) — so the 62 usable bits
   of the meta word hold TWO statements.  A state reached both through a
   protocol action (context 0) and through a fault action keeps both
   coverage facts, which is what keeps context conflicts, and the
   difference re-expansions they force, rare. *)
let ctx_bits = 19
let ctx_mask = (1 lsl ctx_bits) - 1
let () = assert (Por.max_ctx <= ctx_mask + 1)
let budget_bits = 12
let budget_mask = (1 lsl budget_bits) - 1
let stmt_bits = ctx_bits + budget_bits
let stmt_mask = (1 lsl stmt_bits) - 1
let stmt ~budget ~ctx = (min budget budget_mask lsl ctx_bits) lor ctx
let stmt_budget s = s lsr ctx_bits
let stmt_ctx s = s land ctx_mask

(* [by] prunes everything [s] would: at least the budget, and a filter
   no stronger (unfiltered, or identical). *)
let stmt_subsumes ~by s =
  stmt_budget by >= stmt_budget s && (stmt_ctx by = 0 || stmt_ctx by = stmt_ctx s)

(* The two strongest of the (at most three) true statements, packed.
   The empty statement 0 = (budget 0, context 0) is vacuously true and
   needs no slot. *)
let join s1 s2 ours =
  let cands =
    List.filter (fun s -> s <> 0) [ s1; s2; ours ]
    |> List.sort (fun a b -> compare (stmt_budget b) (stmt_budget a))
  in
  let keep =
    List.fold_left
      (fun acc s ->
        if List.exists (fun by -> stmt_subsumes ~by s) acc then acc else s :: acc)
      [] cands
  in
  match List.rev keep with
  | [] -> 0
  | [ a ] -> a
  | a :: b :: _ -> a lor (b lsl stmt_bits)

(* FNV-1a over the fingerprint string, then a splitmix-style finalizer
   (constants adjusted to OCaml's 63-bit int literals — the avalanche is
   what matters, not the named constants).  The low bits index the probe
   table, the high bits pick the shard, so the two stay uncorrelated. *)
let fingerprint_hash s =
  let h = ref 0x27d4eb2f165667c5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  let h = !h in
  let h = (h lxor (h lsr 30)) * 0x2545F4914F6CDD1D in
  let h = (h lxor (h lsr 27)) * 0x369DEA0F31A53F85 in
  let h = (h lxor (h lsr 31)) land max_int in
  if h = 0 then 1 else h

let seed_capacity = 64

let env_spill () =
  match Sys.getenv_opt "DYNVOTE_MC_SPILL" with
  | None | Some "" | Some "0" -> None
  | Some v -> (
      match int_of_string_opt v with Some n when n > 0 -> Some n | _ -> None)

let create ?(shards = 64) ?spill ~max_states () =
  let n =
    let rec pow2 n = if n >= shards then n else pow2 (n * 2) in
    pow2 1
  in
  let spill = match spill with Some s -> Some s | None -> env_spill () in
  let spill_at =
    match spill with None -> 0 | Some total -> max 1 (total / n)
  in
  {
    shards =
      Array.init n (fun _ ->
          {
            mutex = Mutex.create ();
            fps = Array.make seed_capacity 0;
            meta = Array.make seed_capacity 0;
            resident = 0;
            admitted = 0;
            run_fd = None;
            run_len = 0;
          });
    (* Shards come from bits 50+ of the hash (up to 4096 shards before
       running out of the 62), disjoint from the probe index's low bits. *)
    shard_shift = 50;
    count = Atomic.make 0;
    max_states;
    spill_at;
  }

let shard_of t fp = t.shards.((fp lsr t.shard_shift) land (Array.length t.shards - 1))

(* --- resident table --- *)

let find_slot fps fp =
  let mask = Array.length fps - 1 in
  let rec go i =
    let f = Array.unsafe_get fps i in
    if f = 0 || f = fp then i else go ((i + 1) land mask)
  in
  go (fp land mask)

let grow shard =
  let old_fps = shard.fps and old_meta = shard.meta in
  let cap = Array.length old_fps * 2 in
  shard.fps <- Array.make cap 0;
  shard.meta <- Array.make cap 0;
  Array.iteri
    (fun i fp ->
      if fp <> 0 then begin
        let j = find_slot shard.fps fp in
        shard.fps.(j) <- fp;
        shard.meta.(j) <- old_meta.(i)
      end)
    old_fps

let insert shard fp meta =
  if (shard.resident + 1) * 8 > Array.length shard.fps * 7 then grow shard;
  let i = find_slot shard.fps fp in
  if shard.fps.(i) = 0 then begin
    shard.fps.(i) <- fp;
    shard.resident <- shard.resident + 1
  end;
  shard.meta.(i) <- meta

(* --- the disk run --- *)

let entry_bytes = 16

let read_entry fd i =
  let b = Bytes.create entry_bytes in
  ignore (Unix.lseek fd (i * entry_bytes) Unix.SEEK_SET);
  let rec fill off =
    if off < entry_bytes then
      let k = Unix.read fd b off (entry_bytes - off) in
      if k = 0 then failwith "Striped_seen: truncated spill run" else fill (off + k)
  in
  fill 0;
  (Int64.to_int (Bytes.get_int64_le b 0), Int64.to_int (Bytes.get_int64_le b 8))

(* Binary search the sorted run for [fp]; (-1) when absent (metas are
   non-negative). *)
let run_find shard fp =
  match shard.run_fd with
  | None -> -1
  | Some fd ->
      let rec go lo hi =
        if lo > hi then -1
        else
          let mid = (lo + hi) / 2 in
          let f, m = read_entry fd mid in
          if f = fp then m else if f < fp then go (mid + 1) hi else go lo (mid - 1)
      in
      go 0 (shard.run_len - 1)

(* Merge the sorted resident batch with the existing run into a fresh
   run file (created and immediately unlinked, so it disappears with the
   process).  On duplicate fingerprints the resident entry wins — it is
   the newer statement. *)
let flush shard =
  let batch = Array.make shard.resident (0, 0) in
  let k = ref 0 in
  Array.iteri
    (fun i fp ->
      if fp <> 0 then begin
        batch.(!k) <- (fp, shard.meta.(i));
        incr k
      end)
    shard.fps;
  Array.sort compare batch;
  let path = Filename.temp_file "dynvote-mc-spill" ".run" in
  let out = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  Unix.unlink path;
  let wbuf = Buffer.create 8192 in
  let written = ref 0 in
  let push fp meta =
    let b = Bytes.create entry_bytes in
    Bytes.set_int64_le b 0 (Int64.of_int fp);
    Bytes.set_int64_le b 8 (Int64.of_int meta);
    Buffer.add_bytes wbuf b;
    incr written;
    if Buffer.length wbuf >= 8192 then begin
      let s = Buffer.to_bytes wbuf in
      ignore (Unix.write out s 0 (Bytes.length s));
      Buffer.clear wbuf
    end
  in
  let old_fd = shard.run_fd and old_len = shard.run_len in
  (match old_fd with Some fd -> ignore (Unix.lseek fd 0 Unix.SEEK_SET) | None -> ());
  let next_old =
    let i = ref 0 in
    fun () ->
      match old_fd with
      | Some fd when !i < old_len ->
          let e = read_entry fd !i in
          incr i;
          Some e
      | _ -> None
  in
  let rec merge old j =
    match (old, if j < Array.length batch then Some batch.(j) else None) with
    | None, None -> ()
    | Some (fp, m), None ->
        push fp m;
        merge (next_old ()) j
    | None, Some (fp, m) ->
        push fp m;
        merge None (j + 1)
    | Some (ofp, om), Some (bfp, _) when ofp < bfp ->
        push ofp om;
        merge (next_old ()) j
    | Some (ofp, _), Some (bfp, bm) when ofp = bfp ->
        (* resident shadows the stale run copy *)
        push bfp bm;
        merge (next_old ()) (j + 1)
    | old, Some (bfp, bm) ->
        push bfp bm;
        merge old (j + 1)
  in
  merge (next_old ()) 0;
  if Buffer.length wbuf > 0 then begin
    let s = Buffer.to_bytes wbuf in
    ignore (Unix.write out s 0 (Bytes.length s))
  end;
  (match old_fd with Some fd -> Unix.close fd | None -> ());
  shard.run_fd <- Some out;
  shard.run_len <- !written;
  shard.fps <- Array.make seed_capacity 0;
  shard.meta <- Array.make seed_capacity 0;
  shard.resident <- 0

(* --- the claim rule --- *)

(* The context-tagged transposition rule.  A stored (budget b', context
   k') is the statement "every path of length <= b' from this state, in
   the reduced graph whose first level is filtered by Por context k',
   has been (or is on the current stack being) explored".  k' = 0 means
   unfiltered — the strongest statement at its budget.

   A revisit at (b, k) is covered, and pruned, iff some stored
   statement has b' >= b and a filter no stronger than ours: k' = 0
   (everything we would explore was explored) or k' = k (the identical
   subset was).  A context conflict (k' differing from both 0 and k) at
   b' >= b means the statement covers our budget but not our whole
   first level: the protocol actions and every fault action awake under
   both contexts were explored, so only the {e difference} — fault
   actions slept under k' but awake under k — needs expanding
   (Godefroid's re-exploration rule for sleep sets under state
   caching).  Either expansion — full when no statement reaches our
   budget, difference when one does — makes our own (b, k) a true
   statement, and [join] keeps the two strongest of the three; dropping
   a true statement is never unsound, only a possible re-expansion
   later.  This is what makes partial-order reduction sound in the
   presence of state caching (the "ignored states" problem): a pruned
   sorted path can only land on entries whose recorded exploration
   subsumes its own continuations.

   Admission of a fresh state goes through one compare-and-set loop on
   the global counter, so exactly [max_states] distinct states are ever
   admitted and the counter never drifts past the cap: a state rejected
   on the Budget path is {e not} counted (it was never admitted), which
   keeps [distinct] = [length] an invariant the report path asserts. *)
let rec admit t =
  let c = Atomic.get t.count in
  if c >= t.max_states then false
  else if Atomic.compare_and_set t.count c (c + 1) then true
  else admit t

let claim t fp_string ~budget ~ctx =
  let fp = fingerprint_hash fp_string in
  let shard = shard_of t fp in
  Mutex.lock shard.mutex;
  let decide prior update =
    let s1 = prior land stmt_mask and s2 = prior lsr stmt_bits in
    let covers s = stmt_budget s >= budget && (stmt_ctx s = 0 || stmt_ctx s = ctx) in
    if covers s1 || covers s2 then Prune
    else begin
      (* A slot that covers our budget necessarily holds a conflicting
         nonzero context (a covering one would have pruned): expand only
         its sleep difference.  Either way the expansion makes our own
         statement true, so it joins the slot pair. *)
      let covered =
        if stmt_budget s1 >= budget then stmt_ctx s1
        else if stmt_budget s2 >= budget then stmt_ctx s2
        else 0
      in
      update (join s1 s2 (stmt ~budget ~ctx));
      Expand { filter = ctx; covered }
    end
  in
  let verdict =
    let i = find_slot shard.fps fp in
    if shard.fps.(i) = fp then
      decide shard.meta.(i) (fun m -> shard.meta.(i) <- m)
    else
      match run_find shard fp with
      | -1 ->
          if not (admit t) then Budget
          else begin
            insert shard fp (stmt ~budget ~ctx);
            shard.admitted <- shard.admitted + 1;
            Expand { filter = ctx; covered = 0 }
          end
      | prior ->
          (* Re-inserting resident shadows the run copy until the next
             merge; admission counters are untouched — the state was
             counted when first admitted. *)
          decide prior (fun m -> insert shard fp m)
  in
  if t.spill_at > 0 && shard.resident >= t.spill_at then flush shard;
  Mutex.unlock shard.mutex;
  verdict

let distinct t = Atomic.get t.count

let length t =
  Array.fold_left (fun acc shard -> acc + shard.admitted) 0 t.shards

let spilled t =
  Array.fold_left (fun acc shard -> acc + shard.run_len) 0 t.shards

let resident t =
  Array.fold_left (fun acc shard -> acc + shard.resident) 0 t.shards

let close t =
  Array.iter
    (fun shard ->
      match shard.run_fd with
      | Some fd ->
          Unix.close fd;
          shard.run_fd <- None;
          shard.run_len <- 0
      | None -> ())
    t.shards
