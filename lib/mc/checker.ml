(* The policy-level entry point: run the explorer for one policy, and if
   it finds a counterexample, replay it through the chaos harness to
   confirm the two agree — the checker's traces are Schedule steps
   precisely so this replay is verbatim. *)

module Cluster = Dynvote_msgsim.Cluster
module Harness = Dynvote_chaos.Harness
module Oracle = Dynvote_chaos.Oracle
module Schedule = Dynvote_chaos.Schedule
module Fault_plan = Dynvote_chaos.Fault_plan

(* The paper's §3 four-copy example: A, B on one carrier-sense segment,
   C and D each alone on their own. *)
let paper_segment_of site = match site with 0 | 1 -> 0 | 2 -> 1 | _ -> 2

let make_config ?(flavor = Decision.tdv_flavor) ?(delivery = Cluster.Quiet)
    ~universe ~segment_of () =
  {
    Harness.flavor;
    universe;
    segment_of;
    delivery;
    initial_content = "g0";
    crash_point = `After_decide;
    expose_commits = false;
  }

let paper_config ?flavor () =
  make_config ?flavor ~universe:(Site_set.of_list [ 0; 1; 2; 3 ])
    ~segment_of:paper_segment_of ()

type verdict =
  | Clean of { closed : bool }
  | Counterexample of {
      schedule : Schedule.t;
      violations : Oracle.violation list;
      replay : Oracle.violation list;
      replay_matches : bool;
    }
  | Inconclusive

type report = {
  policy : Harness.policy;
  depth : int;
  result : Explorer.result;
  verdict : verdict;
}

let check ?space ?symmetry ?por ?max_states ?progress ?jobs ?steal
    ~(policy : Harness.policy) ~depth config =
  let config : Harness.config = { config with Harness.flavor = policy.Harness.flavor } in
  let result =
    Explorer.search ?space ?symmetry ?por ?max_states ?progress ?jobs ?steal ~config
      ~depth ()
  in
  let verdict =
    match result.Explorer.outcome with
    | Explorer.Safe { closed } -> Clean { closed }
    | Explorer.Out_of_budget -> Inconclusive
    | Explorer.Violation { trace; violations } ->
        (* The explorer searched under silent faults, so the replay gets
           the same: an identical step sequence through the identical
           transition code must surface the identical violations. *)
        let schedule = { Schedule.steps = trace; faults = Fault_plan.silent } in
        let replayed, _stats = Harness.run config schedule in
        let replay = replayed.Harness.violations in
        Counterexample { schedule; violations; replay; replay_matches = replay = violations }
  in
  { policy; depth; result; verdict }

let verdict_ok report =
  match report.verdict with
  | Clean _ | Inconclusive -> true
  | Counterexample { replay_matches; _ } ->
      replay_matches && not report.policy.Harness.expect_safe
