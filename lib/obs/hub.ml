type t = { metrics : Metrics.t; trace : Trace.t }

let create ?trace_capacity () =
  { metrics = Metrics.create (); trace = Trace.create ?capacity:trace_capacity () }

let noop = { metrics = Metrics.noop; trace = Trace.noop }
let live t = Metrics.live t.metrics
let event t ev = Trace.record t.trace ev
