(* The registry hands out instruments, not names: call sites resolve
   "live.op.granted" once and then update an Atomic (counters, gauges) or
   a mutex-guarded bucket array (histograms).  The noop registry hands
   out [None] instruments so disabled instrumentation costs one branch
   per update and allocates nothing. *)

module Welford = Dynvote_stats.Welford

(* --- histogram geometry ------------------------------------------- *)

(* 16 geometric buckets per decade over [1e-6, 1e3] s: fine enough that
   a bucket-midpoint quantile is within ~15% of the exact one, coarse
   enough that the whole array is 146 ints. *)
let buckets_per_decade = 16
let lo_bound = 1e-6
let decades = 9
let n_buckets = decades * buckets_per_decade
let hi_bound = lo_bound *. (10. ** float_of_int decades)

(* Regular buckets are 1..n_buckets; 0 is underflow, n_buckets+1 overflow. *)
let bucket_of v =
  if not (v > lo_bound) then 0
  else if v >= hi_bound then n_buckets + 1
  else
    let i =
      int_of_float
        (Float.log10 (v /. lo_bound) *. float_of_int buckets_per_decade)
    in
    1 + max 0 (min (n_buckets - 1) i)

(* Bounds of regular bucket [i] (1-based); under/overflow get the
   conventional open ends. *)
let bucket_bounds i =
  let edge k =
    lo_bound *. (10. ** (float_of_int k /. float_of_int buckets_per_decade))
  in
  if i = 0 then (0.0, lo_bound)
  else if i > n_buckets then (hi_bound, infinity)
  else (edge (i - 1), edge i)

(* --- instruments --------------------------------------------------- *)

type counter = int Atomic.t option
type gauge = float Atomic.t option

type histo = {
  h_mutex : Mutex.t;
  buckets : int array; (* n_buckets + 2 *)
  welford : Welford.t;
}

type histogram = histo option

type t = {
  is_live : bool;
  mutex : Mutex.t;
  counters : (string, int Atomic.t) Hashtbl.t;
  gauges : (string, float Atomic.t) Hashtbl.t;
  histos : (string, histo) Hashtbl.t;
}

let make is_live =
  {
    is_live;
    mutex = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    histos = Hashtbl.create 8;
  }

let create () = make true
let noop = make false
let live t = t.is_live

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find_or_add t table name build =
  locked t (fun () ->
      match Hashtbl.find_opt table name with
      | Some v -> v
      | None ->
          let v = build () in
          Hashtbl.add table name v;
          v)

let counter t name =
  if not t.is_live then None
  else Some (find_or_add t t.counters name (fun () -> Atomic.make 0))

let incr = function
  | None -> ()
  | Some a -> ignore (Atomic.fetch_and_add a 1 : int)

let add c n =
  match c with
  | None -> ()
  | Some a -> ignore (Atomic.fetch_and_add a n : int)

let counter_value = function None -> 0 | Some a -> Atomic.get a

let gauge t name =
  if not t.is_live then None
  else Some (find_or_add t t.gauges name (fun () -> Atomic.make 0.0))

let set_gauge g v = match g with None -> () | Some a -> Atomic.set a v
let gauge_value = function None -> 0.0 | Some a -> Atomic.get a

let histogram t name =
  if not t.is_live then None
  else
    Some
      (find_or_add t t.histos name (fun () ->
           {
             h_mutex = Mutex.create ();
             buckets = Array.make (n_buckets + 2) 0;
             welford = Welford.create ();
           }))

let h_locked h f =
  Mutex.lock h.h_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock h.h_mutex) f

let observe h v =
  match h with
  | None -> ()
  | Some h ->
      h_locked h (fun () ->
          let i = bucket_of v in
          h.buckets.(i) <- h.buckets.(i) + 1;
          Welford.add h.welford v)

let histogram_count = function
  | None -> 0
  | Some h -> h_locked h (fun () -> Welford.count h.welford)

let histogram_mean = function
  | None -> nan
  | Some h -> h_locked h (fun () -> Welford.mean h.welford)

let histogram_max = function
  | None -> nan
  | Some h -> h_locked h (fun () -> Welford.max_value h.welford)

(* The bucket holding the [ceil (q * count)]-th smallest sample. *)
let quantile_bucket_locked h q =
  let total = Welford.count h.welford in
  if total = 0 then None
  else
    let target = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let rec scan i seen =
      if i > n_buckets + 1 then Some (n_buckets + 1)
      else
        let seen = seen + h.buckets.(i) in
        if seen >= target then Some i else scan (i + 1) seen
    in
    scan 0 0

let quantile h q =
  match h with
  | None -> nan
  | Some h ->
      h_locked h (fun () ->
          match quantile_bucket_locked h q with
          | None -> nan
          | Some i when i > n_buckets -> Welford.max_value h.welford
          | Some i ->
              let lo, hi = bucket_bounds i in
              if i = 0 then lo_bound /. 2.0 else sqrt (lo *. hi))

let quantile_bounds h q =
  match h with
  | None -> (nan, nan)
  | Some h ->
      h_locked h (fun () ->
          match quantile_bucket_locked h q with
          | None -> (nan, nan)
          | Some i -> bucket_bounds i)

(* --- snapshots ------------------------------------------------------ *)

type histogram_summary = {
  h_count : int;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot t =
  let counters =
    locked t (fun () ->
        Hashtbl.fold (fun k v acc -> (k, Atomic.get v) :: acc) t.counters [])
  in
  let gauges =
    locked t (fun () ->
        Hashtbl.fold (fun k v acc -> (k, Atomic.get v) :: acc) t.gauges [])
  in
  let histo_list =
    locked t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.histos [])
  in
  let histograms =
    List.map
      (fun (name, h) ->
        let hh = Some h in
        ( name,
          {
            h_count = histogram_count hh;
            h_mean = histogram_mean hh;
            h_p50 = quantile hh 0.50;
            h_p95 = quantile hh 0.95;
            h_p99 = quantile hh 0.99;
            h_max = histogram_max hh;
          } ))
      histo_list
  in
  {
    counters = List.sort by_name counters;
    gauges = List.sort by_name gauges;
    histograms = List.sort by_name histograms;
  }

let pp_seconds ppf v =
  if Float.is_nan v then Fmt.string ppf "-"
  else if v < 1e-3 then Fmt.pf ppf "%.1f us" (v *. 1e6)
  else if v < 1.0 then Fmt.pf ppf "%.2f ms" (v *. 1e3)
  else Fmt.pf ppf "%.3f s" v

let pp_snapshot ppf s =
  Fmt.pf ppf "@[<v>";
  List.iter (fun (name, v) -> Fmt.pf ppf "%-36s %d@," name v) s.counters;
  List.iter (fun (name, v) -> Fmt.pf ppf "%-36s %g@," name v) s.gauges;
  List.iter
    (fun (name, h) ->
      Fmt.pf ppf "%-36s n=%d mean %a  p50 %a  p95 %a  p99 %a  max %a@," name
        h.h_count pp_seconds h.h_mean pp_seconds h.h_p50 pp_seconds h.h_p95
        pp_seconds h.h_p99 pp_seconds h.h_max)
    s.histograms;
  Fmt.pf ppf "@]"

(* Hand-rolled JSON: names are plain identifiers but escape defensively;
   JSON has no NaN/inf, those become null. *)
let json_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let json_float b v =
  if Float.is_finite v then Buffer.add_string b (Printf.sprintf "%.9g" v)
  else Buffer.add_string b "null"

let json_fields b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, emit) ->
      if i > 0 then Buffer.add_char b ',';
      json_string b k;
      Buffer.add_char b ':';
      emit b)
    fields;
  Buffer.add_char b '}'

let snapshot_to_json s =
  let b = Buffer.create 1024 in
  json_fields b
    [
      ( "counters",
        fun b ->
          json_fields b
            (List.map
               (fun (k, v) ->
                 (k, fun b -> Buffer.add_string b (string_of_int v)))
               s.counters) );
      ( "gauges",
        fun b ->
          json_fields b
            (List.map (fun (k, v) -> (k, fun b -> json_float b v)) s.gauges) );
      ( "histograms",
        fun b ->
          json_fields b
            (List.map
               (fun (k, h) ->
                 ( k,
                   fun b ->
                     json_fields b
                       [
                         ( "count",
                           fun b ->
                             Buffer.add_string b (string_of_int h.h_count) );
                         ("mean", fun b -> json_float b h.h_mean);
                         ("p50", fun b -> json_float b h.h_p50);
                         ("p95", fun b -> json_float b h.h_p95);
                         ("p99", fun b -> json_float b h.h_p99);
                         ("max", fun b -> json_float b h.h_max);
                       ] ))
               s.histograms) );
    ];
  Buffer.contents b
