(** The observability hub a component is instrumented against: one
    metrics registry plus one trace ring, threaded together so a caller
    passes a single value.

    {!noop} is the compiled-in off switch: all updates through it reduce
    to a branch, which is what the OBS bench section compares against to
    price the instrumentation. *)

type t = { metrics : Metrics.t; trace : Trace.t }

val create : ?trace_capacity:int -> unit -> t
val noop : t
val live : t -> bool

val event : t -> Trace.event -> unit
(** [Trace.record t.trace]. *)
