/* Monotonic clock for the live service.  CLOCK_MONOTONIC never steps
   when NTP disciplines the wall clock, which is exactly the property
   lease and deadline arithmetic needs.  A platform without it reports
   -1.0 and the OCaml side falls back to a clamped wall clock. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#ifdef _WIN32
CAMLprim value dynvote_obs_monotonic_now(value unit)
{
  (void) unit;
  return caml_copy_double(-1.0);
}
#else
#include <time.h>

CAMLprim value dynvote_obs_monotonic_now(value unit)
{
  (void) unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double) ts.tv_sec + (double) ts.tv_nsec * 1e-9);
#endif
  return caml_copy_double(-1.0);
}
#endif
