type event =
  | Lock_round_start of { site : int; op : int }
  | Lock_denied of { site : int; op : int }
  | Gather of { site : int; round : int; reachable : int; fresh : int }
  | Data_fetch of { site : int; source : int; ok : bool }
  | Commit_wave of { site : int; op_no : int; recipients : int }
  | Partition of { groups : string }
  | Heal
  | Crash of { site : int }
  | Restart of { site : int }
  | Frame_sent of { src : int; dst : int; kind : string }
  | Frame_recv of { src : int; dst : int; kind : string }
  | Frame_rejected of { src : int; reason : string }
  | Frame_dropped of { src : int; dst : int; reason : string }
  | Storage_fault of { site : int; op : string; path : string }
  | Degraded of { site : int; reason : string }
  | Round_start of { site : int; op : int; in_flight : int }
  | Round_end of { site : int; op : int; in_flight : int }
  | Note of string

type t = {
  is_live : bool;
  capacity : int;
  mutex : Mutex.t;
  ring : (float * event) array; (* slot i holds event number i mod capacity *)
  mutable count : int; (* total recorded *)
  t0 : float;
}

let dummy = (0.0, Note "")

let create ?(capacity = 2048) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    is_live = true;
    capacity;
    mutex = Mutex.create ();
    ring = Array.make capacity dummy;
    count = 0;
    t0 = Clock.now ();
  }

let noop =
  {
    is_live = false;
    capacity = 1;
    mutex = Mutex.create ();
    ring = [| dummy |];
    count = 0;
    t0 = 0.0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t event =
  if t.is_live then begin
    let at = Clock.now () -. t.t0 in
    locked t (fun () ->
        t.ring.(t.count mod t.capacity) <- (at, event);
        t.count <- t.count + 1)
  end

let recorded t = locked t (fun () -> t.count)
let dropped t = locked t (fun () -> max 0 (t.count - t.capacity))

let recent ?n t =
  locked t (fun () ->
      let retained = min t.count t.capacity in
      let take = match n with None -> retained | Some n -> min n retained in
      List.init take (fun i ->
          t.ring.((t.count - take + i) mod t.capacity)))

let pp_event ppf = function
  | Lock_round_start { site; op } ->
      Fmt.pf ppf "lock-round site=%d op=%#x" site op
  | Lock_denied { site; op } -> Fmt.pf ppf "lock-denied site=%d op=%#x" site op
  | Gather { site; round; reachable; fresh } ->
      Fmt.pf ppf "gather site=%d round=%d reachable=%d fresh=%d" site round
        reachable fresh
  | Data_fetch { site; source; ok } ->
      Fmt.pf ppf "data-fetch site=%d source=%d %s" site source
        (if ok then "ok" else "failed")
  | Commit_wave { site; op_no; recipients } ->
      Fmt.pf ppf "commit-wave site=%d op_no=%d recipients=%d" site op_no
        recipients
  | Partition { groups } -> Fmt.pf ppf "partition %s" groups
  | Heal -> Fmt.string ppf "heal"
  | Crash { site } -> Fmt.pf ppf "crash site=%d" site
  | Restart { site } -> Fmt.pf ppf "restart site=%d" site
  | Frame_sent { src; dst; kind } ->
      Fmt.pf ppf "frame-sent %d->%d %s" src dst kind
  | Frame_recv { src; dst; kind } ->
      Fmt.pf ppf "frame-recv %d->%d %s" src dst kind
  | Frame_rejected { src; reason } ->
      Fmt.pf ppf "frame-rejected src=%d %s" src reason
  | Frame_dropped { src; dst; reason } ->
      Fmt.pf ppf "frame-dropped %d->%d %s" src dst reason
  | Storage_fault { site; op; path } ->
      Fmt.pf ppf "storage-fault site=%d op=%s path=%s" site op
        (Filename.basename path)
  | Degraded { site; reason } -> Fmt.pf ppf "degraded site=%d %s" site reason
  | Round_start { site; op; in_flight } ->
      Fmt.pf ppf "round-start site=%d op=%#x in-flight=%d" site op in_flight
  | Round_end { site; op; in_flight } ->
      Fmt.pf ppf "round-end site=%d op=%#x in-flight=%d" site op in_flight
  | Note note -> Fmt.pf ppf "note %s" note

let pp_entry ppf (at, event) = Fmt.pf ppf "+%.6fs %a" at pp_event event
