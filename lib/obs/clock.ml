(* Deadline/lease clock: monotonic where the platform provides one,
   otherwise the wall clock clamped so it can never run backwards (a
   stalled clock makes a deadline late; a reversed one corrupts lease
   arithmetic). *)

type t = unit -> float

external monotonic_now_stub : unit -> float = "dynvote_obs_monotonic_now"

let monotonic_available = monotonic_now_stub () >= 0.0

let wall = Unix.gettimeofday

(* Clamped fallback: concurrent readers may each publish a fresh high
   water mark; compare-and-set keeps the mark itself monotone. *)
let clamped_wall () =
  let last = Atomic.make 0.0 in
  fun () ->
    let t = wall () in
    let prev = Atomic.get last in
    if t >= prev then begin
      ignore (Atomic.compare_and_set last prev t : bool);
      t
    end
    else prev

let now = if monotonic_available then monotonic_now_stub else clamped_wall ()

module Manual = struct
  type m = { mutable at : float; mutex : Mutex.t }

  let create ?(at = 0.0) () = { at; mutex = Mutex.create () }

  let with_lock m f =
    Mutex.lock m.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock m.mutex) f

  let read m = with_lock m (fun () -> m.at)
  let set m v = with_lock m (fun () -> m.at <- v)
  let advance m d = with_lock m (fun () -> m.at <- m.at +. d)
  let clock m () = read m
end
