(** Structured trace: a bounded ring of typed protocol events.

    One event vocabulary covers both networks — the msgsim/chaos
    simulated transport and the live socket fabric — so a trace dump
    reads the same whichever is underneath.  The ring never blocks and
    never grows: when full, the oldest events are overwritten and
    counted as {!dropped}. *)

type event =
  | Lock_round_start of { site : int; op : int }
  | Lock_denied of { site : int; op : int }
      (** a lock round lost to a rival (local refusal or a peer's) *)
  | Gather of { site : int; round : int; reachable : int; fresh : int }
      (** a completed state gather: how many sites answered, how many
          claimed freshness (the coordinator counts itself) *)
  | Data_fetch of { site : int; source : int; ok : bool }
      (** a verified data fetch attempt against [source] *)
  | Commit_wave of { site : int; op_no : int; recipients : int }
  | Partition of { groups : string }
      (** fault injection: the group layout, rendered by the caller *)
  | Heal
  | Crash of { site : int }
  | Restart of { site : int }
  | Frame_sent of { src : int; dst : int; kind : string }
      (** the fabric delivered a frame (live: routed by the switchboard;
          sim: accepted by the transport) *)
  | Frame_recv of { src : int; dst : int; kind : string }
      (** the fabric took a frame off an endpoint's connection *)
  | Frame_rejected of { src : int; reason : string }
      (** an unframeable or checksum-failing byte stream *)
  | Frame_dropped of { src : int; dst : int; reason : string }
      (** eaten by a partition or addressed to a dead endpoint *)
  | Storage_fault of { site : int; op : string; path : string }
      (** a stable-storage operation failed (only the path's basename is
          rendered — site directories carry no information) *)
  | Degraded of { site : int; reason : string }
      (** the site fenced itself read-only after a storage failure *)
  | Round_start of { site : int; op : int; in_flight : int }
      (** a coordinator admitted a client operation; [in_flight] counts
          rounds concurrently open at that site, this one included — a
          pipelined coordinator shows values above 1 *)
  | Round_end of { site : int; op : int; in_flight : int }
      (** the operation replied to its client ([in_flight] counted
          before this round leaves) *)
  | Note of string

type t

val create : ?capacity:int -> unit -> t
(** A live ring holding the last [capacity] (default 2048) events. *)

val noop : t
(** Records nothing; {!recent} is always empty. *)

val record : t -> event -> unit
(** Thread-safe, non-blocking; timestamps the event with the monotonic
    clock (seconds since the ring was created). *)

val recorded : t -> int
(** Total events offered to the ring (including overwritten ones). *)

val dropped : t -> int
(** Events lost to overwriting. *)

val recent : ?n:int -> t -> (float * event) list
(** The newest [n] (default: all retained) events, oldest first. *)

val pp_event : Format.formatter -> event -> unit

val pp_entry : Format.formatter -> float * event -> unit
(** [+12.345678s event] — the trace-dump line format. *)
