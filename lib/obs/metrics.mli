(** Dependency-free metrics registry: named counters, gauges, and
    log-scaled latency histograms.

    A registry is either {e live} or the shared {!noop}; instruments
    handed out by the noop registry swallow every update, so
    instrumented code needs no [if enabled] branching and the disabled
    cost is one branch per update.  All instruments are safe to update
    from any thread. *)

type t

val create : unit -> t
(** A fresh live registry. *)

val noop : t
(** The registry that records nothing.  All instruments it returns are
    inert. *)

val live : t -> bool

(** {2 Counters} — monotone event counts (lock-free). *)

type counter

val counter : t -> string -> counter
(** Find or create the counter named [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {2 Gauges} — last-written instantaneous values. *)

type gauge

val gauge : t -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms}

    Log-scaled: 16 geometric buckets per decade across [1e-6, 1e3]
    (seconds), plus underflow and overflow buckets, with an embedded
    {!Dynvote_stats.Welford} accumulator for the exact mean and extrema.
    A quantile is resolved to its bucket and reported as the bucket's
    geometric midpoint, so it is exact to within one bucket width
    (≈ 15% relative). *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int

val histogram_mean : histogram -> float
(** Exact (Welford) mean; [nan] when empty. *)

val histogram_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [(0, 1]]: the geometric midpoint of the
    bucket holding the [ceil (q * count)]-th smallest sample ([nan] when
    empty).  The overflow bucket reports the exact maximum. *)

val quantile_bounds : histogram -> float -> float * float
(** The [(lo, hi)] bounds of the bucket {!quantile} resolved to: the
    exact sorted-sample quantile is guaranteed to lie in [[lo, hi]].
    [(nan, nan)] when empty. *)

(** {2 Snapshots} *)

type histogram_summary = {
  h_count : int;
  h_mean : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
  h_max : float;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

val snapshot : t -> snapshot

val pp_snapshot : Format.formatter -> snapshot -> unit
(** Human-readable table. *)

val snapshot_to_json : snapshot -> string
(** Machine-readable snapshot; non-finite floats become [null]. *)
