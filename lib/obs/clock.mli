(** Clock discipline for everything that computes deadlines, leases and
    latency windows.

    [Unix.gettimeofday] follows the wall clock: an NTP step or slew moves
    it, forwards or backwards, by arbitrary amounts.  A lock lease or a
    gather deadline computed from it can therefore expire prematurely
    (clock jumps forward) or never (clock jumps backward), and a load
    generator's latency samples can come out negative.  Every deadline in
    the live service goes through this module instead: a monotonic clock
    when the platform has one, a backward-clamped wall clock otherwise,
    and a fully injectable manual clock for tests. *)

type t = unit -> float
(** A clock: seconds since an arbitrary epoch.  Only differences are
    meaningful. *)

val monotonic_available : bool
(** Whether [now] is backed by the platform monotonic clock
    ([clock_gettime(CLOCK_MONOTONIC)]); when [false], [now] is the wall
    clock clamped to never run backwards. *)

val now : t
(** The process-wide monotonic clock.  Guaranteed non-decreasing even
    across wall-clock steps. *)

val wall : t
(** [Unix.gettimeofday], for timestamps meant to be human-readable.
    Never use it for deadlines or durations. *)

(** A hand-cranked clock for tests: deterministic, steppable in both
    directions, so lease logic can be exercised against exactly the
    wall-clock pathologies the monotonic clock rules out. *)
module Manual : sig
  type m

  val create : ?at:float -> unit -> m
  (** A manual clock reading [at] (default 0). *)

  val read : m -> float
  val set : m -> float -> unit
  (** Step the clock to an absolute reading — backwards is allowed. *)

  val advance : m -> float -> unit
  (** Step the clock forward (or backward, with a negative delta). *)

  val clock : m -> t
  (** The clock function to inject (e.g. into [Node.config]). *)
end
