(* Xoshiro256++ (Blackman & Vigna 2019): the workhorse generator for the
   simulation.  Seeded from splitmix64 as the authors recommend, because
   xoshiro must not be seeded with a state that is all zeros or otherwise
   low-entropy. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let of_splitmix sm =
  let s0 = Splitmix64.next_int64 sm in
  let s1 = Splitmix64.next_int64 sm in
  let s2 = Splitmix64.next_int64 sm in
  let s3 = Splitmix64.next_int64 sm in
  { s0; s1; s2; s3 }

let create seed = of_splitmix (Splitmix64.create seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let next_int64 t =
  let result = Int64.add (rotl (Int64.add t.s0 t.s3) 23) t.s0 in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let next_bits53 t =
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 11)

let next_float t = float_of_int (next_bits53 t) *. 0x1p-53

let next_int t bound =
  if bound <= 0 then invalid_arg "Xoshiro256.next_int: bound must be positive";
  let mask =
    let rec go m = if m >= bound - 1 then m else go ((m lsl 1) lor 1) in
    go 1
  in
  let rec draw () =
    let candidate = next_bits53 t land mask in
    if candidate < bound then candidate else draw ()
  in
  draw ()

let next_bool t = Int64.logand (next_int64 t) 1L = 1L

(* The jump function advances the generator by 2^128 steps, giving
   non-overlapping subsequences for parallel streams. *)
let jump_table = [| 0x180EC6D33CFD0ABAL; 0xD5A61266F0C9392CL; 0xA9582618E03FC9AAL; 0x39ABDC4529B1661CL |]

let jump t =
  let s0 = ref 0L and s1 = ref 0L and s2 = ref 0L and s3 = ref 0L in
  Array.iter
    (fun jump_word ->
      for bit = 0 to 63 do
        if Int64.logand jump_word (Int64.shift_left 1L bit) <> 0L then begin
          s0 := Int64.logxor !s0 t.s0;
          s1 := Int64.logxor !s1 t.s1;
          s2 := Int64.logxor !s2 t.s2;
          s3 := Int64.logxor !s3 t.s3
        end;
        ignore (next_int64 t)
      done)
    jump_table;
  t.s0 <- !s0;
  t.s1 <- !s1;
  t.s2 <- !s2;
  t.s3 <- !s3

let split t =
  let child = copy t in
  jump t;
  child
