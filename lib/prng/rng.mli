(** Random variates for the simulation.

    A thin front-end over {!Xoshiro256} adding the distributions the failure
    model needs.  Every stochastic draw in the project goes through this
    module. *)

type t

val create : ?seed:int64 -> unit -> t
val of_seed : int -> t
val copy : t -> t

val split : t -> t
(** Independent child stream (jump-based, non-overlapping). *)

val streams : t -> int -> t array
(** [streams t n] is [n] independent child streams. *)

val float : t -> float
(** Uniform in [0, 1). *)

val int : t -> int -> int
(** Uniform in [0, bound). *)

val int64 : t -> int64
val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [lo, hi). @raise Invalid_argument if [hi < lo]. *)

val exponential : t -> mean:float -> float
(** Exponential variate with the given mean (inverse-CDF method). *)

val shifted_exponential : t -> constant:float -> mean:float -> float
(** [constant + Exp(mean)] — the paper's hardware-repair-time model.  A zero
    [mean] yields exactly [constant]. *)

val bernoulli : t -> p:float -> bool

val pick : t -> 'a array -> 'a
(** Uniformly random element. @raise Invalid_argument on empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)
