(** Splitmix64 pseudo-random number generator.

    A fast, high-quality, splittable 64-bit generator (Steele, Lea & Flood,
    OOPSLA 2014).  Sequences are fully determined by the seed and identical
    on every platform, which the simulator relies on for reproducible
    experiments. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state : t -> int64
(** Current internal state (for checkpointing). *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent
    generator.  Used to give every site its own failure stream. *)

val next_bits53 : t -> int
(** 53 uniformly random bits as a non-negative [int]. *)

val next_float : t -> float
(** Uniform float in [0, 1). *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [0, bound); rejection-sampled, so free
    of modulo bias.  @raise Invalid_argument if [bound <= 0]. *)

val next_bool : t -> bool
(** Fair coin flip. *)
