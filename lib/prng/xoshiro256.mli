(** Xoshiro256++ pseudo-random number generator (Blackman & Vigna 2019).

    Fast, 256-bit state, period [2^256 - 1].  The main generator used by the
    discrete-event simulation.  Parallel streams are obtained with
    {!split}, which uses the official jump polynomial to guarantee
    non-overlapping subsequences of length [2^128]. *)

type t

val create : int64 -> t
(** [create seed] seeds via splitmix64, as recommended by the authors. *)

val of_splitmix : Splitmix64.t -> t
(** Seed from an existing splitmix64 stream (advances it by 4 outputs). *)

val copy : t -> t

val next_int64 : t -> int64
val next_bits53 : t -> int
val next_float : t -> float
(** Uniform in [0, 1). *)

val next_int : t -> int -> int
(** Uniform in [0, bound), bias-free. @raise Invalid_argument on [bound <= 0]. *)

val next_bool : t -> bool

val jump : t -> unit
(** Advance by [2^128] steps in place. *)

val split : t -> t
(** [split t] returns a copy of the current state and jumps [t] forward by
    [2^128] steps; the result and [t] generate disjoint subsequences. *)
