(* Uniform front-end over the concrete generators plus the random variates
   needed by the failure model: exponential, shifted exponential, Bernoulli,
   uniform ranges and small helpers.  All simulation code draws through this
   module so the underlying generator can be swapped in one place. *)

type t = Xoshiro256.t

let create ?(seed = 0x5EEDL) () = Xoshiro256.create seed

let of_seed seed = Xoshiro256.create (Int64.of_int seed)

let copy = Xoshiro256.copy

let split = Xoshiro256.split

let float t = Xoshiro256.next_float t

let int t bound = Xoshiro256.next_int t bound

let int64 t = Xoshiro256.next_int64 t

let bool t = Xoshiro256.next_bool t

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. ((hi -. lo) *. float t)

(* Inverse-CDF sampling.  [1.0 -. float t] lies in (0, 1], so the log is
   always finite. *)
let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  -.mean *. log (1.0 -. float t)

(* Repair times in the paper are "a constant term plus an exponentially
   distributed term". *)
let shifted_exponential t ~constant ~mean =
  if constant < 0.0 then invalid_arg "Rng.shifted_exponential: negative constant";
  if mean = 0.0 then constant else constant +. exponential t ~mean

let bernoulli t ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Rng.bernoulli: p outside [0,1]";
  float t < p

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Derive [n] independent child streams, e.g. one per site. *)
let streams t n = Array.init n (fun _ -> split t)
