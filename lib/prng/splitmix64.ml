(* Splitmix64: a fast, splittable 64-bit PRNG (Steele, Lea & Flood 2014).
   Used both directly and to seed {!Xoshiro256}.  All arithmetic is done on
   OCaml's native [int64] so sequences are identical on every platform. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let state t = t.state

(* One step of the splitmix64 output function. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Derive an independent generator; the two streams are statistically
   uncorrelated because the derived seed passes through the full mixer. *)
let split t =
  let seed = next_int64 t in
  create seed

let next_bits53 t =
  Int64.to_int (Int64.shift_right_logical (next_int64 t) 11)

(* Uniform float in [0, 1).  53 bits of mantissa. *)
let next_float t = float_of_int (next_bits53 t) *. 0x1p-53

(* Uniform int in [0, bound).  Rejection sampling avoids modulo bias. *)
let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix64.next_int: bound must be positive";
  let mask =
    let rec go m = if m >= bound - 1 then m else go ((m lsl 1) lor 1) in
    go 1
  in
  let rec draw () =
    let candidate = next_bits53 t land mask in
    if candidate < bound then candidate else draw ()
  in
  draw ()

let next_bool t = Int64.logand (next_int64 t) 1L = 1L
