(* ASCII line charts for terminals: several named series over a shared
   x-axis, optional logarithmic y-axis (unavailability spans orders of
   magnitude).  Good enough to show curve shapes — crossovers, minima —
   directly in CLI and benchmark output. *)

type series = {
  label : string;
  points : (float * float) list; (* (x, y), y > 0 required for log scale *)
}

type scale = Linear | Log10

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let nice_value v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 || (Float.abs v < 0.01 && v <> 0.0) then
    Printf.sprintf "%.1e" v
  else Printf.sprintf "%.3g" v

let render ?(width = 60) ?(height = 16) ?(scale = Linear) series =
  if width < 8 || height < 4 then invalid_arg "Ascii_plot.render: too small";
  if series = [] then invalid_arg "Ascii_plot.render: no series";
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then invalid_arg "Ascii_plot.render: no points";
  let transform y =
    match scale with
    | Linear -> y
    | Log10 ->
        if y <= 0.0 then invalid_arg "Ascii_plot.render: log scale needs positive y"
        else log10 y
  in
  let xs = List.map fst all_points and ys = List.map (fun (_, y) -> transform y) all_points in
  let x_min = List.fold_left Float.min infinity xs in
  let x_max = List.fold_left Float.max neg_infinity xs in
  let y_min = List.fold_left Float.min infinity ys in
  let y_max = List.fold_left Float.max neg_infinity ys in
  let x_span = if x_max > x_min then x_max -. x_min else 1.0 in
  let y_span = if y_max > y_min then y_max -. y_min else 1.0 in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun series_index s ->
      let glyph = glyphs.(series_index mod Array.length glyphs) in
      List.iter
        (fun (x, y) ->
          let y = transform y in
          let col =
            int_of_float (Float.round ((x -. x_min) /. x_span *. float_of_int (width - 1)))
          in
          let row =
            int_of_float
              (Float.round ((y_max -. y) /. y_span *. float_of_int (height - 1)))
          in
          if row >= 0 && row < height && col >= 0 && col < width then
            (* First-drawn series keeps contested cells. *)
            if grid.(row).(col) = ' ' then grid.(row).(col) <- glyph)
        s.points)
    series;
  let buffer = Buffer.create ((width + 16) * (height + 4)) in
  let y_label row =
    let y = y_max -. (float_of_int row /. float_of_int (height - 1) *. y_span) in
    let y = match scale with Linear -> y | Log10 -> 10.0 ** y in
    nice_value y
  in
  Array.iteri
    (fun row line ->
      let label =
        if row = 0 || row = height - 1 || row = height / 2 then
          Printf.sprintf "%10s |" (y_label row)
        else Printf.sprintf "%10s |" ""
      in
      Buffer.add_string buffer label;
      Buffer.add_string buffer (String.init width (fun c -> line.(c)));
      Buffer.add_char buffer '\n')
    grid;
  Buffer.add_string buffer (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
  Buffer.add_string buffer
    (Printf.sprintf "%10s  %-*s%s\n" "" (width - String.length (nice_value x_max))
       (nice_value x_min) (nice_value x_max));
  Buffer.add_string buffer "  legend: ";
  List.iteri
    (fun i s ->
      Buffer.add_string buffer
        (Printf.sprintf "%c = %s  " glyphs.(i mod Array.length glyphs) s.label))
    series;
  Buffer.add_char buffer '\n';
  Buffer.contents buffer

let print ?width ?height ?scale series =
  print_string (render ?width ?height ?scale series)
