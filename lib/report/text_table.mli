(** Aligned plain-text and markdown tables. *)

type align = Left | Right

type t

val create : ?aligns:align list -> header:string list -> unit -> t
(** Default alignment: all right. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument on a wrong cell count. *)

val rows : t -> string list list
val n_rows : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val print : t -> unit

val pp_markdown : Format.formatter -> t -> unit

val cell_float : ?decimals:int -> float -> string
(** ["-"] for NaN, matching the paper's Table 3. *)

val cell_sci : float -> string
val cell_int : int -> string
