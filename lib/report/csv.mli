(** Minimal CSV output (RFC 4180 quoting). *)

val to_string : header:string list -> string list list -> string

val of_table : Text_table.t -> string
(** Rows of an existing table, without its header. *)

val write : path:string -> header:string list -> string list list -> unit
(** Write a CSV file; closes the channel even on exceptions. *)
