(* Minimal CSV writer (RFC 4180 quoting) so study results can feed
   external plotting tools. *)

let needs_quoting cell =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) cell

let quote cell =
  if needs_quoting cell then begin
    let buffer = Buffer.create (String.length cell + 2) in
    Buffer.add_char buffer '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buffer "\"\"" else Buffer.add_char buffer c)
      cell;
    Buffer.add_char buffer '"';
    Buffer.contents buffer
  end
  else cell

let row_to_string cells = String.concat "," (List.map quote cells)

let to_string ~header rows =
  String.concat "\r\n" (row_to_string header :: List.map row_to_string rows) ^ "\r\n"

let of_table table =
  let rows = Text_table.rows table in
  match rows with
  | [] -> ""
  | _ ->
      (* Recover the header from the table type is not possible; callers
         should use [to_string] directly.  Kept for symmetry: emits rows
         only. *)
      String.concat "\r\n" (List.map row_to_string rows) ^ "\r\n"

let write ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~header rows))
