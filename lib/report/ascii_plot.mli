(** ASCII line charts: multiple named series, linear or log10 y-axis. *)

type series = {
  label : string;
  points : (float * float) list;
}

type scale = Linear | Log10

val render : ?width:int -> ?height:int -> ?scale:scale -> series list -> string
(** @raise Invalid_argument on an empty plot, a too-small canvas, or
    non-positive values under [Log10]. *)

val print : ?width:int -> ?height:int -> ?scale:scale -> series list -> unit
