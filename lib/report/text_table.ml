(* Aligned plain-text tables for benchmark and CLI output, in the style of
   the paper's Tables 1-3. *)

type align = Left | Right

type t = {
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
  mutable n_rows : int;
}

let create ?aligns ~header () =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length header then
          invalid_arg "Text_table.create: aligns/header size mismatch";
        a
    | None -> List.map (fun _ -> Right) header
  in
  { header; aligns; rows = []; n_rows = 0 }

let add_row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Text_table.add_row: wrong number of cells";
  t.rows <- cells :: t.rows;
  t.n_rows <- t.n_rows + 1

let rows t = List.rev t.rows

let n_rows t = t.n_rows

let widths t =
  let update acc cells = List.map2 (fun w c -> max w (String.length c)) acc cells in
  List.fold_left update (List.map String.length t.header) (rows t)

let pad align width s =
  let gap = width - String.length s in
  if gap <= 0 then s
  else
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s

let render_row aligns ws cells =
  let padded = List.map2 (fun (a, w) c -> pad a w c) (List.combine aligns ws) cells in
  "| " ^ String.concat " | " padded ^ " |"

let separator ws = "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') ws) ^ "+"

let pp ppf t =
  let ws = widths t in
  Fmt.pf ppf "%s@." (separator ws);
  Fmt.pf ppf "%s@." (render_row (List.map (fun _ -> Left) t.aligns) ws t.header);
  Fmt.pf ppf "%s@." (separator ws);
  List.iter (fun row -> Fmt.pf ppf "%s@." (render_row t.aligns ws row)) (rows t);
  Fmt.pf ppf "%s@." (separator ws)

let to_string t = Fmt.str "%a" pp t

let print t = print_string (to_string t)

(* Markdown rendering for EXPERIMENTS.md. *)
let pp_markdown ppf t =
  let cell s = String.map (function '|' -> '/' | c -> c) s in
  Fmt.pf ppf "| %s |@." (String.concat " | " (List.map cell t.header));
  Fmt.pf ppf "|%s@."
    (String.concat ""
       (List.map (function Left -> ":---|" | Right -> "---:|") t.aligns));
  List.iter
    (fun row -> Fmt.pf ppf "| %s |@." (String.concat " | " (List.map cell row)))
    (rows t)

(* Formatting helpers shared by the table producers. *)
let cell_float ?(decimals = 6) v =
  if Float.is_nan v then "-" else Printf.sprintf "%.*f" decimals v

let cell_sci v = if Float.is_nan v then "-" else Printf.sprintf "%.2e" v

let cell_int = string_of_int
