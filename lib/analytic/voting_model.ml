(* Exact continuous-time Markov model of dynamic voting on a network that
   cannot partition (one segment), with exponential failure and repair
   times.

   With instantaneous quorum adjustment the pair

       (up-set, majority block)

   is a Markov state: every failure or repair is followed by a refresh
   that, when granted, resets the block to the whole up-set.  Sites outside
   the block are stale and can never assemble a quorum on their own (the
   standard mutual-exclusion argument: at most half of the previous quorum
   can fail to participate in an operation, and on a tie the maximum
   element moved forward), so their detailed states are irrelevant.

   The optimistic variants become Markov once accesses are Poisson:
   failures and repairs then leave the block untouched and an access event
   (rate [access_rate]) performs the refresh.  The simulator uses
   deterministic daily accesses instead, so simulated and analytic values
   agree only approximately for the optimistic policies — and exactly, up
   to sampling error, for the instantaneous ones. *)

type state = { up : int; block : int; fresh : int }

let popcount mask = Site_set.cardinal (Site_set.of_int_unsafe mask)

(* The majority-partition test specialized to one segment, mirroring
   {!Dynvote.Decision}: Q is the live part of the block; topological
   claiming extends it to the whole block whenever a *fresh* member is
   alive; the topological tie-break requires the maximum element to be
   fresh (on one segment every quorum mate could otherwise have claimed
   it — see Decision for the argument), except for singleton blocks. *)
let grants ~flavor ~ordering state =
  if flavor.Decision.topological && not flavor.Decision.safe_claims then
    (* Paper-literal claiming on one segment: any live site — block member
       or stale straggler — claims every dead site it ever shared a quorum
       with, so the file is available whenever anyone is up.  (The
       straggler path is exactly the unsafe resurrection the safe variant
       forbids.) *)
    state.up <> 0
  else begin
    let q = state.up land state.block in
    if q = 0 then false
    else if flavor.Decision.topological then
      (* Safe topological claiming on one segment reduces to: a fresh
         member of the block is up (it witnesses everything and claims the
         rest), or the whole block is up (no rival lineage can exist).
         This mirrors {!Dynvote.Decision}'s freshness condition and
         rival-lineage guard — the derived "last to fail, first to
         recover" discipline. *)
      q land state.fresh <> 0 || state.block land lnot state.up land state.block = 0
    else begin
      let size = popcount state.block in
      let have = 2 * popcount q in
      if have > size then true
      else if flavor.Decision.tie_break && have = size then
        Site_set.mem
          (Ordering.max_element ordering (Site_set.of_int_unsafe state.block))
          (Site_set.of_int_unsafe q)
      else false
    end
  end

let check_rates fail_rate repair_rate =
  if Array.length fail_rate <> Array.length repair_rate then
    invalid_arg "Voting_model: rate arrays differ in length";
  Array.iter
    (fun r -> if r <= 0.0 then invalid_arg "Voting_model: rates must be positive")
    fail_rate;
  Array.iter
    (fun r -> if r <= 0.0 then invalid_arg "Voting_model: rates must be positive")
    repair_rate

let build ~flavor ?access_rate ~fail_rate ~repair_rate ~ordering () =
  check_rates fail_rate repair_rate;
  let n = Array.length fail_rate in
  if n > 16 then invalid_arg "Voting_model: too many sites for exact solution";
  let everyone = (1 lsl n) - 1 in
  (* A granted refresh re-commits everyone reachable: block and fresh both
     become the whole up-set. *)
  let refresh state =
    if grants ~flavor ~ordering state then { state with block = state.up; fresh = state.up }
    else state
  in
  let instantaneous = access_rate = None in
  let transitions state =
    let moves = ref [] in
    for site = 0 to n - 1 do
      let bit = 1 lsl site in
      if state.up land bit <> 0 then begin
        (* A crashing site loses its freshness. *)
        let next = { state with up = state.up lxor bit; fresh = state.fresh land lnot bit } in
        let next = if instantaneous then refresh next else next in
        moves := (fail_rate.(site), next) :: !moves
      end
      else begin
        (* A repaired site is up but not fresh until it recovers via a
           granted refresh. *)
        let next = { state with up = state.up lor bit } in
        let next = if instantaneous then refresh next else next in
        moves := (repair_rate.(site), next) :: !moves
      end
    done;
    (match access_rate with
    | Some rate ->
        let refreshed = refresh state in
        if refreshed <> state then moves := (rate, refreshed) :: !moves
    | None -> ());
    !moves
  in
  Ctmc.build ~initial:{ up = everyone; block = everyone; fresh = everyone } ~transitions ()

let unavailability ~flavor ?access_rate ~fail_rate ~repair_rate ~ordering () =
  let chain = build ~flavor ?access_rate ~fail_rate ~repair_rate ~ordering () in
  1.0 -. Ctmc.mass chain (grants ~flavor ~ordering)

(* Reliability: mean time from the all-up start until the file first
   becomes unavailable (the paper's "reliability of access"). *)
let mean_time_to_unavailability ~flavor ?access_rate ~fail_rate ~repair_rate ~ordering () =
  check_rates fail_rate repair_rate;
  let n = Array.length fail_rate in
  if n > 16 then invalid_arg "Voting_model: too many sites for exact solution";
  let everyone = (1 lsl n) - 1 in
  let refresh state =
    if grants ~flavor ~ordering state then { state with block = state.up; fresh = state.up }
    else state
  in
  let instantaneous = access_rate = None in
  let transitions state =
    let moves = ref [] in
    for site = 0 to n - 1 do
      let bit = 1 lsl site in
      if state.up land bit <> 0 then begin
        let next = { state with up = state.up lxor bit; fresh = state.fresh land lnot bit } in
        let next = if instantaneous then refresh next else next in
        moves := (fail_rate.(site), next) :: !moves
      end
      else begin
        let next = { state with up = state.up lor bit } in
        let next = if instantaneous then refresh next else next in
        moves := (repair_rate.(site), next) :: !moves
      end
    done;
    (match access_rate with
    | Some rate ->
        let refreshed = refresh state in
        if refreshed <> state then moves := (rate, refreshed) :: !moves
    | None -> ());
    !moves
  in
  Ctmc.expected_hitting_time
    ~initial:{ up = everyone; block = everyone; fresh = everyone }
    ~transitions
    ~target:(fun state -> not (grants ~flavor ~ordering state))
    ()

(* Reliability function R(t): probability the file, started all-up,
   suffers no unavailability during [0, t]. *)
let survival ~flavor ?access_rate ~fail_rate ~repair_rate ~ordering ~t () =
  check_rates fail_rate repair_rate;
  let n = Array.length fail_rate in
  if n > 16 then invalid_arg "Voting_model: too many sites for exact solution";
  let everyone = (1 lsl n) - 1 in
  let refresh state =
    if grants ~flavor ~ordering state then { state with block = state.up; fresh = state.up }
    else state
  in
  let instantaneous = access_rate = None in
  let transitions state =
    let moves = ref [] in
    for site = 0 to n - 1 do
      let bit = 1 lsl site in
      if state.up land bit <> 0 then begin
        let next = { state with up = state.up lxor bit; fresh = state.fresh land lnot bit } in
        let next = if instantaneous then refresh next else next in
        moves := (fail_rate.(site), next) :: !moves
      end
      else begin
        let next = { state with up = state.up lor bit } in
        let next = if instantaneous then refresh next else next in
        moves := (repair_rate.(site), next) :: !moves
      end
    done;
    (match access_rate with
    | Some rate ->
        let refreshed = refresh state in
        if refreshed <> state then moves := (rate, refreshed) :: !moves
    | None -> ());
    !moves
  in
  Ctmc.survival
    ~initial:{ up = everyone; block = everyone; fresh = everyone }
    ~transitions
    ~target:(fun state -> not (grants ~flavor ~ordering state))
    ~t ()

(* Renewal quantities at stationarity: the frequency of availability
   loss and the mean lengths of available / unavailable periods (the
   exact counterparts of the simulator's outage statistics and of the
   paper's Table 3). *)
type periods = {
  availability : float;
  failures_per_day : float; (* transitions available -> unavailable *)
  mean_up_days : float;
  mean_down_days : float;
}

let period_statistics ~flavor ?access_rate ~fail_rate ~repair_rate ~ordering () =
  let chain = build ~flavor ?access_rate ~fail_rate ~repair_rate ~ordering () in
  let ok state = grants ~flavor ~ordering state in
  let availability = Ctmc.mass chain ok in
  (* Probability flux from available into unavailable states. *)
  let n = Array.length fail_rate in
  let refresh state =
    if grants ~flavor ~ordering state then { state with block = state.up; fresh = state.up }
    else state
  in
  let instantaneous = access_rate = None in
  let transitions state =
    let moves = ref [] in
    for site = 0 to n - 1 do
      let bit = 1 lsl site in
      if state.up land bit <> 0 then begin
        let next = { state with up = state.up lxor bit; fresh = state.fresh land lnot bit } in
        let next = if instantaneous then refresh next else next in
        moves := (fail_rate.(site), next) :: !moves
      end
      else begin
        let next = { state with up = state.up lor bit } in
        let next = if instantaneous then refresh next else next in
        moves := (repair_rate.(site), next) :: !moves
      end
    done;
    (match access_rate with
    | Some rate ->
        let refreshed = refresh state in
        if refreshed <> state then moves := (rate, refreshed) :: !moves
    | None -> ());
    !moves
  in
  let flux = ref 0.0 in
  Ctmc.iter chain (fun state probability ->
      if ok state then
        List.iter
          (fun (rate, successor) -> if not (ok successor) then flux := !flux +. (probability *. rate))
          (transitions state));
  {
    availability;
    failures_per_day = !flux;
    mean_up_days = (if !flux = 0.0 then infinity else availability /. !flux);
    mean_down_days = (if !flux = 0.0 then nan else (1.0 -. availability) /. !flux);
  }

(* Per-site steady-state availability under exponential assumptions. *)
let site_availability ~fail_rate ~repair_rate =
  Array.map2 (fun l m -> m /. (l +. m)) fail_rate repair_rate

(* Rates from a mean time to fail and a mean repair time (days). *)
let rates_of_means ~mttf_days ~mttr_days =
  ( Array.map (fun m -> 1.0 /. m) mttf_days,
    Array.map (fun m -> 1.0 /. m) mttr_days )
