(* Closed-form availability of static (state-free) policies on networks
   that cannot partition: each site is independently up with its own
   probability, and the file is available when the up-set satisfies a
   predicate.  A dynamic program over the count distribution handles
   threshold rules; full enumeration (n <= 24) handles arbitrary
   predicates such as lexicographic tie-breaking. *)

(* Distribution of the number of up sites among independent heterogeneous
   sites: standard Poisson-binomial DP. *)
let up_count_distribution probabilities =
  let n = Array.length probabilities in
  let dist = Array.make (n + 1) 0.0 in
  dist.(0) <- 1.0;
  Array.iteri
    (fun i p ->
      if p < 0.0 || p > 1.0 then invalid_arg "Kofn: probability outside [0,1]";
      for k = i + 1 downto 1 do
        dist.(k) <- (dist.(k) *. (1.0 -. p)) +. (dist.(k - 1) *. p)
      done;
      dist.(0) <- dist.(0) *. (1.0 -. p))
    probabilities;
  dist

(* P(at least [quorum] of the sites are up). *)
let at_least ~probabilities ~quorum =
  let dist = up_count_distribution probabilities in
  let n = Array.length probabilities in
  let quorum = max quorum 0 in
  let acc = ref 0.0 in
  for k = quorum to n do
    acc := !acc +. dist.(k)
  done;
  !acc

(* Strict-majority MCV availability. *)
let mcv_availability probabilities =
  let n = Array.length probabilities in
  at_least ~probabilities ~quorum:((n / 2) + 1)

(* Availability of an arbitrary predicate over up-sets, by enumeration. *)
let predicate_availability probabilities predicate =
  let n = Array.length probabilities in
  if n > 24 then invalid_arg "Kofn.predicate_availability: too many sites to enumerate";
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let p = ref 1.0 in
    for i = 0 to n - 1 do
      let up = mask land (1 lsl i) <> 0 in
      p := !p *. (if up then probabilities.(i) else 1.0 -. probabilities.(i))
    done;
    if !p > 0.0 && predicate (Site_set.of_int_unsafe mask) then total := !total +. !p
  done;
  !total

(* MCV with the lexicographic even-split rule: a strict majority, or
   exactly half including the maximum-ranked site. *)
let mcv_lexicographic_availability probabilities ~ordering =
  let n = Array.length probabilities in
  let universe = Site_set.universe n in
  let max_site = Ordering.max_element ordering universe in
  predicate_availability probabilities (fun up ->
      let have = 2 * Site_set.cardinal up in
      have > n || (have = n && Site_set.mem max_site up))
