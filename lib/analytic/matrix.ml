(* Small dense matrices over floats with Gaussian elimination — enough
   linear algebra to solve the stationary equations of the CTMC models.
   Matrices here have at most a few hundred rows (the reachable state
   spaces of 3-5 site voting chains), so O(n^3) with partial pivoting is
   entirely adequate. *)

type t = {
  rows : int;
  cols : int;
  data : float array; (* row-major *)
}

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let rows t = t.rows
let cols t = t.cols

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Matrix.get: out of range";
  t.data.((i * t.cols) + j)

let set t i j v =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then invalid_arg "Matrix.set: out of range";
  t.data.((i * t.cols) + j) <- v

let add_to t i j v = set t i j (get t i j +. v)

let copy t = { t with data = Array.copy t.data }

let identity n =
  let m = create ~rows:n ~cols:n in
  for i = 0 to n - 1 do
    set m i i 1.0
  done;
  m

let of_rows rows_list =
  match rows_list with
  | [] -> invalid_arg "Matrix.of_rows: empty"
  | first :: _ ->
      let rows = List.length rows_list and cols = Array.length first in
      let m = create ~rows ~cols in
      List.iteri
        (fun i row ->
          if Array.length row <> cols then invalid_arg "Matrix.of_rows: ragged rows";
          Array.iteri (fun j v -> set m i j v) row)
        rows_list;
      m

let transpose t =
  let m = create ~rows:t.cols ~cols:t.rows in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      set m j i (get t i j)
    done
  done;
  m

let multiply a b =
  if a.cols <> b.rows then invalid_arg "Matrix.multiply: dimension mismatch";
  let m = create ~rows:a.rows ~cols:b.cols in
  for i = 0 to a.rows - 1 do
    for j = 0 to b.cols - 1 do
      let acc = ref 0.0 in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (get a i k *. get b k j)
      done;
      set m i j !acc
    done
  done;
  m

let apply t v =
  if Array.length v <> t.cols then invalid_arg "Matrix.apply: dimension mismatch";
  Array.init t.rows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to t.cols - 1 do
        acc := !acc +. (get t i j *. v.(j))
      done;
      !acc)

exception Singular

(* Solve A x = b by Gaussian elimination with partial pivoting; A must be
   square.  Raises [Singular] when no unique solution exists. *)
let solve a b =
  if a.rows <> a.cols then invalid_arg "Matrix.solve: matrix not square";
  if Array.length b <> a.rows then invalid_arg "Matrix.solve: vector size mismatch";
  let n = a.rows in
  let m = copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* Pivot: largest magnitude in this column at or below the diagonal. *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs (get m row col) > Float.abs (get m !pivot col) then pivot := row
    done;
    if Float.abs (get m !pivot col) < 1e-12 then raise Singular;
    if !pivot <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    let diag = get m col col in
    for row = col + 1 to n - 1 do
      let factor = get m row col /. diag in
      if factor <> 0.0 then begin
        for j = col to n - 1 do
          set m row j (get m row j -. (factor *. get m col j))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  (* Back substitution. *)
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for j = row + 1 to n - 1 do
      acc := !acc -. (get m row j *. x.(j))
    done;
    x.(row) <- !acc /. get m row row
  done;
  x

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      Fmt.pf ppf "%10.4g " (get t i j)
    done;
    Fmt.pf ppf "@,"
  done;
  Fmt.pf ppf "@]"
