(** Continuous-time Markov chains with on-the-fly state discovery.

    Supply an initial state and a transition function; the reachable state
    space is enumerated and the stationary distribution solved exactly
    (dense Gaussian elimination), suitable for the small chains arising
    from 3–5 site voting models. *)

type 'state t

val build :
  ?max_states:int ->
  initial:'state ->
  transitions:('state -> (float * 'state) list) ->
  unit ->
  'state t
(** States must be hashable/comparable by structure.  Rates must be
    non-negative; zero-rate edges are ignored.
    @raise Failure when more than [max_states] (default 200 000) states are
    reachable, [Invalid_argument] on negative rates,
    [Matrix.Singular] if the chain is reducible. *)

val n_states : 'state t -> int

val probability : 'state t -> 'state -> float
(** Stationary probability of one state (0 if unreachable). *)

val mass : 'state t -> ('state -> bool) -> float
(** Total stationary probability of the states satisfying the predicate. *)

val iter : 'state t -> ('state -> float -> unit) -> unit

val survival :
  ?max_states:int ->
  ?tolerance:float ->
  initial:'state ->
  transitions:('state -> (float * 'state) list) ->
  target:('state -> bool) ->
  t:float ->
  unit ->
  float
(** [survival ~initial ~transitions ~target ~t ()] is the probability that
    the chain has not entered the target set by time [t] (uniformization;
    accurate to [tolerance], default 1e-12).  This is the reliability
    function R(t) when the target is "file unavailable". *)

val expected_hitting_time :
  ?max_states:int ->
  initial:'state ->
  transitions:('state -> (float * 'state) list) ->
  target:('state -> bool) ->
  unit ->
  float
(** Mean first-passage time from [initial] to the target set (the
    replicated file's mean time to unavailability, when the target is
    "access denied").  Zero when [initial] is already a target.
    @raise Matrix.Singular when the target is unreachable from some
    reachable state (infinite expectation). *)
