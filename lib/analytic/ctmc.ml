(* Generic continuous-time Markov chains with on-the-fly state discovery.

   The caller supplies an initial state and a transition function giving
   the outgoing (rate, successor) pairs of any state; the reachable state
   space is enumerated breadth-first, the generator matrix assembled, and
   the stationary distribution obtained by replacing one balance equation
   with the normalization constraint. *)

type 'state t = {
  states : 'state array;          (* index -> state *)
  index : ('state, int) Hashtbl.t;
  stationary : float array;
}

let max_states_default = 200_000

let build ?(max_states = max_states_default) ~initial ~transitions () =
  let index = Hashtbl.create 64 in
  let states = ref [] in
  let n = ref 0 in
  let queue = Queue.create () in
  let intern s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None ->
        let i = !n in
        if i >= max_states then failwith "Ctmc.build: state space too large";
        Hashtbl.add index s i;
        states := s :: !states;
        incr n;
        Queue.push s queue;
        i
  in
  ignore (intern initial);
  (* First pass: discover all reachable states and record the edges. *)
  let edges = ref [] in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let i = Hashtbl.find index s in
    List.iter
      (fun (rate, successor) ->
        if rate < 0.0 then invalid_arg "Ctmc.build: negative rate";
        if rate > 0.0 then begin
          let j = intern successor in
          if j <> i then edges := (i, j, rate) :: !edges
        end)
      (transitions s)
  done;
  let size = !n in
  let states = Array.of_list (List.rev !states) in
  (* Stationary distribution: pi Q = 0 with sum(pi) = 1.  Assemble Q^T and
     overwrite the last row with ones. *)
  let a = Matrix.create ~rows:size ~cols:size in
  List.iter
    (fun (i, j, rate) ->
      Matrix.add_to a j i rate;
      Matrix.add_to a i i (-.rate))
    !edges;
  for j = 0 to size - 1 do
    Matrix.set a (size - 1) j 1.0
  done;
  let b = Array.make size 0.0 in
  b.(size - 1) <- 1.0;
  let stationary = Matrix.solve a b in
  (* Numerical noise can leave tiny negatives; clamp and renormalize. *)
  let total = ref 0.0 in
  Array.iteri
    (fun i p ->
      let p = if p < 0.0 then 0.0 else p in
      stationary.(i) <- p;
      total := !total +. p)
    stationary;
  Array.iteri (fun i p -> stationary.(i) <- p /. !total) stationary;
  { states; index; stationary }

let n_states t = Array.length t.states

let probability t state =
  match Hashtbl.find_opt t.index state with
  | Some i -> t.stationary.(i)
  | None -> 0.0

(* Stationary probability of the states satisfying a predicate. *)
let mass t predicate =
  let acc = ref 0.0 in
  Array.iteri (fun i s -> if predicate s then acc := !acc +. t.stationary.(i)) t.states;
  !acc

let iter t f = Array.iteri (fun i s -> f s t.stationary.(i)) t.states

(* Survival function by uniformization: the probability that the chain,
   started at [initial], has not yet entered the target set at time [t].
   Target states are made absorbing; with uniformization constant L >= max
   exit rate, the survival probability is

       sum_k  Poisson(L t, k) * (mass still transient after k jumps)

   truncated when the Poisson tail is negligible.  Numerically robust and
   exact up to the stated tolerance. *)
let survival ?(max_states = max_states_default) ?(tolerance = 1e-12) ~initial ~transitions
    ~target ~t () =
  if t < 0.0 then invalid_arg "Ctmc.survival: negative time";
  if target initial then 0.0
  else if t = 0.0 then 1.0
  else begin
    (* Enumerate transient states reachable without passing through the
       target set. *)
    let index = Hashtbl.create 64 in
    let order = ref [] in
    let n = ref 0 in
    let queue = Queue.create () in
    let intern s =
      match Hashtbl.find_opt index s with
      | Some i -> i
      | None ->
          let i = !n in
          if i >= max_states then failwith "Ctmc.survival: state space too large";
          Hashtbl.add index s i;
          order := s :: !order;
          incr n;
          Queue.push s queue;
          i
    in
    ignore (intern initial);
    (* Per transient state: exit-to-target rate and transient edges. *)
    let edges : (int * int * float) list ref = ref [] in
    let absorb = Hashtbl.create 64 in
    let exit_rate = Hashtbl.create 64 in
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      let i = Hashtbl.find index s in
      let total = ref 0.0 and to_target = ref 0.0 in
      List.iter
        (fun (rate, successor) ->
          if rate < 0.0 then invalid_arg "Ctmc.survival: negative rate";
          if rate > 0.0 then begin
            total := !total +. rate;
            if target successor then to_target := !to_target +. rate
            else begin
              let j = intern successor in
              if j <> i then edges := (i, j, rate) :: !edges
              else total := !total -. rate (* self loop: ignore *)
            end
          end)
        (transitions s);
      Hashtbl.replace absorb i !to_target;
      Hashtbl.replace exit_rate i !total
    done;
    let size = !n in
    let lambda =
      Hashtbl.fold (fun _ r acc -> Float.max r acc) exit_rate 1e-9
    in
    (* One uniformized jump: v' = v P restricted to transient states. *)
    let step v =
      let v' = Array.make size 0.0 in
      (* Stay put with probability 1 - total_rate/lambda. *)
      Array.iteri
        (fun i p ->
          if p > 0.0 then
            v'.(i) <-
              v'.(i) +. (p *. (1.0 -. (Hashtbl.find exit_rate i /. lambda))))
        v;
      List.iter
        (fun (i, j, rate) ->
          if v.(i) > 0.0 then v'.(j) <- v'.(j) +. (v.(i) *. rate /. lambda))
        !edges;
      (* Mass flowing into the target set simply disappears from v'. *)
      v'
    in
    let v = ref (Array.make size 0.0) in
    !v.(Hashtbl.find index initial) <- 1.0;
    (* Propagate the transient sub-distribution over a time span using the
       Poisson-weighted jump expansion.  Spans are chunked so that
       lambda * span stays moderate and exp(-lambda * span) never
       underflows. *)
    let propagate v span =
      let lt = lambda *. span in
      let out = Array.make size 0.0 in
      let current = ref (Array.copy v) in
      let weight = ref (exp (-.lt)) in
      let cumulative = ref 0.0 in
      let k = ref 0 in
      let continue = ref true in
      while !continue do
        Array.iteri (fun i p -> out.(i) <- out.(i) +. (!weight *. p)) !current;
        cumulative := !cumulative +. !weight;
        if 1.0 -. !cumulative <= tolerance then continue := false
        else begin
          current := step !current;
          incr k;
          weight := !weight *. lt /. float_of_int !k;
          if !k > 10_000_000 then continue := false
        end
      done;
      out
    in
    let chunks = max 1 (int_of_float (ceil (lambda *. t /. 30.0))) in
    let span = t /. float_of_int chunks in
    for _ = 1 to chunks do
      if Array.fold_left ( +. ) 0.0 !v > tolerance then v := propagate !v span
    done;
    let survival_mass = Array.fold_left ( +. ) 0.0 !v in
    Float.min 1.0 (Float.max 0.0 survival_mass)
  end

(* Expected time to first reach the target set.  We rebuild the generator
   restricted to non-target states and solve Q h = -1 (h = 0 on targets):
   the standard first-passage-time system. *)
let expected_hitting_time ?(max_states = max_states_default) ~initial ~transitions ~target
    () =
  ignore max_states;
  if target initial then 0.0
  else begin
    (* Discover reachable states, tagging targets. *)
    let index = Hashtbl.create 64 in
    let order = ref [] in
    let n = ref 0 in
    let queue = Queue.create () in
    let intern s =
      match Hashtbl.find_opt index s with
      | Some i -> i
      | None ->
          let i = !n in
          Hashtbl.add index s i;
          order := s :: !order;
          incr n;
          (* Targets are absorbing for this computation: no expansion. *)
          if not (target s) then Queue.push s queue;
          i
    in
    ignore (intern initial);
    let edges = ref [] in
    while not (Queue.is_empty queue) do
      let s = Queue.pop queue in
      let i = Hashtbl.find index s in
      List.iter
        (fun (rate, successor) ->
          if rate < 0.0 then invalid_arg "Ctmc.expected_hitting_time: negative rate";
          if rate > 0.0 then begin
            let j = intern successor in
            if j <> i then edges := (i, j, rate) :: !edges
          end)
        (transitions s)
    done;
    let size = !n in
    let states = Array.of_list (List.rev !order) in
    (* Unknowns: h(s) for non-target s.  Equation per non-target s:
       sum_j q_sj (h(j) - h(s)) = -1, with h(target) = 0. *)
    let unknown = Array.make size (-1) in
    let n_unknowns = ref 0 in
    Array.iteri
      (fun i s ->
        if not (target s) then begin
          unknown.(i) <- !n_unknowns;
          incr n_unknowns
        end)
      states;
    let m = Matrix.create ~rows:!n_unknowns ~cols:!n_unknowns in
    let b = Array.make !n_unknowns (-1.0) in
    List.iter
      (fun (i, j, rate) ->
        match unknown.(i) with
        | -1 -> () (* edges out of targets are irrelevant *)
        | row ->
            Matrix.add_to m row row (-.rate);
            if unknown.(j) >= 0 then Matrix.add_to m row unknown.(j) rate)
      !edges;
    (* States with no outgoing edges would make the system singular — they
       can never reach the target, so the hitting time is infinite. *)
    let h = Matrix.solve m b in
    h.(unknown.(Hashtbl.find index initial))
  end
