(** Exact Markov model of dynamic voting on a single non-partitionable
    segment with exponential failures and repairs.

    Used to cross-validate the discrete-event simulator: for DV/LDV/TDV
    (instantaneous quorum adjustment) the model is exact; for the
    optimistic variants it assumes Poisson accesses at [access_rate] per
    day, an approximation to the simulator's deterministic daily access. *)

type state = { up : int; block : int; fresh : int }
(** Bitmasks: up sites, current majority block, and sites continuously up
    since the last commit (the only ones allowed to sponsor or carry
    topological vote claims). *)

val grants : flavor:Decision.flavor -> ordering:Ordering.t -> state -> bool
(** Would an access be granted in this state? *)

val build :
  flavor:Decision.flavor ->
  ?access_rate:float ->
  fail_rate:float array ->
  repair_rate:float array ->
  ordering:Ordering.t ->
  unit ->
  state Ctmc.t
(** Rates are per day.  [access_rate] switches to the optimistic (access-
    time refresh) model.  @raise Invalid_argument on non-positive rates or
    more than 16 sites. *)

val unavailability :
  flavor:Decision.flavor ->
  ?access_rate:float ->
  fail_rate:float array ->
  repair_rate:float array ->
  ordering:Ordering.t ->
  unit ->
  float
(** Steady-state probability that an access would be denied. *)

val mean_time_to_unavailability :
  flavor:Decision.flavor ->
  ?access_rate:float ->
  fail_rate:float array ->
  repair_rate:float array ->
  ordering:Ordering.t ->
  unit ->
  float
(** Reliability: expected days from the all-up start until an access would
    first be denied (mean first-passage time in the exact chain). *)

val survival :
  flavor:Decision.flavor ->
  ?access_rate:float ->
  fail_rate:float array ->
  repair_rate:float array ->
  ordering:Ordering.t ->
  t:float ->
  unit ->
  float
(** The reliability function R(t): probability of no unavailability during
    [0, t] days, starting all-up (uniformization on the exact chain). *)

type periods = {
  availability : float;
  failures_per_day : float;  (** frequency of available→unavailable transitions *)
  mean_up_days : float;      (** mean length of an available period *)
  mean_down_days : float;    (** mean length of an unavailable period (Table 3's exact analog) *)
}

val period_statistics :
  flavor:Decision.flavor ->
  ?access_rate:float ->
  fail_rate:float array ->
  repair_rate:float array ->
  ordering:Ordering.t ->
  unit ->
  periods
(** Stationary renewal quantities of the availability process. *)

val site_availability : fail_rate:float array -> repair_rate:float array -> float array

val rates_of_means :
  mttf_days:float array -> mttr_days:float array -> float array * float array
