(** Small dense float matrices with Gaussian elimination. *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled. *)

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val add_to : t -> int -> int -> float -> unit
val copy : t -> t
val identity : int -> t
val of_rows : float array list -> t
val transpose : t -> t
val multiply : t -> t -> t
val apply : t -> float array -> float array

exception Singular

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] (partial pivoting).
    @raise Singular when the system has no unique solution. *)

val pp : Format.formatter -> t -> unit
