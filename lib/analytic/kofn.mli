(** Closed-form availability of static policies on partition-free
    networks, from independent per-site availabilities. *)

val up_count_distribution : float array -> float array
(** Poisson-binomial distribution of the number of up sites;
    [dist.(k)] = P(exactly k up).  @raise Invalid_argument on
    probabilities outside [0,1]. *)

val at_least : probabilities:float array -> quorum:int -> float
(** P(at least [quorum] sites up). *)

val mcv_availability : float array -> float
(** Strict-majority MCV: P(more than half the sites up). *)

val predicate_availability : float array -> (Site_set.t -> bool) -> float
(** Exact availability of an arbitrary up-set predicate (enumerates all
    2^n up-sets; n ≤ 24). *)

val mcv_lexicographic_availability : float array -> ordering:Ordering.t -> float
(** MCV with the even-split lexicographic rule used in this project. *)
