(* The paper's safety contract as one executable spec — the single
   module every checker in the tree evaluates.

   The invariants are the dynamic-voting analogues of the TLA+ [Voting]
   module's [VotesSafe] / [OneValuePerBallot]:

   - Generation agreement: at most one component may be granted per
     generation, so every commit carrying operation number [o] must carry
     the same (version, partition) everywhere.  Two different ensembles
     for one generation is the split-brain signature.

   - One committed version per (o, v) / no content forks: two sites
     agreeing on a committed version number must hold identical bytes.

   - Per-site monotonicity: the operation numbers a site applies must be
     strictly increasing, and a commit may never lower a site's version
     number (the nodes promise this; the spec re-verifies it
     independently).

   - Register-read consistency (one-copy equivalence): a granted read
     must return the latest cleanly committed write, or the content of a
     later write whose coordinator died mid-operation (a "maybe
     committed" write — the client was told it aborted, but its effects
     may have partially escaped).

   Three checkers feed it: the chaos harness attaches it to a msgsim
   cluster's commit-witness stream (Dynvote_chaos.Oracle, a thin
   adapter over this module), the bounded model checker evaluates and
   fingerprints it at every explored state, and the live service's
   audit replays recorded per-node operation logs through {!replay}.
   The evaluation order is identical in all three — a verdict is a
   property of the event stream, not of the checker that produced it. *)

type violation =
  | Generation_conflict of {
      op_no : int;
      site_a : Site_set.site;
      version_a : int;
      partition_a : Site_set.t;
      site_b : Site_set.site;
      version_b : int;
      partition_b : Site_set.t;
    }
  | Non_monotone_op of { site : Site_set.site; before : int; after : int }
  | Version_regression of { site : Site_set.site; before : int; after : int }
  | Stale_read of { at : Site_set.site; got : string; wanted : string list }
  | Content_fork of {
      version : int;
      site_a : Site_set.site;
      content_a : string;
      site_b : Site_set.site;
      content_b : string;
    }

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

module Fork_set = Set.Make (struct
  type t = int * Site_set.site * Site_set.site

  let compare = compare
end)

(* All tables are immutable maps rebound in place: a backtracking
   explorer checkpoints and restores the spec state on every transition,
   and persistent structures make both operations constant-time pointer
   copies (the tables are tiny, so the log-time updates are noise). *)
type t = {
  mutable violations : violation list; (* newest first *)
  mutable committed : string;          (* latest cleanly committed content *)
  mutable maybe : string list;         (* contents of aborted writes since *)
  mutable generations : (int * Site_set.t * Site_set.site) Int_map.t;
      (* op_no -> first witnessed (version, partition, site) *)
  mutable committed_versions : Int_set.t;
  mutable last_op : int Int_map.t;     (* site -> last applied op_no *)
  mutable last_version : int Int_map.t;
  mutable flagged_forks : Fork_set.t;
      (* forks already reported, so the per-step scan flags each once *)
  mutable commits_seen : int;
  mutable reads_checked : int;
}

let create ~initial_content =
  {
    violations = [];
    committed = initial_content;
    maybe = [];
    generations = Int_map.empty;
    committed_versions = Int_set.empty;
    last_op = Int_map.empty;
    last_version = Int_map.empty;
    flagged_forks = Fork_set.empty;
    commits_seen = 0;
    reads_checked = 0;
  }

let flag t violation = t.violations <- violation :: t.violations

(* The generation-agreement predicate lives HERE and only here: the
   first witnessed (version, partition) for an operation number is the
   reference, and any later commit disagreeing in either component is
   the split-brain.  Checkers must not restate this comparison — they
   feed commits in and read violations out. *)
let witness t site replica =
  t.commits_seen <- t.commits_seen + 1;
  let op_no = Replica.op_no replica in
  let version = Replica.version replica in
  let partition = Replica.partition replica in
  t.committed_versions <- Int_set.add version t.committed_versions;
  (match Int_map.find_opt op_no t.generations with
  | None -> t.generations <- Int_map.add op_no (version, partition, site) t.generations
  | Some (version_a, partition_a, site_a) ->
      if version_a <> version || not (Site_set.equal partition_a partition) then
        flag t
          (Generation_conflict
             {
               op_no;
               site_a;
               version_a;
               partition_a;
               site_b = site;
               version_b = version;
               partition_b = partition;
             }));
  (match Int_map.find_opt site t.last_op with
  | Some before when before >= op_no ->
      flag t (Non_monotone_op { site; before; after = op_no })
  | _ -> ());
  t.last_op <- Int_map.add site op_no t.last_op;
  (match Int_map.find_opt site t.last_version with
  | Some before when before > version ->
      flag t (Version_regression { site; before; after = version })
  | _ -> ());
  t.last_version <- Int_map.add site version t.last_version

(* Client-visible outcomes feed the register model.  A write that aborted
   after its decision may or may not have escaped; its content joins the
   maybe set until the next clean write supersedes it. *)
let write_flags t ~granted ~aborted ~content =
  if granted then begin
    t.committed <- content;
    t.maybe <- []
  end
  else if aborted then t.maybe <- content :: t.maybe

let read_flags t ~at ~granted ~content =
  if granted then begin
    t.reads_checked <- t.reads_checked + 1;
    match content with
    | None -> ()
    | Some got ->
        if got <> t.committed && not (List.mem got t.maybe) then
          flag t (Stale_read { at; got; wanted = t.committed :: t.maybe })
  end

(* Content-fork scan: among versions some commit actually carried, equal
   version numbers must mean equal bytes.  (Residue of an aborted write
   sits at a version no commit ever used and is skipped — the client was
   told that write failed.)  The scan is incremental: it may run after
   every schedule step, so the model checker reports the {e first}
   violating state; a (version, pair) already flagged is not re-reported
   on later calls. *)
let check_states t holders =
  List.iter
    (fun (site_a, version, content_a) ->
      List.iter
        (fun (site_b, version_b, content_b) ->
          if
            site_a < site_b && version = version_b
            && Int_set.mem version t.committed_versions
            && content_a <> content_b
            && not (Fork_set.mem (version, site_a, site_b) t.flagged_forks)
          then begin
            t.flagged_forks <- Fork_set.add (version, site_a, site_b) t.flagged_forks;
            flag t (Content_fork { version; site_a; content_a; site_b; content_b })
          end)
        holders)
    holders

(* Replay: the same invariants, fed from recorded events instead of a
   live cluster — the entry point the networked service's per-node
   operation logs go through.  A write's content is tracked from its
   intent record: the moment a coordinator starts distributing COMMITs
   the content may escape, so it joins the maybe set immediately and is
   promoted to cleanly-committed only when the matching granted outcome
   appears.  An intent whose coordinator died mid-wave never produces an
   outcome and simply stays maybe — exactly the aborted-write semantics
   of [write_flags]. *)
type replay_event =
  | Replay_commit of { site : Site_set.site; replica : Replica.t }
  | Replay_intent of { content : string }
  | Replay_write of { granted : bool; content : string }
  | Replay_read of { at : Site_set.site; granted : bool; content : string option }

let replay_event t = function
  | Replay_commit { site; replica } -> witness t site replica
  | Replay_intent { content } -> t.maybe <- content :: t.maybe
  | Replay_write { granted; content } ->
      (* The intent already holds the maybe slot; a granted outcome
         promotes it, anything else leaves it there. *)
      write_flags t ~granted ~aborted:false ~content
  | Replay_read { at; granted; content } -> read_flags t ~at ~granted ~content

let replay ~initial_content ?(final = []) events =
  let t = create ~initial_content in
  List.iter (replay_event t) events;
  check_states t final;
  t

(* Snapshots let a backtracking explorer unwind the spec state along with
   the cluster.  Every field is immutable data rebound in place, so both
   directions are constant-time field copies. *)
type snapshot = {
  snap_violations : violation list;
  snap_committed : string;
  snap_maybe : string list;
  snap_generations : (int * Site_set.t * Site_set.site) Int_map.t;
  snap_committed_versions : Int_set.t;
  snap_last_op : int Int_map.t;
  snap_last_version : int Int_map.t;
  snap_flagged_forks : Fork_set.t;
  snap_commits_seen : int;
  snap_reads_checked : int;
}

let snapshot t =
  {
    snap_violations = t.violations;
    snap_committed = t.committed;
    snap_maybe = t.maybe;
    snap_generations = t.generations;
    snap_committed_versions = t.committed_versions;
    snap_last_op = t.last_op;
    snap_last_version = t.last_version;
    snap_flagged_forks = t.flagged_forks;
    snap_commits_seen = t.commits_seen;
    snap_reads_checked = t.reads_checked;
  }

let restore t s =
  t.violations <- s.snap_violations;
  t.committed <- s.snap_committed;
  t.maybe <- s.snap_maybe;
  t.generations <- s.snap_generations;
  t.committed_versions <- s.snap_committed_versions;
  t.last_op <- s.snap_last_op;
  t.last_version <- s.snap_last_version;
  t.flagged_forks <- s.snap_flagged_forks;
  t.commits_seen <- s.snap_commits_seen;
  t.reads_checked <- s.snap_reads_checked

let mem_committed_version t version = Int_set.mem version t.committed_versions

(* Serialize the spec's memory — the part of the product state that
   determines which {e future} violations it can still detect — into
   [buf], canonically.  [rename] canonicalizes content strings (the
   literal bytes of "w3" vs "w5" are schedule artifacts); [map_site] /
   [map_set] apply a site permutation so a symmetry-reducing explorer can
   fold equivalent states.  Already-flagged forks are deliberately
   excluded: any state carrying one also carries a violation and is never
   expanded further.

   Two liveness filters keep the serialization from growing with history
   length (the monotone tables would otherwise make every state
   path-dependent and defeat the explorer's seen set):

   - Generation entries with op_no < [min_live_op] are dropped.  A future
     commit's operation number exceeds its coordinator's current one, so
     with [min_live_op] = the minimum operation number any site could
     still present as coordinator, entries strictly below it can never be
     re-witnessed — they are inert for Generation_conflict detection.
     (The caller owns the soundness argument; pass 0 to keep everything,
     e.g. when amnesiac restarts can revive arbitrarily stale ensembles.)

   - The committed-versions set is NOT serialized here.  The fork check
     only consults it for a version two sites currently hold, and a
     version with no holder anywhere can only be re-acquired through a
     fresh commit — which re-inserts its membership.  Callers instead
     record one bit per site ("this site's data version is a committed
     version"), which is the live content of the set.

   [map_op] / [map_version] canonicalize the two counter domains (the
   protocols and these checks compare operation and version numbers only
   for order and equality and advance them by increments, so a caller may
   rebase them to collapse histories differing by a committed prefix).
   [min_live_op] is compared against raw, unmapped operation numbers. *)
let fingerprint_memory t ~buf ~rename ~map_site ~map_set ~map_op ~map_version
    ~min_live_op =
  let add_int = Fingerprint_buf.add_int buf in
  add_int (List.length t.violations);
  add_int (rename t.committed);
  add_int (List.length t.maybe);
  List.iter (fun content -> add_int (rename content)) t.maybe;
  (* Map iteration is already in ascending key order. *)
  let live = ref 0 in
  Int_map.iter
    (fun op_no _ -> if op_no >= min_live_op then incr live)
    t.generations;
  add_int !live;
  Int_map.iter
    (fun op_no (version, partition, _site) ->
      (* The stored first-witness site is report attribution only — the
         conflict predicate compares version and partition — so it stays
         out of the fingerprint: states differing in nothing but which
         site happened to witness a generation first flag the same future
         violations. *)
      if op_no >= min_live_op then begin
        add_int (map_op op_no);
        add_int (map_version version);
        add_int (Site_set.to_int (map_set partition))
      end)
    t.generations;
  let per_site table =
    List.sort compare
      (Int_map.fold (fun site v acc -> (map_site site, v) :: acc) table [])
  in
  let ops = per_site t.last_op in
  add_int (List.length ops);
  List.iter (fun (site, op) -> add_int site; add_int (map_op op)) ops;
  let versions = per_site t.last_version in
  add_int (List.length versions);
  List.iter (fun (site, v) -> add_int site; add_int (map_version v)) versions

let violations t = List.rev t.violations
let is_safe t = t.violations = []
let commits_seen t = t.commits_seen
let reads_checked t = t.reads_checked

let pp_violation ppf = function
  | Generation_conflict g ->
      Fmt.pf ppf
        "generation %d committed twice: site %d saw (v%d, %a) but site %d saw (v%d, %a)"
        g.op_no g.site_a g.version_a Site_set.pp g.partition_a g.site_b g.version_b
        Site_set.pp g.partition_b
  | Non_monotone_op { site; before; after } ->
      Fmt.pf ppf "site %d applied operation %d after %d" site after before
  | Version_regression { site; before; after } ->
      Fmt.pf ppf "site %d regressed from version %d to %d" site before after
  | Stale_read { at; got; wanted } ->
      Fmt.pf ppf "read at site %d returned %S, legal: %a" at got
        Fmt.(list ~sep:comma (quote string))
        wanted
  | Content_fork { version; site_a; content_a; site_b; content_b } ->
      Fmt.pf ppf "version %d forked: site %d holds %S, site %d holds %S" version
        site_a content_a site_b content_b
