(** The paper's safety contract as one executable spec.

    The dynamic-voting analogues of the TLA+ [Voting] module's
    [VotesSafe] / [OneValuePerBallot], stated once and evaluated by
    every checker in the tree:

    - {e generation agreement}: at most one component granted per
      generation — every commit with operation number [o] carries the
      same (version, partition);
    - {e monotonicity}: per site, applied operation numbers strictly
      increase and version numbers never regress;
    - {e register-read consistency} (one-copy equivalence): a granted
      read returns the latest cleanly committed write, or the content of
      a later aborted ("maybe committed") write;
    - {e one committed version, one content}: sites agreeing on a
      committed version number hold identical bytes.

    One spec, three checkers: the chaos harness feeds it a live
    cluster's commit-witness stream (through the
    [Dynvote_chaos.Oracle] adapter), the bounded model checker
    evaluates and fingerprints it at every state, and the live
    service's audit replays recorded operation logs through {!replay}. *)

type violation =
  | Generation_conflict of {
      op_no : int;
      site_a : Site_set.site;
      version_a : int;
      partition_a : Site_set.t;
      site_b : Site_set.site;
      version_b : int;
      partition_b : Site_set.t;
    }  (** split-brain: one generation, two ensembles *)
  | Non_monotone_op of { site : Site_set.site; before : int; after : int }
  | Version_regression of { site : Site_set.site; before : int; after : int }
  | Stale_read of { at : Site_set.site; got : string; wanted : string list }
  | Content_fork of {
      version : int;
      site_a : Site_set.site;
      content_a : string;
      site_b : Site_set.site;
      content_b : string;
    }

type t

val create : initial_content:string -> t

val witness : t -> Site_set.site -> Replica.t -> unit
(** Feed one applied commit: the generation-agreement and per-site
    monotonicity checks run against it, and its version joins the
    committed-versions set.  This is the only place the
    generation-agreement predicate exists — checkers feed commits in
    and read violations out. *)

val write_flags : t -> granted:bool -> aborted:bool -> content:string -> unit
(** Feed a write's client-visible outcome to the register model: a
    granted write becomes the committed content, an aborted one joins
    the maybe set. *)

val read_flags : t -> at:Site_set.site -> granted:bool -> content:string option -> unit
(** Check a granted read against the register model. *)

val check_states : t -> (Site_set.site * int * string) list -> unit
(** The content-fork scan over [(site, data_version, content)] triples.
    Safe to call after every step — each fork is flagged once, at the
    first state exhibiting it, and not re-reported by later calls. *)

(** {2 Log replay} *)

type replay_event =
  | Replay_commit of { site : Site_set.site; replica : Replica.t }
      (** a node applied this ensemble (the commit-witness stream) *)
  | Replay_intent of { content : string }
      (** a write coordinator is about to distribute COMMITs carrying
          [content]: from this moment the content may escape, so it joins
          the maybe set; the matching {!Replay_write} promotes it.  An
          intent with no outcome is a coordinator that died mid-wave —
          the aborted ("maybe committed") write of {!write_flags}. *)
  | Replay_write of { granted : bool; content : string }
  | Replay_read of { at : Site_set.site; granted : bool; content : string option }

val replay_event : t -> replay_event -> unit
(** Feed one recorded event (events must be in serialization order). *)

val replay :
  initial_content:string ->
  ?final:(Site_set.site * int * string) list ->
  replay_event list ->
  t
(** Feed recorded events through a fresh spec state (events must be in
    serialization order; the service's global sequence numbers provide
    it), then run the content-fork scan over [final] — each surviving
    node's last persisted [(site, data_version, content)]. *)

val violations : t -> violation list
(** In discovery order. *)

val is_safe : t -> bool
val commits_seen : t -> int
val reads_checked : t -> int
val pp_violation : Format.formatter -> violation -> unit

type snapshot
(** An immutable copy of the spec's full memory, for backtracking
    explorers that unwind it along with the cluster. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val mem_committed_version : t -> int -> bool
(** Has some commit carried this version number? *)

val fingerprint_memory :
  t ->
  buf:Buffer.t ->
  rename:(string -> int) ->
  map_site:(Site_set.site -> Site_set.site) ->
  map_set:(Site_set.t -> Site_set.t) ->
  map_op:(int -> int) ->
  map_version:(int -> int) ->
  min_live_op:int ->
  unit
(** Serialize the spec's memory (register model, generation table,
    per-site monotonicity watermarks) canonically into [buf] — the part
    of the model checker's product state that determines which future
    violations remain detectable.  [rename] canonicalizes content
    strings; [map_site]/[map_set] apply a site permutation for symmetry
    reduction; [map_op]/[map_version] canonicalize the counter domains
    (they must be strictly monotone — the checks compare counters only
    for order and equality).  Generation entries below [min_live_op]
    (raw, unmapped) are dropped as inert — the caller asserts no future
    commit can carry such an operation number (pass 0 to keep
    everything).  The committed-versions set is not serialized: its live
    content is the per-site {!mem_committed_version} bit, which the
    caller records alongside each site's data version. *)
