(* Welford's online algorithm for mean and variance: numerically stable and
   single-pass, suitable for accumulating millions of batch observations. *)

type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the running mean *)
  mutable min : float;
  mutable max : float;
}

let create () = { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let copy t = { count = t.count; mean = t.mean; m2 = t.m2; min = t.min; max = t.max }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  let delta2 = x -. t.mean in
  t.m2 <- t.m2 +. (delta *. delta2);
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.count

let mean t = if t.count = 0 then nan else t.mean

let variance t = if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)

let population_variance t = if t.count < 1 then nan else t.m2 /. float_of_int t.count

let stddev t = sqrt (variance t)

let std_error t =
  if t.count < 2 then nan else stddev t /. sqrt (float_of_int t.count)

let min_value t = if t.count = 0 then nan else t.min

let max_value t = if t.count = 0 then nan else t.max

(* Chan et al. parallel merge: combines two accumulators exactly. *)
let merge a b =
  if a.count = 0 then copy b
  else if b.count = 0 then copy a
  else begin
    let n = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.count /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.count *. float_of_int b.count /. float_of_int n)
    in
    { count = n; mean; m2; min = Float.min a.min b.min; max = Float.max a.max b.max }
  end

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g" t.count (mean t) (stddev t)
    (min_value t) (max_value t)
