(** Student-t critical values for confidence intervals.

    Tabulated for df 1–30, interpolated up to 120, normal approximation
    beyond — accuracy better than 0.2% everywhere, ample for batch-means
    confidence intervals. *)

type confidence = C95 | C99

val critical : confidence -> int -> float
(** [critical c df] is the two-sided critical value at confidence level [c]
    with [df] degrees of freedom.  @raise Invalid_argument when [df < 1]. *)

val critical_975 : int -> float
(** 97.5th percentile of t(df) — the half-width multiplier of a two-sided
    95% interval. *)

val critical_995 : int -> float
