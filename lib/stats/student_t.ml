(* Two-sided Student-t critical values, used by batch-means confidence
   intervals.  Exact tabulated values for small degrees of freedom; for
   df > 120 the normal quantile is an excellent approximation. *)

(* 97.5th percentile (two-sided 95%) for df = 1 .. 30. *)
let table_975 =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

(* 99.5th percentile (two-sided 99%) for df = 1 .. 30. *)
let table_995 =
  [| 63.657; 9.925; 5.841; 4.604; 4.032; 3.707; 3.499; 3.355; 3.250; 3.169;
     3.106; 3.055; 3.012; 2.977; 2.947; 2.921; 2.898; 2.878; 2.861; 2.845;
     2.831; 2.819; 2.807; 2.797; 2.787; 2.779; 2.771; 2.763; 2.756; 2.750 |]

(* Selected larger df, linearly interpolated between anchors. *)
let anchors_975 = [| (40, 2.021); (60, 2.000); (80, 1.990); (100, 1.984); (120, 1.980) |]
let anchors_995 = [| (40, 2.704); (60, 2.660); (80, 2.639); (100, 2.626); (120, 2.617) |]

let normal_975 = 1.959964
let normal_995 = 2.575829

let interpolate anchors df limit last_table_value =
  (* df is in (30, 120]; walk the anchor list. *)
  let rec go prev_df prev_v i =
    if i >= Array.length anchors then limit
    else
      let adf, av = anchors.(i) in
      if df <= adf then
        let frac = float_of_int (df - prev_df) /. float_of_int (adf - prev_df) in
        prev_v +. (frac *. (av -. prev_v))
      else go adf av (i + 1)
  in
  go 30 last_table_value 0

let lookup table anchors normal_value df =
  if df < 1 then invalid_arg "Student_t: degrees of freedom must be >= 1";
  if df <= 30 then table.(df - 1)
  else if df > 120 then normal_value
  else interpolate anchors df normal_value table.(29)

let critical_975 df = lookup table_975 anchors_975 normal_975 df

let critical_995 df = lookup table_995 anchors_995 normal_995 df

type confidence = C95 | C99

let critical confidence df =
  match confidence with C95 -> critical_975 df | C99 -> critical_995 df
