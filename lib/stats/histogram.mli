(** Fixed-bin histogram for simulation diagnostics. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Uniform bins over [lo, hi); out-of-range samples land in dedicated
    underflow/overflow counters. *)

val add : t -> float -> unit
val total : t -> int
val underflow : t -> int
val overflow : t -> int
val bin_count : t -> int
val bin : t -> int -> int
val bin_range : t -> int -> float * float

val quantile : t -> float -> float
(** Approximate quantile (bin-midpoint resolution); [nan] when empty. *)

val pp : Format.formatter -> t -> unit
(** ASCII bar rendering. *)
