(* Fixed-bin histogram for distribution diagnostics (repair times,
   unavailable-period durations).  Values outside the configured range are
   counted in underflow/overflow buckets so nothing is silently dropped. *)

type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
  width : float;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  { lo; hi; bins = Array.make bins 0; underflow = 0; overflow = 0; total = 0;
    width = (hi -. lo) /. float_of_int bins }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = if i >= Array.length t.bins then Array.length t.bins - 1 else i in
    t.bins.(i) <- t.bins.(i) + 1
  end

let total t = t.total
let underflow t = t.underflow
let overflow t = t.overflow
let bin_count t = Array.length t.bins
let bin t i = t.bins.(i)

let bin_range t i =
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
  if t.total = 0 then nan
  else begin
    (* Count through underflow, bins, overflow; return the midpoint of the
       bin where the cumulative count crosses the target.  Coarse but fine
       for diagnostics. *)
    let target = q *. float_of_int t.total in
    let acc = ref (float_of_int t.underflow) in
    if !acc >= target && t.underflow > 0 then t.lo
    else begin
      let result = ref nan in
      (try
         for i = 0 to Array.length t.bins - 1 do
           acc := !acc +. float_of_int t.bins.(i);
           if !acc >= target then begin
             let lo, hi = bin_range t i in
             result := (lo +. hi) /. 2.0;
             raise Exit
           end
         done;
         result := t.hi
       with Exit -> ());
      !result
    end
  end

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  let peak = Array.fold_left max 1 t.bins in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_range t i in
      let bar = String.make (40 * c / peak) '#' in
      Fmt.pf ppf "[%8.3f, %8.3f) %8d %s@," lo hi c bar)
    t.bins;
  if t.underflow > 0 then Fmt.pf ppf "underflow %d@," t.underflow;
  if t.overflow > 0 then Fmt.pf ppf "overflow %d@," t.overflow;
  Fmt.pf ppf "@]"
