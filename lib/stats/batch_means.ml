(* Batch-means analysis, the method the paper uses to attach 95% confidence
   intervals to steady-state simulation estimates.  The run (after warm-up)
   is cut into contiguous batches; each batch produces one observation; the
   batch observations are treated as i.i.d. for the interval.  We also
   expose the lag-1 autocorrelation of the batch series so callers can check
   that the batches are long enough for that assumption to be reasonable. *)

type t = {
  batch_length : float; (* in simulated time units *)
  mutable observations : float list; (* batch means, newest first *)
  mutable count : int;
}

type interval = {
  mean : float;
  half_width : float;
  lower : float;
  upper : float;
  batches : int;
  confidence : Student_t.confidence;
}

let create ~batch_length =
  if batch_length <= 0.0 then invalid_arg "Batch_means.create: batch_length must be positive";
  { batch_length; observations = []; count = 0 }

let batch_length t = t.batch_length

let add_batch t x =
  t.observations <- x :: t.observations;
  t.count <- t.count + 1

let batches t = t.count

let observations t = List.rev t.observations

let mean t =
  if t.count = 0 then nan
  else List.fold_left ( +. ) 0.0 t.observations /. float_of_int t.count

let variance t =
  if t.count < 2 then nan
  else begin
    let m = mean t in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 t.observations in
    ss /. float_of_int (t.count - 1)
  end

let interval ?(confidence = Student_t.C95) t =
  if t.count < 2 then
    { mean = mean t; half_width = nan; lower = nan; upper = nan;
      batches = t.count; confidence }
  else begin
    let m = mean t in
    let se = sqrt (variance t /. float_of_int t.count) in
    let crit = Student_t.critical confidence (t.count - 1) in
    let hw = crit *. se in
    { mean = m; half_width = hw; lower = m -. hw; upper = m +. hw;
      batches = t.count; confidence }
  end

(* Lag-1 autocorrelation of the batch series; values near zero indicate the
   batches are long enough to be treated as independent. *)
let lag1_autocorrelation t =
  if t.count < 3 then nan
  else begin
    let xs = Array.of_list (observations t) in
    let n = Array.length xs in
    let m = mean t in
    let num = ref 0.0 and den = ref 0.0 in
    for i = 0 to n - 1 do
      let d = xs.(i) -. m in
      den := !den +. (d *. d);
      if i < n - 1 then num := !num +. (d *. (xs.(i + 1) -. m))
    done;
    if !den = 0.0 then 0.0 else !num /. !den
  end

let pp_interval ppf iv =
  let level = match iv.confidence with Student_t.C95 -> 95 | Student_t.C99 -> 99 in
  Fmt.pf ppf "%.6f +/- %.6f (%d%% CI, %d batches)" iv.mean iv.half_width level iv.batches
