(** Online mean/variance accumulator (Welford's algorithm).

    Single pass, numerically stable, mergeable. *)

type t

val create : unit -> t
val copy : t -> t

val add : t -> float -> unit
(** Record one observation. *)

val count : t -> int

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] when fewer than two observations. *)

val population_variance : t -> float

val stddev : t -> float

val std_error : t -> float
(** Standard error of the mean. *)

val min_value : t -> float
val max_value : t -> float

val merge : t -> t -> t
(** Exact combination of two accumulators (Chan et al.). *)

val pp : Format.formatter -> t -> unit
