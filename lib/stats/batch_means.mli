(** Batch-means analysis for steady-state simulation output.

    Mirrors the methodology of the paper's §4: after a warm-up period the
    run is divided into fixed-length batches, the per-batch means are
    treated as independent observations, and a Student-t interval is
    reported. *)

type t

type interval = {
  mean : float;
  half_width : float;
  lower : float;
  upper : float;
  batches : int;
  confidence : Student_t.confidence;
}

val create : batch_length:float -> t
(** [batch_length] is in simulated time units (days, for this project).
    @raise Invalid_argument when non-positive. *)

val batch_length : t -> float

val add_batch : t -> float -> unit
(** Record the mean of one completed batch. *)

val batches : t -> int
val observations : t -> float list
(** In insertion order. *)

val mean : t -> float
val variance : t -> float

val interval : ?confidence:Student_t.confidence -> t -> interval
(** Student-t confidence interval over the batch means (default 95%).
    With fewer than two batches the half-width is [nan]. *)

val lag1_autocorrelation : t -> float
(** Diagnostic: near zero means batches behave as independent. *)

val pp_interval : Format.formatter -> interval -> unit
