(** Fixed-size domain pool for the embarrassingly parallel compute paths
    (the availability study, independent-seed replications, the bounded
    model checker's root-alphabet shards).

    Built directly on OCaml 5 [Domain] — no external dependencies.  A
    pool owns [jobs - 1] worker domains (the caller participates as the
    remaining worker); [map_array]/[map_list] fan items out over the
    workers through a shared atomic cursor and join the results {e by
    item index}, never by completion order, so the output is
    deterministic whenever the per-item function is.  Exceptions raised
    by the function are re-raised in the caller, lowest failing index
    first.

    Nested pools are refused at the source: a worker that itself calls
    {!create} (directly or through {!with_pool}) gets a sequential
    [jobs = 1] pool, so the parallel entry points can be layered without
    domain explosion ([Study.replicate ~jobs] over [Study.run ~jobs],
    the bench over both). *)

type t

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1 .. max_jobs]. *)

val max_jobs : int
(** Upper bound on any pool size (64): beyond the hardware parallelism
    extra domains only add scheduling noise. *)

val default_jobs : unit -> int
(** The [DYNVOTE_JOBS] environment variable when it parses to a positive
    integer (clamped to [max_jobs]), {!recommended} otherwise. *)

val create : ?jobs:int -> unit -> t
(** A pool of [jobs] workers ([default_jobs ()] when omitted; values are
    clamped to [1 .. max_jobs]).  Called from inside another pool's
    worker, the result is always sequential ([jobs t = 1]) — see the
    nested-pool rule above.  Idle workers block on a condition variable;
    a pool costs nothing between calls. *)

val jobs : t -> int
(** The parallelism this pool actually provides (1 = sequential). *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Using the pool afterwards
    raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)

type steal_stats = {
  tasks_executed : int;  (** tasks this worker ran (popped or stolen) *)
  steals : int;  (** successful steals from another worker's deque *)
  failed_steals : int;  (** steal attempts that found nothing or lost a race *)
  max_deque_depth : int;  (** high-water mark of this worker's own deque *)
}

val zero_steal_stats : steal_stats

val add_steal_stats : steal_stats -> steal_stats -> steal_stats
(** Componentwise sum; [max_deque_depth] takes the max. *)

val run_stealing :
  t ->
  ?seed:int ->
  roots:'task array ->
  init:(int -> 'state) ->
  run:('state -> push:('task -> unit) -> 'task -> unit) ->
  unit ->
  steal_stats array
(** Run a dynamically growing task frontier to quiescence over all
    workers.  Each worker owns a {!Deque} (Chase–Lev: the owner pushes
    and pops LIFO at the bottom, thieves steal FIFO from the top, with
    randomized victim selection seeded by [seed]); [roots] are dealt
    round-robin across the deques; [init w] builds worker [w]'s private
    state once; [run state ~push task] executes one task and may [push]
    follow-on tasks onto the {e executing} worker's own deque.

    Returns when every task has been executed: termination is detected
    by a global outstanding-task counter (incremented on [push] before
    the task is visible, decremented after its [run] returns), so a
    worker observing zero with an empty deque can exit — no task exists
    and none can appear.  An exception from [run] or [init] aborts the
    schedule and is re-raised (first failing worker by index).

    The per-worker statistics are returned in worker-index order.
    Scheduling (which worker runs which task, and in what order) is
    nondeterministic above one worker — the caller's [run] must make
    the aggregate result order-independent.  Inside another pool's
    worker the schedule degrades to one sequential LIFO worker, in
    keeping with the no-nested-pools rule. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f xs] is [Array.map f xs] computed by all workers.
    Items are claimed through a shared cursor (dynamic load balancing);
    results land at their item's index.  [f] runs with {!in_worker} set.
    The first exception by item index is re-raised after every worker
    has drained. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_array} for lists, preserving order. *)

val in_worker : unit -> bool
(** Whether the calling domain is currently executing a pool task (the
    caller's own participation included).  Library code uses this to
    fall back to sequential execution instead of nesting pools. *)
