(** A Chase–Lev work-stealing deque.

    One {e owner} domain pushes and pops at the bottom (LIFO — the hot
    path, giving depth-first locality to schedulers that expand the
    newest task first); any number of {e thief} domains steal from the
    top (FIFO — thieves take the oldest, largest-granularity work).

    The implementation is the classic circular-array algorithm (Chase &
    Lev, SPAA 2005) built entirely on OCaml 5 sequentially-consistent
    [Atomic]s: [top] only ever increases (no ABA), the single CAS on
    [top] arbitrates the owner/thief race for the last element, and
    grown buffers are never written again, so a thief holding a stale
    buffer pointer still reads valid slots for any index its CAS can
    win.  All operations are lock-free; [pop] and [steal] are
    linearizable against each other (the qcheck suite scripts
    owner/thief interleavings against a reference two-ended queue).

    Only the owner may call {!push} and {!pop}.  {!steal} is safe from
    any domain. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Owner only: add at the bottom.  Grows the buffer as needed — a push
    never blocks and never fails. *)

val pop : 'a t -> 'a option
(** Owner only: take the newest element (the one most recently pushed),
    or [None] when the deque is empty or a thief won the race for the
    last element. *)

type 'a steal_result =
  | Stolen of 'a
  | Empty  (** nothing to take *)
  | Retry  (** lost a race with the owner or another thief; try again *)

val steal : 'a t -> 'a steal_result
(** Any domain: take the oldest element. *)

val size : 'a t -> int
(** A snapshot of the element count (exact when quiescent, a lower-bound
    estimate under concurrent operations).  For observability only. *)
