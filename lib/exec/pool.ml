(* A fixed-size domain pool.  The pool owns [jobs - 1] worker domains
   parked on a condition variable; a fan-out call publishes one batch
   body, every worker (plus the caller) runs it, and the call returns
   when all have drained.  The body itself pulls item indices from a
   shared atomic cursor, so load balancing is dynamic while results are
   joined strictly by item index — completion order never leaks into the
   output.

   The memory-model handshake: workers write result slots, then take the
   pool mutex to decrement [active]; the caller observes [active = 0]
   under the same mutex before reading the slots, so every write
   happens-before every read (no data race, per the OCaml 5 memory
   model). *)

let max_jobs = 64

let clamp jobs = if jobs < 1 then 1 else if jobs > max_jobs then max_jobs else jobs

let recommended () = clamp (Domain.recommended_domain_count ())

let default_jobs () =
  match Sys.getenv_opt "DYNVOTE_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> clamp n
      | _ -> recommended ())
  | None -> recommended ()

let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable batch : (unit -> unit) option; (* never raises; see [map_array] *)
  mutable epoch : int;
  mutable active : int; (* workers still to finish the current batch *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.jobs

let worker_loop t =
  Domain.DLS.set in_worker_key true;
  let seen_epoch = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match t.batch with
      | Some body when t.epoch <> !seen_epoch ->
          seen_epoch := t.epoch;
          Mutex.unlock t.mutex;
          body ();
          Mutex.lock t.mutex;
          t.active <- t.active - 1;
          if t.active = 0 then Condition.broadcast t.work_done;
          loop ()
      | _ ->
          Condition.wait t.work_ready t.mutex;
          loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = clamp (match jobs with Some j -> j | None -> default_jobs ()) in
  (* No nested pools: a pool built inside a worker is sequential. *)
  let jobs = if in_worker () then 1 else jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      epoch = 0;
      active = 0;
      stop = false;
      workers = [||];
    }
  in
  if jobs > 1 then
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopped = t.stop in
  t.stop <- true;
  if not was_stopped then Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown t;
      Printexc.raise_with_backtrace e bt

(* Publish one batch, participate, wait for every worker to drain it. *)
let run_batch t body =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: pool is shut down"
  end;
  t.batch <- Some body;
  t.epoch <- t.epoch + 1;
  t.active <- Array.length t.workers;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Domain.DLS.set in_worker_key true;
  body ();
  Domain.DLS.set in_worker_key false;
  Mutex.lock t.mutex;
  while t.active > 0 do
    Condition.wait t.work_done t.mutex
  done;
  t.batch <- None;
  Mutex.unlock t.mutex

(* ------------------------------------------------------------------ *)
(* The work-stealing scheduler.

   [map_array] fans out a {e fixed} item array; [run_stealing] schedules
   a {e growing} frontier: executing one task may push new tasks, and
   idle workers steal them.  Each worker owns a Chase–Lev deque — the
   owner pushes and pops at the bottom (LIFO, so a tree-shaped workload
   is walked depth-first with hot caches), thieves take from the top
   (FIFO, so they steal the oldest, shallowest, largest tasks).  Victims
   are chosen by a per-worker xorshift generator seeded from [seed] and
   the worker index.

   Termination is a work-count quiescence barrier: one atomic counter of
   outstanding tasks, incremented by [push] {e before} the task becomes
   stealable and decremented only after its [run] returns (so a task's
   children are always counted before their parent retires).  A worker
   whose own deque is empty observes [outstanding = 0] exactly when no
   task exists anywhere and none can appear — every worker then exits;
   while the counter is positive it keeps stealing.

   An exception from [run] aborts the whole schedule: every worker stops
   at its next dispatch, and the first failing worker's exception (by
   worker index) is re-raised in the caller after the barrier. *)

type steal_stats = {
  tasks_executed : int;
  steals : int;
  failed_steals : int;
  max_deque_depth : int;
}

let zero_steal_stats =
  { tasks_executed = 0; steals = 0; failed_steals = 0; max_deque_depth = 0 }

let add_steal_stats a b =
  {
    tasks_executed = a.tasks_executed + b.tasks_executed;
    steals = a.steals + b.steals;
    failed_steals = a.failed_steals + b.failed_steals;
    max_deque_depth = max a.max_deque_depth b.max_deque_depth;
  }

let run_stealing (type task state) t ?(seed = 0) ~(roots : task array)
    ~(init : int -> state) ~(run : state -> push:(task -> unit) -> task -> unit)
    () : steal_stats array =
  if t.stop then invalid_arg "Pool: pool is shut down";
  let jobs = if in_worker () then 1 else t.jobs in
  let deques = Array.init jobs (fun _ -> Deque.create ()) in
  Array.iteri (fun i task -> Deque.push deques.(i mod jobs) task) roots;
  let outstanding = Atomic.make (Array.length roots) in
  let abort = Atomic.make false in
  let stats = Array.make jobs zero_steal_stats in
  let errors = Array.make jobs None in
  let slot = Atomic.make 0 in
  let body () =
    let w = Atomic.fetch_and_add slot 1 in
    let my = deques.(w) in
    let tasks_executed = ref 0 in
    let steals = ref 0 in
    let failed_steals = ref 0 in
    let max_depth = ref 0 in
    (* xorshift64, seeded per worker; only victim selection consumes it. *)
    let rng = ref (((seed + 1) * 0x2545F4914F6CDD1D) + ((w + 1) * 0x9E3779B9)) in
    let next_random () =
      let x = !rng in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      rng := x;
      x land max_int
    in
    let push task =
      Atomic.incr outstanding;
      Deque.push my task;
      let d = Deque.size my in
      if d > !max_depth then max_depth := d
    in
    let state = init w in
    let execute task =
      run state ~push task;
      incr tasks_executed;
      Atomic.decr outstanding
    in
    let rec loop () =
      if not (Atomic.get abort) then
        match Deque.pop my with
        | Some task ->
            execute task;
            loop ()
        | None ->
            if Atomic.get outstanding > 0 then begin
              (if jobs > 1 then begin
                 let r = next_random () mod (jobs - 1) in
                 let victim = if r >= w then r + 1 else r in
                 match Deque.steal deques.(victim) with
                 | Deque.Stolen task ->
                     incr steals;
                     execute task
                 | Deque.Empty | Deque.Retry ->
                     incr failed_steals;
                     Domain.cpu_relax ()
               end);
              loop ()
            end
    in
    (try loop ()
     with e ->
       errors.(w) <- Some (e, Printexc.get_raw_backtrace ());
       Atomic.set abort true);
    stats.(w) <-
      {
        tasks_executed = !tasks_executed;
        steals = !steals;
        failed_steals = !failed_steals;
        max_deque_depth = !max_depth;
      }
  in
  if jobs = 1 then begin
    let was_worker = in_worker () in
    Domain.DLS.set in_worker_key true;
    Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key was_worker) body
  end
  else run_batch t body;
  Array.iter
    (function
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    errors;
  stats

let map_array t f xs =
  let n = Array.length xs in
  if t.stop then invalid_arg "Pool: pool is shut down";
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 || in_worker () then Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let cursor = Atomic.make 0 in
    let body () =
      let rec pull () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (try results.(i) <- Some (f xs.(i))
           with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          pull ()
        end
      in
      pull ()
    in
    run_batch t body;
    (* Deterministic error propagation: the lowest failing index wins. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
