(* A fixed-size domain pool.  The pool owns [jobs - 1] worker domains
   parked on a condition variable; a fan-out call publishes one batch
   body, every worker (plus the caller) runs it, and the call returns
   when all have drained.  The body itself pulls item indices from a
   shared atomic cursor, so load balancing is dynamic while results are
   joined strictly by item index — completion order never leaks into the
   output.

   The memory-model handshake: workers write result slots, then take the
   pool mutex to decrement [active]; the caller observes [active = 0]
   under the same mutex before reading the slots, so every write
   happens-before every read (no data race, per the OCaml 5 memory
   model). *)

let max_jobs = 64

let clamp jobs = if jobs < 1 then 1 else if jobs > max_jobs then max_jobs else jobs

let recommended () = clamp (Domain.recommended_domain_count ())

let default_jobs () =
  match Sys.getenv_opt "DYNVOTE_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 1 -> clamp n
      | _ -> recommended ())
  | None -> recommended ()

let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

type t = {
  jobs : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable batch : (unit -> unit) option; (* never raises; see [map_array] *)
  mutable epoch : int;
  mutable active : int; (* workers still to finish the current batch *)
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let jobs t = t.jobs

let worker_loop t =
  Domain.DLS.set in_worker_key true;
  let seen_epoch = ref 0 in
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stop then Mutex.unlock t.mutex
    else
      match t.batch with
      | Some body when t.epoch <> !seen_epoch ->
          seen_epoch := t.epoch;
          Mutex.unlock t.mutex;
          body ();
          Mutex.lock t.mutex;
          t.active <- t.active - 1;
          if t.active = 0 then Condition.broadcast t.work_done;
          loop ()
      | _ ->
          Condition.wait t.work_ready t.mutex;
          loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = clamp (match jobs with Some j -> j | None -> default_jobs ()) in
  (* No nested pools: a pool built inside a worker is sequential. *)
  let jobs = if in_worker () then 1 else jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      batch = None;
      epoch = 0;
      active = 0;
      stop = false;
      workers = [||];
    }
  in
  if jobs > 1 then
    t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let was_stopped = t.stop in
  t.stop <- true;
  if not was_stopped then Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ?jobs f =
  let t = create ?jobs () in
  match f t with
  | v ->
      shutdown t;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      shutdown t;
      Printexc.raise_with_backtrace e bt

(* Publish one batch, participate, wait for every worker to drain it. *)
let run_batch t body =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: pool is shut down"
  end;
  t.batch <- Some body;
  t.epoch <- t.epoch + 1;
  t.active <- Array.length t.workers;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  Domain.DLS.set in_worker_key true;
  body ();
  Domain.DLS.set in_worker_key false;
  Mutex.lock t.mutex;
  while t.active > 0 do
    Condition.wait t.work_done t.mutex
  done;
  t.batch <- None;
  Mutex.unlock t.mutex

let map_array t f xs =
  let n = Array.length xs in
  if t.stop then invalid_arg "Pool: pool is shut down";
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 || in_worker () then Array.map f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let cursor = Atomic.make 0 in
    let body () =
      let rec pull () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (try results.(i) <- Some (f xs.(i))
           with e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
          pull ()
        end
      in
      pull ()
    in
    run_batch t body;
    (* Deterministic error propagation: the lowest failing index wins. *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
