(* Chase–Lev circular-array work-stealing deque on OCaml 5 atomics.

   Elements live at logical indices [top, bottom): the owner pushes at
   [bottom] and pops at [bottom - 1]; thieves CAS [top] forward.  The
   invariants the correctness argument rests on:

   - [top] is monotonically increasing (a CAS from t to t+1 is the only
     writer besides the owner's empty-pop reset, which never decreases
     it), so the CAS has no ABA problem.
   - A slot at logical index i is written by [push] exactly once and
     never overwritten while i is in [top, bottom): overwriting would
     need bottom - top >= capacity, which triggers a grow first.
   - A grown (old) buffer is never written again, and the grow copies
     every index in [top, bottom) to the same logical index of the new
     buffer, so a thief that read the buffer pointer before a grow
     still reads the correct value for any index whose CAS it can win.

   Every shared word ([top], [bottom], the buffer pointer, and each
   slot) is an [Atomic.t], i.e. sequentially consistent — the fences
   the weak-memory presentations of this algorithm agonize over are
   implicit.  Slots hold ['a option] so empty cells need no dummy
   element; a popped slot is overwritten with [None] to unroot the
   element for the GC. *)

type 'a t = {
  top : int Atomic.t;
  bottom : int Atomic.t;
  buf : 'a option Atomic.t array Atomic.t;
}

let initial_capacity = 16 (* power of two *)

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (Array.init initial_capacity (fun _ -> Atomic.make None));
  }

let size t = max 0 (Atomic.get t.bottom - Atomic.get t.top)

(* Owner only.  Indices in [tp, b) move to the same logical index of a
   buffer twice the size; the old buffer is abandoned, never mutated. *)
let grow t ~b ~tp old =
  let cap = Array.length old in
  let nbuf = Array.init (2 * cap) (fun _ -> Atomic.make None) in
  for i = tp to b - 1 do
    Atomic.set nbuf.(i land ((2 * cap) - 1)) (Atomic.get old.(i land (cap - 1)))
  done;
  Atomic.set t.buf nbuf;
  nbuf

let push t v =
  let b = Atomic.get t.bottom and tp = Atomic.get t.top in
  let buf = Atomic.get t.buf in
  let buf = if b - tp >= Array.length buf then grow t ~b ~tp buf else buf in
  Atomic.set buf.(b land (Array.length buf - 1)) (Some v);
  Atomic.set t.bottom (b + 1)

let pop t =
  let b = Atomic.get t.bottom - 1 in
  (* Publish the claim on index [b] before reading [top]: any thief that
     still wins index b must have CASed top past it first, and then the
     owner's CAS below fails.  SC atomics order the two accesses. *)
  Atomic.set t.bottom b;
  let tp = Atomic.get t.top in
  if tp > b then begin
    (* Deque was empty; restore the canonical empty shape. *)
    Atomic.set t.bottom tp;
    None
  end
  else begin
    let buf = Atomic.get t.buf in
    let slot = buf.(b land (Array.length buf - 1)) in
    let v = Atomic.get slot in
    if b > tp then begin
      (* At least one element remains above index b, so no thief can
         reach b: take it uncontended. *)
      Atomic.set slot None;
      v
    end
    else begin
      (* b = tp: the last element — race the thieves for it. *)
      let won = Atomic.compare_and_set t.top tp (tp + 1) in
      Atomic.set t.bottom (tp + 1);
      if won then begin
        Atomic.set slot None;
        v
      end
      else None
    end
  end

type 'a steal_result = Stolen of 'a | Empty | Retry

let steal t =
  let tp = Atomic.get t.top in
  let b = Atomic.get t.bottom in
  if tp >= b then Empty
  else begin
    let buf = Atomic.get t.buf in
    (* Read the slot before the CAS: once top moves past tp the owner
       may pop-and-clear index tp, but it can only do so after our CAS
       would have failed. *)
    let v = Atomic.get buf.(tp land (Array.length buf - 1)) in
    if Atomic.compare_and_set t.top tp (tp + 1) then
      match v with
      | Some x -> Stolen x
      | None -> assert false (* slot in [top, bottom) is always written *)
    else Retry
  end
