(** Seeded fault-injection filesystem: a {!Dynvote.Vfs} implementation
    that passes every operation through to the real filesystem while (a)
    striking armed {!Dynvote_chaos.Fault_plan.Storage} triggers and (b)
    tracking what is actually {e durable} — which bytes a power cut
    could not take back — so {!simulate_crash} can rewrite the real
    files to their post-crash contents.

    The durability model is the strict reading of POSIX:

    - written bytes are volatile until the file's [fsync] succeeds
      (a lying fsync promotes nothing);
    - a rename is volatile until the directory's fsync succeeds — a
      crash before it restores the old name bindings (the temp file
      reappears, the target reverts);
    - a durable rename whose source was never fsynced leaves the target
      durably {e empty} — the name switch survived, the bytes did not;
    - for append-mode files the unsynced suffix survives only as a
      random-length prefix (deterministic from [seed]), so a simulated
      crash produces exactly the torn log tails the recovery path must
      tolerate.

    Whatever a path holds when this filesystem first touches it is
    taken as durable (it predates the simulation). *)

module Storage = Dynvote_chaos.Fault_plan.Storage

type t

val create : ?seed:int -> unit -> t
(** A fresh instance with no triggers armed.  [seed] (default 1) drives
    only the unsynced-suffix truncation lengths. *)

val vfs : t -> Vfs.t
(** The injecting filesystem.  Faults surface as {!Vfs.Fault}
    ({!Storage.Crash} as {!Vfs.Crash_point}, {!Storage.Read_eio} as
    [Sys_error], matching what total load paths absorb). *)

val arm : t -> Storage.trigger -> unit
(** Arm a trigger; each fires at most once.  Operations of the matching
    class are counted per (op, file-class) from the moment the instance
    was created, so arm triggers before the workload they target. *)

val arm_next : t -> Storage.trigger -> unit
(** {!arm}, but [nth] counts from {e now}: the trigger fires at the
    [nth] matching operation after this call, however many already
    happened.  What a console operator (or the crash matrix, arming
    after the boot-time operations) actually means. *)

val disarm : t -> unit
(** Drop every armed trigger (fired or not). *)

val injected : t -> (string * int) list
(** Fault-name / count pairs for every trigger that actually fired,
    sorted by name. *)

val injected_total : t -> int

val simulate_crash : t -> unit
(** Rewrite every tracked file on the real filesystem to its durable
    content: un-fsynced replaces revert, lost renames are undone, and
    append-mode files keep only a seeded-random prefix of their
    unsynced suffix.  Call with no node using the vfs (after the kill).
    Pending renames are cleared and the restored state becomes the new
    durable baseline; armed triggers stay armed. *)
