(* Fault-injecting Vfs over the real filesystem.  Two responsibilities,
   both driven by the same operation stream:

   - strike armed triggers (deterministic: the nth op of a class on a
     file class), surfacing the fault the way the persistence layer
     expects it — Vfs.Fault for write-side failures, Sys_error for
     reads, Vfs.Crash_point for simulated process death;

   - shadow-track durability: which content each path is *guaranteed*
     to hold after a power cut.  Writes move bytes into the page cache
     (the real file), never into the durable shadow; only a truthful
     fsync promotes them.  simulate_crash then forces the real files
     back to their shadows.

   All state is mutex-guarded: node threads run operations while the
   harness arms triggers and reads stats. *)

module Storage = Dynvote_chaos.Fault_plan.Storage
module Splitmix64 = Dynvote_prng.Splitmix64

type tracked = {
  mutable durable : string option; (* None = durably absent *)
  mutable appended : bool; (* ever opened in append mode *)
}

(* A rename that really happened but is not yet durable: until the
   directory fsync succeeds, a crash restores [src] (the temp file, with
   its own durable content) and reverts [dst].  [src_durable] is frozen
   at rename time — what the bytes' durability was when the name
   switched. *)
type pending = { p_src : string; p_dst : string; p_src_durable : string option }

type t = {
  mutex : Mutex.t;
  rng : Splitmix64.t;
  mutable triggers : (Storage.trigger * bool ref) list;
  counts : (Storage.op * Storage.file_class, int) Hashtbl.t;
  fired : (string, int) Hashtbl.t; (* fault name -> times injected *)
  files : (string, tracked) Hashtbl.t;
  mutable pendings : pending list;
}

let create ?(seed = 1) () =
  {
    mutex = Mutex.create ();
    rng = Splitmix64.create (Int64.of_int seed);
    triggers = [];
    counts = Hashtbl.create 16;
    fired = Hashtbl.create 8;
    files = Hashtbl.create 16;
    pendings = [];
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let arm t trigger = locked t (fun () -> t.triggers <- t.triggers @ [ (trigger, ref false) ])

(* Arm relative to the present: "the nth matching operation from now".
   Absolute counts since creation are unknowable to anyone arming
   mid-run (a console operator, the crash matrix arming after boot), so
   the current count is folded into the trigger's nth. *)
let arm_next t trigger =
  locked t (fun () ->
      let key = (trigger.Storage.op, trigger.Storage.file) in
      let current = Option.value ~default:0 (Hashtbl.find_opt t.counts key) in
      t.triggers <-
        t.triggers
        @ [ ({ trigger with Storage.nth = current + trigger.Storage.nth }, ref false) ])

let disarm t = locked t (fun () -> t.triggers <- [])

let injected t =
  locked t (fun () ->
      Hashtbl.fold (fun name n acc -> (name, n) :: acc) t.fired []
      |> List.sort compare)

let injected_total t =
  locked t (fun () -> Hashtbl.fold (fun _ n acc -> acc + n) t.fired 0)

(* --- path classification and baselines ------------------------------ *)

let classify path =
  let base = Filename.basename path in
  let base =
    match Filename.chop_suffix_opt ~suffix:".tmp" base with
    | Some b -> b
    | None -> base
  in
  match base with
  | "ensemble.dvt" -> Storage.Ensemble
  | "data.dvl" -> Storage.Data
  | "oplog.dvl" -> Storage.Oplog
  | "rids.dvr" -> Storage.Shard
  | _ ->
      let is_shard_log =
        String.length base > 6
        && String.sub base 0 6 = "shard-"
        && Filename.check_suffix base ".dvl"
      in
      if is_shard_log then Storage.Shard else Storage.Any_file

let read_whole path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_whole path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

(* Whatever the path holds when we first touch it predates the
   simulation and counts as durable. *)
let track t path =
  match Hashtbl.find_opt t.files path with
  | Some entry -> entry
  | None ->
      let durable =
        if Sys.file_exists path then Some (read_whole path) else None
      in
      let entry = { durable; appended = false } in
      Hashtbl.add t.files path entry;
      entry

(* --- trigger evaluation --------------------------------------------- *)

let bump t key =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.counts key) in
  Hashtbl.replace t.counts key n;
  n

(* Count the operation, then fire the first armed trigger whose class,
   file and occurrence number all match.  Counts are kept both per
   concrete file class and under the Any_file wildcard so a trigger can
   target either. *)
let strike t ~op ~cls =
  locked t (fun () ->
      let n_cls = bump t (op, cls) in
      let n_any = if cls = Storage.Any_file then n_cls else bump t (op, Storage.Any_file) in
      let matches (tr, fired_flag) =
        (not !fired_flag)
        && tr.Storage.op = op
        && (match tr.Storage.file with
           | Storage.Any_file -> tr.Storage.nth = n_any
           | file -> file = cls && tr.Storage.nth = n_cls)
      in
      match List.find_opt matches t.triggers with
      | None -> None
      | Some (tr, fired_flag) ->
          fired_flag := true;
          let name = Storage.fault_name tr.Storage.fault in
          Hashtbl.replace t.fired name
            (1 + Option.value ~default:0 (Hashtbl.find_opt t.fired name));
          Some tr.Storage.fault)

let fault ~op ~path reason = raise (Vfs.Fault { op; path; reason })
let crash_point ~op ~path = raise (Vfs.Crash_point { op; path })

(* Map a fault struck at a non-read operation to its surface form.
   Faults armed at an operation they do not naturally belong to (a
   matrix cell placing Eio at an fsync, say) still fail that operation —
   a trigger always means "this operation goes wrong here". *)
let surface ~op ~path = function
  | Storage.Crash -> crash_point ~op ~path
  | Storage.Enospc -> fault ~op ~path "ENOSPC (injected): no space left on device"
  | Storage.Eio | Storage.Short_write | Storage.Fsync_fail | Storage.Fsync_lie
  | Storage.Rename_loss | Storage.Read_eio ->
      fault ~op ~path "EIO (injected)"

(* --- the vfs operations --------------------------------------------- *)

let open_file t path ~append =
  let cls = classify path in
  let entry = locked t (fun () -> track t path) in
  (match strike t ~op:Storage.Create ~cls with
  | None -> ()
  | Some Storage.Crash -> crash_point ~op:"create" ~path
  | Some f -> surface ~op:"create" ~path f);
  if append then entry.appended <- true;
  let flags =
    Unix.O_WRONLY :: Unix.O_CREAT :: [ (if append then Unix.O_APPEND else Unix.O_TRUNC) ]
  in
  let fd = Unix.openfile path flags 0o644 in
  (* A short write models the device dying mid-transfer: the partial
     bytes land, every later write on this descriptor fails. *)
  let poisoned = ref false in
  {
    Vfs.write =
      (fun buf off len ->
        if !poisoned then fault ~op:"write" ~path "EIO (injected): device failed";
        match strike t ~op:Storage.Write ~cls with
        | None -> Unix.write fd buf off len
        | Some Storage.Short_write ->
            let n = len / 2 in
            let written = ref 0 in
            while !written < n do
              written := !written + Unix.write fd buf (off + !written) (n - !written)
            done;
            poisoned := true;
            n
        | Some Storage.Crash -> crash_point ~op:"write" ~path
        | Some f ->
            poisoned := true;
            surface ~op:"write" ~path f);
    Vfs.fsync =
      (fun () ->
        match strike t ~op:Storage.Fsync ~cls with
        | None ->
            Unix.fsync fd;
            locked t (fun () -> entry.durable <- Some (read_whole path))
        | Some Storage.Fsync_lie -> () (* "success", nothing promoted *)
        | Some Storage.Crash -> crash_point ~op:"fsync" ~path
        | Some f -> surface ~op:"fsync" ~path f);
    Vfs.close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
  }

let rename t ~src ~dst =
  let cls = classify dst in
  let src_entry, _dst_entry = locked t (fun () -> (track t src, track t dst)) in
  (match strike t ~op:Storage.Rename ~cls with
  | None -> ()
  | Some Storage.Crash -> crash_point ~op:"rename" ~path:dst
  | Some f -> surface ~op:"rename" ~path:dst f);
  Sys.rename src dst;
  locked t (fun () ->
      t.pendings <-
        { p_src = src; p_dst = dst; p_src_durable = src_entry.durable } :: t.pendings)

let fsync_dir t dir =
  (* The directory operation carries no file name; classify it by the
     rename it would make durable. *)
  let cls =
    locked t (fun () ->
        match
          List.find_opt (fun p -> Filename.dirname p.p_dst = dir) t.pendings
        with
        | Some p -> classify p.p_dst
        | None -> Storage.Any_file)
  in
  match strike t ~op:Storage.Fsync_dir ~cls with
  | Some (Storage.Rename_loss | Storage.Fsync_lie) ->
      () (* "success": the renames stay volatile, a crash undoes them *)
  | Some Storage.Crash -> crash_point ~op:"fsync-dir" ~path:dir
  | Some f -> surface ~op:"fsync-dir" ~path:dir f
  | None ->
      Vfs.real.Vfs.fsync_dir dir;
      locked t (fun () ->
          let here, elsewhere =
            List.partition (fun p -> Filename.dirname p.p_dst = dir) t.pendings
          in
          List.iter
            (fun p ->
              (* The name switch is durable.  If the source bytes never
                 were, the crash outcome is a durably *empty* target. *)
              (track t p.p_dst).durable <-
                Some (Option.value ~default:"" p.p_src_durable);
              (track t p.p_src).durable <- None)
            (* Oldest first: a later rename over the same target wins. *)
            (List.rev here);
          t.pendings <- elsewhere)

let read t path =
  let cls = classify path in
  ignore (locked t (fun () -> track t path) : tracked);
  match strike t ~op:Storage.Read ~cls with
  | None -> Vfs.real.Vfs.read path
  | Some Storage.Crash -> crash_point ~op:"read" ~path
  | Some _ -> raise (Sys_error (path ^ ": Input/output error (injected)"))

(* Truncation is recovery hygiene (dropping a torn log tail), not a
   fault target; the durable shadow is clipped with the file. *)
let truncate t path len =
  ignore (locked t (fun () -> track t path) : tracked);
  Unix.truncate path len;
  locked t (fun () ->
      let entry = track t path in
      match entry.durable with
      | Some d when String.length d > len -> entry.durable <- Some (String.sub d 0 len)
      | Some _ | None -> ())

let vfs t =
  {
    Vfs.create = (fun path -> open_file t path ~append:false);
    Vfs.append = (fun path -> open_file t path ~append:true);
    Vfs.rename = (fun ~src ~dst -> rename t ~src ~dst);
    Vfs.fsync_dir = (fun dir -> fsync_dir t dir);
    Vfs.read = (fun path -> read t path);
    Vfs.truncate = (fun path len -> truncate t path len);
  }

(* --- crash simulation ----------------------------------------------- *)

let simulate_crash t =
  locked t (fun () ->
      (* Undone renames first: the target reverts below (its durable
         shadow was never promoted); here we only make sure the source
         entry still exists so the pass restores the temp file too. *)
      List.iter (fun p -> ignore (track t p.p_src : tracked)) t.pendings;
      t.pendings <- [];
      Hashtbl.iter
        (fun path entry ->
          let exists = Sys.file_exists path in
          let real = if exists then read_whole path else "" in
          if entry.appended then begin
            (* Keep the durable prefix plus a seeded-random cut of the
               unsynced suffix — partial page writeback, torn mid-record
               more often than not.  (The file can also be *shorter* than
               its shadow after a recovery-time truncate; never slice
               past the real end.) *)
            let d = Option.value ~default:"" entry.durable in
            let suffix_len = max 0 (String.length real - String.length d) in
            let keep = Splitmix64.next_int t.rng (suffix_len + 1) in
            let after =
              String.sub real 0 (min (String.length real) (String.length d + keep))
            in
            write_whole path after;
            entry.durable <- Some after
          end
          else
            match entry.durable with
            | Some content -> if (not exists) || real <> content then write_whole path content
            | None -> if exists then Sys.remove path)
        t.files)
