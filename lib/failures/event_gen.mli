(** Stochastic site up/down process.

    Generates the merged, time-ordered stream of site failures, repairs
    and maintenance outages for a set of {!Site_spec} definitions.  Fully
    deterministic given the seed; one stream drives every policy and
    configuration of a study so comparisons are paired. *)

type cause =
  | Hardware_failure
  | Software_failure
  | Repair_done
  | Maintenance_begin
  | Maintenance_over

type transition = {
  time : float;             (** days since simulation start *)
  site : Site_set.site;
  now_up : bool;
  cause : cause;
}

type t

val create : ?seed:int -> Site_spec.t array -> t
(** All sites start up; each has an independent random stream derived from
    [seed]. *)

val n_sites : t -> int
val now : t -> float
val all_up : t -> bool
val up_set : t -> Site_set.t

val next : t -> transition
(** The next up/down transition, advancing internal time.  The stream never
    ends. *)

val pp_cause : Format.formatter -> cause -> unit
val pp_transition : Format.formatter -> transition -> unit
