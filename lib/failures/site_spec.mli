(** Per-site failure/repair characteristics (the paper's Table 1).

    Failures are exponential with the given MTTF and strike only while a
    site is up.  A failure is hardware with probability
    [hardware_fraction]; hardware repairs last a constant plus an
    exponential term (hours), software failures cost a constant restart
    (minutes).  Some sites additionally undergo preventive maintenance. *)

type maintenance = { period_days : float; duration_hours : float }

type t

val create :
  ?maintenance:maintenance ->
  name:string ->
  mttf_days:float ->
  hardware_fraction:float ->
  restart_minutes:float ->
  repair_constant_hours:float ->
  repair_exp_hours:float ->
  unit ->
  t
(** @raise Invalid_argument on non-positive MTTF, probabilities outside
    [0,1] or negative durations. *)

val name : t -> string
val mttf_days : t -> float
val hardware_fraction : t -> float
val restart_days : t -> float
val repair_constant_days : t -> float
val repair_exp_days : t -> float
val maintenance : t -> maintenance option

val mean_repair_days : t -> float
(** Mean outage duration mixing hardware and software failures. *)

val availability_no_maintenance : t -> float
(** MTTF / (MTTF + MTTR); exact for alternating renewal processes. *)

val availability : t -> float
(** Same, discounted by the maintenance down-fraction. *)

val ucsd_sites : t array
(** Table 1; index i is paper site i+1.  Sites 1, 3 and 5 (csvax, grendel,
    amos) are down 3 hours every 90 days for preventive maintenance. *)

val uniform : n:int -> mttf_days:float -> repair_hours:float -> t array
(** Identical sites with purely exponential repair — matches the analytic
    models exactly. *)

val pp : Format.formatter -> t -> unit
