(* The stochastic up/down process of every site, produced as a single
   merged, time-ordered stream of transitions.  One generator drives every
   (configuration x policy) instance of a study, so all policies see the
   same failure history — a paired comparison that removes between-policy
   sampling noise, and the natural reading of the paper's experiment.

   Mechanics: a per-site state machine over a shared event queue.  The
   queue supports no deletion, so each site carries a generation counter
   and events stale by generation are skipped (standard DES technique).
   Maintenance outages are deterministic, scheduled every period; one that
   falls while the site is already down is skipped (the machine is already
   being serviced).  Because failures are exponential (memoryless),
   re-sampling the time-to-failure after a maintenance outage leaves the
   failure law unchanged. *)

type cause =
  | Hardware_failure
  | Software_failure
  | Repair_done
  | Maintenance_begin
  | Maintenance_over

type transition = {
  time : float;
  site : Site_set.site;
  now_up : bool;
  cause : cause;
}

type pending =
  | Fail of { site : int; generation : int }
  | Come_up of { site : int; generation : int; cause : cause }
  | Maintenance of { site : int }

type site_state = {
  spec : Site_spec.t;
  rng : Dynvote_prng.Rng.t;
  mutable up : bool;
  mutable generation : int;
}

type t = {
  sites : site_state array;
  queue : pending Dynvote_des.Event_queue.t;
  mutable now : float;
}

let sample_time_to_failure state =
  Dynvote_prng.Rng.exponential state.rng ~mean:(Site_spec.mttf_days state.spec)

let sample_outage state =
  if Dynvote_prng.Rng.bernoulli state.rng ~p:(Site_spec.hardware_fraction state.spec)
  then
    ( Hardware_failure,
      Dynvote_prng.Rng.shifted_exponential state.rng
        ~constant:(Site_spec.repair_constant_days state.spec)
        ~mean:(Site_spec.repair_exp_days state.spec) )
  else (Software_failure, Site_spec.restart_days state.spec)

let create ?(seed = 42) specs =
  let master = Dynvote_prng.Rng.of_seed seed in
  let streams = Dynvote_prng.Rng.streams master (Array.length specs) in
  let sites =
    Array.mapi
      (fun i spec -> { spec; rng = streams.(i); up = true; generation = 0 })
      specs
  in
  let queue = Dynvote_des.Event_queue.create () in
  Array.iteri
    (fun i state ->
      Dynvote_des.Event_queue.add queue
        ~time:(sample_time_to_failure state)
        (Fail { site = i; generation = 0 });
      match Site_spec.maintenance state.spec with
      | None -> ()
      | Some m ->
          (* Stagger maintenance phases across sites: servicing every
             machine at the same instant would create artificial correlated
             outages that no real operations schedule exhibits (and that
             the paper's results rule out). *)
          let offset =
            m.period_days *. float_of_int i /. float_of_int (Array.length specs)
          in
          Dynvote_des.Event_queue.add queue ~time:(m.period_days +. offset)
            (Maintenance { site = i }))
    sites;
  { sites; queue; now = 0.0 }

let n_sites t = Array.length t.sites

let now t = t.now

let all_up t = Array.for_all (fun s -> s.up) t.sites

let up_set t =
  let set = ref Site_set.empty in
  Array.iteri (fun i s -> if s.up then set := Site_set.add i !set) t.sites;
  !set

(* Advance to and return the next actual up/down transition.  The stream is
   infinite: there is always a pending failure or maintenance event. *)
let rec next t =
  let time, pending = Dynvote_des.Event_queue.pop_exn t.queue in
  t.now <- time;
  match pending with
  | Fail { site; generation } ->
      let state = t.sites.(site) in
      if generation <> state.generation then next t
      else begin
        let cause, outage = sample_outage state in
        state.up <- false;
        state.generation <- state.generation + 1;
        Dynvote_des.Event_queue.add t.queue ~time:(time +. outage)
          (Come_up { site; generation = state.generation; cause = Repair_done });
        { time; site; now_up = false; cause }
      end
  | Come_up { site; generation; cause } ->
      let state = t.sites.(site) in
      if generation <> state.generation then next t
      else begin
        state.up <- true;
        state.generation <- state.generation + 1;
        Dynvote_des.Event_queue.add t.queue
          ~time:(time +. sample_time_to_failure state)
          (Fail { site; generation = state.generation });
        { time; site; now_up = true; cause }
      end
  | Maintenance { site } ->
      let state = t.sites.(site) in
      (* Always book the next maintenance slot. *)
      (match Site_spec.maintenance state.spec with
      | None -> assert false
      | Some m ->
          Dynvote_des.Event_queue.add t.queue ~time:(time +. m.period_days)
            (Maintenance { site });
          if not state.up then next t (* already down: skip this slot *)
          else begin
            state.up <- false;
            state.generation <- state.generation + 1;
            Dynvote_des.Event_queue.add t.queue
              ~time:(time +. (m.duration_hours /. 24.0))
              (Come_up { site; generation = state.generation; cause = Maintenance_over });
            { time; site; now_up = false; cause = Maintenance_begin }
          end)

let pp_cause ppf = function
  | Hardware_failure -> Fmt.string ppf "hardware failure"
  | Software_failure -> Fmt.string ppf "software failure"
  | Repair_done -> Fmt.string ppf "repair complete"
  | Maintenance_begin -> Fmt.string ppf "maintenance start"
  | Maintenance_over -> Fmt.string ppf "maintenance end"

let pp_transition ppf tr =
  Fmt.pf ppf "t=%.4f site %d %s (%a)" tr.time tr.site
    (if tr.now_up then "UP" else "DOWN")
    pp_cause tr.cause
