(* Per-site failure and repair characteristics — the paper's Table 1.
   Times are stored in the units the table uses (days, minutes, hours);
   accessors convert to days, the simulation's time unit. *)

type maintenance = {
  period_days : float;   (* one outage every this many days *)
  duration_hours : float;
}

type t = {
  name : string;
  mttf_days : float;            (* mean time to fail, exponential *)
  hardware_fraction : float;    (* probability a failure is hardware *)
  restart_minutes : float;      (* software failure: constant restart time *)
  repair_constant_hours : float;(* hardware repair: constant part *)
  repair_exp_hours : float;     (* hardware repair: exponential part's mean *)
  maintenance : maintenance option;
}

let hours_per_day = 24.0
let minutes_per_day = 1440.0

let create ?maintenance ~name ~mttf_days ~hardware_fraction ~restart_minutes
    ~repair_constant_hours ~repair_exp_hours () =
  if mttf_days <= 0.0 then invalid_arg "Site_spec: mttf must be positive";
  if hardware_fraction < 0.0 || hardware_fraction > 1.0 then
    invalid_arg "Site_spec: hardware fraction outside [0,1]";
  if restart_minutes < 0.0 || repair_constant_hours < 0.0 || repair_exp_hours < 0.0 then
    invalid_arg "Site_spec: negative repair time";
  (match maintenance with
  | Some m when m.period_days <= 0.0 || m.duration_hours < 0.0 ->
      invalid_arg "Site_spec: bad maintenance schedule"
  | _ -> ());
  { name; mttf_days; hardware_fraction; restart_minutes; repair_constant_hours;
    repair_exp_hours; maintenance }

let name t = t.name
let mttf_days t = t.mttf_days
let hardware_fraction t = t.hardware_fraction
let restart_days t = t.restart_minutes /. minutes_per_day
let repair_constant_days t = t.repair_constant_hours /. hours_per_day
let repair_exp_days t = t.repair_exp_hours /. hours_per_day
let maintenance t = t.maintenance

(* Mean outage duration in days (hardware and software mixed), used by the
   analytic cross-check. *)
let mean_repair_days t =
  let hardware = repair_constant_days t +. repair_exp_days t in
  let software = restart_days t in
  (t.hardware_fraction *. hardware) +. ((1.0 -. t.hardware_fraction) *. software)

(* Long-run fraction of time the site is up, ignoring maintenance:
   MTTF / (MTTF + MTTR), exact for any repair distribution with that
   mean (alternating renewal process). *)
let availability_no_maintenance t = t.mttf_days /. (t.mttf_days +. mean_repair_days t)

(* Including maintenance: outages every [period] days of [duration],
   treated as an independent extra down-fraction. *)
let availability t =
  let base = availability_no_maintenance t in
  match t.maintenance with
  | None -> base
  | Some m ->
      let down_fraction = m.duration_hours /. hours_per_day /. m.period_days in
      base *. (1.0 -. down_fraction)

let quarterly = Some { period_days = 90.0; duration_hours = 3.0 }

(* Table 1 of the paper.  Index i holds paper site i+1. *)
let ucsd_sites =
  [|
    create ~name:"csvax" ~mttf_days:36.5 ~hardware_fraction:0.10 ~restart_minutes:20.0
      ~repair_constant_hours:0.0 ~repair_exp_hours:2.0 ?maintenance:quarterly ();
    create ~name:"beowulf" ~mttf_days:10.0 ~hardware_fraction:0.10 ~restart_minutes:15.0
      ~repair_constant_hours:4.0 ~repair_exp_hours:24.0 ();
    create ~name:"grendel" ~mttf_days:365.0 ~hardware_fraction:0.90 ~restart_minutes:10.0
      ~repair_constant_hours:0.0 ~repair_exp_hours:2.0 ?maintenance:quarterly ();
    create ~name:"wizard" ~mttf_days:50.0 ~hardware_fraction:0.50 ~restart_minutes:15.0
      ~repair_constant_hours:168.0 ~repair_exp_hours:168.0 ();
    create ~name:"amos" ~mttf_days:365.0 ~hardware_fraction:0.90 ~restart_minutes:10.0
      ~repair_constant_hours:0.0 ~repair_exp_hours:2.0 ?maintenance:quarterly ();
    create ~name:"gremlin" ~mttf_days:50.0 ~hardware_fraction:0.50 ~restart_minutes:15.0
      ~repair_constant_hours:168.0 ~repair_exp_hours:168.0 ();
    create ~name:"rip" ~mttf_days:50.0 ~hardware_fraction:0.50 ~restart_minutes:15.0
      ~repair_constant_hours:168.0 ~repair_exp_hours:168.0 ();
    create ~name:"mangle" ~mttf_days:50.0 ~hardware_fraction:0.50 ~restart_minutes:15.0
      ~repair_constant_hours:168.0 ~repair_exp_hours:168.0 ();
  |]

(* Identical sites, handy for analytic cross-checks and property tests. *)
let uniform ~n ~mttf_days ~repair_hours =
  Array.init n (fun i ->
      create
        ~name:(Printf.sprintf "node%d" i)
        ~mttf_days ~hardware_fraction:1.0 ~restart_minutes:0.0
        ~repair_constant_hours:0.0 ~repair_exp_hours:repair_hours ())

let pp ppf t =
  Fmt.pf ppf "%-8s mttf=%.1fd hw=%.0f%% restart=%.0fmin repair=%g+Exp(%g)h%s" t.name
    t.mttf_days
    (100.0 *. t.hardware_fraction)
    t.restart_minutes t.repair_constant_hours t.repair_exp_hours
    (match t.maintenance with
    | None -> ""
    | Some m -> Printf.sprintf " maint=%gh/%gd" m.duration_hours m.period_days)
