(* Exhaustive enumeration of the partitions a topology can exhibit.  The
   paper argues (§3) that for its four-copy example the only possible
   partitions are {{A,B,C},{D}}, {{A,B,D},{C}} and {{A,B},{C},{D}}; this
   module lets tests verify such claims mechanically by sweeping every
   combination of gateway failures. *)

(* Canonical form of a partition: sorted list of site-set bitmasks. *)
let canonical groups =
  groups |> List.map Site_set.to_int |> List.sort_uniq compare

(* All partitions of the live members of [among] obtainable by failing any
   subset of gateways (every non-gateway site stays up).  Returns each
   distinct partition once, as sorted lists of site sets. *)
let gateway_partitions topology ~among =
  let connectivity = Connectivity.create topology in
  let gateways = Site_set.to_list (Topology.gateways topology) in
  let n_gateways = List.length gateways in
  let all = Topology.all_sites topology in
  let results = Hashtbl.create 16 in
  for mask = 0 to (1 lsl n_gateways) - 1 do
    let down =
      List.fold_left
        (fun (i, acc) gw ->
          (i + 1, if mask land (1 lsl i) <> 0 then Site_set.add gw acc else acc))
        (0, Site_set.empty) gateways
      |> snd
    in
    let up = Site_set.diff all down in
    let groups =
      Connectivity.components connectivity ~up
      |> List.filter_map (fun component ->
             let members = Site_set.inter component among in
             if Site_set.is_empty members then None else Some members)
    in
    let key = canonical groups in
    if not (Hashtbl.mem results key) then Hashtbl.add results key groups
  done;
  Hashtbl.fold (fun _ groups acc -> groups :: acc) results []
  |> List.sort (fun a b -> compare (canonical a) (canonical b))

(* True iff a partition splitting [among] into at least two groups is
   achievable by gateway failures alone. *)
let can_partition topology ~among =
  gateway_partitions topology ~among
  |> List.exists (fun groups -> List.length groups > 1)

(* The paper calls a site a "partition point" for a copy set when its
   failure alone splits the live copies into several components. *)
let partition_points topology ~among =
  let connectivity = Connectivity.create topology in
  let all = Topology.all_sites topology in
  Site_set.filter
    (fun gateway ->
      let up = Site_set.remove gateway all in
      Connectivity.is_partitioned connectivity ~up ~among:(Site_set.remove gateway among))
    (Topology.gateways topology)
