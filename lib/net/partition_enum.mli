(** Exhaustive enumeration of achievable network partitions.

    Supports verifying topology claims from the paper, e.g. that the §3
    four-copy example admits exactly three partitions, or that
    configuration B has a single partition point at site 4. *)

val gateway_partitions :
  Topology.t -> among:Site_set.t -> Site_set.t list list
(** Every distinct partition of (the live members of) [among] achievable by
    failing a subset of gateways, each as a list of components.  Sorted and
    duplicate-free. *)

val can_partition : Topology.t -> among:Site_set.t -> bool

val partition_points : Topology.t -> among:Site_set.t -> Site_set.t
(** Gateways whose single failure splits the live copies of [among] into
    several components. *)
