(** Segmented local-area network topologies (paper §3 and Figure 8).

    A network is a set of indivisible segments (carrier-sense networks or
    token rings, immune to internal partition) linked by gateway hosts.
    Every site — gateways included — belongs to exactly one home segment;
    a live gateway bridges its two segments, a dead one partitions them.
    Segments themselves never fail (paper §4 assumption). *)

type bridge = {
  gateway : Site_set.site;
  segment_a : int;
  segment_b : int;
}

type t

val create :
  ?site_names:string array ->
  ?segment_names:string array ->
  n_segments:int ->
  home_segment:int array ->
  bridges:bridge list ->
  unit ->
  t
(** [home_segment.(site)] is each site's segment; its length fixes the
    number of sites.  @raise Invalid_argument on inconsistent input (bad
    ids, a gateway not living on one of its bridged segments, …). *)

val single_segment : ?site_names:string array -> int -> t
(** [single_segment n]: [n] sites on one segment — no partitions possible;
    the setting where topological voting degenerates to available-copy. *)

val ucsd : t
(** The eight-site, three-segment network of Figure 8 / Table 1.  Paper
    site k is id k-1: csvax(0), beowulf(1), grendel(2), wizard(3, gateway
    alpha–beta), amos(4, gateway alpha–gamma), gremlin(5), rip(6),
    mangle(7). *)

val n_sites : t -> int
val n_segments : t -> int
val site_name : t -> Site_set.site -> string
val site_names : t -> string array
val segment_name : t -> int -> string
val home_segment : t -> Site_set.site -> int

val segment_of : t -> Site_set.site -> int
(** As a function, for {!Dynvote.Operation.ctx}. *)

val bridges : t -> bridge list
val gateways : t -> Site_set.t
val all_sites : t -> Site_set.t
val sites_on_segment : t -> int -> Site_set.t

val pp : Format.formatter -> t -> unit
val pp_ascii : Format.formatter -> t -> unit
(** ASCII diagram in the style of Figure 8. *)
