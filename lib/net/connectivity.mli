(** Reachability under site failures.

    Computes the partition of live sites into mutually communicating
    components given the set of up sites.  Segments never fail; a dead
    gateway disconnects its pair of segments. *)

type t

val create : Topology.t -> t
(** Reusable query context (holds a scratch union-find). *)

val components : t -> up:Site_set.t -> Site_set.t list
(** Live sites grouped into communicating components (each non-empty). *)

val view : t -> up:Site_set.t -> Policy.view
(** Same, packaged for {!Dynvote.Policy}. *)

val connected : t -> up:Site_set.t -> Site_set.site -> Site_set.site -> bool
(** Can the two sites communicate (both up, segments joined)? *)

val component_of : t -> up:Site_set.t -> Site_set.site -> Site_set.t
(** The communicating group containing the site; empty when it is down. *)

val is_partitioned : t -> up:Site_set.t -> among:Site_set.t -> bool
(** Are the live members of [among] split across several components? *)
