(* Local-area network topologies of the kind the paper studies: a set of
   indivisible segments (unsegmented carrier-sense networks or token rings,
   which can never partition internally) linked by gateway hosts.  A
   gateway belongs to exactly one segment — its home — per the paper's §3
   rule, but while it is up it bridges its pair of segments.  Gateways are
   therefore the only partition points; segments themselves never fail. *)

type bridge = {
  gateway : Site_set.site; (* the gateway host *)
  segment_a : int;
  segment_b : int;
}

type t = {
  n_sites : int;
  n_segments : int;
  site_names : string array;
  segment_names : string array;
  home_segment : int array; (* site -> its (unique) segment *)
  bridges : bridge list;
}

let validate t =
  if t.n_sites <= 0 then invalid_arg "Topology: no sites";
  if t.n_sites > Site_set.max_sites then invalid_arg "Topology: too many sites";
  if t.n_segments <= 0 then invalid_arg "Topology: no segments";
  if Array.length t.home_segment <> t.n_sites then
    invalid_arg "Topology: home_segment size mismatch";
  Array.iter
    (fun seg ->
      if seg < 0 || seg >= t.n_segments then invalid_arg "Topology: bad segment id")
    t.home_segment;
  List.iter
    (fun b ->
      if b.gateway < 0 || b.gateway >= t.n_sites then
        invalid_arg "Topology: bridge gateway out of range";
      if b.segment_a = b.segment_b then invalid_arg "Topology: bridge loops a segment";
      if
        b.segment_a < 0 || b.segment_a >= t.n_segments || b.segment_b < 0
        || b.segment_b >= t.n_segments
      then invalid_arg "Topology: bridge segment out of range";
      if t.home_segment.(b.gateway) <> b.segment_a && t.home_segment.(b.gateway) <> b.segment_b
      then invalid_arg "Topology: gateway must live on one of its bridged segments")
    t.bridges;
  t

let create ?site_names ?segment_names ~n_segments ~home_segment ~bridges () =
  let n_sites = Array.length home_segment in
  let site_names =
    match site_names with
    | Some names ->
        if Array.length names <> n_sites then
          invalid_arg "Topology.create: site_names size mismatch";
        names
    | None -> Array.init n_sites (fun i -> Printf.sprintf "site%d" i)
  in
  let segment_names =
    match segment_names with
    | Some names ->
        if Array.length names <> n_segments then
          invalid_arg "Topology.create: segment_names size mismatch";
        names
    | None -> Array.init n_segments (fun i -> Printf.sprintf "seg%d" i)
  in
  validate
    { n_sites; n_segments; site_names; segment_names; home_segment; bridges }

(* A single segment holding [n] sites: no partitions are possible. *)
let single_segment ?site_names n =
  create ?site_names ~n_segments:1 ~home_segment:(Array.make n 0) ~bridges:[] ()

let n_sites t = t.n_sites
let n_segments t = t.n_segments
let site_name t i = t.site_names.(i)
let site_names t = t.site_names
let segment_name t i = t.segment_names.(i)
let home_segment t i = t.home_segment.(i)
let segment_of t = fun site -> t.home_segment.(site)
let bridges t = t.bridges

let gateways t =
  List.fold_left (fun acc b -> Site_set.add b.gateway acc) Site_set.empty t.bridges

let all_sites t = Site_set.universe t.n_sites

let sites_on_segment t seg =
  Site_set.filter (fun site -> t.home_segment.(site) = seg) (all_sites t)

(* The network of the paper's Figure 8: eight sites, three carrier-sense
   segments.  Sites 1-5 (ids 0-4) share the main segment alpha; site 4
   (id 3, "wizard") is the gateway to segment beta holding site 6 (id 5);
   site 5 (id 4, "amos") is the gateway to segment gamma holding sites 7
   and 8 (ids 6, 7).  Paper site numbers are 1-based; ids are 0-based, so
   paper site k is id k-1 throughout the project. *)
let ucsd =
  create
    ~site_names:[| "csvax"; "beowulf"; "grendel"; "wizard"; "amos"; "gremlin"; "rip"; "mangle" |]
    ~segment_names:[| "alpha"; "beta"; "gamma" |]
    ~n_segments:3
    ~home_segment:[| 0; 0; 0; 0; 0; 1; 2; 2 |]
    ~bridges:
      [ { gateway = 3 (* wizard, paper site 4 *); segment_a = 0; segment_b = 1 };
        { gateway = 4 (* amos, paper site 5 *); segment_a = 0; segment_b = 2 } ]
    ()

let pp ppf t =
  Fmt.pf ppf "@[<v>%d sites, %d segments@," t.n_sites t.n_segments;
  for seg = 0 to t.n_segments - 1 do
    Fmt.pf ppf "segment %s: %a@," t.segment_names.(seg)
      (Site_set.pp_names t.site_names) (sites_on_segment t seg)
  done;
  List.iter
    (fun b ->
      Fmt.pf ppf "gateway %s bridges %s <-> %s@," t.site_names.(b.gateway)
        t.segment_names.(b.segment_a) t.segment_names.(b.segment_b))
    t.bridges;
  Fmt.pf ppf "@]"

(* ASCII rendering of Figure 8 for the CLI's [topology] subcommand. *)
let pp_ascii ppf t =
  Fmt.pf ppf "@[<v>";
  for seg = 0 to t.n_segments - 1 do
    let members = Site_set.to_list (sites_on_segment t seg) in
    let cells =
      List.map
        (fun site ->
          let marker =
            if List.exists (fun b -> b.gateway = site) t.bridges then "*" else ""
          in
          Printf.sprintf "[%d:%s%s]" (site + 1) t.site_names.(site) marker)
        members
    in
    Fmt.pf ppf "%-7s ===%s===@," t.segment_names.(seg) (String.concat "===" cells)
  done;
  List.iter
    (fun b ->
      Fmt.pf ppf "        %s* links %s and %s@," t.site_names.(b.gateway)
        t.segment_names.(b.segment_a) t.segment_names.(b.segment_b))
    t.bridges;
  Fmt.pf ppf "        (* = gateway; its failure partitions the network)@]"
