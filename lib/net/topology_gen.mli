(** Random segmented topologies for property-based testing.

    Generates trees of segments (every gateway is a cut point) with a few
    sites each; all instances satisfy the {!Topology} invariants. *)

type spec = {
  max_segments : int;
  max_sites_per_segment : int;
}

val default_spec : spec
(** 1–4 segments of 1–3 sites. *)

val random : ?spec:spec -> Dynvote_prng.Rng.t -> Topology.t

val random_placement : Dynvote_prng.Rng.t -> Topology.t -> Site_set.t
(** A random non-empty copy placement. *)

val random_up_set : Dynvote_prng.Rng.t -> Topology.t -> Site_set.t
(** A random (possibly empty) set of live sites. *)
