(* Reachability under failures.  Given which sites are up, compute the
   partition of the live sites into mutually communicating components:
   segments are joined when a live gateway bridges them (union-find over
   the handful of segments), then live sites group by their segment's
   component.  Two live sites communicate iff their home segments are in
   the same component. *)

type t = {
  topology : Topology.t;
  parent : int array; (* union-find over segments, rebuilt per query *)
}

let create topology = { topology; parent = Array.make (Topology.n_segments topology) 0 }

let rec find parent i = if parent.(i) = i then i else find parent parent.(i)

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let rebuild t ~up =
  let parent = t.parent in
  for i = 0 to Array.length parent - 1 do
    parent.(i) <- i
  done;
  List.iter
    (fun { Topology.gateway; segment_a; segment_b } ->
      if Site_set.mem gateway up then union parent segment_a segment_b)
    (Topology.bridges t.topology)

(* The live sites grouped into communicating components. *)
let components t ~up =
  rebuild t ~up;
  let n_segments = Topology.n_segments t.topology in
  (* Accumulate one site-set per segment root. *)
  let groups = Array.make n_segments Site_set.empty in
  Site_set.iter
    (fun site ->
      let root = find t.parent (Topology.home_segment t.topology site) in
      groups.(root) <- Site_set.add site groups.(root))
    up;
  Array.to_list groups |> List.filter (fun g -> not (Site_set.is_empty g))

let view t ~up = { Policy.components = components t ~up }

let connected t ~up a b =
  Site_set.mem a up && Site_set.mem b up
  && begin
       rebuild t ~up;
       find t.parent (Topology.home_segment t.topology a)
       = find t.parent (Topology.home_segment t.topology b)
     end

(* The component (live communicating sites) containing [site], or empty if
   the site is down. *)
let component_of t ~up site =
  if not (Site_set.mem site up) then Site_set.empty
  else begin
    rebuild t ~up;
    let root = find t.parent (Topology.home_segment t.topology site) in
    Site_set.filter
      (fun other -> find t.parent (Topology.home_segment t.topology other) = root)
      up
  end

let is_partitioned t ~up ~among =
  let live = Site_set.inter up among in
  if Site_set.cardinal live <= 1 then false
  else begin
    let first = Site_set.min_elt live in
    not (Site_set.subset live (component_of t ~up first))
  end
