(* Random segmented topologies for property-based testing: a tree of
   segments (trees are exactly the partition-prone shape — every gateway
   is a cut point), each holding a few sites, with gateways picked among
   the sites of the parent segment.  Generated instances always satisfy
   {!Topology.create}'s invariants, so tests can sweep protocol properties
   over thousands of network shapes. *)

module Rng = Dynvote_prng.Rng

type spec = {
  max_segments : int;
  max_sites_per_segment : int;
}

let default_spec = { max_segments = 4; max_sites_per_segment = 3 }

(* Generate a topology with at least one site; at most
   [max_segments * max_sites_per_segment] sites (capped by Site_set). *)
let random ?(spec = default_spec) rng =
  if spec.max_segments < 1 || spec.max_sites_per_segment < 1 then
    invalid_arg "Topology_gen.random: bad spec";
  let n_segments = 1 + Rng.int rng spec.max_segments in
  (* Sites per segment (at least one, so every segment is inhabited and
     can host a gateway). *)
  let sites_per_segment =
    Array.init n_segments (fun _ -> 1 + Rng.int rng spec.max_sites_per_segment)
  in
  let n_sites = Array.fold_left ( + ) 0 sites_per_segment in
  if n_sites > Site_set.max_sites then invalid_arg "Topology_gen.random: too many sites";
  let home_segment = Array.make n_sites 0 in
  let first_site = Array.make n_segments 0 in
  let next = ref 0 in
  Array.iteri
    (fun seg count ->
      first_site.(seg) <- !next;
      for _ = 1 to count do
        home_segment.(!next) <- seg;
        incr next
      done)
    sites_per_segment;
  (* Tree of segments: segment k > 0 hangs off a random earlier segment,
     through a gateway site living on the parent. *)
  let bridges = ref [] in
  for seg = 1 to n_segments - 1 do
    let parent = Rng.int rng seg in
    let gateway = first_site.(parent) + Rng.int rng sites_per_segment.(parent) in
    bridges := { Topology.gateway; segment_a = parent; segment_b = seg } :: !bridges
  done;
  Topology.create ~n_segments ~home_segment ~bridges:!bridges ()

(* A random non-empty subset of the topology's sites, for copy
   placements. *)
let random_placement rng topology =
  let n = Topology.n_sites topology in
  let rec draw () =
    let set =
      Site_set.filter (fun _ -> Rng.bool rng) (Topology.all_sites topology)
    in
    if Site_set.is_empty set then draw () else set
  in
  ignore n;
  draw ()

(* A random up-set (any subset, including empty). *)
let random_up_set rng topology =
  Site_set.filter (fun _ -> Rng.bool rng) (Topology.all_sites topology)
