(** A replicated key-value store managed by dynamic voting.

    Every key is an independently replicated file: each site keeps the
    key's (operation number, version number, partition set) ensemble and
    its copy of the value.  Site failures and partitions are store-wide.
    Reads and writes are granted only inside the majority partition, so
    one-copy equivalence holds across any failure/partition history. *)

type t

type error = [ `Unavailable | `Site_down | `Not_a_copy_site ]

val pp_error : Format.formatter -> error -> unit

val create :
  ?flavor:Decision.flavor ->
  ?segment_of:(Site_set.site -> int) ->
  universe:Site_set.t ->
  unit ->
  t
(** [universe] is the set of sites holding copies of every key.
    @raise Invalid_argument on an empty universe. *)

val universe : t -> Site_set.t
val up_sites : t -> Site_set.t

val fail : t -> Site_set.site -> unit

val recover : t -> Site_set.site -> int
(** Bring a site up and run recovery for every key; returns how many keys
    it rejoined. *)

val partition : t -> Site_set.t list -> unit
(** @raise Invalid_argument when groups do not cover the universe. *)

val heal : t -> unit

val component_of : t -> Site_set.site -> Site_set.t

val get : t -> at:Site_set.site -> string -> (string option, error) result
(** Read a key through the site [at].  [Ok None] = key never written. *)

val put : t -> at:Site_set.site -> string -> string -> (unit, error) result

val keys : t -> string list
val granted_reads : t -> int
val granted_writes : t -> int
val denied : t -> int

val oracle : t -> string -> string option
(** The latest granted write of a key (the one-copy equivalence oracle). *)

val check_consistency : t -> (string * Site_set.site) list
(** Sites holding the newest version of a key but the wrong value — always
    empty unless the protocol is broken (used by property tests). *)

val version_forks : t -> (string * Site_set.site * Site_set.site) list
(** Site pairs agreeing on a key's version number while holding different
    values — the split-brain symptom the safety oracle hunts for.  Always
    empty for the safe policies. *)
