(* A replicated key-value store managed by dynamic voting: every key is an
   independently replicated file with its own (o, v, P) ensemble at each
   site.  Site failures and network partitions apply store-wide;
   consistency control is per key, exactly as the paper treats each
   replicated file independently.

   The store keeps a write history per key so tests can check
   one-copy equivalence: a read that is granted must return the value of
   the latest granted write of that key. *)

type entry = {
  states : Replica.t array;      (* consistency ensemble per site *)
  values : string option array;  (* data content per site *)
  mutable last_written : string option; (* newest committed value (oracle) *)
  mutable writes : int;
}

type t = {
  ctx : Operation.ctx;
  universe : Site_set.t;
  n_sites : int;
  entries : (string, entry) Hashtbl.t;
  mutable up : Site_set.t;
  mutable groups : Site_set.t list option;
  mutable fresh : Site_set.t; (* continuously up since last crash+recovery *)
  mutable granted_reads : int;
  mutable granted_writes : int;
  mutable denied : int;
}

type error = [ `Unavailable | `Site_down | `Not_a_copy_site ]

let pp_error ppf = function
  | `Unavailable -> Fmt.string ppf "no majority partition reachable"
  | `Site_down -> Fmt.string ppf "requesting site is down"
  | `Not_a_copy_site -> Fmt.string ppf "site holds no copy"

let create ?(flavor = Decision.ldv_flavor) ?(segment_of = fun _ -> 0) ~universe () =
  if Site_set.is_empty universe then invalid_arg "Replicated_kv.create: empty universe";
  let n_sites = Site_set.max_elt universe + 1 in
  {
    ctx = { Operation.flavor; ordering = Ordering.default n_sites; segment_of };
    universe;
    n_sites;
    entries = Hashtbl.create 64;
    up = universe;
    groups = None;
    fresh = universe;
    granted_reads = 0;
    granted_writes = 0;
    denied = 0;
  }

let universe t = t.universe
let up_sites t = t.up
let granted_reads t = t.granted_reads
let granted_writes t = t.granted_writes
let denied t = t.denied

let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.entries []

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
      let e =
        {
          states = Array.make t.n_sites (Replica.initial t.universe);
          values = Array.make t.n_sites None;
          last_written = None;
          writes = 0;
        }
      in
      Hashtbl.add t.entries key e;
      e

(* Topology control — store-wide. *)

let fail t site =
  t.up <- Site_set.remove site t.up;
  t.fresh <- Site_set.remove site t.fresh

let partition t groups =
  let covered = List.fold_left Site_set.union Site_set.empty groups in
  if not (Site_set.equal covered t.universe) then
    invalid_arg "Replicated_kv.partition: groups must cover the universe";
  t.groups <- Some groups

let heal t = t.groups <- None

let component_of t site =
  if not (Site_set.mem site t.up) then Site_set.empty
  else
    let group =
      match t.groups with
      | None -> t.universe
      | Some groups -> (
          match List.find_opt (fun g -> Site_set.mem site g) groups with
          | Some g -> g
          | None -> Site_set.singleton site)
    in
    Site_set.inter group t.up

let check_requester t ~at =
  if not (Site_set.mem at t.universe) then Error `Not_a_copy_site
  else if not (Site_set.mem at t.up) then Error `Site_down
  else Ok (component_of t at)

(* Propagate the newest value within the committed set: the sites of S hold
   the current data; after a read-commit the op-stale members of S must
   receive it too (they are version-current by definition, so only the
   recovery path actually copies data). *)
let sync_values entry ~granted_set ~value =
  Site_set.iter (fun site -> entry.values.(site) <- value) granted_set

let get t ~at key =
  match check_requester t ~at with
  | Error e ->
      t.denied <- t.denied + 1;
      Error (e :> error)
  | Ok reachable -> (
      let e = entry t key in
      match Operation.read t.ctx e.states ~fresh:t.fresh ~reachable () with
      | Decision.Denied _ ->
          t.denied <- t.denied + 1;
          Error `Unavailable
      | Decision.Granted g ->
          t.granted_reads <- t.granted_reads + 1;
          (* The requester reads from any up-to-date copy in S. *)
          let source = Site_set.min_elt g.Decision.s in
          Ok e.values.(source))

let put t ~at key value =
  match check_requester t ~at with
  | Error e ->
      t.denied <- t.denied + 1;
      Error (e :> error)
  | Ok reachable -> (
      let e = entry t key in
      match Operation.write t.ctx e.states ~fresh:t.fresh ~reachable () with
      | Decision.Denied _ ->
          t.denied <- t.denied + 1;
          Error `Unavailable
      | Decision.Granted g ->
          t.granted_writes <- t.granted_writes + 1;
          e.writes <- e.writes + 1;
          e.last_written <- Some value;
          sync_values e ~granted_set:g.Decision.s ~value:(Some value);
          Ok ())

(* Bring a site up and run recovery for every key it can rejoin. *)
let recover t site =
  if not (Site_set.mem site t.universe) then invalid_arg "Replicated_kv.recover";
  t.up <- Site_set.add site t.up;
  let reachable = component_of t site in
  let rejoined = ref 0 in
  let total_keys = Hashtbl.length t.entries in
  Hashtbl.iter
    (fun _key e ->
      match Operation.recover t.ctx e.states ~fresh:t.fresh ~site ~reachable () with
      | Decision.Granted g ->
          incr rejoined;
          (* Copy the data from an up-to-date site. *)
          let source = Site_set.min_elt g.Decision.s in
          e.values.(site) <- e.values.(source)
      | Decision.Denied _ -> ())
    t.entries;
  (* The site regains freshness only once it has rejoined every key (a
     conservative, safe condition for topological claiming). *)
  if !rejoined = total_keys then t.fresh <- Site_set.add site t.fresh;
  !rejoined

(* One-copy equivalence oracle: every granted read of [key] must return the
   latest granted write.  Exposed for tests and demos. *)
let oracle t key = (entry t key).last_written

(* Internal consistency: among the sites holding the highest version number
   of a key, all values agree with the oracle. *)
let check_consistency t =
  let violations = ref [] in
  Hashtbl.iter
    (fun key e ->
      let best = Site_set.fold (fun s acc -> max acc (Replica.version e.states.(s))) t.universe min_int in
      Site_set.iter
        (fun site ->
          if Replica.version e.states.(site) = best && e.writes > 0 then
            if e.values.(site) <> e.last_written then
              violations := (key, site) :: !violations)
        t.universe)
    t.entries;
  !violations

(* Version forks: the defining split-brain symptom.  Two sites agreeing on
   a key's version number while holding different values means two
   partitions both believed they were the majority and committed
   divergent writes — exactly what the safety oracle of the chaos harness
   looks for at the message level. *)
let version_forks t =
  let forks = ref [] in
  Hashtbl.iter
    (fun key e ->
      Site_set.iter
        (fun s1 ->
          Site_set.iter
            (fun s2 ->
              if s1 < s2
                 && Replica.version e.states.(s1) = Replica.version e.states.(s2)
                 && e.values.(s1) <> e.values.(s2)
              then forks := (key, s1, s2) :: !forks)
            t.universe)
        t.universe)
    t.entries;
  !forks
