(** The published values of the paper's Tables 2 and 3, for paper-vs-
    measured comparison in the benchmark harness and EXPERIMENTS.md. *)

val kinds : Policy.kind list
(** Column order: MCV, DV, LDV, ODV, TDV, OTDV. *)

val config_labels : string list

val table2 : (string * float list) list
(** Unavailabilities per configuration, in column order. *)

val table3 : (string * float option list) list
(** Mean unavailable-period durations (days); [None] where the paper
    prints "-". *)

val table2_value : config:string -> kind:Policy.kind -> float option
val table3_value : config:string -> kind:Policy.kind -> float option
