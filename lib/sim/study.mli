(** The availability study of the paper's §4.

    Replays a single stochastic failure history through every requested
    (configuration × policy) instance, yielding the unavailability
    (Table 2) and mean unavailable-period duration (Table 3) of each cell,
    with batch-means confidence intervals. *)

type parameters = {
  seed : int;
  warmup : float;           (** days discarded before measuring (paper: 360) *)
  horizon : float;          (** total simulated days, warm-up included *)
  batches : int;            (** batch count for confidence intervals *)
  access_interval : float;  (** days between accesses for ODV/OTDV (paper: 1) *)
}

val default_parameters : parameters
(** seed 42, 360-day warm-up, 400 360-day horizon, 20 batches, one access
    per day. *)

type summary = {
  interval : Dynvote_stats.Batch_means.interval;
  unavailability : float;
  mean_outage_days : float;
  outages : int;
  longest_up_days : float;
  observed_days : float;
}

type result = {
  config : Config.t;
  kind : Policy.kind;
  interval : Dynvote_stats.Batch_means.interval;
  unavailability : float;    (** Table 2 cell *)
  mean_outage_days : float;  (** Table 3 cell; [nan] when never unavailable *)
  outages : int;
  longest_up_days : float;
  observed_days : float;
}

val run_drivers :
  ?parameters:parameters ->
  ?specs:Dynvote_failures.Site_spec.t array ->
  ?topology:Dynvote_net.Topology.t ->
  ?progress:(completed:float -> total:float -> unit) ->
  ?observe:('key -> time:float -> available:bool -> unit) ->
  drivers:('key * Driver.t) list ->
  unit ->
  ('key * summary) list
(** Run arbitrary policy drivers (extensions, ablations) against the same
    failure trace; results are keyed by the caller's keys, in order.
    [observe] fires at every change of an instance's availability
    indicator (used by {!Timeline}). *)

val run :
  ?parameters:parameters ->
  ?kinds:Policy.kind list ->
  ?configs:Config.t list ->
  ?specs:Dynvote_failures.Site_spec.t array ->
  ?topology:Dynvote_net.Topology.t ->
  ?ordering:Ordering.t ->
  ?recovery:Policy.recovery ->
  ?progress:(completed:float -> total:float -> unit) ->
  ?jobs:int ->
  unit ->
  result list
(** Defaults reproduce the paper: Figure 8 topology, Table 1 sites,
    configurations A–H, all six policies, site 1 ranked highest, recovery
    folded into accesses.  Results are configuration-major in the order
    given.

    [jobs] (default 1) fans the configurations out over a
    {!Dynvote_exec.Pool} domain pool, one task per configuration.  Every
    task replays the same deterministic failure trace a sequential run
    would, so per-cell results are bit-identical for any [jobs]; result
    order is unchanged.  [progress] only fires on the sequential path.
    @raise Invalid_argument on inconsistent parameters. *)

type replicated = {
  mean_unavailability : float;
  half_width_95 : float;    (** Student-t interval across replications *)
  per_seed : float list;
  mean_outage_days : float;
}

val replicate :
  ?parameters:parameters ->
  ?replications:int ->
  ?kinds:Policy.kind list ->
  ?configs:Config.t list ->
  ?specs:Dynvote_failures.Site_spec.t array ->
  ?topology:Dynvote_net.Topology.t ->
  ?ordering:Ordering.t ->
  ?recovery:Policy.recovery ->
  ?jobs:int ->
  unit ->
  ((Config.t * Policy.kind) * replicated) list
(** Independent replications under distinct seeds, pooled per cell —
    run-to-run noise, complementing the within-run batch-means intervals.
    [jobs] runs one task per seed (replications are independent by
    construction; results are identical for any [jobs]).
    @raise Invalid_argument with fewer than two replications. *)

val sweep_access_rate :
  ?parameters:parameters ->
  ?config_label:string ->
  ?rates_per_day:float list ->
  ?jobs:int ->
  unit ->
  (float * result list) list
(** Extra experiment E1: unavailability of ODV/OTDV (with LDV as the
    instantaneous reference) as a function of the file access rate.
    [jobs] runs one task per rate. *)
