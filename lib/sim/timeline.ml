(* Availability timelines: replay a window of the failure trace and render
   each policy's availability as an ASCII strip — the quickest way to *see*
   how the policies differ on the same history (e.g. DV freezing for two
   weeks on configuration F while LDV rides through). *)

type t = {
  kinds : Policy.kind list;
  start : float;   (* window start, days *)
  duration : float;
  (* Per kind: downtime intervals [from, till) clipped to the window. *)
  outages : (Policy.kind * (float * float) list) list;
}

let collect ?(parameters = Study.default_parameters) ?(kinds = Policy.all_kinds) ~config
    ~start ~duration () =
  if start < 0.0 || duration <= 0.0 then invalid_arg "Timeline.collect: bad window";
  let finish = start +. duration in
  (* Metrics are discarded here; disable the warm-up so short windows are
     legal. *)
  let parameters = { parameters with Study.horizon = finish; warmup = 0.0 } in
  let events : (Policy.kind, (float * bool) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun kind -> Hashtbl.replace events kind (ref [])) kinds;
  let topology = Dynvote_net.Topology.ucsd in
  let n_sites = Dynvote_net.Topology.n_sites topology in
  let drivers =
    List.map
      (fun kind ->
        ( kind,
          Driver.of_policy
            (Policy.create kind ~universe:(Config.copies config) ~n_sites
               ~segment_of:(Dynvote_net.Topology.segment_of topology)
               ~ordering:(Ordering.default n_sites)) ))
      kinds
  in
  let observe kind ~time ~available =
    match Hashtbl.find_opt events kind with
    | Some log -> log := (time, available) :: !log
    | None -> ()
  in
  ignore (Study.run_drivers ~parameters ~observe ~drivers ());
  (* Convert indicator-change events into downtime intervals within the
     window. *)
  let outages =
    List.map
      (fun kind ->
        let changes = List.rev !(Hashtbl.find events kind) in
        let intervals = ref [] in
        let down_since = ref None in
        List.iter
          (fun (time, available) ->
            match (available, !down_since) with
            | false, None -> down_since := Some time
            | true, Some from ->
                if time > start then
                  intervals := (Float.max from start, Float.min time finish) :: !intervals;
                down_since := None
            | _ -> ())
          changes;
        (match !down_since with
        | Some from when from < finish ->
            intervals := (Float.max from start, finish) :: !intervals
        | _ -> ());
        (kind, List.rev !intervals))
      kinds
  in
  { kinds; start; duration; outages }

let outages t kind = Option.value (List.assoc_opt kind t.outages) ~default:[]

let downtime t kind =
  List.fold_left (fun acc (from, till) -> acc +. (till -. from)) 0.0 (outages t kind)

(* Render each policy as a strip of [columns] cells; a cell is dark when
   the file was ever unavailable during its time slice. *)
let pp ?(columns = 72) ppf t =
  let cell_span = t.duration /. float_of_int columns in
  Fmt.pf ppf "days %.0f to %.0f (each cell = %.1f days; '#' = fully available, '.' = outage)@."
    t.start (t.start +. t.duration) cell_span;
  List.iter
    (fun kind ->
      let intervals = outages t kind in
      let cells =
        String.init columns (fun i ->
            let from = t.start +. (float_of_int i *. cell_span) in
            let till = from +. cell_span in
            let hit =
              List.exists (fun (a, b) -> a < till && b > from) intervals
            in
            if hit then '.' else '#')
      in
      Fmt.pf ppf "%-5s %s  (down %.2f d)@." (Policy.kind_name kind) cells
        (downtime t kind))
    t.kinds
