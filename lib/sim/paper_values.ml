(* The published numbers of Tables 2 and 3, used to compare shapes (who
   wins, by what order of magnitude) against our reproduction.  Column
   order follows the paper: MCV, DV, LDV, ODV, TDV, OTDV. *)

let kinds = Policy.all_kinds

let config_labels = [ "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H" ]

(* Table 2: replicated file unavailabilities. *)
let table2 =
  [
    ("A", [ 0.002130; 0.004348; 0.000668; 0.000849; 0.000015; 0.000013 ]);
    ("B", [ 0.003871; 0.008281; 0.001214; 0.001432; 0.000109; 0.000066 ]);
    ("C", [ 0.031127; 0.056428; 0.001707; 0.003492; 0.001707; 0.003492 ]);
    ("D", [ 0.069342; 0.117683; 0.053592; 0.053357; 0.034490; 0.031548 ]);
    ("E", [ 0.000608; 0.000018; 0.000012; 0.000084; 0.000000; 0.000000 ]);
    ("F", [ 0.002761; 0.108034; 0.002154; 0.000947; 0.000018; 0.000004 ]);
    ("G", [ 0.002027; 0.001510; 0.000151; 0.000339; 0.000041; 0.000036 ]);
    ("H", [ 0.001408; 0.004275; 0.000171; 0.000218; 0.000020; 0.000043 ]);
  ]

(* Table 3: mean duration of unavailable periods (days); None where the
   paper prints "-" (the file never became unavailable). *)
let table3 =
  [
    ("A", [ Some 0.101968; Some 0.210651; Some 0.077353; Some 0.084141;
            Some 0.10764; Some 0.05115 ]);
    ("B", [ Some 0.101059; Some 0.217369; Some 0.078867; Some 0.084387;
            Some 0.08650; Some 0.05337 ]);
    ("C", [ Some 0.944336; Some 1.868895; Some 0.085960; Some 0.173151;
            Some 0.085960; Some 0.173151 ]);
    ("D", [ Some 3.000469; Some 5.850864; Some 7.443789; Some 6.293645;
            Some 7.428305; Some 7.445393 ]);
    ("E", [ Some 0.071134; Some 0.06363; Some 0.08102; Some 0.05417; None; None ]);
    ("F", [ Some 0.102001; Some 5.962853; Some 0.275006; Some 0.101756;
            Some 0.05556; Some 0.02252 ]);
    ("G", [ Some 0.084714; Some 0.297879; Some 0.07787; Some 0.073773;
            Some 0.12407; Some 0.04149 ]);
    ("H", [ Some 0.078933; Some 0.142206; Some 0.135054; Some 0.060009;
            Some 0.103171; Some 0.051964 ]);
  ]

let kind_index kind =
  let rec go i = function
    | [] -> invalid_arg "Paper_values.kind_index"
    | k :: rest -> if k = kind then i else go (i + 1) rest
  in
  go 0 kinds

let table2_value ~config ~kind =
  match List.assoc_opt config table2 with
  | None -> None
  | Some row -> List.nth_opt row (kind_index kind)

let table3_value ~config ~kind =
  match List.assoc_opt config table3 with
  | None -> None
  | Some row -> (
      match List.nth_opt row (kind_index kind) with Some v -> v | None -> None)
