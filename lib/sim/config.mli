(** Replication configurations: which sites hold copies. *)

type t

val create : ?description:string -> label:string -> copies:Site_set.t -> unit -> t
(** @raise Invalid_argument on an empty copy set. *)

val of_paper_sites : label:string -> sites:int list -> description:string -> t
(** Build from 1-based paper site numbers. *)

val label : t -> string
val copies : t -> Site_set.t
val description : t -> string

val paper_sites : t -> int list
(** Copy holders as 1-based paper site numbers. *)

val ucsd_configurations : t list
(** Configurations A–H of the paper's §4 over the Figure 8 network. *)

val find : string -> t option
(** Look up one of A–H by label (case-insensitive). *)

val pp : Format.formatter -> t -> unit
