(** Availability timelines: per-policy downtime intervals over a window of
    the shared failure trace, with an ASCII strip renderer. *)

type t

val collect :
  ?parameters:Study.parameters ->
  ?kinds:Policy.kind list ->
  config:Config.t ->
  start:float ->
  duration:float ->
  unit ->
  t
(** Replay the trace through [start + duration] days and record every
    policy's unavailable intervals inside the window.
    @raise Invalid_argument on an empty or negative window. *)

val outages : t -> Policy.kind -> (float * float) list
(** Downtime intervals (from, till), clipped to the window. *)

val downtime : t -> Policy.kind -> float
(** Total downtime inside the window, days. *)

val pp : ?columns:int -> Format.formatter -> t -> unit
(** One strip per policy; a cell is ['.'] when the file was unavailable at
    any point of that time slice. *)
