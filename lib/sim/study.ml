(* The availability study of §4.

   One stochastic failure/repair/maintenance trace (from
   {!Dynvote_failures.Event_gen}) drives every (configuration x policy)
   instance simultaneously, so all cells of Tables 2 and 3 are paired on
   the same history.  Between transitions the connectivity is constant;
   the availability indicator of each instance is therefore piecewise
   constant and only needs re-evaluation at transitions — with one twist
   for the optimistic policies:

   Optimistic policies adjust their quorums at file accesses (one per day
   in the paper).  An access never changes the *current* availability
   indicator — a granted refresh remains granted afterwards, a denial
   changes nothing — but it does change the partition sets consulted at
   the *next* topology change.  So it suffices to apply, per instance, the
   first access epoch that falls between two consecutive transitions,
   evaluated against the old connectivity.  This makes the cost per
   transition O(instances) regardless of the access rate. *)

module Event_gen = Dynvote_failures.Event_gen
module Site_spec = Dynvote_failures.Site_spec
module Pool = Dynvote_exec.Pool

type parameters = {
  seed : int;
  warmup : float;        (* days *)
  horizon : float;       (* total simulated days, warm-up included *)
  batches : int;         (* batch count for the confidence intervals *)
  access_interval : float; (* days between file accesses (optimistic) *)
}

let default_parameters =
  { seed = 42; warmup = 360.0; horizon = 400_360.0; batches = 20; access_interval = 1.0 }

type summary = {
  interval : Dynvote_stats.Batch_means.interval;
  unavailability : float;
  mean_outage_days : float;
  outages : int;
  longest_up_days : float;
  observed_days : float;
}

type result = {
  config : Config.t;
  kind : Policy.kind;
  interval : Dynvote_stats.Batch_means.interval;
  unavailability : float;
  mean_outage_days : float;
  outages : int;
  longest_up_days : float;
  observed_days : float;
}

type 'key instance = {
  key : 'key;
  driver : Driver.t;
  metrics : Metrics.t;
  mutable pending_access : float; (* next access epoch to apply; infinity = none *)
  mutable last_available : bool;
}

let validate p =
  if p.horizon <= p.warmup then invalid_arg "Study: horizon must exceed warmup";
  if p.batches < 2 then invalid_arg "Study: need at least two batches";
  if p.access_interval <= 0.0 then invalid_arg "Study: access interval must be positive"

(* First access epoch strictly after [time]. *)
let next_access_epoch ~interval time =
  let k = Float.to_int (Float.floor (time /. interval)) in
  let candidate = float_of_int (k + 1) *. interval in
  if candidate > time then candidate else candidate +. interval

let summarize metrics =
  {
    interval = Metrics.interval metrics;
    unavailability = Metrics.unavailability metrics;
    mean_outage_days = Metrics.mean_outage_duration metrics;
    outages = Metrics.outages metrics;
    longest_up_days = Metrics.longest_up metrics;
    observed_days = Metrics.observed_time metrics;
  }

(* The shared simulation loop: replay the failure trace, keeping every
   instance's availability indicator and quorum state up to date. *)
let simulate ~parameters ~topology ~specs ~instances ?progress ?observe () =
  validate parameters;
  if Array.length specs <> Dynvote_net.Topology.n_sites topology then
    invalid_arg "Study: one site spec per topology site required";
  let generator = Event_gen.create ~seed:parameters.seed specs in
  let connectivity = Dynvote_net.Connectivity.create topology in
  let up = ref (Dynvote_net.Topology.all_sites topology) in
  let view = ref (Dynvote_net.Connectivity.view connectivity ~up:!up) in
  let horizon = parameters.horizon in
  let progress_step = horizon /. 100.0 in
  let next_progress = ref progress_step in
  let rec loop () =
    let transition = Event_gen.next generator in
    let time = transition.Event_gen.time in
    if time >= horizon then ()
    else begin
      (* 1. Apply any access epoch that fell before this transition,
            against the old connectivity. *)
      List.iter
        (fun inst ->
          if inst.pending_access < time then begin
            ignore (inst.driver.Driver.on_access !view);
            inst.pending_access <- infinity
          end)
        instances;
      (* 2. Integrate the indicator up to the transition. *)
      List.iter (fun inst -> Metrics.advance inst.metrics ~upto:time) instances;
      (* 3. Apply the transition. *)
      up :=
        if transition.Event_gen.now_up then Site_set.add transition.Event_gen.site !up
        else Site_set.remove transition.Event_gen.site !up;
      view := Dynvote_net.Connectivity.view connectivity ~up:!up;
      (* 4. Let policies react and re-evaluate the indicator. *)
      List.iter
        (fun inst ->
          inst.driver.Driver.on_topology_change !view;
          if transition.Event_gen.now_up then
            inst.driver.Driver.on_repair !view transition.Event_gen.site;
          let available = inst.driver.Driver.available !view in
          Metrics.set_available inst.metrics available;
          (match observe with
          | Some f when available <> inst.last_available -> f inst.key ~time ~available
          | _ -> ());
          inst.last_available <- available;
          if inst.driver.Driver.optimistic then
            inst.pending_access <-
              next_access_epoch ~interval:parameters.access_interval time)
        instances;
      (match progress with
      | Some f when time >= !next_progress ->
          f ~completed:time ~total:horizon;
          next_progress := !next_progress +. progress_step
      | _ -> ());
      loop ()
    end
  in
  loop ();
  List.iter (fun inst -> Metrics.finish inst.metrics ~upto:horizon) instances

let make_instance ~warmup ~batch_length ~key driver =
  {
    key;
    driver;
    metrics = Metrics.create ~warmup ~batch_length ();
    pending_access = infinity;
    last_available = true;
  }

let batch_length_of parameters =
  (parameters.horizon -. parameters.warmup) /. float_of_int parameters.batches

(* Run arbitrary drivers: [make] receives the topology-derived context and
   builds the keyed driver list. *)
let run_drivers ?(parameters = default_parameters) ?(specs = Site_spec.ucsd_sites)
    ?(topology = Dynvote_net.Topology.ucsd) ?progress ?observe ~drivers () =
  validate parameters;
  let batch_length = batch_length_of parameters in
  let instances =
    List.map
      (fun (key, driver) ->
        make_instance ~warmup:parameters.warmup ~batch_length ~key driver)
      drivers
  in
  simulate ~parameters ~topology ~specs ~instances ?progress ?observe ();
  List.map (fun inst -> (inst.key, summarize inst.metrics)) instances

(* Parallel fan-out happens per configuration: every (configuration x
   policy) cell of a task replays the same deterministic failure trace a
   sequential run would (the generator is rebuilt from the same seed in
   each task, and instances never interact), so per-cell results are
   bit-identical whatever [jobs] is — only wall-clock changes. *)
let rec run ?(parameters = default_parameters) ?(kinds = Policy.all_kinds)
    ?(configs = Config.ucsd_configurations) ?(specs = Site_spec.ucsd_sites)
    ?(topology = Dynvote_net.Topology.ucsd) ?ordering ?recovery ?progress ?(jobs = 1)
    () =
  if jobs > 1 && List.length configs > 1 then
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_list pool
          (fun config ->
            run ~parameters ~kinds ~configs:[ config ] ~specs ~topology ?ordering
              ?recovery ())
          configs)
    |> List.concat
  else run_sequential ~parameters ~kinds ~configs ~specs ~topology ?ordering ?recovery
         ?progress ()

and run_sequential ~parameters ~kinds ~configs ~specs ~topology ?ordering ?recovery
    ?progress () =
  let ordering =
    match ordering with
    | Some o -> o
    | None -> Ordering.default (Dynvote_net.Topology.n_sites topology)
  in
  let n_sites = Dynvote_net.Topology.n_sites topology in
  let segment_of = Dynvote_net.Topology.segment_of topology in
  let drivers =
    List.concat_map
      (fun config ->
        List.map
          (fun kind ->
            let policy =
              Policy.create ?recovery kind ~universe:(Config.copies config) ~n_sites
                ~segment_of ~ordering
            in
            ((config, kind), Driver.of_policy policy))
          kinds)
      configs
  in
  run_drivers ~parameters ~specs ~topology ?progress ~drivers ()
  |> List.map (fun ((config, kind), (s : summary)) ->
         {
           config;
           kind;
           interval = s.interval;
           unavailability = s.unavailability;
           mean_outage_days = s.mean_outage_days;
           outages = s.outages;
           longest_up_days = s.longest_up_days;
           observed_days = s.observed_days;
         })

(* Independent replications: re-run the whole study under several seeds
   and pool each cell across replications.  Complements batch means: batch
   means quantify within-run noise, replications quantify run-to-run noise
   (e.g. whether an ODV-vs-LDV crossover is real or a fluke of one failure
   history). *)
type replicated = {
  mean_unavailability : float;
  half_width_95 : float;   (* Student-t across replications *)
  per_seed : float list;
  mean_outage_days : float;
}

let replicate ?(parameters = default_parameters) ?(replications = 5)
    ?(kinds = Policy.all_kinds) ?(configs = Config.ucsd_configurations)
    ?(specs = Site_spec.ucsd_sites) ?(topology = Dynvote_net.Topology.ucsd) ?ordering
    ?recovery ?(jobs = 1) () =
  if replications < 2 then invalid_arg "Study.replicate: need at least two replications";
  (* One task per seed: replications are independent by construction. *)
  let runs =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map_list pool
          (fun i ->
            run
              ~parameters:{ parameters with seed = parameters.seed + (1009 * i) }
              ~kinds ~configs ~specs ~topology ?ordering ?recovery ())
          (List.init replications Fun.id))
  in
  List.concat_map
    (fun config ->
      List.map
        (fun kind ->
          let cells : result list =
            List.map
              (fun results ->
                List.find
                  (fun (r : result) ->
                    Config.label r.config = Config.label config && r.kind = kind)
                  results)
              runs
          in
          let xs = List.map (fun (r : result) -> r.unavailability) cells in
          let n = float_of_int replications in
          let mean = List.fold_left ( +. ) 0.0 xs /. n in
          let variance =
            List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. (n -. 1.0)
          in
          let half_width =
            Dynvote_stats.Student_t.critical_975 (replications - 1)
            *. sqrt (variance /. n)
          in
          let outages =
            List.filter_map
              (fun (r : result) ->
                if Float.is_nan r.mean_outage_days then None else Some r.mean_outage_days)
              cells
          in
          let mean_outage_days =
            match outages with
            | [] -> nan
            | _ ->
                List.fold_left ( +. ) 0.0 outages /. float_of_int (List.length outages)
          in
          ( (config, kind),
            { mean_unavailability = mean; half_width_95 = half_width; per_seed = xs;
              mean_outage_days } ))
        kinds)
    configs

(* Sweep the access interval for the optimistic policies: the ablation that
   quantifies how much staleness helps or hurts (extra experiment E1). *)
let sweep_access_rate ?(parameters = default_parameters) ?(config_label = "F")
    ?(rates_per_day = [ 0.125; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 24.0 ]) ?(jobs = 1) () =
  let config =
    match Config.find config_label with
    | Some c -> c
    | None -> invalid_arg "Study.sweep_access_rate: unknown configuration"
  in
  (* One task per rate: each point re-runs the study independently. *)
  Pool.with_pool ~jobs (fun pool ->
      Pool.map_list pool
        (fun rate ->
          let parameters = { parameters with access_interval = 1.0 /. rate } in
          let results =
            run ~parameters ~kinds:[ Policy.Odv; Policy.Otdv; Policy.Ldv ]
              ~configs:[ config ] ()
          in
          (rate, results))
        rates_per_day)
