(** Render study results in the layout of the paper's tables. *)

val table1 : Dynvote_failures.Site_spec.t array -> Dynvote_report.Text_table.t
(** The input site characteristics (paper Table 1). *)

val table2 : Study.result list -> Dynvote_report.Text_table.t
(** Replicated file unavailabilities (paper Table 2). *)

val table3 : Study.result list -> Dynvote_report.Text_table.t
(** Mean duration of unavailable periods, days (paper Table 3); "-" where
    the file never became unavailable. *)

type which = Unavailability | Outage_duration

val comparison : which -> Study.result list -> Dynvote_report.Text_table.t
(** Paper value vs measured value with their ratio, per cell. *)

val intervals : Study.result list -> Dynvote_report.Text_table.t
(** Measured unavailability with 95% half-widths, outage counts and the
    longest available stretch. *)
