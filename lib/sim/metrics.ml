(* Availability bookkeeping for one (configuration, policy) instance.

   The availability indicator is piecewise constant between change points;
   callers advance the clock with [advance] (integrating the current
   indicator) and flip the indicator with [set_available].  Observations
   before [warmup] are discarded (the paper uses a 360-day time-to-steady-
   state); afterwards the run is cut into fixed-length batches whose
   per-batch unavailabilities feed a batch-means confidence interval. *)

type t = {
  warmup : float;
  batch_length : float;
  batch_means : Dynvote_stats.Batch_means.t;
  mutable now : float;
  mutable available : bool;
  (* Accumulators for the batch in progress. *)
  mutable batch_start : float;
  mutable batch_unavailable : float;
  (* Whole-run tallies (post-warmup). *)
  mutable unavailable_time : float;
  mutable observed_time : float;
  mutable outages : int; (* completed or ongoing unavailable periods *)
  mutable current_stretch_start : float; (* start of current up stretch *)
  mutable longest_up : float;
  outage_durations : Dynvote_stats.Welford.t;
  mutable current_outage_start : float;
}

let create ?(warmup = 360.0) ~batch_length () =
  if warmup < 0.0 then invalid_arg "Metrics.create: negative warmup";
  if batch_length <= 0.0 then invalid_arg "Metrics.create: batch_length must be positive";
  {
    warmup;
    batch_length;
    batch_means = Dynvote_stats.Batch_means.create ~batch_length;
    now = 0.0;
    available = true;
    batch_start = warmup;
    batch_unavailable = 0.0;
    unavailable_time = 0.0;
    observed_time = 0.0;
    outages = 0;
    current_stretch_start = 0.0;
    longest_up = 0.0;
    outage_durations = Dynvote_stats.Welford.create ();
    current_outage_start = nan;
  }

let now t = t.now
let is_available t = t.available

(* Integrate the current indicator over [t.now, upto], slicing the interval
   at batch boundaries so each batch receives exactly its share. *)
let advance t ~upto =
  if upto < t.now then invalid_arg "Metrics.advance: time going backwards";
  let rec consume from =
    if from >= upto then ()
    else if from < t.warmup then consume (Float.min upto t.warmup)
    else begin
      let batch_end = t.batch_start +. t.batch_length in
      let upto' = Float.min upto batch_end in
      let span = upto' -. from in
      t.observed_time <- t.observed_time +. span;
      if not t.available then begin
        t.batch_unavailable <- t.batch_unavailable +. span;
        t.unavailable_time <- t.unavailable_time +. span
      end;
      if upto' >= batch_end then begin
        Dynvote_stats.Batch_means.add_batch t.batch_means
          (t.batch_unavailable /. t.batch_length);
        t.batch_start <- batch_end;
        t.batch_unavailable <- 0.0
      end;
      consume upto'
    end
  in
  consume t.now;
  t.now <- upto

let set_available t available =
  if available <> t.available then begin
    if available then begin
      (* Outage ends.  Duration statistics only cover outages that started
         after the warm-up, matching the [outages] counter. *)
      if
        (not (Float.is_nan t.current_outage_start))
        && t.current_outage_start >= t.warmup
      then
        Dynvote_stats.Welford.add t.outage_durations (t.now -. t.current_outage_start);
      t.current_outage_start <- nan;
      t.current_stretch_start <- t.now
    end
    else begin
      (* Up stretch ends; outage begins. *)
      let stretch = t.now -. t.current_stretch_start in
      if stretch > t.longest_up then t.longest_up <- stretch;
      if t.now >= t.warmup then begin
        t.outages <- t.outages + 1;
        t.current_outage_start <- t.now
      end
      else t.current_outage_start <- t.now
    end;
    t.available <- available
  end

let finish t ~upto =
  advance t ~upto;
  if t.available then begin
    let stretch = t.now -. t.current_stretch_start in
    if stretch > t.longest_up then t.longest_up <- stretch
  end

let unavailability t =
  if t.observed_time = 0.0 then nan else t.unavailable_time /. t.observed_time

let interval ?confidence t = Dynvote_stats.Batch_means.interval ?confidence t.batch_means

let batch_means t = t.batch_means

let outages t = t.outages

let unavailable_time t = t.unavailable_time

let observed_time t = t.observed_time

(* Mean duration of unavailable periods, in days (Table 3).  NaN when the
   file never became unavailable. *)
let mean_outage_duration t =
  if t.outages = 0 then nan else t.unavailable_time /. float_of_int t.outages

let outage_duration_stats t = t.outage_durations

let longest_up t = t.longest_up
