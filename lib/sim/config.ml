(* A replication configuration: which sites hold copies of the file.
   The paper's study uses eight placements (A through H) over the Figure 8
   network.  Paper site numbers are 1-based; ids are 0-based. *)

type t = {
  label : string;
  copies : Site_set.t;
  description : string;
}

let create ?(description = "") ~label ~copies () =
  if Site_set.is_empty copies then invalid_arg "Config.create: no copies";
  { label; copies; description }

let label t = t.label
let copies t = t.copies
let description t = t.description

let of_paper_sites ~label ~sites ~description =
  create ~label
    ~copies:(Site_set.of_list (List.map (fun s -> s - 1) sites))
    ~description ()

(* Configurations A-H of §4. *)
let ucsd_configurations =
  [
    of_paper_sites ~label:"A" ~sites:[ 1; 2; 4 ] ~description:"three copies, no partitions";
    of_paper_sites ~label:"B" ~sites:[ 1; 2; 6 ]
      ~description:"three copies, partition point at site 4";
    of_paper_sites ~label:"C" ~sites:[ 1; 6; 8 ]
      ~description:"three copies, partition points at sites 4 and 5";
    of_paper_sites ~label:"D" ~sites:[ 6; 7; 8 ]
      ~description:"three copies, either site 4 or 5 causes a partition";
    of_paper_sites ~label:"E" ~sites:[ 1; 2; 3; 4 ]
      ~description:"four copies on the same Ethernet, no partitions";
    of_paper_sites ~label:"F" ~sites:[ 1; 2; 4; 6 ]
      ~description:"four copies, partition point at site 4";
    of_paper_sites ~label:"G" ~sites:[ 1; 2; 6; 8 ]
      ~description:"four copies, partition points at sites 4 and 5";
    of_paper_sites ~label:"H" ~sites:[ 1; 2; 7; 8 ]
      ~description:"two pairs separated by a single partition point at site 5";
  ]

let find label =
  List.find_opt
    (fun t -> String.equal (String.uppercase_ascii t.label) (String.uppercase_ascii label))
    ucsd_configurations

let paper_sites t = List.map (fun s -> s + 1) (Site_set.to_list t.copies)

let pp ppf t =
  Fmt.pf ppf "%s: sites %a (%s)" t.label
    Fmt.(list ~sep:(any ", ") int)
    (paper_sites t) t.description
