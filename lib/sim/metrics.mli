(** Availability bookkeeping for one (configuration, policy) instance.

    Integrates a piecewise-constant availability indicator over simulated
    time, discarding a warm-up prefix and producing batch-means confidence
    intervals (paper §4 methodology), plus Table 3's mean unavailable-
    period duration and the longest continuously-available stretch. *)

type t

val create : ?warmup:float -> batch_length:float -> unit -> t
(** Default warm-up: 360 days, the paper's time-to-steady-state. *)

val now : t -> float
val is_available : t -> bool

val advance : t -> upto:float -> unit
(** Integrate the current indicator up to the given time.
    @raise Invalid_argument if time moves backwards. *)

val set_available : t -> bool -> unit
(** Flip the indicator at the current time. *)

val finish : t -> upto:float -> unit
(** Advance to the end of the run and close the ongoing up-stretch. *)

val unavailability : t -> float
(** Post-warm-up fraction of time unavailable (Table 2). *)

val interval :
  ?confidence:Dynvote_stats.Student_t.confidence -> t -> Dynvote_stats.Batch_means.interval
(** Batch-means confidence interval of the unavailability. *)

val batch_means : t -> Dynvote_stats.Batch_means.t
val outages : t -> int
val unavailable_time : t -> float
val observed_time : t -> float

val mean_outage_duration : t -> float
(** Table 3: unavailable time / number of unavailable periods (days);
    [nan] when there were none. *)

val outage_duration_stats : t -> Dynvote_stats.Welford.t
val longest_up : t -> float
(** Longest continuously-available stretch, in days (§4's "300 years"
    claim for configuration E under TDV). *)
