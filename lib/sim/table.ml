(* Producers for the paper's tables from study results. *)

module Text_table = Dynvote_report.Text_table
module Site_spec = Dynvote_failures.Site_spec

let kind_columns = Policy.all_kinds

let config_row_label config =
  Printf.sprintf "%s: %s" (Config.label config)
    (String.concat ", " (List.map string_of_int (Config.paper_sites config)))

let lookup results ~config ~kind =
  List.find_opt
    (fun r -> r.Study.kind = kind && Config.label r.Study.config = Config.label config)
    results

let distinct_configs results =
  List.fold_left
    (fun acc r ->
      if List.exists (fun c -> Config.label c = Config.label r.Study.config) acc then acc
      else acc @ [ r.Study.config ])
    [] results

(* Table 1: the input site characteristics. *)
let table1 specs =
  let t =
    Text_table.create
      ~aligns:[ Text_table.Right; Text_table.Left; Text_table.Right; Text_table.Right;
                Text_table.Right; Text_table.Right; Text_table.Right ]
      ~header:
        [ "Site"; "Name"; "MTTF (days)"; "HW (%)"; "Restart (min)"; "Repair const (h)";
          "Repair exp (h)" ]
      ()
  in
  Array.iteri
    (fun i spec ->
      Text_table.add_row t
        [ string_of_int (i + 1); Site_spec.name spec;
          Printf.sprintf "%g" (Site_spec.mttf_days spec);
          Printf.sprintf "%.0f" (100.0 *. Site_spec.hardware_fraction spec);
          Printf.sprintf "%g" (Site_spec.restart_days spec *. 1440.0);
          Printf.sprintf "%g" (Site_spec.repair_constant_days spec *. 24.0);
          Printf.sprintf "%g" (Site_spec.repair_exp_days spec *. 24.0) ])
    specs;
  t

let policy_header = "Sites" :: List.map Policy.kind_name kind_columns

(* Table 2: unavailabilities. *)
let table2 results =
  let t =
    Text_table.create
      ~aligns:(Text_table.Left :: List.map (fun _ -> Text_table.Right) kind_columns)
      ~header:policy_header ()
  in
  List.iter
    (fun config ->
      let cells =
        List.map
          (fun kind ->
            match lookup results ~config ~kind with
            | Some r -> Text_table.cell_float r.Study.unavailability
            | None -> "")
          kind_columns
      in
      Text_table.add_row t (config_row_label config :: cells))
    (distinct_configs results);
  t

(* Table 3: mean duration of unavailable periods (days). *)
let table3 results =
  let t =
    Text_table.create
      ~aligns:(Text_table.Left :: List.map (fun _ -> Text_table.Right) kind_columns)
      ~header:policy_header ()
  in
  List.iter
    (fun config ->
      let cells =
        List.map
          (fun kind ->
            match lookup results ~config ~kind with
            | Some r -> Text_table.cell_float r.Study.mean_outage_days
            | None -> "")
          kind_columns
      in
      Text_table.add_row t (config_row_label config :: cells))
    (distinct_configs results);
  t

(* Side-by-side paper-vs-measured for one of the two output tables. *)
type which = Unavailability | Outage_duration

let comparison which results =
  let t =
    Text_table.create
      ~aligns:
        [ Text_table.Left; Text_table.Left; Text_table.Right; Text_table.Right;
          Text_table.Right ]
      ~header:[ "Config"; "Policy"; "Paper"; "Measured"; "Ratio" ] ()
  in
  List.iter
    (fun r ->
      let config = Config.label r.Study.config in
      let paper, measured =
        match which with
        | Unavailability ->
            (Paper_values.table2_value ~config ~kind:r.Study.kind, r.Study.unavailability)
        | Outage_duration ->
            (Paper_values.table3_value ~config ~kind:r.Study.kind, r.Study.mean_outage_days)
      in
      let paper_cell = match paper with Some v -> Text_table.cell_float v | None -> "-" in
      let ratio =
        match paper with
        | Some p when p > 0.0 && not (Float.is_nan measured) ->
            Printf.sprintf "%.2f" (measured /. p)
        | _ -> "-"
      in
      Text_table.add_row t
        [ config; Policy.kind_name r.Study.kind; paper_cell;
          Text_table.cell_float measured; ratio ])
    results;
  t

(* Confidence-interval detail table. *)
let intervals results =
  let t =
    Text_table.create
      ~aligns:
        [ Text_table.Left; Text_table.Left; Text_table.Right; Text_table.Right;
          Text_table.Right; Text_table.Right ]
      ~header:[ "Config"; "Policy"; "Unavail"; "95% +/-"; "Outages"; "Longest up (d)" ] ()
  in
  List.iter
    (fun r ->
      Text_table.add_row t
        [ Config.label r.Study.config; Policy.kind_name r.Study.kind;
          Text_table.cell_float r.Study.unavailability;
          Text_table.cell_float r.Study.interval.Dynvote_stats.Batch_means.half_width;
          Text_table.cell_int r.Study.outages;
          Printf.sprintf "%.0f" r.Study.longest_up_days ])
    results;
  t
