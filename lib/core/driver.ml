(* A policy instance abstracted as a record of closures, so the simulator
   can run the paper's six policies and any extension (available copy,
   weighted voting, witnesses, ...) through one loop. *)

type t = {
  name : string;
  optimistic : bool;
      (* true when quorum state changes only at access time, so the
         simulator must deliver access epochs between topology events *)
  on_topology_change : Policy.view -> unit;
  on_repair : Policy.view -> Site_set.site -> unit;
      (* called (after on_topology_change) when a site comes back up *)
  on_access : Policy.view -> bool;
  available : Policy.view -> bool;
}

let of_policy policy =
  {
    name = Policy.kind_name (Policy.kind policy);
    optimistic = Policy.is_optimistic (Policy.kind policy);
    on_topology_change = (fun view -> Policy.handle_topology_change policy view);
    on_repair = (fun view site -> Policy.handle_repair policy view ~site);
    on_access = (fun view -> Policy.handle_access policy view);
    available = (fun view -> Policy.is_available policy view);
  }

let stateless ~name available =
  {
    name;
    optimistic = false;
    on_topology_change = (fun _ -> ());
    on_repair = (fun _ _ -> ());
    on_access = available;
    available;
  }
