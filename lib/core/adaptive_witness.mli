(** Adaptive voting with witnesses: participants convert between full
    copies and witnesses as failures come and go, self-healing the
    replication level (Pâris 1986; the paper's closing future-work item).

    Role changes only happen inside granted quorum operations, so they
    inherit the protocol's mutual exclusion. *)

type t

val make :
  ?flavor:Decision.flavor ->
  ?optimistic:bool ->
  initial_copies:Site_set.t ->
  witnesses:Site_set.t ->
  min_copies:int ->
  max_copies:int ->
  n_sites:int ->
  segment_of:(Site_set.site -> int) ->
  ordering:Ordering.t ->
  unit ->
  t * Driver.t
(** When a granted operation finds fewer than [min_copies] live data
    copies, witnesses are promoted; above [max_copies], surplus live
    copies are demoted.  A dead copy is never demoted (it may hold the
    only surviving data).
    @raise Invalid_argument on overlapping site sets, no initial copy, or
    [min_copies > max_copies]. *)

val data_sites : t -> Site_set.t
(** Current full-copy holders. *)

val promotions : t -> int
val demotions : t -> int
