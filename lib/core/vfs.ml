(* The storage seam.  See the interface for the rationale; this file is
   only the real POSIX implementation — the fault-injecting one lives in
   lib/faultfs, built over these same five operations. *)

exception Fault of { op : string; path : string; reason : string }
exception Crash_point of { op : string; path : string }

type file = {
  write : Bytes.t -> int -> int -> int;
  fsync : unit -> unit;
  close : unit -> unit;
}

type t = {
  create : string -> file;
  append : string -> file;
  rename : src:string -> dst:string -> unit;
  fsync_dir : string -> unit;
  read : string -> string;
  truncate : string -> int -> unit;
}

let of_fd fd =
  {
    write = (fun buf off len -> Unix.write fd buf off len);
    fsync = (fun () -> Unix.fsync fd);
    close = (fun () -> Unix.close fd);
  }

let real =
  {
    create =
      (fun path ->
        of_fd (Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644));
    append =
      (fun path ->
        of_fd (Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644));
    rename = (fun ~src ~dst -> Sys.rename src dst);
    fsync_dir =
      (fun dir ->
        (* Some filesystems refuse fsync on directories; the rename is
           then as durable as the platform allows, which is all we can
           do. *)
        match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
        | exception Unix.Unix_error _ -> ()
        | dir_fd ->
            Fun.protect
              ~finally:(fun () -> Unix.close dir_fd)
              (fun () -> try Unix.fsync dir_fd with Unix.Unix_error _ -> ()));
    read =
      (fun path ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let len = in_channel_length ic in
            really_input_string ic len));
    truncate = (fun path len -> Unix.truncate path len);
  }
