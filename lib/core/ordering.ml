(* The static linear ordering of sites used by the lexicographic tie-break
   (Jajodia's extension, adopted by ODV/TDV/OTDV).  The paper writes
   "A > B > C": the earliest-listed site is the *maximum* element.  We store
   a rank per site; higher rank = greater site. *)

type t = { rank : int array }

let of_ranking sites =
  let n = List.length sites in
  if n = 0 then invalid_arg "Ordering.of_ranking: empty ranking";
  let max_id = List.fold_left max 0 sites in
  let rank = Array.make (max_id + 1) (-1) in
  List.iteri
    (fun position site ->
      if site < 0 then invalid_arg "Ordering.of_ranking: negative site id";
      if rank.(site) >= 0 then invalid_arg "Ordering.of_ranking: duplicate site";
      (* First in the list gets the highest rank. *)
      rank.(site) <- n - position)
    sites;
  { rank }

(* Default ordering for a universe of [n] sites: site 0 is the maximum,
   matching the paper's convention that site 1 (our id 0) ranks first. *)
let default n =
  if n <= 0 then invalid_arg "Ordering.default: n must be positive";
  of_ranking (List.init n (fun i -> i))

let rank t site =
  if site < 0 || site >= Array.length t.rank || t.rank.(site) < 0 then
    invalid_arg (Printf.sprintf "Ordering.rank: site %d not ranked" site);
  t.rank.(site)

let greater t a b = rank t a > rank t b

let max_element t set =
  if Site_set.is_empty set then raise Not_found;
  Site_set.fold
    (fun site best -> if rank t site > rank t best then site else best)
    set (Site_set.min_elt set)

let pp ppf t =
  let sites =
    Array.to_list (Array.mapi (fun site r -> (site, r)) t.rank)
    |> List.filter (fun (_, r) -> r >= 0)
    |> List.sort (fun (_, r1) (_, r2) -> compare r2 r1)
    |> List.map fst
  in
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any " > ") int) sites
