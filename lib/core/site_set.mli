(** Immutable sets of site identifiers, represented as one-word bitsets.

    Site ids are integers in [0, 61].  All operations are O(1) or O(set
    size) with zero allocation, which keeps quorum evaluation cheap inside
    the availability simulator. *)

type t

type site = int
(** Site identifier (0-based). *)

val max_sites : int

val empty : t
val singleton : site -> t

val universe : int -> t
(** [universe n] is [{0, …, n-1}]. *)

val mem : site -> t -> bool
val add : site -> t -> t
val remove : site -> t -> t
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val is_empty : t -> bool
val subset : t -> t -> bool
(** [subset a b] is true when [a ⊆ b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int

val min_elt : t -> site
(** @raise Not_found on the empty set. *)

val max_elt : t -> site
(** Largest {e id} (not rank — see {!Ordering.max_element} for the paper's
    lexicographic maximum).  @raise Not_found on the empty set. *)

val choose : t -> site
(** Deterministic: the smallest id.  @raise Not_found on the empty set. *)

val fold : (site -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (site -> unit) -> t -> unit
val for_all : (site -> bool) -> t -> bool
val exists : (site -> bool) -> t -> bool
val filter : (site -> bool) -> t -> t
val of_list : site list -> t
val to_list : t -> site list

val to_int : t -> int
(** Raw bitmask (for hashing / test oracles). *)

val of_int_unsafe : int -> t
(** Reinterpret a bitmask as a set; caller guarantees bits above
    [max_sites] are clear. *)

val pp : Format.formatter -> t -> unit

val pp_names : string array -> Format.formatter -> t -> unit
(** Render members through a site-name table. *)
