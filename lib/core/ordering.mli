(** Static linear ordering of sites for lexicographic tie-breaking.

    When a quorum attempt reaches exactly half of the previous majority
    partition, the tie is resolved in favour of the group holding the
    ordering's maximum element (Jajodia 1987; paper §2). *)

type t

val of_ranking : Site_set.site list -> t
(** [of_ranking [a; b; c]] makes [a > b > c].
    @raise Invalid_argument on duplicates, negatives or an empty list. *)

val default : int -> t
(** [default n]: site 0 > site 1 > … > site n-1, the paper's convention
    (its site 1 is our id 0). *)

val rank : t -> Site_set.site -> int
(** Higher rank = greater site.  @raise Invalid_argument for unranked
    sites. *)

val greater : t -> Site_set.site -> Site_set.site -> bool

val max_element : t -> Site_set.t -> Site_set.site
(** The greatest member under this ordering.
    @raise Not_found on the empty set. *)

val pp : Format.formatter -> t -> unit
