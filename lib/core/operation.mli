(** READ / WRITE / RECOVER transitions (Figures 1–3 and 5–7).

    All operations take the full array of replica states (indexed by site
    id) and the set [reachable] = R of live copies in the requester's
    partition; on a grant they mutate the states of the committed copies
    exactly as the paper's COMMIT does. *)

type ctx = {
  flavor : Decision.flavor;
  ordering : Ordering.t;
  segment_of : Site_set.site -> int;
}

val make_ctx :
  ?flavor:Decision.flavor ->
  ?segment_of:(Site_set.site -> int) ->
  Ordering.t ->
  ctx
(** Defaults: lexicographic flavor, all sites on segment 0. *)

val evaluate :
  ctx -> Replica.t array -> ?fresh:Site_set.t -> reachable:Site_set.t -> unit ->
  Decision.verdict
(** Pure probe — no commit.  [fresh] is forwarded to {!Decision.evaluate}
    (sites continuously up since their last commit; gates topological vote
    claiming). *)

val read :
  ctx -> Replica.t array -> ?fresh:Site_set.t -> reachable:Site_set.t -> unit ->
  Decision.verdict
(** Figure 1/5: on grant, commits [(o_m + 1, v_m, S)] to the sites of S. *)

val write :
  ctx -> Replica.t array -> ?fresh:Site_set.t -> reachable:Site_set.t -> unit ->
  Decision.verdict
(** Figure 2/6: on grant, commits [(o_m + 1, v_m + 1, S)] to the sites of
    S. *)

val recover :
  ctx -> Replica.t array -> ?fresh:Site_set.t -> site:Site_set.site ->
  reachable:Site_set.t -> unit -> Decision.verdict
(** Figure 3/7 for recovering site [site]: on grant, copies the file if out
    of date and commits [(o_m + 1, v_m, S ∪ {site})] to [S ∪ {site}].
    @raise Invalid_argument if [site] is not in [reachable]. *)

val refresh :
  ctx -> Replica.t array -> ?fresh:Site_set.t -> reachable:Site_set.t -> unit ->
  Decision.verdict
(** One read followed by recovery of every reachable out-of-date copy; on a
    grant the whole component ends current with partition set [reachable].
    Models instantaneous quorum adjustment (non-optimistic policies) or the
    effect of a file access (optimistic policies). *)
