(* Algorithm 1 of the paper, generalized to cover every dynamic-voting
   flavor studied:

     -  plain Dynamic Voting            (no tie-break, no topology)
     -  Lexicographic Dynamic Voting    (tie-break)
     -  Topological Dynamic Voting      (tie-break + vote claiming)

   Given the set R of live, mutually communicating copies, their state
   ensembles, and (for the topological variant) the segment each site lives
   on, [evaluate] decides whether R is the majority partition.  The
   function is pure: committing the resulting state change is the job of
   {!Operation}. *)

type flavor = {
  tie_break : bool;      (* resolve exact halves with the site ordering *)
  topological : bool;    (* claim votes of dead same-segment quorum members *)
  safe_claims : bool;
      (* gate claiming behind the freshness condition (see below); false
         reproduces the paper's Figures 5-7 literally, which admit
         sequential split-brain histories *)
}

let dv_flavor = { tie_break = false; topological = false; safe_claims = true }
let ldv_flavor = { tie_break = true; topological = false; safe_claims = true }
let tdv_flavor = { tie_break = true; topological = true; safe_claims = false }
let tdv_safe_flavor = { tie_break = true; topological = true; safe_claims = true }

type denial =
  | No_reachable_copy       (* R is empty *)
  | Below_majority of { have : int; quorum_size : int }
      (* fewer than half of the previous majority partition *)
  | Tie_lost of { max_element : Site_set.site }
      (* exactly half, but the ordering's maximum is elsewhere *)
  | Tie_unbroken
      (* exactly half and this flavor has no tie-breaking rule *)
  | Rival_possible of { rivals : Site_set.t }
      (* safe topological flavor only: the unreachable quorum members
         could themselves have continued the file via vote claiming, so
         granting here risks a second lineage *)

type grant = {
  q : Site_set.t;     (* sites with the highest operation number *)
  s : Site_set.t;     (* sites with the highest version number *)
  m : Site_set.site;  (* representative member of q *)
  p_m : Site_set.t;   (* the previous majority partition *)
  claimed : Site_set.t;
      (* the set T whose cardinality was tested: q itself for
         non-topological flavors, q plus claimed same-segment votes for
         the topological ones *)
}

type verdict = Granted of grant | Denied of denial

let is_granted = function Granted _ -> true | Denied _ -> false

(* Q = { r in R : o_r maximal }.  Returns (max_o, Q). *)
let op_maxima states r =
  Site_set.fold
    (fun site ((best, set) as acc) ->
      let o = Replica.op_no states.(site) in
      if o > best then (o, Site_set.singleton site)
      else if o = best then (best, Site_set.add site set)
      else acc)
    r
    (min_int, Site_set.empty)

(* S = { r in R : v_r maximal }. *)
let version_maxima states r =
  Site_set.fold
    (fun site ((best, set) as acc) ->
      let v = Replica.version states.(site) in
      if v > best then (v, Site_set.singleton site)
      else if v = best then (best, Site_set.add site set)
      else acc)
    r
    (min_int, Site_set.empty)

(* T: members of P_m sharing a segment with a live reachable member of
   P_m (paper §3 prose; each live member claims the votes of its dead
   segment-mates).

   Claiming carries a safety condition the paper's figures leave implicit:
   the claiming site must have been *continuously up since its last
   commit* ("fresh").  A fresh site on segment alpha has necessarily
   witnessed every operation any of its alpha-mates took part in (two up
   sites on one segment are always connected), so a dead alpha-mate in its
   partition set really holds no newer state.  Without the condition, a
   site that crashes, misses operations, and restarts while the rest of
   the block is down could claim its dead neighbours' votes and resurrect
   the file with stale data — losing the writes committed in between.
   Claimed sites beyond Q therefore require a fresh sponsor; members of Q
   always count themselves. *)
let claimed_votes ~segment_of ~p_m ~r ~fresh ~q =
  let sponsors = Site_set.inter (Site_set.inter p_m r) fresh in
  let sponsor_segments =
    Site_set.fold (fun site acc -> segment_of site :: acc) sponsors []
  in
  Site_set.union q
    (Site_set.filter (fun site -> List.mem (segment_of site) sponsor_segments) p_m)

(* The rival-lineage guard of the safe topological flavor.

   Vote claiming breaks plain dynamic voting's majority-chain argument: a
   claim-based commit can move the block to a *minority* of the previous
   quorum P_m, after which a majority of P_m — restarting later with their
   old states — would pass the cardinality test and regress the file.
   (Concretely, on one segment: {2} claims dead {0, 1} and continues
   alone; 0 and 1 then restart together while 2 is down and form 2-of-3 of
   their remembered quorum {0,1,2}.)

   The guard: let D be the unreachable members of P_m.  A member of D is
   *silenced* when a fresh member of Q shares its segment — any operation
   it had joined since the P_m commit would have reached that witness and
   bumped its operation number.  The un-silenced remainder could, in the
   worst case, have formed a rival group claiming every P_m member on
   their segments; if that hypothetical rival could itself have passed the
   quorum test, the current grant is unsafe and must wait. *)
let rival_claimants ~segment_of ~ordering ~p_m ~r ~q ~fresh =
  let d = Site_set.diff p_m r in
  let witnesses = Site_set.inter q fresh in
  let witness_segments =
    Site_set.fold (fun site acc -> segment_of site :: acc) witnesses []
  in
  let d_eff =
    Site_set.filter (fun i -> not (List.mem (segment_of i) witness_segments)) d
  in
  if Site_set.is_empty d_eff then None
  else begin
    let rival_segments =
      Site_set.fold (fun site acc -> segment_of site :: acc) d_eff []
    in
    let rival =
      Site_set.union d_eff
        (Site_set.filter (fun j -> List.mem (segment_of j) rival_segments) p_m)
    in
    let have = 2 * Site_set.cardinal rival in
    let size = Site_set.cardinal p_m in
    if
      have > size
      || (have = size && Site_set.mem (Ordering.max_element ordering p_m) d_eff)
    then Some rival
    else None
  end

let evaluate flavor ~ordering ~segment_of ?fresh ~states ~reachable:r () =
  if Site_set.is_empty r then Denied No_reachable_copy
  else begin
    (* Without [safe_claims] every live site may sponsor claims, exactly as
       the paper's figures read. *)
    let fresh = if flavor.safe_claims then Option.value fresh ~default:r else r in
    let _, q = op_maxima states r in
    let _, s = version_maxima states r in
    let m = Site_set.min_elt q in
    let p_m = Replica.partition states.(m) in
    let claimed =
      if flavor.topological then claimed_votes ~segment_of ~p_m ~r ~fresh ~q else q
    in
    let rival =
      if flavor.topological && flavor.safe_claims then
        rival_claimants ~segment_of ~ordering ~p_m ~r ~q ~fresh
      else None
    in
    match rival with
    | Some rivals -> Denied (Rival_possible { rivals })
    | None ->
    let have = Site_set.cardinal claimed in
    let quorum_size = Site_set.cardinal p_m in
    (* |T| > |P_m| / 2, in integer arithmetic. *)
    if 2 * have > quorum_size then Granted { q; s; m; p_m; claimed }
    else if 2 * have = quorum_size then begin
      if not flavor.tie_break then Denied Tie_unbroken
      else begin
        (* Exactly half: grant iff the ordering's maximum element of P_m is
           among the live up-to-date sites (Figures 1-7 test max(P_m) ∈ Q —
           a claimed dead site cannot carry the tie-break).

           Under the topological flavor the tie-break needs one more
           safety condition.  The classic argument — "the other half lacks
           the maximum, so it can never proceed" — breaks when the other
           half could have *claimed* the maximum's vote while it was down:
           then both halves of the same quorum generation would commit.
           So the maximum may carry the tie only if it is fresh (its vote
           was provably never claimed) or no other quorum member shares
           its segment (its vote was never claimable). *)
        let max_element = Ordering.max_element ordering p_m in
        let claim_proof =
          (not flavor.topological)
          || (not flavor.safe_claims)
          || Site_set.mem max_element fresh
          || Site_set.for_all
               (fun j -> j = max_element || segment_of j <> segment_of max_element)
               p_m
        in
        if Site_set.mem max_element q && claim_proof then
          Granted { q; s; m; p_m; claimed }
        else Denied (Tie_lost { max_element })
      end
    end
    else Denied (Below_majority { have; quorum_size })
  end

let pp_denial ppf = function
  | No_reachable_copy -> Fmt.string ppf "no reachable copy"
  | Below_majority { have; quorum_size } ->
      Fmt.pf ppf "below majority (%d of previous quorum %d)" have quorum_size
  | Tie_lost { max_element } ->
      Fmt.pf ppf "tie lost (max element %d unreachable)" max_element
  | Tie_unbroken -> Fmt.string ppf "tie (no tie-breaking rule)"
  | Rival_possible { rivals } ->
      Fmt.pf ppf "a rival lineage via %a is possible" Site_set.pp rivals

let pp_verdict ppf = function
  | Granted g ->
      Fmt.pf ppf "granted (Q=%a S=%a P=%a T=%a)" Site_set.pp g.q Site_set.pp g.s
        Site_set.pp g.p_m Site_set.pp g.claimed
  | Denied d -> Fmt.pf ppf "denied: %a" pp_denial d
