(* Extension policies beyond the paper's six:

   - strict MCV (no tie-break) — the textbook rule, for the ablation that
     justifies our reading of the paper's four-copy MCV numbers;
   - weighted static voting (Gifford 1979), the "weight assignments" the
     paper's conclusion calls for;
   - the Jajodia–Mutchler integer protocol (SIGMOD 1987), which stores the
     previous quorum's cardinality instead of the partition set;
   - available copy (Bernstein–Goodman 1984), correct only on networks that
     cannot partition — with violation counting when they do;
   - voting with witnesses (Paris 1986): some sites store only the
     consistency-control state, no data. *)

let copy_components ~universe view =
  List.filter_map
    (fun component ->
      let copies = Site_set.inter component universe in
      if Site_set.is_empty copies then None else Some copies)
    view.Policy.components

(* Strict majority consensus voting: > half of all copies, ties never
   broken. *)
let strict_mcv ~universe =
  let total = Site_set.cardinal universe in
  Driver.stateless ~name:"MCV-strict" (fun view ->
      List.exists
        (fun copies -> 2 * Site_set.cardinal copies > total)
        (copy_components ~universe view))

(* Gifford-style static weighted voting: a group may act iff it holds more
   than half the total weight; an exact half goes to the group holding the
   ordering's maximum site when [tie_break]. *)
let weighted_mcv ?(tie_break = true) ~weights ~universe ~ordering () =
  Site_set.iter
    (fun site ->
      if site >= Array.length weights || weights.(site) < 0 then
        invalid_arg "Policy_extra.weighted_mcv: bad weight vector")
    universe;
  let weight_of set = Site_set.fold (fun site acc -> acc + weights.(site)) set 0 in
  let total = weight_of universe in
  if total <= 0 then invalid_arg "Policy_extra.weighted_mcv: no votes";
  let max_site = Ordering.max_element ordering universe in
  Driver.stateless ~name:"WMCV" (fun view ->
      List.exists
        (fun copies ->
          let w = 2 * weight_of copies in
          w > total || (tie_break && w = total && Site_set.mem max_site copies))
        (copy_components ~universe view))

(* The Jajodia-Mutchler protocol: per-site operation number, version number
   and the *cardinality* of the previous quorum.  Equivalent in availability
   to plain DV (it cannot break ties, having forgotten who the quorum
   members were). *)
module Jm_dv = struct
  type site_state = { op_no : int; version : int; quorum_size : int }

  type t = {
    universe : Site_set.t;
    states : site_state array;
  }

  let create ~universe ~n_sites =
    let size = Site_set.cardinal universe in
    { universe; states = Array.make n_sites { op_no = 1; version = 1; quorum_size = size } }

  let attempt t ~commit reachable =
    let best_o =
      Site_set.fold (fun s acc -> max acc t.states.(s).op_no) reachable min_int
    in
    let q = Site_set.filter (fun s -> t.states.(s).op_no = best_o) reachable in
    let m = Site_set.min_elt q in
    let granted = 2 * Site_set.cardinal q > t.states.(m).quorum_size in
    if granted && commit then begin
      let best_v =
        Site_set.fold (fun s acc -> max acc t.states.(s).version) reachable min_int
      in
      let next =
        { op_no = best_o + 1; version = best_v; quorum_size = Site_set.cardinal reachable }
      in
      Site_set.iter (fun s -> t.states.(s) <- next) reachable
    end;
    granted

  let driver ~universe ~n_sites =
    let t = create ~universe ~n_sites in
    let run ~commit view =
      List.fold_left
        (fun any copies -> if attempt t ~commit copies then true else any)
        false
        (copy_components ~universe view)
    in
    {
      Driver.name = "JM-DV";
      optimistic = false;
      on_topology_change = (fun view -> ignore (run ~commit:true view));
      on_repair = (fun _ _ -> ());
      on_access = (fun view -> run ~commit:false view);
      available = (fun view -> run ~commit:false view);
    }
end

let jm_dv ~universe ~n_sites = Jm_dv.driver ~universe ~n_sites

(* Available copy.  Correct only when the copies can never be partitioned:
   a site that gets no answer assumes the peer is down.  We keep the set C
   of current copies; any live copy that can reach a member of C syncs and
   joins; down copies leave C (writes are assumed frequent).  When the
   network *does* partition, several groups can hold members of C
   simultaneously — a consistency violation this driver counts rather than
   hides. *)
module Available_copy = struct
  type t = {
    universe : Site_set.t;
    mutable current : Site_set.t;
    mutable violations : int;
  }

  let create ~universe = { universe; current = universe; violations = 0 }

  let update t view =
    let comps = copy_components ~universe:t.universe view in
    let live_groups =
      List.filter (fun copies -> not (Site_set.disjoint copies t.current)) comps
    in
    if List.length live_groups > 1 then t.violations <- t.violations + 1;
    match live_groups with
    | [] -> () (* every current copy is down; C frozen until one returns *)
    | groups -> t.current <- List.fold_left Site_set.union Site_set.empty groups

  let driver ~universe =
    let t = create ~universe in
    let available view =
      List.exists
        (fun copies -> not (Site_set.disjoint copies t.current))
        (copy_components ~universe view)
    in
    ( t,
      {
        Driver.name = "AC";
        optimistic = false;
        on_topology_change = (fun view -> update t view);
        on_repair = (fun _ _ -> ());
        on_access = available;
        available;
      } )

  let violations t = t.violations
end

let available_copy ~universe = Available_copy.driver ~universe

(* Weighted dynamic voting: the paper's closing "analyze weight
   assignments" item.  The full dynamic protocol (partition sets,
   operation numbers, lexicographic ties) with per-site vote weights: a
   group proceeds when the weight of its up-to-date members exceeds half
   the weight of the previous quorum.  Instantaneous or optimistic. *)
module Weighted_dv = struct
  type t = {
    universe : Site_set.t;
    weights : int array;
    ordering : Ordering.t;
    states : Replica.t array;
    optimistic : bool;
  }

  let create ?(optimistic = false) ~weights ~universe ~n_sites ~ordering () =
    Site_set.iter
      (fun site ->
        if site >= Array.length weights || weights.(site) < 0 then
          invalid_arg "Policy_extra.weighted_dv: bad weight vector")
      universe;
    { universe; weights; ordering; states = Array.make n_sites (Replica.initial universe);
      optimistic }

  let weight_of t set = Site_set.fold (fun site acc -> acc + t.weights.(site)) set 0

  (* The weighted majority-partition test; mirrors Decision.evaluate. *)
  let attempt t ~commit reachable =
    let best_o =
      Site_set.fold (fun site acc -> max acc (Replica.op_no t.states.(site))) reachable
        min_int
    in
    let q =
      Site_set.filter (fun site -> Replica.op_no t.states.(site) = best_o) reachable
    in
    let m = Site_set.min_elt q in
    let p_m = Replica.partition t.states.(m) in
    let have = 2 * weight_of t q in
    let size = weight_of t p_m in
    let granted =
      have > size
      || (have = size && Site_set.mem (Ordering.max_element t.ordering p_m) q)
    in
    if granted && commit then begin
      let best_v =
        Site_set.fold (fun site acc -> max acc (Replica.version t.states.(site))) reachable
          min_int
      in
      (* The refresh commit: the whole component becomes current. *)
      Site_set.iter
        (fun site ->
          t.states.(site) <-
            Replica.make ~op_no:(best_o + 1) ~version:best_v ~partition:reachable)
        reachable
    end;
    granted

  let run t ~commit view =
    List.fold_left
      (fun any group -> if attempt t ~commit group then true else any)
      false
      (copy_components ~universe:t.universe view)

  let driver t =
    {
      Driver.name = (if t.optimistic then "OWDV" else "WDV");
      optimistic = t.optimistic;
      on_topology_change =
        (fun view -> if not t.optimistic then ignore (run t ~commit:true view));
      on_repair = (fun _ _ -> ());
      on_access = (fun view -> run t ~commit:true view);
      available = (fun view -> run t ~commit:false view);
    }
end

let weighted_dv ?optimistic ~weights ~universe ~n_sites ~ordering () =
  Weighted_dv.driver (Weighted_dv.create ?optimistic ~weights ~universe ~n_sites ~ordering ())

(* Voting with witnesses: the full dynamic-voting state machine where some
   participants (witnesses) store only the (o, v, P) ensemble.  They vote
   and tie-break like copies, but an access additionally needs at least one
   up-to-date *data* copy in the granted group. *)
module Witness = struct
  type t = {
    ctx : Operation.ctx;
    participants : Site_set.t;   (* data copies and witnesses *)
    data_sites : Site_set.t;
    states : Replica.t array;
    optimistic : bool;
    mutable fresh : Site_set.t;
  }

  let create ?(flavor = Decision.ldv_flavor) ?(optimistic = false) ~data_sites ~witnesses
      ~n_sites ~segment_of ~ordering () =
    if not (Site_set.disjoint data_sites witnesses) then
      invalid_arg "Policy_extra.witness: a site cannot be both copy and witness";
    if Site_set.is_empty data_sites then
      invalid_arg "Policy_extra.witness: need at least one data copy";
    let participants = Site_set.union data_sites witnesses in
    {
      ctx = { Operation.flavor; ordering; segment_of };
      participants;
      data_sites;
      states = Array.make n_sites (Replica.initial participants);
      optimistic;
      fresh = participants;
    }

  (* Grant = quorum among participants plus a current data copy present. *)
  let attempt t ~commit reachable =
    match Operation.evaluate t.ctx t.states ~fresh:t.fresh ~reachable () with
    | Decision.Denied _ -> false
    | Decision.Granted g ->
        let has_data = not (Site_set.disjoint g.Decision.s t.data_sites) in
        if has_data && commit then begin
          ignore (Operation.refresh t.ctx t.states ~fresh:t.fresh ~reachable ());
          t.fresh <- Site_set.union t.fresh reachable
        end;
        has_data

  let run t ~commit view =
    List.fold_left
      (fun any group -> if attempt t ~commit group then true else any)
      false
      (copy_components ~universe:t.participants view)

  let note_up_set t view =
    let up = List.fold_left Site_set.union Site_set.empty view.Policy.components in
    t.fresh <- Site_set.inter t.fresh up

  let driver t =
    {
      Driver.name = (if t.optimistic then "OW-LDV" else "W-LDV");
      optimistic = t.optimistic;
      on_topology_change =
        (fun view ->
          note_up_set t view;
          if not t.optimistic then ignore (run t ~commit:true view));
      on_repair = (fun _ _ -> ());
      on_access = (fun view -> run t ~commit:true view);
      available = (fun view -> run t ~commit:false view);
    }
end

let witness ?flavor ?optimistic ~data_sites ~witnesses ~n_sites ~segment_of ~ordering () =
  Witness.driver
    (Witness.create ?flavor ?optimistic ~data_sites ~witnesses ~n_sites ~segment_of
       ~ordering ())
