(* Sets of site identifiers as immutable machine-word bitsets.  The
   simulator evaluates millions of quorum decisions, each involving a
   handful of set operations, so sets must be allocation-free.  Site ids
   range over 0..61 (one OCaml int, keeping one bit of headroom); the paper
   never needs more than 8. *)

type t = int

type site = int

let max_sites = 62

let empty = 0

let check_site i =
  if i < 0 || i >= max_sites then
    invalid_arg (Printf.sprintf "Site_set: site id %d outside [0, %d)" i max_sites)

let singleton i =
  check_site i;
  1 lsl i

let universe n =
  if n < 0 || n > max_sites then invalid_arg "Site_set.universe: bad size";
  if n = 0 then 0 else (1 lsl n) - 1

let mem i t =
  check_site i;
  t land (1 lsl i) <> 0

let add i t =
  check_site i;
  t lor (1 lsl i)

let remove i t =
  check_site i;
  t land lnot (1 lsl i)

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let is_empty t = t = 0
let subset a b = a land lnot b = 0
let disjoint a b = a land b = 0

(* Kernighan popcount; sets are tiny (<= 8 members) in practice. *)
let cardinal t =
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  go t 0

let min_elt t =
  if t = 0 then raise Not_found;
  let rec go i = if t land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let max_elt t =
  if t = 0 then raise Not_found;
  let rec go i = if t land (1 lsl i) <> 0 then i else go (i - 1) in
  go (max_sites - 1)

let choose = min_elt

let fold f t init =
  let rec go rest acc =
    if rest = 0 then acc
    else
      let i = min_elt rest in
      go (rest land (rest - 1)) (f i acc)
  in
  go t init

let iter f t = fold (fun i () -> f i) t ()

let for_all p t = fold (fun i acc -> acc && p i) t true

let exists p t = fold (fun i acc -> acc || p i) t false

let filter p t = fold (fun i acc -> if p i then add i acc else acc) t empty

let of_list l = List.fold_left (fun acc i -> add i acc) empty l

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let to_int t = t

let of_int_unsafe i = i

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") int) (to_list t)

let pp_names names ppf t =
  let name i = if i >= 0 && i < Array.length names then names.(i) else string_of_int i in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") string) (List.map name (to_list t))
