(* The six consistency policies compared in the paper's Table 2, packaged
   as state machines driven by connectivity views.

   A view is the partition of the *live* sites of the whole network into
   mutually communicating components.  Policies only care about the sites
   holding copies (their universe); other sites are ignored.

   The unified execution model (paper §2 and §4):

   - MCV is stateless: the file is available iff some component contains a
     strict majority of all copies.
   - DV, LDV and TDV assume instantaneous state information: we run a
     quorum refresh on every topology change.
   - ODV and OTDV operate on possibly stale information: the refresh runs
     only when the file is accessed (once a day in the paper's study).

   The decision rules differ per {!Decision.flavor}. *)

type kind = Mcv | Dv | Ldv | Odv | Tdv | Otdv

let all_kinds = [ Mcv; Dv; Ldv; Odv; Tdv; Otdv ]

let kind_name = function
  | Mcv -> "MCV"
  | Dv -> "DV"
  | Ldv -> "LDV"
  | Odv -> "ODV"
  | Tdv -> "TDV"
  | Otdv -> "OTDV"

let kind_of_string s =
  match String.uppercase_ascii s with
  | "MCV" -> Some Mcv
  | "DV" -> Some Dv
  | "LDV" -> Some Ldv
  | "ODV" -> Some Odv
  | "TDV" -> Some Tdv
  | "OTDV" -> Some Otdv
  | _ -> None

let is_optimistic = function Odv | Otdv -> true | Mcv | Dv | Ldv | Tdv -> false

let flavor_of_kind = function
  | Mcv -> None
  | Dv -> Some Decision.dv_flavor
  | Ldv | Odv -> Some Decision.ldv_flavor
  | Tdv | Otdv -> Some Decision.tdv_flavor

type view = { components : Site_set.t list }
(** Partition of the live sites into mutually communicating groups. *)

(* When does a repaired site run its RECOVER protocol (Figure 3, "repeat
   until successful")?  [`At_access] folds recovery into the next file
   access — the least message traffic, and this project's default reading
   of the optimistic algorithms.  [`At_repair] lets the recovering site
   drive its reintegration immediately, as the figure's retry loop
   suggests; quorums then still shrink lazily but grow eagerly.  The
   instantaneous policies refresh on every event either way. *)
type recovery = [ `At_access | `At_repair ]

type t = {
  kind : kind;
  universe : Site_set.t; (* the sites holding copies *)
  ctx : Operation.ctx;   (* unused by MCV *)
  states : Replica.t array;
  majority : int;        (* MCV quorum: strict majority of all copies *)
  recovery : recovery;
  (* Sites continuously up since their last commit — the sponsors allowed
     to claim dead same-segment votes under TDV/OTDV (see Decision). *)
  mutable fresh : Site_set.t;
}

let create ?flavor ?(recovery = `At_access) kind ~universe ~n_sites ~segment_of ~ordering =
  if Site_set.is_empty universe then invalid_arg "Policy.create: empty universe";
  let flavor =
    match flavor with
    | Some f -> f
    | None -> Option.value (flavor_of_kind kind) ~default:Decision.ldv_flavor
  in
  {
    kind;
    universe;
    ctx = { Operation.flavor; ordering; segment_of };
    states = Array.make n_sites (Replica.initial universe);
    majority = (Site_set.cardinal universe / 2) + 1;
    recovery;
    fresh = universe;
  }

let kind t = t.kind
let universe t = t.universe
let fresh t = t.fresh
let states t = t.states
let replica t site = t.states.(site)

(* The components restricted to copy-holding sites, empty ones dropped. *)
let copy_components t view =
  List.filter_map
    (fun component ->
      let copies = Site_set.inter component t.universe in
      if Site_set.is_empty copies then None else Some copies)
    view.components

(* Static majority consensus.  With an even number of copies an exact half
   is resolved in favour of the group holding the ordering's maximum site
   (static lexicographic tie-breaking, standard for even vote totals; the
   paper's four-copy MCV figures are only consistent with this rule —
   strict 3-of-4 would leave configuration F unavailable for every site 4
   outage, far above the 0.0028 reported). *)
let mcv_available t view =
  let total = Site_set.cardinal t.universe in
  List.exists
    (fun copies ->
      let have = Site_set.cardinal copies in
      2 * have > total
      || (2 * have = total
         && Site_set.mem (Ordering.max_element t.ctx.Operation.ordering t.universe) copies))
    (copy_components t view)

(* Run a refresh attempt in every component; the mutual-exclusion property
   of the decision rule guarantees at most one grant.  A grant freshens
   every participant (they all just committed).  Returns whether any
   component was granted. *)
let refresh_all t view =
  List.fold_left
    (fun granted copies ->
      match Operation.refresh t.ctx t.states ~fresh:t.fresh ~reachable:copies () with
      | Decision.Granted _ ->
          t.fresh <- Site_set.union t.fresh copies;
          true
      | Decision.Denied _ -> granted)
    false (copy_components t view)

let probe t view =
  List.exists
    (fun copies ->
      Decision.is_granted
        (Operation.evaluate t.ctx t.states ~fresh:t.fresh ~reachable:copies ()))
    (copy_components t view)

(* A crashed site loses its freshness until it participates in a commit
   again; this is local knowledge ("I rebooted"), independent of the
   policy's refresh discipline, so it is updated on every topology
   change for every policy. *)
let note_up_set t view =
  let up = List.fold_left Site_set.union Site_set.empty view.components in
  t.fresh <- Site_set.inter t.fresh up

(* Notification that the network state changed (site failure or repair,
   partition or heal).  Instantaneous policies adjust quorums right away;
   optimistic ones do nothing until the next access. *)
let handle_topology_change t view =
  note_up_set t view;
  match t.kind with
  | Mcv | Odv | Otdv -> ()
  | Dv | Ldv | Tdv -> ignore (refresh_all t view)

(* A file access.  For optimistic policies this is when quorums adjust. *)
let handle_access t view =
  match t.kind with
  | Mcv -> mcv_available t view
  | Dv | Ldv | Tdv ->
      (* State is already a fixpoint for the current view. *)
      probe t view
  | Odv | Otdv -> refresh_all t view

(* A site repaired.  Under [`At_repair] the optimistic policies run the
   site's RECOVER protocol right away (the instantaneous ones already
   refreshed in {!handle_topology_change}). *)
let handle_repair t view ~site =
  match (t.kind, t.recovery) with
  | (Mcv | Dv | Ldv | Tdv), _ | _, `At_access -> ()
  | (Odv | Otdv), `At_repair ->
      if Site_set.mem site t.universe then begin
        let component =
          List.find_opt (fun c -> Site_set.mem site c) view.components
        in
        match component with
        | None -> ()
        | Some component -> (
            let reachable = Site_set.inter component t.universe in
            match
              Operation.recover t.ctx t.states ~fresh:t.fresh ~site ~reachable ()
            with
            | Decision.Granted g ->
                t.fresh <-
                  Site_set.union t.fresh (Site_set.add site g.Decision.s)
            | Decision.Denied _ -> ())
      end

(* Would an access succeed right now?  Pure: no state change, so usable as
   the availability indicator between events. *)
let is_available t view =
  match t.kind with Mcv -> mcv_available t view | _ -> probe t view

let pp_states ?names ppf t =
  let pp_replica =
    match names with Some n -> Replica.pp_names n | None -> Replica.pp
  in
  Fmt.pf ppf "@[<v>";
  Site_set.iter
    (fun site -> Fmt.pf ppf "site %d: %a@," site pp_replica t.states.(site))
    t.universe;
  Fmt.pf ppf "@]"
