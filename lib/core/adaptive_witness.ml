(* Adaptive voting with witnesses (Paris 1986, §"future work" of this
   paper): some participants are witnesses — they store the consistency
   ensemble but no data — and the protocol *converts* participants between
   the two roles as failures come and go:

     - when a quorum operation finds fewer than [min_copies] live data
       copies, it promotes live witnesses to full copies (the data
       transfer piggybacks on the commit, and the witness is already
       version-current, so promotion is cheap and safe);
     - when more than [max_copies] data copies are live again, surplus
       copies are demoted back to witnesses, reclaiming storage.

   The result approximates the availability of a fully replicated file at
   a fraction of the storage: most of the time only [max_copies] real
   copies exist, but the replication level heals itself after failures.

   Role changes happen inside granted operations only, so they inherit the
   protocol's mutual exclusion: two rival groups can never make
   conflicting role decisions. *)

type t = {
  ctx : Operation.ctx;
  participants : Site_set.t;
  ordering : Ordering.t;
  min_copies : int;
  max_copies : int;
  states : Replica.t array;
  mutable data_sites : Site_set.t;
  mutable fresh : Site_set.t;
  mutable promotions : int;
  mutable demotions : int;
  optimistic : bool;
}

let create ?(flavor = Decision.ldv_flavor) ?(optimistic = false) ~initial_copies ~witnesses
    ~min_copies ~max_copies ~n_sites ~segment_of ~ordering () =
  if not (Site_set.disjoint initial_copies witnesses) then
    invalid_arg "Adaptive_witness: a site cannot be both copy and witness";
  if Site_set.is_empty initial_copies then
    invalid_arg "Adaptive_witness: need at least one data copy";
  if min_copies < 1 || max_copies < min_copies then
    invalid_arg "Adaptive_witness: need 1 <= min_copies <= max_copies";
  let participants = Site_set.union initial_copies witnesses in
  {
    ctx = { Operation.flavor; ordering; segment_of };
    participants;
    ordering;
    min_copies;
    max_copies;
    states = Array.make n_sites (Replica.initial participants);
    data_sites = initial_copies;
    fresh = participants;
    promotions = 0;
    demotions = 0;
    optimistic;
  }

let data_sites t = t.data_sites
let promotions t = t.promotions
let demotions t = t.demotions

(* Pick the [n] highest-ranked members of [set] (stable, deterministic). *)
let take_best t n set =
  let ranked =
    List.sort
      (fun a b -> compare (Ordering.rank t.ordering b) (Ordering.rank t.ordering a))
      (Site_set.to_list set)
  in
  List.filteri (fun i _ -> i < n) ranked |> Site_set.of_list

(* Inside a granted operation: adjust roles so that the number of *live
   reachable* data copies returns into [min_copies, max_copies]. *)
let rebalance t reachable =
  let live_data = Site_set.inter reachable t.data_sites in
  let live_count = Site_set.cardinal live_data in
  if live_count < t.min_copies then begin
    let candidates = Site_set.diff reachable t.data_sites in
    let wanted = t.min_copies - live_count in
    let promoted = take_best t wanted candidates in
    t.promotions <- t.promotions + Site_set.cardinal promoted;
    t.data_sites <- Site_set.union t.data_sites promoted
  end
  else if live_count > t.max_copies then begin
    (* Demote the lowest-ranked live copies, never below max_copies, and
       never a dead copy (it may hold the only surviving data). *)
    let surplus = live_count - t.max_copies in
    let keep = take_best t t.max_copies live_data in
    let demoted = take_best t surplus (Site_set.diff live_data keep) in
    t.demotions <- t.demotions + Site_set.cardinal demoted;
    t.data_sites <- Site_set.diff t.data_sites demoted
  end

let copy_components t view =
  List.filter_map
    (fun component ->
      let members = Site_set.inter component t.participants in
      if Site_set.is_empty members then None else Some members)
    view.Policy.components

let attempt t ~commit reachable =
  match Operation.evaluate t.ctx t.states ~fresh:t.fresh ~reachable () with
  | Decision.Denied _ -> false
  | Decision.Granted g ->
      let has_data = not (Site_set.disjoint g.Decision.s t.data_sites) in
      if has_data && commit then begin
        ignore (Operation.refresh t.ctx t.states ~fresh:t.fresh ~reachable ());
        t.fresh <- Site_set.union t.fresh reachable;
        rebalance t reachable
      end;
      has_data

let run t ~commit view =
  List.fold_left
    (fun any group -> if attempt t ~commit group then true else any)
    false (copy_components t view)

let note_up_set t view =
  let up = List.fold_left Site_set.union Site_set.empty view.Policy.components in
  t.fresh <- Site_set.inter t.fresh up

let driver t =
  {
    Driver.name = (if t.optimistic then "OAW-LDV" else "AW-LDV");
    optimistic = t.optimistic;
    on_topology_change =
      (fun view ->
        note_up_set t view;
        if not t.optimistic then ignore (run t ~commit:true view));
    on_repair = (fun _ _ -> ());
    on_access = (fun view -> run t ~commit:true view);
    available = (fun view -> run t ~commit:false view);
  }

let make ?flavor ?optimistic ~initial_copies ~witnesses ~min_copies ~max_copies ~n_sites
    ~segment_of ~ordering () =
  let t =
    create ?flavor ?optimistic ~initial_copies ~witnesses ~min_copies ~max_copies
      ~n_sites ~segment_of ~ordering ()
  in
  (t, driver t)
