(** Compact self-delimiting integer encoding for state fingerprints. *)

val add_int : Buffer.t -> int -> unit
(** Append [n] zigzag-encoded: one byte for |n| < 127, an escape byte
    plus eight little-endian bytes otherwise.  Self-delimiting, so
    callers length-prefix variable-length sections rather than inserting
    separator bytes (which a value byte could collide with). *)
