(** Policy instances as records of closures — the simulator's uniform
    interface to the six paper policies and all extensions. *)

type t = {
  name : string;
  optimistic : bool;
      (** quorum state changes only at access time (ODV/OTDV style) *)
  on_topology_change : Policy.view -> unit;
  on_repair : Policy.view -> Site_set.site -> unit;
      (** called after [on_topology_change] when a site comes back up *)
  on_access : Policy.view -> bool;
      (** perform an access; returns whether it was granted *)
  available : Policy.view -> bool;
      (** pure probe: would an access succeed now? *)
}

val of_policy : Policy.t -> t

val stateless : name:string -> (Policy.view -> bool) -> t
(** Wrap a pure availability predicate (MCV-style policies). *)
