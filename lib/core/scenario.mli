(** Scripted protocol walkthroughs, mirroring the worked examples of the
    paper's §2 and §3.

    Sites are addressed by name ("A", "B", …); connectivity is declared
    explicitly with {!fail}/{!restart}/{!partition}/{!heal}; operations run
    against the resulting components.  {!pp_table} prints per-site state in
    the paper's own layout, enabling golden tests of the examples. *)

type t

val create :
  ?flavor:Decision.flavor ->
  ?segment_of:(Site_set.site -> int) ->
  names:string array ->
  unit ->
  t
(** All sites start up, fully connected, with o = v = 1 and the full
    partition set.  Ordering: first name ranks highest (the paper's
    A > B > C).  Default flavor: lexicographic. *)

val fail : t -> string -> unit
(** Take a site down (no state exchange happens — information only moves at
    access time). *)

val restart : t -> string -> unit
(** Bring a site up without running recovery. *)

val recover : t -> string -> bool
(** Bring a site up and run its RECOVER protocol against the current
    connectivity; returns whether it rejoined. *)

val partition : t -> string list list -> unit
(** Declare connectivity groups (must cover all sites, no overlap). *)

val heal : t -> unit

val write : t -> Site_set.t option
(** Attempt a write in every component; at most one can be granted.
    Returns the granting component. *)

val read : t -> Site_set.t option

val writes : t -> int -> Site_set.t option
(** [writes t n] performs [n] consecutive writes; returns the last grant. *)

val is_available : t -> bool
(** Would an access succeed somewhere right now? *)

val components : t -> Site_set.t list
val states : t -> Replica.t array
val state : t -> string -> Replica.t
val up_sites : t -> Site_set.t
val log : t -> string list
(** Narrated history, oldest first. *)

val pp_table : Format.formatter -> t -> unit
(** The paper's per-site state table. *)
