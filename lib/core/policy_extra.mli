(** Extension policies beyond the paper's six.

    These cover the paper's related work and its "future work" items:
    strict MCV, Gifford weighted voting, the Jajodia–Mutchler integer
    protocol, the available-copy family, and voting with witnesses. *)

val strict_mcv : universe:Site_set.t -> Driver.t
(** Textbook majority consensus: strictly more than half of all copies,
    ties never broken (so four copies need three). *)

val weighted_mcv :
  ?tie_break:bool ->
  weights:int array ->
  universe:Site_set.t ->
  ordering:Ordering.t ->
  unit ->
  Driver.t
(** Static weighted voting (Gifford 1979).  A group acts iff it holds more
    than half the total weight; with [tie_break] (default), an exact half
    wins when it contains the ordering's maximum site.
    @raise Invalid_argument on negative or missing weights. *)

val jm_dv : universe:Site_set.t -> n_sites:int -> Driver.t
(** The Jajodia–Mutchler dynamic-voting protocol, which stores only the
    cardinality of the previous quorum.  Availability-equivalent to plain
    DV (property-tested), but unable to support lexicographic or
    topological extensions — the paper's §2 argument for partition sets. *)

val weighted_dv :
  ?optimistic:bool ->
  weights:int array ->
  universe:Site_set.t ->
  n_sites:int ->
  ordering:Ordering.t ->
  unit ->
  Driver.t
(** Weighted {e dynamic} voting — the paper's "weight assignments" future
    work: the full partition-set protocol with per-site vote weights.  A
    group proceeds when its up-to-date weight exceeds half the previous
    quorum's weight; exact halves go to the group holding the ordering's
    maximum.  [optimistic] delays quorum adjustment to access time.
    @raise Invalid_argument on negative or missing weights. *)

module Available_copy : sig
  type t

  val driver : universe:Site_set.t -> t * Driver.t
  val violations : t -> int
  (** Number of topology changes on which two disjoint groups both held
      current copies — mutual-exclusion violations that occur when
      available copy runs on a partitionable network. *)
end

val available_copy : universe:Site_set.t -> Available_copy.t * Driver.t
(** Available copy (Bernstein–Goodman): the file is available while any
    current copy is up.  Safe only on a single segment; see
    {!Available_copy.violations}. *)

val witness :
  ?flavor:Decision.flavor ->
  ?optimistic:bool ->
  data_sites:Site_set.t ->
  witnesses:Site_set.t ->
  n_sites:int ->
  segment_of:(Site_set.site -> int) ->
  ordering:Ordering.t ->
  unit ->
  Driver.t
(** Voting with witnesses (Paris 1986): [witnesses] hold the consistency-
    control ensemble but no data; an access needs a quorum {e and} an
    up-to-date data copy in the granted group.
    @raise Invalid_argument if the two site sets overlap or no data copy is
    given. *)
