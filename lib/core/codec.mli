(** Stable-storage codec for the consistency-control ensemble.

    Compact, versioned, checksummed records: corrupted or torn data raises
    {!Corrupt} instead of being trusted — forgetting or garbling a
    partition set would break the protocol's safety argument. *)

exception Corrupt of string

val encoded_size : int
(** Fixed record size in bytes. *)

val encode_replica : Replica.t -> string

val decode_replica : string -> Replica.t
(** @raise Corrupt on wrong size, bad magic, checksum mismatch or
    out-of-range fields. *)

val decode_result : string -> (Replica.t, string) result
(** Total {!decode_replica}: never raises; [Error] carries the corruption
    reason.  Truncated, bit-flipped and zero-length records all return
    [Error]. *)

val save_replica : path:string -> Replica.t -> unit
(** Atomic (write-then-rename) persistence. *)

val load_replica : path:string -> Replica.t
(** @raise Corrupt as {!decode_replica}; [Sys_error] if unreadable. *)

val load_result : path:string -> (Replica.t, string) result
(** Total {!load_replica}: corruption and I/O failures both come back as
    [Error] — the crash-recovery path must never die on a torn record. *)
