(** Stable-storage codec for the consistency-control ensemble.

    Compact, versioned, checksummed records: corrupted or torn data raises
    {!Corrupt} instead of being trusted — forgetting or garbling a
    partition set would break the protocol's safety argument. *)

exception Corrupt of string

val encoded_size : int
(** Fixed record size in bytes. *)

val encode_replica : Replica.t -> string

val decode_replica : string -> Replica.t
(** @raise Corrupt on wrong size, bad magic, checksum mismatch or
    out-of-range fields. *)

val decode_result : string -> (Replica.t, string) result
(** Total {!decode_replica}: never raises; [Error] carries the corruption
    reason.  Truncated, bit-flipped and zero-length records all return
    [Error]. *)

val save_replica : ?vfs:Vfs.t -> path:string -> Replica.t -> unit
(** Durable atomic persistence: the record is written to [path ^ ".tmp"],
    fsynced, renamed over [path], and the parent directory is fsynced so
    the rename itself survives power loss.  After a crash at any point a
    reader finds either the complete previous record or the complete new
    one — never a torn or empty file.  (On filesystems that refuse
    directory fsync the rename is as durable as the platform allows.) *)

val load_replica : ?vfs:Vfs.t -> path:string -> unit -> Replica.t
(** @raise Corrupt as {!decode_replica}; [Sys_error] if unreadable. *)

val load_result : ?vfs:Vfs.t -> path:string -> unit -> (Replica.t, string) result
(** Total {!load_replica}: corruption and I/O failures both come back as
    [Error] — the crash-recovery path must never die on a torn record. *)

(** {2 Stable-storage building blocks}

    The same write-then-rename-with-fsync discipline and checksum, exposed
    for other on-disk records (the live service's data blobs and operation
    logs) so every persistent artifact shares one durability story. *)

val write_file_atomic : ?vfs:Vfs.t -> ?fsync:bool -> path:string -> string -> unit
(** Durable atomic replace of [path] with the given bytes, with the same
    crash guarantee as {!save_replica}.  [~fsync:false] keeps the
    write-then-rename atomicity (a reader never sees a torn file) but
    skips both fsyncs, trading the power-loss guarantee for speed —
    throughput experiments only.  Default [true].  [?vfs] (default
    {!Vfs.real}) is the storage seam every byte flows through — the
    fault-injection layer substitutes its own. *)

val read_file_result : ?vfs:Vfs.t -> path:string -> unit -> (string, string) result
(** Whole-file read; I/O failures come back as [Error]. *)

val checksum : Bytes.t -> off:int -> len:int -> int32
(** The codec's Adler-32 (RFC 1950) checksum, for records framed in this
    codec's style. *)
