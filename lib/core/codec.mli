(** Stable-storage codec for the consistency-control ensemble.

    Compact, versioned, checksummed records: corrupted or torn data raises
    {!Corrupt} instead of being trusted — forgetting or garbling a
    partition set would break the protocol's safety argument. *)

exception Corrupt of string

val encoded_size : int
(** Fixed record size in bytes. *)

val encode_replica : Replica.t -> string

val decode_replica : string -> Replica.t
(** @raise Corrupt on wrong size, bad magic, checksum mismatch or
    out-of-range fields. *)

val save_replica : path:string -> Replica.t -> unit
(** Atomic (write-then-rename) persistence. *)

val load_replica : path:string -> Replica.t
(** @raise Corrupt as {!decode_replica}; [Sys_error] if unreadable. *)
