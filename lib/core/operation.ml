(* The READ / WRITE / RECOVER procedures of Figures 1-3 (and their
   topological twins, Figures 5-7), expressed as transitions on an array of
   replica states.  The verdict comes from {!Decision}; on a grant this
   module performs the COMMIT: it installs the new (operation number,
   version number, partition set) ensemble at the appropriate copies.

   A [refresh] is the composite operation the availability simulator uses:
   one read followed by the recovery of every reachable out-of-date copy,
   leaving the whole component current with partition set R.  For the
   non-optimistic policies a refresh models the instantaneous quorum
   adjustment performed on every change of the network state; for the
   optimistic ones it models what a daily file access does. *)

type ctx = {
  flavor : Decision.flavor;
  ordering : Ordering.t;
  segment_of : Site_set.site -> int;
}

let make_ctx ?(flavor = Decision.ldv_flavor) ?(segment_of = fun _ -> 0) ordering =
  { flavor; ordering; segment_of }

let evaluate ctx states ?fresh ~reachable () =
  Decision.evaluate ctx.flavor ~ordering:ctx.ordering ~segment_of:ctx.segment_of ?fresh
    ~states ~reachable ()

(* COMMIT(recipients, o, v, P): install the new ensemble at [recipients]. *)
let commit states ~recipients ~op_no ~version ~partition =
  Site_set.iter
    (fun site ->
      states.(site) <- Replica.with_commit states.(site) ~op_no ~version ~partition)
    recipients

let read ctx states ?fresh ~reachable () =
  match evaluate ctx states ?fresh ~reachable () with
  | Decision.Denied _ as verdict -> verdict
  | Decision.Granted g as verdict ->
      let m = g.Decision.m in
      let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
      commit states ~recipients:g.Decision.s ~op_no:(o + 1) ~version:v
        ~partition:g.Decision.s;
      verdict

let write ctx states ?fresh ~reachable () =
  match evaluate ctx states ?fresh ~reachable () with
  | Decision.Denied _ as verdict -> verdict
  | Decision.Granted g as verdict ->
      let m = g.Decision.m in
      let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
      commit states ~recipients:g.Decision.s ~op_no:(o + 1) ~version:(v + 1)
        ~partition:g.Decision.s;
      verdict

(* RECOVER for a single site [l]; [reachable] must contain l. *)
let recover ctx states ?fresh ~site:l ~reachable () =
  if not (Site_set.mem l reachable) then
    invalid_arg "Operation.recover: recovering site not in reachable set";
  match evaluate ctx states ?fresh ~reachable () with
  | Decision.Denied _ as verdict -> verdict
  | Decision.Granted g as verdict ->
      let m = g.Decision.m in
      let o = Replica.op_no states.(m) and v = Replica.version states.(m) in
      (* If v_l < v_m the file data is copied from m (modelled by the
         version assignment); the new partition set is S ∪ {l}. *)
      let recipients = Site_set.add l g.Decision.s in
      commit states ~recipients ~op_no:(o + 1) ~version:v ~partition:recipients;
      verdict

(* One read, then recovery of every reachable out-of-date copy.  When
   granted, every site of [reachable] ends current with partition set
   [reachable]. *)
let refresh ctx states ?fresh ~reachable () =
  match read ctx states ?fresh ~reachable () with
  | Decision.Denied _ as verdict -> verdict
  | Decision.Granted g as verdict ->
      let stale = Site_set.diff reachable g.Decision.s in
      Site_set.iter
        (fun l ->
          match recover ctx states ?fresh ~site:l ~reachable () with
          | Decision.Granted _ -> ()
          | Decision.Denied d ->
              (* Unreachable in practice: once the read succeeded the
                 component *is* the majority partition and every recovery
                 within it must also succeed. *)
              Fmt.failwith "Operation.refresh: recovery of %d denied (%a)" l
                Decision.pp_denial d)
        stale;
      verdict
