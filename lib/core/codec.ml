(* Stable-storage representation of the consistency-control ensemble.

   The protocols require each site to persist (operation number, version
   number, partition set) across crashes — a copy that forgot its
   partition set could neither vote nor recover safely.  This codec gives
   the ensemble a compact, versioned, checksummed on-disk form:

       magic "DVT1" | adler32 | op_no | version | partition bitmask

   Integers are little-endian fixed-width; the checksum covers everything
   after itself, so torn or corrupted records are detected rather than
   trusted. *)

let magic = "DVT1"

let encoded_size = 4 + 4 + 8 + 8 + 8

exception Corrupt of string

(* Adler-32 (RFC 1950): simple, fast, adequate for torn-write detection. *)
let adler32 bytes ~off ~len =
  let modulus = 65521 in
  let a = ref 1 and b = ref 0 in
  for i = off to off + len - 1 do
    a := (!a + Char.code (Bytes.get bytes i)) mod modulus;
    b := (!b + !a) mod modulus
  done;
  Int32.logor
    (Int32.shift_left (Int32.of_int !b) 16)
    (Int32.of_int !a)

let encode_replica replica =
  let buffer = Bytes.create encoded_size in
  Bytes.blit_string magic 0 buffer 0 4;
  Bytes.set_int64_le buffer 8 (Int64.of_int (Replica.op_no replica));
  Bytes.set_int64_le buffer 16 (Int64.of_int (Replica.version replica));
  Bytes.set_int64_le buffer 24 (Int64.of_int (Site_set.to_int (Replica.partition replica)));
  (* Checksum over the payload (everything after the checksum field). *)
  Bytes.set_int32_le buffer 4 (adler32 buffer ~off:8 ~len:(encoded_size - 8));
  Bytes.to_string buffer

let decode_replica data =
  if String.length data <> encoded_size then
    raise (Corrupt (Printf.sprintf "expected %d bytes, got %d" encoded_size
                      (String.length data)));
  let buffer = Bytes.of_string data in
  if Bytes.sub_string buffer 0 4 <> magic then raise (Corrupt "bad magic");
  let stored = Bytes.get_int32_le buffer 4 in
  let computed = adler32 buffer ~off:8 ~len:(encoded_size - 8) in
  if not (Int32.equal stored computed) then raise (Corrupt "checksum mismatch");
  let read_int offset =
    let v = Bytes.get_int64_le buffer offset in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
      raise (Corrupt "field out of range");
    Int64.to_int v
  in
  let op_no = read_int 8 in
  let version = read_int 16 in
  let mask = read_int 24 in
  if mask land lnot (Site_set.to_int (Site_set.universe Site_set.max_sites)) <> 0 then
    raise (Corrupt "partition mask has illegal bits");
  Replica.make ~op_no ~version ~partition:(Site_set.of_int_unsafe mask)

(* Total variants: corruption as data, not control flow.  Recovery code
   paths (and fuzzers) want to inspect a bad record without wrapping every
   call in an exception handler. *)
let decode_result data =
  match decode_replica data with
  | replica -> Ok replica
  | exception Corrupt reason -> Error reason

let checksum = adler32

(* Durable atomic replace.  Write-then-rename alone is atomic with
   respect to crashes of the *writer*, but not to power loss: the rename
   can reach the journal while the temp file's bytes are still in the
   page cache, leaving a zero-length or torn file after the crash.  The
   full discipline is: flush the data (fsync the temp file), then make
   the name switch durable (fsync the containing directory after the
   rename).  A crash at any point leaves either the complete old record
   or the complete new one.

   Every storage call goes through [vfs] so a fault-injecting
   implementation can strike any single operation of the discipline. *)
let write_file_atomic ?(vfs = Vfs.real) ?(fsync = true) ~path data =
  let tmp = path ^ ".tmp" in
  let file = vfs.Vfs.create tmp in
  Fun.protect
    ~finally:(fun () -> file.Vfs.close ())
    (fun () ->
      let bytes = Bytes.unsafe_of_string data in
      let len = Bytes.length bytes in
      let written = ref 0 in
      while !written < len do
        written := !written + file.Vfs.write bytes !written (len - !written)
      done;
      if fsync then file.Vfs.fsync ());
  vfs.Vfs.rename ~src:tmp ~dst:path;
  if fsync then vfs.Vfs.fsync_dir (Filename.dirname path)

let read_file ?(vfs = Vfs.real) ~path () = vfs.Vfs.read path

let read_file_result ?vfs ~path () =
  match read_file ?vfs ~path () with
  | data -> Ok data
  | exception Sys_error reason -> Error reason

(* Persist / restore through plain files. *)
let save_replica ?vfs ~path replica =
  write_file_atomic ?vfs ~path (encode_replica replica)

let load_replica ?vfs ~path () = decode_replica (read_file ?vfs ~path ())

let load_result ?vfs ~path () =
  match load_replica ?vfs ~path () with
  | replica -> Ok replica
  | exception Corrupt reason -> Error reason
  | exception Sys_error reason -> Error reason
